module rckalign

go 1.22
