// Package rckalign reproduces "Accelerating all-to-all protein structures
// comparison with TMalign using a NoC many-cores processor architecture"
// (Sharma, Papanikolaou, Manolakos; IPDPSW 2013).
//
// The implementation lives in internal packages (see DESIGN.md for the
// full inventory):
//
//   - internal/tmalign (+ geom, pdb, ss, seqalign, tmscore): the TM-align
//     protein structure comparison algorithm, built from scratch;
//   - internal/sim, noc, scc, rcce: a discrete-event model of the Intel
//     Single-chip Cloud Computer (48 P54C cores on a 6x4 mesh NoC) with an
//     RCCE-style message-passing layer;
//   - internal/rckskel: the paper's algorithmic skeleton library (SEQ,
//     PAR, COLLECT, FARM);
//   - internal/core: rckAlign, the master-slaves all-vs-all comparison
//     application;
//   - internal/dist, mcpsc, sched, experiments: the distributed baseline,
//     the multi-criteria extension, scheduling policies and the drivers
//     that regenerate every table and figure of the paper's evaluation.
//
// Entry points: cmd/tmalign (pairwise CLI), cmd/rckalign (all-vs-all on
// the simulated SCC), cmd/benchtables (regenerates Tables I-V and
// Figures 5-6), cmd/genpdb (writes the synthetic datasets), and the
// runnable walkthroughs under examples/.
package rckalign
