package rckalign

// Cross-package integration tests: the full pipeline from structure
// generation through native comparison to simulated execution on the
// SCC, plus consistency between the execution paths.

import (
	"os"
	"path/filepath"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/dist"
	"rckalign/internal/pdb"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// pipelinePR computes one shared small-pair set for the integration
// tests.
var pipelinePR = func() *core.PairResults {
	return core.ComputeAllPairs(synth.Small(8, 2013), tmalign.FastOptions(), 0)
}()

func TestPipelineScalingShape(t *testing.T) {
	pr := pipelinePR
	serial := pr.SerialSeconds(costmodel.P54C())
	counts := []int{1, 2, 4, 8, 16}
	var prev float64 = serial * 1.01
	for _, n := range counts {
		r, err := core.Run(pr, n, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if r.Collected != len(pr.Pairs) {
			t.Fatalf("n=%d: collected %d of %d", n, r.Collected, len(pr.Pairs))
		}
		if r.TotalSeconds >= prev {
			t.Fatalf("n=%d: time %v did not improve on %v", n, r.TotalSeconds, prev)
		}
		sp := serial / r.TotalSeconds
		if sp > float64(n)+1e-9 {
			t.Fatalf("n=%d: superlinear speedup %v", n, sp)
		}
		// Near-linear at low core counts (the paper's claim).
		if n <= 8 && sp < 0.75*float64(n) {
			t.Fatalf("n=%d: speedup %v below 75%% efficiency", n, sp)
		}
		prev = r.TotalSeconds
	}
}

func TestAllExecutionPathsAgreeOnBiology(t *testing.T) {
	// Serial, flat farm, hierarchical farm and the distributed baseline
	// all replay the same native results; their timing differs but the
	// collected result count and the underlying scores must agree.
	pr := pipelinePR
	flat, err := core.Run(pr, 6, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hcfg := core.DefaultConfig()
	hcfg.Hierarchy = 2
	tree, err := core.Run(pr, 6, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.Run(pr, 6, dist.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if flat.Collected != len(pr.Pairs) || tree.Collected != len(pr.Pairs) || d.Collected != len(pr.Pairs) {
		t.Fatalf("collected: flat=%d tree=%d dist=%d want %d",
			flat.Collected, tree.Collected, d.Collected, len(pr.Pairs))
	}
	// Timing order: on-chip master beats MCPC-driven distribution
	// (Experiment I's conclusion).
	if d.TotalSeconds <= flat.TotalSeconds {
		t.Errorf("distributed (%v) should be slower than rckAlign (%v)", d.TotalSeconds, flat.TotalSeconds)
	}
}

func TestOrderingDoesNotChangeResults(t *testing.T) {
	pr := pipelinePR
	var times []float64
	for _, o := range []sched.Order{sched.FIFO, sched.LPT, sched.Random} {
		cfg := core.DefaultConfig()
		cfg.Order = o
		cfg.OrderSeed = 3
		r, err := core.Run(pr, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Collected != len(pr.Pairs) {
			t.Fatalf("%v: collected %d", o, r.Collected)
		}
		times = append(times, r.TotalSeconds)
	}
	// All orders complete the same work; only the makespan may differ,
	// and not absurdly (< 50% spread on this workload).
	for _, tm := range times {
		if tm > times[0]*1.5 || tm < times[0]/1.5 {
			t.Errorf("ordering changed makespan out of plausible range: %v", times)
		}
	}
}

func TestPDBRoundTripPreservesComparison(t *testing.T) {
	// Writing a dataset to PDB files and reloading must give nearly
	// identical comparison results (coordinates round to 0.001 A).
	dir := t.TempDir()
	ds := synth.Small(4, 99)
	var paths []string
	for _, s := range ds.Structures {
		p := filepath.Join(dir, s.ID+".pdb")
		if err := pdb.WriteFile(p, s); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	reloaded, err := core.LoadDatasetDir("reloaded", paths)
	if err != nil {
		t.Fatal(err)
	}
	opt := tmalign.FastOptions()
	orig := tmalign.Compare(ds.Structures[0], ds.Structures[1], opt)
	rt := tmalign.Compare(reloaded.Structures[0], reloaded.Structures[1], opt)
	if diff := orig.TM() - rt.TM(); diff > 0.02 || diff < -0.02 {
		t.Errorf("round-trip TM drift: %v vs %v", orig.TM(), rt.TM())
	}
}

func TestCacheFilesCommitted(t *testing.T) {
	// The experiment benchmarks rely on the committed pair caches; warn
	// loudly (fail) if they are missing so a regeneration is triggered
	// deliberately rather than silently costing minutes in benches.
	for _, name := range []string{"CK34.gob"} {
		if _, err := os.Stat(filepath.Join("testdata", "paircache", name)); err != nil {
			t.Skipf("pair cache %s missing: benches will recompute natively (%v)", name, err)
		}
	}
}
