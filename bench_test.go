package rckalign

// One benchmark per table and figure of the paper's evaluation section,
// plus the ablations DESIGN.md calls out. Each benchmark regenerates its
// experiment end-to-end on the simulated SCC; reported ns/op is the
// host cost of the regeneration (the experiment's own result is the
// simulated time, printed via b.ReportMetric as *_sim_s).
//
// Pair results load from testdata/paircache (committed; delete to force
// native recomputation, which takes minutes of host CPU for RS119).

import (
	"math"
	"sync"
	"testing"
	"time"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/dist"
	"rckalign/internal/experiments"
	"rckalign/internal/mcpsc"
	"rckalign/internal/pairstore"
	"rckalign/internal/prune"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func loadEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		envVal, envErr = experiments.Load("testdata/paircache", tmalign.DefaultOptions())
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// BenchmarkTable1ChipModel instantiates the Table I chip configuration
// (geometry checks run in internal/scc tests; here we measure model
// construction).
func BenchmarkTable1ChipModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chip := scc.New(sim.NewEngine(), scc.DefaultConfig())
		if chip.NumCores() != 48 {
			b.Fatal("not an SCC")
		}
	}
}

// BenchmarkTable2Fig5 regenerates Table II / Figure 5: the CK34
// all-vs-all sweep for rckAlign vs the MCPC-driven distributed TM-align
// over slave counts 1,3,...,47.
func BenchmarkTable2Fig5(b *testing.B) {
	env := loadEnv(b)
	counts := core.OddSlaveCounts(47)
	var rck47, dist47 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rck, err := core.RunSweep(env.CK34, counts, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		dst, err := dist.RunSweep(env.CK34, counts, dist.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rck47 = rck[len(rck)-1].TotalSeconds
		dist47 = dst[len(dst)-1].TotalSeconds
	}
	b.ReportMetric(rck47, "rckalign47_sim_s")
	b.ReportMetric(dist47, "dist47_sim_s")
}

// BenchmarkTable3 regenerates the serial baselines: all-vs-all times on
// the AMD host and a single P54C core for both datasets.
func BenchmarkTable3(b *testing.B) {
	env := loadEnv(b)
	var ckP54, rsP54 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckP54 = env.CK34.SerialSeconds(costmodel.P54C())
		rsP54 = env.RS119.SerialSeconds(costmodel.P54C())
		_ = env.CK34.SerialSeconds(costmodel.AMD24())
		_ = env.RS119.SerialSeconds(costmodel.AMD24())
	}
	b.ReportMetric(ckP54, "ck34_p54c_sim_s")
	b.ReportMetric(rsP54, "rs119_p54c_sim_s")
}

// BenchmarkTable4Fig6 regenerates Table IV / Figure 6: the rckAlign
// scaling sweep on both datasets.
func BenchmarkTable4Fig6(b *testing.B) {
	env := loadEnv(b)
	counts := core.OddSlaveCounts(47)
	var spCK, spRS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := core.RunSweep(env.CK34, counts, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rs, err := core.RunSweep(env.RS119, counts, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		spCK = env.CK34.SerialSeconds(costmodel.P54C()) / ck[len(ck)-1].TotalSeconds
		spRS = env.RS119.SerialSeconds(costmodel.P54C()) / rs[len(rs)-1].TotalSeconds
	}
	b.ReportMetric(spCK, "ck34_speedup47")
	b.ReportMetric(spRS, "rs119_speedup47")
}

// BenchmarkTable5 regenerates the summary comparison: AMD serial vs P54C
// serial vs rckAlign on 47 slaves, both datasets.
func BenchmarkTable5(b *testing.B) {
	env := loadEnv(b)
	var ck47, rs47 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rck, err := core.Run(env.CK34, 47, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rrs, err := core.Run(env.RS119, 47, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		ck47 = rck.TotalSeconds
		rs47 = rrs.TotalSeconds
	}
	b.ReportMetric(ck47, "ck34_scc47_sim_s")
	b.ReportMetric(rs47, "rs119_scc47_sim_s")
}

// BenchmarkScheduling is the load-balancing ablation (the paper's future
// work): FIFO vs LPT ordering on CK34 at 47 slaves.
func BenchmarkScheduling(b *testing.B) {
	env := loadEnv(b)
	var fifo, lpt float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		r1, err := core.Run(env.CK34, 47, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Order = sched.LPT
		r2, err := core.Run(env.CK34, 47, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fifo, lpt = r1.TotalSeconds, r2.TotalSeconds
	}
	b.ReportMetric(fifo, "fifo_sim_s")
	b.ReportMetric(lpt, "lpt_sim_s")
}

// BenchmarkPolling is the polling ablation: the paper's busy round-robin
// polling vs an ideal event-driven master, CK34 at 47 slaves.
func BenchmarkPolling(b *testing.B) {
	env := loadEnv(b)
	var polled, eventDriven float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		r1, err := core.Run(env.CK34, 47, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.PollingScale = 0
		r2, err := core.Run(env.CK34, 47, cfg)
		if err != nil {
			b.Fatal(err)
		}
		polled, eventDriven = r1.TotalSeconds, r2.TotalSeconds
	}
	b.ReportMetric(polled, "polling_sim_s")
	b.ReportMetric(eventDriven, "eventdriven_sim_s")
}

// BenchmarkHierarchy is the master-tree ablation the paper proposes for
// master-bottleneck relief: flat vs 2-level masters, CK34, 40 workers.
func BenchmarkHierarchy(b *testing.B) {
	env := loadEnv(b)
	var flat, tree float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		r1, err := core.Run(env.CK34, 40, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Hierarchy = 4
		r2, err := core.Run(env.CK34, 40, cfg)
		if err != nil {
			b.Fatal(err)
		}
		flat, tree = r1.TotalSeconds, r2.TotalSeconds
	}
	b.ReportMetric(flat, "flat_sim_s")
	b.ReportMetric(tree, "hierarchy4_sim_s")
}

// BenchmarkCacheBatch is the structure-cache + batched-dispatch
// ablation: classic wire vs cached+batched+affinity on CK34 at 47
// slaves, reporting the NoC input-byte reduction alongside the
// simulated times.
func BenchmarkCacheBatch(b *testing.B) {
	env := loadEnv(b)
	var classic, wired, reduction, hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r1, err := core.Run(env.CK34, 47, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.CacheStructs = -1
		cfg.Batch = 8
		cfg.Affinity = true
		r2, err := core.Run(env.CK34, 47, cfg)
		if err != nil {
			b.Fatal(err)
		}
		classic, wired = r1.TotalSeconds, r2.TotalSeconds
		reduction, hitRate = r2.Wire.InputReduction, r2.Wire.CacheHitRate
	}
	b.ReportMetric(classic, "classic_sim_s")
	b.ReportMetric(wired, "cached_batched_affinity_sim_s")
	b.ReportMetric(reduction, "input_reduction_x")
	b.ReportMetric(hitRate, "cache_hit_rate")
}

// BenchmarkChipScaling is the multi-chip scale-out curve: CK34 sharded
// across 1, 2, 4 and 8 SCC chips at 47 slaves each over the default
// board interconnect and gather tree. Reported metrics are the 1- and
// 8-chip simulated times, the 8-chip scaling efficiency (speedup over
// 1 chip divided by 8), and the 8-chip interconnect volume and peak
// root-inbox depth — the inbox sat at 504 queued results before
// sub-master aggregation (BENCH_pr6.json) and is single-digit with
// blobs riding the gather tree. Feeds BENCH_pr9.json; run with
// -benchtime=1x.
func BenchmarkChipScaling(b *testing.B) {
	env := loadEnv(b)
	var t1, t8, eff8, interMB, inbox8 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 2, 4, 8} {
			cfg := core.MultiChipConfig{Config: core.DefaultConfig(), Chips: n}
			r, err := core.RunMultiChip(env.CK34, 47, cfg)
			if err != nil {
				b.Fatal(err)
			}
			switch n {
			case 1:
				t1 = r.TotalSeconds
			case 8:
				t8 = r.TotalSeconds
				eff8 = t1 / r.TotalSeconds / 8
				interMB = float64(r.Interchip.Bytes) / 1e6
				inbox8 = float64(r.Interchip.PeakRootInbox)
			}
		}
	}
	b.ReportMetric(t1, "chips1_sim_s")
	b.ReportMetric(t8, "chips8_sim_s")
	b.ReportMetric(eff8, "chips8_efficiency")
	b.ReportMetric(interMB, "chips8_interchip_mb")
	b.ReportMetric(inbox8, "chips8_peak_root_inbox")
}

// BenchmarkMCPSC exercises the multi-criteria extension end to end: a
// one-vs-all query with three methods partitioned over 12 slaves.
func BenchmarkMCPSC(b *testing.B) {
	ds := synth.Small(8, 55)
	methods := []mcpsc.Method{
		mcpsc.TMAlign{Opt: tmalign.FastOptions()},
		mcpsc.GaplessRMSD{},
		mcpsc.ContactOverlap{},
	}
	var simS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := mcpsc.RunOneVsAll(ds, 0, methods, 12, mcpsc.DefaultRunConfig())
		if err != nil {
			b.Fatal(err)
		}
		simS = r.TotalSeconds
	}
	b.ReportMetric(simS, "mcpsc_sim_s")
}

// BenchmarkPairStore measures what the memoized pair store buys a
// multi-config sweep: a CK34 multi-criteria all-vs-all run repeated at
// four slave counts, seed (no store: every sweep point re-computes all
// native kernels inline) vs store (one shared pairstore: each kernel is
// computed once, later points replay memoized scores). Simulated
// makespans are asserted identical — the store moves host wall-clock
// time only. Run with -benchtime=1x; the host-seconds metrics feed
// BENCH_pr5.json, where speedup_x must stay >= 2.
func BenchmarkPairStore(b *testing.B) {
	ds := synth.CK34()
	methods := []mcpsc.Method{
		mcpsc.TMAlign{Opt: tmalign.FastOptions()},
		mcpsc.GaplessRMSD{},
		mcpsc.ContactOverlap{},
	}
	counts := []int{12, 24, 36, 47}
	sweep := func(cfg mcpsc.RunConfig) []float64 {
		sims := make([]float64, 0, len(counts))
		for _, n := range counts {
			r, err := mcpsc.RunAllVsAll(ds, methods, mcpsc.EqualPartition(len(methods), n), cfg)
			if err != nil {
				b.Fatal(err)
			}
			sims = append(sims, r.TotalSeconds)
		}
		return sims
	}
	var seedS, storeS, speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seedSims := sweep(mcpsc.DefaultRunConfig())
		seedS = time.Since(t0).Seconds()

		cfg := mcpsc.DefaultRunConfig()
		cfg.Store = pairstore.New(0)
		t1 := time.Now()
		storeSims := sweep(cfg)
		storeS = time.Since(t1).Seconds()

		for k := range seedSims {
			if math.Float64bits(seedSims[k]) != math.Float64bits(storeSims[k]) {
				b.Fatalf("%d slaves: simulated makespan changed under the store: %v vs %v",
					counts[k], seedSims[k], storeSims[k])
			}
		}
		speedup = seedS / storeS
	}
	b.ReportMetric(seedS, "seed_host_s")
	b.ReportMetric(storeS, "store_host_s")
	b.ReportMetric(speedup, "speedup_x")
}

// BenchmarkPairCompare measures one native TM-align comparison of
// CK34-sized chains (the unit job of every experiment).
func BenchmarkPairCompare(b *testing.B) {
	ds := synth.CK34()
	x, y := ds.Structures[0], ds.Structures[1]
	opt := tmalign.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmalign.Compare(x, y, opt)
	}
}

// BenchmarkPairCompareFloat32 is BenchmarkPairCompare under the opt-in
// float32 DP fast path (-float32).
func BenchmarkPairCompareFloat32(b *testing.B) {
	ds := synth.CK34()
	x, y := ds.Structures[0], ds.Structures[1]
	opt := tmalign.DefaultOptions()
	opt.Float32 = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmalign.Compare(x, y, opt)
	}
}

// BenchmarkPruneFilter measures the full pre-filter pass over CK34's 561
// pairs (feature extraction amortised out), the cost -prune-tm pays to
// skip kernel evaluations.
func BenchmarkPruneFilter(b *testing.B) {
	ds := synth.CK34()
	feats := make([]prune.Features, ds.Len())
	for i, s := range ds.Structures {
		feats[i] = prune.Extract(s.CAs(), s.Sequence())
	}
	pairs := sched.AllVsAll(ds.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := prune.New(0.5)
		skipped := 0
		for _, p := range pairs {
			if f.Skip(&feats[p.I], &feats[p.J]) {
				skipped++
			}
		}
		if skipped == 0 {
			b.Fatal("filter skipped nothing")
		}
	}
	b.ReportMetric(float64(len(pairs)), "pairs/op")
}
