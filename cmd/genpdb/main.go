// Command genpdb writes the synthetic benchmark datasets (the CK34 and
// RS119 stand-ins) as PDB files, so they can be inspected, compared with
// external tools, or fed back through cmd/tmalign.
//
// Usage:
//
//	genpdb [-dataset CK34|RS119|all] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rckalign/internal/pdb"
	"rckalign/internal/synth"
)

func main() {
	dataset := flag.String("dataset", "all", "dataset to write: CK34, RS119 or all")
	out := flag.String("out", "datasets", "output directory")
	flag.Parse()

	names := []string{*dataset}
	if *dataset == "all" {
		names = []string{"CK34", "RS119"}
	}
	for _, name := range names {
		ds, err := synth.ByName(name)
		if err != nil {
			fatal(err)
		}
		dir := filepath.Join(*out, ds.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, s := range ds.Structures {
			path := filepath.Join(dir, s.ID+".pdb")
			if err := pdb.WriteFile(path, s); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d chains (%d residues) to %s\n", ds.Len(), ds.TotalResidues(), dir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genpdb:", err)
	os.Exit(1)
}
