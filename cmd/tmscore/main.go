// Command tmscore scores a model structure against a reference with the
// fixed residue correspondence given by residue numbers — the companion
// TM-score program of the Zhang lab, which TM-align's scoring machinery
// derives from. It reports TM-score, GDT-TS, GDT-HA, MaxSub and RMSD.
//
// Usage:
//
//	tmscore model.pdb reference.pdb
//	tmscore -demo
package main

import (
	"flag"
	"fmt"
	"os"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/synth"
	"rckalign/internal/tmscore"
)

func main() {
	demo := flag.Bool("demo", false, "score a perturbed synthetic model against its native structure")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmscore model.pdb reference.pdb\n       tmscore -demo\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var model, ref *pdb.Structure
	var err error
	if *demo {
		ds := synth.CK34()
		ref = ds.Structures[0]
		model = synth.Perturb(ref, ref.ID+"-model", synth.PerturbOptions{Noise: 1.2}, 99)
	} else {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		if model, err = pdb.ParseFile(flag.Arg(0)); err != nil {
			fatal(err)
		}
		if ref, err = pdb.ParseFile(flag.Arg(1)); err != nil {
			fatal(err)
		}
	}

	// Fixed correspondence by residue sequence number.
	refBySeq := map[int]geom.Vec3{}
	for _, r := range ref.Residues {
		refBySeq[r.Seq] = r.CA
	}
	var x, y []geom.Vec3
	for _, r := range model.Residues {
		if ca, ok := refBySeq[r.Seq]; ok {
			x = append(x, r.CA)
			y = append(y, ca)
		}
	}
	if len(x) < 3 {
		fatal(fmt.Errorf("fewer than 3 common residues between model and reference"))
	}

	fmt.Printf("Structure1: %s  Length= %4d (model)\n", model.ID, model.Len())
	fmt.Printf("Structure2: %s  Length= %4d (reference)\n", ref.ID, ref.Len())
	fmt.Printf("Number of residues in common= %4d\n\n", len(x))

	p := tmscore.FinalParams(float64(ref.Len()))
	tm, tr := p.Search(x, y, 1, nil)
	_, rmsd := geom.Superpose(x, y)
	gdt := tmscore.GDTScores(x, y, nil)
	maxsub := tmscore.MaxSub(x, y, nil)

	fmt.Printf("RMSD of the common residues= %8.3f\n\n", rmsd)
	fmt.Printf("TM-score    = %.4f (d0=%.2f, normalized by %d)\n", tm, p.D0, ref.Len())
	fmt.Printf("MaxSub-score= %.4f (d0=3.50)\n", maxsub)
	fmt.Printf("GDT-TS-score= %.4f %%(d<1)=%.4f %%(d<2)=%.4f %%(d<4)=%.4f %%(d<8)=%.4f\n",
		gdt.TS(), gdt.P1, gdt.P2, gdt.P4, gdt.P8)
	fmt.Printf("GDT-HA-score= %.4f %%(d<0.5)=%.4f %%(d<1)=%.4f %%(d<2)=%.4f %%(d<4)=%.4f\n",
		gdt.HA(), gdt.P05, gdt.P1, gdt.P2, gdt.P4)

	fmt.Println("\nRotation matrix to superpose model onto reference (x' = R*x + t):")
	for i := 0; i < 3; i++ {
		fmt.Printf("  %10.6f %10.6f %10.6f   t%d=%10.4f\n",
			tr.R[i][0], tr.R[i][1], tr.R[i][2], i, tr.T[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmscore:", err)
	os.Exit(1)
}
