// Command benchtables regenerates every table and figure of the paper's
// evaluation section, printing the reproduction's numbers next to the
// published ones.
//
// Usage:
//
//	benchtables                      # all tables, CK34 + RS119
//	benchtables -table 2             # a single table (1-5)
//	benchtables -ablations           # scheduling + hierarchy ablations
//	benchtables -cache DIR           # pair-result cache location
//	benchtables -ck34only            # skip RS119 (fast path)
package main

import (
	"flag"
	"fmt"
	"os"

	"rckalign/internal/experiments"
	"rckalign/internal/stats"
	"rckalign/internal/tmalign"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
	ablations := flag.Bool("ablations", false, "also run the scheduling and hierarchy ablations")
	figures := flag.Bool("figures", false, "also render Figures 5 and 6 as ASCII plots")
	cacheDir := flag.String("cache", "testdata/paircache", "pair-result cache directory")
	ck34only := flag.Bool("ck34only", false, "skip RS119 (Table III/IV/V show CK34 rows only)")
	fast := flag.Bool("fast", false, "fast TM-align profile when (re)computing pair results")
	flag.Parse()

	if *table == 1 {
		fmt.Println(experiments.TableI().String())
		return
	}

	opt := tmalign.DefaultOptions()
	if *fast {
		opt = tmalign.FastOptions()
	}
	var env *experiments.Env
	var err error
	if *ck34only {
		env, err = experiments.LoadCK34Only(*cacheDir, opt)
	} else {
		env, err = experiments.Load(*cacheDir, opt)
	}
	if err != nil {
		fatal(err)
	}

	emit := func(tb *stats.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Println(tb.String())
	}

	switch *table {
	case 0:
		fmt.Println(experiments.TableI().String())
		emit(env.TableII())
		emit(env.TableIII(), nil)
		emit(env.TableIV())
		emit(env.TableV())
		if *figures {
			if fig, err := env.Figure5(64, 20); err == nil {
				fmt.Println(fig)
			}
			if fig, err := env.Figure6(64, 20); err == nil {
				fmt.Println(fig)
			}
		}
		if *ablations {
			emit(env.SchedulingAblation())
			emit(env.HierarchyAblation())
			emit(env.FasterCoresAblation())
			emit(experiments.MCPSCPartitionAblation())
		}
	case 2:
		emit(env.TableII())
	case 3:
		emit(env.TableIII(), nil)
	case 4:
		emit(env.TableIV())
	case 5:
		emit(env.TableV())
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
	if *ablations && *table != 0 {
		emit(env.SchedulingAblation())
		emit(env.HierarchyAblation())
		emit(env.FasterCoresAblation())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
