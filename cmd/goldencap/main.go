// Command goldencap captures the simulated timings, farm statistics and
// PSC outputs of every run path on small synthetic datasets and writes
// them as JSON. The captured file is the reference for the golden
// equivalence test in internal/farm, which asserts that refactors of
// the run harness leave the simulated behaviour bit-for-bit unchanged.
//
// Regenerate (only when a timing model change is intended):
//
//	go run ./cmd/goldencap -out internal/farm/testdata/golden.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rckalign/internal/core"
	"rckalign/internal/dist"
	"rckalign/internal/mcpsc"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// FarmRun is one captured master–slaves execution.
type FarmRun struct {
	Name            string         `json:"name"`
	TotalSeconds    float64        `json:"total_seconds"`
	LoadSeconds     float64        `json:"load_seconds"`
	Collected       int            `json:"collected"`
	JobsPerSlave    map[string]int `json:"jobs_per_slave"`
	PollProbes      int            `json:"poll_probes"`
	MakespanSeconds float64        `json:"makespan_seconds"`
	// Tiled-only block accounting.
	Blocks        int     `json:"blocks,omitempty"`
	BlockLoads    int     `json:"block_loads,omitempty"`
	ReloadSeconds float64 `json:"reload_seconds,omitempty"`
}

// DistRun is one captured MCPC-driven distributed execution.
type DistRun struct {
	Name            string  `json:"name"`
	TotalSeconds    float64 `json:"total_seconds"`
	DiskBusySeconds float64 `json:"disk_busy_seconds"`
	Collected       int     `json:"collected"`
}

// MCPSCAllVsAll is one captured multi-criteria all-vs-all execution.
type MCPSCAllVsAll struct {
	Name                 string                 `json:"name"`
	TotalSeconds         float64                `json:"total_seconds"`
	Similarity           map[string][][]float64 `json:"similarity"`
	BusySecondsPerMethod map[string]float64     `json:"busy_seconds_per_method"`
}

// MCPSCOneVsAll is one captured multi-criteria one-vs-all query.
type MCPSCOneVsAll struct {
	Name         string               `json:"name"`
	TotalSeconds float64              `json:"total_seconds"`
	PerMethod    map[string][]float64 `json:"per_method"`
	Consensus    []float64            `json:"consensus"`
	Ranking      []int                `json:"ranking"`
}

// Golden is the full captured reference.
type Golden struct {
	CoreDataset  string          `json:"core_dataset"`
	MCPSCDataset string          `json:"mcpsc_dataset"`
	Farm         []FarmRun       `json:"farm"`
	Dist         []DistRun       `json:"dist"`
	AllVsAll     []MCPSCAllVsAll `json:"all_vs_all"`
	OneVsAll     []MCPSCOneVsAll `json:"one_vs_all"`
}

func jobsKey(m map[int]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[fmt.Sprint(k)] = v
	}
	return out
}

func main() {
	out := flag.String("out", "internal/farm/testdata/golden.json", "output path")
	flag.Parse()

	// The same small deterministic datasets the package tests use: the
	// native TM-align pass stays fast while exercising realistic job-size
	// variance.
	coreDS := synth.Small(8, 77)
	pr := core.ComputeAllPairs(coreDS, tmalign.FastOptions(), 0)
	g := Golden{CoreDataset: "Small(8,77)", MCPSCDataset: "Small(6,72)"}

	farmRun := func(name string, r core.RunResult) FarmRun {
		return FarmRun{
			Name:            name,
			TotalSeconds:    r.TotalSeconds,
			LoadSeconds:     r.LoadSeconds,
			Collected:       r.Collected,
			JobsPerSlave:    jobsKey(r.FarmStats.JobsPerSlave),
			PollProbes:      r.FarmStats.PollProbes,
			MakespanSeconds: r.FarmStats.MakespanSeconds,
		}
	}

	// Flat farm at several slave counts.
	for _, n := range []int{1, 4, 7} {
		r, err := core.Run(pr, n, core.DefaultConfig())
		check(err)
		g.Farm = append(g.Farm, farmRun(fmt.Sprintf("core-flat-s%d", n), r))
	}
	// LPT ordering.
	{
		cfg := core.DefaultConfig()
		cfg.Order = sched.LPT
		r, err := core.Run(pr, 5, cfg)
		check(err)
		g.Farm = append(g.Farm, farmRun("core-lpt-s5", r))
	}
	// Random ordering (seeded).
	{
		cfg := core.DefaultConfig()
		cfg.Order = sched.Random
		cfg.OrderSeed = 42
		r, err := core.Run(pr, 5, cfg)
		check(err)
		g.Farm = append(g.Farm, farmRun("core-random-s5", r))
	}
	// Event-driven polling ablation.
	{
		cfg := core.DefaultConfig()
		cfg.PollingScale = 0
		r, err := core.Run(pr, 4, cfg)
		check(err)
		g.Farm = append(g.Farm, farmRun("core-poll0-s4", r))
	}
	// Dual-threaded tile workers, even and odd (core-dropping) counts.
	for _, n := range []int{6, 7} {
		cfg := core.DefaultConfig()
		cfg.ThreadsPerWorker = 2
		r, err := core.Run(pr, n, cfg)
		check(err)
		g.Farm = append(g.Farm, farmRun(fmt.Sprintf("core-threads2-s%d", n), r))
	}
	// Hierarchical master tree.
	{
		cfg := core.DefaultConfig()
		cfg.Hierarchy = 2
		r, err := core.Run(pr, 6, cfg)
		check(err)
		g.Farm = append(g.Farm, farmRun("core-hier2-s6", r))
	}
	// Out-of-core tiled run: budget forces several blocks.
	{
		budget := coreDS.TotalResidues() * 2 / 5
		r, err := core.RunTiled(pr, 4, core.DefaultTiledConfig(budget))
		check(err)
		fr := farmRun("core-tiled-s4", r.RunResult)
		fr.Blocks = r.Blocks
		fr.BlockLoads = r.BlockLoads
		fr.ReloadSeconds = r.ReloadSeconds
		g.Farm = append(g.Farm, fr)
	}
	// Distributed MCPC baseline.
	for _, n := range []int{1, 5} {
		r, err := dist.Run(pr, n, dist.DefaultConfig())
		check(err)
		g.Dist = append(g.Dist, DistRun{
			Name:            fmt.Sprintf("dist-s%d", n),
			TotalSeconds:    r.TotalSeconds,
			DiskBusySeconds: r.DiskBusySeconds,
			Collected:       r.Collected,
		})
	}

	// Multi-criteria runs (cheap methods keep the native compute fast).
	// The scenarios pin the legacy flat 64-byte result size so the golden
	// file isolates harness refactors from the newer content-sized
	// ScoreBytes wire model.
	mds := synth.Small(6, 72)
	methods := []mcpsc.Method{mcpsc.GaplessRMSD{}, mcpsc.ContactOverlap{}}
	mcfg := mcpsc.DefaultRunConfig()
	mcfg.ResultBytes = func(mcpsc.Score) int { return 64 }
	{
		r, err := mcpsc.RunAllVsAll(mds, methods, []int{3, 3}, mcfg)
		check(err)
		g.AllVsAll = append(g.AllVsAll, MCPSCAllVsAll{
			Name:                 "mcpsc-allvsall-3+3",
			TotalSeconds:         r.TotalSeconds,
			Similarity:           r.Similarity,
			BusySecondsPerMethod: r.BusySecondsPerMethod,
		})
	}
	{
		r, err := mcpsc.RunOneVsAll(mds, 0, methods, 5, mcfg)
		check(err)
		g.OneVsAll = append(g.OneVsAll, MCPSCOneVsAll{
			Name:         "mcpsc-onevsall-q0-s5",
			TotalSeconds: r.TotalSeconds,
			PerMethod:    r.PerMethod,
			Consensus:    r.Consensus,
			Ranking:      r.Ranking,
		})
	}

	buf, err := json.MarshalIndent(g, "", "  ")
	check(err)
	buf = append(buf, '\n')
	check(os.WriteFile(*out, buf, 0o644))
	fmt.Printf("wrote %s (%d farm, %d dist, %d all-vs-all, %d one-vs-all runs)\n",
		*out, len(g.Farm), len(g.Dist), len(g.AllVsAll), len(g.OneVsAll))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldencap:", err)
		os.Exit(1)
	}
}
