// Command tmalign compares two protein structures with the TM-align
// algorithm and prints a TM-align-style report: the serial baseline of
// the paper.
//
// Usage:
//
//	tmalign [-fast] [-matrix] chain1.pdb chain2.pdb
//	tmalign -demo                 # compare two built-in synthetic chains
package main

import (
	"flag"
	"fmt"
	"os"

	"rckalign/internal/pdb"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	fast := flag.Bool("fast", false, "use the fast search profile (coarser, ~5x cheaper)")
	matrix := flag.Bool("matrix", false, "print the rotation matrix")
	demo := flag.Bool("demo", false, "compare two built-in synthetic structures instead of files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tmalign [-fast] [-matrix] chain1.pdb chain2.pdb\n       tmalign -demo\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var s1, s2 *pdb.Structure
	var err error
	if *demo {
		ds := synth.CK34()
		s1, s2 = ds.Structures[0], ds.Structures[1]
	} else {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		if s1, err = pdb.ParseFile(flag.Arg(0)); err != nil {
			fatal(err)
		}
		if s2, err = pdb.ParseFile(flag.Arg(1)); err != nil {
			fatal(err)
		}
	}

	opt := tmalign.DefaultOptions()
	if *fast {
		opt = tmalign.FastOptions()
	}
	r := tmalign.Compare(s1, s2, opt)

	fmt.Printf("Name of Chain_1: %s\n", r.Name1)
	fmt.Printf("Name of Chain_2: %s\n", r.Name2)
	fmt.Printf("Length of Chain_1: %d residues\n", r.Len1)
	fmt.Printf("Length of Chain_2: %d residues\n\n", r.Len2)
	fmt.Printf("Aligned length= %d, RMSD= %6.2f, Seq_ID=n_identical/n_aligned= %.3f\n",
		r.AlignedLen, r.RMSD, r.SeqID)
	fmt.Printf("TM-score= %.5f (if normalized by length of Chain_1, i.e., LN=%d)\n", r.TM1, r.Len1)
	fmt.Printf("TM-score= %.5f (if normalized by length of Chain_2, i.e., LN=%d)\n", r.TM2, r.Len2)
	switch {
	case r.TM() >= 0.5:
		fmt.Println("(TM-score > 0.5: the structures share the same fold)")
	case r.TM() >= 0.3:
		fmt.Println("(0.3 < TM-score < 0.5: possible fold similarity)")
	default:
		fmt.Println("(TM-score < 0.3: no significant structural similarity)")
	}
	if *matrix {
		fmt.Println("\nRotation matrix to superpose Chain_1 onto Chain_2 (x' = R*x + t):")
		for i := 0; i < 3; i++ {
			fmt.Printf("  %10.6f %10.6f %10.6f   t%d=%10.4f\n",
				r.Transform.R[i][0], r.Transform.R[i][1], r.Transform.R[i][2], i, r.Transform.T[i])
		}
	}
	fmt.Printf("\nOperation counts: %s\n", r.Ops.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmalign:", err)
	os.Exit(1)
}
