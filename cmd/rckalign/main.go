// Command rckalign runs the all-vs-all protein structure comparison task
// on the simulated SCC many-core processor, reproducing the paper's
// Experiment II: a master core loads the dataset, FARMs the pairwise
// TM-align jobs to slave cores, and the simulated end-to-end time and
// speedup are reported.
//
// Usage:
//
//	rckalign [-dataset CK34|RS119] [-slaves N | -sweep] [-order FIFO|LPT|Random]
//	         [-hierarchy H] [-cache DIR] [-fast] [-csv] [-faults SPEC]
//
// -faults takes a fault-injection spec (see internal/fault.ParseSpec),
// e.g. "seed=1;kill=12@40;kill=30@90;drop=*>0@p0.01", and switches the
// run onto the fault-tolerant farm protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/sched"
	"rckalign/internal/stats"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "CK34", "dataset: CK34 or RS119")
	slaves := flag.Int("slaves", 47, "number of slave cores (1-47)")
	sweep := flag.Bool("sweep", false, "sweep slave counts 1,3,...,47 (the paper's Experiment II)")
	order := flag.String("order", "FIFO", "job ordering: FIFO, LPT, SPT or Random")
	hierarchy := flag.Int("hierarchy", 0, "number of sub-masters (0 = single master, the paper's setup)")
	cacheDir := flag.String("cache", "testdata/paircache", "pair-result cache directory (empty = always recompute)")
	fast := flag.Bool("fast", false, "use the fast TM-align profile when (re)computing pair results")
	csv := flag.Bool("csv", false, "emit CSV instead of a text table")
	util := flag.Bool("util", false, "print the per-core utilization of the (last) run")
	threads := flag.Int("threads", 1, "threads per worker (2 = dual-core tile workers; paper future work)")
	memBudget := flag.Int("membudget", 0, "master memory budget in residues (0 = unlimited; >0 = out-of-core tiled run)")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. \"seed=1;kill=12@40;drop=*>0@p0.01\" (empty = no faults)")
	deadline := flag.Float64("deadline", 0, "fault-tolerant per-job deadline in seconds (0 = derive from workload)")
	flag.Parse()

	ds, err := synth.ByName(*dataset)
	if err != nil {
		fatal(err)
	}
	opt := tmalign.DefaultOptions()
	if *fast {
		opt = tmalign.FastOptions()
	}
	cachePath := ""
	if *cacheDir != "" {
		cachePath = filepath.Join(*cacheDir, ds.Name+".gob")
	}
	fmt.Fprintf(os.Stderr, "loading %s (%d chains, %d pairs)...\n", ds.Name, ds.Len(), ds.Pairs())
	pr, err := core.ComputeOrLoad(ds, opt, cachePath, 0)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Hierarchy = *hierarchy
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
		cfg.FT.JobDeadlineSeconds = *deadline
	}
	switch strings.ToUpper(*order) {
	case "FIFO":
		cfg.Order = sched.FIFO
	case "LPT":
		cfg.Order = sched.LPT
	case "SPT":
		cfg.Order = sched.SPT
	case "RANDOM":
		cfg.Order = sched.Random
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}

	baseline := pr.SerialSeconds(costmodel.P54C())
	counts := []int{*slaves}
	if *sweep {
		counts = core.OddSlaveCounts(47)
	}

	tb := stats.NewTable(
		fmt.Sprintf("rckAlign all-vs-all on %s (serial P54C baseline: %.0f s)", ds.Name, baseline),
		"Slave Cores", "Time (s)", "Speedup", "Efficiency")
	cfg.ThreadsPerWorker = *threads
	var rec *trace.Recorder
	for _, n := range counts {
		if *util {
			rec = trace.New()
		}
		cfg.Trace = rec
		var rep farm.Report
		if *memBudget > 0 {
			tcfg := core.DefaultTiledConfig(*memBudget)
			tcfg.Config = cfg
			tcfg.MemoryBudgetResidues = *memBudget
			r, err := core.RunTiled(pr, n, tcfg)
			if err != nil {
				fatal(err)
			}
			rep = r.Report
		} else {
			r, err := core.Run(pr, n, cfg)
			if err != nil {
				fatal(err)
			}
			rep = r.Report
		}
		if rep.DroppedCores > 0 {
			fmt.Fprintf(os.Stderr, "note: %d of %d slave cores idle (%d is not a multiple of %d threads/worker)\n",
				rep.DroppedCores, n, n, *threads)
		}
		sp := baseline / rep.TotalSeconds
		// Efficiency counts only the cores that actually form workers.
		tb.AddRowf(n, rep.TotalSeconds, sp, sp/float64(rep.EffectiveCores))
		if f := rep.Faults; f != nil {
			fmt.Fprintf(os.Stderr,
				"faults (%d slaves): injected kills=%d stalls=%d drops=%d delays=%d corruptions=%d; "+
					"dead=%v timeouts=%d retries=%d reassigned=%d corrupt-detected=%d duplicates=%d lost=%d blacklisted=%v\n",
				n, f.Injected.CoresKilled, f.Injected.CoresStalled, f.Injected.Dropped,
				f.Injected.Delayed, f.Injected.Corrupted, f.DeadCores, f.Timeouts,
				f.Retries, f.Reassigned, f.DetectedCorrupt, f.DuplicatesDropped,
				f.LostJobs, f.Blacklisted)
			if f.LostJobs > 0 {
				fmt.Fprintf(os.Stderr, "warning: degraded completion, %d of %d pairs lost\n",
					f.LostJobs, ds.Pairs())
			}
		}
	}
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}
	if rec != nil {
		fmt.Println("\nper-core utilization (last run):")
		fmt.Print(rec.UtilizationTable(40))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rckalign:", err)
	os.Exit(1)
}
