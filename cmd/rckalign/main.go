// Command rckalign runs the all-vs-all protein structure comparison task
// on the simulated SCC many-core processor, reproducing the paper's
// Experiment II: a master core loads the dataset, FARMs the pairwise
// TM-align jobs to slave cores, and the simulated end-to-end time and
// speedup are reported.
//
// Usage:
//
//	rckalign [-dataset CK34|RS119] [-slaves N | -sweep] [-order FIFO|LPT|Random]
//	         [-hierarchy H] [-cache DIR] [-fast] [-csv] [-faults SPEC]
//	         [-structcache N] [-batch K] [-tile T] [-affinity] [-hostpar N]
//	         [-metrics-out FILE] [-trace-out FILE] [-scores-out FILE] [-heatmap]
//
// -structcache enables the slave-side structure-cache model (-1 derives
// the per-slave capacity from the default memory budget), -batch bundles
// up to K jobs per request message, -tile regroups the pair grid into
// T x T blocks for cache locality, and -affinity pins whole blocks to
// slaves. All four only re-frame the wire protocol: the TM-align scores
// are bit-identical to the classic run, which -scores-out lets you check
// by dumping every pair's scores deterministically (sorted by pair, full
// float64 precision) for a byte-for-byte diff between configurations.
//
// -hostpar fans the native TM-align evaluation on a pair-cache miss out
// over N host worker goroutines via a memoized pair store. It only
// moves host wall-clock time: simulated timings, reports, metrics and
// -scores-out dumps are bit-identical for every N (0 = serial).
//
// -prune-tm T enables the opt-in similarity pre-filter (see
// internal/prune): pairs whose conservative TM upper bound — derived
// from chain lengths, secondary-structure composition and a cheap
// sequence alignment — falls below T are skipped entirely, never
// reaching the TM-align kernel, the farm or the -scores-out dump. At
// T=0 (default) every pair is compared and output is byte-identical to
// previous releases. -float32 switches the kernel's DP score matrix to
// single-precision arithmetic (a measurable speedup on cache-bound
// chains); superposition and TM-scores stay float64, but near-tied
// alignment choices may drift, so it is off by default.
//
// -metrics-out dumps the run's metrics registry (counters, histograms,
// time series from every simulation layer) as deterministic JSON;
// -trace-out writes a Chrome trace-event file loadable in Perfetto
// (ui.perfetto.dev) with one thread track per core and counter tracks
// for the master's mailbox depth and mesh link occupancy. On a sweep,
// both describe the last run.
//
// -faults takes a fault-injection spec (see internal/fault.ParseSpec),
// e.g. "seed=1;kill=12@40;kill=30@90;drop=*>0@p0.01", and switches the
// run onto the fault-tolerant farm protocol.
//
// -chips N shards the pair matrix across N simulated SCC chips joined
// by a board-level interconnect: a root master on chip 0 scatters whole
// tile blocks to per-chip sub-masters, each chip farms its shard on its
// own mesh and aggregates its results locally, and the aggregate blobs
// travel back up the -gather topology ("tree" — a fan-in tree of
// configurable arity, "tree:2" — or "flat", every chip straight to the
// root). -chips 1 (the default) is the classic single-chip run,
// byte-identical in reports and -scores-out dumps; scores stay
// byte-identical at every chip count and gather mode. -interchip
// selects the interconnect cost profile: a name (board, cluster, ideal)
// or "lat=2e-6,bw=1.6e9[,recv=5e-7][,ports=1]" (unset keys inherit the
// board profile). -faults (global core ids, chip = id/48) and -affinity
// work per chip; only -hierarchy and -membudget remain single-chip
// features rejected at -chips > 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/interchip"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/prune"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
	"rckalign/internal/stats"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

// cliFlags gathers the numeric/enum flag values that validateFlags
// checks before any work starts.
type cliFlags struct {
	Slaves      int
	Sweep       bool
	Order       string
	Hierarchy   int
	Threads     int
	MemBudget   int
	Deadline    float64
	Polling     float64
	StructCache int
	Batch       int
	Tile        int
	HostPar     int
	Chips       int
	Interchip   string
	Gather      string
	Affinity    bool
	FaultSpec   string
	PruneTM     float64
}

// maxChips bounds -chips: beyond 64 chips the single root master is the
// whole story and the simulation only burns memory.
const maxChips = 64

// validateFlags rejects out-of-range flag values with a one-line
// diagnostic before the dataset is even loaded, resolving the job
// ordering, the interchip profile and the gather topology. Values with
// documented sentinel semantics (-structcache -1, -tile -1, -batch 0,
// -polling 0) stay valid. The remaining single-chip-only features
// (-hierarchy, -membudget) are rejected in combination with -chips > 1
// here, so the conflict costs one line instead of a loaded dataset.
func validateFlags(f cliFlags) (sched.Order, interchip.Config, farm.GatherConfig, error) {
	var icfg interchip.Config
	var gcfg farm.GatherConfig
	ord, ok := map[string]sched.Order{
		"FIFO": sched.FIFO, "LPT": sched.LPT, "SPT": sched.SPT, "RANDOM": sched.Random,
	}[strings.ToUpper(f.Order)]
	if !ok {
		return 0, icfg, gcfg, fmt.Errorf("-order %q is not FIFO, LPT, SPT or Random", f.Order)
	}
	if !f.Sweep && (f.Slaves < 1 || f.Slaves > 47) {
		return 0, icfg, gcfg, fmt.Errorf("-slaves %d outside [1,47]", f.Slaves)
	}
	if f.Hierarchy < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-hierarchy %d is negative", f.Hierarchy)
	}
	if f.Threads < 1 {
		return 0, icfg, gcfg, fmt.Errorf("-threads %d below 1", f.Threads)
	}
	if f.MemBudget < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-membudget %d is negative", f.MemBudget)
	}
	if f.Deadline < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-deadline %g is negative", f.Deadline)
	}
	if f.Polling < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-polling %g is negative", f.Polling)
	}
	if f.StructCache < -1 {
		return 0, icfg, gcfg, fmt.Errorf("-structcache %d below -1 (-1 = derive, 0 = off)", f.StructCache)
	}
	if f.Batch < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-batch %d is negative (0 or 1 = one message per job)", f.Batch)
	}
	if f.Tile < -1 {
		return 0, icfg, gcfg, fmt.Errorf("-tile %d below -1 (-1 = force off, 0 = auto)", f.Tile)
	}
	if f.HostPar < 0 {
		return 0, icfg, gcfg, fmt.Errorf("-hostpar %d is negative (0 = serial host evaluation)", f.HostPar)
	}
	if f.PruneTM < 0 || f.PruneTM > 1 {
		return 0, icfg, gcfg, fmt.Errorf("-prune-tm %g outside [0,1] (0 = no pruning)", f.PruneTM)
	}
	if f.Chips < 1 || f.Chips > maxChips {
		return 0, icfg, gcfg, fmt.Errorf("-chips %d outside [1,%d]", f.Chips, maxChips)
	}
	if f.Interchip == "" {
		icfg = interchip.DefaultConfig()
	} else {
		var err error
		if icfg, err = interchip.ParseSpec(f.Interchip); err != nil {
			return 0, icfg, gcfg, fmt.Errorf("-interchip %q: %v", f.Interchip, err)
		}
	}
	var err error
	if gcfg, err = farm.ParseGatherSpec(f.Gather); err != nil {
		return 0, icfg, gcfg, fmt.Errorf("-gather %q: %v", f.Gather, err)
	}
	if f.Chips > 1 {
		switch {
		case f.Hierarchy > 0:
			return 0, icfg, gcfg, fmt.Errorf("-chips %d with -hierarchy is unsupported (the chips are the hierarchy)", f.Chips)
		case f.MemBudget > 0:
			return 0, icfg, gcfg, fmt.Errorf("-chips %d with -membudget is unsupported (tiled runs are single-chip)", f.Chips)
		case f.Affinity && f.FaultSpec != "":
			return 0, icfg, gcfg, fmt.Errorf("-chips %d with -affinity and -faults is unsupported (dynamic farms have no fault-tolerant variant)", f.Chips)
		}
	}
	return ord, icfg, gcfg, nil
}

func main() {
	dataset := flag.String("dataset", "CK34", "dataset: CK34 or RS119")
	slaves := flag.Int("slaves", 47, "number of slave cores (1-47)")
	sweep := flag.Bool("sweep", false, "sweep slave counts 1,3,...,47 (the paper's Experiment II)")
	order := flag.String("order", "FIFO", "job ordering: FIFO, LPT, SPT or Random")
	hierarchy := flag.Int("hierarchy", 0, "number of sub-masters (0 = single master, the paper's setup)")
	cacheDir := flag.String("cache", "testdata/paircache", "pair-result cache directory (empty = always recompute)")
	fast := flag.Bool("fast", false, "use the fast TM-align profile when (re)computing pair results")
	csv := flag.Bool("csv", false, "emit CSV instead of a text table")
	util := flag.Bool("util", false, "print the per-core utilization of the (last) run")
	threads := flag.Int("threads", 1, "threads per worker (2 = dual-core tile workers; paper future work)")
	memBudget := flag.Int("membudget", 0, "master memory budget in residues (0 = unlimited; >0 = out-of-core tiled run)")
	faultSpec := flag.String("faults", "", "fault-injection spec, e.g. \"seed=1;kill=12@40;drop=*>0@p0.01\" (empty = no faults)")
	deadline := flag.Float64("deadline", 0, "fault-tolerant per-job deadline in seconds (0 = derive from workload)")
	polling := flag.Float64("polling", 1, "scale the master's per-collection polling discovery cost (0 = ideal event-driven, 1 = the paper's busy polling; large values emulate fine-grained jobs saturating the master)")
	structCache := flag.Int("structcache", 0, "slave-side structure-cache capacity in structures (0 = off, the paper's wire; -1 = derive from the per-core memory budget)")
	batch := flag.Int("batch", 0, "bundle up to this many jobs per request message (0 or 1 = one message per job)")
	tile := flag.Int("tile", 0, "blocked pair-ordering tile size (0 = auto when caching/batching/affinity is on; -1 = force off)")
	affinity := flag.Bool("affinity", false, "pin whole tile blocks to slaves (max cache reuse, coarser balance; fault-free runs only)")
	scoresOut := flag.String("scores-out", "", "write the (last) run's per-pair TM-align scores, sorted by pair, to this file")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry snapshot of the (last) run as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON of the (last) run to this file")
	heatmap := flag.Bool("heatmap", false, "print the mesh link heatmap of the (last) run")
	hostpar := flag.Int("hostpar", runtime.GOMAXPROCS(0), "host worker goroutines for native pair evaluation on a cache miss (0 = serial; simulated results are identical either way)")
	chips := flag.Int("chips", 1, "shard the pair matrix across this many SCC chips (1 = the classic single-chip run, byte-identical reports and scores)")
	interchipSpec := flag.String("interchip", "", "inter-chip interconnect profile: board, cluster, ideal, or \"lat=S,bw=B[,recv=S][,ports=N]\" (empty = board; only meaningful with -chips > 1)")
	gatherSpec := flag.String("gather", "", "multi-chip result gather topology: tree, tree:ARITY, or flat (empty = tree of arity 4; only meaningful with -chips > 1)")
	pruneTM := flag.Float64("prune-tm", 0, "skip pairs whose conservative TM upper bound falls below this threshold (0 = compare every pair; pruned pairs are absent from -scores-out)")
	float32Flag := flag.Bool("float32", false, "use the float32 DP-matrix fast path when (re)computing pair results (scores may drift on near-tied alignments; off = bit-exact float64)")
	flag.Parse()

	ord, icfg, gcfg, err := validateFlags(cliFlags{
		Slaves: *slaves, Sweep: *sweep, Order: *order, Hierarchy: *hierarchy,
		Threads: *threads, MemBudget: *memBudget, Deadline: *deadline,
		Polling: *polling, StructCache: *structCache, Batch: *batch,
		Tile: *tile, HostPar: *hostpar, Chips: *chips, Interchip: *interchipSpec,
		Gather: *gatherSpec, Affinity: *affinity, FaultSpec: *faultSpec,
		PruneTM: *pruneTM,
	})
	if err != nil {
		usageFatal(err)
	}

	ds, err := synth.ByName(*dataset)
	if err != nil {
		usageFatal(err)
	}
	opt := tmalign.DefaultOptions()
	if *fast {
		opt = tmalign.FastOptions()
	}
	opt.Float32 = *float32Flag
	cachePath := ""
	if *cacheDir != "" {
		cachePath = filepath.Join(*cacheDir, ds.Name+".gob")
		if *float32Flag {
			// The float32 fast path may produce (slightly) different scores,
			// so it must not share the float64 cache file.
			cachePath = filepath.Join(*cacheDir, ds.Name+".f32.gob")
		}
	}
	// -hostpar 0 means serial host evaluation; the store still memoizes.
	workers := *hostpar
	if workers == 0 {
		workers = 1
	}
	store := pairstore.New(workers)
	fmt.Fprintf(os.Stderr, "loading %s (%d chains, %d pairs)...\n", ds.Name, ds.Len(), ds.Pairs())
	var pr *core.PairResults
	var pruneRep *prune.Report
	if *pruneTM > 0 {
		// Pruning changes the workload, so the full-matrix disk cache does
		// not apply: survivors are computed through the (memoized) pair
		// store and skipped pairs never reach the TM-align kernel.
		kept, rep := core.PrunePairs(ds, *pruneTM)
		pruneRep = rep
		fmt.Fprintf(os.Stderr, "prune: %d of %d pairs below TM bound %g (%.1f%% skipped, filter cost %d DP cells)\n",
			rep.Skipped, rep.Total, rep.Threshold, 100*rep.SkipFraction(), rep.DPCells)
		pr = core.ComputePairsShared(ds, opt, store, kept)
	} else {
		var err error
		pr, err = core.ComputeOrLoadShared(ds, opt, cachePath, store)
		if err != nil {
			fatal(err)
		}
	}

	cfg := core.DefaultConfig()
	cfg.Hierarchy = *hierarchy
	cfg.PollingScale = *polling
	cfg.CacheStructs = *structCache
	cfg.Batch = *batch
	cfg.Tile = *tile
	cfg.Affinity = *affinity
	if *faultSpec != "" {
		plan, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
		cfg.FT.JobDeadlineSeconds = *deadline
	}
	cfg.Order = ord
	cfg.Prune = pruneRep

	baseline := pr.SerialSeconds(costmodel.P54C())
	counts := []int{*slaves}
	if *sweep {
		counts = core.OddSlaveCounts(47)
	}

	tb := stats.NewTable(
		fmt.Sprintf("rckAlign all-vs-all on %s (serial P54C baseline: %.0f s)", ds.Name, baseline),
		"Slave Cores", "Time (s)", "Speedup", "Efficiency", "Peak Mbox", "Worst Link Util")
	cfg.ThreadsPerWorker = *threads
	// Results travel the simulated farm as *tmalign.Result pointers, so a
	// reverse index recovers each collected result's pair for -scores-out.
	pairOf := make(map[*tmalign.Result]sched.Pair, len(pr.Pairs))
	for k, r := range pr.Results {
		pairOf[r] = pr.Pairs[k]
	}
	var rec *trace.Recorder
	var reg *metrics.Registry
	var lastRep farm.Report
	var scores map[sched.Pair]*tmalign.Result
	for _, n := range counts {
		if *scoresOut != "" {
			scores = make(map[sched.Pair]*tmalign.Result, len(pr.Pairs))
			cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) {
				if res, ok := r.Payload.(*tmalign.Result); ok {
					scores[pairOf[res]] = res
				}
			})
		}
		if *util || *traceOut != "" {
			rec = trace.New()
		}
		cfg.Trace = rec
		// Metrics are always on in the CLI: they are passive (timings are
		// unchanged) and feed the mailbox/link columns of every run.
		reg = metrics.New()
		cfg.Metrics = reg
		var rep farm.Report
		if *chips > 1 {
			r, err := core.RunMultiChip(pr, n, core.MultiChipConfig{
				Config: cfg, Chips: *chips, Interchip: icfg, Gather: gcfg,
			})
			if err != nil {
				fatal(err)
			}
			rep = r.Report
		} else if *memBudget > 0 {
			tcfg := core.DefaultTiledConfig(*memBudget)
			tcfg.Config = cfg
			tcfg.MemoryBudgetResidues = *memBudget
			r, err := core.RunTiled(pr, n, tcfg)
			if err != nil {
				fatal(err)
			}
			rep = r.Report
		} else {
			r, err := core.Run(pr, n, cfg)
			if err != nil {
				fatal(err)
			}
			rep = r.Report
		}
		if rep.DroppedCores > 0 {
			fmt.Fprintf(os.Stderr, "note: %d of %d slave cores idle (%d is not a multiple of %d threads/worker)\n",
				rep.DroppedCores, n, n, *threads)
		}
		sp := baseline / rep.TotalSeconds
		// Efficiency counts only the cores that actually form workers.
		var peakMbox, worstUtil float64
		if rep.Metrics != nil {
			peakMbox = rep.Metrics.PeakMailboxDepth
			worstUtil = rep.Metrics.WorstLinkUtilization
		}
		tb.AddRowf(n, rep.TotalSeconds, sp, sp/float64(rep.EffectiveCores),
			fmt.Sprintf("%.0f", peakMbox), fmt.Sprintf("%.2e", worstUtil))
		lastRep = rep
		if w := rep.Wire; w != nil {
			fmt.Fprintf(os.Stderr,
				"wire (%d slaves): input %.2f MB -> %.2f MB (%.2fx reduction); cache cap=%d hit-rate=%.1f%% evictions=%d; "+
					"batches=%d mean-jobs=%.1f max-jobs=%d\n",
				n, float64(w.BaselineInputBytes)/1e6, float64(w.ShippedInputBytes)/1e6, w.InputReduction,
				w.CacheCapacity, 100*w.CacheHitRate, w.CacheEvictions,
				w.Batches, w.MeanBatchJobs, w.MaxBatchJobs)
		}
		if ic := rep.Interchip; ic != nil {
			fmt.Fprintf(os.Stderr,
				"interchip (%d chips x %d slaves, %s): transfers=%d total %.2f MB (shards %.2f MB, results %.2f MB vs %.2f MB per-pair); "+
					"send-wait %.3f s; peak root inbox=%d; intra-chip %.2f MB\n",
				rep.Chips, n, ic.Profile, ic.Transfers, float64(ic.Bytes)/1e6,
				float64(ic.ShardBytes)/1e6, float64(ic.ResultBytes)/1e6, float64(ic.PerPairResultBytes)/1e6,
				ic.SendWaitSeconds, ic.PeakRootInbox, float64(ic.IntraChipBytes)/1e6)
			fmt.Fprintf(os.Stderr,
				"gather (%s arity=%d depth=%d): root fan-in=%d flows=%d; %d aggregate blobs\n",
				ic.GatherMode, ic.GatherArity, ic.GatherDepth, ic.RootFanIn, ic.RootFlows, ic.AggMessages)
			for _, gl := range ic.GatherLevels {
				fmt.Fprintf(os.Stderr, "  level %d: %d blobs, mean hop %.2e s, max %.2e s\n",
					gl.Level, gl.Blobs, gl.MeanLatencySeconds, gl.MaxLatencySeconds)
			}
			for _, cr := range rep.PerChip {
				fmt.Fprintf(os.Stderr, "  chip %d (%s): jobs=%d mean-util=%.1f%% peak-mbox=%.0f shard %.2f MB results %.2f MB\n",
					cr.Chip, cr.Master, cr.Collected, 100*cr.MeanUtilization,
					cr.PeakMailboxDepth, float64(cr.ShardBytes)/1e6, float64(cr.ResultBytes)/1e6)
			}
		}
		if f := rep.Faults; f != nil {
			fmt.Fprintf(os.Stderr,
				"faults (%d slaves): injected kills=%d stalls=%d drops=%d delays=%d corruptions=%d; "+
					"dead=%v timeouts=%d retries=%d reassigned=%d corrupt-detected=%d duplicates=%d lost=%d blacklisted=%v\n",
				n, f.Injected.CoresKilled, f.Injected.CoresStalled, f.Injected.Dropped,
				f.Injected.Delayed, f.Injected.Corrupted, f.DeadCores, f.Timeouts,
				f.Retries, f.Reassigned, f.DetectedCorrupt, f.DuplicatesDropped,
				f.LostJobs, f.Blacklisted)
			if f.LostJobs > 0 {
				fmt.Fprintf(os.Stderr, "warning: degraded completion, %d of %d pairs lost\n",
					f.LostJobs, ds.Pairs())
			}
		}
	}
	// Host-side pair-store effectiveness: across a sweep every run after
	// the first replays memoized results, so hits/misses show how much
	// native TM-align work the store saved this invocation.
	ps := store.StatsSnapshot()
	fmt.Fprintf(os.Stderr, "pairstore: %d hits / %d misses (%.1f%% hit rate), %d entries resident\n",
		ps.Hits, ps.Misses, 100*ps.HitRate, ps.Entries)
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}
	if *util && rec != nil {
		fmt.Println("\nper-core utilization (last run):")
		fmt.Print(rec.UtilizationTable(40))
	}
	if *heatmap {
		if lastRep.Metrics != nil && lastRep.Metrics.LinkHeatmap != "" {
			fmt.Println("\nmesh link heatmap (last run):")
			fmt.Print(lastRep.Metrics.LinkHeatmap)
		} else {
			fmt.Fprintln(os.Stderr, "note: no link heatmap (mesh ran without contention modelling)")
		}
	}
	if *scoresOut != "" {
		err := writeFileWith(*scoresOut, func(w io.Writer) error {
			// pr.Pairs is already in canonical all-vs-all order, so the dump
			// is deterministic regardless of collection order; %.17g round-
			// trips float64 exactly, making files diffable bit-for-bit.
			for _, p := range pr.Pairs {
				res, ok := scores[p]
				if !ok {
					continue // lost under a degraded fault run
				}
				if _, err := fmt.Fprintf(w, "%d %d %.17g %.17g %.17g %d %.17g\n",
					p.I, p.J, res.TM1, res.TM2, res.RMSD, res.AlignedLen, res.SeqID); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d pair scores to %s\n", len(scores), *scoresOut)
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, reg.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		ct := farm.BuildChromeTrace(rec, reg)
		if err := writeFileWith(*traceOut, ct.Write); err != nil {
			fatal(err)
		}
	}
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rckalign:", err)
	os.Exit(1)
}

// usageFatal reports a flag-validation problem: one line on stderr and
// exit code 2, the conventional bad-usage status (matching what the
// flag package itself uses for unparseable flags).
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "rckalign:", err)
	os.Exit(2)
}
