package main

import (
	"strings"
	"testing"

	"rckalign/internal/farm"
	"rckalign/internal/interchip"
	"rckalign/internal/sched"
)

// valid returns a flag set that passes validation; tests mutate one
// field at a time.
func valid() cliFlags {
	return cliFlags{Slaves: 47, Order: "FIFO", Threads: 1, Polling: 1, Chips: 1}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*cliFlags)
		wantErr string // substring of the one-line diagnostic; "" = valid
	}{
		{"defaults", func(f *cliFlags) {}, ""},
		{"order lpt lowercase", func(f *cliFlags) { f.Order = "lpt" }, ""},
		{"order unknown", func(f *cliFlags) { f.Order = "LIFO" }, "-order"},
		{"slaves zero", func(f *cliFlags) { f.Slaves = 0 }, "-slaves"},
		{"slaves too many", func(f *cliFlags) { f.Slaves = 48 }, "-slaves"},
		{"slaves ignored under sweep", func(f *cliFlags) { f.Slaves = 0; f.Sweep = true }, ""},
		{"hierarchy negative", func(f *cliFlags) { f.Hierarchy = -1 }, "-hierarchy"},
		{"threads zero", func(f *cliFlags) { f.Threads = 0 }, "-threads"},
		{"membudget negative", func(f *cliFlags) { f.MemBudget = -5 }, "-membudget"},
		{"deadline negative", func(f *cliFlags) { f.Deadline = -1 }, "-deadline"},
		{"polling negative", func(f *cliFlags) { f.Polling = -0.5 }, "-polling"},
		{"polling zero is the event-driven ablation", func(f *cliFlags) { f.Polling = 0 }, ""},
		{"structcache derive sentinel", func(f *cliFlags) { f.StructCache = -1 }, ""},
		{"structcache below sentinel", func(f *cliFlags) { f.StructCache = -2 }, "-structcache"},
		{"batch zero is classic wire", func(f *cliFlags) { f.Batch = 0 }, ""},
		{"batch negative", func(f *cliFlags) { f.Batch = -1 }, "-batch"},
		{"tile force-off sentinel", func(f *cliFlags) { f.Tile = -1 }, ""},
		{"tile below sentinel", func(f *cliFlags) { f.Tile = -2 }, "-tile"},
		{"hostpar zero is serial", func(f *cliFlags) { f.HostPar = 0 }, ""},
		{"hostpar negative", func(f *cliFlags) { f.HostPar = -4 }, "-hostpar"},
		{"chips four", func(f *cliFlags) { f.Chips = 4 }, ""},
		{"chips zero", func(f *cliFlags) { f.Chips = 0 }, "-chips"},
		{"chips above cap", func(f *cliFlags) { f.Chips = 65 }, "-chips"},
		{"interchip named profile", func(f *cliFlags) { f.Chips = 2; f.Interchip = "cluster" }, ""},
		{"interchip key-value spec", func(f *cliFlags) { f.Chips = 2; f.Interchip = "lat=1e-6,bw=2e9" }, ""},
		{"interchip unknown profile", func(f *cliFlags) { f.Interchip = "warp" }, "-interchip"},
		{"interchip bad value", func(f *cliFlags) { f.Interchip = "bw=fast" }, "-interchip"},
		{"chips with faults", func(f *cliFlags) { f.Chips = 2; f.FaultSpec = "kill=3@10" }, ""},
		{"chips with affinity", func(f *cliFlags) { f.Chips = 2; f.Affinity = true }, ""},
		{"chips with affinity and faults", func(f *cliFlags) {
			f.Chips = 2
			f.Affinity = true
			f.FaultSpec = "kill=3@10"
		}, "-affinity"},
		{"chips with hierarchy", func(f *cliFlags) { f.Chips = 2; f.Hierarchy = 4 }, "-hierarchy"},
		{"chips with membudget", func(f *cliFlags) { f.Chips = 2; f.MemBudget = 5000 }, "-membudget"},
		{"single chip keeps faults", func(f *cliFlags) { f.Chips = 1; f.FaultSpec = "kill=3@10" }, ""},
		{"gather tree", func(f *cliFlags) { f.Chips = 8; f.Gather = "tree" }, ""},
		{"gather tree with arity", func(f *cliFlags) { f.Chips = 8; f.Gather = "tree:2" }, ""},
		{"gather flat", func(f *cliFlags) { f.Chips = 8; f.Gather = "flat" }, ""},
		{"gather unknown", func(f *cliFlags) { f.Gather = "ring" }, "-gather"},
		{"gather bad arity", func(f *cliFlags) { f.Gather = "tree:0" }, "-gather"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mut(&f)
			_, _, _, err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want ok", f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) accepted, want error naming %s", f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name the flag %s", err, tc.wantErr)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Errorf("diagnostic is not one line: %q", err)
			}
		})
	}
}

func TestValidateFlagsResolvesInterchip(t *testing.T) {
	f := valid()
	_, got, _, err := validateFlags(f)
	if err != nil || got != interchip.DefaultConfig() {
		t.Errorf("empty -interchip resolved to %+v (err %v), want the board profile", got, err)
	}
	f.Interchip = "cluster"
	_, got, _, err = validateFlags(f)
	cluster, _ := interchip.Profile("cluster")
	if err != nil || got != cluster {
		t.Errorf("-interchip cluster resolved to %+v (err %v), want %+v", got, err, cluster)
	}
}

func TestValidateFlagsResolvesGather(t *testing.T) {
	f := valid()
	_, _, gcfg, err := validateFlags(f)
	want := farm.GatherConfig{Mode: farm.GatherTree, Arity: farm.DefaultGatherArity}
	if err != nil || gcfg != want {
		t.Errorf("empty -gather resolved to %+v (err %v), want %+v", gcfg, err, want)
	}
	f.Gather = "tree:2"
	_, _, gcfg, err = validateFlags(f)
	if err != nil || gcfg.Mode != farm.GatherTree || gcfg.Arity != 2 {
		t.Errorf("-gather tree:2 resolved to %+v (err %v)", gcfg, err)
	}
	f.Gather = "flat"
	_, _, gcfg, err = validateFlags(f)
	if err != nil || gcfg.Mode != farm.GatherFlat {
		t.Errorf("-gather flat resolved to %+v (err %v)", gcfg, err)
	}
}

func TestValidateFlagsResolvesOrder(t *testing.T) {
	for in, want := range map[string]sched.Order{
		"FIFO": sched.FIFO, "fifo": sched.FIFO,
		"LPT": sched.LPT, "SPT": sched.SPT, "Random": sched.Random,
	} {
		f := valid()
		f.Order = in
		got, _, _, err := validateFlags(f)
		if err != nil {
			t.Errorf("order %q rejected: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("order %q resolved to %v, want %v", in, got, want)
		}
	}
}
