// Command rckclient is the test and operations client for rckserve: it
// uploads structures, runs score / one-vs-all / top-K queries, dumps
// the server's full pair matrix in the batch CLI's -scores-out format
// (for byte-for-byte comparison), and prints /statsz.
//
// Usage (one operation per invocation):
//
//	rckclient -addr HOST:PORT -upload N [-seed S] [-prefix P] [-c N]
//	rckclient -addr HOST:PORT -score A,B
//	rckclient -addr HOST:PORT -onevsall TARGET [-burst N]
//	rckclient -addr HOST:PORT -topk TARGET [-k N]
//	rckclient -addr HOST:PORT -dump FILE [-c N]
//	rckclient -addr HOST:PORT -stats
//
// -burst N repeats the one-vs-all query N times concurrently, verifies
// the responses are identical, and prints a min/p50/p95/max per-request
// latency digest on stderr (heavier sweeps belong to rckload).
//
// Exit status: 0 on success, 2 on bad usage or an unknown structure
// (HTTP 404), 1 on any other failure.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"rckalign/internal/loadgen"
	"rckalign/internal/pdb"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
)

type cliFlags struct {
	Addr     string
	Upload   int
	Seed     int64
	Prefix   string
	Score    string
	OneVsAll string
	TopK     string
	K        int
	Dump     string
	First    int
	Stats    bool
	Burst    int
	Conc     int
}

// validateFlags checks the flag set and returns the single selected
// operation name.
func validateFlags(f cliFlags) (string, error) {
	if f.Addr == "" {
		return "", errors.New("-addr must not be empty")
	}
	if f.Burst < 1 {
		return "", fmt.Errorf("-burst %d: must be >= 1", f.Burst)
	}
	if f.Conc < 1 {
		return "", fmt.Errorf("-c %d: must be >= 1", f.Conc)
	}
	if f.K < 1 {
		return "", fmt.Errorf("-k %d: must be >= 1", f.K)
	}
	if f.First < 0 {
		return "", fmt.Errorf("-first %d: must be >= 0 (0 = all structures)", f.First)
	}
	var ops []string
	if f.Upload > 0 {
		ops = append(ops, "upload")
	}
	if f.Upload < 0 {
		return "", fmt.Errorf("-upload %d: must be >= 0", f.Upload)
	}
	if f.Score != "" {
		if parts := strings.Split(f.Score, ","); len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return "", fmt.Errorf("-score %q: want two comma-separated structure ids", f.Score)
		}
		ops = append(ops, "score")
	}
	if f.OneVsAll != "" {
		ops = append(ops, "onevsall")
	}
	if f.TopK != "" {
		ops = append(ops, "topk")
	}
	if f.Dump != "" {
		ops = append(ops, "dump")
	}
	if f.Stats {
		ops = append(ops, "stats")
	}
	if len(ops) == 0 {
		return "", errors.New("no operation: use one of -upload, -score, -onevsall, -topk, -dump, -stats")
	}
	if len(ops) > 1 {
		return "", fmt.Errorf("one operation per invocation, got %s", strings.Join(ops, "+"))
	}
	return ops[0], nil
}

type client struct {
	base string
	hc   *http.Client
}

// get fetches a path and returns the body; HTTP 404 maps to an
// exit-2 usage error via errNotFound.
var errNotFound = errors.New("not found")

func (c *client) do(method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", errNotFound, strings.TrimSpace(string(out)))
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(out)))
	}
	return out, nil
}

// upload sends n synthetic structures (disjoint prefix so repeated runs
// with different prefixes never collide), conc at a time.
func (c *client) upload(n int, seed int64, prefix string, conc int) error {
	ds := synth.Small(n, seed)
	sem := make(chan struct{}, conc)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, st := range ds.Structures {
		wg.Add(1)
		go func(i int, st *pdb.Structure) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var buf bytes.Buffer
			if err := pdb.Write(&buf, st); err != nil {
				errs[i] = err
				return
			}
			id := fmt.Sprintf("%s%03d", prefix, i)
			_, err := c.do("POST", "/structures?id="+url.QueryEscape(id), buf.Bytes())
			errs[i] = err
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "rckclient: uploaded %d structures (prefix %q)\n", n, prefix)
	return nil
}

// dump reproduces the batch CLI's -scores-out file from the running
// server: every canonical pair of the server's structure list, queried
// conc at a time, written in canonical order. first > 0 restricts the
// dump to the first structures by index — because the database is
// append-only, that prefix is stable even while other clients upload,
// so a -first dump of a preloaded dataset stays comparable to the
// batch dump under concurrent traffic.
func (c *client) dump(file string, first, conc int) error {
	body, err := c.do("GET", "/structures", nil)
	if err != nil {
		return err
	}
	var list struct {
		Structures []struct {
			ID    string `json:"id"`
			Index int    `json:"index"`
		} `json:"structures"`
	}
	if err := unmarshal(body, &list); err != nil {
		return err
	}
	ids := make([]string, len(list.Structures))
	for _, st := range list.Structures {
		ids[st.Index] = st.ID
	}
	if first > 0 && first < len(ids) {
		ids = ids[:first]
	}
	pairs := sched.AllVsAll(len(ids))
	lines := make([]string, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for k, p := range pairs {
		wg.Add(1)
		go func(k int, p sched.Pair) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			path := "/score?format=text&a=" + url.QueryEscape(ids[p.I]) + "&b=" + url.QueryEscape(ids[p.J])
			body, err := c.do("GET", path, nil)
			if err != nil {
				errs[k] = err
				return
			}
			lines[k] = string(body)
			if !strings.HasPrefix(lines[k], fmt.Sprintf("%d %d ", p.I, p.J)) {
				errs[k] = fmt.Errorf("pair (%d,%d): served line has wrong indices: %q", p.I, p.J, lines[k])
			}
		}(k, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	for _, ln := range lines {
		if _, err := io.WriteString(f, ln); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rckclient: wrote %d pair scores to %s\n", len(lines), file)
	return nil
}

// onevsall fires burst concurrent one-vs-all queries (exercising the
// server's coalescer), verifies all responses are identical, prints one
// copy, and — for bursts — a per-request latency digest on stderr.
func (c *client) onevsall(target string, burst int) error {
	bodies := make([][]byte, burst)
	errs := make([]error, burst)
	lat := make([]time.Duration, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			bodies[i], errs[i] = c.do("POST", "/onevsall?format=text&target="+url.QueryEscape(target), nil)
			lat[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := 1; i < burst; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			return fmt.Errorf("burst response %d differs from response 0", i)
		}
	}
	if burst > 1 {
		fmt.Fprintf(os.Stderr, "rckclient: %d burst responses identical; latency %s\n",
			burst, loadgen.Summarize(lat))
	}
	os.Stdout.Write(bodies[0])
	return nil
}

func unmarshal(body []byte, v any) error {
	return json.Unmarshal(body, v)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "rckserve address")
	upload := flag.Int("upload", 0, "upload this many synthetic structures")
	seed := flag.Int64("seed", 7, "synthetic structure seed for -upload")
	prefix := flag.String("prefix", "up", "structure-id prefix for -upload")
	score := flag.String("score", "", "score one pair: two comma-separated structure ids")
	onevsall := flag.String("onevsall", "", "one-vs-all query target structure id")
	topk := flag.String("topk", "", "top-K query target structure id")
	k := flag.Int("k", 5, "neighbor count for -topk")
	dump := flag.String("dump", "", "dump every pair's scores to this file in -scores-out format")
	first := flag.Int("first", 0, "restrict -dump to the first N structures by index (0 = all)")
	stats := flag.Bool("stats", false, "print /statsz")
	burst := flag.Int("burst", 1, "repeat -onevsall this many times concurrently and print a latency digest")
	conc := flag.Int("c", 4, "concurrent requests for -upload and -dump")
	flag.Parse()

	f := cliFlags{Addr: *addr, Upload: *upload, Seed: *seed, Prefix: *prefix,
		Score: *score, OneVsAll: *onevsall, TopK: *topk, K: *k,
		Dump: *dump, First: *first, Stats: *stats, Burst: *burst, Conc: *conc}
	op, err := validateFlags(f)
	if err != nil {
		usageFatal(err)
	}
	c := &client{base: "http://" + f.Addr, hc: &http.Client{}}

	switch op {
	case "upload":
		err = c.upload(f.Upload, f.Seed, f.Prefix, f.Conc)
	case "score":
		parts := strings.Split(f.Score, ",")
		var body []byte
		body, err = c.do("GET", "/score?format=text&a="+url.QueryEscape(parts[0])+"&b="+url.QueryEscape(parts[1]), nil)
		if err == nil {
			os.Stdout.Write(body)
		}
	case "onevsall":
		err = c.onevsall(f.OneVsAll, f.Burst)
	case "topk":
		var body []byte
		body, err = c.do("GET", fmt.Sprintf("/topk?target=%s&k=%d", url.QueryEscape(f.TopK), f.K), nil)
		if err == nil {
			os.Stdout.Write(body)
		}
	case "stats":
		var body []byte
		body, err = c.do("GET", "/statsz", nil)
		if err == nil {
			os.Stdout.Write(body)
		}
	case "dump":
		err = c.dump(f.Dump, f.First, f.Conc)
	}
	if err != nil {
		if errors.Is(err, errNotFound) {
			usageFatal(err)
		}
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rckclient:", err)
	os.Exit(1)
}

// usageFatal reports bad usage or an unknown structure: one line on
// stderr and exit code 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "rckclient:", err)
	os.Exit(2)
}
