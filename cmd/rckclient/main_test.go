package main

import (
	"strings"
	"testing"
)

// valid returns a flag set that passes validation with the given
// operation selected; tests mutate one field at a time.
func valid() cliFlags {
	return cliFlags{Addr: "127.0.0.1:8344", Stats: true, Burst: 1, Conc: 4, K: 5}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*cliFlags)
		wantOp  string
		wantErr string // substring of the one-line diagnostic; "" = valid
	}{
		{"stats", func(f *cliFlags) {}, "stats", ""},
		{"empty addr", func(f *cliFlags) { f.Addr = "" }, "", "-addr"},
		{"no operation", func(f *cliFlags) { f.Stats = false }, "", "no operation"},
		{"two operations", func(f *cliFlags) { f.Dump = "out.txt" }, "", "one operation"},
		{"upload", func(f *cliFlags) { f.Stats = false; f.Upload = 8 }, "upload", ""},
		{"upload negative", func(f *cliFlags) { f.Stats = false; f.Upload = -1 }, "", "-upload"},
		{"score", func(f *cliFlags) { f.Stats = false; f.Score = "a,b" }, "score", ""},
		{"score one id", func(f *cliFlags) { f.Stats = false; f.Score = "a" }, "", "-score"},
		{"score empty side", func(f *cliFlags) { f.Stats = false; f.Score = "a," }, "", "-score"},
		{"onevsall", func(f *cliFlags) { f.Stats = false; f.OneVsAll = "t" }, "onevsall", ""},
		{"topk", func(f *cliFlags) { f.Stats = false; f.TopK = "t" }, "topk", ""},
		{"dump", func(f *cliFlags) { f.Stats = false; f.Dump = "out.txt" }, "dump", ""},
		{"burst zero", func(f *cliFlags) { f.Burst = 0 }, "", "-burst"},
		{"conc zero", func(f *cliFlags) { f.Conc = 0 }, "", "-c"},
		{"k zero", func(f *cliFlags) { f.K = 0 }, "", "-k"},
		{"first negative", func(f *cliFlags) { f.First = -1 }, "", "-first"},
		{"dump with first", func(f *cliFlags) { f.Stats = false; f.Dump = "o.txt"; f.First = 34 }, "dump", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mut(&f)
			op, err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if op != tc.wantOp {
					t.Errorf("op = %q, want %q", op, tc.wantOp)
				}
				return
			}
			if err == nil {
				t.Fatalf("no error, want one mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
