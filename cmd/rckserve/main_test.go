package main

import (
	"strings"
	"testing"
	"time"
)

// valid returns a flag set that passes validation; tests mutate one
// field at a time.
func valid() cliFlags {
	return cliFlags{Addr: "127.0.0.1:8344"}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*cliFlags)
		wantErr string // substring of the one-line diagnostic; "" = valid
	}{
		{"defaults", func(f *cliFlags) {}, ""},
		{"empty addr", func(f *cliFlags) { f.Addr = "" }, "-addr"},
		{"dataset CK34", func(f *cliFlags) { f.Dataset = "CK34" }, ""},
		{"dataset RS119", func(f *cliFlags) { f.Dataset = "RS119" }, ""},
		{"dataset unknown", func(f *cliFlags) { f.Dataset = "PDB70" }, "PDB70"},
		{"batch default sentinel", func(f *cliFlags) { f.Batch = 0 }, ""},
		{"batch one disables coalescing", func(f *cliFlags) { f.Batch = 1 }, ""},
		{"batch negative", func(f *cliFlags) { f.Batch = -1 }, "-batch"},
		{"maxwait default sentinel", func(f *cliFlags) { f.MaxWait = 0 }, ""},
		{"maxwait negative", func(f *cliFlags) { f.MaxWait = -time.Millisecond }, "-maxwait"},
		{"workers negative", func(f *cliFlags) { f.Workers = -2 }, "-workers"},
		{"queuecap negative", func(f *cliFlags) { f.QueueCap = -1 }, "-queuecap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mut(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("no error, want one mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
