// Command rckserve runs the protein-structure-comparison service: a
// long-lived HTTP server over a mutable structure database, answering
// pairwise, one-vs-all and top-K TM-align queries with request
// coalescing (see internal/server and DESIGN.md §14).
//
// Usage:
//
//	rckserve [-addr HOST:PORT] [-dataset NAME] [-fast]
//	         [-batch N] [-maxwait DUR] [-workers N] [-queuecap N]
//	         [-access-log FILE]
//
// -dataset preloads a built-in synthetic dataset (CK34 or RS119) in
// canonical order, so served scores are bit-identical to a batch
// `rckalign -dataset NAME -scores-out` dump under the same kernel
// profile; an empty -dataset starts with an empty database fed purely
// by POST /structures uploads.
//
// -access-log appends one JSON line per request (request id, endpoint,
// status, latency, queue-wait/assembly/compute breakdown, memo
// outcome) — the structured feed the load generator's SLO reports and
// DESIGN.md §15 build on. "-" logs to stderr.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight requests finish, queued batches drain, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/server"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

type cliFlags struct {
	Addr      string
	Dataset   string
	Batch     int
	MaxWait   time.Duration
	Workers   int
	QueueCap  int
	AccessLog string
	PruneTM   float64
}

func validateFlags(f cliFlags) error {
	if f.Addr == "" {
		return errors.New("-addr must not be empty")
	}
	if f.Batch < 0 {
		return fmt.Errorf("-batch %d: must be >= 0 (0 = default, 1 = no coalescing)", f.Batch)
	}
	if f.MaxWait < 0 {
		return fmt.Errorf("-maxwait %v: must be >= 0 (0 = default)", f.MaxWait)
	}
	if f.Workers < 0 {
		return fmt.Errorf("-workers %d: must be >= 0 (0 = default)", f.Workers)
	}
	if f.QueueCap < 0 {
		return fmt.Errorf("-queuecap %d: must be >= 0 (0 = default)", f.QueueCap)
	}
	if f.PruneTM < 0 || f.PruneTM > 1 {
		return fmt.Errorf("-prune-tm %g: must be in [0,1] (0 = no pruning)", f.PruneTM)
	}
	if f.Dataset != "" {
		if _, err := synth.ByName(f.Dataset); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	dataset := flag.String("dataset", "", "preload a built-in dataset: CK34 or RS119 (empty = start empty)")
	fast := flag.Bool("fast", false, "use the fast TM-align profile")
	batch := flag.Int("batch", 0, "coalescer batch size (0 = default 32; 1 disables coalescing)")
	maxWait := flag.Duration("maxwait", 0, "coalescer max wait before flushing a partial batch (0 = default 2ms)")
	workers := flag.Int("workers", 0, "concurrent batch executors (0 = default 1)")
	queueCap := flag.Int("queuecap", 0, "submission queue capacity (0 = default 4*batch)")
	accessLog := flag.String("access-log", "", "append one JSON line per request to this file (\"-\" = stderr)")
	pruneTM := flag.Float64("prune-tm", 0, "pre-filter /onevsall and /topk sweeps: skip pairs whose conservative TM upper bound is below this threshold (0 = off; /score is never pruned)")
	flag.Parse()

	f := cliFlags{Addr: *addr, Dataset: *dataset, Batch: *batch,
		MaxWait: *maxWait, Workers: *workers, QueueCap: *queueCap,
		AccessLog: *accessLog, PruneTM: *pruneTM}
	if err := validateFlags(f); err != nil {
		usageFatal(err)
	}

	opt := tmalign.DefaultOptions()
	if *fast {
		opt = tmalign.FastOptions()
	}
	var logClose func() error
	cfg := server.Config{
		Dataset: "serve",
		Options: opt,
		PruneTM: f.PruneTM,
		Batch: batcher.Config{
			BatchSize: f.Batch,
			MaxWait:   f.MaxWait,
			Workers:   f.Workers,
			QueueCap:  f.QueueCap,
		},
	}
	if f.Dataset != "" {
		cfg.Dataset = f.Dataset
	}
	switch f.AccessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		lf, err := os.OpenFile(f.AccessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		cfg.AccessLog = lf
		logClose = lf.Close
	}
	srv := server.New(cfg)
	if f.Dataset != "" {
		ds, err := synth.ByName(f.Dataset)
		if err != nil {
			usageFatal(err) // unreachable: validated above
		}
		if err := srv.Preload(ds.Structures); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rckserve: preloaded %s (%d chains, %d pairs)\n",
			ds.Name, ds.Len(), ds.Pairs())
	}

	httpSrv := &http.Server{Addr: f.Addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rckserve: listening on %s (kernel %s, batch %d)\n",
		f.Addr, opt.Key(), cfg.Batch.BatchSize)

	select {
	case err := <-errCh:
		fatal(err) // bind failure or unexpected listener death
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "rckserve: shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rckserve: shutdown:", err)
	}
	srv.Close() // drain queued batches after handlers finished
	if logClose != nil {
		if err := logClose(); err != nil {
			fmt.Fprintln(os.Stderr, "rckserve: access log:", err)
		}
	}
	ps := srv.Store().StatsSnapshot()
	bs := srv.BatcherStats()
	fmt.Fprintf(os.Stderr,
		"rckserve: served %d pair evaluations in %d batches (max %d); pairstore %d hits / %d misses (%.1f%% hit rate)\n",
		bs.Completed, bs.Batches, bs.MaxBatch, ps.Hits, ps.Misses, 100*ps.HitRate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rckserve:", err)
	os.Exit(1)
}

// usageFatal reports a flag-validation problem: one line on stderr and
// exit code 2, matching the flag package's own bad-usage status.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "rckserve:", err)
	os.Exit(2)
}
