// Command rckload is the open-loop load generator for rckserve: it
// synthesizes a deterministic (seeded) arrival trace, replays it
// against a live server without coordinated omission, and writes the
// run's SLO report (per-endpoint quantiles, goodput vs offered load,
// knee of the throughput/latency curve) plus a Chrome/Perfetto trace
// for ui.perfetto.dev. See DESIGN.md §15 for the methodology.
//
// Usage:
//
//	rckload -addr HOST:PORT [-shape constant|ramp|burst|diurnal]
//	        [-rps R] [-start R -step R -target R] [-slot DUR]
//	        [-duration DUR] [-period DUR] [-burst-rps R -burst-dur DUR]
//	        [-amplitude R] [-arrival uniform|poisson] [-seed N]
//	        [-mix "score=0.9,onevsall=0.07,topk=0.03"] [-k N] [-slo DUR]
//	        [-report-out FILE] [-trace-out FILE] [-sched-out FILE]
//	rckload -dry-run [-pool N] [shape flags] [-sched-out FILE]
//	rckload -sweep [-report-out FILE]
//
// -dry-run synthesizes and prints the schedule without a server (the
// target pool is -pool placeholder ids); two dry runs with the same
// flags emit byte-identical -sched-out files — the determinism contract
// CI pins. -sweep ignores -addr and runs the in-process
// experiments.ServeLoadSweep grid (RPS ramp × batch size × workers),
// printing the offered-RPS-vs-p99 table EXPERIMENTS.md quotes.
//
// Exit status: 0 on success (even if some requests failed — the report
// carries the error counts), 1 on operational failure, 2 on bad usage.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"rckalign/internal/experiments"
	"rckalign/internal/loadgen"
	"rckalign/internal/stats"
)

type cliFlags struct {
	Addr      string
	Shape     string
	RPS       float64
	Start     float64
	Step      float64
	Target    float64
	Slot      time.Duration
	Duration  time.Duration
	Period    time.Duration
	BurstRPS  float64
	BurstDur  time.Duration
	Amplitude float64
	Arrival   string
	Seed      int64
	Mix       string
	K         int
	SLO       time.Duration
	ReportOut string
	TraceOut  string
	SchedOut  string
	DryRun    bool
	Pool      int
	Sweep     bool
}

// validateFlags checks the flag set and returns the selected mode:
// "sweep", "dry" or "run".
func validateFlags(f cliFlags) (string, error) {
	if f.Sweep {
		if f.DryRun {
			return "", errors.New("-sweep and -dry-run are mutually exclusive")
		}
		return "sweep", nil
	}
	switch f.Shape {
	case "constant", "ramp", "burst", "diurnal":
	default:
		return "", fmt.Errorf("-shape %q: want constant, ramp, burst or diurnal", f.Shape)
	}
	switch f.Arrival {
	case "uniform", "poisson":
	default:
		return "", fmt.Errorf("-arrival %q: want uniform or poisson", f.Arrival)
	}
	if f.Shape == "ramp" {
		if f.Start <= 0 {
			return "", fmt.Errorf("-start %v: must be > 0", f.Start)
		}
		if f.Target < f.Start {
			return "", fmt.Errorf("-target %v: must be >= -start %v", f.Target, f.Start)
		}
		if f.Step < 0 {
			return "", fmt.Errorf("-step %v: must be >= 0", f.Step)
		}
	} else {
		if f.RPS <= 0 {
			return "", fmt.Errorf("-rps %v: must be > 0", f.RPS)
		}
		if f.Duration <= 0 {
			return "", fmt.Errorf("-duration %v: must be > 0", f.Duration)
		}
	}
	if f.Slot <= 0 {
		return "", fmt.Errorf("-slot %v: must be > 0", f.Slot)
	}
	if f.Shape == "burst" {
		if f.BurstRPS <= 0 {
			return "", fmt.Errorf("-burst-rps %v: must be > 0", f.BurstRPS)
		}
		if f.BurstDur <= 0 || f.Period <= 0 {
			return "", errors.New("-burst-dur and -period must be > 0")
		}
	}
	if f.Shape == "diurnal" {
		if f.Period <= 0 {
			return "", fmt.Errorf("-period %v: must be > 0", f.Period)
		}
		if f.Amplitude < 0 {
			return "", fmt.Errorf("-amplitude %v: must be >= 0", f.Amplitude)
		}
	}
	if _, err := parseMix(f.Mix); err != nil {
		return "", err
	}
	if f.K < 1 {
		return "", fmt.Errorf("-k %d: must be >= 1", f.K)
	}
	if f.SLO <= 0 {
		return "", fmt.Errorf("-slo %v: must be > 0", f.SLO)
	}
	if f.DryRun {
		if f.Pool < 2 {
			return "", fmt.Errorf("-pool %d: must be >= 2", f.Pool)
		}
		return "dry", nil
	}
	if f.Addr == "" {
		return "", errors.New("-addr must not be empty")
	}
	return "run", nil
}

// parseMix parses "score=0.9,onevsall=0.07,topk=0.03". An empty string
// means the default mix.
func parseMix(s string) (loadgen.Mix, error) {
	if s == "" {
		return nil, nil
	}
	mix := loadgen.Mix{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("-mix %q: want op=weight pairs", s)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix %q: bad weight %q", s, kv[1])
		}
		switch op := loadgen.Op(kv[0]); op {
		case loadgen.OpScore, loadgen.OpOneVsAll, loadgen.OpTopK:
			mix[op] = w
		default:
			return nil, fmt.Errorf("-mix %q: unknown op %q", s, kv[0])
		}
	}
	return mix, nil
}

// buildSlots expands the shape flags into the offered-rate schedule.
func buildSlots(f cliFlags) []loadgen.Slot {
	switch f.Shape {
	case "ramp":
		return loadgen.Ramp(f.Start, f.Step, f.Target, f.Slot)
	case "burst":
		return loadgen.Burst(f.RPS, f.BurstRPS, f.Period, f.BurstDur, f.Duration)
	case "diurnal":
		return loadgen.Diurnal(f.RPS, f.Amplitude, f.Period, f.Slot, f.Duration)
	default:
		return loadgen.Constant(f.RPS, f.Duration, f.Slot)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "rckserve address")
	shape := flag.String("shape", "ramp", "trace shape: constant, ramp, burst or diurnal")
	rps := flag.Float64("rps", 50, "rate for -shape constant (base rate for burst, mean for diurnal)")
	start := flag.Float64("start", 50, "ramp: first slot's RPS")
	step := flag.Float64("step", 50, "ramp: RPS added per slot (0 = flat)")
	target := flag.Float64("target", 300, "ramp: final RPS (last slot clamps to it)")
	slot := flag.Duration("slot", 2*time.Second, "slot duration (ramp step length / reporting granularity)")
	duration := flag.Duration("duration", 10*time.Second, "total trace length for constant, burst and diurnal")
	period := flag.Duration("period", 4*time.Second, "burst repeat interval / diurnal day length")
	burstRPS := flag.Float64("burst-rps", 200, "burst: rate during each burst")
	burstDur := flag.Duration("burst-dur", time.Second, "burst: length of each burst")
	amplitude := flag.Float64("amplitude", 25, "diurnal: sinusoid amplitude around -rps")
	arrival := flag.String("arrival", "uniform", "arrival process within a slot: uniform or poisson")
	seed := flag.Int64("seed", 1, "trace seed (same seed = same schedule, mix and targets)")
	mix := flag.String("mix", "", "op mix as op=weight pairs (default score=0.90,onevsall=0.07,topk=0.03)")
	k := flag.Int("k", 5, "neighbor count for topk requests")
	slo := flag.Duration("slo", 250*time.Millisecond, "p99 latency objective for the knee finder")
	reportOut := flag.String("report-out", "", "write the SLO report JSON here")
	traceOut := flag.String("trace-out", "", "write the Chrome/Perfetto trace here")
	schedOut := flag.String("sched-out", "", "write the deterministic schedule (JSON lines) here")
	dryRun := flag.Bool("dry-run", false, "synthesize the schedule without contacting a server")
	pool := flag.Int("pool", 8, "placeholder structure-id pool size for -dry-run")
	sweep := flag.Bool("sweep", false, "run the in-process experiments.ServeLoadSweep grid instead of hitting -addr")
	flag.Parse()

	f := cliFlags{Addr: *addr, Shape: *shape, RPS: *rps, Start: *start,
		Step: *step, Target: *target, Slot: *slot, Duration: *duration,
		Period: *period, BurstRPS: *burstRPS, BurstDur: *burstDur,
		Amplitude: *amplitude, Arrival: *arrival, Seed: *seed, Mix: *mix,
		K: *k, SLO: *slo, ReportOut: *reportOut, TraceOut: *traceOut,
		SchedOut: *schedOut, DryRun: *dryRun, Pool: *pool, Sweep: *sweep}
	mode, err := validateFlags(f)
	if err != nil {
		usageFatal(err)
	}

	if mode == "sweep" {
		runSweep(f)
		return
	}

	mixv, err := parseMix(f.Mix)
	if err != nil {
		usageFatal(err) // unreachable: validated above
	}
	spec := loadgen.SynthSpec{
		Seed:    f.Seed,
		Slots:   buildSlots(f),
		Mix:     mixv,
		Poisson: f.Arrival == "poisson",
	}
	arrivals, err := loadgen.Synthesize(spec)
	if err != nil {
		fatal(err)
	}

	var ids []string
	runner := &loadgen.Runner{Base: "http://" + f.Addr}
	if mode == "dry" {
		for i := 0; i < f.Pool; i++ {
			ids = append(ids, fmt.Sprintf("s%03d", i))
		}
	} else {
		if ids, err = runner.FetchIDs(); err != nil {
			fatal(err)
		}
		if len(ids) < 2 {
			fatal(fmt.Errorf("server has %d structures; need >= 2 (preload a dataset or -upload)", len(ids)))
		}
	}
	reqs, err := loadgen.BuildRequests(arrivals, ids, f.Seed, f.K)
	if err != nil {
		fatal(err)
	}
	if f.SchedOut != "" {
		if err := writeFile(f.SchedOut, func(w io.Writer) error {
			return loadgen.WriteSchedule(w, reqs)
		}); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rckload: %s trace, %d requests over %v (seed %d, %s arrivals)\n",
		f.Shape, len(reqs), spec.TotalDuration(), f.Seed, f.Arrival)
	if mode == "dry" {
		return
	}

	samples, wall := runner.Run(reqs)
	rep := loadgen.BuildReport(spec, samples, wall, f.SLO)
	if f.ReportOut != "" {
		if err := writeFile(f.ReportOut, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if f.TraceOut != "" {
		ct := loadgen.BuildChromeTrace(samples, spec.Slots)
		if err := writeFile(f.TraceOut, ct.Write); err != nil {
			fatal(err)
		}
	}
	printReport(rep, f.SLO)
}

// runSweep runs the in-process config grid and prints its table.
func runSweep(f cliFlags) {
	tb, reports, err := experiments.ServeLoadSweep(
		experiments.DefaultServeLoadSpec(), experiments.DefaultServeLoadConfigs())
	if err != nil {
		fatal(err)
	}
	fmt.Println(tb.String())
	if f.ReportOut != "" {
		if err := writeFile(f.ReportOut, func(w io.Writer) error {
			buf, err := json.MarshalIndent(reports, "", "  ")
			if err != nil {
				return err
			}
			_, err = w.Write(append(buf, '\n'))
			return err
		}); err != nil {
			fatal(err)
		}
	}
}

// printReport renders the run's SLO summary on stdout.
func printReport(rep *loadgen.Report, slo time.Duration) {
	st := stats.NewTable("Per-slot offered vs delivered",
		"Slot", "Offered RPS", "Achieved", "Goodput", "p50 ms", "p95 ms", "p99 ms", "Errors")
	for _, sl := range rep.Slots {
		st.AddRowf(sl.Slot, sl.OfferedRPS, sl.AchievedRPS, sl.GoodputRPS,
			sl.P50Ms, sl.P95Ms, sl.P99Ms, sl.Errors)
	}
	fmt.Println(st.String())
	et := stats.NewTable("Per-endpoint latency",
		"Endpoint", "Count", "Errors", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, e := range rep.Endpoints {
		et.AddRowf(e.Op, e.Count, e.Errors, e.P50Ms, e.P95Ms, e.P99Ms, e.MaxMs)
	}
	fmt.Println(et.String())
	fmt.Printf("requests %d, goodput %.1f/s of %.1f/s offered, memo %d hits / %d misses, scheduler lag p99 %.2f ms\n",
		rep.Requests, rep.GoodputRPS, rep.OfferedRPS, rep.MemoHits, rep.MemoMisses, rep.SchedLagP99Ms)
	if len(rep.Errors) > 0 {
		fmt.Printf("errors: %v\n", rep.Errors)
	}
	if rep.Knee.Found {
		fmt.Printf("knee: %.0f RPS at slot %d (p99 %.1f ms, SLO %v) — %s\n",
			rep.Knee.OfferedRPS, rep.Knee.Slot, rep.Knee.P99Ms, slo, rep.Knee.Reason)
	} else {
		fmt.Printf("knee: not found — %s\n", rep.Knee.Reason)
	}
}

// writeFile creates path and hands it to write, closing on the way out.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rckload:", err)
	os.Exit(1)
}

// usageFatal reports a flag-validation problem: one line on stderr and
// exit code 2, matching the flag package's own bad-usage status.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "rckload:", err)
	os.Exit(2)
}
