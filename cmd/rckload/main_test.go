package main

import (
	"strings"
	"testing"
	"time"

	"rckalign/internal/loadgen"
)

// valid returns a flag set that passes validation; tests mutate one
// field at a time.
func valid() cliFlags {
	return cliFlags{
		Addr: "127.0.0.1:8344", Shape: "ramp", RPS: 50,
		Start: 50, Step: 50, Target: 300, Slot: 2 * time.Second,
		Duration: 10 * time.Second, Period: 4 * time.Second,
		BurstRPS: 200, BurstDur: time.Second, Amplitude: 25,
		Arrival: "uniform", K: 5, SLO: 250 * time.Millisecond, Pool: 8,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		mut      func(*cliFlags)
		wantMode string
		wantErr  string // substring of the diagnostic; "" = valid
	}{
		{"ramp defaults", func(f *cliFlags) {}, "run", ""},
		{"dry run", func(f *cliFlags) { f.DryRun = true }, "dry", ""},
		{"dry run ignores addr", func(f *cliFlags) { f.DryRun = true; f.Addr = "" }, "dry", ""},
		{"sweep", func(f *cliFlags) { f.Sweep = true }, "sweep", ""},
		{"sweep plus dry-run", func(f *cliFlags) { f.Sweep = true; f.DryRun = true }, "", "mutually exclusive"},
		{"empty addr", func(f *cliFlags) { f.Addr = "" }, "", "-addr"},
		{"bad shape", func(f *cliFlags) { f.Shape = "sawtooth" }, "", "-shape"},
		{"bad arrival", func(f *cliFlags) { f.Arrival = "pareto" }, "", "-arrival"},
		{"poisson ok", func(f *cliFlags) { f.Arrival = "poisson" }, "run", ""},
		{"constant", func(f *cliFlags) { f.Shape = "constant" }, "run", ""},
		{"constant zero rps", func(f *cliFlags) { f.Shape = "constant"; f.RPS = 0 }, "", "-rps"},
		{"constant zero duration", func(f *cliFlags) { f.Shape = "constant"; f.Duration = 0 }, "", "-duration"},
		{"ramp zero start", func(f *cliFlags) { f.Start = 0 }, "", "-start"},
		{"ramp target below start", func(f *cliFlags) { f.Target = 10 }, "", "-target"},
		{"ramp negative step", func(f *cliFlags) { f.Step = -1 }, "", "-step"},
		{"zero slot", func(f *cliFlags) { f.Slot = 0 }, "", "-slot"},
		{"burst", func(f *cliFlags) { f.Shape = "burst" }, "run", ""},
		{"burst zero burst rate", func(f *cliFlags) { f.Shape = "burst"; f.BurstRPS = 0 }, "", "-burst-rps"},
		{"burst zero period", func(f *cliFlags) { f.Shape = "burst"; f.Period = 0 }, "", "-period"},
		{"diurnal", func(f *cliFlags) { f.Shape = "diurnal" }, "run", ""},
		{"diurnal negative amplitude", func(f *cliFlags) { f.Shape = "diurnal"; f.Amplitude = -1 }, "", "-amplitude"},
		{"mix ok", func(f *cliFlags) { f.Mix = "score=0.5,topk=0.5" }, "run", ""},
		{"mix unknown op", func(f *cliFlags) { f.Mix = "delete=1" }, "", "unknown op"},
		{"mix bad weight", func(f *cliFlags) { f.Mix = "score=lots" }, "", "bad weight"},
		{"mix missing equals", func(f *cliFlags) { f.Mix = "score" }, "", "op=weight"},
		{"zero k", func(f *cliFlags) { f.K = 0 }, "", "-k"},
		{"zero slo", func(f *cliFlags) { f.SLO = 0 }, "", "-slo"},
		{"tiny pool", func(f *cliFlags) { f.DryRun = true; f.Pool = 1 }, "", "-pool"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := valid()
			tc.mut(&f)
			mode, err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if mode != tc.wantMode {
					t.Fatalf("mode %q, want %q", mode, tc.wantMode)
				}
				return
			}
			if err == nil {
				t.Fatalf("no error, want one mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("score=0.5, onevsall=0.3,topk=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if mix[loadgen.OpScore] != 0.5 || mix[loadgen.OpOneVsAll] != 0.3 || mix[loadgen.OpTopK] != 0.2 {
		t.Errorf("mix = %v", mix)
	}
	if mix, err := parseMix(""); err != nil || mix != nil {
		t.Errorf("empty mix = %v, %v; want nil, nil", mix, err)
	}
}

func TestBuildSlotsShapes(t *testing.T) {
	f := valid()
	if got := buildSlots(f); len(got) != 6 || got[0].RPS != 50 || got[5].RPS != 300 {
		t.Errorf("ramp slots = %+v", got)
	}
	f.Shape = "constant"
	for _, sl := range buildSlots(f) {
		if sl.RPS != 50 {
			t.Errorf("constant slot at %v RPS", sl.RPS)
		}
	}
	f.Shape = "burst"
	if got := buildSlots(f); len(got) < 2 {
		t.Errorf("burst produced %d slots", len(got))
	}
	f.Shape = "diurnal"
	if got := buildSlots(f); len(got) != 5 {
		t.Errorf("diurnal produced %d slots, want 5 (10s / 2s)", len(got))
	}
}
