// Command psccluster consumes an all-vs-all comparison run the way the
// paper's introduction motivates: it prints the ranked retrieval list
// for a query and the fold families found by clustering the TM-score
// matrix.
//
// Usage:
//
//	psccluster [-dataset CK34|RS119] [-query ID] [-threshold 0.5]
//	           [-linkage single|average] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rckalign/internal/cluster"
	"rckalign/internal/core"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	dataset := flag.String("dataset", "CK34", "dataset: CK34 or RS119")
	query := flag.String("query", "", "structure ID for ranked retrieval (empty = first)")
	threshold := flag.Float64("threshold", 0.5, "same-fold similarity threshold")
	linkage := flag.String("linkage", "single", "clustering linkage: single or average")
	topk := flag.Int("top", 10, "hits to print for the query")
	dendro := flag.Bool("dendrogram", false, "print the average-linkage dendrogram")
	cacheDir := flag.String("cache", "testdata/paircache", "pair-result cache directory")
	flag.Parse()

	ds, err := synth.ByName(*dataset)
	if err != nil {
		fatal(err)
	}
	cachePath := ""
	if *cacheDir != "" {
		cachePath = filepath.Join(*cacheDir, ds.Name+".gob")
	}
	pr, err := core.ComputeOrLoad(ds, tmalign.DefaultOptions(), cachePath, 0)
	if err != nil {
		fatal(err)
	}
	m := cluster.FromPairResults(pr)

	q := 0
	if *query != "" {
		q = -1
		for i := 0; i < m.Len(); i++ {
			if m.Name(i) == *query {
				q = i
				break
			}
		}
		if q < 0 {
			fatal(fmt.Errorf("query %q not in dataset", *query))
		}
	}

	fmt.Printf("ranked retrieval for %s (top %d):\n", m.Name(q), *topk)
	for rank, hit := range m.Rank(q) {
		if rank >= *topk {
			break
		}
		marker := ""
		if hit.Score >= *threshold {
			marker = "  <- same fold"
		}
		fmt.Printf("  %3d. %-8s TM=%.3f%s\n", rank+1, hit.Name, hit.Score, marker)
	}

	var clusters [][]int
	switch *linkage {
	case "single":
		clusters = m.SingleLinkage(*threshold)
	case "average":
		clusters = m.CutAverageLinkage(*threshold)
	default:
		fatal(fmt.Errorf("unknown linkage %q", *linkage))
	}
	fmt.Printf("\nfold families (%s linkage, TM >= %.2f): %d clusters\n",
		*linkage, *threshold, len(clusters))
	fmt.Print(cluster.FormatClusters(m, clusters))

	if *dendro {
		fmt.Println("\naverage-linkage dendrogram:")
		fmt.Print(m.Dendrogram())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psccluster:", err)
	os.Exit(1)
}
