// Scheduling ablation: the paper ships FIFO job order and notes that
// "good load balancing approaches can improve the performance of
// all-vs-all PSC" as future work. This example quantifies that claim by
// replaying the same workload under FIFO, LPT (longest first), SPT
// (shortest first — the anti-pattern) and Random orders.
//
// Run with:
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"rckalign/internal/core"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	// Two families with very different chain lengths make the job-cost
	// spread large, which is where scheduling matters.
	ds := synth.Small(14, 7001)
	pr := core.ComputeAllPairs(ds, tmalign.FastOptions(), 0)
	fmt.Printf("dataset: %d chains, %d jobs\n\n", ds.Len(), ds.Pairs())

	orders := []sched.Order{sched.FIFO, sched.LPT, sched.SPT, sched.Random}
	fmt.Println("slaves   FIFO(s)    LPT(s)    SPT(s)  Random(s)   LPT gain")
	for _, n := range []int{4, 8, 16, 32} {
		times := make([]float64, len(orders))
		for i, o := range orders {
			cfg := core.DefaultConfig()
			cfg.Order = o
			cfg.OrderSeed = 7
			r, err := core.Run(pr, n, cfg)
			if err != nil {
				log.Fatal(err)
			}
			times[i] = r.TotalSeconds
		}
		fmt.Printf("%6d  %8.1f  %8.1f  %8.1f  %9.1f   %7.1f%%\n",
			n, times[0], times[1], times[2], times[3],
			100*(times[0]-times[1])/times[0])
	}

	fmt.Println("\nLPT trims the straggler tail (a long job landing last idles")
	fmt.Println("the other cores); SPT maximises it. The gap widens with the")
	fmt.Println("slave count, confirming the paper's expectation that load")
	fmt.Println("balancing matters most at scale.")
}
