// Multi-criteria PSC (the paper's proposed extension): different slave
// cores run different comparison algorithms on the same data, and the
// per-method scores fuse into a consensus ranking.
//
// Run with:
//
//	go run ./examples/mcpsc
package main

import (
	"fmt"
	"log"

	"rckalign/internal/mcpsc"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	ds := synth.Small(10, 404) // fa01..fa05 + fb01..fb05
	query := 0                 // fa01: its family mates should rank on top
	methods := []mcpsc.Method{
		mcpsc.TMAlign{Opt: tmalign.FastOptions()},
		mcpsc.GaplessRMSD{},
		mcpsc.ContactOverlap{},
	}

	fmt.Printf("query %s against %d targets with %d methods on 12 slave cores\n\n",
		ds.Structures[query].ID, ds.Len()-1, len(methods))

	res, err := mcpsc.RunOneVsAll(ds, query, methods, 12, mcpsc.DefaultRunConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slave partition per method:")
	for name, n := range res.SlavesPerMethod {
		fmt.Printf("  %-16s %d cores\n", name, n)
	}

	fmt.Println("\nper-method similarity scores:")
	fmt.Printf("  %-8s", "target")
	for _, m := range methods {
		fmt.Printf("  %-16s", m.Name())
	}
	fmt.Println("  consensus(z)")
	for pos, tgt := range res.Targets {
		fmt.Printf("  %-8s", ds.Structures[tgt].ID)
		for _, m := range methods {
			fmt.Printf("  %-16.3f", res.PerMethod[m.Name()][pos])
		}
		fmt.Printf("  %+.3f\n", res.Consensus[pos])
	}

	fmt.Println("\nconsensus ranking (most similar first):")
	for rank, tgt := range res.RankedTargets() {
		fmt.Printf("  %2d. %s\n", rank+1, ds.Structures[tgt].ID)
	}
	fmt.Printf("\nsimulated makespan on the SCC: %.1f s\n", res.TotalSeconds)
}
