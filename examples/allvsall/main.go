// All-vs-all on the simulated SCC: the paper's headline experiment in
// miniature.
//
// A master core loads a small dataset, FARMs the pairwise TM-align jobs
// to slave cores over the simulated mesh, and we read back both the
// biology (which chains share a fold) and the systems result (how the
// simulated time falls as slave cores are added). Run with:
//
//	go run ./examples/allvsall
package main

import (
	"fmt"
	"log"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	// A 12-chain dataset (two fold families) keeps the native TM-align
	// pass quick; swap in synth.CK34() for the paper's full experiment.
	ds := synth.Small(12, 2026)
	fmt.Printf("dataset: %d chains, %d pairwise jobs\n\n", ds.Len(), ds.Pairs())

	// Native TM-align over all pairs (computed once; the simulator
	// replays the measured per-job costs).
	pr := core.ComputeAllPairs(ds, tmalign.DefaultOptions(), 0)

	// Fold assignment from the scores: pairs with TM > 0.5 share a fold.
	sameFold := 0
	for _, r := range pr.Results {
		if r.TM() > 0.5 {
			sameFold++
		}
	}
	fmt.Printf("pairs sharing a fold (TM > 0.5): %d of %d\n", sameFold, len(pr.Results))

	serial := pr.SerialSeconds(costmodel.P54C())
	fmt.Printf("serial time on one SCC core: %.1f simulated seconds\n\n", serial)

	fmt.Println("slaves  time(s)  speedup  efficiency  slave-busy")
	cfg := core.DefaultConfig()
	masterTrack := cfg.Chip.CoreName(cfg.MasterCore)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 47} {
		r, err := core.Run(pr, n, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sp := serial / r.TotalSeconds
		// Every run carries a farm.Report with per-core utilization; the
		// mean slave busy fraction shows where the farm stops scaling.
		busy, cores := 0.0, 0
		for track, u := range r.CoreUtilization {
			if track != masterTrack {
				busy += u
				cores++
			}
		}
		if cores > 0 {
			busy /= float64(cores)
		}
		fmt.Printf("%6d  %7.1f  %7.2f  %9.2f  %9.0f%%\n", n, r.TotalSeconds, sp, sp/float64(n), 100*busy)
	}

	fmt.Println("\nThe almost-linear speedup is the paper's core claim: on a")
	fmt.Println("mesh NoC the master-slaves farm keeps 47 slave cores busy")
	fmt.Println("because per-job data transfers are microseconds against")
	fmt.Println("multi-second comparisons.")
}
