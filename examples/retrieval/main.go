// Ranked retrieval and fold-family detection: the downstream biology the
// paper's introduction motivates ("retrieve a ranked list of proteins,
// where structurally similar proteins are ranked higher"), driven by the
// all-vs-all comparison matrix, plus a per-core utilization report from
// the simulated SCC run that produced it.
//
// Run with:
//
//	go run ./examples/retrieval
package main

import (
	"fmt"
	"log"

	"rckalign/internal/cluster"
	"rckalign/internal/core"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

func main() {
	ds := synth.Small(12, 808) // two synthetic fold families
	pr := core.ComputeAllPairs(ds, tmalign.FastOptions(), 0)

	// Simulate the all-vs-all run on the SCC with tracing enabled.
	cfg := core.DefaultConfig()
	rec := trace.New()
	cfg.Trace = rec
	run, err := core.Run(pr, 8, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-vs-all of %d chains on 8 SCC slaves: %.1f simulated s\n\n",
		ds.Len(), run.TotalSeconds)

	m := cluster.FromPairResults(pr)

	// One-vs-all ranked retrieval for the first chain.
	fmt.Printf("ranked retrieval for query %s:\n", ds.Structures[0].ID)
	for rank, hit := range m.Rank(0) {
		marker := ""
		if hit.Score > 0.5 {
			marker = "  <- same fold (TM > 0.5)"
		}
		fmt.Printf("  %2d. %-6s TM=%.3f%s\n", rank+1, hit.Name, hit.Score, marker)
		if rank >= 7 {
			break
		}
	}

	// Fold families from single-linkage clustering at TM > 0.5.
	fmt.Println("\nfold families (single linkage, TM > 0.5):")
	cl := m.SingleLinkage(0.5)
	fmt.Print(cluster.FormatClusters(m, cl))

	labels := make([]string, ds.Len())
	for i, s := range ds.Structures {
		labels[i] = s.ID[:2]
	}
	fmt.Printf("cluster purity vs generating families: %.2f\n", cluster.Purity(cl, labels))
	fmt.Printf("top-3 retrieval accuracy: %.2f\n\n", m.TopKAccuracy(labels, 3))

	// Where did the simulated time go? Per-core utilization.
	fmt.Println("per-core utilization of the simulated run:")
	fmt.Print(rec.UtilizationTable(40))
}
