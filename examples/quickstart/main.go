// Quickstart: compare two protein structures with TM-align.
//
// This is the minimal use of the library: build (or load) two
// structures, align them, and read the scores. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rckalign/internal/pdb"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func main() {
	// Two members of the same synthetic globin-like family, and one
	// unrelated beta-barrel. (With real data you would use
	// pdb.ParseFile("1abc.pdb") instead.)
	ds := synth.CK34()
	globinA := ds.Structures[0] // glb01
	globinB := ds.Structures[1] // glb02
	barrel := ds.Structures[16] // pcy01

	fmt.Printf("structures: %s (%d aa), %s (%d aa), %s (%d aa)\n\n",
		globinA.ID, globinA.Len(), globinB.ID, globinB.Len(), barrel.ID, barrel.Len())

	// Same fold: expect TM-score well above the 0.5 fold threshold.
	r := tmalign.Compare(globinA, globinB, tmalign.DefaultOptions())
	fmt.Printf("%s vs %s: TM=%.3f RMSD=%.2f A over %d residues (same fold: %v)\n",
		r.Name1, r.Name2, r.TM(), r.RMSD, r.AlignedLen, r.TM() > 0.5)

	// Different fold: expect TM-score near the random baseline (~0.2).
	r2 := tmalign.Compare(globinA, barrel, tmalign.DefaultOptions())
	fmt.Printf("%s vs %s: TM=%.3f RMSD=%.2f A over %d residues (same fold: %v)\n",
		r2.Name1, r2.Name2, r2.TM(), r2.RMSD, r2.AlignedLen, r2.TM() > 0.5)

	// Round-trip through the PDB format, as you would with real files.
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, globinA.ID+".pdb")
	if err := pdb.WriteFile(path, globinA); err != nil {
		log.Fatal(err)
	}
	reloaded, err := pdb.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	r3 := tmalign.Compare(globinA, reloaded, tmalign.DefaultOptions())
	fmt.Printf("\nPDB round trip: TM=%.4f (expected ~1.0)\n", r3.TM())
}
