// Package tmscore implements the TM-score machinery of TM-align (Zhang &
// Skolnick 2005): the length-dependent d0 normalization, the score_fun8
// scoring kernel and the TMscore8_search iterative fragment-superposition
// search that finds the rotation maximising the TM-score of a fixed
// alignment.
package tmscore

import (
	"errors"
	"fmt"
	"math"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/kernel"
)

// ErrAlignedLength reports aligned coordinate sets of different
// lengths — a kernel precondition violation. Scoring panics with an
// error wrapping this sentinel so a recovery boundary
// (tmalign.TryCompare) can surface it as a caller-visible error.
var ErrAlignedLength = errors.New("tmscore: aligned coordinate sets differ in length")

// Params bundles the scoring parameters for one comparison, mirroring
// TM-align's parameter_set4search / parameter_set4final.
type Params struct {
	// LNorm is the normalization length (float: the "average length"
	// option normalises by a non-integer).
	LNorm float64
	// D0 is the TM-score distance scale.
	D0 float64
	// D0Search is D0 clamped to [4.5, 8], used as the pair-inclusion
	// cutoff seed during iterative extension.
	D0Search float64
	// ScoreD8 is the long-distance cutoff: in search mode, pairs beyond
	// it contribute nothing to the score.
	ScoreD8 float64
}

// d0OfLength is the canonical TM-score d0 formula.
func d0OfLength(l float64) float64 {
	return 1.24*math.Cbrt(l-15) - 1.8
}

func clampSearch(d0 float64) float64 {
	if d0 > 8 {
		return 8
	}
	if d0 < 4.5 {
		return 4.5
	}
	return d0
}

// SearchParams returns the parameter set TM-align uses while searching
// for the optimal alignment of chains with lengths xlen and ylen
// (normalization by the shorter chain, inflated d0 for robustness,
// score_d8 long-distance cutoff).
func SearchParams(xlen, ylen int) Params {
	lnorm := float64(min(xlen, ylen))
	var d0 float64
	if lnorm <= 19 {
		d0 = 0.168
	} else {
		d0 = d0OfLength(lnorm)
	}
	d0 += 0.8 // D0_MIN = d0+0.8; d0 = D0_MIN ("best for search")
	return Params{
		LNorm:    lnorm,
		D0:       d0,
		D0Search: clampSearch(d0),
		ScoreD8:  1.5*math.Pow(lnorm, 0.3) + 3.5,
	}
}

// FinalParams returns the parameter set used to report the final TM-score
// normalised by length l (parameter_set4final). The d8 cutoff is disabled
// in final scoring.
func FinalParams(l float64) Params {
	var d0 float64
	if l <= 21 {
		d0 = 0.5
	} else {
		d0 = d0OfLength(l)
	}
	if d0 < 0.5 {
		d0 = 0.5
	}
	return Params{
		LNorm:    l,
		D0:       d0,
		D0Search: clampSearch(d0),
	}
}

// scoreFun8 is TM-align's score_fun8: given already-transformed aligned
// coordinates, it sums 1/(1+(d/d0)^2) (optionally only over pairs with
// d <= score_d8) and collects into iAli the indices with d < d; if fewer
// than 3 pairs qualify the cutoff is relaxed by 0.5 A steps. It returns
// the TM-score (sum/LNorm) and the number of collected pairs.
//
// The squared distances are computed once into dis2 (the score does not
// depend on the collection cutoff) and the relaxation rounds re-scan the
// cached distances only. The d8-cutoff branch is hoisted out of the
// inner loop and the distance arithmetic is unrolled in Vec3.Dist2's
// evaluation order, so scores are bit-identical to the reference loop.
// The op charge still mirrors the reference score_fun8, which rescans
// all n pairs (distances and scores) on every relaxation round — the
// simulated kernel cost is unchanged.
func (p Params) scoreFun8(xt, y []geom.Vec3, d float64, iAli []int, dis2 []float64, ops *costmodel.Counter) (float64, int) {
	n := len(xt)
	d02 := p.D0 * p.D0
	var scoreSum float64
	y = y[:n]
	dis2 = dis2[:n]
	if p.ScoreD8 > 0 {
		d8cut2 := p.ScoreD8 * p.ScoreD8
		for i := range xt {
			a, b := &xt[i], &y[i]
			dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
			di := dx*dx + dy*dy + dz*dz
			dis2[i] = di
			if di <= d8cut2 {
				scoreSum += 1 / (1 + di/d02)
			}
		}
	} else {
		for i := range xt {
			a, b := &xt[i], &y[i]
			dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
			di := dx*dx + dy*dy + dz*dz
			dis2[i] = di
			scoreSum += 1 / (1 + di/d02)
		}
	}
	dTmp := d * d
	nCut := 0
	for inc := 0; ; inc++ {
		nCut = 0
		for i, di := range dis2 {
			if di < dTmp {
				iAli[nCut] = i
				nCut++
			}
		}
		ops.AddScore(n)
		if nCut < 3 && n > 3 {
			dinc := d + float64(inc+1)*0.5
			dTmp = dinc * dinc
			continue
		}
		break
	}
	return scoreSum / p.LNorm, nCut
}

// searchIterations is TM-align's n_it: refinement steps per seed fragment.
const searchIterations = 20

// Search finds the rigid transform of x that maximises the TM-score of
// the fixed alignment (x[i] <-> y[i]): TM-align's TMscore8_search. Seed
// fragments of halving lengths slide along the alignment with stride
// simplifyStep (40 during alignment search, 1 for final scoring); each
// seed is superposed, scored, and iteratively extended over the pairs
// within distance cutoffs until convergence. It returns the best score
// and the transform achieving it.
//
// Search checks scratch out of the kernel workspace pool; workers that
// own a workspace should call SearchWS directly.
func (p Params) Search(x, y []geom.Vec3, simplifyStep int, ops *costmodel.Counter) (float64, geom.Transform) {
	w := kernel.Get()
	defer kernel.Put(w)
	return p.SearchWS(w, x, y, simplifyStep, ops)
}

// SearchWS is Search running on the caller's workspace (the Search*
// buffer group; every other group is left untouched, so a caller may be
// mid-flight in the comparison layer).
func (p Params) SearchWS(w *kernel.Workspace, x, y []geom.Vec3, simplifyStep int, ops *costmodel.Counter) (float64, geom.Transform) {
	n := len(x)
	if n != len(y) {
		panic(fmt.Errorf("%w (Search: %d vs %d)", ErrAlignedLength, n, len(y)))
	}
	if n == 0 {
		return 0, geom.IdentityTransform()
	}
	if simplifyStep < 1 {
		simplifyStep = 1
	}

	// Fragment-length ladder: n, n/2, n/4, ... down to min(n, 4).
	const nInitMax = 6
	liniMin := 4
	if n < liniMin {
		liniMin = n
	}
	var ladder []int
	for i := 0; i < nInitMax-1; i++ {
		l := n >> uint(i)
		if l > liniMin {
			ladder = append(ladder, l)
		} else {
			break
		}
	}
	ladder = append(ladder, liniMin)

	scoreMax := -1.0
	bestT := geom.IdentityTransform()
	w.ReserveSearch(n)
	xt := w.SearchXt[:n]
	iAli := w.SearchIAli[:n]
	kAli := w.SearchKAli[:n]
	r1 := w.SearchR1[:n]
	r2 := w.SearchR2[:n]
	dis2 := w.SearchDis2[:n]

	for _, lInit := range ladder {
		iLMax := n - lInit + 1
		for iL := 0; iL < iLMax; iL += simplifyStep {
			tr, _ := geom.Superpose(x[iL:iL+lInit], y[iL:iL+lInit])
			ops.AddKabsch(lInit)
			tr.ApplyAll(xt, x)
			ops.AddRotate(n)

			score, nCut := p.scoreFun8(xt, y, p.D0Search-1, iAli, dis2, ops)
			if score > scoreMax {
				scoreMax = score
				bestT = tr
			}

			// Iterative extension with a looser cutoff.
			d := p.D0Search + 1
			for it := 0; it < searchIterations; it++ {
				ka := 0
				for k := 0; k < nCut; k++ {
					m := iAli[k]
					r1[ka] = x[m]
					r2[ka] = y[m]
					kAli[ka] = m
					ka++
				}
				if ka < 1 {
					break
				}
				tr, _ = geom.Superpose(r1[:ka], r2[:ka])
				ops.AddKabsch(ka)
				tr.ApplyAll(xt, x)
				ops.AddRotate(n)
				score, nCut = p.scoreFun8(xt, y, d, iAli, dis2, ops)
				if score > scoreMax {
					scoreMax = score
					bestT = tr
				}
				if nCut == ka {
					same := true
					for k := 0; k < nCut; k++ {
						if iAli[k] != kAli[k] {
							same = false
							break
						}
					}
					if same {
						break // converged
					}
				}
			}
		}
	}
	return scoreMax, bestT
}

// ScoreWithTransform returns the TM-score of the fixed alignment under a
// given transform of x, without searching (pairs beyond ScoreD8 excluded
// when it is set). The transform is hoisted into scalars, in Apply's
// evaluation order, so the fused rotate+distance+score pass is
// bit-identical to the reference loop.
func (p Params) ScoreWithTransform(x, y []geom.Vec3, tr geom.Transform, ops *costmodel.Counter) float64 {
	if len(x) != len(y) {
		panic(fmt.Errorf("%w (ScoreWithTransform: %d vs %d)", ErrAlignedLength, len(x), len(y)))
	}
	d02 := p.D0 * p.D0
	d8cut2 := p.ScoreD8 * p.ScoreD8
	noCut := p.ScoreD8 <= 0
	r00, r01, r02 := tr.R[0][0], tr.R[0][1], tr.R[0][2]
	r10, r11, r12 := tr.R[1][0], tr.R[1][1], tr.R[1][2]
	r20, r21, r22 := tr.R[2][0], tr.R[2][1], tr.R[2][2]
	tx, ty, tz := tr.T[0], tr.T[1], tr.T[2]
	y = y[:len(x)]
	var sum float64
	for i := range x {
		a, b := &x[i], &y[i]
		px, py, pz := a[0], a[1], a[2]
		dx := r00*px + r01*py + r02*pz + tx - b[0]
		dy := r10*px + r11*py + r12*pz + ty - b[1]
		dz := r20*px + r21*py + r22*pz + tz - b[2]
		di := dx*dx + dy*dy + dz*dz
		if noCut || di <= d8cut2 {
			sum += 1 / (1 + di/d02)
		}
	}
	ops.AddScore(len(x))
	ops.AddRotate(len(x))
	return sum / p.LNorm
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
