package tmscore

import (
	"errors"
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
)

func TestGDTPerfectModel(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x := randomTrace(rng, 60)
	g := geom.Transform{R: geom.RotY(0.7), T: geom.V(3, -2, 9)}
	y := make([]geom.Vec3, len(x))
	g.ApplyAll(y, x)
	gdt := GDTScores(x, y, nil)
	if gdt.TS() < 0.999 || gdt.HA() < 0.999 {
		t.Errorf("perfect model: GDT-TS=%v GDT-HA=%v", gdt.TS(), gdt.HA())
	}
	if MaxSub(x, y, nil) < 0.95 {
		t.Errorf("perfect model MaxSub = %v", MaxSub(x, y, nil))
	}
}

func TestGDTOrderingOfCutoffs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randomTrace(rng, 80)
	y := make([]geom.Vec3, len(x))
	for i := range x {
		y[i] = x[i].Add(geom.V(rng.NormFloat64()*1.5, rng.NormFloat64()*1.5, rng.NormFloat64()*1.5))
	}
	g := GDTScores(x, y, nil)
	if !(g.P05 <= g.P1+1e-9 && g.P1 <= g.P2+1e-9 && g.P2 <= g.P4+1e-9 && g.P4 <= g.P8+1e-9) {
		t.Errorf("cutoff fractions not monotone: %+v", g)
	}
	for _, f := range []float64{g.P05, g.P1, g.P2, g.P4, g.P8} {
		if f < 0 || f > 1 {
			t.Errorf("fraction out of range: %+v", g)
		}
	}
	if g.HA() > g.TS()+1e-9 {
		t.Errorf("GDT-HA (%v) cannot exceed GDT-TS (%v)", g.HA(), g.TS())
	}
}

func TestGDTPartialModel(t *testing.T) {
	// Half the model perfect, half displaced far: TS ~ 0.5.
	rng := rand.New(rand.NewSource(32))
	x := randomTrace(rng, 100)
	y := make([]geom.Vec3, len(x))
	copy(y, x)
	for i := 50; i < 100; i++ {
		y[i] = y[i].Add(geom.V(50+rng.Float64()*20, 50, 50))
	}
	g := GDTScores(x, y, nil)
	if g.TS() < 0.4 || g.TS() > 0.65 {
		t.Errorf("half-good model GDT-TS = %v, want ~0.5", g.TS())
	}
	ms := MaxSub(x, y, nil)
	if ms < 0.35 || ms > 0.65 {
		t.Errorf("half-good model MaxSub = %v, want ~0.5", ms)
	}
}

func TestGDTRandomModelLow(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randomTrace(rng, 80)
	y := randomTrace(rng, 80)
	g := GDTScores(x, y, nil)
	if g.TS() > 0.5 {
		t.Errorf("random model GDT-TS = %v, suspiciously high", g.TS())
	}
	if MaxSub(x, y, nil) > 0.4 {
		t.Errorf("random model MaxSub = %v", MaxSub(x, y, nil))
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	defer func() {
		rec := recover()
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrAlignedLength) {
			t.Errorf("panic value %v does not wrap ErrAlignedLength", rec)
		}
	}()
	GDTScores(make([]geom.Vec3, 3), make([]geom.Vec3, 4), nil)
}

func TestMetricsChargeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := randomTrace(rng, 40)
	y := randomTrace(rng, 40)
	var ops costmodel.Counter
	GDTScores(x, y, &ops)
	MaxSub(x, y, &ops)
	if ops.KabschCalls == 0 || ops.ScoreEvals == 0 {
		t.Errorf("metrics charged no ops: %+v", ops)
	}
}

func TestRMSDCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := randomTrace(rng, 50)
	y := make([]geom.Vec3, len(x))
	for i := range x {
		y[i] = x[i].Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
	}
	curve := RMSDCurve(x, y, []float64{0.5, 2, 8, -1}, nil)
	if len(curve) != 4 {
		t.Fatal("curve length")
	}
	if curve[0] > curve[1]+1e-9 || curve[1] > curve[2]+1e-9 {
		t.Errorf("curve not monotone: %v", curve)
	}
	if curve[3] != 0 {
		t.Errorf("negative cutoff should yield 0, got %v", curve[3])
	}
}

func TestEmptyInputs(t *testing.T) {
	if MaxSub(nil, nil, nil) != 0 {
		t.Error("MaxSub(nil)")
	}
	g := GDTScores(nil, nil, nil)
	if g.TS() != 0 {
		t.Error("GDT(nil)")
	}
}
