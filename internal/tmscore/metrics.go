package tmscore

import (
	"fmt"
	"math"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
)

// This file implements the companion model-quality metrics of the
// TM-score program (Zhang & Skolnick 2004): GDT-TS, GDT-HA and MaxSub.
// All operate on a fixed residue correspondence x[i] <-> y[i] and search
// superpositions internally.

// fractionUnder finds (approximately, by LGA-style iterative subset
// superposition from sliding seed fragments) the maximum fraction of
// pairs that can be brought within distance d of each other by a rigid
// motion of x.
func fractionUnder(x, y []geom.Vec3, d float64, ops *costmodel.Counter) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	d2 := d * d
	best := 0
	xt := make([]geom.Vec3, n)
	r1 := make([]geom.Vec3, n)
	r2 := make([]geom.Vec3, n)

	countAndCollect := func(tr geom.Transform) (int, int) {
		tr.ApplyAll(xt, x)
		ops.AddRotate(n)
		k := 0
		for i := 0; i < n; i++ {
			if xt[i].Dist2(y[i]) <= d2 {
				r1[k] = x[i]
				r2[k] = y[i]
				k++
			}
		}
		ops.AddScore(n)
		return k, k
	}

	// Seed fragments of a few lengths sliding across the alignment.
	for _, frag := range []int{n, n / 2, n / 4, 8} {
		if frag < 3 {
			frag = 3
		}
		if frag > n {
			frag = n
		}
		step := frag / 2
		if step < 1 {
			step = 1
		}
		for start := 0; start+frag <= n; start += step {
			tr, _ := geom.Superpose(x[start:start+frag], y[start:start+frag])
			ops.AddKabsch(frag)
			k, _ := countAndCollect(tr)
			if k > best {
				best = k
			}
			// Iterative refinement on the in-threshold subset.
			for it := 0; it < 10 && k >= 3; it++ {
				tr, _ = geom.Superpose(r1[:k], r2[:k])
				ops.AddKabsch(k)
				k2, _ := countAndCollect(tr)
				if k2 > best {
					best = k2
				}
				if k2 == k {
					break
				}
				k = k2
			}
		}
		if frag == n {
			continue
		}
	}
	return float64(best) / float64(n)
}

// GDT holds the global distance test fractions at the standard cutoffs.
type GDT struct {
	// P1, P2, P4, P8 are the maximal fractions of residues within
	// 1, 2, 4 and 8 A; P05 is the 0.5 A fraction used by GDT-HA.
	P05, P1, P2, P4, P8 float64
}

// TS returns the GDT total score: the mean of the 1, 2, 4 and 8 A
// fractions.
func (g GDT) TS() float64 { return (g.P1 + g.P2 + g.P4 + g.P8) / 4 }

// HA returns the high-accuracy score: the mean of the 0.5, 1, 2, 4 A
// fractions.
func (g GDT) HA() float64 { return (g.P05 + g.P1 + g.P2 + g.P4) / 4 }

// GDTScores computes the global distance test for a fixed residue
// correspondence (x[i] matches y[i]). ops may be nil.
func GDTScores(x, y []geom.Vec3, ops *costmodel.Counter) GDT {
	if len(x) != len(y) {
		panic(fmt.Errorf("%w (GDT: %d vs %d)", ErrAlignedLength, len(x), len(y)))
	}
	return GDT{
		P05: fractionUnder(x, y, 0.5, ops),
		P1:  fractionUnder(x, y, 1, ops),
		P2:  fractionUnder(x, y, 2, ops),
		P4:  fractionUnder(x, y, 4, ops),
		P8:  fractionUnder(x, y, 8, ops),
	}
}

// MaxSub computes the MaxSub score (Siew et al. 2000) for a fixed
// correspondence: the largest superposable substructure under a 3.5 A
// threshold, scored as sum 1/(1+(d/3.5)^2) over the substructure,
// normalised by the alignment length. ops may be nil.
func MaxSub(x, y []geom.Vec3, ops *costmodel.Counter) float64 {
	const d = 3.5
	n := len(x)
	if n != len(y) {
		panic(fmt.Errorf("%w (MaxSub: %d vs %d)", ErrAlignedLength, n, len(y)))
	}
	if n == 0 {
		return 0
	}
	d2 := d * d
	best := 0.0
	xt := make([]geom.Vec3, n)
	r1 := make([]geom.Vec3, n)
	r2 := make([]geom.Vec3, n)

	score := func(tr geom.Transform) (float64, int) {
		tr.ApplyAll(xt, x)
		ops.AddRotate(n)
		s := 0.0
		k := 0
		for i := 0; i < n; i++ {
			di2 := xt[i].Dist2(y[i])
			if di2 <= d2 {
				s += 1 / (1 + di2/d2)
				r1[k] = x[i]
				r2[k] = y[i]
				k++
			}
		}
		ops.AddScore(n)
		return s / float64(n), k
	}

	for _, frag := range []int{n, n / 2, 8} {
		if frag < 3 {
			frag = 3
		}
		if frag > n {
			frag = n
		}
		step := frag / 2
		if step < 1 {
			step = 1
		}
		for start := 0; start+frag <= n; start += step {
			tr, _ := geom.Superpose(x[start:start+frag], y[start:start+frag])
			ops.AddKabsch(frag)
			s, k := score(tr)
			if s > best {
				best = s
			}
			for it := 0; it < 10 && k >= 3; it++ {
				tr, _ = geom.Superpose(r1[:k], r2[:k])
				ops.AddKabsch(k)
				s2, k2 := score(tr)
				if s2 > best {
					best = s2
				}
				if k2 == k {
					break
				}
				k = k2
			}
		}
	}
	return best
}

// RMSDCurve returns, for each prefix size cutoff in cutoffs (A), the
// largest fraction of the correspondence superposable within it — a
// compact summary used in model-quality plots. NaN-free: cutoffs <= 0
// yield 0.
func RMSDCurve(x, y []geom.Vec3, cutoffs []float64, ops *costmodel.Counter) []float64 {
	out := make([]float64, len(cutoffs))
	for i, d := range cutoffs {
		if d <= 0 || math.IsNaN(d) {
			continue
		}
		out[i] = fractionUnder(x, y, d, ops)
	}
	return out
}
