package tmscore

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/kernel"
)

func TestD0Formula(t *testing.T) {
	// Canonical values: d0(100) = 1.24*cbrt(85)-1.8.
	want := 1.24*math.Cbrt(85) - 1.8
	p := FinalParams(100)
	if math.Abs(p.D0-want) > 1e-12 {
		t.Errorf("FinalParams(100).D0 = %v, want %v", p.D0, want)
	}
	// Short chains use the floor.
	if FinalParams(10).D0 != 0.5 {
		t.Errorf("FinalParams(10).D0 = %v, want 0.5", FinalParams(10).D0)
	}
	if FinalParams(21).D0 != 0.5 {
		t.Errorf("FinalParams(21).D0 = %v, want 0.5", FinalParams(21).D0)
	}
}

func TestD0Monotonic(t *testing.T) {
	prev := 0.0
	for l := 22; l < 1000; l += 7 {
		d0 := FinalParams(float64(l)).D0
		if d0 <= prev {
			t.Fatalf("d0 not increasing at L=%d: %v <= %v", l, d0, prev)
		}
		prev = d0
	}
}

func TestSearchParams(t *testing.T) {
	p := SearchParams(150, 100)
	if p.LNorm != 100 {
		t.Errorf("LNorm = %v, want min length", p.LNorm)
	}
	want := (1.24*math.Cbrt(100-15) - 1.8) + 0.8
	if math.Abs(p.D0-want) > 1e-12 {
		t.Errorf("search D0 = %v, want %v", p.D0, want)
	}
	if p.D0Search < 4.5 || p.D0Search > 8 {
		t.Errorf("D0Search = %v outside [4.5, 8]", p.D0Search)
	}
	wantD8 := 1.5*math.Pow(100, 0.3) + 3.5
	if math.Abs(p.ScoreD8-wantD8) > 1e-12 {
		t.Errorf("ScoreD8 = %v, want %v", p.ScoreD8, wantD8)
	}
	// Tiny chains: the fixed small d0.
	ps := SearchParams(10, 12)
	if math.Abs(ps.D0-(0.168+0.8)) > 1e-12 {
		t.Errorf("short-chain search D0 = %v", ps.D0)
	}
}

func TestD0SearchClamped(t *testing.T) {
	if p := SearchParams(2000, 2000); p.D0Search != 8 {
		t.Errorf("huge chains: D0Search = %v, want 8", p.D0Search)
	}
	if p := SearchParams(25, 25); p.D0Search != 4.5 {
		t.Errorf("small chains: D0Search = %v, want 4.5", p.D0Search)
	}
}

func randomTrace(rng *rand.Rand, n int) []geom.Vec3 {
	// A self-avoiding-ish random walk with CA-like 3.8 A steps.
	pts := make([]geom.Vec3, n)
	cur := geom.V(0, 0, 0)
	for i := range pts {
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		cur = cur.Add(dir.Scale(3.8))
		pts[i] = cur
	}
	return pts
}

func TestSearchSelfAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randomTrace(rng, 120)
	// y = rigidly moved copy: TM-score must be ~1.
	g := geom.Transform{R: geom.RotY(1.0), T: geom.V(10, -4, 2)}
	y := make([]geom.Vec3, len(x))
	g.ApplyAll(y, x)

	p := SearchParams(len(x), len(y))
	tm, tr := p.Search(x, y, 40, nil)
	if tm < 0.999 {
		t.Fatalf("self TM-score = %v, want ~1", tm)
	}
	for i := range x {
		if tr.Apply(x[i]).Dist(y[i]) > 1e-3 {
			t.Fatalf("recovered transform wrong at %d", i)
		}
	}
}

func TestSearchPartialMatch(t *testing.T) {
	// First half matches rigidly, second half is noise: TM ~ 0.5 when
	// normalised by full length.
	rng := rand.New(rand.NewSource(15))
	n := 100
	x := randomTrace(rng, n)
	y := make([]geom.Vec3, n)
	g := geom.Transform{R: geom.RotX(0.7), T: geom.V(5, 5, 5)}
	g.ApplyAll(y, x)
	for i := n / 2; i < n; i++ {
		y[i] = y[i].Add(geom.V(rng.NormFloat64()*30, rng.NormFloat64()*30, rng.NormFloat64()*30))
	}
	p := FinalParams(float64(n))
	tm, _ := p.Search(x, y, 1, nil)
	if tm < 0.45 || tm > 0.75 {
		t.Errorf("half-match TM = %v, want in [0.45, 0.75]", tm)
	}
}

func TestSearchUnrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := randomTrace(rng, 80)
	y := randomTrace(rng, 80)
	p := SearchParams(80, 80)
	tm, _ := p.Search(x, y, 40, nil)
	if tm > 0.45 {
		t.Errorf("unrelated random traces TM = %v, suspiciously high", tm)
	}
	if tm <= 0 {
		t.Errorf("TM = %v, must be positive", tm)
	}
}

func TestSearchScoreInUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(100)
		x := randomTrace(rng, n)
		y := randomTrace(rng, n)
		p := FinalParams(float64(n))
		tm, tr := p.Search(x, y, 40, nil)
		if tm < 0 || tm > 1+1e-9 {
			t.Fatalf("TM = %v outside [0,1]", tm)
		}
		if !tr.R.IsRotation(1e-6) {
			t.Fatal("Search returned a non-rotation")
		}
	}
}

func TestSearchBeatsSingleSuperposition(t *testing.T) {
	// Structure with matching core + flexible tail: iterative search must
	// be at least as good as a one-shot global superposition.
	rng := rand.New(rand.NewSource(18))
	n := 90
	x := randomTrace(rng, n)
	y := make([]geom.Vec3, n)
	g := geom.Transform{R: geom.RotZ(0.4), T: geom.V(1, 2, 3)}
	g.ApplyAll(y, x)
	for i := 60; i < n; i++ { // divergent tail
		y[i] = y[i].Add(geom.V(rng.NormFloat64()*15, rng.NormFloat64()*15, rng.NormFloat64()*15))
	}
	p := FinalParams(float64(n))
	tmSearch, _ := p.Search(x, y, 1, nil)
	one, _ := geom.Superpose(x, y)
	tmOne := p.ScoreWithTransform(x, y, one, nil)
	if tmSearch < tmOne-1e-9 {
		t.Errorf("Search TM %v worse than single superposition %v", tmSearch, tmOne)
	}
	if tmSearch < 0.6 {
		t.Errorf("core should score well, TM = %v", tmSearch)
	}
}

func TestSearchTinyInputs(t *testing.T) {
	p := FinalParams(4)
	x := []geom.Vec3{{0, 0, 0}, {3.8, 0, 0}, {7.6, 0, 0}, {11.4, 0, 0}}
	tm, _ := p.Search(x, x, 1, nil)
	if tm < 0.99 {
		t.Errorf("tiny self comparison TM = %v", tm)
	}
	// Empty alignment.
	tm, _ = p.Search(nil, nil, 1, nil)
	if tm != 0 {
		t.Errorf("empty Search TM = %v, want 0", tm)
	}
	// Single pair.
	tm, tr := p.Search(x[:1], x[:1], 1, nil)
	if tm <= 0 {
		t.Errorf("single-pair TM = %v", tm)
	}
	if !tr.R.IsRotation(1e-9) {
		t.Errorf("single-pair Search returned a non-rotation")
	}
	// Two pairs: below the smallest L_ini fragment (4), the seed ladder
	// and the cutoff-relaxation guard (nCut < 3 only when n > 3) must
	// still converge on the identity-superposable pair. Normalise by the
	// actual length so a perfect match scores ~1.
	tm, tr = FinalParams(2).Search(x[:2], x[:2], 1, nil)
	if tm < 0.99 {
		t.Errorf("two-pair self TM = %v, want ~1", tm)
	}
	if !tr.R.IsRotation(1e-9) {
		t.Errorf("two-pair Search returned a non-rotation")
	}
	// Three pairs, displaced copy: superposition must recover it.
	y := make([]geom.Vec3, 3)
	g := geom.Transform{R: geom.RotZ(0.9), T: geom.V(-3, 7, 1)}
	g.ApplyAll(y, x[:3])
	tm, _ = FinalParams(3).Search(x[:3], y, 1, nil)
	if tm < 0.99 {
		t.Errorf("three-pair rigid-copy TM = %v, want ~1", tm)
	}
}

// TestSearchWSMatchesSearch verifies the workspace-explicit entry point
// is the same computation as the pooled wrapper: identical scores,
// transforms and charged ops, including when one Workspace is reused
// (dirty) across calls of different sizes.
func TestSearchWSMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := kernel.Get()
	defer kernel.Put(w)
	for _, n := range []int{5, 37, 80, 11} { // descending sizes exercise stale scratch
		x := randomTrace(rng, n)
		y := randomTrace(rng, n)
		p := SearchParams(n, n)
		var opsPool, opsWS costmodel.Counter
		tm1, tr1 := p.Search(x, y, 40, &opsPool)
		tm2, tr2 := p.SearchWS(w, x, y, 40, &opsWS)
		if tm1 != tm2 {
			t.Errorf("n=%d: Search TM %v != SearchWS TM %v", n, tm1, tm2)
		}
		if tr1 != tr2 {
			t.Errorf("n=%d: transforms differ:\n%v\n%v", n, tr1, tr2)
		}
		if opsPool != opsWS {
			t.Errorf("n=%d: ops differ: %+v vs %+v", n, opsPool, opsWS)
		}
	}
}

func TestSearchMismatchedPanic(t *testing.T) {
	defer func() {
		rec := recover()
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrAlignedLength) {
			t.Errorf("panic value %v does not wrap ErrAlignedLength", rec)
		}
	}()
	FinalParams(10).Search(make([]geom.Vec3, 3), make([]geom.Vec3, 4), 1, nil)
}

func TestSearchOpsCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x := randomTrace(rng, 50)
	y := randomTrace(rng, 50)
	var ops costmodel.Counter
	SearchParams(50, 50).Search(x, y, 40, &ops)
	if ops.KabschCalls == 0 || ops.ScoreEvals == 0 || ops.RotationOps == 0 {
		t.Errorf("search charged no ops: %+v", ops)
	}
}

func TestScoreWithTransformD8Cutoff(t *testing.T) {
	// A pair beyond d8 must contribute 0 in search mode but > 0 in final
	// mode.
	x := []geom.Vec3{{0, 0, 0}, {3.8, 0, 0}, {7.6, 0, 0}, {11.4, 0, 0}}
	y := []geom.Vec3{{0, 0, 0}, {3.8, 0, 0}, {7.6, 0, 0}, {11.4, 100, 0}}
	id := geom.IdentityTransform()

	search := SearchParams(4, 4)
	final := FinalParams(4)
	sSearch := search.ScoreWithTransform(x, y, id, nil)
	sFinal := final.ScoreWithTransform(x, y, id, nil)

	// In both cases 3 pairs coincide; the far pair only counts in final
	// mode. D0 differs between modes, so compare against per-mode bounds.
	if sSearch >= 3.0001/search.LNorm*1.0001 {
		t.Errorf("search-mode score %v includes the far pair", sSearch)
	}
	wantMin := 3.0 / final.LNorm
	if sFinal <= wantMin {
		t.Errorf("final-mode score %v should include the far pair (> %v)", sFinal, wantMin)
	}
}

func TestFinalSimplifyStepNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := randomTrace(rng, 70)
	y := make([]geom.Vec3, 70)
	g := geom.Transform{R: geom.RotX(1.2), T: geom.V(3, 1, -2)}
	g.ApplyAll(y, x)
	for i := 40; i < 70; i++ {
		y[i] = y[i].Add(geom.V(rng.NormFloat64()*8, rng.NormFloat64()*8, rng.NormFloat64()*8))
	}
	p := FinalParams(70)
	tmFast, _ := p.Search(x, y, 40, nil)
	tmFull, _ := p.Search(x, y, 1, nil)
	if tmFull < tmFast-1e-9 {
		t.Errorf("step-1 search (%v) must not be worse than step-40 (%v)", tmFull, tmFast)
	}
}

func BenchmarkSearch150Step40(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	x := randomTrace(rng, 150)
	y := randomTrace(rng, 150)
	p := SearchParams(150, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Search(x, y, 40, nil)
	}
}
