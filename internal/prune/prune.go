// Package prune implements an opt-in all-vs-all pre-filter: cheap
// per-structure features (length, secondary-structure composition,
// sequence) combined into a conservative upper bound on the mean
// TM-score of a pair, so pairs that provably-or-confidently cannot
// reach a caller-chosen threshold are skipped without running the
// O(L^2) TM-align kernel at all.
//
// The bound is the minimum of three independent caps:
//
//   - Length cap (provable): TM normalised by length L sums at most
//     min(L1, L2) unit terms, so TM_L <= min(L1,L2)/L and the mean of
//     the two normalisations is at most (r+1)/2 with r = min/max.
//   - Sequence cap (calibrated): Gotoh affine-gap alignment of the two
//     sequences, normalised by the shorter length. On the CK34
//     calibration set, no pair with mean TM >= 0.35 has a sequence
//     similarity below seqHi (observed gap: dissimilar pairs max 0.17,
//     similar pairs min 0.39).
//   - Composition cap (calibrated): half-L1 distance between the
//     secondary-structure composition vectors. No CK34 pair with mean
//     TM >= 0.35 has a composition distance above compLo (observed
//     gap: similar pairs max 0.36, dissimilar-only above 0.50).
//
// The calibrated caps are estimates, not proofs: they hold exhaustively
// on CK34 (with margins of at least 0.04 on each knee, see the package
// tests, which verify zero misclassifications at every threshold for
// both the default and fast kernels) and degrade gracefully elsewhere —
// a structure without sequence data disables the sequence cap rather
// than mis-pruning. The length cap alone is always sound.
package prune

import (
	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/seqalign"
	"rckalign/internal/ss"
)

// Features summarises one structure for the pre-filter. Extract it once
// per structure; bounds are then O(L^2) in the DP similarity terms only.
type Features struct {
	// Length is the chain length in residues.
	Length int
	// Comp[t] is the fraction of residues with ss.Type t (index 0 unused).
	Comp [5]float64
	// Sec is the secondary structure assignment.
	Sec []ss.Type
	// Seq is the one-letter sequence ("" disables the sequence cap).
	Seq string
}

// Extract computes the pre-filter features of one CA trace.
func Extract(ca []geom.Vec3, seq string) Features {
	sec := ss.Assign(ca)
	return FromSec(sec, seq)
}

// FromSec builds Features from an existing secondary structure
// assignment (callers that already ran ss.Assign avoid repeating it).
func FromSec(sec []ss.Type, seq string) Features {
	f := Features{Length: len(sec), Sec: sec, Seq: seq}
	if len(sec) == 0 {
		return f
	}
	for _, t := range sec {
		f.Comp[int(t)]++
	}
	inv := 1 / float64(len(sec))
	for k := range f.Comp {
		f.Comp[k] *= inv
	}
	return f
}

// Calibration constants (see the package comment). The knees carry at
// least 0.04 of margin to the nearest CK34 observation on either side.
const (
	// capFloor is the bound assigned when a calibrated cap fires: safely
	// above the largest mean TM observed for any dissimilar CK34 pair
	// (0.265), safely below any similar pair (0.758).
	capFloor = 0.35
	// Sequence similarity knee: below seqLo the cap is capFloor, above
	// seqHi it is 1 (no information), linear in between.
	seqLo = 0.28
	seqHi = 0.38
	// Composition distance knee: above compHi the cap is capFloor, below
	// compLo it is 1, linear in between.
	compLo = 0.40
	compHi = 0.50
	// Gotoh gap penalties for the sequence similarity DP.
	gapOpen   = -1.0
	gapExtend = -0.1
)

// Filter prunes pairs whose bound falls below Threshold. It is not safe
// for concurrent use (it owns DP scratch); each goroutine needs its own.
type Filter struct {
	// Threshold is the -prune-tm value: pairs with Bound < Threshold are
	// skipped.
	Threshold float64
	// Ops accumulates the filter's own DP cost, kept separate from the
	// simulated kernel counters so pruning never perturbs simulated
	// per-job times.
	Ops costmodel.Counter
	// Report accumulates the skip/keep accounting across Skip calls.
	Report Report

	nw  *seqalign.Aligner
	inv []int
}

// New returns a Filter skipping pairs bounded below threshold.
func New(threshold float64) *Filter {
	return &Filter{Threshold: threshold, nw: seqalign.NewAligner()}
}

// Report summarises one pruning pass.
type Report struct {
	// Threshold echoes the filter threshold.
	Threshold float64 `json:"threshold"`
	// Total and Skipped count examined and pruned pairs.
	Total   int `json:"total"`
	Skipped int `json:"skipped"`
	// BoundHist[k] counts pairs with bound in [k/10, (k+1)/10); the last
	// bucket absorbs bounds >= 1.
	BoundHist [11]int `json:"bound_hist"`
	// DPCells is the filter's own dynamic-programming cost (cells).
	DPCells int64 `json:"dp_cells"`
}

// SkipFraction returns the fraction of examined pairs that were pruned.
func (r *Report) SkipFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Skipped) / float64(r.Total)
}

// Bound returns the conservative upper bound on the mean TM-score of
// the pair (min of the length, sequence and composition caps).
func (f *Filter) Bound(a, b *Features) float64 {
	minL, maxL := a.Length, b.Length
	if minL > maxL {
		minL, maxL = maxL, minL
	}
	if minL == 0 {
		return 0
	}
	// Provable length cap.
	bound := (float64(minL)/float64(maxL) + 1) / 2

	// Calibrated composition cap.
	var compD float64
	for k := 1; k < 5; k++ {
		d := a.Comp[k] - b.Comp[k]
		if d < 0 {
			d = -d
		}
		compD += d
	}
	compD /= 2
	if c := rampDown(compD, compLo, compHi); c < bound {
		bound = c
	}

	// Calibrated sequence cap (only with full sequence data on both
	// sides; a missing or truncated sequence yields no cap rather than a
	// spuriously low similarity).
	if len(a.Seq) >= a.Length && len(b.Seq) >= b.Length {
		seq1, seq2 := a.Seq, b.Seq
		if cap(f.inv) < b.Length {
			f.inv = make([]int, b.Length)
		}
		inv := f.inv[:b.Length]
		score := f.nw.AlignAffine(a.Length, b.Length, func(i, j int) float64 {
			if seq1[i] == seq2[j] {
				return 1
			}
			return 0
		}, gapOpen, gapExtend, inv, &f.Ops)
		seqSim := score / float64(minL)
		if c := rampUp(seqSim, seqLo, seqHi); c < bound {
			bound = c
		}
	}
	return bound
}

// Skip records the pair in the report and reports whether it should be
// pruned (bound below threshold).
func (f *Filter) Skip(a, b *Features) bool {
	bd := f.Bound(a, b)
	f.Report.Threshold = f.Threshold
	f.Report.Total++
	k := int(bd * 10)
	if k < 0 {
		k = 0
	}
	if k > 10 {
		k = 10
	}
	f.Report.BoundHist[k]++
	f.Report.DPCells = int64(f.Ops.DPCells)
	if bd < f.Threshold {
		f.Report.Skipped++
		return true
	}
	return false
}

// rampUp maps x <= lo to capFloor, x >= hi to 1, linear in between.
func rampUp(x, lo, hi float64) float64 {
	if x <= lo {
		return capFloor
	}
	if x >= hi {
		return 1
	}
	return capFloor + (x-lo)/(hi-lo)*(1-capFloor)
}

// rampDown maps x >= hi to capFloor, x <= lo to 1, linear in between.
func rampDown(x, lo, hi float64) float64 {
	if x >= hi {
		return capFloor
	}
	if x <= lo {
		return 1
	}
	return 1 - (x-lo)/(hi-lo)*(1-capFloor)
}
