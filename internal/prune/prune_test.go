// External test package: the exhaustive calibration tests compute true
// TM-scores through internal/core (which itself imports prune), so they
// must live outside package prune to avoid an import cycle.
package prune_test

import (
	"strings"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/pairstore"
	"rckalign/internal/prune"
	"rckalign/internal/sched"
	"rckalign/internal/ss"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// flatFeatures builds Features for an artificial chain of n residues of
// a single secondary-structure class with the given sequence.
func flatFeatures(n int, class ss.Type, seq string) prune.Features {
	sec := make([]ss.Type, n)
	for i := range sec {
		sec[i] = class
	}
	return prune.FromSec(sec, seq)
}

func TestBoundDegenerateInputs(t *testing.T) {
	f := prune.New(0.5)
	empty := prune.FromSec(nil, "")
	some := flatFeatures(10, ss.Helix, "AAAAAAAAAA")
	if b := f.Bound(&empty, &empty); b != 0 {
		t.Errorf("Bound(empty, empty) = %v, want 0", b)
	}
	if b := f.Bound(&empty, &some); b != 0 {
		t.Errorf("Bound(empty, some) = %v, want 0", b)
	}
	if b := f.Bound(&some, &empty); b != 0 {
		t.Errorf("Bound(some, empty) = %v, want 0", b)
	}
}

func TestBoundLengthCap(t *testing.T) {
	// Identical composition and sequence: only the provable length cap
	// applies. 40 vs 120 residues: (40/120 + 1)/2 = 2/3.
	f := prune.New(0.5)
	a := flatFeatures(40, ss.Helix, strings.Repeat("A", 40))
	b := flatFeatures(120, ss.Helix, strings.Repeat("A", 120))
	want := (40.0/120.0 + 1) / 2
	if got := f.Bound(&a, &b); got != want {
		t.Errorf("length-cap bound = %v, want %v", got, want)
	}
	// Symmetric.
	if got := f.Bound(&b, &a); got != want {
		t.Errorf("length-cap bound (swapped) = %v, want %v", got, want)
	}
}

func TestBoundMissingSequenceDisablesSeqCap(t *testing.T) {
	// Same length and composition, totally dissimilar sequences: the
	// sequence cap fires (bound = the calibrated floor 0.35) — but only
	// when both sequences cover the full chain.
	n := 50
	withA := flatFeatures(n, ss.Helix, strings.Repeat("A", n))
	withG := flatFeatures(n, ss.Helix, strings.Repeat("G", n))
	f := prune.New(0.5)
	if got := f.Bound(&withA, &withG); got != 0.35 {
		t.Errorf("dissimilar-sequence bound = %v, want the 0.35 cap floor", got)
	}
	// Blank out one sequence: no sequence information, no sequence cap.
	noSeq := withG
	noSeq.Seq = ""
	if got := f.Bound(&withA, &noSeq); got != 1 {
		t.Errorf("missing-sequence bound = %v, want 1 (cap disabled)", got)
	}
	// A truncated sequence (shorter than the chain) must also disable the
	// cap rather than produce a spuriously low similarity.
	trunc := withG
	trunc.Seq = trunc.Seq[:n-1]
	if got := f.Bound(&withA, &trunc); got != 1 {
		t.Errorf("truncated-sequence bound = %v, want 1 (cap disabled)", got)
	}
}

func TestBoundCompositionCap(t *testing.T) {
	// All-helix vs all-strand, no sequences: composition distance is 1,
	// far above the knee, so the calibrated floor applies.
	a := flatFeatures(60, ss.Helix, "")
	b := flatFeatures(60, ss.Strand, "")
	f := prune.New(0.5)
	if got := f.Bound(&a, &b); got != 0.35 {
		t.Errorf("opposite-composition bound = %v, want the 0.35 cap floor", got)
	}
	// Identical composition: the cap contributes nothing (bound stays at
	// the length cap, 1 for equal lengths).
	if got := f.Bound(&a, &a); got != 1 {
		t.Errorf("identical-composition bound = %v, want 1", got)
	}
}

func TestSkipReportAccounting(t *testing.T) {
	f := prune.New(0.5)
	a := flatFeatures(40, ss.Helix, strings.Repeat("A", 40))   // vs b: length cap 2/3, kept
	b := flatFeatures(120, ss.Helix, strings.Repeat("A", 120)) // vs g: seq cap 0.35, skipped
	g := flatFeatures(120, ss.Helix, strings.Repeat("G", 120))
	if f.Skip(&a, &b) {
		t.Error("Skip(a, b) = true, want false (bound 2/3 >= 0.5)")
	}
	if !f.Skip(&b, &g) {
		t.Error("Skip(b, g) = false, want true (bound 0.35 < 0.5)")
	}
	r := f.Report
	if r.Threshold != 0.5 || r.Total != 2 || r.Skipped != 1 {
		t.Errorf("report = %+v, want threshold 0.5, total 2, skipped 1", r)
	}
	sum := 0
	for _, c := range r.BoundHist {
		sum += c
	}
	if sum != r.Total {
		t.Errorf("BoundHist sums to %d, want Total = %d", sum, r.Total)
	}
	if r.BoundHist[6] != 1 || r.BoundHist[3] != 1 {
		t.Errorf("BoundHist = %v, want one pair in [0.6,0.7) and one in [0.3,0.4)", r.BoundHist)
	}
	if r.DPCells == 0 {
		t.Error("DPCells = 0, want the sequence DP cost recorded")
	}
	if got := r.SkipFraction(); got != 0.5 {
		t.Errorf("SkipFraction = %v, want 0.5", got)
	}
}

func TestPrunePairsPreservesOrder(t *testing.T) {
	ds := synth.CK34()
	kept, rep := core.PrunePairs(ds, 0.5)
	all := sched.AllVsAll(ds.Len())
	if rep.Total != len(all) {
		t.Fatalf("report total = %d, want %d", rep.Total, len(all))
	}
	if len(kept)+rep.Skipped != rep.Total {
		t.Errorf("kept %d + skipped %d != total %d", len(kept), rep.Skipped, rep.Total)
	}
	// Survivors appear in canonical all-vs-all order.
	pos := make(map[sched.Pair]int, len(all))
	for k, p := range all {
		pos[p] = k
	}
	last := -1
	for _, p := range kept {
		k, ok := pos[p]
		if !ok {
			t.Fatalf("kept pair %v not in the all-vs-all list", p)
		}
		if k <= last {
			t.Fatalf("kept pairs out of canonical order at %v", p)
		}
		last = k
	}
	// Threshold 0 disables pruning entirely.
	keptAll, repAll := core.PrunePairs(ds, 0)
	if len(keptAll) != len(all) || repAll.Skipped != 0 {
		t.Errorf("threshold 0: kept %d skipped %d, want all %d kept", len(keptAll), repAll.Skipped, len(all))
	}
}

// TestCK34BoundNeverUnderestimates is the central safety property: for
// every CK34 pair, under both the default and the fast kernel, the
// pre-filter bound is >= the true mean TM-score. This single invariant
// implies zero misclassifications at EVERY threshold (if bound < T then
// trueTM <= bound < T), which the sweep below then spells out.
func TestCK34BoundNeverUnderestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("computes all 561 CK34 pairs under two kernels")
	}
	ds := synth.CK34()
	feats := make([]prune.Features, ds.Len())
	for i, s := range ds.Structures {
		feats[i] = prune.Extract(s.CAs(), s.Sequence())
	}

	kernels := []struct {
		name string
		opt  tmalign.Options
	}{
		{"default", tmalign.DefaultOptions()},
		{"fast", tmalign.FastOptions()},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			pr := core.ComputeAllPairsShared(ds, k.opt, pairstore.New(0))
			f := prune.New(0)
			worstMargin := 1.0
			for i, p := range pr.Pairs {
				bound := f.Bound(&feats[p.I], &feats[p.J])
				tm := pr.Results[i].TM()
				if bound < tm {
					t.Errorf("pair %s/%s: bound %.6f < true TM %.6f",
						ds.Structures[p.I].ID, ds.Structures[p.J].ID, bound, tm)
				}
				if m := bound - tm; m < worstMargin {
					worstMargin = m
				}
			}
			t.Logf("kernel %s: worst bound margin over %d pairs: %.4f", k.name, len(pr.Pairs), worstMargin)

			// Threshold sweep: at every threshold from permissive to
			// aggressive, count skips and misclassifications (a skipped
			// pair whose true TM clears the threshold). The property above
			// makes every misclassification count provably zero; the sweep
			// is the golden quantification of that claim.
			thresholds := []float64{0.1, 0.2, 0.3, 0.35, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
			for _, thr := range thresholds {
				skipped, missed := 0, 0
				for i, p := range pr.Pairs {
					if f.Bound(&feats[p.I], &feats[p.J]) < thr {
						skipped++
						if pr.Results[i].TM() >= thr {
							missed++
						}
					}
				}
				t.Logf("kernel %s: threshold %.2f: skipped %3d/%d (%.1f%%), misclassified %d",
					k.name, thr, skipped, len(pr.Pairs), 100*float64(skipped)/float64(len(pr.Pairs)), missed)
				if missed != 0 {
					t.Errorf("threshold %.2f: %d misclassified pairs (skipped but true TM >= threshold)", thr, missed)
				}
			}
		})
	}
}

// TestCK34SkipFractionAtConservativeThreshold locks the headline pruning
// win: at the conservative threshold 0.5 the filter removes far more
// than the required 25% of CK34's 561 pairs. The exact count is a golden
// value — the dataset and the filter are both deterministic.
func TestCK34SkipFractionAtConservativeThreshold(t *testing.T) {
	ds := synth.CK34()
	kept, rep := core.PrunePairs(ds, 0.5)
	if rep.SkipFraction() < 0.25 {
		t.Errorf("skip fraction at 0.5 = %.3f, want >= 0.25", rep.SkipFraction())
	}
	const wantSkipped = 453 // golden: 453 of 561 pairs (80.7%)
	if rep.Skipped != wantSkipped || rep.Total != 561 {
		t.Errorf("skipped %d of %d, want golden %d of 561", rep.Skipped, rep.Total, wantSkipped)
	}
	if len(kept) != rep.Total-rep.Skipped {
		t.Errorf("kept %d pairs, want %d", len(kept), rep.Total-rep.Skipped)
	}
}
