// Package synth generates deterministic synthetic protein CA traces and
// the two benchmark datasets the paper evaluates on.
//
// The paper uses the Chew–Kedem (CK34, 34 domains) and Rost–Sander (RS119,
// 119 chains) PDB-derived datasets. This reproduction has no PDB access,
// so synth builds geometric stand-ins: chains assembled from ideal
// secondary structure segments (helices, strands, loops) arranged into
// compact folds, grouped into "families" obtained by perturbing a shared
// base fold. TM-align consumes only CA coordinates and sequences, so the
// synthetic chains exercise the identical code path; matching the
// published chain counts and realistic length distributions preserves the
// job-count and job-cost-variance structure that drives the paper's
// scaling results. See DESIGN.md ("substitutions") for the rationale.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/ss"
)

// Segment is one secondary-structure element of a blueprint.
type Segment struct {
	Type ss.Type
	Len  int
}

// Blueprint describes a fold as an ordered list of segments.
type Blueprint []Segment

// TotalLen returns the residue count of the blueprint.
func (b Blueprint) TotalLen() int {
	n := 0
	for _, s := range b {
		n += s.Len
	}
	return n
}

// amino acid alphabet used for synthetic sequences.
const aaAlphabet = "ARNDCQEGHILKMFPSTWYV"

// Generate builds a CA trace realizing the blueprint. Helices and strands
// use ideal local geometry (so TM-align's secondary structure assignment
// recovers them); segments are chained with bounded random turns and a
// weak bias toward the centroid to keep folds compact. The result is
// deterministic in (id, seed).
func Generate(id string, bp Blueprint, seed int64) *pdb.Structure {
	rng := rand.New(rand.NewSource(seed ^ hashString(id)))
	n := bp.TotalLen()
	pts := make([]geom.Vec3, 0, n)
	seq := make([]byte, 0, n)

	pos := geom.V(0, 0, 0)
	dir := geom.V(1, 0, 0)

	for _, seg := range bp {
		local := segmentGeometry(seg, rng)
		// Orient the segment's local +x axis along dir with a random roll.
		frame := frameAlong(dir, rng.Float64()*2*math.Pi)
		for i, p := range local {
			g := frame.MulVec(p).Add(pos)
			if i == len(local)-1 {
				// Advance the chain to just past the segment end.
				step := g.Sub(pos)
				if step.Norm() < 1e-9 {
					step = dir.Scale(3.8)
				}
				pts = append(pts, g)
				pos = g.Add(step.Unit().Scale(3.8))
			} else {
				pts = append(pts, g)
			}
			seq = append(seq, aaAlphabet[rng.Intn(len(aaAlphabet))])
		}
		// Turn: blend previous direction, random kick, and a pull toward
		// the centroid of what exists so far (compactness).
		centroid := geom.Centroid(pts)
		pull := centroid.Sub(pos)
		if pull.Norm() > 1e-9 {
			pull = pull.Unit()
		}
		kick := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if kick.Norm() < 1e-9 {
			kick = geom.V(0, 1, 0)
		}
		dir = dir.Scale(0.4).Add(pull.Scale(0.4)).Add(kick.Unit().Scale(0.8)).Unit()
	}
	return pdb.FromCAs(id, pts, string(seq))
}

// segmentGeometry returns the local-frame CA positions of one segment,
// starting near the origin and extending along +x.
func segmentGeometry(seg Segment, rng *rand.Rand) []geom.Vec3 {
	pts := make([]geom.Vec3, seg.Len)
	switch seg.Type {
	case ss.Helix:
		// Ideal alpha helix along +x: radius 2.3 A, rise 1.5 A, 100 deg.
		for i := range pts {
			a := float64(i) * 100 * math.Pi / 180
			pts[i] = geom.V(1.5*float64(i), 2.3*math.Cos(a), 2.3*math.Sin(a))
		}
	case ss.Strand:
		// Extended strand: 3.3 A rise with alternating 0.5 A pleat.
		for i := range pts {
			z := 0.5
			if i%2 == 1 {
				z = -0.5
			}
			pts[i] = geom.V(3.3*float64(i), 0, z)
		}
	default:
		// Loop/coil: bounded-turn random walk with CA-like 3.8 A steps.
		cur := geom.V(0, 0, 0)
		d := geom.V(1, 0, 0)
		for i := range pts {
			pts[i] = cur
			kick := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.7)
			d = d.Add(kick).Unit()
			cur = cur.Add(d.Scale(3.8))
		}
	}
	return pts
}

// frameAlong returns a rotation taking the +x axis to unit vector dir,
// with the given roll angle about dir.
func frameAlong(dir geom.Vec3, roll float64) geom.Mat3 {
	dir = dir.Unit()
	x := geom.V(1, 0, 0)
	axis := x.Cross(dir)
	var base geom.Mat3
	if axis.Norm() < 1e-9 {
		if dir[0] > 0 {
			base = geom.Identity()
		} else {
			base = geom.RotZ(math.Pi)
		}
	} else {
		angle := math.Acos(clamp(x.Dot(dir), -1, 1))
		base = geom.AxisAngle(axis, angle)
	}
	return base.Mul(geom.AxisAngle(geom.V(1, 0, 0), roll))
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PerturbOptions controls family-member generation.
type PerturbOptions struct {
	// Noise is the per-coordinate Gaussian sigma in Angstroms.
	Noise float64
	// Indels is the number of short (2-5 residue) deletions applied.
	Indels int
	// MutateFrac is the fraction of residues whose amino acid is changed.
	MutateFrac float64
}

// Perturb derives a family member from a base structure: coordinate
// noise, optional short deletions, sequence mutations and a random rigid
// motion. Deterministic in (id, seed).
func Perturb(base *pdb.Structure, id string, opt PerturbOptions, seed int64) *pdb.Structure {
	rng := rand.New(rand.NewSource(seed ^ hashString(id)))
	res := make([]pdb.Residue, len(base.Residues))
	copy(res, base.Residues)

	// Deletions.
	for k := 0; k < opt.Indels && len(res) > 20; k++ {
		dl := 2 + rng.Intn(4)
		at := rng.Intn(len(res) - dl)
		res = append(res[:at], res[at+dl:]...)
	}

	// Coordinate noise + mutations.
	for i := range res {
		res[i].CA = res[i].CA.Add(geom.V(
			rng.NormFloat64()*opt.Noise,
			rng.NormFloat64()*opt.Noise,
			rng.NormFloat64()*opt.Noise,
		))
		if rng.Float64() < opt.MutateFrac {
			aa := aaAlphabet[rng.Intn(len(aaAlphabet))]
			res[i].AA = aa
			res[i].Name = pdb.ThreeLetter(aa)
		}
		res[i].Seq = i + 1
	}

	// Random rigid motion (comparison must be orientation independent).
	tr := geom.Transform{
		R: geom.AxisAngle(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*2*math.Pi),
		T: geom.V(rng.NormFloat64()*20, rng.NormFloat64()*20, rng.NormFloat64()*20),
	}
	for i := range res {
		res[i].CA = tr.Apply(res[i].CA)
	}
	return &pdb.Structure{ID: id, Chain: 'A', Residues: res}
}

// hashString gives a stable 64-bit hash for seeding (FNV-1a).
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// Dataset is a named list of structures.
type Dataset struct {
	Name       string
	Structures []*pdb.Structure
}

// Len returns the number of structures.
func (d *Dataset) Len() int { return len(d.Structures) }

// Pairs returns the number of unordered distinct pairs (the all-vs-all
// job count).
func (d *Dataset) Pairs() int { return d.Len() * (d.Len() - 1) / 2 }

// TotalResidues sums all chain lengths.
func (d *Dataset) TotalResidues() int {
	n := 0
	for _, s := range d.Structures {
		n += s.Len()
	}
	return n
}

// family appends count members derived from a base blueprint.
func family(out []*pdb.Structure, name string, bp Blueprint, count int, seed int64, noise float64) []*pdb.Structure {
	base := Generate(name+"-base", bp, seed)
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("%s%02d", name, i+1)
		member := Perturb(base, id, PerturbOptions{
			Noise:      noise * (0.6 + 0.5*float64(i%4)/3),
			Indels:     i % 3,
			MutateFrac: 0.3,
		}, seed+int64(i)+1)
		out = append(out, member)
	}
	return out
}

// helixBundle builds a blueprint of nh helices of length hl joined by
// loops of length ll.
func helixBundle(nh, hl, ll int) Blueprint {
	var bp Blueprint
	for i := 0; i < nh; i++ {
		if i > 0 {
			bp = append(bp, Segment{ss.Coil, ll})
		}
		bp = append(bp, Segment{ss.Helix, hl})
	}
	return bp
}

// betaBarrel builds ns strands of length sl joined by short loops.
func betaBarrel(ns, sl, ll int) Blueprint {
	var bp Blueprint
	for i := 0; i < ns; i++ {
		if i > 0 {
			bp = append(bp, Segment{ss.Coil, ll})
		}
		bp = append(bp, Segment{ss.Strand, sl})
	}
	return bp
}

// alphaBeta alternates strands and helices (Rossmann-like).
func alphaBeta(units, sl, hl, ll int) Blueprint {
	var bp Blueprint
	for i := 0; i < units; i++ {
		if i > 0 {
			bp = append(bp, Segment{ss.Coil, ll})
		}
		bp = append(bp, Segment{ss.Strand, sl}, Segment{ss.Coil, ll}, Segment{ss.Helix, hl})
	}
	return bp
}

// CK34 returns the synthetic stand-in for the Chew–Kedem dataset:
// 34 domains in five fold families (globin-like helix bundles, TIM-like
// alpha/beta barrels, plastocyanin-like beta sandwiches, protease-like
// large beta folds and small alpha/beta domains), with lengths in the
// ranges of the original set (~60-260 residues).
func CK34() *Dataset {
	var s []*pdb.Structure
	s = family(s, "glb", helixBundle(6, 18, 6), 10, 1001, 0.8) // ~150 res globins
	s = family(s, "tim", alphaBeta(8, 6, 12, 5), 6, 2002, 0.9) // ~250 res barrels
	s = family(s, "pcy", betaBarrel(8, 8, 5), 8, 3003, 0.7)    // ~100 res beta
	s = family(s, "prt", betaBarrel(12, 9, 6), 5, 4004, 0.9)   // ~220 res proteases
	s = family(s, "sab", alphaBeta(3, 5, 10, 4), 5, 5005, 0.6) // ~65 res small
	if len(s) != 34 {
		panic(fmt.Sprintf("synth: CK34 has %d structures, want 34", len(s)))
	}
	return &Dataset{Name: "CK34", Structures: s}
}

// RS119 returns the synthetic stand-in for the Rost–Sander dataset: 119
// chains with a broad length distribution (~50-460 residues) organised as
// a mix of families and singletons, as in the original secondary
// structure benchmark set.
func RS119() *Dataset {
	var s []*pdb.Structure
	// Families (84 chains).
	s = family(s, "rsa", helixBundle(4, 16, 6), 12, 11011, 0.8)  // ~90
	s = family(s, "rsb", helixBundle(8, 20, 7), 10, 12012, 0.9)  // ~215
	s = family(s, "rsc", betaBarrel(10, 8, 5), 12, 13013, 0.7)   // ~125
	s = family(s, "rsd", alphaBeta(9, 6, 13, 5), 8, 14014, 0.9)  // ~290
	s = family(s, "rse", alphaBeta(4, 6, 11, 5), 12, 15015, 0.7) // ~115
	s = family(s, "rsf", betaBarrel(16, 10, 6), 6, 16016, 1.0)   // ~250
	s = family(s, "rsg", helixBundle(3, 12, 5), 10, 17017, 0.6)  // ~46
	s = family(s, "rsh", alphaBeta(12, 7, 14, 6), 6, 18018, 1.0) // ~410
	s = family(s, "rsi", betaBarrel(6, 7, 4), 8, 19019, 0.6)     // ~62
	// Singletons (35 chains) with varied sizes.
	rng := rand.New(rand.NewSource(99099))
	for i := 0; i < 35; i++ {
		var bp Blueprint
		switch i % 3 {
		case 0:
			bp = helixBundle(2+rng.Intn(7), 12+rng.Intn(10), 5+rng.Intn(4))
		case 1:
			bp = betaBarrel(4+rng.Intn(10), 6+rng.Intn(6), 4+rng.Intn(4))
		default:
			bp = alphaBeta(2+rng.Intn(8), 5+rng.Intn(4), 9+rng.Intn(8), 4+rng.Intn(4))
		}
		id := fmt.Sprintf("rsx%02d", i+1)
		s = append(s, Generate(id, bp, 20020+int64(i)))
	}
	if len(s) != 119 {
		panic(fmt.Sprintf("synth: RS119 has %d structures, want 119", len(s)))
	}
	return &Dataset{Name: "RS119", Structures: s}
}

// ByName returns a built-in dataset by name ("CK34" or "RS119").
func ByName(name string) (*Dataset, error) {
	switch name {
	case "CK34", "ck34":
		return CK34(), nil
	case "RS119", "rs119":
		return RS119(), nil
	}
	return nil, fmt.Errorf("synth: unknown dataset %q (have CK34, RS119)", name)
}

// Small returns a small n-structure dataset for tests: two families plus
// singletons, deterministic in seed.
func Small(n int, seed int64) *Dataset {
	var s []*pdb.Structure
	half := n / 2
	s = family(s, "fa", helixBundle(4, 14, 5), half, seed, 0.7)
	s = family(s, "fb", betaBarrel(6, 8, 4), n-half, seed+77, 0.7)
	return &Dataset{Name: fmt.Sprintf("small%d", n), Structures: s[:n]}
}
