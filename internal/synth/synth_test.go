package synth

import (
	"testing"

	"rckalign/internal/ss"
)

func TestBlueprintTotalLen(t *testing.T) {
	bp := Blueprint{{ss.Helix, 10}, {ss.Coil, 5}, {ss.Strand, 7}}
	if bp.TotalLen() != 22 {
		t.Errorf("TotalLen = %d", bp.TotalLen())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	bp := helixBundle(4, 15, 5)
	a := Generate("x", bp, 42)
	b := Generate("x", bp, 42)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ between identical generations")
	}
	for i := range a.Residues {
		if a.Residues[i].CA != b.Residues[i].CA || a.Residues[i].AA != b.Residues[i].AA {
			t.Fatalf("residue %d differs between identical generations", i)
		}
	}
	// Different id or seed must give different geometry.
	c := Generate("y", bp, 42)
	d := Generate("x", bp, 43)
	if a.Residues[len(a.Residues)-1].CA == c.Residues[len(c.Residues)-1].CA {
		t.Error("different id produced identical geometry")
	}
	if a.Residues[len(a.Residues)-1].CA == d.Residues[len(d.Residues)-1].CA {
		t.Error("different seed produced identical geometry")
	}
}

func TestGenerateLengthMatchesBlueprint(t *testing.T) {
	bp := alphaBeta(4, 6, 12, 5)
	s := Generate("len", bp, 7)
	if s.Len() != bp.TotalLen() {
		t.Errorf("generated %d residues, blueprint says %d", s.Len(), bp.TotalLen())
	}
}

func TestGenerateChainConnectivity(t *testing.T) {
	// Consecutive CA atoms must stay at plausible distances (no breaks,
	// no overlaps): ideal CA-CA is ~3.8, helix rise is shorter locally.
	s := Generate("conn", helixBundle(5, 16, 6), 11)
	for i := 1; i < s.Len(); i++ {
		d := s.Residues[i].CA.Dist(s.Residues[i-1].CA)
		if d < 1.0 || d > 7.5 {
			t.Fatalf("CA-CA distance %v at %d out of range", d, i)
		}
	}
}

func TestGenerateSecondaryStructureRealized(t *testing.T) {
	s := Generate("ssr", helixBundle(4, 18, 6), 13)
	sec := ss.Assign(s.CAs())
	if f := ss.Fraction(sec, ss.Helix); f < 0.4 {
		t.Errorf("helix bundle has helix fraction %v, want > 0.4", f)
	}
	b := Generate("ssr2", betaBarrel(8, 9, 5), 13)
	secB := ss.Assign(b.CAs())
	if f := ss.Fraction(secB, ss.Strand); f < 0.25 {
		t.Errorf("beta barrel has strand fraction %v, want > 0.25", f)
	}
}

func TestGenerateCompact(t *testing.T) {
	// Radius of gyration should scale like a collapsed polymer, not an
	// extended rod: Rg well below L*3.8/2.
	s := Generate("cmp", helixBundle(6, 18, 6), 17)
	pts := s.CAs()
	var c = pts[0]
	for _, p := range pts[1:] {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pts)))
	var rg2 float64
	for _, p := range pts {
		rg2 += p.Dist2(c)
	}
	rg2 /= float64(len(pts))
	extended := float64(len(pts)) * 3.8 / 2
	if rg2 > extended*extended/4 {
		t.Errorf("structure not compact: Rg^2 = %v vs extended^2 = %v", rg2, extended*extended)
	}
}

func TestPerturbDeterministicAndDistinct(t *testing.T) {
	base := Generate("base", helixBundle(4, 15, 5), 3)
	a := Perturb(base, "m1", PerturbOptions{Noise: 1, Indels: 1, MutateFrac: 0.3}, 5)
	b := Perturb(base, "m1", PerturbOptions{Noise: 1, Indels: 1, MutateFrac: 0.3}, 5)
	if a.Len() != b.Len() {
		t.Fatal("perturbation not deterministic in length")
	}
	for i := range a.Residues {
		if a.Residues[i].CA != b.Residues[i].CA {
			t.Fatal("perturbation not deterministic in coordinates")
		}
	}
	c := Perturb(base, "m2", PerturbOptions{Noise: 1, Indels: 1, MutateFrac: 0.3}, 5)
	if a.Len() == c.Len() {
		same := true
		for i := range a.Residues {
			if a.Residues[i].CA != c.Residues[i].CA {
				same = false
				break
			}
		}
		if same {
			t.Error("different member ids produced identical structures")
		}
	}
}

func TestPerturbIndelsShorten(t *testing.T) {
	base := Generate("base", helixBundle(4, 15, 5), 3)
	m := Perturb(base, "del", PerturbOptions{Indels: 3}, 9)
	if m.Len() >= base.Len() {
		t.Errorf("indels did not shorten: %d >= %d", m.Len(), base.Len())
	}
	if m.Len() < base.Len()-15 {
		t.Errorf("indels removed too much: %d vs %d", m.Len(), base.Len())
	}
	// Residue numbering must stay 1..n.
	for i, r := range m.Residues {
		if r.Seq != i+1 {
			t.Fatalf("residue %d has Seq %d", i, r.Seq)
		}
	}
}

func TestCK34Shape(t *testing.T) {
	d := CK34()
	if d.Len() != 34 {
		t.Fatalf("CK34 has %d structures", d.Len())
	}
	if d.Pairs() != 561 {
		t.Errorf("CK34 pairs = %d, want 561", d.Pairs())
	}
	seen := map[string]bool{}
	for _, s := range d.Structures {
		if s.Len() < 50 || s.Len() > 300 {
			t.Errorf("%s length %d outside CK34 range", s.ID, s.Len())
		}
		if seen[s.ID] {
			t.Errorf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestRS119Shape(t *testing.T) {
	d := RS119()
	if d.Len() != 119 {
		t.Fatalf("RS119 has %d structures", d.Len())
	}
	if d.Pairs() != 7021 {
		t.Errorf("RS119 pairs = %d, want 7021", d.Pairs())
	}
	minL, maxL := 1<<30, 0
	for _, s := range d.Structures {
		if s.Len() < minL {
			minL = s.Len()
		}
		if s.Len() > maxL {
			maxL = s.Len()
		}
	}
	if minL < 30 || maxL > 600 {
		t.Errorf("RS119 lengths [%d, %d] outside plausible range", minL, maxL)
	}
	if maxL-minL < 100 {
		t.Errorf("RS119 length spread too narrow: [%d, %d]", minL, maxL)
	}
	// RS119 must be "bigger" than CK34 both in count and total residues.
	ck := CK34()
	if d.TotalResidues() <= ck.TotalResidues() {
		t.Error("RS119 should have more total residues than CK34")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := CK34(), CK34()
	for i := range a.Structures {
		if a.Structures[i].Len() != b.Structures[i].Len() {
			t.Fatal("CK34 not deterministic")
		}
		if a.Structures[i].Residues[0].CA != b.Structures[i].Residues[0].CA {
			t.Fatal("CK34 coordinates not deterministic")
		}
	}
}

func TestByName(t *testing.T) {
	if d, err := ByName("ck34"); err != nil || d.Name != "CK34" {
		t.Errorf("ByName(ck34) = %v, %v", d, err)
	}
	if d, err := ByName("RS119"); err != nil || d.Name != "RS119" {
		t.Errorf("ByName(RS119) = %v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestSmall(t *testing.T) {
	d := Small(6, 1)
	if d.Len() != 6 {
		t.Fatalf("Small(6) has %d structures", d.Len())
	}
	d2 := Small(6, 1)
	if d.Structures[0].Residues[3].CA != d2.Structures[0].Residues[3].CA {
		t.Error("Small not deterministic")
	}
}
