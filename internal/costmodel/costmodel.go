// Package costmodel converts instrumented operation counts from the PSC
// algorithms into execution time on a modelled CPU.
//
// This is how the reproduction replaces the paper's hardware: rckAlign jobs
// run the real TM-align code, but the *time* each job is charged on a
// simulated SCC core (Intel P54C @ 800 MHz) or on the AMD baseline host is
// computed from the work the algorithm actually performed (DP cells,
// superpositions, score evaluations, ...), scaled by per-operation cycle
// costs characteristic of each CPU. Job-to-job variance — which drives the
// paper's speedup shapes — therefore comes from the real algorithm.
package costmodel

import "fmt"

// Counter accumulates abstract operation counts. The zero value is ready
// to use. All methods are nil-safe so uninstrumented call paths can pass a
// nil *Counter at no cost.
type Counter struct {
	// DPCells counts dynamic-programming matrix cells evaluated.
	DPCells uint64
	// KabschCalls counts optimal-superposition solves.
	KabschCalls uint64
	// KabschPoints counts points accumulated across all superpositions.
	KabschPoints uint64
	// ScoreEvals counts per-residue distance/score evaluations.
	ScoreEvals uint64
	// RotationOps counts points mapped through a rigid transform.
	RotationOps uint64
	// SSAssign counts residues classified by secondary structure.
	SSAssign uint64
	// ResiduesLoaded counts residues parsed or deserialized.
	ResiduesLoaded uint64
}

// AddDP records n dynamic-programming cells.
func (c *Counter) AddDP(n int) {
	if c != nil {
		c.DPCells += uint64(n)
	}
}

// AddKabsch records one superposition over n points.
func (c *Counter) AddKabsch(n int) {
	if c != nil {
		c.KabschCalls++
		c.KabschPoints += uint64(n)
	}
}

// AddScore records n score evaluations.
func (c *Counter) AddScore(n int) {
	if c != nil {
		c.ScoreEvals += uint64(n)
	}
}

// AddRotate records n points transformed.
func (c *Counter) AddRotate(n int) {
	if c != nil {
		c.RotationOps += uint64(n)
	}
}

// AddSS records n residues classified.
func (c *Counter) AddSS(n int) {
	if c != nil {
		c.SSAssign += uint64(n)
	}
}

// AddLoad records n residues loaded.
func (c *Counter) AddLoad(n int) {
	if c != nil {
		c.ResiduesLoaded += uint64(n)
	}
}

// Add accumulates another counter into c.
func (c *Counter) Add(o Counter) {
	if c == nil {
		return
	}
	c.DPCells += o.DPCells
	c.KabschCalls += o.KabschCalls
	c.KabschPoints += o.KabschPoints
	c.ScoreEvals += o.ScoreEvals
	c.RotationOps += o.RotationOps
	c.SSAssign += o.SSAssign
	c.ResiduesLoaded += o.ResiduesLoaded
}

// String summarises the counter.
func (c Counter) String() string {
	return fmt.Sprintf("dp=%d kabsch=%d/%dpts score=%d rot=%d ss=%d load=%d",
		c.DPCells, c.KabschCalls, c.KabschPoints, c.ScoreEvals, c.RotationOps,
		c.SSAssign, c.ResiduesLoaded)
}

// Scaled returns a copy of c with every count multiplied by f (rounded
// down, minimum 0). Used to model intra-job parallel speedup: a job
// executed by t cooperating cores charges each core Scaled(1/(t*eff))
// of the work.
func (c Counter) Scaled(f float64) Counter {
	if f < 0 {
		f = 0
	}
	scale := func(v uint64) uint64 { return uint64(float64(v) * f) }
	return Counter{
		DPCells:        scale(c.DPCells),
		KabschCalls:    scale(c.KabschCalls),
		KabschPoints:   scale(c.KabschPoints),
		ScoreEvals:     scale(c.ScoreEvals),
		RotationOps:    scale(c.RotationOps),
		SSAssign:       scale(c.SSAssign),
		ResiduesLoaded: scale(c.ResiduesLoaded),
	}
}

// CPU models per-operation costs of one processor core.
type CPU struct {
	// Name identifies the profile in reports.
	Name string
	// FreqHz is the core clock.
	FreqHz float64
	// Per-operation cycle costs.
	CyclesPerDPCell      float64
	CyclesKabschFixed    float64 // per superposition solve (eigen problem)
	CyclesPerKabschPoint float64 // covariance accumulation per point
	CyclesPerScoreEval   float64
	CyclesPerRotation    float64
	CyclesPerSSResidue   float64
	CyclesPerLoadResidue float64
	// Scale is a final multiplier used to calibrate absolute totals
	// against the paper's measurements (compiler, memory system and other
	// unmodelled effects: the original is f2c-translated Fortran compiled
	// with gcc on in-order cores). 1.0 means "raw op model". The shipped
	// profiles are calibrated once against the paper's Table III CK34
	// row; see EXPERIMENTS.md.
	Scale float64
}

// Cycles converts an operation count into core cycles.
func (p CPU) Cycles(c Counter) float64 {
	cy := float64(c.DPCells)*p.CyclesPerDPCell +
		float64(c.KabschCalls)*p.CyclesKabschFixed +
		float64(c.KabschPoints)*p.CyclesPerKabschPoint +
		float64(c.ScoreEvals)*p.CyclesPerScoreEval +
		float64(c.RotationOps)*p.CyclesPerRotation +
		float64(c.SSAssign)*p.CyclesPerSSResidue +
		float64(c.ResiduesLoaded)*p.CyclesPerLoadResidue
	return cy * p.Scale
}

// Seconds converts an operation count into seconds on this CPU.
func (p CPU) Seconds(c Counter) float64 { return p.Cycles(c) / p.FreqHz }

// P54C returns the profile of one SCC core: an in-order, non-superscalar
// (for FP purposes) Intel P54C Pentium at 800 MHz with small caches.
// Per-op cycle costs reflect unpipelined double-precision arithmetic and
// frequent cache misses on DP matrices. Scale calibrates the CK34/RS119
// serial totals near the paper's Table III (see EXPERIMENTS.md).
func P54C() CPU {
	return CPU{
		Name:                 "Intel P54C Pentium 800 MHz",
		FreqHz:               800e6,
		CyclesPerDPCell:      52,
		CyclesKabschFixed:    9000,
		CyclesPerKabschPoint: 95,
		CyclesPerScoreEval:   46,
		CyclesPerRotation:    60,
		CyclesPerSSResidue:   220,
		CyclesPerLoadResidue: 400,
		Scale:                10.34,
	}
}

// AMD24 returns the profile of the AMD Athlon II X2 250 @ 2.4 GHz baseline
// host (one core; the paper's TM-align is serial). The per-cycle advantage
// (wider FP units, large caches) appears as lower per-op cycle costs; the
// gap grows with working-set size, which the paper's Table III shows as a
// 5.0x (CK34) vs 3.9x (RS119) end-to-end ratio — the Pentium's relative
// penalty is partly cache-resident for small proteins.
func AMD24() CPU {
	return CPU{
		Name:                 "AMD Athlon II X2 250 2.4 GHz",
		FreqHz:               2400e6,
		CyclesPerDPCell:      31,
		CyclesKabschFixed:    5200,
		CyclesPerKabschPoint: 55,
		CyclesPerScoreEval:   27,
		CyclesPerRotation:    35,
		CyclesPerSSResidue:   130,
		CyclesPerLoadResidue: 240,
		Scale:                10.57,
	}
}

// Slave-side structure-cache capacity model. An SCC core owns a private
// DRAM partition (the paper's boards carry 32 MB per core); a slave can
// dedicate part of it to keeping received structures resident so the
// master need not re-ship them with every pair.

// DefaultCacheBudgetBytes is the per-core memory a slave dedicates to
// cached structures by default: 8 MiB, a quarter of the 32 MB private
// DRAM partition, leaving the rest for the TM-align working set (DP
// matrices, alignments) and the runtime.
const DefaultCacheBudgetBytes = 8 << 20

// StructResidentBytes models the memory one cached structure occupies
// on a slave: the decoded CA coordinates (3 float64), per-residue
// metadata, and index bookkeeping.
func StructResidentBytes(residues int) int { return 64 + 32*residues }

// CacheCapacityStructs converts a byte budget into an LRU capacity in
// structures, sized by the dataset's mean chain length. The floor is 2:
// a pair's two structures must fit or caching is meaningless.
func CacheCapacityStructs(budgetBytes, meanResidues int) int {
	if meanResidues < 1 {
		meanResidues = 1
	}
	n := budgetBytes / StructResidentBytes(meanResidues)
	if n < 2 {
		n = 2
	}
	return n
}
