package costmodel

import (
	"strings"
	"testing"
)

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.AddDP(10)
	c.AddKabsch(5)
	c.AddScore(3)
	c.AddRotate(2)
	c.AddSS(1)
	c.AddLoad(9)
	c.Add(Counter{DPCells: 1})
	// Reaching here without panic is the assertion.
}

func TestCounterAccumulation(t *testing.T) {
	var c Counter
	c.AddDP(100)
	c.AddDP(50)
	c.AddKabsch(20)
	c.AddKabsch(30)
	c.AddScore(7)
	c.AddRotate(8)
	c.AddSS(9)
	c.AddLoad(10)
	if c.DPCells != 150 {
		t.Errorf("DPCells = %d", c.DPCells)
	}
	if c.KabschCalls != 2 || c.KabschPoints != 50 {
		t.Errorf("Kabsch = %d calls / %d pts", c.KabschCalls, c.KabschPoints)
	}
	if c.ScoreEvals != 7 || c.RotationOps != 8 || c.SSAssign != 9 || c.ResiduesLoaded != 10 {
		t.Errorf("other counts wrong: %+v", c)
	}
}

func TestCounterAdd(t *testing.T) {
	a := Counter{DPCells: 1, KabschCalls: 2, KabschPoints: 3, ScoreEvals: 4, RotationOps: 5, SSAssign: 6, ResiduesLoaded: 7}
	b := a
	a.Add(b)
	if a.DPCells != 2 || a.ResiduesLoaded != 14 || a.ScoreEvals != 8 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestCyclesLinear(t *testing.T) {
	cpu := P54C()
	c1 := Counter{DPCells: 1000}
	c2 := Counter{DPCells: 2000}
	if 2*cpu.Cycles(c1) != cpu.Cycles(c2) {
		t.Error("Cycles must be linear in counts")
	}
	if cpu.Cycles(Counter{}) != 0 {
		t.Error("empty counter must cost 0 cycles")
	}
}

func TestSecondsUsesFrequency(t *testing.T) {
	p := P54C()
	a := AMD24()
	c := Counter{DPCells: 1_000_000}
	sp := p.Seconds(c)
	sa := a.Seconds(c)
	if sp <= sa {
		t.Errorf("P54C (%v s) must be slower than AMD (%v s)", sp, sa)
	}
	// Ratio should be a few-fold, in the Table III ballpark (3.9-5.0x).
	ratio := sp / sa
	if ratio < 2 || ratio > 10 {
		t.Errorf("P54C/AMD ratio = %v, expected a few-fold", ratio)
	}
}

func TestProfilesSane(t *testing.T) {
	for _, cpu := range []CPU{P54C(), AMD24()} {
		if cpu.FreqHz <= 0 || cpu.Scale <= 0 {
			t.Errorf("%s: non-positive frequency or scale", cpu.Name)
		}
		if cpu.CyclesPerDPCell <= 0 {
			t.Errorf("%s: DP cells must cost cycles", cpu.Name)
		}
	}
	if P54C().Name == AMD24().Name {
		t.Error("profiles must be distinguishable")
	}
}

func TestCounterString(t *testing.T) {
	c := Counter{DPCells: 42}
	if !strings.Contains(c.String(), "dp=42") {
		t.Errorf("String = %q", c.String())
	}
}
