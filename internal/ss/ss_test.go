package ss

import (
	"math"
	"strings"
	"testing"

	"rckalign/internal/geom"
)

// idealHelix returns n CA positions of an ideal alpha helix
// (radius 2.3 A, rise 1.5 A, 100 degrees per residue).
func idealHelix(n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		a := float64(i) * 100 * math.Pi / 180
		pts[i] = geom.V(2.3*math.Cos(a), 2.3*math.Sin(a), 1.5*float64(i))
	}
	return pts
}

// idealStrand returns n CA positions of an extended beta strand
// (rise ~3.3 A with a small zigzag).
func idealStrand(n int) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		zig := 0.5
		if i%2 == 1 {
			zig = -0.5
		}
		pts[i] = geom.V(3.3*float64(i), zig, 0)
	}
	return pts
}

func TestHelixAssignment(t *testing.T) {
	sec := Assign(idealHelix(20))
	for i := 2; i < 18; i++ {
		if sec[i] != Helix {
			t.Errorf("helix residue %d classified as %v", i, sec[i])
		}
	}
	// Termini are coil by construction.
	if sec[0] != Coil || sec[1] != Coil || sec[18] != Coil || sec[19] != Coil {
		t.Error("terminal residues must be coil")
	}
}

func TestStrandAssignment(t *testing.T) {
	sec := Assign(idealStrand(12))
	for i := 2; i < 10; i++ {
		if sec[i] != Strand {
			t.Errorf("strand residue %d classified as %v", i, sec[i])
		}
	}
}

func TestTurnAssignment(t *testing.T) {
	// A tight turn: five residues within a small ball -> d15 < 8 but not
	// matching helix pattern.
	pts := []geom.Vec3{
		{0, 0, 0}, {2.5, 2.0, 0}, {4.2, 0.1, 1.0}, {2.2, -2.0, 1.8}, {0.2, -0.5, 2.5},
		{1.5, 1.8, 3.5}, {3.0, 0.2, 4.2},
	}
	sec := Assign(pts)
	turns := 0
	for i := 2; i < len(pts)-2; i++ {
		if sec[i] == Turn || sec[i] == Helix {
			turns++
		}
	}
	if turns == 0 {
		t.Errorf("compact conformation produced no turn/helix: %s", String(sec))
	}
}

func TestCoilForLongRange(t *testing.T) {
	// Widely spread points: d15 >> 8 and no pattern -> coil.
	pts := make([]geom.Vec3, 8)
	for i := range pts {
		pts[i] = geom.V(float64(i)*7, float64(i*i), 0)
	}
	sec := Assign(pts)
	for _, s := range sec {
		if s != Coil {
			t.Fatalf("expected all coil, got %s", String(sec))
		}
	}
}

func TestShortChains(t *testing.T) {
	for n := 0; n <= 4; n++ {
		sec := Assign(idealHelix(n))
		if len(sec) != n {
			t.Fatalf("length %d: got %d assignments", n, len(sec))
		}
		for _, s := range sec {
			if s != Coil {
				t.Fatalf("chains of length <= 4 must be all coil")
			}
		}
	}
}

func TestTypeChars(t *testing.T) {
	cases := map[Type]byte{Coil: 'C', Helix: 'H', Turn: 'T', Strand: 'E'}
	for ty, want := range cases {
		if ty.Char() != want {
			t.Errorf("%d.Char() = %c, want %c", ty, ty.Char(), want)
		}
	}
	if Helix.String() != "H" {
		t.Error("String of Helix")
	}
}

func TestStringAndFraction(t *testing.T) {
	sec := Assign(idealHelix(30))
	str := String(sec)
	if !strings.Contains(str, "HHHHHHHH") {
		t.Errorf("helix string missing run: %s", str)
	}
	fh := Fraction(sec, Helix)
	if fh < 0.8 {
		t.Errorf("helix fraction = %v, want > 0.8", fh)
	}
	if Fraction(nil, Helix) != 0 {
		t.Error("Fraction of empty should be 0")
	}
}
