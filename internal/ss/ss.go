// Package ss assigns secondary structure from a CA trace using TM-align's
// distance-pattern scheme (Zhang & Skolnick 2005): each residue is
// classified from the six CA-CA distances among positions i-2..i+2.
package ss

import (
	"rckalign/internal/geom"
)

// Type is a secondary structure class. The numeric values follow TM-align
// (1=coil, 2=helix, 3=turn, 4=strand) so that score tables match.
type Type byte

const (
	Coil   Type = 1
	Helix  Type = 2
	Turn   Type = 3
	Strand Type = 4
)

// Char returns the conventional one-letter code (C/H/T/E).
func (t Type) Char() byte {
	switch t {
	case Helix:
		return 'H'
	case Turn:
		return 'T'
	case Strand:
		return 'E'
	default:
		return 'C'
	}
}

// String implements fmt.Stringer.
func (t Type) String() string { return string(t.Char()) }

// classify applies TM-align's sec_str decision rule to the six pairwise
// distances among residues i-2, i-1, i, i+1, i+2.
func classify(d13, d14, d15, d24, d25, d35 float64) Type {
	const deltaHelix = 2.1
	if abs(d15-6.37) < deltaHelix && abs(d14-5.18) < deltaHelix &&
		abs(d25-5.18) < deltaHelix && abs(d13-5.45) < deltaHelix &&
		abs(d24-5.45) < deltaHelix && abs(d35-5.45) < deltaHelix {
		return Helix
	}
	const deltaStrand = 1.42
	if abs(d15-13) < deltaStrand && abs(d14-10.4) < deltaStrand &&
		abs(d25-10.4) < deltaStrand && abs(d13-6.1) < deltaStrand &&
		abs(d24-6.1) < deltaStrand && abs(d35-6.1) < deltaStrand {
		return Strand
	}
	if d15 < 8 {
		return Turn
	}
	return Coil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Assign classifies every residue of the CA trace. Residues closer than
// two positions to either terminus are coil (the distance pattern is
// undefined there), as in TM-align.
func Assign(ca []geom.Vec3) []Type {
	n := len(ca)
	sec := make([]Type, n)
	for i := range sec {
		sec[i] = Coil
	}
	for i := 2; i < n-2; i++ {
		d13 := ca[i-2].Dist(ca[i])
		d14 := ca[i-2].Dist(ca[i+1])
		d15 := ca[i-2].Dist(ca[i+2])
		d24 := ca[i-1].Dist(ca[i+1])
		d25 := ca[i-1].Dist(ca[i+2])
		d35 := ca[i].Dist(ca[i+2])
		sec[i] = classify(d13, d14, d15, d24, d25, d35)
	}
	return sec
}

// String renders an assignment as a C/H/T/E string.
func String(sec []Type) string {
	b := make([]byte, len(sec))
	for i, t := range sec {
		b[i] = t.Char()
	}
	return string(b)
}

// Fraction returns the fraction of residues with the given type.
func Fraction(sec []Type, t Type) float64 {
	if len(sec) == 0 {
		return 0
	}
	n := 0
	for _, s := range sec {
		if s == t {
			n++
		}
	}
	return float64(n) / float64(len(sec))
}
