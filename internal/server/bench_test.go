package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"rckalign/internal/batcher"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// BenchmarkServeCoalesce measures what coalescing buys the service: a
// burst of concurrent one-vs-all requests against the same target,
// served coalesced (default batching + memoized pair store: each pair
// computed exactly once per server lifetime) versus uncoalesced
// (batch size 1, memoization off: every request recomputes every
// pair). Each iteration uses a fresh server so the coalesced side
// cannot amortize across iterations; speedup_x reports the per-
// iteration ratio.
func BenchmarkServeCoalesce(b *testing.B) {
	const n, burst = 10, 8
	ds := synth.Small(n, 1)
	opt := tmalign.FastOptions()

	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(cfg)
			if err := s.Preload(ds.Structures); err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			for r := 0; r < burst; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					req := httptest.NewRequest("POST", "/onevsall?target="+ds.Structures[0].ID, nil)
					w := httptest.NewRecorder()
					s.Handler().ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						b.Errorf("onevsall = %d: %s", w.Code, w.Body.String())
					}
				}()
			}
			wg.Wait()
			s.Close()
		}
	}

	b.Run("coalesced", func(b *testing.B) {
		run(b, Config{Dataset: "bench", Options: opt})
	})
	b.Run("uncoalesced", func(b *testing.B) {
		run(b, Config{
			Dataset:     "bench",
			Options:     opt,
			DisableMemo: true,
			Batch:       batcher.Config{BatchSize: 1, Workers: 4},
		})
	})
}
