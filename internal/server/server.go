// Package server turns the batch all-to-all comparison engine into a
// long-lived protein-structure-comparison service (PSC-as-a-service,
// after the Protein Models Comparator): an HTTP/JSON API over a growing
// structure database, serving pairwise scores, one-vs-all sweeps and
// top-K neighbor queries to many concurrent clients.
//
// Request coalescing: every query expands into per-pair work items that
// flow through one internal/batcher instance (bounded queue, batch-size
// and max-wait flush triggers), and every pair evaluation runs through
// the single-flight memoized internal/pairstore keyed by
// (dataset, kernel, pair). Concurrent bursts of one-vs-all queries
// against the same target therefore compute each pair exactly once,
// and — because pairs are always compared in canonical index order
// (lower index first) — every served score is bit-identical to what
// the batch CLI (cmd/rckalign -scores-out) produces for the same
// structures in the same order under the same kernel options. See
// DESIGN.md §14.
//
// Endpoints:
//
//	POST /structures?id=NAME   upload one PDB file (body), parse CA trace
//	GET  /structures           list stored structures
//	GET  /score?a=ID&b=ID      one pairwise TM-align comparison
//	POST /onevsall?target=ID   target against every stored structure
//	GET  /topk?target=ID&k=N   the N nearest neighbors by TM-score
//	GET  /healthz              liveness
//	GET  /statsz               pairstore hit rate, batch-size histogram,
//	                           queue depth, per-endpoint p50/p95/p99
//
// /score and /onevsall accept format=text to emit the exact
// "-scores-out" line format (full float64 precision) for byte-for-byte
// comparison against batch dumps.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/pdb"
	"rckalign/internal/tmalign"
)

// maxUploadBytes bounds a structure upload body (a CA-only PDB chain is
// well under 100 KB; 16 MB admits full multi-model files).
const maxUploadBytes = 16 << 20

// Config tunes a Server.
type Config struct {
	// Dataset names the pairstore key namespace (default "serve"). Use
	// the batch dataset's name when preloading it so a shared store's
	// entries line up.
	Dataset string
	// Options is the TM-align kernel configuration; its Key() is the
	// kernel component of every pairstore key.
	Options tmalign.Options
	// Batch tunes the request coalescer (see batcher.Config defaults).
	// Config.Batch.OnFlush is reserved for the server's own batch-size
	// histogram and must be nil.
	Batch batcher.Config
	// Store memoizes pair results; nil creates a private store sized to
	// GOMAXPROCS. Every evaluation flows through it, which is what makes
	// concurrent duplicate queries compute each pair exactly once.
	Store *pairstore.Store
	// DisableMemo bypasses the pair store entirely, recomputing every
	// evaluation inline. It forfeits the exactly-once guarantee and
	// exists only as the uncoalesced baseline for benchmarks.
	DisableMemo bool
}

// pairJob is one canonical pair evaluation: a is the structure with the
// lower database index, so Compare's argument order — and therefore the
// exact result bits — match a batch run over the same structures.
type pairJob struct {
	i, j int
	a, b *pdb.Structure
}

// Server is the comparison service. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	dataset string
	opt     tmalign.Options
	kernel  string
	db      *DB
	store   *pairstore.Store
	bat     *batcher.Batcher[pairJob, *tmalign.Result]
	mux     *http.ServeMux
	start   time.Time

	// The metrics registry is not internally synchronized (it was built
	// for the single-goroutine simulator), so every access goes through
	// metricsMu.
	metricsMu sync.Mutex
	reg       *metrics.Registry
}

// endpoints instrumented with latency histograms, in /statsz order.
var observedEndpoints = []string{"onevsall", "score", "structures", "topk"}

// New builds and starts a server (its batcher goroutines run until
// Close).
func New(cfg Config) *Server {
	if cfg.Dataset == "" {
		cfg.Dataset = "serve"
	}
	s := &Server{
		dataset: cfg.Dataset,
		opt:     cfg.Options,
		kernel:  cfg.Options.Key(),
		db:      NewDB(),
		store:   cfg.Store,
		reg:     metrics.New(),
		start:   time.Now(),
	}
	if s.store == nil && !cfg.DisableMemo {
		s.store = pairstore.New(0)
	}
	bcfg := cfg.Batch
	bcfg.OnFlush = func(size int, trigger batcher.Trigger) {
		s.metricsMu.Lock()
		s.reg.Histogram("server.batch.size", metrics.CountBuckets).Observe(float64(size))
		s.reg.Counter("server.batch.flushes", "trigger", trigger.String()).Inc()
		s.metricsMu.Unlock()
	}
	// The run function is infallible: per-pair panics would mean a bug in
	// the kernel, and errors surface per item via batcher.Result.Err.
	bat, err := batcher.New(bcfg, s.runBatch)
	if err != nil {
		panic(err) // unreachable: runBatch is non-nil
	}
	s.bat = bat

	mux := http.NewServeMux()
	mux.HandleFunc("POST /structures", s.observe("structures", s.handleUpload))
	mux.HandleFunc("GET /structures", s.handleList)
	mux.HandleFunc("GET /score", s.observe("score", s.handleScore))
	mux.HandleFunc("POST /onevsall", s.observe("onevsall", s.handleOneVsAll))
	mux.HandleFunc("GET /topk", s.observe("topk", s.handleTopK))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// DB exposes the structure database (tests and preloading).
func (s *Server) DB() *DB { return s.db }

// Store exposes the pair store (nil when memoization is disabled).
func (s *Server) Store() *pairstore.Store { return s.store }

// Batcher exposes the request coalescer's statistics.
func (s *Server) BatcherStats() batcher.Stats { return s.bat.Stats() }

// Close drains the coalescer: queued and assembling batches execute,
// their responses are delivered, then Close returns. In-flight HTTP
// handlers should be drained first (http.Server.Shutdown), and new
// queries after Close receive 503.
func (s *Server) Close() { s.bat.Close() }

// Preload parses nothing — it adds already-parsed structures in order,
// for wiring a built-in dataset at startup.
func (s *Server) Preload(structs []*pdb.Structure) error {
	for _, st := range structs {
		if _, err := s.db.Add(st); err != nil {
			return err
		}
	}
	return nil
}

// runBatch evaluates one flushed batch. Each pair goes through the
// memoized store (single-flight, exactly-once); with memoization
// disabled it computes inline — a nil *pairstore.Store degrades to
// exactly that.
func (s *Server) runBatch(jobs []pairJob) ([]*tmalign.Result, error) {
	out := make([]*tmalign.Result, len(jobs))
	for k, j := range jobs {
		out[k] = s.store.Get(s.keyFor(j), func() any {
			return tmalign.Compare(j.a, j.b, s.opt)
		}).(*tmalign.Result)
	}
	return out, nil
}

func (s *Server) keyFor(j pairJob) pairstore.Key {
	return pairstore.Key{Dataset: s.dataset, Kernel: s.kernel, A: j.a.ID, B: j.b.ID}
}

// canonicalJob orients a pair by database index: lower index first.
func canonicalJob(i int, a *pdb.Structure, j int, b *pdb.Structure) pairJob {
	if i < j {
		return pairJob{i: i, j: j, a: a, b: b}
	}
	return pairJob{i: j, j: i, a: b, b: a}
}

// ScoreLine formats one pair result exactly as cmd/rckalign -scores-out
// does: indices then TM1 TM2 RMSD AlignedLen SeqID at full float64
// round-trip precision, newline-terminated.
func ScoreLine(i, j int, r *tmalign.Result) string {
	return fmt.Sprintf("%d %d %.17g %.17g %.17g %d %.17g\n",
		i, j, r.TM1, r.TM2, r.RMSD, r.AlignedLen, r.SeqID)
}

// observe wraps a handler with a per-endpoint latency histogram and
// request counter.
func (s *Server) observe(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		fn(w, r)
		sec := time.Since(t0).Seconds()
		s.metricsMu.Lock()
		s.reg.Histogram("server.latency_seconds", metrics.TimeBuckets, "endpoint", endpoint).Observe(sec)
		s.reg.Counter("server.requests", "endpoint", endpoint).Inc()
		s.metricsMu.Unlock()
	}
}

// fail writes a one-line error and counts it. Error taxonomy: typed
// lookup errors map to 404/409, batcher shutdown to 503, everything
// explicitly passed stays at the given code.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.metricsMu.Lock()
	s.reg.Counter("server.errors", "code", strconv.Itoa(code)).Inc()
	s.metricsMu.Unlock()
	http.Error(w, err.Error(), code)
}

// failErr maps an error to its HTTP status by type.
func (s *Server) failErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownStructure):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, ErrDuplicateStructure):
		s.fail(w, http.StatusConflict, err)
	case errors.Is(err, batcher.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, errors.New("server is draining"))
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// UploadResponse acknowledges a stored structure.
type UploadResponse struct {
	ID       string `json:"id"`
	Index    int    `json:"index"`
	Residues int    `json:"residues"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxUploadBytes {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("upload exceeds %d bytes", maxUploadBytes))
		return
	}
	st, err := pdb.Parse(bytes.NewReader(body), id)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	idx, err := s.db.Add(st)
	if err != nil {
		s.failErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, UploadResponse{ID: st.ID, Index: idx, Residues: st.Len()})
}

// StructureInfo describes one stored structure in listings.
type StructureInfo struct {
	ID       string `json:"id"`
	Index    int    `json:"index"`
	Residues int    `json:"residues"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	structs := s.db.Snapshot()
	infos := make([]StructureInfo, len(structs))
	for i, st := range structs {
		infos[i] = StructureInfo{ID: st.ID, Index: i, Residues: st.Len()}
	}
	writeJSON(w, http.StatusOK, struct {
		Count      int             `json:"count"`
		Structures []StructureInfo `json:"structures"`
	}{len(infos), infos})
}

// ScoreRow is one pair's scores in canonical orientation: I < J are
// database indices, TM1 is normalised by structure I's length, TM2 by
// J's.
type ScoreRow struct {
	I          int     `json:"i"`
	J          int     `json:"j"`
	A          string  `json:"a"`
	B          string  `json:"b"`
	TM1        float64 `json:"tm1"`
	TM2        float64 `json:"tm2"`
	RMSD       float64 `json:"rmsd"`
	AlignedLen int     `json:"aligned_len"`
	SeqID      float64 `json:"seq_id"`
}

func rowOf(j pairJob, r *tmalign.Result) ScoreRow {
	return ScoreRow{
		I: j.i, J: j.j, A: j.a.ID, B: j.b.ID,
		TM1: r.TM1, TM2: r.TM2, RMSD: r.RMSD,
		AlignedLen: r.AlignedLen, SeqID: r.SeqID,
	}
}

// TimingBreakdown is a batcher timing in seconds, as served to clients.
type TimingBreakdown struct {
	QueueWaitS float64 `json:"queue_wait_s"`
	AssemblyS  float64 `json:"assembly_s"`
	ComputeS   float64 `json:"compute_s"`
	TotalS     float64 `json:"total_s"`
}

func timingOf(t batcher.Timing) TimingBreakdown {
	return TimingBreakdown{
		QueueWaitS: t.QueueWait.Seconds(),
		AssemblyS:  t.Assembly.Seconds(),
		ComputeS:   t.Compute.Seconds(),
		TotalS:     t.Total.Seconds(),
	}
}

// ScoreResponse is the /score reply.
type ScoreResponse struct {
	ScoreRow
	BatchSize int             `json:"batch_size"`
	Trigger   string          `json:"trigger"`
	Timing    TimingBreakdown `json:"timing"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	aID, bID := q.Get("a"), q.Get("b")
	if aID == "" || bID == "" {
		s.fail(w, http.StatusBadRequest, errors.New("need a= and b= structure ids"))
		return
	}
	ai, a, err := s.db.Lookup(aID)
	if err != nil {
		s.failErr(w, err)
		return
	}
	bi, b, err := s.db.Lookup(bID)
	if err != nil {
		s.failErr(w, err)
		return
	}
	if ai == bi {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("a and b are both structure %q", aID))
		return
	}
	job := canonicalJob(ai, a, bi, b)
	res, err := s.bat.Submit(job)
	if err != nil {
		s.failErr(w, err)
		return
	}
	if res.Err != nil {
		s.failErr(w, res.Err)
		return
	}
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, ScoreLine(job.i, job.j, res.Value))
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		ScoreRow:  rowOf(job, res.Value),
		BatchSize: res.BatchSize,
		Trigger:   res.Trigger.String(),
		Timing:    timingOf(res.Timing),
	})
}

// oneVsAll resolves the target, expands it against every other stored
// structure (snapshot at request time), and runs the pairs through the
// coalescer. Rows come back sorted by canonical pair.
func (s *Server) oneVsAll(targetID string) (int, []pairJob, []batcher.Result[*tmalign.Result], error) {
	ti, _, err := s.db.Lookup(targetID)
	if err != nil {
		return 0, nil, nil, err
	}
	structs := s.db.Snapshot()
	jobs := make([]pairJob, 0, len(structs)-1)
	for o, st := range structs {
		if o == ti {
			continue
		}
		jobs = append(jobs, canonicalJob(ti, structs[ti], o, st))
	}
	results, err := s.bat.SubmitAll(jobs)
	if err != nil {
		return 0, nil, nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return 0, nil, nil, r.Err
		}
	}
	return ti, jobs, results, nil
}

// OneVsAllResponse is the /onevsall reply.
type OneVsAllResponse struct {
	Target string     `json:"target"`
	Index  int        `json:"index"`
	Count  int        `json:"count"`
	Rows   []ScoreRow `json:"rows"`
	// MaxTiming is the slowest item's breakdown — the request's critical
	// path through the coalescer.
	MaxTiming TimingBreakdown `json:"max_timing"`
}

func (s *Server) handleOneVsAll(w http.ResponseWriter, r *http.Request) {
	targetID := r.URL.Query().Get("target")
	if targetID == "" {
		s.fail(w, http.StatusBadRequest, errors.New("need target= structure id"))
		return
	}
	ti, jobs, results, err := s.oneVsAll(targetID)
	if err != nil {
		s.failErr(w, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for k, job := range jobs {
			io.WriteString(w, ScoreLine(job.i, job.j, results[k].Value))
		}
		return
	}
	resp := OneVsAllResponse{Target: targetID, Index: ti, Count: len(jobs), Rows: make([]ScoreRow, len(jobs))}
	var maxT batcher.Timing
	for k, job := range jobs {
		resp.Rows[k] = rowOf(job, results[k].Value)
		if results[k].Timing.Total > maxT.Total {
			maxT = results[k].Timing
		}
	}
	resp.MaxTiming = timingOf(maxT)
	writeJSON(w, http.StatusOK, resp)
}

// Neighbor is one /topk hit: TM is the score normalised by the target
// chain's length (the retrieval convention).
type Neighbor struct {
	ID         string  `json:"id"`
	Index      int     `json:"index"`
	TM         float64 `json:"tm"`
	TM1        float64 `json:"tm1"`
	TM2        float64 `json:"tm2"`
	RMSD       float64 `json:"rmsd"`
	AlignedLen int     `json:"aligned_len"`
	SeqID      float64 `json:"seq_id"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	targetID := q.Get("target")
	if targetID == "" {
		s.fail(w, http.StatusBadRequest, errors.New("need target= structure id"))
		return
	}
	k := 5
	if ks := q.Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("k=%q is not a positive integer", ks))
			return
		}
	}
	ti, jobs, results, err := s.oneVsAll(targetID)
	if err != nil {
		s.failErr(w, err)
		return
	}
	neighbors := make([]Neighbor, len(jobs))
	for i, job := range jobs {
		res := results[i].Value
		// TM1 is normalised by the canonical-first chain's length. Report
		// the score normalised by the *target* length (the retrieval
		// convention), so pick TM1 when the target is canonical-first.
		tm, other, otherIdx := res.TM2, job.a, job.i
		if job.i == ti {
			tm, other, otherIdx = res.TM1, job.b, job.j
		}
		neighbors[i] = Neighbor{
			ID: other.ID, Index: otherIdx, TM: tm,
			TM1: res.TM1, TM2: res.TM2, RMSD: res.RMSD,
			AlignedLen: res.AlignedLen, SeqID: res.SeqID,
		}
	}
	sort.SliceStable(neighbors, func(x, y int) bool {
		if neighbors[x].TM != neighbors[y].TM {
			return neighbors[x].TM > neighbors[y].TM
		}
		return neighbors[x].Index < neighbors[y].Index
	})
	if k > len(neighbors) {
		k = len(neighbors)
	}
	writeJSON(w, http.StatusOK, struct {
		Target    string     `json:"target"`
		Index     int        `json:"index"`
		K         int        `json:"k"`
		Neighbors []Neighbor `json:"neighbors"`
	}{targetID, ti, k, neighbors[:k]})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status     string  `json:"status"`
		Structures int     `json:"structures"`
		UptimeS    float64 `json:"uptime_s"`
	}{"ok", s.db.Len(), time.Since(s.start).Seconds()})
}

// BatcherStatsz mirrors batcher.Stats with stable JSON keys.
type BatcherStatsz struct {
	Enqueued     int64 `json:"enqueued"`
	Completed    int64 `json:"completed"`
	QueueDepth   int64 `json:"queue_depth"`
	Batches      int64 `json:"batches"`
	SizeFlushes  int64 `json:"size_flushes"`
	TimerFlushes int64 `json:"timer_flushes"`
	CloseFlushes int64 `json:"close_flushes"`
	MaxBatch     int   `json:"max_batch"`
}

// HistogramStatsz is a histogram rendered for /statsz.
type HistogramStatsz struct {
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	Mean    float64   `json:"mean"`
	Max     float64   `json:"max"`
}

// LatencyStatsz is one endpoint's latency summary.
type LatencyStatsz struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	P50S     float64 `json:"p50_s"`
	P95S     float64 `json:"p95_s"`
	P99S     float64 `json:"p99_s"`
	MaxS     float64 `json:"max_s"`
}

// Statsz is the /statsz payload.
type Statsz struct {
	UptimeS    float64                 `json:"uptime_s"`
	Structures int                     `json:"structures"`
	Pairstore  pairstore.StatsSnapshot `json:"pairstore"`
	Batcher    BatcherStatsz           `json:"batcher"`
	BatchSizes HistogramStatsz         `json:"batch_sizes"`
	Latency    []LatencyStatsz         `json:"latency"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	bs := s.bat.Stats()
	st := Statsz{
		UptimeS:    time.Since(s.start).Seconds(),
		Structures: s.db.Len(),
		Pairstore:  s.store.StatsSnapshot(),
		Batcher: BatcherStatsz{
			Enqueued: bs.Enqueued, Completed: bs.Completed, QueueDepth: bs.Pending,
			Batches: bs.Batches, SizeFlushes: bs.SizeFlushes,
			TimerFlushes: bs.TimerFlushes, CloseFlushes: bs.CloseFlushes,
			MaxBatch: bs.MaxBatch,
		},
	}
	s.metricsMu.Lock()
	s.reg.Gauge("server.queue.depth").Set(float64(bs.Pending))
	bh := s.reg.Histogram("server.batch.size", metrics.CountBuckets)
	snap := s.reg.Snapshot()
	st.BatchSizes = HistogramStatsz{
		Count: bh.Count(), Mean: bh.Mean(), Max: bh.MaxValue(),
	}
	for _, hs := range snap.Histograms {
		if hs.Key == "server.batch.size" {
			st.BatchSizes.Buckets = hs.Buckets
			st.BatchSizes.Counts = hs.Counts
		}
	}
	for _, ep := range observedEndpoints {
		lh := s.reg.Histogram("server.latency_seconds", metrics.TimeBuckets, "endpoint", ep)
		if lh.Count() == 0 {
			continue
		}
		st.Latency = append(st.Latency, LatencyStatsz{
			Endpoint: ep, Count: lh.Count(),
			P50S: lh.Quantile(0.50), P95S: lh.Quantile(0.95), P99S: lh.Quantile(0.99),
			MaxS: lh.MaxValue(),
		})
	}
	s.metricsMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
