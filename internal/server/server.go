// Package server turns the batch all-to-all comparison engine into a
// long-lived protein-structure-comparison service (PSC-as-a-service,
// after the Protein Models Comparator): an HTTP/JSON API over a growing
// structure database, serving pairwise scores, one-vs-all sweeps and
// top-K neighbor queries to many concurrent clients.
//
// Request coalescing: every query expands into per-pair work items that
// flow through one internal/batcher instance (bounded queue, batch-size
// and max-wait flush triggers), and every pair evaluation runs through
// the single-flight memoized internal/pairstore keyed by
// (dataset, kernel, pair). Concurrent bursts of one-vs-all queries
// against the same target therefore compute each pair exactly once,
// and — because pairs are always compared in canonical index order
// (lower index first) — every served score is bit-identical to what
// the batch CLI (cmd/rckalign -scores-out) produces for the same
// structures in the same order under the same kernel options. See
// DESIGN.md §14.
//
// Endpoints:
//
//	POST /structures?id=NAME   upload one PDB file (body), parse CA trace
//	GET  /structures           list stored structures
//	GET  /score?a=ID&b=ID      one pairwise TM-align comparison
//	POST /onevsall?target=ID   target against every stored structure
//	GET  /topk?target=ID&k=N   the N nearest neighbors by TM-score
//	GET  /healthz              liveness
//	GET  /statsz               pairstore hit rate, batch-size histogram,
//	                           queue depth, per-endpoint p50/p95/p99
//
// /score and /onevsall accept format=text to emit the exact
// "-scores-out" line format (full float64 precision) for byte-for-byte
// comparison against batch dumps.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/pdb"
	"rckalign/internal/prune"
	"rckalign/internal/tmalign"
)

// maxUploadBytes bounds a structure upload body (a CA-only PDB chain is
// well under 100 KB; 16 MB admits full multi-model files).
const maxUploadBytes = 16 << 20

// Config tunes a Server.
type Config struct {
	// Dataset names the pairstore key namespace (default "serve"). Use
	// the batch dataset's name when preloading it so a shared store's
	// entries line up.
	Dataset string
	// Options is the TM-align kernel configuration; its Key() is the
	// kernel component of every pairstore key.
	Options tmalign.Options
	// Batch tunes the request coalescer (see batcher.Config defaults).
	// Config.Batch.OnFlush is reserved for the server's own batch-size
	// histogram and must be nil.
	Batch batcher.Config
	// Store memoizes pair results; nil creates a private store sized to
	// GOMAXPROCS. Every evaluation flows through it, which is what makes
	// concurrent duplicate queries compute each pair exactly once.
	Store *pairstore.Store
	// DisableMemo bypasses the pair store entirely, recomputing every
	// evaluation inline. It forfeits the exactly-once guarantee and
	// exists only as the uncoalesced baseline for benchmarks.
	DisableMemo bool
	// AccessLog, when non-nil, receives one JSON line per completed
	// request: request ID, endpoint, status, latency, the coalescer
	// timing breakdown, batch size/trigger and memo hit/miss counts.
	// Writes are serialized by the server.
	AccessLog io.Writer
	// PruneTM, when positive, pre-filters /onevsall and /topk sweeps
	// with the internal/prune similarity bound: pairs whose conservative
	// TM upper bound falls below the threshold are never submitted to
	// the coalescer and are absent from the response rows (their pruned
	// count is reported instead). Explicit /score requests are never
	// pruned — a directly asked-for pair always gets the exact kernel
	// answer.
	PruneTM float64
}

// pairJob is one canonical pair evaluation: a is the structure with the
// lower database index, so Compare's argument order — and therefore the
// exact result bits — match a batch run over the same structures. req
// is the ID of the HTTP request that submitted the pair; it rides
// through the batcher so a flushed batch knows which requests it
// coalesced (it never enters the pairstore key — memoization stays
// request-independent).
type pairJob struct {
	i, j int
	a, b *pdb.Structure
	req  string
}

// pairOut is one evaluated pair plus its memoization outcome, the unit
// the batcher returns so responses and the access log can report memo
// hit/miss per request. Exactly one of res and err is set: a kernel
// rejection (degenerate input) is a value too, memoized like any
// result so a bad pair is diagnosed once, not recomputed per request.
type pairOut struct {
	res *tmalign.Result
	err error
	hit bool
}

// Server is the comparison service. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	dataset string
	opt     tmalign.Options
	kernel  string
	db      *DB
	store   *pairstore.Store
	bat     *batcher.Batcher[pairJob, pairOut]
	mux     *http.ServeMux
	start   time.Time
	seq     atomic.Int64 // request-ID sequence for requests without one

	// The metrics registry is not internally synchronized (it was built
	// for the single-goroutine simulator), so every access goes through
	// metricsMu.
	metricsMu sync.Mutex
	reg       *metrics.Registry

	// accessMu serializes access-log lines (accessLog is nil when
	// logging is off).
	accessMu  sync.Mutex
	accessLog io.Writer

	// pruneMu guards the pre-filter state: the prune.Filter owns DP
	// scratch (not safe for concurrent use) and the features cache is a
	// plain map. Both are nil when pruning is off.
	pruneMu    sync.Mutex
	pruneF     *prune.Filter
	pruneFeats map[*pdb.Structure]*prune.Features
}

// endpoints instrumented with latency histograms, in /statsz order.
var observedEndpoints = []string{"healthz", "list", "onevsall", "score", "statsz", "structures", "topk"}

// New builds and starts a server (its batcher goroutines run until
// Close).
func New(cfg Config) *Server {
	if cfg.Dataset == "" {
		cfg.Dataset = "serve"
	}
	s := &Server{
		dataset:   cfg.Dataset,
		opt:       cfg.Options,
		kernel:    cfg.Options.Key(),
		db:        NewDB(),
		store:     cfg.Store,
		reg:       metrics.New(),
		start:     time.Now(),
		accessLog: cfg.AccessLog,
	}
	if s.store == nil && !cfg.DisableMemo {
		s.store = pairstore.New(0)
	}
	if cfg.PruneTM > 0 {
		s.pruneF = prune.New(cfg.PruneTM)
		s.pruneFeats = map[*pdb.Structure]*prune.Features{}
	}
	bcfg := cfg.Batch
	bcfg.OnFlush = func(size int, trigger batcher.Trigger) {
		s.metricsMu.Lock()
		s.reg.Histogram("server.batch.size", metrics.CountBuckets).Observe(float64(size))
		s.reg.Counter("server.batch.flushes", "trigger", trigger.String()).Inc()
		s.metricsMu.Unlock()
	}
	// The run function never fails as a batch: kernel rejections are
	// carried per pair in pairOut.err (served as 422), and a panic that
	// escapes TryCompare is a genuine kernel bug that should crash.
	bat, err := batcher.New(bcfg, s.runBatch)
	if err != nil {
		panic(err) // unreachable: runBatch is non-nil
	}
	s.bat = bat

	mux := http.NewServeMux()
	mux.HandleFunc("POST /structures", s.observe("structures", s.handleUpload))
	mux.HandleFunc("GET /structures", s.observe("list", s.handleList))
	mux.HandleFunc("GET /score", s.observe("score", s.handleScore))
	mux.HandleFunc("POST /onevsall", s.observe("onevsall", s.handleOneVsAll))
	mux.HandleFunc("GET /topk", s.observe("topk", s.handleTopK))
	mux.HandleFunc("GET /healthz", s.observe("healthz", s.handleHealthz))
	mux.HandleFunc("GET /statsz", s.observe("statsz", s.handleStatsz))
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// DB exposes the structure database (tests and preloading).
func (s *Server) DB() *DB { return s.db }

// Store exposes the pair store (nil when memoization is disabled).
func (s *Server) Store() *pairstore.Store { return s.store }

// Batcher exposes the request coalescer's statistics.
func (s *Server) BatcherStats() batcher.Stats { return s.bat.Stats() }

// Close drains the coalescer: queued and assembling batches execute,
// their responses are delivered, then Close returns. In-flight HTTP
// handlers should be drained first (http.Server.Shutdown), and new
// queries after Close receive 503.
func (s *Server) Close() { s.bat.Close() }

// Preload parses nothing — it adds already-parsed structures in order,
// for wiring a built-in dataset at startup.
func (s *Server) Preload(structs []*pdb.Structure) error {
	for _, st := range structs {
		if _, err := s.db.Add(st); err != nil {
			return err
		}
	}
	return nil
}

// runBatch evaluates one flushed batch. Each pair goes through the
// memoized store (single-flight, exactly-once); with memoization
// disabled it computes inline — a nil *pairstore.Store degrades to
// exactly that. Per pair it reports the memo outcome, and per batch it
// records how many distinct requests were coalesced into it (the
// request IDs propagated through the batcher ride on each job).
func (s *Server) runBatch(jobs []pairJob) ([]pairOut, error) {
	out := make([]pairOut, len(jobs))
	reqs := map[string]struct{}{}
	for k, j := range jobs {
		v, hit := s.store.GetHit(s.keyFor(j), func() any {
			r, err := tmalign.TryCompare(j.a, j.b, s.opt)
			if err != nil {
				return err
			}
			return r
		})
		switch t := v.(type) {
		case *tmalign.Result:
			out[k] = pairOut{res: t, hit: hit}
		case error:
			out[k] = pairOut{err: t, hit: hit}
		}
		reqs[j.req] = struct{}{}
	}
	s.metricsMu.Lock()
	s.reg.Histogram("server.batch.requests", metrics.CountBuckets).Observe(float64(len(reqs)))
	s.metricsMu.Unlock()
	return out, nil
}

func (s *Server) keyFor(j pairJob) pairstore.Key {
	return pairstore.Key{Dataset: s.dataset, Kernel: s.kernel, A: j.a.ID, B: j.b.ID}
}

// canonicalJob orients a pair by database index: lower index first. req
// is the submitting request's ID.
func canonicalJob(req string, i int, a *pdb.Structure, j int, b *pdb.Structure) pairJob {
	if i < j {
		return pairJob{i: i, j: j, a: a, b: b, req: req}
	}
	return pairJob{i: j, j: i, a: b, b: a, req: req}
}

// ScoreLine formats one pair result exactly as cmd/rckalign -scores-out
// does: indices then TM1 TM2 RMSD AlignedLen SeqID at full float64
// round-trip precision, newline-terminated.
func ScoreLine(i, j int, r *tmalign.Result) string {
	return fmt.Sprintf("%d %d %.17g %.17g %.17g %d %.17g\n",
		i, j, r.TM1, r.TM2, r.RMSD, r.AlignedLen, r.SeqID)
}

// reqInfo is the per-request trace record: assigned in observe, carried
// through the handler via the request context, filled in as the request
// flows through the coalescer, and finally emitted as one access-log
// line. Handlers mutate it from the single handler goroutine only.
type reqInfo struct {
	id       string
	endpoint string
	t0       time.Time
	status   int
	timing   TimingBreakdown
	batch    int
	trigger  string
	memoHit  int
	memoMiss int
	errMsg   string
}

type reqInfoKey struct{}

// infoFrom returns the request's trace record; handlers are always
// invoked under observe, so a missing record is a throwaway (it keeps
// direct handler invocations in tests from panicking).
func infoFrom(r *http.Request) *reqInfo {
	if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return info
	}
	return &reqInfo{t0: time.Now()}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	info *reqInfo
}

func (w *statusWriter) WriteHeader(code int) {
	w.info.status = code
	w.ResponseWriter.WriteHeader(code)
}

// AccessEntry is one access-log line: the end-to-end record of a
// request, written as JSON. TOffsetS is the arrival time as an offset
// from server start, on the same clock as ScoreResponse.EnqueueOffsetS,
// so log lines and trace spans line up.
type AccessEntry struct {
	TOffsetS  float64         `json:"t_offset_s"`
	ReqID     string          `json:"req_id"`
	Endpoint  string          `json:"endpoint"`
	Status    int             `json:"status"`
	LatencyS  float64         `json:"latency_s"`
	Timing    TimingBreakdown `json:"timing"`
	BatchSize int             `json:"batch_size"`
	Trigger   string          `json:"trigger,omitempty"`
	MemoHits  int             `json:"memo_hits"`
	MemoMiss  int             `json:"memo_misses"`
	Error     string          `json:"error,omitempty"`
}

// observe wraps every handler with the request-tracing layer: it
// assigns (or adopts, from an X-Request-ID header) the request ID,
// echoes it as a response header, threads a trace record through the
// handler, records the per-endpoint latency histogram, and emits one
// access-log line when configured.
func (s *Server) observe(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		info := &reqInfo{
			id:       r.Header.Get("X-Request-ID"),
			endpoint: endpoint,
			t0:       time.Now(),
			status:   http.StatusOK,
		}
		if info.id == "" {
			info.id = fmt.Sprintf("r%08d", s.seq.Add(1))
		}
		w.Header().Set("X-Request-ID", info.id)
		sw := &statusWriter{ResponseWriter: w, info: info}
		fn(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info)))
		sec := time.Since(info.t0).Seconds()
		if info.timing.TotalS == 0 {
			// No coalescer trip (errors, non-query endpoints): the handler
			// time is the whole story.
			info.timing.TotalS = sec
		}
		s.metricsMu.Lock()
		s.reg.Histogram("server.latency_seconds", metrics.TimeBuckets, "endpoint", endpoint).Observe(sec)
		s.reg.Counter("server.requests", "endpoint", endpoint).Inc()
		s.metricsMu.Unlock()
		if s.accessLog != nil {
			line, err := json.Marshal(AccessEntry{
				TOffsetS: info.t0.Sub(s.start).Seconds(), ReqID: info.id,
				Endpoint: endpoint, Status: info.status, LatencyS: sec,
				Timing: info.timing, BatchSize: info.batch, Trigger: info.trigger,
				MemoHits: info.memoHit, MemoMiss: info.memoMiss, Error: info.errMsg,
			})
			if err == nil {
				s.accessMu.Lock()
				s.accessLog.Write(append(line, '\n'))
				s.accessMu.Unlock()
			}
		}
	}
}

// ErrorResponse is the JSON body of every error reply. Timing is
// populated on all paths — for requests rejected before reaching the
// coalescer (404/409/400) it carries the handler time in TotalS — so
// clients can account every request's latency the same way.
type ErrorResponse struct {
	Error  string          `json:"error"`
	ReqID  string          `json:"req_id"`
	Timing TimingBreakdown `json:"timing"`
}

// fail writes a JSON error carrying the request ID and timing, and
// counts it. Error taxonomy: typed lookup errors map to 404/409,
// batcher shutdown to 503, everything explicitly passed stays at the
// given code.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, code int, err error) {
	s.metricsMu.Lock()
	s.reg.Counter("server.errors", "code", strconv.Itoa(code)).Inc()
	s.metricsMu.Unlock()
	info := infoFrom(r)
	info.errMsg = err.Error()
	if info.timing.TotalS == 0 {
		info.timing.TotalS = time.Since(info.t0).Seconds()
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error(), ReqID: info.id, Timing: info.timing})
}

// failErr maps an error to its HTTP status by type.
func (s *Server) failErr(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrUnknownStructure):
		s.fail(w, r, http.StatusNotFound, err)
	case errors.Is(err, ErrDuplicateStructure):
		s.fail(w, r, http.StatusConflict, err)
	case errors.Is(err, batcher.ErrClosed):
		s.fail(w, r, http.StatusServiceUnavailable, errors.New("server is draining"))
	case tmalign.IsKernelError(err):
		// The request was well-formed HTTP but the pair cannot be
		// aligned (degenerate structure, kernel precondition): the
		// input, not the server, is at fault.
		s.fail(w, r, http.StatusUnprocessableEntity, err)
	default:
		s.fail(w, r, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// UploadResponse acknowledges a stored structure.
type UploadResponse struct {
	ID       string `json:"id"`
	Index    int    `json:"index"`
	Residues int    `json:"residues"`
	ReqID    string `json:"req_id"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxUploadBytes {
		s.fail(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("upload exceeds %d bytes", maxUploadBytes))
		return
	}
	st, err := pdb.Parse(bytes.NewReader(body), id)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	if err := tmalign.ValidateStructure(st); err != nil {
		// Reject degenerate structures at the door: stored once, they
		// would poison every query touching them.
		s.fail(w, r, http.StatusBadRequest, err)
		return
	}
	idx, err := s.db.Add(st)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, UploadResponse{ID: st.ID, Index: idx, Residues: st.Len(), ReqID: infoFrom(r).id})
}

// StructureInfo describes one stored structure in listings.
type StructureInfo struct {
	ID       string `json:"id"`
	Index    int    `json:"index"`
	Residues int    `json:"residues"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	structs := s.db.Snapshot()
	infos := make([]StructureInfo, len(structs))
	for i, st := range structs {
		infos[i] = StructureInfo{ID: st.ID, Index: i, Residues: st.Len()}
	}
	writeJSON(w, http.StatusOK, struct {
		Count      int             `json:"count"`
		Structures []StructureInfo `json:"structures"`
		ReqID      string          `json:"req_id"`
	}{len(infos), infos, infoFrom(r).id})
}

// ScoreRow is one pair's scores in canonical orientation: I < J are
// database indices, TM1 is normalised by structure I's length, TM2 by
// J's.
type ScoreRow struct {
	I          int     `json:"i"`
	J          int     `json:"j"`
	A          string  `json:"a"`
	B          string  `json:"b"`
	TM1        float64 `json:"tm1"`
	TM2        float64 `json:"tm2"`
	RMSD       float64 `json:"rmsd"`
	AlignedLen int     `json:"aligned_len"`
	SeqID      float64 `json:"seq_id"`
}

func rowOf(j pairJob, r *tmalign.Result) ScoreRow {
	return ScoreRow{
		I: j.i, J: j.j, A: j.a.ID, B: j.b.ID,
		TM1: r.TM1, TM2: r.TM2, RMSD: r.RMSD,
		AlignedLen: r.AlignedLen, SeqID: r.SeqID,
	}
}

// TimingBreakdown is a batcher timing in seconds, as served to clients.
type TimingBreakdown struct {
	QueueWaitS float64 `json:"queue_wait_s"`
	AssemblyS  float64 `json:"assembly_s"`
	ComputeS   float64 `json:"compute_s"`
	TotalS     float64 `json:"total_s"`
}

func timingOf(t batcher.Timing) TimingBreakdown {
	return TimingBreakdown{
		QueueWaitS: t.QueueWait.Seconds(),
		AssemblyS:  t.Assembly.Seconds(),
		ComputeS:   t.Compute.Seconds(),
		TotalS:     t.Total.Seconds(),
	}
}

// ScoreResponse is the /score reply. ReqID, Worker, MemoHit,
// QueueDepth and EnqueueOffsetS are the request-tracing fields: which
// request this was, which batch worker computed it, whether the pair
// came from the memo store, the coalescer backlog it saw on arrival,
// and when (as an offset from server start) it entered the queue — the
// coordinates a load generator needs to rebuild server-side trace
// spans.
type ScoreResponse struct {
	ScoreRow
	ReqID          string          `json:"req_id"`
	BatchSize      int             `json:"batch_size"`
	Trigger        string          `json:"trigger"`
	Timing         TimingBreakdown `json:"timing"`
	Worker         int             `json:"worker"`
	MemoHit        bool            `json:"memo_hit"`
	QueueDepth     int64           `json:"queue_depth"`
	EnqueueOffsetS float64         `json:"enqueue_offset_s"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	info := infoFrom(r)
	q := r.URL.Query()
	aID, bID := q.Get("a"), q.Get("b")
	if aID == "" || bID == "" {
		s.fail(w, r, http.StatusBadRequest, errors.New("need a= and b= structure ids"))
		return
	}
	ai, a, err := s.db.Lookup(aID)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	bi, b, err := s.db.Lookup(bID)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	if ai == bi {
		s.fail(w, r, http.StatusBadRequest, fmt.Errorf("a and b are both structure %q", aID))
		return
	}
	job := canonicalJob(info.id, ai, a, bi, b)
	res, err := s.bat.Submit(job)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	if res.Err != nil {
		s.failErr(w, r, res.Err)
		return
	}
	if res.Value.err != nil {
		s.failErr(w, r, res.Value.err)
		return
	}
	info.timing = timingOf(res.Timing)
	info.batch, info.trigger = res.BatchSize, res.Trigger.String()
	if res.Value.hit {
		info.memoHit++
	} else {
		info.memoMiss++
	}
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, ScoreLine(job.i, job.j, res.Value.res))
		return
	}
	writeJSON(w, http.StatusOK, ScoreResponse{
		ScoreRow:       rowOf(job, res.Value.res),
		ReqID:          info.id,
		BatchSize:      res.BatchSize,
		Trigger:        res.Trigger.String(),
		Timing:         timingOf(res.Timing),
		Worker:         res.Worker,
		MemoHit:        res.Value.hit,
		QueueDepth:     res.QueueDepth,
		EnqueueOffsetS: res.EnqueuedAt.Sub(s.start).Seconds(),
	})
}

// oneVsAll resolves the target, expands it against every other stored
// structure (snapshot at request time), applies the optional prune
// pre-filter, and runs the surviving pairs through the coalescer under
// the given request ID. Rows come back sorted by canonical pair; the
// int alongside them counts pairs the pre-filter removed.
func (s *Server) oneVsAll(req, targetID string) (int, []pairJob, []batcher.Result[pairOut], int, error) {
	ti, _, err := s.db.Lookup(targetID)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	structs := s.db.Snapshot()
	jobs := make([]pairJob, 0, len(structs)-1)
	for o, st := range structs {
		if o == ti {
			continue
		}
		jobs = append(jobs, canonicalJob(req, ti, structs[ti], o, st))
	}
	pruned := 0
	if s.pruneF != nil {
		s.pruneMu.Lock()
		kept := jobs[:0]
		for _, j := range jobs {
			if s.pruneF.Skip(s.featuresOfLocked(j.a), s.featuresOfLocked(j.b)) {
				pruned++
				continue
			}
			kept = append(kept, j)
		}
		s.pruneMu.Unlock()
		jobs = kept
		if pruned > 0 {
			s.metricsMu.Lock()
			s.reg.Counter("server.pruned_pairs").Add(float64(pruned))
			s.metricsMu.Unlock()
		}
	}
	results, err := s.bat.SubmitAll(jobs)
	if err != nil {
		return 0, nil, nil, pruned, err
	}
	for _, r := range results {
		if r.Err != nil {
			return 0, nil, nil, pruned, r.Err
		}
		if r.Value.err != nil {
			return 0, nil, nil, pruned, r.Value.err
		}
	}
	return ti, jobs, results, pruned, nil
}

// featuresOfLocked returns the cached prune features of a stored
// structure, extracting them on first use. Callers hold pruneMu.
func (s *Server) featuresOfLocked(st *pdb.Structure) *prune.Features {
	if f, ok := s.pruneFeats[st]; ok {
		return f
	}
	f := prune.Extract(st.CAs(), st.Sequence())
	s.pruneFeats[st] = &f
	return &f
}

// recordItems folds a multi-pair request's batcher results into the
// trace record: memo hit/miss counts, the slowest item's breakdown (the
// request's critical path through the coalescer), and the largest batch
// any item rode in.
func recordItems(info *reqInfo, results []batcher.Result[pairOut]) batcher.Timing {
	var maxT batcher.Timing
	for _, res := range results {
		if res.Value.hit {
			info.memoHit++
		} else {
			info.memoMiss++
		}
		if res.BatchSize > info.batch {
			info.batch, info.trigger = res.BatchSize, res.Trigger.String()
		}
		if res.Timing.Total > maxT.Total {
			maxT = res.Timing
		}
	}
	info.timing = timingOf(maxT)
	return maxT
}

// OneVsAllResponse is the /onevsall reply.
type OneVsAllResponse struct {
	Target string     `json:"target"`
	Index  int        `json:"index"`
	Count  int        `json:"count"`
	ReqID  string     `json:"req_id"`
	Rows   []ScoreRow `json:"rows"`
	// MaxTiming is the slowest item's breakdown — the request's critical
	// path through the coalescer.
	MaxTiming TimingBreakdown `json:"max_timing"`
	// MemoHits/MemoMisses count this request's pairs by memo outcome.
	MemoHits   int `json:"memo_hits"`
	MemoMisses int `json:"memo_misses"`
	// Pruned counts pairs the similarity pre-filter removed before
	// compute (0 unless the server runs with Config.PruneTM > 0).
	Pruned int `json:"pruned"`
	// Workers lists the distinct batch workers that computed this
	// request's pairs, ascending.
	Workers []int `json:"workers"`
}

// distinctWorkers returns the sorted distinct worker indices across a
// request's batcher results.
func distinctWorkers(results []batcher.Result[pairOut]) []int {
	seen := map[int]struct{}{}
	var out []int
	for _, res := range results {
		if _, ok := seen[res.Worker]; !ok {
			seen[res.Worker] = struct{}{}
			out = append(out, res.Worker)
		}
	}
	sort.Ints(out)
	return out
}

func (s *Server) handleOneVsAll(w http.ResponseWriter, r *http.Request) {
	info := infoFrom(r)
	targetID := r.URL.Query().Get("target")
	if targetID == "" {
		s.fail(w, r, http.StatusBadRequest, errors.New("need target= structure id"))
		return
	}
	ti, jobs, results, pruned, err := s.oneVsAll(info.id, targetID)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		recordItems(info, results)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for k, job := range jobs {
			io.WriteString(w, ScoreLine(job.i, job.j, results[k].Value.res))
		}
		return
	}
	resp := OneVsAllResponse{Target: targetID, Index: ti, Count: len(jobs), ReqID: info.id, Rows: make([]ScoreRow, len(jobs))}
	for k, job := range jobs {
		resp.Rows[k] = rowOf(job, results[k].Value.res)
	}
	maxT := recordItems(info, results)
	resp.MaxTiming = timingOf(maxT)
	resp.MemoHits, resp.MemoMisses = info.memoHit, info.memoMiss
	resp.Pruned = pruned
	resp.Workers = distinctWorkers(results)
	writeJSON(w, http.StatusOK, resp)
}

// Neighbor is one /topk hit: TM is the score normalised by the target
// chain's length (the retrieval convention).
type Neighbor struct {
	ID         string  `json:"id"`
	Index      int     `json:"index"`
	TM         float64 `json:"tm"`
	TM1        float64 `json:"tm1"`
	TM2        float64 `json:"tm2"`
	RMSD       float64 `json:"rmsd"`
	AlignedLen int     `json:"aligned_len"`
	SeqID      float64 `json:"seq_id"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	info := infoFrom(r)
	q := r.URL.Query()
	targetID := q.Get("target")
	if targetID == "" {
		s.fail(w, r, http.StatusBadRequest, errors.New("need target= structure id"))
		return
	}
	k := 5
	if ks := q.Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil || k < 1 {
			s.fail(w, r, http.StatusBadRequest, fmt.Errorf("k=%q is not a positive integer", ks))
			return
		}
	}
	ti, jobs, results, pruned, err := s.oneVsAll(info.id, targetID)
	if err != nil {
		s.failErr(w, r, err)
		return
	}
	maxT := recordItems(info, results)
	neighbors := make([]Neighbor, len(jobs))
	for i, job := range jobs {
		res := results[i].Value.res
		// TM1 is normalised by the canonical-first chain's length. Report
		// the score normalised by the *target* length (the retrieval
		// convention), so pick TM1 when the target is canonical-first.
		tm, other, otherIdx := res.TM2, job.a, job.i
		if job.i == ti {
			tm, other, otherIdx = res.TM1, job.b, job.j
		}
		neighbors[i] = Neighbor{
			ID: other.ID, Index: otherIdx, TM: tm,
			TM1: res.TM1, TM2: res.TM2, RMSD: res.RMSD,
			AlignedLen: res.AlignedLen, SeqID: res.SeqID,
		}
	}
	sort.SliceStable(neighbors, func(x, y int) bool {
		if neighbors[x].TM != neighbors[y].TM {
			return neighbors[x].TM > neighbors[y].TM
		}
		return neighbors[x].Index < neighbors[y].Index
	})
	if k > len(neighbors) {
		k = len(neighbors)
	}
	writeJSON(w, http.StatusOK, struct {
		Target     string          `json:"target"`
		Index      int             `json:"index"`
		K          int             `json:"k"`
		ReqID      string          `json:"req_id"`
		Neighbors  []Neighbor      `json:"neighbors"`
		MaxTiming  TimingBreakdown `json:"max_timing"`
		MemoHits   int             `json:"memo_hits"`
		MemoMisses int             `json:"memo_misses"`
		Pruned     int             `json:"pruned"`
	}{targetID, ti, k, info.id, neighbors[:k], timingOf(maxT), info.memoHit, info.memoMiss, pruned})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status     string  `json:"status"`
		Structures int     `json:"structures"`
		UptimeS    float64 `json:"uptime_s"`
	}{"ok", s.db.Len(), time.Since(s.start).Seconds()})
}

// BatcherStatsz mirrors batcher.Stats with stable JSON keys.
// QueueDepthPeak is the high-water mark of pending items over the
// server's lifetime — the congestion signal a load sweep watches.
type BatcherStatsz struct {
	Enqueued       int64 `json:"enqueued"`
	Completed      int64 `json:"completed"`
	QueueDepth     int64 `json:"queue_depth"`
	QueueDepthPeak int64 `json:"queue_depth_peak"`
	Batches        int64 `json:"batches"`
	SizeFlushes    int64 `json:"size_flushes"`
	TimerFlushes   int64 `json:"timer_flushes"`
	CloseFlushes   int64 `json:"close_flushes"`
	MaxBatch       int   `json:"max_batch"`
}

// HistogramStatsz is a histogram rendered for /statsz.
type HistogramStatsz struct {
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	Mean    float64   `json:"mean"`
	Max     float64   `json:"max"`
}

// LatencyStatsz is one endpoint's latency summary.
type LatencyStatsz struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	P50S     float64 `json:"p50_s"`
	P95S     float64 `json:"p95_s"`
	P99S     float64 `json:"p99_s"`
	MaxS     float64 `json:"max_s"`
}

// Statsz is the /statsz payload.
type Statsz struct {
	UptimeS    float64                 `json:"uptime_s"`
	Structures int                     `json:"structures"`
	Pairstore  pairstore.StatsSnapshot `json:"pairstore"`
	Batcher    BatcherStatsz           `json:"batcher"`
	BatchSizes HistogramStatsz         `json:"batch_sizes"`
	Latency    []LatencyStatsz         `json:"latency"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	bs := s.bat.Stats()
	st := Statsz{
		UptimeS:    time.Since(s.start).Seconds(),
		Structures: s.db.Len(),
		Pairstore:  s.store.StatsSnapshot(),
		Batcher: BatcherStatsz{
			Enqueued: bs.Enqueued, Completed: bs.Completed, QueueDepth: bs.Pending,
			QueueDepthPeak: bs.PeakPending,
			Batches:        bs.Batches, SizeFlushes: bs.SizeFlushes,
			TimerFlushes: bs.TimerFlushes, CloseFlushes: bs.CloseFlushes,
			MaxBatch: bs.MaxBatch,
		},
	}
	s.metricsMu.Lock()
	s.reg.Gauge("server.queue.depth").Set(float64(bs.Pending))
	bh := s.reg.Histogram("server.batch.size", metrics.CountBuckets)
	snap := s.reg.Snapshot()
	st.BatchSizes = HistogramStatsz{
		Count: bh.Count(), Mean: bh.Mean(), Max: bh.MaxValue(),
	}
	for _, hs := range snap.Histograms {
		if hs.Key == "server.batch.size" {
			st.BatchSizes.Buckets = hs.Buckets
			st.BatchSizes.Counts = hs.Counts
		}
	}
	for _, ep := range observedEndpoints {
		lh := s.reg.Histogram("server.latency_seconds", metrics.TimeBuckets, "endpoint", ep)
		if lh.Count() == 0 {
			continue
		}
		st.Latency = append(st.Latency, LatencyStatsz{
			Endpoint: ep, Count: lh.Count(),
			P50S: lh.Quantile(0.50), P95S: lh.Quantile(0.95), P99S: lh.Quantile(0.99),
			MaxS: lh.MaxValue(),
		})
	}
	s.metricsMu.Unlock()
	writeJSON(w, http.StatusOK, st)
}
