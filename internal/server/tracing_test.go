package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rckalign/internal/pdb"
)

// doTraced is do with an X-Request-ID header attached.
func doTraced(t *testing.T, s *Server, method, target, reqID string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(method, target, nil)
	if reqID != "" {
		r.Header.Set("X-Request-ID", reqID)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// TestRequestIDPropagation pins the tracing contract: a client-supplied
// X-Request-ID is echoed in the response header and body on every path
// — success, 404 and 409 alike — and timing is populated everywhere.
func TestRequestIDPropagation(t *testing.T) {
	s, structs := newTestServer(t, 4, Config{})

	// Success path: header adopted, body carries id + full timing.
	w := doTraced(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, "trace-me-1")
	if w.Code != http.StatusOK {
		t.Fatalf("score = %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Request-ID"); got != "trace-me-1" {
		t.Errorf("response header id = %q, want trace-me-1", got)
	}
	var sr ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ReqID != "trace-me-1" {
		t.Errorf("body req_id = %q", sr.ReqID)
	}
	if sr.Timing.TotalS <= 0 {
		t.Errorf("score timing not populated: %+v", sr.Timing)
	}
	if sr.MemoHit {
		t.Error("first evaluation reported as memo hit")
	}
	if sr.QueueDepth < 1 {
		t.Errorf("queue depth = %d, want >= 1 (admission includes self)", sr.QueueDepth)
	}

	// Repeating the same pair must flip memo_hit.
	w = doTraced(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, "trace-me-2")
	var sr2 ScoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.MemoHit {
		t.Error("repeat evaluation not reported as memo hit")
	}

	// Without a client id the server assigns one.
	w = doTraced(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[2].ID, "")
	if got := w.Header().Get("X-Request-ID"); !strings.HasPrefix(got, "r") || len(got) != 9 {
		t.Errorf("server-assigned id = %q, want r%%08d form", got)
	}

	// 404: unknown structure. JSON error body with id + timing.
	w = doTraced(t, s, "GET", "/score?a=nope&b="+structs[0].ID, "trace-404")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown structure = %d", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatalf("404 body is not JSON: %v\n%s", err, w.Body.String())
	}
	if er.ReqID != "trace-404" || er.Error == "" {
		t.Errorf("404 body = %+v", er)
	}
	if er.Timing.TotalS <= 0 {
		t.Errorf("404 timing not populated: %+v", er.Timing)
	}
	if got := w.Header().Get("X-Request-ID"); got != "trace-404" {
		t.Errorf("404 header id = %q", got)
	}

	// 409: duplicate upload.
	var buf bytes.Buffer
	if err := pdb.Write(&buf, structs[0]); err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/structures?id="+structs[0].ID, &buf)
	r.Header.Set("X-Request-ID", "trace-409")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, r)
	if rec.Code != http.StatusConflict {
		t.Fatalf("duplicate upload = %d: %s", rec.Code, rec.Body.String())
	}
	er = ErrorResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("409 body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if er.ReqID != "trace-409" || er.Timing.TotalS <= 0 {
		t.Errorf("409 body = %+v", er)
	}

	// One-vs-all carries the id and per-request memo counters.
	w = doTraced(t, s, "POST", "/onevsall?target="+structs[0].ID, "trace-ova")
	if w.Code != http.StatusOK {
		t.Fatalf("onevsall = %d", w.Code)
	}
	var ova OneVsAllResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ova); err != nil {
		t.Fatal(err)
	}
	if ova.ReqID != "trace-ova" {
		t.Errorf("onevsall req_id = %q", ova.ReqID)
	}
	if ova.MemoHits+ova.MemoMisses != 3 {
		t.Errorf("onevsall memo accounting = %d hits + %d misses, want 3 pairs",
			ova.MemoHits, ova.MemoMisses)
	}
}

// TestAccessLog pins the structured access log: one parseable JSON line
// per request, including error paths, with ids, status and timing.
func TestAccessLog(t *testing.T) {
	var log bytes.Buffer
	s, structs := newTestServer(t, 3, Config{AccessLog: &log})

	doTraced(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, "al-1")
	doTraced(t, s, "GET", "/score?a=nope&b="+structs[0].ID, "al-2")
	doTraced(t, s, "GET", "/healthz", "al-3")

	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d access-log lines, want 3:\n%s", len(lines), log.String())
	}
	entries := make([]AccessEntry, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &entries[i]); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		if entries[i].LatencyS <= 0 || entries[i].Timing.TotalS <= 0 {
			t.Errorf("line %d lacks latency/timing: %+v", i, entries[i])
		}
	}
	if entries[0].ReqID != "al-1" || entries[0].Endpoint != "score" || entries[0].Status != 200 {
		t.Errorf("score entry = %+v", entries[0])
	}
	if entries[0].MemoMiss != 1 || entries[0].Trigger == "" {
		t.Errorf("score entry memo/trigger = %+v", entries[0])
	}
	if entries[1].Status != 404 || entries[1].Error == "" {
		t.Errorf("404 entry = %+v", entries[1])
	}
	if entries[2].Endpoint != "healthz" || entries[2].Status != 200 {
		t.Errorf("healthz entry = %+v", entries[2])
	}
}

// TestStatszQueueDepthPeak pins the new high-water mark: after traffic
// it is at least 1 and never below the final depth.
func TestStatszQueueDepthPeak(t *testing.T) {
	s, structs := newTestServer(t, 5, Config{})
	for i := 0; i < 3; i++ {
		do(t, s, "POST", "/onevsall?target="+structs[i].ID, nil)
	}
	w := do(t, s, "GET", "/statsz", nil)
	var st Statsz
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Batcher.QueueDepthPeak < 1 {
		t.Errorf("queue depth peak = %d, want >= 1", st.Batcher.QueueDepthPeak)
	}
	if st.Batcher.QueueDepthPeak < st.Batcher.QueueDepth {
		t.Errorf("peak %d below current depth %d",
			st.Batcher.QueueDepthPeak, st.Batcher.QueueDepth)
	}
}
