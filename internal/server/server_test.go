package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/pdb"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// newTestServer preloads a small synthetic dataset and returns the
// server plus its structures. Callers must Close it.
func newTestServer(t *testing.T, n int, cfg Config) (*Server, []*pdb.Structure) {
	t.Helper()
	if cfg.Dataset == "" {
		cfg.Dataset = "test"
	}
	if cfg.Options == (tmalign.Options{}) {
		cfg.Options = tmalign.FastOptions()
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	ds := synth.Small(n, 1)
	if err := s.Preload(ds.Structures); err != nil {
		t.Fatal(err)
	}
	return s, ds.Structures
}

func do(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// batchDump renders the full all-vs-all score dump exactly the way
// cmd/rckalign -scores-out does: canonical pair order, %.17g floats.
func batchDump(structs []*pdb.Structure, opt tmalign.Options) string {
	var b strings.Builder
	for _, p := range sched.AllVsAll(len(structs)) {
		r := tmalign.Compare(structs[p.I], structs[p.J], opt)
		b.WriteString(ScoreLine(p.I, p.J, r))
	}
	return b.String()
}

// TestServedScoresByteIdenticalToBatchDump is the determinism contract:
// driving every pair through GET /score?format=text reproduces the
// batch CLI's -scores-out dump byte for byte.
func TestServedScoresByteIdenticalToBatchDump(t *testing.T) {
	opt := tmalign.FastOptions()
	s, structs := newTestServer(t, 6, Config{Options: opt})
	want := batchDump(structs, opt)

	var got strings.Builder
	for _, p := range sched.AllVsAll(len(structs)) {
		// Query in reversed ID order on purpose: the server must
		// canonicalize to index order before comparing.
		u := fmt.Sprintf("/score?a=%s&b=%s&format=text", structs[p.J].ID, structs[p.I].ID)
		w := do(t, s, "GET", u, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", u, w.Code, w.Body.String())
		}
		got.WriteString(w.Body.String())
	}
	if got.String() != want {
		t.Errorf("served dump differs from batch dump:\nserved:\n%s\nbatch:\n%s", got.String(), want)
	}
}

// TestOneVsAllTextMatchesBatchLines pins /onevsall?format=text rows to
// the batch dump's lines for the same pairs.
func TestOneVsAllTextMatchesBatchLines(t *testing.T) {
	opt := tmalign.FastOptions()
	s, structs := newTestServer(t, 6, Config{Options: opt})
	batchLines := map[string]bool{}
	for _, ln := range strings.SplitAfter(batchDump(structs, opt), "\n") {
		if ln != "" {
			batchLines[ln] = true
		}
	}
	for _, st := range structs {
		w := do(t, s, "POST", "/onevsall?target="+st.ID+"&format=text", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("onevsall %s = %d: %s", st.ID, w.Code, w.Body.String())
		}
		lines := strings.SplitAfter(w.Body.String(), "\n")
		if got := len(lines) - 1; got != len(structs)-1 {
			t.Fatalf("onevsall %s returned %d lines, want %d", st.ID, got, len(structs)-1)
		}
		for _, ln := range lines[:len(lines)-1] {
			if !batchLines[ln] {
				t.Errorf("onevsall %s line not in batch dump: %q", st.ID, ln)
			}
		}
	}
}

// TestCoalescedBurstComputesEachPairOnce is the exactly-once guarantee:
// a burst of concurrent one-vs-all requests against the same target
// computes each distinct pair exactly once (pairstore misses) and every
// response is byte-identical.
func TestCoalescedBurstComputesEachPairOnce(t *testing.T) {
	const n, burst = 8, 16
	s, structs := newTestServer(t, n, Config{
		Batch: batcher.Config{BatchSize: 8, MaxWait: time.Millisecond, Workers: 4},
	})
	target := structs[3].ID

	bodies := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, s, "POST", "/onevsall?target="+target+"&format=text", nil)
			if w.Code == http.StatusOK {
				bodies[i] = w.Body.String()
			}
		}(i)
	}
	wg.Wait()

	for i, b := range bodies {
		if b == "" {
			t.Fatalf("burst request %d failed", i)
		}
		if b != bodies[0] {
			t.Errorf("burst response %d differs from response 0:\n%s\nvs\n%s", i, b, bodies[0])
		}
	}
	ps := s.Store().StatsSnapshot()
	wantMisses := int64(n - 1)
	if ps.Misses != wantMisses {
		t.Errorf("pairstore misses = %d, want exactly %d (each pair computed once)", ps.Misses, wantMisses)
	}
	if total := ps.Hits + ps.Misses; total != int64(burst*(n-1)) {
		t.Errorf("pairstore gets = %d, want %d", total, burst*(n-1))
	}
	bs := s.BatcherStats()
	if bs.Enqueued != int64(burst*(n-1)) || bs.Completed != bs.Enqueued {
		t.Errorf("batcher enqueued/completed = %d/%d, want %d", bs.Enqueued, bs.Completed, burst*(n-1))
	}
	if bs.MaxBatch < 2 {
		t.Errorf("max batch = %d, want coalescing (>= 2) in a %d-request burst", bs.MaxBatch, burst)
	}
}

// TestUploadScoreRoundTrip exercises the mutable database: upload new
// structures over HTTP, then score them against preloaded ones.
func TestUploadScoreRoundTrip(t *testing.T) {
	s, structs := newTestServer(t, 4, Config{})
	up := synth.Small(6, 99).Structures[4] // IDs disjoint from seed-1 prefix set by index
	up = up.Clone()
	up.ID = "upload01"
	var pdbText bytes.Buffer
	if err := pdb.Write(&pdbText, up); err != nil {
		t.Fatal(err)
	}

	w := do(t, s, "POST", "/structures?id=upload01", pdbText.Bytes())
	if w.Code != http.StatusCreated {
		t.Fatalf("upload = %d: %s", w.Code, w.Body.String())
	}
	var ur UploadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	if ur.ID != "upload01" || ur.Index != 4 || ur.Residues != up.Len() {
		t.Errorf("upload response = %+v", ur)
	}

	// Duplicate ID -> 409.
	if w := do(t, s, "POST", "/structures?id=upload01", pdbText.Bytes()); w.Code != http.StatusConflict {
		t.Errorf("duplicate upload = %d, want 409", w.Code)
	}
	// Garbage body -> 400.
	if w := do(t, s, "POST", "/structures?id=bad", []byte("not a pdb file\n")); w.Code != http.StatusBadRequest {
		t.Errorf("garbage upload = %d, want 400", w.Code)
	}

	// Score the upload against a preloaded structure, both orders; the
	// canonical orientation makes them identical.
	w1 := do(t, s, "GET", "/score?a=upload01&b="+structs[0].ID+"&format=text", nil)
	w2 := do(t, s, "GET", "/score?a="+structs[0].ID+"&b=upload01&format=text", nil)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("score codes = %d/%d", w1.Code, w2.Code)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Errorf("score is orientation-dependent:\n%s\nvs\n%s", w1.Body.String(), w2.Body.String())
	}
	if !strings.HasPrefix(w1.Body.String(), "0 4 ") {
		t.Errorf("score line not in canonical index order: %q", w1.Body.String())
	}
}

// TestUnknownStructureIs404 pins the typed-error mapping.
func TestUnknownStructureIs404(t *testing.T) {
	s, structs := newTestServer(t, 3, Config{})
	for _, u := range []string{
		"/score?a=nope&b=" + structs[0].ID,
		"/score?a=" + structs[0].ID + "&b=nope",
		"/topk?target=nope",
	} {
		if w := do(t, s, "GET", u, nil); w.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404: %s", u, w.Code, w.Body.String())
		}
	}
	if w := do(t, s, "POST", "/onevsall?target=nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("onevsall unknown = %d, want 404", w.Code)
	}
	if w := do(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[0].ID, nil); w.Code != http.StatusBadRequest {
		t.Errorf("self-pair = %d, want 400", w.Code)
	}
	// The sentinel is matchable by callers.
	_, _, err := s.DB().Lookup("nope")
	if !errors.Is(err, ErrUnknownStructure) {
		t.Errorf("Lookup error = %v, want ErrUnknownStructure", err)
	}
}

// TestTopK checks ranking: neighbors sorted by target-normalised TM
// descending, k capped at the database size.
func TestTopK(t *testing.T) {
	opt := tmalign.FastOptions()
	s, structs := newTestServer(t, 6, Config{Options: opt})
	target := 2
	w := do(t, s, "GET", fmt.Sprintf("/topk?target=%s&k=3", structs[target].ID), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("topk = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Target    string     `json:"target"`
		K         int        `json:"k"`
		Neighbors []Neighbor `json:"neighbors"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 3 || len(resp.Neighbors) != 3 {
		t.Fatalf("topk returned %d/%d neighbors", resp.K, len(resp.Neighbors))
	}
	if !sort.SliceIsSorted(resp.Neighbors, func(a, b int) bool {
		return resp.Neighbors[a].TM > resp.Neighbors[b].TM
	}) {
		t.Errorf("neighbors not sorted by TM desc: %+v", resp.Neighbors)
	}
	// Cross-check the winner against direct computation.
	bestTM, bestIdx := -1.0, -1
	for o := range structs {
		if o == target {
			continue
		}
		lo, hi := target, o
		if o < target {
			lo, hi = o, target
		}
		r := tmalign.Compare(structs[lo], structs[hi], opt)
		tm := r.TM2
		if lo == target {
			tm = r.TM1
		}
		if tm > bestTM {
			bestTM, bestIdx = tm, o
		}
	}
	if resp.Neighbors[0].Index != bestIdx || resp.Neighbors[0].TM != bestTM {
		t.Errorf("top neighbor = %+v, want index %d tm %v", resp.Neighbors[0], bestIdx, bestTM)
	}
	// k larger than the database clips.
	w = do(t, s, "GET", fmt.Sprintf("/topk?target=%s&k=100", structs[target].ID), nil)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Neighbors) != len(structs)-1 {
		t.Errorf("k=100 returned %d neighbors, want %d", len(resp.Neighbors), len(structs)-1)
	}
	if w := do(t, s, "GET", "/topk?target="+structs[0].ID+"&k=zero", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad k = %d, want 400", w.Code)
	}
}

// TestConcurrentUploadsAndQueries races the mutable database against
// queries; run with -race. Uploads use a disjoint dataset so they never
// collide with preloaded IDs.
func TestConcurrentUploadsAndQueries(t *testing.T) {
	s, structs := newTestServer(t, 5, Config{})
	extra := synth.Small(8, 7).Structures
	var wg sync.WaitGroup
	for i, st := range extra {
		wg.Add(1)
		go func(i int, st *pdb.Structure) {
			defer wg.Done()
			st = st.Clone()
			st.ID = fmt.Sprintf("up%02d", i)
			var buf bytes.Buffer
			if err := pdb.Write(&buf, st); err != nil {
				t.Error(err)
				return
			}
			if w := do(t, s, "POST", "/structures?id="+st.ID, buf.Bytes()); w.Code != http.StatusCreated {
				t.Errorf("upload %s = %d: %s", st.ID, w.Code, w.Body.String())
			}
		}(i, st)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, b := structs[i%len(structs)], structs[(i+1)%len(structs)]
			if w := do(t, s, "GET", "/score?a="+a.ID+"&b="+b.ID, nil); w.Code != http.StatusOK {
				t.Errorf("score = %d: %s", w.Code, w.Body.String())
			}
			if w := do(t, s, "POST", "/onevsall?target="+a.ID, nil); w.Code != http.StatusOK {
				t.Errorf("onevsall = %d: %s", w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	if got := s.DB().Len(); got != 5+len(extra) {
		t.Errorf("db len = %d, want %d", got, 5+len(extra))
	}
}

// TestStatszExposure drives traffic and checks the observability
// payload: pairstore hit rate, batch-size histogram, queue depth and
// latency quantiles all present and consistent.
func TestStatszExposure(t *testing.T) {
	s, structs := newTestServer(t, 5, Config{})
	for i := 0; i < 3; i++ {
		do(t, s, "POST", "/onevsall?target="+structs[0].ID, nil)
	}
	do(t, s, "GET", "/score?a="+structs[1].ID+"&b="+structs[2].ID, nil)

	w := do(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, s, "GET", "/statsz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("statsz = %d: %s", w.Code, w.Body.String())
	}
	var st Statsz
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz not valid JSON: %v\n%s", err, w.Body.String())
	}
	if st.Structures != 5 {
		t.Errorf("statsz structures = %d", st.Structures)
	}
	if st.Pairstore.Misses == 0 || st.Pairstore.Hits == 0 || st.Pairstore.HitRate <= 0 {
		t.Errorf("pairstore stats not populated: %+v", st.Pairstore)
	}
	if st.Batcher.Batches == 0 || st.Batcher.Completed != st.Batcher.Enqueued {
		t.Errorf("batcher stats not consistent: %+v", st.Batcher)
	}
	if st.BatchSizes.Count != st.Batcher.Batches || len(st.BatchSizes.Buckets) == 0 {
		t.Errorf("batch-size histogram = %+v, want %d batches", st.BatchSizes, st.Batcher.Batches)
	}
	seen := map[string]bool{}
	for _, l := range st.Latency {
		seen[l.Endpoint] = true
		if l.Count == 0 || l.P50S <= 0 || l.P95S < l.P50S || l.P99S < l.P95S {
			t.Errorf("latency summary inconsistent: %+v", l)
		}
	}
	if !seen["onevsall"] || !seen["score"] {
		t.Errorf("latency endpoints = %+v, want onevsall and score", st.Latency)
	}
}

// TestCloseDrainsThen503 pins graceful shutdown: queries after Close
// get 503 instead of hanging or panicking.
func TestCloseDrainsThen503(t *testing.T) {
	s, structs := newTestServer(t, 3, Config{})
	if w := do(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, nil); w.Code != http.StatusOK {
		t.Fatalf("pre-close score = %d", w.Code)
	}
	s.Close()
	if w := do(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-close score = %d, want 503", w.Code)
	}
	if w := do(t, s, "POST", "/onevsall?target="+structs[0].ID, nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-close onevsall = %d, want 503", w.Code)
	}
	// Uploads and stats still work on a draining server.
	if w := do(t, s, "GET", "/statsz", nil); w.Code != http.StatusOK {
		t.Errorf("post-close statsz = %d", w.Code)
	}
}

// TestDegenerateUploadRejected: structures the kernel cannot align are
// rejected at the door with 400 — a chain too short to align, and a
// file whose coordinate columns parse to NaN (strconv.ParseFloat
// accepts "NaN", so the PDB parser alone does not catch it).
func TestDegenerateUploadRejected(t *testing.T) {
	s, _ := newTestServer(t, 3, Config{})

	short := "ATOM      1  CA  ALA A   1       0.000   0.000   0.000\n" +
		"ATOM      2  CA  ALA A   2       3.800   0.000   0.000\n"
	if w := do(t, s, "POST", "/structures?id=short", []byte(short)); w.Code != http.StatusBadRequest {
		t.Errorf("2-residue upload = %d, want 400: %s", w.Code, w.Body.String())
	}

	nan := synth.Small(4, 55).Structures[3].Clone()
	nan.ID = "nanstruct"
	nan.Residues[2].CA[0] = math.NaN()
	var buf bytes.Buffer
	if err := pdb.Write(&buf, nan); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/structures?id=nanstruct", buf.Bytes())
	if w.Code != http.StatusBadRequest {
		t.Errorf("NaN upload = %d, want 400: %s", w.Code, w.Body.String())
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "degenerate") {
		t.Errorf("rejection does not name the cause: %q", er.Error)
	}
	// Neither structure was stored.
	if w := do(t, s, "GET", "/score?a=short&b=nanstruct", nil); w.Code != http.StatusNotFound {
		t.Errorf("score on rejected uploads = %d, want 404", w.Code)
	}
}

// TestDegenerateStoredStructureServes422: a degenerate structure that
// bypassed upload validation (Preload trusts its caller) turns queries
// touching it into 422 responses — the kernel's typed precondition
// errors cross the recovery boundary instead of crashing the server,
// and the error is memoized like any result.
func TestDegenerateStoredStructureServes422(t *testing.T) {
	s, structs := newTestServer(t, 3, Config{})
	bad := synth.Small(4, 56).Structures[3].Clone()
	bad.ID = "poison"
	bad.Residues[0].CA[2] = math.NaN()
	if err := s.Preload([]*pdb.Structure{bad}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ { // twice: the second hit serves the memoized error
		w := do(t, s, "GET", "/score?a=poison&b="+structs[0].ID, nil)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("score against poison = %d, want 422: %s", w.Code, w.Body.String())
		}
		var er ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(er.Error, "degenerate") || !strings.Contains(er.Error, "poison") {
			t.Errorf("422 body does not identify the structure: %q", er.Error)
		}
	}
	// Multi-pair queries touching the poison pair fail the same way...
	if w := do(t, s, "POST", "/onevsall?target=poison", nil); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("onevsall target=poison = %d, want 422", w.Code)
	}
	if w := do(t, s, "GET", "/topk?target="+structs[0].ID+"&k=2", nil); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("topk sweeping over poison = %d, want 422", w.Code)
	}
	// ...and healthy pairs keep serving.
	if w := do(t, s, "GET", "/score?a="+structs[0].ID+"&b="+structs[1].ID, nil); w.Code != http.StatusOK {
		t.Errorf("healthy pair after poison queries = %d, want 200", w.Code)
	}
}
