package server

import (
	"errors"
	"fmt"
	"sync"

	"rckalign/internal/pdb"
)

// ErrUnknownStructure is the typed not-found error for structure
// lookups: the HTTP layer maps it to 404 and CLIs to a one-line exit-2
// diagnostic (match with errors.Is).
var ErrUnknownStructure = errors.New("unknown structure")

// ErrDuplicateStructure is returned when an upload reuses an existing
// structure ID; the HTTP layer maps it to 409.
var ErrDuplicateStructure = errors.New("duplicate structure id")

// DB is the server's growing structure database: an append-only,
// insertion-ordered collection of parsed structures with unique IDs.
// Indices are assigned at insertion and never change, so they define
// the canonical pair orientation (compare index-lower vs index-higher)
// that keeps served scores bit-identical to a batch run over the same
// structures in the same order. All methods are safe for concurrent
// use.
type DB struct {
	mu      sync.RWMutex
	structs []*pdb.Structure
	index   map[string]int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{index: map[string]int{}}
}

// Add appends a structure and returns its index. An empty ID is
// auto-assigned ("s0007" for index 7); a duplicate ID is rejected with
// ErrDuplicateStructure. The structure must not be mutated after Add.
func (db *DB) Add(s *pdb.Structure) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s.ID == "" {
		s.ID = fmt.Sprintf("s%04d", len(db.structs))
	}
	if i, ok := db.index[s.ID]; ok {
		return i, fmt.Errorf("%w: %q is structure %d", ErrDuplicateStructure, s.ID, i)
	}
	i := len(db.structs)
	db.structs = append(db.structs, s)
	db.index[s.ID] = i
	return i, nil
}

// Lookup resolves a structure ID to its index and structure, or returns
// an error wrapping ErrUnknownStructure.
func (db *DB) Lookup(id string) (int, *pdb.Structure, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i, ok := db.index[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w %q", ErrUnknownStructure, id)
	}
	return i, db.structs[i], nil
}

// Len returns the number of stored structures.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.structs)
}

// Snapshot returns the structures in insertion order. The slice is a
// copy; the structures are shared (and immutable by convention).
func (db *DB) Snapshot() []*pdb.Structure {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*pdb.Structure(nil), db.structs...)
}
