package cluster

import (
	"strings"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// toy builds a matrix with two obvious groups {0,1,2} and {3,4}.
func toy() *Matrix {
	m := NewMatrix([]string{"a1", "a2", "a3", "b1", "b2"})
	hi := func(i, j int) { m.Set(i, j, 0.8) }
	lo := func(i, j int) { m.Set(i, j, 0.2) }
	hi(0, 1)
	hi(0, 2)
	hi(1, 2)
	hi(3, 4)
	lo(0, 3)
	lo(0, 4)
	lo(1, 3)
	lo(1, 4)
	lo(2, 3)
	lo(2, 4)
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := toy()
	if m.Len() != 5 || m.Name(3) != "b1" {
		t.Fatal("matrix metadata")
	}
	if m.At(0, 0) != 1 {
		t.Error("diagonal must be 1")
	}
	if m.At(0, 1) != m.At(1, 0) {
		t.Error("matrix not symmetric")
	}
}

func TestRank(t *testing.T) {
	m := toy()
	hits := m.Rank(0)
	if len(hits) != 4 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Score < hits[1].Score || hits[1].Score < hits[2].Score {
		t.Error("hits not sorted")
	}
	// a2, a3 before b1, b2.
	if !strings.HasPrefix(hits[0].Name, "a") || !strings.HasPrefix(hits[1].Name, "a") {
		t.Errorf("wrong top hits: %v", hits)
	}
}

func TestSingleLinkage(t *testing.T) {
	m := toy()
	cl := m.SingleLinkage(0.5)
	if len(cl) != 2 {
		t.Fatalf("clusters = %v", cl)
	}
	if len(cl[0]) != 3 || cl[0][0] != 0 || cl[0][2] != 2 {
		t.Errorf("first cluster = %v", cl[0])
	}
	if len(cl[1]) != 2 || cl[1][0] != 3 {
		t.Errorf("second cluster = %v", cl[1])
	}
	// Threshold above everything: singletons.
	if got := m.SingleLinkage(0.95); len(got) != 5 {
		t.Errorf("high threshold gave %d clusters", len(got))
	}
	// Threshold below everything: one cluster.
	if got := m.SingleLinkage(0.1); len(got) != 1 {
		t.Errorf("low threshold gave %d clusters", len(got))
	}
}

func TestAverageLinkageHistory(t *testing.T) {
	m := toy()
	merges := m.AverageLinkage()
	if len(merges) != 4 {
		t.Fatalf("merges = %d, want n-1", len(merges))
	}
	for i := 1; i < len(merges); i++ {
		if merges[i].Similarity > merges[i-1].Similarity+1e-9 {
			t.Errorf("merge similarities not descending: %v then %v",
				merges[i-1].Similarity, merges[i].Similarity)
		}
	}
	// First merges join within-group pairs at 0.8.
	if merges[0].Similarity != 0.8 {
		t.Errorf("first merge at %v", merges[0].Similarity)
	}
}

func TestCutAverageLinkage(t *testing.T) {
	m := toy()
	cl := m.CutAverageLinkage(0.5)
	if len(cl) != 2 || len(cl[0]) != 3 || len(cl[1]) != 2 {
		t.Errorf("cut clusters = %v", cl)
	}
}

func TestPurity(t *testing.T) {
	labels := []string{"a", "a", "a", "b", "b"}
	if p := Purity([][]int{{0, 1, 2}, {3, 4}}, labels); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	if p := Purity([][]int{{0, 1, 3}, {2, 4}}, labels); p != 0.6 {
		t.Errorf("mixed purity = %v, want 0.6", p)
	}
	if Purity(nil, labels) != 0 {
		t.Error("empty purity")
	}
}

func TestTopKAccuracy(t *testing.T) {
	m := toy()
	labels := []string{"a", "a", "a", "b", "b"}
	if acc := m.TopKAccuracy(labels, 2); acc != 1 {
		t.Errorf("toy top-2 accuracy = %v, want 1", acc)
	}
	// All-distinct labels: no queries have partners.
	if acc := m.TopKAccuracy([]string{"p", "q", "r", "s", "t"}, 2); acc != 0 {
		t.Errorf("no-partner accuracy = %v", acc)
	}
}

func TestEndToEndOnSyntheticFamilies(t *testing.T) {
	ds := synth.Small(8, 404) // fa* and fb* families
	pr := core.ComputeAllPairs(ds, tmalign.FastOptions(), 0)
	m := FromPairResults(pr)

	labels := make([]string, ds.Len())
	for i, s := range ds.Structures {
		labels[i] = s.ID[:2] // "fa" or "fb"
	}
	cl := m.SingleLinkage(0.5)
	if len(cl) != 2 {
		t.Fatalf("expected the two synthetic families, got %d clusters:\n%s",
			len(cl), FormatClusters(m, cl))
	}
	if p := Purity(cl, labels); p != 1 {
		t.Errorf("family purity = %v", p)
	}
	if acc := m.TopKAccuracy(labels, 3); acc < 0.99 {
		t.Errorf("retrieval accuracy = %v", acc)
	}
	out := FormatClusters(m, cl)
	if !strings.Contains(out, "fa01") || !strings.Contains(out, "fb01") {
		t.Errorf("FormatClusters output:\n%s", out)
	}
}

func TestDendrogram(t *testing.T) {
	m := toy()
	out := m.Dendrogram()
	// Every structure name appears exactly once.
	for i := 0; i < m.Len(); i++ {
		if got := strings.Count(out, m.Name(i)); got != 1 {
			t.Errorf("name %s appears %d times:\n%s", m.Name(i), got, out)
		}
	}
	// The tight within-group join (0.8) and the loose cross-group join
	// must both be visible.
	if !strings.Contains(out, "[0.800]") {
		t.Errorf("missing 0.8 join:\n%s", out)
	}
	// n-1 = 4 internal joins.
	if got := strings.Count(out, "["); got != 4 {
		t.Errorf("internal nodes = %d, want 4:\n%s", got, out)
	}
	// Single structure: trivial output.
	single := NewMatrix([]string{"only"})
	if single.Dendrogram() != "only\n" {
		t.Errorf("single dendrogram = %q", single.Dendrogram())
	}
}

func TestMatrixCSV(t *testing.T) {
	m := toy()
	csv := m.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name,a1,a2") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.0000") || !strings.Contains(lines[1], "0.8000") {
		t.Errorf("row = %q", lines[1])
	}
}
