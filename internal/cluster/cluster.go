// Package cluster consumes the all-vs-all comparison results the way
// the paper's introduction motivates: ranked retrieval ("retrieve a
// ranked list of proteins, where structurally similar proteins are
// ranked higher") and fold-family detection from the TM-score matrix.
// It provides single-linkage clustering at a similarity threshold (the
// conventional TM > 0.5 "same fold" rule) and average-linkage
// agglomerative clustering with a cuttable merge history.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"rckalign/internal/core"
)

// Matrix is a symmetric similarity matrix over named structures.
type Matrix struct {
	names []string
	vals  []float64 // n x n row-major, diagonal = 1
}

// NewMatrix creates an n x n matrix (diagonal 1, off-diagonal 0) over
// the given names.
func NewMatrix(names []string) *Matrix {
	n := len(names)
	m := &Matrix{names: append([]string(nil), names...), vals: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		m.vals[i*n+i] = 1
	}
	return m
}

// FromPairResults builds the TM-score similarity matrix of an
// all-vs-all run (mean of the two normalisations, symmetric).
func FromPairResults(pr *core.PairResults) *Matrix {
	names := make([]string, pr.Dataset.Len())
	for i, s := range pr.Dataset.Structures {
		names[i] = s.ID
	}
	m := NewMatrix(names)
	for k, p := range pr.Pairs {
		m.Set(p.I, p.J, pr.Results[k].TM())
	}
	return m
}

// Len returns the number of structures.
func (m *Matrix) Len() int { return len(m.names) }

// Name returns the name of structure i.
func (m *Matrix) Name(i int) string { return m.names[i] }

// At returns the similarity of structures i and j.
func (m *Matrix) At(i, j int) float64 { return m.vals[i*len(m.names)+j] }

// Set stores a symmetric similarity.
func (m *Matrix) Set(i, j int, v float64) {
	n := len(m.names)
	m.vals[i*n+j] = v
	m.vals[j*n+i] = v
}

// Hit is one entry of a ranked retrieval list.
type Hit struct {
	Index int
	Name  string
	Score float64
}

// Rank returns every other structure ordered by descending similarity
// to the query — the one-vs-all retrieval task from the paper's
// introduction.
func (m *Matrix) Rank(query int) []Hit {
	hits := make([]Hit, 0, m.Len()-1)
	for i := 0; i < m.Len(); i++ {
		if i == query {
			continue
		}
		hits = append(hits, Hit{Index: i, Name: m.names[i], Score: m.At(query, i)})
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	return hits
}

// SingleLinkage returns the connected components of the "similarity >=
// threshold" graph (union-find), each sorted by index; components are
// ordered by size descending, then by first member.
func (m *Matrix) SingleLinkage(threshold float64) [][]int {
	n := m.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.At(i, j) >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// Merge records one agglomerative step: clusters A and B (identified by
// their member lists at merge time) joined at the given similarity.
type Merge struct {
	A, B       []int
	Similarity float64
}

// AverageLinkage runs full agglomerative clustering with average
// linkage (UPGMA) and returns the merge history from most to least
// similar.
func (m *Matrix) AverageLinkage() []Merge {
	n := m.Len()
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	var merges []Merge
	avg := func(a, b []int) float64 {
		s := 0.0
		for _, i := range a {
			for _, j := range b {
				s += m.At(i, j)
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > 1 {
		bi, bj, bs := 0, 1, -1.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := avg(clusters[i], clusters[j]); s > bs {
					bi, bj, bs = i, j, s
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		merges = append(merges, Merge{A: append([]int(nil), a...), B: append([]int(nil), b...), Similarity: bs})
		joined := append(append([]int(nil), a...), b...)
		sort.Ints(joined)
		clusters[bi] = joined
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return merges
}

// CutAverageLinkage returns the clusters obtained by stopping the
// average-linkage agglomeration at the given similarity threshold
// (merges below it are not applied).
func (m *Matrix) CutAverageLinkage(threshold float64) [][]int {
	n := m.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, mg := range m.AverageLinkage() {
		if mg.Similarity < threshold {
			break
		}
		parent[find(mg.A[0])] = find(mg.B[0])
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// Purity scores a clustering against ground-truth labels: the fraction
// of structures whose cluster's majority label matches their own.
func Purity(clusters [][]int, labels []string) float64 {
	total := 0
	correct := 0
	for _, c := range clusters {
		counts := map[string]int{}
		for _, i := range c {
			counts[labels[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
		total += len(c)
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// TopKAccuracy measures retrieval quality: for each query, the fraction
// of its top-k hits sharing the query's label, averaged over queries
// with at least one same-label partner.
func (m *Matrix) TopKAccuracy(labels []string, k int) float64 {
	if k < 1 {
		k = 1
	}
	sum, queries := 0.0, 0
	for q := 0; q < m.Len(); q++ {
		partners := 0
		for i, l := range labels {
			if i != q && l == labels[q] {
				partners++
			}
		}
		if partners == 0 {
			continue
		}
		kk := k
		if kk > partners {
			kk = partners
		}
		hits := m.Rank(q)
		good := 0
		for _, h := range hits[:kk] {
			if labels[h.Index] == labels[q] {
				good++
			}
		}
		sum += float64(good) / float64(kk)
		queries++
	}
	if queries == 0 {
		return 0
	}
	return sum / float64(queries)
}

// FormatClusters renders clusters as "size: name name ..." lines.
func FormatClusters(m *Matrix, clusters [][]int) string {
	out := ""
	for _, c := range clusters {
		out += fmt.Sprintf("%3d:", len(c))
		for _, i := range c {
			out += " " + m.Name(i)
		}
		out += "\n"
	}
	return out
}

// CSV renders the full similarity matrix as CSV with a name header row
// and column, for external analysis or plotting.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("name")
	for i := 0; i < m.Len(); i++ {
		b.WriteByte(',')
		b.WriteString(m.Name(i))
	}
	b.WriteByte('\n')
	for i := 0; i < m.Len(); i++ {
		b.WriteString(m.Name(i))
		for j := 0; j < m.Len(); j++ {
			fmt.Fprintf(&b, ",%.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
