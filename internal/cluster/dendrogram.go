package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// node is one vertex of the reconstructed merge tree.
type node struct {
	leaf       int // structure index, -1 for internal nodes
	similarity float64
	left       *node
	right      *node
}

// Dendrogram renders the average-linkage merge history as an ASCII tree:
// internal nodes show the similarity at which their subtrees joined,
// leaves show structure names. Reading the tree top-down replays the
// agglomeration from loosest to tightest join.
func (m *Matrix) Dendrogram() string {
	merges := m.AverageLinkage()
	// Reconstruct the binary tree: a cluster is identified by its sorted
	// member list.
	key := func(members []int) string {
		parts := make([]string, len(members))
		for i, v := range members {
			parts[i] = fmt.Sprint(v)
		}
		return strings.Join(parts, ",")
	}
	nodes := map[string]*node{}
	for i := 0; i < m.Len(); i++ {
		nodes[key([]int{i})] = &node{leaf: i}
	}
	var root *node
	for _, mg := range merges {
		a := nodes[key(mg.A)]
		b := nodes[key(mg.B)]
		joined := append(append([]int(nil), mg.A...), mg.B...)
		sort.Ints(joined)
		n := &node{leaf: -1, similarity: mg.Similarity, left: a, right: b}
		nodes[key(joined)] = n
		root = n
	}
	if root == nil {
		if m.Len() == 1 {
			return m.Name(0) + "\n"
		}
		return "(empty)\n"
	}

	var b strings.Builder
	var render func(n *node, prefix string, isLast bool)
	render = func(n *node, prefix string, isLast bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if isLast {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if n.leaf >= 0 {
			fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, m.Name(n.leaf))
			return
		}
		fmt.Fprintf(&b, "%s%s[%.3f]\n", prefix, connector, n.similarity)
		render(n.left, childPrefix, false)
		render(n.right, childPrefix, true)
	}
	fmt.Fprintf(&b, "[%.3f]\n", root.similarity)
	render(root.left, "", false)
	render(root.right, "", true)
	return b.String()
}
