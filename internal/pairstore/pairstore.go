// Package pairstore is a deterministic, memoized store of pairwise
// comparison results evaluated natively on the host. Pair results are
// pure functions of the two structures and the kernel parameters, so
// they can be computed once — on all available host cores — and reused
// by every simulated run, sweep point and experiment configuration that
// needs them, turning O(configs x pairs) native kernel work into
// O(pairs).
//
// Determinism contract: the store never influences *what* a simulation
// computes, only *when the host computes it*. A stored value must come
// from a pure compute function (same key -> same value, bit for bit);
// the simulators keep charging simulated time from the operation
// counts embedded in the stored result, so host parallelism moves
// wall-clock time and nothing else. See DESIGN.md.
package pairstore

import (
	"runtime"
	"sync"
)

// Key identifies one memoized pair evaluation: the dataset, the kernel
// (algorithm plus its parameters, e.g. tmalign.Options.Key()), and the
// two structure IDs in argument order. Order is significant — kernels
// are not assumed symmetric.
type Key struct {
	Dataset string
	Kernel  string
	A, B    string
}

// Stats counts what the store did.
type Stats struct {
	// Hits counts Get calls answered from an existing entry (including
	// waits on an in-flight computation).
	Hits int64
	// Misses counts Get calls (or prefetched keys) that ran the compute
	// function.
	Misses int64
}

// entry is one memoized slot; value is valid once ready is closed.
type entry struct {
	ready chan struct{}
	value any
}

// Store memoizes pair results with single-flight semantics: every key
// is computed exactly once, concurrent requesters wait for the first
// computation. All methods are safe for concurrent use; a nil *Store
// degrades to computing inline with no memoization, so call sites can
// thread an optional store without guards.
type Store struct {
	workers int

	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
}

// New builds a store whose Prefetch fans out over the given number of
// host worker goroutines (<= 0 selects GOMAXPROCS). A worker count of 1
// keeps all evaluation serial — the "host parallelism off" setting —
// while still memoizing.
func New(workers int) *Store {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Store{workers: workers, entries: map[Key]*entry{}}
}

// Workers returns the prefetch worker-pool size (0 for a nil store).
func (s *Store) Workers() int {
	if s == nil {
		return 0
	}
	return s.workers
}

// Len returns the number of memoized entries (including in-flight ones).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns the accumulated hit/miss counts.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// StatsSnapshot is a self-describing view of the store's effectiveness:
// the raw hit/miss counts plus the derived hit rate and the number of
// resident entries, captured atomically.
type StatsSnapshot struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses); 0 when the store is unused.
	HitRate float64 `json:"hit_rate"`
	// Entries is the number of memoized entries, including in-flight
	// computations.
	Entries int `json:"entries"`
}

// StatsSnapshot captures the hit/miss counters, the derived hit rate
// and the entry count under one lock acquisition, so concurrent readers
// (a server's /statsz handler) see a consistent view. A nil store
// snapshots as zero.
func (s *Store) StatsSnapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := StatsSnapshot{
		Hits:    s.stats.Hits,
		Misses:  s.stats.Misses,
		Entries: len(s.entries),
	}
	if total := snap.Hits + snap.Misses; total > 0 {
		snap.HitRate = float64(snap.Hits) / float64(total)
	}
	return snap
}

// Get returns the memoized value for k, computing it with compute on
// the calling goroutine if no other caller has. Concurrent Gets of the
// same key block until the first computation finishes and then share
// its value. compute must be pure. On a nil store, Get just runs
// compute.
func (s *Store) Get(k Key, compute func() any) any {
	v, _ := s.GetHit(k, compute)
	return v
}

// GetHit is Get plus the memoization outcome: hit is true when the
// value came from an existing entry (including waiting on another
// caller's in-flight computation) and false when this call ran compute.
// A request-tracing layer uses it to attribute each served pair to a
// memo hit or miss. On a nil store it runs compute and reports a miss.
func (s *Store) GetHit(k Key, compute func() any) (v any, hit bool) {
	if s == nil {
		return compute(), false
	}
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		<-e.ready
		return e.value, true
	}
	e := &entry{ready: make(chan struct{})}
	s.entries[k] = e
	s.stats.Misses++
	s.mu.Unlock()

	e.value = compute()
	close(e.ready)
	return e.value, false
}

// Prefetch evaluates all keys on the store's worker pool and memoizes
// the results; compute(i) must return the value for keys[i]. Keys that
// are already stored (or in flight from another caller) are not
// recomputed. Prefetch returns once every key is resident, so a
// subsequent Get on any of them is a lock-and-read. On a nil store it
// is a no-op — the values will be computed lazily at Get time instead.
func (s *Store) Prefetch(keys []Key, compute func(i int) any) {
	if s == nil || len(keys) == 0 {
		return
	}
	workers := s.workers
	if workers > len(keys) {
		workers = len(keys)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				i := i
				s.Get(keys[i], func() any { return compute(i) })
			}
		}()
	}
	for i := range keys {
		work <- i
	}
	close(work)
	wg.Wait()
}
