package pairstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(i int) Key {
	return Key{Dataset: "ds", Kernel: "k", A: fmt.Sprintf("a%d", i), B: fmt.Sprintf("b%d", i)}
}

func TestGetMemoizes(t *testing.T) {
	s := New(4)
	calls := 0
	for i := 0; i < 3; i++ {
		v := s.Get(key(1), func() any { calls++; return 42 })
		if v != 42 {
			t.Fatalf("Get = %v, want 42", v)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss / 2 hits", st)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestKeyOrderSignificant(t *testing.T) {
	s := New(1)
	s.Get(Key{Dataset: "d", Kernel: "k", A: "x", B: "y"}, func() any { return "xy" })
	v := s.Get(Key{Dataset: "d", Kernel: "k", A: "y", B: "x"}, func() any { return "yx" })
	if v != "yx" {
		t.Errorf("reversed key shared the entry: got %v", v)
	}
}

// TestGetSingleFlight: concurrent Gets of one key run compute exactly
// once and all observe its value (exercised under -race).
func TestGetSingleFlight(t *testing.T) {
	s := New(8)
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	values := make([]any, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			values[g] = s.Get(key(7), func() any {
				calls.Add(1)
				return "once"
			})
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	for g, v := range values {
		if v != "once" {
			t.Errorf("goroutine %d got %v", g, v)
		}
	}
}

// TestPrefetchParallelDeterministic: the prefetched values are
// identical regardless of worker count, and every key is computed
// exactly once even when Prefetch races with lazy Gets.
func TestPrefetchParallelDeterministic(t *testing.T) {
	const n = 100
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = key(i)
	}
	for _, workers := range []int{1, 8} {
		s := New(workers)
		var computes atomic.Int64
		compute := func(i int) any { computes.Add(1); return i * i }
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Prefetch(keys, compute)
		}()
		// Lazy consumers racing the prefetch must see the same values.
		for i := 0; i < n; i += 7 {
			i := i
			if v := s.Get(keys[i], func() any { return compute(i) }); v != i*i {
				t.Errorf("workers=%d key %d = %v, want %d", workers, i, v, i*i)
			}
		}
		wg.Wait()
		if computes.Load() != n {
			t.Errorf("workers=%d: %d computes, want %d", workers, computes.Load(), n)
		}
		if s.Len() != n {
			t.Errorf("workers=%d: Len = %d, want %d", workers, s.Len(), n)
		}
		for i := range keys {
			if v := s.Get(keys[i], func() any { t.Fatal("recompute"); return nil }); v != i*i {
				t.Errorf("workers=%d: key %d = %v after prefetch", workers, i, v)
			}
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Errorf("New(0).Workers() = %d, want >= 1 (GOMAXPROCS)", w)
	}
	if w := New(3).Workers(); w != 3 {
		t.Errorf("Workers() = %d, want 3", w)
	}
}

// TestNilStore: a nil *Store computes inline, memoizes nothing, and
// never panics — call sites can thread an optional store unguarded.
func TestNilStore(t *testing.T) {
	var s *Store
	calls := 0
	for i := 0; i < 2; i++ {
		if v := s.Get(key(1), func() any { calls++; return 5 }); v != 5 {
			t.Fatalf("nil Get = %v", v)
		}
	}
	if calls != 2 {
		t.Errorf("nil store memoized (%d calls)", calls)
	}
	s.Prefetch([]Key{key(1)}, func(int) any { t.Fatal("nil Prefetch computed"); return nil })
	if s.Len() != 0 || s.Workers() != 0 || (s.Stats() != Stats{}) {
		t.Error("nil store accessors not zero")
	}
}

func TestStatsSnapshot(t *testing.T) {
	var nilStore *Store
	if snap := nilStore.StatsSnapshot(); snap != (StatsSnapshot{}) {
		t.Errorf("nil store snapshot = %+v, want zero", snap)
	}
	s := New(2)
	if snap := s.StatsSnapshot(); snap.HitRate != 0 {
		t.Errorf("unused store hit rate = %v, want 0", snap.HitRate)
	}
	s.Get(key(1), func() any { return 1 })
	s.Get(key(1), func() any { return 1 })
	s.Get(key(1), func() any { return 1 })
	s.Get(key(2), func() any { return 2 })
	snap := s.StatsSnapshot()
	if snap.Hits != 2 || snap.Misses != 2 || snap.Entries != 2 {
		t.Errorf("snapshot = %+v, want 2 hits / 2 misses / 2 entries", snap)
	}
	if snap.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", snap.HitRate)
	}
}

// TestStatsSnapshotConcurrent reads snapshots while Gets are in flight;
// the race detector asserts the locking.
func TestStatsSnapshotConcurrent(t *testing.T) {
	s := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Get(key(i%10), func() any { return i })
				_ = s.StatsSnapshot()
			}
		}(w)
	}
	wg.Wait()
	snap := s.StatsSnapshot()
	if snap.Entries != 10 || snap.Hits+snap.Misses != 400 {
		t.Errorf("snapshot = %+v, want 10 entries and 400 gets", snap)
	}
}

// TestGetHitOutcome pins the memoization outcome GetHit reports: false
// on first computation, true on every later read — including a reader
// that waited on another caller's in-flight compute — and false with a
// miss-like compute on a nil store.
func TestGetHitOutcome(t *testing.T) {
	s := New(2)
	v, hit := s.GetHit(key(9), func() any { return 7 })
	if v != 7 || hit {
		t.Fatalf("first GetHit = (%v, %v), want (7, false)", v, hit)
	}
	v, hit = s.GetHit(key(9), func() any { t.Fatal("recomputed"); return nil })
	if v != 7 || !hit {
		t.Fatalf("second GetHit = (%v, %v), want (7, true)", v, hit)
	}

	// A waiter on an in-flight compute counts as a hit.
	begun := make(chan struct{})
	release := make(chan struct{})
	done := make(chan bool, 1)
	go s.GetHit(key(10), func() any { close(begun); <-release; return 1 })
	<-begun
	go func() {
		_, hit := s.GetHit(key(10), func() any { return 2 })
		done <- hit
	}()
	close(release)
	if hit := <-done; !hit {
		t.Error("waiter on in-flight compute reported a miss")
	}

	var nilStore *Store
	calls := 0
	v, hit = nilStore.GetHit(key(1), func() any { calls++; return 5 })
	if v != 5 || hit || calls != 1 {
		t.Errorf("nil-store GetHit = (%v, %v) after %d calls, want (5, false) after 1", v, hit, calls)
	}
}
