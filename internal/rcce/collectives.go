package rcce

import (
	"errors"
	"fmt"
	"sort"

	"rckalign/internal/sim"
)

// Collective operations in the style of RCCE's extended interface
// (RCCE_bcast / RCCE_reduce / RCCE_allreduce): every participant calls
// the same function from its own core process (SPMD), and the
// implementation moves data over a binomial tree of point-to-point
// Send/Recv pairs, so the cost model inherits the mesh timing
// automatically.

// ErrNotParticipant reports a collective called with a self or root
// core that is not in the participant set. A mis-set participant list
// is a configuration bug in the calling skeleton; surfacing it as an
// error lets SPMD code paths fail their run cleanly instead of tearing
// down the whole simulation with a panic.
var ErrNotParticipant = errors.New("rcce: caller is not a participant of the collective")

// rankOf returns core's position in the sorted participant list, and
// the sorted list.
func rankOf(core int, participants []int) (int, []int, error) {
	ps := append([]int(nil), participants...)
	sort.Ints(ps)
	for r, c := range ps {
		if c == core {
			return r, ps, nil
		}
	}
	return 0, nil, fmt.Errorf("%w: core %d not in %v", ErrNotParticipant, core, ps)
}

// Bcast distributes the root's payload to every participant. Each
// participant passes its own core id as self and the same participant
// set; the root passes the payload, others' payload argument is
// ignored. Returns the broadcast payload on every core, or
// ErrNotParticipant when self or root is outside the participant set.
func (c *Comm) Bcast(p *sim.Process, self, root int, participants []int, bytes int, payload any) (any, error) {
	rank, ps, err := rankOf(self, participants)
	if err != nil {
		return nil, err
	}
	rootRank, _, err := rankOf(root, participants)
	if err != nil {
		return nil, err
	}
	n := len(ps)
	// Rotate ranks so the root is rank 0.
	vrank := (rank - rootRank + n) % n
	unrotate := func(vr int) int { return ps[(vr+rootRank)%n] }

	if vrank != 0 {
		// Receive from the binomial parent: clear the lowest set bit.
		parent := vrank & (vrank - 1)
		m := c.Recv(p, unrotate(parent), self)
		payload = m.Payload
	}
	// Forward to children: vrank | (1<<k) for k above our lowest set
	// bit range.
	for bit := 1; bit < n; bit <<= 1 {
		if vrank&bit != 0 {
			break // we only send after the bit position of our own id
		}
		child := vrank | bit
		if child < n {
			c.Send(p, self, unrotate(child), bytes, payload)
		}
	}
	return payload, nil
}

// ReduceFn combines two partial values into one.
type ReduceFn func(a, b any) any

// Reduce combines every participant's value with fn down a binomial
// tree onto the root, which receives the full combination; other cores
// return nil. fn must be associative and commutative. Returns
// ErrNotParticipant when self or root is outside the participant set.
func (c *Comm) Reduce(p *sim.Process, self, root int, participants []int, bytes int, value any, fn ReduceFn) (any, error) {
	rank, ps, err := rankOf(self, participants)
	if err != nil {
		return nil, err
	}
	rootRank, _, err := rankOf(root, participants)
	if err != nil {
		return nil, err
	}
	n := len(ps)
	vrank := (rank - rootRank + n) % n
	unrotate := func(vr int) int { return ps[(vr+rootRank)%n] }

	acc := value
	// Gather from children (reverse of the bcast order).
	for bit := 1; bit < n; bit <<= 1 {
		if vrank&bit != 0 {
			break
		}
		child := vrank | bit
		if child < n {
			m := c.Recv(p, unrotate(child), self)
			acc = fn(acc, m.Payload)
		}
	}
	if vrank != 0 {
		parent := vrank & (vrank - 1)
		c.Send(p, self, unrotate(parent), bytes, acc)
		return nil, nil
	}
	return acc, nil
}

// AllReduce combines every participant's value and delivers the result
// to all of them (Reduce onto the lowest-ranked core, then Bcast).
func (c *Comm) AllReduce(p *sim.Process, self int, participants []int, bytes int, value any, fn ReduceFn) (any, error) {
	_, ps, err := rankOf(self, participants)
	if err != nil {
		return nil, err
	}
	root := ps[0]
	acc, err := c.Reduce(p, self, root, participants, bytes, value, fn)
	if err != nil {
		return nil, err
	}
	return c.Bcast(p, self, root, participants, bytes, acc)
}

// Gather collects every participant's value at the root in rank order;
// non-roots return nil. Implemented as direct sends (RCCE's flat
// gather), which keeps the ordering deterministic. Returns
// ErrNotParticipant when self or root is outside the participant set.
func (c *Comm) Gather(p *sim.Process, self, root int, participants []int, bytes int, value any) ([]any, error) {
	rank, ps, err := rankOf(self, participants)
	if err != nil {
		return nil, err
	}
	rootRank, _, err := rankOf(root, participants)
	if err != nil {
		return nil, err
	}
	if rank != rootRank {
		c.Send(p, self, root, bytes, value)
		return nil, nil
	}
	out := make([]any, len(ps))
	out[rank] = value
	for r, core := range ps {
		if r == rootRank {
			continue
		}
		m := c.Recv(p, core, self)
		out[r] = m.Payload
	}
	return out, nil
}
