package rcce

import (
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/sim"
)

func TestISendIRecvDeliver(t *testing.T) {
	e, c := newComm()
	var got Message
	c.Chip().SpawnCore(0, func(p *sim.Process) {
		req := c.ISend(p, 0, 9, 4096, "async")
		req.Wait(p)
		if !req.Done() {
			t.Error("ISend not done after Wait")
		}
	})
	c.Chip().SpawnCore(9, func(p *sim.Process) {
		req := c.IRecv(p, 0, 9)
		got = req.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "async" || got.Bytes != 4096 {
		t.Errorf("got %+v", got)
	}
}

func TestOverlapComputeWithCommunication(t *testing.T) {
	// A core that ISends and then computes should finish in
	// ~max(compute, transfer), not the sum: the defining property of
	// non-blocking communication.
	computeOps := costmodel.Counter{DPCells: 50_000_000}

	run := func(nonblocking bool) float64 {
		e, c := newComm()
		var done float64
		c.Chip().SpawnCore(0, func(p *sim.Process) {
			if nonblocking {
				req := c.ISend(p, 0, 47, 8*1024*1024, nil) // big transfer
				c.Chip().Compute(p, computeOps)
				req.Wait(p)
			} else {
				c.Send(p, 0, 47, 8*1024*1024, nil)
				c.Chip().Compute(p, computeOps)
			}
			done = p.Now()
		})
		c.Chip().SpawnCore(47, func(p *sim.Process) {
			c.Recv(p, 0, 47)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	blocking := run(false)
	overlapped := run(true)
	if overlapped >= blocking {
		t.Errorf("non-blocking (%v) should beat blocking (%v)", overlapped, blocking)
	}
	compute := c0computeSeconds(computeOps)
	if overlapped < compute {
		t.Errorf("overlapped time %v below compute floor %v", overlapped, compute)
	}
}

func c0computeSeconds(ops costmodel.Counter) float64 {
	return costmodel.P54C().Seconds(ops)
}

func TestDoneBeforeWait(t *testing.T) {
	e, c := newComm()
	var wasDone bool
	c.Chip().SpawnCore(0, func(p *sim.Process) {
		req := c.ISend(p, 0, 1, 16, 7)
		p.Wait(1.0) // plenty of time for the 16-byte transfer
		wasDone = req.Done()
		req.Wait(p) // must not block now
	})
	c.Chip().SpawnCore(1, func(p *sim.Process) {
		c.Recv(p, 0, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !wasDone {
		t.Error("request not done after ample time")
	}
}

func TestWaitAll(t *testing.T) {
	e, c := newComm()
	var msgs []Message
	c.Chip().SpawnCore(5, func(p *sim.Process) {
		r1 := c.IRecv(p, 0, 5)
		r2 := c.IRecv(p, 1, 5)
		msgs = WaitAll(p, r1, r2)
	})
	c.Chip().SpawnCore(0, func(p *sim.Process) { c.Send(p, 0, 5, 8, "a") })
	c.Chip().SpawnCore(1, func(p *sim.Process) { c.Send(p, 1, 5, 8, "b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Payload != "a" || msgs[1].Payload != "b" {
		t.Errorf("WaitAll = %v", msgs)
	}
}

func TestUnmatchedIRecvDeadlocks(t *testing.T) {
	e, c := newComm()
	c.Chip().SpawnCore(3, func(p *sim.Process) {
		c.IRecv(p, 0, 3).Wait(p)
	})
	if err := e.Run(); err == nil {
		t.Error("expected deadlock for unmatched IRecv")
	}
}
