// Package rcce is a simulation-backed analogue of Intel's RCCE library,
// the "small library for many-core communication" that the paper's
// rckskel builds on: blocking point-to-point Send/Recv between SCC cores
// and a whole-chip barrier. Large messages are chunked through the 8 KB
// per-core share of the tile MPBs and each chunk crosses the simulated
// mesh, so transfer times depend on message size, hop distance and link
// contention exactly as the hardware's would.
package rcce

import (
	"fmt"

	"rckalign/internal/scc"
	"rckalign/internal/sim"
)

// Message is what travels between cores: an opaque payload plus its
// modelled wire size.
type Message struct {
	Src, Dst int
	Bytes    int
	Payload  any
}

// Comm provides RCCE-style communication on one chip.
type Comm struct {
	chip *scc.Chip
	// pairs[src][dst]: req carries the message at rendezvous; done
	// releases the receiver when the chunked transfer completes.
	pairs map[[2]int]*pairChans
	// flagCost is the time for the master's remote poll of a core's MPB
	// ready flag (one mesh round trip of a flag-sized packet).
	barrier *sim.Barrier
}

type pairChans struct {
	req  *sim.Chan
	done *sim.Chan
}

// New builds a Comm for the chip.
func New(chip *scc.Chip) *Comm {
	return &Comm{chip: chip, pairs: map[[2]int]*pairChans{}}
}

// Chip returns the underlying chip.
func (c *Comm) Chip() *scc.Chip { return c.chip }

func (c *Comm) pair(src, dst int) *pairChans {
	k := [2]int{src, dst}
	pc, ok := c.pairs[k]
	if !ok {
		pc = &pairChans{
			req:  sim.NewChan(fmt.Sprintf("rcce.req.%d->%d", src, dst)),
			done: sim.NewChan(fmt.Sprintf("rcce.done.%d->%d", src, dst)),
		}
		c.pairs[k] = pc
	}
	return pc
}

// chunkOverhead is the per-chunk protocol cost beyond raw transfer: MPB
// flag write + test&set round trip, a few hundred core cycles.
func (c *Comm) chunkOverhead() float64 {
	return 600 / c.chip.Config().CPU.FreqHz
}

// Send transmits a message from core src (the calling process) to core
// dst, blocking until the receiver has taken delivery (RCCE_send
// semantics: synchronous, rendezvous).
func (c *Comm) Send(p *sim.Process, src, dst, bytes int, payload any) {
	if bytes < 1 {
		bytes = 1
	}
	pc := c.pair(src, dst)
	pc.req.Send(p, Message{Src: src, Dst: dst, Bytes: bytes, Payload: payload})
	// Rendezvous reached: the receiver is parked on done. The sender
	// stages the payload out of its DRAM (through its quadrant's iMC),
	// then drives the chunked MPB transfer across the mesh.
	c.chip.MemAccess(p, src, bytes)
	chunk := c.chip.Config().MPBPerCore()
	remaining := bytes
	for remaining > 0 {
		n := remaining
		if n > chunk {
			n = chunk
		}
		c.chip.Transfer(p, src, dst, n)
		p.Wait(c.chunkOverhead())
		remaining -= n
	}
	pc.done.Send(p, struct{}{})
}

// Recv blocks the calling process (core dst) until a message from src
// arrives and its transfer completes, then returns it.
func (c *Comm) Recv(p *sim.Process, src, dst int) Message {
	pc := c.pair(src, dst)
	m := pc.req.Recv(p).(Message)
	pc.done.Recv(p)
	return m
}

// Probe reports whether a sender on (src, dst) is already blocked in
// Send — the simulation analogue of testing the sender's MPB ready flag.
// It consumes no simulated time; callers model the flag-read cost with
// PollCost.
func (c *Comm) Probe(src, dst int) bool {
	return c.pair(src, dst).req.Pending() > 0
}

// PollCost returns the simulated time for core `at` to read the MPB flag
// of core `of`: one flag-sized mesh round trip.
func (c *Comm) PollCost(at, of int) float64 {
	mesh := c.chip.Mesh()
	hops := mesh.Hops(c.chip.CoordOf(at), c.chip.CoordOf(of))
	if hops == 0 {
		hops = 1
	}
	cfg := mesh.Config()
	// Round trip of one flag packet plus the local test.
	return 2*float64(hops)*cfg.HopSeconds + 32/cfg.BytesPerSecond
}

// Barrier blocks until every one of n participants has entered
// (RCCE_barrier over the power-of-two dissemination pattern is modelled
// as a fixed flag exchange cost per participant).
func (c *Comm) Barrier(p *sim.Process, n int) {
	if c.barrier == nil {
		c.barrier = sim.NewBarrier("rcce", n)
	}
	p.Wait(c.PollCost(0, c.chip.NumCores()-1)) // flag exchange cost
	c.barrier.Wait(p)
}

// ResetBarrier prepares the barrier for reuse with a new participant
// count.
func (c *Comm) ResetBarrier(n int) { c.barrier = sim.NewBarrier("rcce", n) }
