// Package rcce is a simulation-backed analogue of Intel's RCCE library,
// the "small library for many-core communication" that the paper's
// rckskel builds on: blocking point-to-point Send/Recv between SCC cores
// and a whole-chip barrier. Large messages are chunked through the 8 KB
// per-core share of the tile MPBs and each chunk crosses the simulated
// mesh, so transfer times depend on message size, hop distance and link
// contention exactly as the hardware's would.
//
// For fault injection, an optional Interposer observes every message at
// the wire and may drop, delay or corrupt it. The wire model carries a
// per-chunk checksum (folded into the chunk protocol overhead), so a
// corrupted message arrives with its Corrupt flag raised — detectable by
// the receiver, exactly like a checksum mismatch on hardware.
package rcce

import (
	"fmt"

	"rckalign/internal/metrics"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
)

// Message is what travels between cores: an opaque payload plus its
// modelled wire size.
type Message struct {
	Src, Dst int
	Bytes    int
	Payload  any
	// SentAt is the simulated time the sender entered Send — the moment
	// its ready flag went up. Receivers use it to attribute how long a
	// message sat waiting for them (the master-mailbox collect-wait).
	SentAt float64
	// Corrupt marks a payload damaged on the wire; the receiver detects
	// it via the chunk checksums (the payload itself is preserved in the
	// simulation, only the flag is raised).
	Corrupt bool
	// done fires when the chunked transfer completes; the receiver joins
	// it. A latch (not a rendezvous) so a sender never blocks on a
	// receiver that died or stalled mid-transfer.
	done *sim.Latch
}

// Outcome is an Interposer's verdict on one message.
type Outcome struct {
	// Drop discards the message on the wire: the sender still pays the
	// staging and transfer cost, but no receiver ever sees it.
	Drop bool
	// DelaySeconds adds transfer latency (congestion, retransmits).
	DelaySeconds float64
	// Corrupt delivers the message with its checksum flag raised.
	Corrupt bool
}

// Interposer observes every Send at the wire, before delivery. It runs
// inside the sending process's context and must not block.
type Interposer interface {
	Deliver(p *sim.Process, m *Message) Outcome
}

// Comm provides RCCE-style communication on one chip.
type Comm struct {
	chip *scc.Chip
	// pairs[src][dst]: req carries the message (with its completion
	// latch) at rendezvous.
	pairs map[[2]int]*pairChans
	// inter, when non-nil, is consulted for every Send.
	inter   Interposer
	barrier *sim.Barrier

	// Observability handles (nil unless SetMetrics installed a registry).
	cSendMsgs  *metrics.Counter
	cSendBytes *metrics.Counter
	hMsgBytes  *metrics.Histogram
	sentBytes  map[int]*metrics.Counter
	recvBytes  map[int]*metrics.Counter
}

// SetMetrics installs a metrics registry: every Send records message
// count, wire bytes and a size histogram, plus per-core sent/received
// byte volumes ("rcce.core.sent_bytes{core=rckNN}" and
// "rcce.core.recv_bytes{core=rckNN}"). Passive — no simulated time is
// consumed. Passing nil disables recording again.
//
// labels are optional extra key/value label pairs appended to every
// fixed metric key (a multi-chip system scopes each comm with "chip",
// "cN"); the per-core keys are already distinct through the chip's core
// name prefix. No labels keeps the classic keys bit-identical.
func (c *Comm) SetMetrics(reg *metrics.Registry, labels ...string) {
	c.cSendMsgs = reg.Counter("rcce.send.messages", labels...)
	c.cSendBytes = reg.Counter("rcce.send.bytes", labels...)
	c.hMsgBytes = reg.Histogram("rcce.message.bytes", metrics.SizeBuckets, labels...)
	if reg == nil {
		c.sentBytes, c.recvBytes = nil, nil
		return
	}
	c.sentBytes = make(map[int]*metrics.Counter, c.chip.NumCores())
	c.recvBytes = make(map[int]*metrics.Counter, c.chip.NumCores())
	for core := 0; core < c.chip.NumCores(); core++ {
		name := c.chip.CoreName(core)
		c.sentBytes[core] = reg.Counter("rcce.core.sent_bytes", "core", name)
		c.recvBytes[core] = reg.Counter("rcce.core.recv_bytes", "core", name)
	}
}

type pairChans struct {
	req *sim.Chan
}

// New builds a Comm for the chip.
func New(chip *scc.Chip) *Comm {
	return &Comm{chip: chip, pairs: map[[2]int]*pairChans{}}
}

// Chip returns the underlying chip.
func (c *Comm) Chip() *scc.Chip { return c.chip }

// SetInterposer installs the wire-fault interposer (nil = perfect wire).
func (c *Comm) SetInterposer(i Interposer) { c.inter = i }

func (c *Comm) pair(src, dst int) *pairChans {
	k := [2]int{src, dst}
	pc, ok := c.pairs[k]
	if !ok {
		pc = &pairChans{req: sim.NewChan(fmt.Sprintf("rcce.req.%d->%d", src, dst))}
		c.pairs[k] = pc
	}
	return pc
}

// chunkOverhead is the per-chunk protocol cost beyond raw transfer: MPB
// flag write + test&set round trip plus the chunk checksum, a few
// hundred core cycles.
func (c *Comm) chunkOverhead() float64 {
	return 600 / c.chip.Config().CPU.FreqHz
}

// transferChunks drives the chunked MPB transfer of bytes across the
// mesh from within process p.
func (c *Comm) transferChunks(p *sim.Process, src, dst, bytes int) {
	chunk := c.chip.Config().MPBPerCore()
	remaining := bytes
	for remaining > 0 {
		n := remaining
		if n > chunk {
			n = chunk
		}
		c.chip.Transfer(p, src, dst, n)
		p.Wait(c.chunkOverhead())
		remaining -= n
	}
}

// Send transmits a message from core src (the calling process) to core
// dst, blocking until the receiver has taken delivery (RCCE_send
// semantics: synchronous, rendezvous). Under an interposer, a dropped
// message costs the sender the full staging and transfer time but never
// reaches a receiver, and the sender does not wait for one.
func (c *Comm) Send(p *sim.Process, src, dst, bytes int, payload any) {
	if bytes < 1 {
		bytes = 1
	}
	m := Message{Src: src, Dst: dst, Bytes: bytes, Payload: payload, SentAt: p.Now(), done: sim.NewLatch("rcce.done")}
	c.cSendMsgs.Inc()
	c.cSendBytes.Add(float64(bytes))
	c.hMsgBytes.Observe(float64(bytes))
	c.sentBytes[src].Add(float64(bytes))
	var out Outcome
	if c.inter != nil {
		out = c.inter.Deliver(p, &m)
	}
	if out.Drop {
		// The bits leave the sender and cross the mesh, then vanish
		// (dead destination, or discarded by a faulty link).
		c.chip.MemAccess(p, src, bytes)
		c.transferChunks(p, src, dst, bytes)
		return
	}
	m.Corrupt = m.Corrupt || out.Corrupt
	p.SetBlockDetail(fmt.Sprintf("rcce send %d->%d (%d bytes)", src, dst, bytes))
	c.pair(src, dst).req.Send(p, m)
	// Rendezvous reached: the receiver is joined on the message's done
	// latch. The sender stages the payload out of its DRAM (through its
	// quadrant's iMC), then drives the chunked MPB transfer.
	c.chip.MemAccess(p, src, bytes)
	if out.DelaySeconds > 0 {
		p.Wait(out.DelaySeconds)
	}
	c.transferChunks(p, src, dst, bytes)
	m.done.Set()
	p.SetBlockDetail("")
}

// RecvTiming decomposes one Recv: WaitSeconds is the time spent blocked
// before the sender's rendezvous (the message "wasn't there yet"), and
// XferSeconds is the chunked MPB transfer time after rendezvous.
type RecvTiming struct {
	WaitSeconds float64
	XferSeconds float64
}

// Recv blocks the calling process (core dst) until a message from src
// arrives and its transfer completes, then returns it. Check
// Message.Corrupt before trusting the payload when faults are modelled.
func (c *Comm) Recv(p *sim.Process, src, dst int) Message {
	m, _ := c.RecvTimed(p, src, dst)
	return m
}

// RecvTimed is Recv with the wait/transfer split reported alongside the
// message; the farm layers use it to decompose per-job latencies.
func (c *Comm) RecvTimed(p *sim.Process, src, dst int) (Message, RecvTiming) {
	p.SetBlockDetail(fmt.Sprintf("rcce recv %d<-%d", dst, src))
	pc := c.pair(src, dst)
	start := p.Now()
	m := pc.req.Recv(p).(Message)
	rdv := p.Now()
	m.done.Wait(p)
	p.SetBlockDetail("")
	c.recvBytes[dst].Add(float64(m.Bytes))
	return m, RecvTiming{WaitSeconds: rdv - start, XferSeconds: p.Now() - rdv}
}

// RecvTimeout is Recv with a deadline over the whole operation (waiting
// for the sender plus the transfer). It returns ok=false when the
// deadline passes first — the sender may still be mid-transfer; its
// completion latch fires into the void.
func (c *Comm) RecvTimeout(p *sim.Process, src, dst int, d float64) (Message, bool) {
	p.SetBlockDetail(fmt.Sprintf("rcce recv %d<-%d (timeout %.3gs)", dst, src, d))
	defer p.SetBlockDetail("")
	pc := c.pair(src, dst)
	start := p.Now()
	v, ok := pc.req.RecvTimeout(p, d)
	if !ok {
		return Message{}, false
	}
	m := v.(Message)
	remaining := d - (p.Now() - start)
	if remaining < 0 {
		remaining = 0
	}
	if !m.done.WaitTimeout(p, remaining) {
		return Message{}, false
	}
	c.recvBytes[dst].Add(float64(m.Bytes))
	return m, true
}

// RecvOrLatch is Recv aborted by a latch: it returns ok=false once l
// fires with no message rendezvous yet. The slave loops of fault-
// tolerant farms use it to observe the master's broadcast stop flag.
func (c *Comm) RecvOrLatch(p *sim.Process, src, dst int, l *sim.Latch) (Message, bool) {
	p.SetBlockDetail(fmt.Sprintf("rcce recv %d<-%d (or stop)", dst, src))
	defer p.SetBlockDetail("")
	pc := c.pair(src, dst)
	v, ok := pc.req.RecvOrLatch(p, l)
	if !ok {
		return Message{}, false
	}
	m := v.(Message)
	m.done.Wait(p)
	c.recvBytes[dst].Add(float64(m.Bytes))
	return m, true
}

// Probe reports whether a sender on (src, dst) is already blocked in
// Send — the simulation analogue of testing the sender's MPB ready flag.
// It consumes no simulated time; callers model the flag-read cost with
// PollCost. Senders that died mid-handshake are not reported.
func (c *Comm) Probe(src, dst int) bool {
	return c.pair(src, dst).req.Pending() > 0
}

// PollCost returns the simulated time for core `at` to read the MPB flag
// of core `of`: one flag-sized mesh round trip.
func (c *Comm) PollCost(at, of int) float64 {
	mesh := c.chip.Mesh()
	hops := mesh.Hops(c.chip.CoordOf(at), c.chip.CoordOf(of))
	if hops == 0 {
		hops = 1
	}
	cfg := mesh.Config()
	// Round trip of one flag packet plus the local test.
	return 2*float64(hops)*cfg.HopSeconds + 32/cfg.BytesPerSecond
}

// Barrier blocks until every one of n participants has entered
// (RCCE_barrier over the power-of-two dissemination pattern is modelled
// as a fixed flag exchange cost per participant).
func (c *Comm) Barrier(p *sim.Process, n int) {
	if c.barrier == nil {
		c.barrier = sim.NewBarrier("rcce", n)
	}
	p.Wait(c.PollCost(0, c.chip.NumCores()-1)) // flag exchange cost
	c.barrier.Wait(p)
}

// ResetBarrier prepares the barrier for reuse with a new participant
// count.
func (c *Comm) ResetBarrier(n int) { c.barrier = sim.NewBarrier("rcce", n) }
