package rcce

import (
	"errors"
	"testing"

	"rckalign/internal/sim"
)

// runCollective spawns body on each participant core and runs the sim.
func runCollective(t *testing.T, c *Comm, participants []int, body func(p *sim.Process, self int)) {
	t.Helper()
	for _, core := range participants {
		core := core
		c.Chip().SpawnCore(core, func(p *sim.Process) { body(p, core) })
	}
	if err := c.Chip().Engine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	e, c := newComm()
	_ = e
	parts := []int{0, 3, 7, 12, 21, 33, 40, 47}
	got := map[int]any{}
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		v, err := c.Bcast(p, self, 7, parts, 256, pick(self == 7, "payload", nil))
		if err != nil {
			t.Error(err)
		}
		got[self] = v
	})
	for _, core := range parts {
		if got[core] != "payload" {
			t.Errorf("core %d got %v", core, got[core])
		}
	}
}

func TestBcastNonPowerOfTwo(t *testing.T) {
	_, c := newComm()
	parts := []int{2, 5, 9, 11, 30} // 5 participants
	got := map[int]any{}
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		v, err := c.Bcast(p, self, 2, parts, 64, pick(self == 2, 42, nil))
		if err != nil {
			t.Error(err)
		}
		got[self] = v
	})
	for _, core := range parts {
		if got[core] != 42 {
			t.Errorf("core %d got %v", core, got[core])
		}
	}
}

func TestReduceSums(t *testing.T) {
	_, c := newComm()
	parts := []int{1, 4, 8, 15, 16, 23, 42}
	sum := func(a, b any) any { return a.(int) + b.(int) }
	results := map[int]any{}
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		v, err := c.Reduce(p, self, 8, parts, 8, self, sum)
		if err != nil {
			t.Error(err)
		}
		results[self] = v
	})
	want := 0
	for _, core := range parts {
		want += core
	}
	if results[8] != want {
		t.Errorf("root reduce = %v, want %d", results[8], want)
	}
	for _, core := range parts {
		if core != 8 && results[core] != nil {
			t.Errorf("non-root %d got %v", core, results[core])
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	_, c := newComm()
	parts := []int{0, 5, 10, 20, 40, 47}
	max := func(a, b any) any {
		if a.(int) > b.(int) {
			return a
		}
		return b
	}
	results := map[int]any{}
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		v, err := c.AllReduce(p, self, parts, 8, self*self, max)
		if err != nil {
			t.Error(err)
		}
		results[self] = v
	})
	for _, core := range parts {
		if results[core] != 47*47 {
			t.Errorf("core %d allreduce = %v", core, results[core])
		}
	}
}

func TestGatherOrdered(t *testing.T) {
	_, c := newComm()
	parts := []int{9, 3, 27, 14} // unsorted on purpose
	var rootGot []any
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		out, err := c.Gather(p, self, 14, parts, 16, self*10)
		if err != nil {
			t.Error(err)
		}
		if self == 14 {
			rootGot = out
		} else if out != nil {
			t.Errorf("non-root %d got %v", self, out)
		}
	})
	// Rank order is sorted core order: 3, 9, 14, 27.
	want := []any{30, 90, 140, 270}
	for i, v := range want {
		if rootGot[i] != v {
			t.Fatalf("gather = %v, want %v", rootGot, want)
		}
	}
}

func TestCollectiveTakesTime(t *testing.T) {
	_, c := newComm()
	parts := []int{0, 15, 31, 47}
	var done float64
	runCollective(t, c, parts, func(p *sim.Process, self int) {
		if _, err := c.Bcast(p, self, 0, parts, 64*1024, pick(self == 0, "big", nil)); err != nil {
			t.Error(err)
		}
		if p.Now() > done {
			done = p.Now()
		}
	})
	if done <= 0 {
		t.Error("broadcast consumed no simulated time")
	}
}

func TestNonParticipantTypedError(t *testing.T) {
	// A mis-set participant list used to panic inside the collective,
	// tearing down the whole simulation. It now comes back as a typed
	// error the SPMD body can handle, and the sim run ends cleanly.
	_, c := newComm()
	errs := map[string]error{}
	c.Chip().SpawnCore(5, func(p *sim.Process) {
		_, errs["bcast self"] = c.Bcast(p, 5, 0, []int{0, 1}, 8, nil)
		_, errs["reduce self"] = c.Reduce(p, 5, 0, []int{0, 1}, 8, 1, func(a, b any) any { return a })
		_, errs["allreduce self"] = c.AllReduce(p, 5, []int{0, 1}, 8, 1, func(a, b any) any { return a })
		_, errs["gather self"] = c.Gather(p, 5, 0, []int{0, 1}, 8, 1)
		// A root outside the participant set is the same bug.
		_, errs["bcast root"] = c.Bcast(p, 5, 0, []int{5, 9}, 8, nil)
	})
	if err := c.Chip().Engine().Run(); err != nil {
		t.Fatal(err)
	}
	for name, err := range errs {
		if !errors.Is(err, ErrNotParticipant) {
			t.Errorf("%s: err = %v, want errors.Is ErrNotParticipant", name, err)
		}
	}
}

func pick(cond bool, a, b any) any {
	if cond {
		return a
	}
	return b
}
