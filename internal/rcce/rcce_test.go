package rcce

import (
	"testing"

	"rckalign/internal/scc"
	"rckalign/internal/sim"
)

func newComm() (*sim.Engine, *Comm) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	return e, New(chip)
}

func TestSendRecvDeliversPayload(t *testing.T) {
	e, c := newComm()
	var got Message
	c.Chip().SpawnCore(0, func(p *sim.Process) {
		c.Send(p, 0, 5, 1000, "hello")
	})
	c.Chip().SpawnCore(5, func(p *sim.Process) {
		got = c.Recv(p, 0, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.Bytes != 1000 || got.Src != 0 || got.Dst != 5 {
		t.Errorf("got %+v", got)
	}
}

func TestSendRecvSynchronous(t *testing.T) {
	// Both sides must complete at the same simulated time, after the
	// transfer duration.
	e, c := newComm()
	var sendDone, recvDone float64
	c.Chip().SpawnCore(0, func(p *sim.Process) {
		c.Send(p, 0, 47, 16*1024, nil)
		sendDone = p.Now()
	})
	c.Chip().SpawnCore(47, func(p *sim.Process) {
		p.Wait(0.001) // receiver arrives late; sender must block
		c.Recv(p, 0, 47)
		recvDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != recvDone {
		t.Errorf("send finished at %v, recv at %v; want rendezvous", sendDone, recvDone)
	}
	if sendDone <= 0.001 {
		t.Errorf("completion %v should be after the receiver arrived", sendDone)
	}
}

func TestLargerMessagesTakeLonger(t *testing.T) {
	measure := func(bytes int) float64 {
		e, c := newComm()
		var done float64
		c.Chip().SpawnCore(0, func(p *sim.Process) { c.Send(p, 0, 40, bytes, nil) })
		c.Chip().SpawnCore(40, func(p *sim.Process) {
			c.Recv(p, 0, 40)
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	small := measure(512)
	big := measure(512 * 1024)
	if big <= small {
		t.Errorf("512KB (%v) should take longer than 512B (%v)", big, small)
	}
	// Chunking through 8 KB MPB slots: 512 KB = 64 chunks, so the ratio
	// should be substantial.
	if big < 10*small {
		t.Errorf("chunked large transfer looks too cheap: %v vs %v", big, small)
	}
}

func TestProbeSeesBlockedSender(t *testing.T) {
	e, c := newComm()
	var before, during bool
	c.Chip().SpawnCore(0, func(p *sim.Process) {
		c.Send(p, 0, 7, 100, "x")
	})
	c.Chip().SpawnCore(7, func(p *sim.Process) {
		before = c.Probe(0, 7) // may be false: sender not yet started
		p.Wait(0.01)
		during = c.Probe(0, 7) // sender must be parked in Send by now
		if during {
			c.Recv(p, 0, 7)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	_ = before
	if !during {
		t.Error("Probe did not see the blocked sender")
	}
}

func TestPollCostGrowsWithDistance(t *testing.T) {
	_, c := newComm()
	near := c.PollCost(0, 1)
	far := c.PollCost(0, 47)
	if near <= 0 || far <= near {
		t.Errorf("poll costs: near=%v far=%v", near, far)
	}
}

func TestMessagesBetweenPairsIndependent(t *testing.T) {
	// Messages on (0->1) must not be received by Recv(2->1).
	e, c := newComm()
	var fromZero, fromTwo Message
	c.Chip().SpawnCore(0, func(p *sim.Process) { c.Send(p, 0, 1, 10, "zero") })
	c.Chip().SpawnCore(2, func(p *sim.Process) { c.Send(p, 2, 1, 10, "two") })
	c.Chip().SpawnCore(1, func(p *sim.Process) {
		fromTwo = c.Recv(p, 2, 1)
		fromZero = c.Recv(p, 0, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fromZero.Payload != "zero" || fromTwo.Payload != "two" {
		t.Errorf("cross-delivery: %v / %v", fromZero.Payload, fromTwo.Payload)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e, c := newComm()
	const n = 8
	c.ResetBarrier(n)
	var release []float64
	for i := 0; i < n; i++ {
		i := i
		c.Chip().SpawnCore(i, func(p *sim.Process) {
			p.Wait(float64(i) * 0.01)
			c.Barrier(p, n)
			release = append(release, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(release) != n {
		t.Fatalf("released %d, want %d", len(release), n)
	}
	for _, r := range release {
		if r != release[0] {
			t.Fatalf("barrier released at different times: %v", release)
		}
	}
	if release[0] < 0.07 {
		t.Errorf("barrier released at %v, before last arrival", release[0])
	}
}

func TestZeroByteSendStillWorks(t *testing.T) {
	e, c := newComm()
	ok := false
	c.Chip().SpawnCore(0, func(p *sim.Process) { c.Send(p, 0, 3, 0, nil) })
	c.Chip().SpawnCore(3, func(p *sim.Process) {
		c.Recv(p, 0, 3)
		ok = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("zero-byte message not delivered")
	}
}

func TestUnmatchedRecvDeadlocks(t *testing.T) {
	e, c := newComm()
	c.Chip().SpawnCore(9, func(p *sim.Process) {
		c.Recv(p, 0, 9)
	})
	if err := e.Run(); err == nil {
		t.Error("expected deadlock error for unmatched Recv")
	}
}

func TestSharedMemAccessCosts(t *testing.T) {
	e, c := newComm()
	shm := c.Shmalloc("table", 0, 1<<20)
	if shm.Size() != 1<<20 {
		t.Errorf("size = %d", shm.Size())
	}
	var near, far float64
	c.Chip().SpawnCore(1, func(p *sim.Process) {
		start := p.Now()
		shm.Get(p, 1, 64*1024) // core 1 is near the home controller
		near = p.Now() - start
	})
	c.Chip().SpawnCore(47, func(p *sim.Process) {
		p.Wait(0.01) // avoid controller contention with core 1
		start := p.Now()
		shm.Get(p, 47, 64*1024) // opposite corner
		far = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if near <= 0 || far <= near {
		t.Errorf("shared mem costs: near=%v far=%v", near, far)
	}
}

func TestSharedMemContention(t *testing.T) {
	// Many cores hitting one shared region serialise at its home
	// controller — the bottleneck the paper's master-loads-once design
	// avoids.
	run := func(regions int) float64 {
		e := sim.NewEngine()
		cfg := scc.DefaultConfig()
		cfg.MemBandwidth = 1e8 // slow DRAM so the controller dominates the mesh
		c := New(scc.New(e, cfg))
		shms := make([]*SharedMem, regions)
		homes := []int{0, 10, 36, 46}
		for i := range shms {
			shms[i] = c.Shmalloc("r", homes[i], 1<<24)
		}
		var last float64
		for w := 0; w < 4; w++ {
			w := w
			c.Chip().SpawnCore(20+w, func(p *sim.Process) {
				shms[w%regions].Get(p, 20+w, 8<<20)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	shared := run(1)
	spread := run(4)
	if shared <= spread*1.5 {
		t.Errorf("single-region (%v) should be slower than spread regions (%v)", shared, spread)
	}
}
