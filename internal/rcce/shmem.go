package rcce

import (
	"fmt"

	"rckalign/internal/sim"
)

// SharedMem models RCCE's off-chip shared memory (RCCE_shmalloc): a
// region of DRAM behind one memory controller that any core can read or
// write. Accesses cross the mesh to the region's controller and queue
// there, so heavily shared regions exhibit the controller bottleneck
// that made the paper route its data through the master instead.
type SharedMem struct {
	comm *Comm
	name string
	// home is a core id in the quadrant of the controller hosting the
	// region (accesses are routed as if issued from the accessor to
	// that core's controller).
	homeCore int
	bytes    int
}

// Shmalloc allocates a shared region of the given size homed at the
// memory controller serving homeCore's quadrant.
func (c *Comm) Shmalloc(name string, homeCore, bytes int) *SharedMem {
	if bytes < 1 {
		bytes = 1
	}
	return &SharedMem{comm: c, name: name, homeCore: homeCore, bytes: bytes}
}

// Size returns the region's size in bytes.
func (s *SharedMem) Size() int { return s.bytes }

// access moves n bytes between the accessing core and the region's
// home controller.
func (s *SharedMem) access(p *sim.Process, core, n int) {
	if n < 1 {
		n = 1
	}
	if n > s.bytes {
		n = s.bytes
	}
	chip := s.comm.chip
	// Mesh hop from the accessor's tile to the home controller, then
	// DRAM service at that controller.
	_, mc := chip.MemControllerOf(s.homeCore)
	chip.Mesh().Transfer(p, chip.CoordOf(core), mc, n)
	// Queue at the home controller: modelled by issuing the DRAM access
	// as the home core's quadrant.
	chip.MemAccess(p, s.homeCore, n)
}

// Put writes n bytes of the region from core.
func (s *SharedMem) Put(p *sim.Process, core, n int) { s.access(p, core, n) }

// Get reads n bytes of the region into core.
func (s *SharedMem) Get(p *sim.Process, core, n int) { s.access(p, core, n) }

// String identifies the region.
func (s *SharedMem) String() string {
	return fmt.Sprintf("shm:%s(%dB@core%d)", s.name, s.bytes, s.homeCore)
}
