package rcce

import (
	"rckalign/internal/sim"
)

// Non-blocking operations in the style of the iRCCE extension library
// (Clauss et al.), which SCC applications used to overlap communication
// with computation. ISend/IRecv return immediately with a Request; the
// transfer progresses concurrently (driven by a helper "DMA" process in
// the simulation) and Request.Wait joins it.

// Request is a handle on an in-flight non-blocking operation.
type Request struct {
	latch *sim.Latch
	msg   Message // filled by IRecv on completion
}

// Done reports whether the operation has completed (never blocks).
func (r *Request) Done() bool { return r.latch.IsSet() }

// Wait blocks the calling process until the operation completes. For
// IRecv requests it returns the received message; for ISend the zero
// Message.
func (r *Request) Wait(p *sim.Process) Message {
	r.latch.Wait(p)
	return r.msg
}

// ISend starts a non-blocking send from core src to core dst and
// returns immediately. The payload is transferred with the same MPB
// chunking and mesh timing as Send; completion is observable via the
// returned Request.
func (c *Comm) ISend(p *sim.Process, src, dst, bytes int, payload any) *Request {
	r := &Request{latch: sim.NewLatch("isend")}
	c.chip.Engine().Spawn("isend-dma", func(hp *sim.Process) {
		c.Send(hp, src, dst, bytes, payload)
		r.latch.Set()
	})
	_ = p
	return r
}

// IRecv starts a non-blocking receive on core dst for a message from
// src and returns immediately; Request.Wait yields the message.
func (c *Comm) IRecv(p *sim.Process, src, dst int) *Request {
	r := &Request{latch: sim.NewLatch("irecv")}
	c.chip.Engine().Spawn("irecv-dma", func(hp *sim.Process) {
		r.msg = c.Recv(hp, src, dst)
		r.latch.Set()
	})
	_ = p
	return r
}

// WaitAll joins a set of requests and returns their messages in order.
func WaitAll(p *sim.Process, reqs ...*Request) []Message {
	out := make([]Message, len(reqs))
	for i, r := range reqs {
		out[i] = r.Wait(p)
	}
	return out
}
