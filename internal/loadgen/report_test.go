package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestLatencyQuantileExact(t *testing.T) {
	if got := LatencyQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := LatencyQuantile(one, q); got != 7*time.Millisecond {
			t.Errorf("single-sample q%.2f = %v, want 7ms", q, got)
		}
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := LatencyQuantile(lat, 0.5); got != 50500*time.Microsecond {
		t.Errorf("p50 of 1..100ms = %v, want 50.5ms", got)
	}
	if got := LatencyQuantile(lat, 1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	if got := LatencyQuantile(lat, 0); got != time.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond})
	if s.Count != 3 || s.Min != time.Millisecond || s.Max != 3*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("p50 = %v, want 2ms", s.P50)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestFindKnee(t *testing.T) {
	slo := 100 * time.Millisecond
	ok := func(slot int, rps, p99 float64) SlotReport {
		return SlotReport{Slot: slot, OfferedRPS: rps, GoodputRPS: rps, P99Ms: p99}
	}
	// Clean knee: slot 2 violates the SLO, so slot 1 is the knee.
	k := FindKnee([]SlotReport{ok(0, 10, 5), ok(1, 20, 20), ok(2, 30, 400)}, slo)
	if !k.Found || k.Slot != 1 || k.OfferedRPS != 20 {
		t.Errorf("knee = %+v, want found at slot 1 / 20 RPS", k)
	}
	// Goodput collapse triggers the knee even when p99 looks fine.
	sat := SlotReport{Slot: 2, OfferedRPS: 30, GoodputRPS: 20, P99Ms: 50}
	k = FindKnee([]SlotReport{ok(0, 10, 5), ok(1, 20, 20), sat}, slo)
	if !k.Found || k.Slot != 1 {
		t.Errorf("goodput knee = %+v, want found at slot 1", k)
	}
	// No violation: knee not found, last slot reported.
	k = FindKnee([]SlotReport{ok(0, 10, 5), ok(1, 20, 20)}, slo)
	if k.Found || k.Slot != 1 {
		t.Errorf("no-violation knee = %+v", k)
	}
	// First slot already over: not found.
	k = FindKnee([]SlotReport{ok(0, 10, 500)}, slo)
	if k.Found {
		t.Errorf("first-slot violation marked found: %+v", k)
	}
	if k = FindKnee(nil, slo); k.Found {
		t.Errorf("empty slots found a knee: %+v", k)
	}
}

// synthSamples builds a deterministic sample set over a 2-slot spec.
func synthSamples() (SynthSpec, []Sample) {
	spec := SynthSpec{
		Seed:  1,
		Slots: []Slot{{RPS: 2, Dur: time.Second}, {RPS: 2, Dur: time.Second}},
	}
	mk := func(i, slot int, op Op, lat time.Duration, errClass string) Sample {
		s := Sample{
			Index: i, Op: op, Slot: slot, ReqID: "load-1-0",
			Scheduled: time.Duration(i) * 100 * time.Millisecond,
			Start:     time.Duration(i)*100*time.Millisecond + time.Millisecond,
			Latency:   lat, Status: 200,
			Server: ServerTiming{HasTiming: true, ComputeS: lat.Seconds() / 2,
				MemoHits: 1, QueueDepth: int64(i + 1)},
		}
		if errClass != "" {
			s.Status, s.ErrClass, s.Err = 404, errClass, "nope"
			s.Server = ServerTiming{}
		}
		return s
	}
	samples := []Sample{
		mk(0, 0, OpScore, 10*time.Millisecond, ""),
		mk(1, 0, OpScore, 20*time.Millisecond, ""),
		mk(2, 1, OpOneVsAll, 40*time.Millisecond, ""),
		mk(3, 1, OpScore, 0, ErrClass4xx),
	}
	return spec, samples
}

func TestBuildReport(t *testing.T) {
	spec, samples := synthSamples()
	rep := BuildReport(spec, samples, 2*time.Second, 100*time.Millisecond)
	if rep.Requests != 4 {
		t.Errorf("requests = %d", rep.Requests)
	}
	if rep.Errors[ErrClass4xx] != 1 {
		t.Errorf("errors = %+v", rep.Errors)
	}
	if rep.GoodputRPS != 1.5 {
		t.Errorf("goodput = %v, want 1.5 (3 ok / 2s)", rep.GoodputRPS)
	}
	if rep.OfferedRPS != 2 {
		t.Errorf("offered = %v, want 2 (4 req / 2s)", rep.OfferedRPS)
	}
	if rep.MemoHits != 3 {
		t.Errorf("memo hits = %d, want 3", rep.MemoHits)
	}
	if len(rep.Slots) != 2 {
		t.Fatalf("slots = %d", len(rep.Slots))
	}
	if rep.Slots[1].Errors != 1 || rep.Slots[1].GoodputRPS != 1 {
		t.Errorf("slot 1 = %+v", rep.Slots[1])
	}
	var gotScore bool
	for _, e := range rep.Endpoints {
		if e.Op == "score" {
			gotScore = true
			if e.Count != 3 || e.Errors != 1 {
				t.Errorf("score endpoint = %+v", e)
			}
		}
	}
	if !gotScore {
		t.Error("no score endpoint in report")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

func TestBuildChromeTraceFromSamples(t *testing.T) {
	spec, samples := synthSamples()
	ct := BuildChromeTrace(samples, spec.Slots)
	if ct.Events() == 0 {
		t.Fatal("empty chrome trace")
	}
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	counters := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			tracks[e.Args["name"].(string)] = true
		}
		if e.Ph == "C" {
			counters[e.Name] = true
		}
	}
	if !tracks["client/lane00"] {
		t.Errorf("no client lane track: %v", tracks)
	}
	if !tracks["server/worker-0"] {
		t.Errorf("no worker track: %v", tracks)
	}
	for _, c := range []string{"loadgen.inflight", "loadgen.offered_rps", "server.queue_depth"} {
		if !counters[c] {
			t.Errorf("missing counter track %s (have %v)", c, counters)
		}
	}
}
