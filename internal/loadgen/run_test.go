package loadgen

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/server"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// startServer brings up a real in-process comparison server preloaded
// with a small synthetic dataset — the loadgen runner is exercised end
// to end, tracing fields included.
func startServer(t *testing.T, n int) (*httptest.Server, *server.Server) {
	t.Helper()
	srv := server.New(server.Config{
		Options: tmalign.FastOptions(),
		Batch:   batcher.Config{BatchSize: 4, MaxWait: time.Millisecond, Workers: 2},
	})
	ds := synth.Small(n, 11)
	if err := srv.Preload(ds.Structures); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return hs, srv
}

func TestRunnerEndToEnd(t *testing.T) {
	hs, _ := startServer(t, 6)
	r := &Runner{Base: hs.URL}
	ids, err := r.FetchIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("fetched %d ids, want 6", len(ids))
	}
	spec := SynthSpec{
		Seed:  3,
		Slots: []Slot{{RPS: 40, Dur: 500 * time.Millisecond}},
		Mix:   Mix{OpScore: 0.8, OpOneVsAll: 0.1, OpTopK: 0.1},
	}
	arr, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := BuildRequests(arr, ids, spec.Seed, 3)
	if err != nil {
		t.Fatal(err)
	}
	samples, wall := r.Run(reqs)
	if len(samples) != len(reqs) {
		t.Fatalf("%d samples for %d requests", len(samples), len(reqs))
	}
	if wall < 400*time.Millisecond {
		t.Errorf("run finished in %v — schedule not honored", wall)
	}
	sawTiming := false
	for i, s := range samples {
		if !s.OK() {
			t.Fatalf("sample %d failed: %s %s", i, s.ErrClass, s.Err)
		}
		if s.ReqID != reqs[i].ReqID {
			t.Fatalf("sample %d req id %q, want %q", i, s.ReqID, reqs[i].ReqID)
		}
		if s.Latency <= 0 {
			t.Errorf("sample %d has no latency", i)
		}
		if s.Server.HasTiming {
			sawTiming = true
			if s.Server.TotalS <= 0 {
				t.Errorf("sample %d server total %v", i, s.Server.TotalS)
			}
			if s.Server.MemoHits+s.Server.MemoMisses == 0 {
				t.Errorf("sample %d has no memo outcome: %+v", i, s.Server)
			}
		}
	}
	if !sawTiming {
		t.Error("no sample carried server timing")
	}

	rep := BuildReport(spec, samples, wall, 250*time.Millisecond)
	if rep.Requests != len(samples) || len(rep.Errors) != 0 {
		t.Errorf("report: %d requests, errors %v", rep.Requests, rep.Errors)
	}
	if rep.MemoMisses == 0 {
		t.Error("report saw no memo misses on a cold server")
	}
	if len(rep.Endpoints) == 0 || len(rep.Slots) != 1 {
		t.Errorf("report shape: %d endpoints, %d slots", len(rep.Endpoints), len(rep.Slots))
	}
	ct := BuildChromeTrace(samples, spec.Slots)
	if ct.Events() == 0 {
		t.Error("empty chrome trace from live run")
	}
}

func TestRunnerClassifiesErrors(t *testing.T) {
	hs, _ := startServer(t, 3)
	r := &Runner{Base: hs.URL}
	reqs := []Request{
		{Arrival: Arrival{Op: OpScore}, ReqID: "load-0-000000",
			Method: "GET", Path: "/score?a=nope&b=alsono"},
	}
	samples, _ := r.Run(reqs)
	if samples[0].ErrClass != ErrClass4xx {
		t.Fatalf("404 classified as %q", samples[0].ErrClass)
	}
	if !strings.Contains(samples[0].Err, "unknown structure") {
		t.Errorf("error body %q", samples[0].Err)
	}

	// Transport errors: nothing listens here.
	r2 := &Runner{Base: "http://127.0.0.1:1"}
	samples, _ = r2.Run(reqs)
	if samples[0].ErrClass != ErrClassTransport {
		t.Fatalf("refused connection classified as %q", samples[0].ErrClass)
	}
}
