// Open-loop replay: BuildRequests turns an arrival schedule into
// concrete HTTP requests (deterministically — targets are drawn with
// the same seeded generator every run), and Runner fires them at their
// scheduled offsets against a live server, recording one Sample per
// request.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// Request is one concrete scheduled request of a run.
type Request struct {
	Arrival
	// ReqID is the client-assigned end-to-end request ID, sent as
	// X-Request-ID and echoed by the server in responses and its access
	// log.
	ReqID string `json:"req_id"`
	// Method and Path are the HTTP call (path includes the query).
	Method string `json:"method"`
	Path   string `json:"path"`
}

// BuildRequests binds each arrival to a target: /score gets two
// distinct structures, /onevsall and /topk get one. Targets are drawn
// from ids with a generator seeded by seed, so the full schedule —
// including target choice — is deterministic. k is the -topk neighbor
// count.
func BuildRequests(arrivals []Arrival, ids []string, seed int64, k int) ([]Request, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("loadgen: need at least 2 structure ids, have %d", len(ids))
	}
	if k < 1 {
		k = 5
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Request, len(arrivals))
	for i, a := range arrivals {
		req := Request{
			Arrival: a,
			ReqID:   fmt.Sprintf("load-%d-%06d", seed, i),
		}
		switch a.Op {
		case OpScore:
			x := rng.Intn(len(ids))
			y := rng.Intn(len(ids) - 1)
			if y >= x {
				y++
			}
			req.Method = http.MethodGet
			req.Path = "/score?a=" + url.QueryEscape(ids[x]) + "&b=" + url.QueryEscape(ids[y])
		case OpOneVsAll:
			req.Method = http.MethodPost
			req.Path = "/onevsall?target=" + url.QueryEscape(ids[rng.Intn(len(ids))])
		case OpTopK:
			req.Method = http.MethodGet
			req.Path = fmt.Sprintf("/topk?target=%s&k=%d", url.QueryEscape(ids[rng.Intn(len(ids))]), k)
		default:
			return nil, fmt.Errorf("loadgen: unknown op %q at arrival %d", a.Op, i)
		}
		out[i] = req
	}
	return out, nil
}

// WriteSchedule dumps the deterministic schedule as JSON lines (one
// Request per line) — the artifact a CI job compares across runs to
// pin the determinism contract.
func WriteSchedule(w io.Writer, reqs []Request) error {
	for _, r := range reqs {
		line, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Error classes recorded in Sample.ErrClass.
const (
	ErrClassTransport = "transport"
	ErrClass4xx       = "http_4xx"
	ErrClass5xx       = "http_5xx"
)

// ServerTiming is the server-reported part of a sample, parsed from
// the JSON response: where the request's time went inside the server
// (queue wait, batch assembly, compute), which worker computed it,
// whether the pair(s) came from the memo store, and the coalescer
// backlog seen at enqueue. For multi-pair requests the breakdown is the
// slowest item's (the critical path) and MemoHits/MemoMisses count all
// pairs.
type ServerTiming struct {
	QueueWaitS     float64 `json:"queue_wait_s"`
	AssemblyS      float64 `json:"assembly_s"`
	ComputeS       float64 `json:"compute_s"`
	TotalS         float64 `json:"total_s"`
	EnqueueOffsetS float64 `json:"enqueue_offset_s"`
	Worker         int     `json:"worker"`
	BatchSize      int     `json:"batch_size"`
	MemoHit        bool    `json:"memo_hit"`
	MemoHits       int     `json:"memo_hits"`
	MemoMisses     int     `json:"memo_misses"`
	QueueDepth     int64   `json:"queue_depth"`
	HasTiming      bool    `json:"has_timing"`
}

// Sample is one completed (or failed) request of a run.
type Sample struct {
	Index     int           `json:"index"`
	Op        Op            `json:"op"`
	Slot      int           `json:"slot"`
	ReqID     string        `json:"req_id"`
	Scheduled time.Duration `json:"scheduled"`
	// Start is the actual send offset; Start-Scheduled is scheduler lag,
	// kept separate from server latency so the open-loop property is
	// auditable.
	Start    time.Duration `json:"start"`
	Latency  time.Duration `json:"latency"`
	Status   int           `json:"status"`
	ErrClass string        `json:"err_class,omitempty"`
	Err      string        `json:"err,omitempty"`
	Server   ServerTiming  `json:"server"`
}

// OK reports whether the request completed successfully.
func (s Sample) OK() bool { return s.ErrClass == "" }

// scoreBody is the superset of response fields the runner extracts;
// every query endpoint's JSON reply unmarshals into it.
type scoreBody struct {
	ReqID      string `json:"req_id"`
	BatchSize  int    `json:"batch_size"`
	Worker     int    `json:"worker"`
	MemoHit    bool   `json:"memo_hit"`
	MemoHits   int    `json:"memo_hits"`
	MemoMisses int    `json:"memo_misses"`
	QueueDepth int64  `json:"queue_depth"`
	Timing     *struct {
		QueueWaitS float64 `json:"queue_wait_s"`
		AssemblyS  float64 `json:"assembly_s"`
		ComputeS   float64 `json:"compute_s"`
		TotalS     float64 `json:"total_s"`
	} `json:"timing"`
	MaxTiming *struct {
		QueueWaitS float64 `json:"queue_wait_s"`
		AssemblyS  float64 `json:"assembly_s"`
		ComputeS   float64 `json:"compute_s"`
		TotalS     float64 `json:"total_s"`
	} `json:"max_timing"`
	EnqueueOffsetRaw float64 `json:"enqueue_offset_s"`
}

// Runner replays a schedule against a server. Zero-value fields take
// defaults at Run time.
type Runner struct {
	// Base is the server root, e.g. "http://127.0.0.1:8344".
	Base string
	// Client is the HTTP client (default: a fresh client with no
	// timeout — open-loop tails can be long, and classifying a slow
	// response as transport error would corrupt the SLO report).
	Client *http.Client
}

// FetchIDs lists the server's structure IDs in index order, the pool
// BuildRequests draws targets from.
func (r *Runner) FetchIDs() ([]string, error) {
	client := r.Client
	if client == nil {
		client = &http.Client{}
	}
	resp, err := client.Get(r.Base + "/structures")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /structures: HTTP %d", resp.StatusCode)
	}
	var list struct {
		Structures []struct {
			ID    string `json:"id"`
			Index int    `json:"index"`
		} `json:"structures"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		return nil, err
	}
	ids := make([]string, len(list.Structures))
	for _, st := range list.Structures {
		if st.Index < 0 || st.Index >= len(ids) {
			return nil, fmt.Errorf("loadgen: structure index %d out of range", st.Index)
		}
		ids[st.Index] = st.ID
	}
	return ids, nil
}

// Run replays the schedule open-loop: a dispatcher sleeps to each
// request's offset and fires it on its own goroutine, never waiting
// for outstanding responses. It returns one sample per request
// (index-aligned) and the wall time of the whole run including the
// drain of in-flight requests.
func (r *Runner) Run(reqs []Request) ([]Sample, time.Duration) {
	client := r.Client
	if client == nil {
		client = &http.Client{}
	}
	samples := make([]Sample, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range reqs {
		if d := time.Until(start.Add(req.At)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			samples[i] = r.fire(client, start, i, req)
		}(i, req)
	}
	wg.Wait()
	return samples, time.Since(start)
}

// fire sends one request and builds its sample.
func (r *Runner) fire(client *http.Client, start time.Time, i int, req Request) Sample {
	s := Sample{
		Index: i, Op: req.Op, Slot: req.Slot, ReqID: req.ReqID,
		Scheduled: req.At, Start: time.Since(start),
	}
	t0 := time.Now()
	hreq, err := http.NewRequest(req.Method, r.Base+req.Path, nil)
	if err != nil {
		s.ErrClass, s.Err = ErrClassTransport, err.Error()
		return s
	}
	hreq.Header.Set("X-Request-ID", req.ReqID)
	resp, err := client.Do(hreq)
	if err != nil {
		s.Latency = time.Since(t0)
		s.ErrClass, s.Err = ErrClassTransport, err.Error()
		return s
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	s.Latency = time.Since(t0)
	s.Status = resp.StatusCode
	if err != nil {
		s.ErrClass, s.Err = ErrClassTransport, err.Error()
		return s
	}
	switch {
	case resp.StatusCode >= 500:
		s.ErrClass, s.Err = ErrClass5xx, trim(body)
		return s
	case resp.StatusCode >= 400:
		s.ErrClass, s.Err = ErrClass4xx, trim(body)
		return s
	}
	var sb scoreBody
	if json.Unmarshal(body, &sb) == nil {
		st := ServerTiming{
			Worker: sb.Worker, BatchSize: sb.BatchSize,
			MemoHit: sb.MemoHit, MemoHits: sb.MemoHits, MemoMisses: sb.MemoMisses,
			QueueDepth: sb.QueueDepth, EnqueueOffsetS: sb.EnqueueOffsetRaw,
		}
		if sb.MemoHit {
			st.MemoHits++
		} else if sb.Timing != nil {
			// /score reports a single pair; fold its outcome into the
			// hit/miss counters so all ops aggregate uniformly.
			st.MemoMisses++
		}
		t := sb.Timing
		if t == nil {
			t = sb.MaxTiming
		}
		if t != nil {
			st.QueueWaitS, st.AssemblyS = t.QueueWaitS, t.AssemblyS
			st.ComputeS, st.TotalS = t.ComputeS, t.TotalS
			st.HasTiming = true
		}
		s.Server = st
	}
	return s
}

func trim(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
