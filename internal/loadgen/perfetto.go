// Perfetto export: the whole run as a Chrome trace-event file built on
// internal/trace. Client-side request spans go on concurrency lanes
// (one track per simultaneous in-flight slot), server-side compute
// spans go on one track per batch worker, and counter tracks carry
// in-flight requests, offered RPS and the coalescer queue depth over
// time — load ui.perfetto.dev on the output to scrub through the run.
package loadgen

import (
	"fmt"
	"sort"
	"time"

	"rckalign/internal/trace"
)

// BuildChromeTrace converts a run's samples into a Chrome trace.
//
// All spans live on the client clock (offsets from run start). Server
// compute spans are placed at the tail of their request's client span
// ([end-compute, end]), which is exact up to the response's return
// network delay — good enough to see which worker ran what and when
// the workers saturate.
func BuildChromeTrace(samples []Sample, slots []Slot) *trace.ChromeTrace {
	rec := trace.New()

	// Concurrency lanes: requests sorted by start, greedily packed onto
	// the first lane that is free — the lane count IS the peak in-flight
	// level, visible at a glance.
	order := make([]int, 0, len(samples))
	for i, s := range samples {
		if s.Latency > 0 || s.OK() {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := samples[order[a]], samples[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return order[a] < order[b]
	})
	var laneEnd []time.Duration
	for _, i := range order {
		s := samples[i]
		start, end := s.Start, s.Start+s.Latency
		lane := -1
		for l, free := range laneEnd {
			if free <= start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = end
		label := fmt.Sprintf("%s %s", s.Op, s.ReqID)
		if !s.OK() {
			label = fmt.Sprintf("%s %s [%s]", s.Op, s.ReqID, s.ErrClass)
		}
		rec.Add(fmt.Sprintf("client/lane%02d", lane), start.Seconds(), end.Seconds(), label)
	}

	// Server worker tracks: the compute phase of each request, on the
	// worker that executed its (slowest) batch.
	workers := map[int][]int{}
	for i, s := range samples {
		if s.OK() && s.Server.HasTiming && s.Server.ComputeS > 0 {
			workers[s.Server.Worker] = append(workers[s.Server.Worker], i)
		}
	}
	wids := make([]int, 0, len(workers))
	for w := range workers {
		wids = append(wids, w)
	}
	sort.Ints(wids)
	for _, w := range wids {
		track := fmt.Sprintf("server/worker-%d", w)
		for _, i := range workers[w] {
			s := samples[i]
			end := (s.Start + s.Latency).Seconds()
			rec.Add(track, end-s.Server.ComputeS, end,
				fmt.Sprintf("compute %s batch=%d", s.ReqID, s.Server.BatchSize))
		}
	}

	ct := trace.NewChromeTrace()
	ct.AddRecorder(rec)

	// In-flight requests: +1 at each send, -1 at each completion.
	type edge struct {
		t time.Duration
		d int
	}
	var edges []edge
	for _, s := range samples {
		edges = append(edges, edge{s.Start, +1}, edge{s.Start + s.Latency, -1})
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].t != edges[b].t {
			return edges[a].t < edges[b].t
		}
		return edges[a].d < edges[b].d
	})
	var inflight []trace.CounterPoint
	level := 0
	for _, e := range edges {
		level += e.d
		inflight = append(inflight, trace.CounterPoint{T: e.t.Seconds(), V: float64(level)})
	}
	ct.AddCounter("loadgen.inflight", inflight)

	// Offered RPS: the trace's own schedule as a stepped curve.
	var offered []trace.CounterPoint
	at := 0.0
	for _, sl := range slots {
		offered = append(offered, trace.CounterPoint{T: at, V: sl.RPS})
		at += sl.Dur.Seconds()
	}
	offered = append(offered, trace.CounterPoint{T: at, V: 0})
	ct.AddCounter("loadgen.offered_rps", offered)

	// Coalescer queue depth, as observed by each request at enqueue.
	var depth []trace.CounterPoint
	for _, i := range order {
		s := samples[i]
		if s.OK() && s.Server.HasTiming {
			depth = append(depth, trace.CounterPoint{T: s.Start.Seconds(), V: float64(s.Server.QueueDepth)})
		}
	}
	ct.AddCounter("server.queue_depth", depth)
	return ct
}
