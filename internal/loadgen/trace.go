// Package loadgen synthesizes deterministic open-loop arrival traces
// and replays them against a live comparison server (cmd/rckserve),
// producing an SLO report (per-endpoint latency quantiles, goodput vs
// offered load, the knee of the throughput/latency curve) and a
// Chrome/Perfetto trace of the whole run.
//
// Open loop means the generator fires requests at the trace's arrival
// times regardless of how many responses are outstanding — the
// schedule never waits for the server, so measured latencies are free
// of coordinated omission (a closed-loop client slows its arrival rate
// exactly when the server is slow, hiding the tail it should be
// measuring).
//
// Determinism contract: the arrival schedule — slot boundaries,
// arrival offsets, operation mix and target choices — is a pure
// function of (SynthSpec, structure-ID list, seed) and is byte-stable
// across runs (see BuildRequests and cmd/rckload -sched-out). Measured
// latencies are host wall-clock and are not deterministic; the report
// separates the two.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Op is one request kind in the generated mix. The three query kinds
// have very different work sizes (1 pair, N-1 pairs, N-1 pairs +
// ranking), which is what makes a mixed trace heavy-tailed in service
// demand even when arrivals are smooth.
type Op string

const (
	OpScore    Op = "score"
	OpOneVsAll Op = "onevsall"
	OpTopK     Op = "topk"
)

// Slot is one constant-rate segment of a trace: RPS offered for Dur.
type Slot struct {
	RPS float64       `json:"rps"`
	Dur time.Duration `json:"dur"`
}

// Constant returns a single-rate trace: rps for the whole duration,
// split into slot-sized segments so per-slot reporting still works.
func Constant(rps float64, total, slot time.Duration) []Slot {
	if slot <= 0 || slot > total {
		slot = total
	}
	var out []Slot
	for t := time.Duration(0); t < total; t += slot {
		d := slot
		if t+d > total {
			d = total - t
		}
		out = append(out, Slot{RPS: rps, Dur: d})
	}
	return out
}

// Ramp returns a stepped-RPS trace in the invitro trace-synthesizer
// shape: the first slot offers start RPS, each following slot adds
// step, and the last slot is the first to reach (or exceed) target.
// Every slot lasts slotDur. A non-positive step yields the single
// start slot.
func Ramp(start, step, target float64, slotDur time.Duration) []Slot {
	var out []Slot
	rps := start
	for {
		out = append(out, Slot{RPS: rps, Dur: slotDur})
		if step <= 0 || rps >= target {
			return out
		}
		rps += step
		if rps > target {
			rps = target
		}
	}
}

// Burst returns a base-rate trace with periodic bursts: every period,
// the rate jumps to burst RPS for burstDur, then falls back to base.
func Burst(base, burst float64, period, burstDur, total time.Duration) []Slot {
	if burstDur >= period {
		burstDur = period / 2
	}
	var out []Slot
	for t := time.Duration(0); t < total; {
		calm := period - burstDur
		if t+calm > total {
			calm = total - t
		}
		out = append(out, Slot{RPS: base, Dur: calm})
		t += calm
		if t >= total {
			break
		}
		b := burstDur
		if t+b > total {
			b = total - t
		}
		out = append(out, Slot{RPS: burst, Dur: b})
		t += b
	}
	return out
}

// Diurnal returns a day-curve trace: the rate follows a raised sinusoid
// around mean with the given amplitude over one period, sampled into
// slotDur segments. amplitude is clamped to mean so the rate never goes
// negative.
func Diurnal(mean, amplitude float64, period, slotDur, total time.Duration) []Slot {
	if amplitude > mean {
		amplitude = mean
	}
	var out []Slot
	for t := time.Duration(0); t < total; t += slotDur {
		d := slotDur
		if t+d > total {
			d = total - t
		}
		phase := 2 * math.Pi * float64(t) / float64(period)
		out = append(out, Slot{RPS: mean + amplitude*math.Sin(phase), Dur: d})
	}
	return out
}

// Mix assigns each operation kind a sampling weight. Weights need not
// sum to 1; zero-weight ops never fire.
type Mix map[Op]float64

// DefaultMix is a retrieval-heavy workload: mostly single-pair lookups
// with a heavy tail of one-vs-all sweeps and top-K queries whose work
// grows with the database size.
func DefaultMix() Mix {
	return Mix{OpScore: 0.90, OpOneVsAll: 0.07, OpTopK: 0.03}
}

// mixOps returns the mix's ops in fixed order (score, onevsall, topk)
// with positive weight, so weighted sampling is deterministic.
var mixOrder = []Op{OpScore, OpOneVsAll, OpTopK}

// Arrival is one scheduled request: fire at offset At from run start.
type Arrival struct {
	At   time.Duration `json:"at"`
	Op   Op            `json:"op"`
	Slot int           `json:"slot"`
}

// SynthSpec configures trace synthesis.
type SynthSpec struct {
	// Seed drives every random choice (arrival jitter, op mix); same
	// seed, same trace.
	Seed int64
	// Slots is the offered-rate schedule (see Constant/Ramp/Burst/
	// Diurnal).
	Slots []Slot
	// Mix weights the operation kinds (nil = DefaultMix).
	Mix Mix
	// Poisson draws exponential inter-arrival gaps (a memoryless open
	// arrival process); false spaces arrivals evenly within each slot.
	Poisson bool
}

// Validate reports a usable spec or a one-line reason.
func (s SynthSpec) Validate() error {
	if len(s.Slots) == 0 {
		return fmt.Errorf("loadgen: no slots in trace")
	}
	for i, sl := range s.Slots {
		if sl.RPS < 0 {
			return fmt.Errorf("loadgen: slot %d has negative rate %v", i, sl.RPS)
		}
		if sl.Dur <= 0 {
			return fmt.Errorf("loadgen: slot %d has non-positive duration %v", i, sl.Dur)
		}
	}
	total := 0.0
	for op, w := range s.Mix {
		if w < 0 {
			return fmt.Errorf("loadgen: mix weight for %s is negative", op)
		}
		total += w
	}
	if s.Mix != nil && total == 0 {
		return fmt.Errorf("loadgen: mix has no positive weight")
	}
	return nil
}

// TotalDuration returns the trace's scheduled length.
func (s SynthSpec) TotalDuration() time.Duration {
	var total time.Duration
	for _, sl := range s.Slots {
		total += sl.Dur
	}
	return total
}

// OfferedRequests returns the scheduled request count of the trace (the
// exact count for uniform arrivals; for Poisson the realized count is
// seed-dependent but fixed per seed).
func OfferedRequests(slots []Slot) int {
	n := 0
	for _, sl := range slots {
		n += int(math.Round(sl.RPS * sl.Dur.Seconds()))
	}
	return n
}

// Synthesize expands the spec into a deterministic arrival schedule:
// same spec, same seed, same slice. Uniform mode places round(RPS*dur)
// arrivals evenly in each slot; Poisson mode draws exponential gaps at
// the slot's rate. Ops are sampled from the mix with the same seeded
// generator.
func Synthesize(spec SynthSpec) ([]Arrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mix := spec.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	var totalW float64
	for _, op := range mixOrder {
		totalW += mix[op]
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pickOp := func() Op {
		x := rng.Float64() * totalW
		for _, op := range mixOrder {
			if x < mix[op] {
				return op
			}
			x -= mix[op]
		}
		return mixOrder[len(mixOrder)-1]
	}
	var out []Arrival
	base := time.Duration(0)
	for si, sl := range spec.Slots {
		if sl.RPS == 0 {
			base += sl.Dur
			continue
		}
		if spec.Poisson {
			t := time.Duration(float64(time.Second) * rng.ExpFloat64() / sl.RPS)
			for t < sl.Dur {
				out = append(out, Arrival{At: base + t, Op: pickOp(), Slot: si})
				t += time.Duration(float64(time.Second) * rng.ExpFloat64() / sl.RPS)
			}
		} else {
			n := int(math.Round(sl.RPS * sl.Dur.Seconds()))
			gap := sl.Dur / time.Duration(maxInt(n, 1))
			for i := 0; i < n; i++ {
				out = append(out, Arrival{At: base + time.Duration(i)*gap, Op: pickOp(), Slot: si})
			}
		}
		base += sl.Dur
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
