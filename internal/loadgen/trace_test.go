package loadgen

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestRampShape(t *testing.T) {
	slots := Ramp(10, 10, 50, 2*time.Second)
	if len(slots) != 5 {
		t.Fatalf("ramp 10..50 step 10: %d slots, want 5", len(slots))
	}
	for i, sl := range slots {
		want := float64(10 * (i + 1))
		if sl.RPS != want || sl.Dur != 2*time.Second {
			t.Errorf("slot %d = %+v, want RPS %v dur 2s", i, sl, want)
		}
	}
	// Step overshooting the target clamps the last slot to the target.
	slots = Ramp(10, 15, 30, time.Second)
	rates := []float64{10, 25, 30}
	if len(slots) != len(rates) {
		t.Fatalf("clamped ramp: %d slots, want %d", len(slots), len(rates))
	}
	for i, want := range rates {
		if slots[i].RPS != want {
			t.Errorf("clamped ramp slot %d RPS = %v, want %v", i, slots[i].RPS, want)
		}
	}
	// Non-positive step degenerates to the single start slot.
	if got := Ramp(20, 0, 100, time.Second); len(got) != 1 || got[0].RPS != 20 {
		t.Errorf("zero-step ramp = %+v, want single 20-RPS slot", got)
	}
}

func TestConstantAndBurstAndDiurnalCoverTotal(t *testing.T) {
	for name, slots := range map[string][]Slot{
		"constant": Constant(25, 10*time.Second, 3*time.Second),
		"burst":    Burst(10, 80, 4*time.Second, time.Second, 10*time.Second),
		"diurnal":  Diurnal(30, 20, 8*time.Second, time.Second, 10*time.Second),
	} {
		var total time.Duration
		for i, sl := range slots {
			if sl.Dur <= 0 {
				t.Errorf("%s slot %d has non-positive duration", name, i)
			}
			if sl.RPS < 0 {
				t.Errorf("%s slot %d has negative rate", name, i)
			}
			total += sl.Dur
		}
		if total != 10*time.Second {
			t.Errorf("%s covers %v, want 10s", name, total)
		}
	}
}

func TestBurstAlternates(t *testing.T) {
	slots := Burst(5, 50, 4*time.Second, time.Second, 12*time.Second)
	sawBurst := false
	for _, sl := range slots {
		if sl.RPS == 50 {
			sawBurst = true
			if sl.Dur > time.Second {
				t.Errorf("burst slot longer than burstDur: %v", sl.Dur)
			}
		}
	}
	if !sawBurst {
		t.Error("no burst slot in burst trace")
	}
}

func TestSynthesizeDeterministicAndOrdered(t *testing.T) {
	spec := SynthSpec{Seed: 42, Slots: Ramp(20, 20, 60, time.Second), Poisson: true}
	a1, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Synthesize(spec)
	if len(a1) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	for i := 1; i < len(a1); i++ {
		if a1[i].At < a1[i-1].At {
			t.Fatalf("arrivals not ordered at %d: %v < %v", i, a1[i].At, a1[i-1].At)
		}
	}
	spec.Seed = 43
	a3, _ := Synthesize(spec)
	same := len(a3) == len(a1)
	if same {
		for i := range a1 {
			if a1[i] != a3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical Poisson schedules")
	}
}

func TestSynthesizeUniformCountsAndMix(t *testing.T) {
	spec := SynthSpec{
		Seed:  7,
		Slots: []Slot{{RPS: 100, Dur: 10 * time.Second}},
		Mix:   Mix{OpScore: 0.8, OpOneVsAll: 0.2},
	}
	arr, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 1000 {
		t.Fatalf("uniform 100 RPS x 10s = %d arrivals, want 1000", len(arr))
	}
	counts := map[Op]int{}
	for _, a := range arr {
		counts[a.Op]++
	}
	if counts[OpTopK] != 0 {
		t.Errorf("zero-weight op sampled %d times", counts[OpTopK])
	}
	frac := float64(counts[OpScore]) / float64(len(arr))
	if math.Abs(frac-0.8) > 0.05 {
		t.Errorf("score fraction %.3f, want ~0.8", frac)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SynthSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := Synthesize(SynthSpec{Slots: []Slot{{RPS: -1, Dur: time.Second}}}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Synthesize(SynthSpec{Slots: []Slot{{RPS: 1, Dur: 0}}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Synthesize(SynthSpec{Slots: []Slot{{RPS: 1, Dur: time.Second}}, Mix: Mix{OpScore: 0}}); err == nil {
		t.Error("all-zero mix accepted")
	}
}

func TestBuildRequestsDeterministicSchedule(t *testing.T) {
	arr, err := Synthesize(SynthSpec{Seed: 5, Slots: Ramp(10, 10, 30, time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c", "d"}
	r1, err := BuildRequests(arr, ids, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := BuildRequests(arr, ids, 5, 3)
	var b1, b2 bytes.Buffer
	if err := WriteSchedule(&b1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteSchedule(&b2, r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same seed produced different schedule dumps")
	}
	for i, r := range r1 {
		if r.ReqID == "" || r.Path == "" || r.Method == "" {
			t.Fatalf("request %d incomplete: %+v", i, r)
		}
	}
	// score requests must name two distinct structures.
	for _, r := range r1 {
		if r.Op == OpScore {
			if r.Path[:7] != "/score?" {
				t.Fatalf("score path %q", r.Path)
			}
		}
	}
	if _, err := BuildRequests(arr, []string{"only"}, 5, 3); err == nil {
		t.Error("single-structure pool accepted")
	}
}
