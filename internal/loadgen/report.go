// SLO reporting: exact latency quantiles over recorded samples,
// per-slot goodput vs offered load, and the knee of the
// throughput/latency curve from a stepped-ramp sweep.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// LatencyQuantile returns the q-quantile (0..1) of a sorted latency
// slice by linear interpolation between order statistics. Unlike the
// bucketed metrics.Histogram.Quantile this is exact — the load
// generator holds every sample in memory.
func LatencyQuantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

// LatencySummary is the min/p50/p95/max digest of a latency set, the
// compact form CLIs print for a burst.
type LatencySummary struct {
	Count int
	Min   time.Duration
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

// Summarize digests latencies (order of the input does not matter).
func Summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LatencySummary{
		Count: len(sorted),
		Min:   sorted[0],
		P50:   LatencyQuantile(sorted, 0.50),
		P95:   LatencyQuantile(sorted, 0.95),
		Max:   sorted[len(sorted)-1],
	}
}

// String renders the digest on one line.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p95=%v max=%v",
		s.Count, s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// EndpointSLO is one endpoint's latency quantiles over a run.
type EndpointSLO struct {
	Op     string  `json:"op"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SlotReport is one trace slot's offered-vs-delivered accounting.
// GoodputRPS counts only successful responses; a saturated server shows
// goodput flattening below the offered curve while p99 climbs.
type SlotReport struct {
	Slot       int     `json:"slot"`
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS is requests actually fired / slot duration (equals
	// offered when the scheduler keeps up).
	AchievedRPS float64 `json:"achieved_rps"`
	GoodputRPS  float64 `json:"goodput_rps"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Knee locates where a stepped ramp stops being sustainable.
type Knee struct {
	// Found is false when the sweep never left the sustainable region
	// (the knee lies beyond the last slot) or no slot was sustainable.
	Found bool `json:"found"`
	// Slot/OfferedRPS/P99Ms describe the last sustainable slot when
	// Found, else the last slot measured.
	Slot       int     `json:"slot"`
	OfferedRPS float64 `json:"offered_rps"`
	P99Ms      float64 `json:"p99_ms"`
	// Reason says which criterion the next slot violated ("p99 above
	// SLO", "goodput below offered"), or why no knee was found.
	Reason string `json:"reason"`
}

// FindKnee scans a ramp's slots in order and returns the knee: the last
// slot that still meets the SLO (p99 <= slo) while delivering goodput
// >= 95% of offered, such that the following slot violates one of the
// two. Slots are assumed ordered by increasing offered rate.
func FindKnee(slots []SlotReport, slo time.Duration) Knee {
	sloMs := slo.Seconds() * 1e3
	violation := func(s SlotReport) string {
		if s.P99Ms > sloMs {
			return fmt.Sprintf("p99 %.1fms above SLO %.1fms", s.P99Ms, sloMs)
		}
		if s.GoodputRPS < 0.95*s.OfferedRPS {
			return fmt.Sprintf("goodput %.1f below 95%% of offered %.1f", s.GoodputRPS, s.OfferedRPS)
		}
		return ""
	}
	if len(slots) == 0 {
		return Knee{Reason: "no slots measured"}
	}
	for i, s := range slots {
		v := violation(s)
		if v == "" {
			continue
		}
		if i == 0 {
			return Knee{Slot: s.Slot, OfferedRPS: s.OfferedRPS, P99Ms: s.P99Ms,
				Reason: "first slot already violates: " + v}
		}
		prev := slots[i-1]
		return Knee{Found: true, Slot: prev.Slot, OfferedRPS: prev.OfferedRPS,
			P99Ms: prev.P99Ms, Reason: "next slot violates: " + v}
	}
	last := slots[len(slots)-1]
	return Knee{Slot: last.Slot, OfferedRPS: last.OfferedRPS, P99Ms: last.P99Ms,
		Reason: "no violation within sweep"}
}

// Report is the SLO report of one run, written as JSON. Quantiles are
// exact (computed from every sample, not histogram buckets).
type Report struct {
	Seed        int64          `json:"seed"`
	Poisson     bool           `json:"poisson"`
	Requests    int            `json:"requests"`
	WallSeconds float64        `json:"wall_seconds"`
	OfferedRPS  float64        `json:"offered_rps"`
	GoodputRPS  float64        `json:"goodput_rps"`
	Errors      map[string]int `json:"errors"`
	// SchedLagP99Ms is the p99 of (actual send - scheduled send): the
	// open-loop scheduler's own health. A large value means the client,
	// not the server, was the bottleneck and latencies are suspect.
	SchedLagP99Ms float64 `json:"sched_lag_p99_ms"`
	// MemoHits/MemoMisses aggregate the server-reported memo outcomes.
	MemoHits   int           `json:"memo_hits"`
	MemoMisses int           `json:"memo_misses"`
	Endpoints  []EndpointSLO `json:"endpoints"`
	Slots      []SlotReport  `json:"slots"`
	Knee       Knee          `json:"knee"`
}

func msOf(d time.Duration) float64 { return d.Seconds() * 1e3 }

// BuildReport aggregates a run's samples into the SLO report. slo is
// the p99 latency objective used by the knee finder.
func BuildReport(spec SynthSpec, samples []Sample, wall time.Duration, slo time.Duration) *Report {
	rep := &Report{
		Seed:        spec.Seed,
		Poisson:     spec.Poisson,
		Requests:    len(samples),
		WallSeconds: wall.Seconds(),
		Errors:      map[string]int{},
	}
	if total := spec.TotalDuration().Seconds(); total > 0 {
		rep.OfferedRPS = float64(len(samples)) / total
	}

	good := 0
	var lags []time.Duration
	byOp := map[Op][]time.Duration{}
	opErrs := map[Op]int{}
	bySlot := map[int][]time.Duration{}
	slotReqs := map[int]int{}
	slotErrs := map[int]int{}
	for _, s := range samples {
		lags = append(lags, s.Start-s.Scheduled)
		if s.OK() {
			good++
			byOp[s.Op] = append(byOp[s.Op], s.Latency)
			bySlot[s.Slot] = append(bySlot[s.Slot], s.Latency)
		} else {
			rep.Errors[s.ErrClass]++
			opErrs[s.Op]++
			slotErrs[s.Slot]++
		}
		slotReqs[s.Slot]++
		rep.MemoHits += s.Server.MemoHits
		rep.MemoMisses += s.Server.MemoMisses
	}
	if total := spec.TotalDuration().Seconds(); total > 0 {
		rep.GoodputRPS = float64(good) / total
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	rep.SchedLagP99Ms = msOf(LatencyQuantile(lags, 0.99))

	for _, op := range mixOrder {
		lat, errs := byOp[op], opErrs[op]
		if len(lat) == 0 && errs == 0 {
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		e := EndpointSLO{Op: string(op), Count: len(lat) + errs, Errors: errs}
		if len(lat) > 0 {
			e.P50Ms = msOf(LatencyQuantile(lat, 0.50))
			e.P95Ms = msOf(LatencyQuantile(lat, 0.95))
			e.P99Ms = msOf(LatencyQuantile(lat, 0.99))
			e.MaxMs = msOf(lat[len(lat)-1])
		}
		rep.Endpoints = append(rep.Endpoints, e)
	}

	for si, sl := range spec.Slots {
		lat := bySlot[si]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		sr := SlotReport{
			Slot: si, OfferedRPS: sl.RPS,
			Requests: slotReqs[si], Errors: slotErrs[si],
		}
		if sec := sl.Dur.Seconds(); sec > 0 {
			sr.AchievedRPS = float64(slotReqs[si]) / sec
			sr.GoodputRPS = float64(len(lat)) / sec
		}
		if len(lat) > 0 {
			sr.P50Ms = msOf(LatencyQuantile(lat, 0.50))
			sr.P95Ms = msOf(LatencyQuantile(lat, 0.95))
			sr.P99Ms = msOf(LatencyQuantile(lat, 0.99))
			sr.MaxMs = msOf(lat[len(lat)-1])
		}
		rep.Slots = append(rep.Slots, sr)
	}
	rep.Knee = FindKnee(rep.Slots, slo)
	return rep
}

// WriteJSON writes the report as indented JSON plus a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}
