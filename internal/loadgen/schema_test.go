package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"
)

// validateSchema checks val against the JSON Schema subset the golden
// schema uses: type / required / properties / items. It returns every
// violation, so a drifted report names all missing fields at once.
func validateSchema(schema map[string]any, val any, path string) []string {
	var errs []string
	if want, ok := schema["type"].(string); ok {
		if !typeMatches(want, val) {
			return []string{fmt.Sprintf("%s: got %T, want %s", path, val, want)}
		}
	}
	if obj, ok := val.(map[string]any); ok {
		if req, ok := schema["required"].([]any); ok {
			for _, k := range req {
				if _, present := obj[k.(string)]; !present {
					errs = append(errs, fmt.Sprintf("%s: missing required field %q", path, k))
				}
			}
		}
		if props, ok := schema["properties"].(map[string]any); ok {
			for k, sub := range props {
				if v, present := obj[k]; present {
					errs = append(errs, validateSchema(sub.(map[string]any), v, path+"."+k)...)
				}
			}
		}
	}
	if arr, ok := val.([]any); ok {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				errs = append(errs, validateSchema(items, v, fmt.Sprintf("%s[%d]", path, i))...)
			}
		}
	}
	return errs
}

func typeMatches(want string, val any) bool {
	switch want {
	case "object":
		_, ok := val.(map[string]any)
		return ok
	case "array":
		_, ok := val.([]any)
		return ok
	case "string":
		_, ok := val.(string)
		return ok
	case "boolean":
		_, ok := val.(bool)
		return ok
	case "number":
		_, ok := val.(float64)
		return ok
	case "integer":
		f, ok := val.(float64)
		return ok && f == math.Trunc(f)
	}
	return false
}

// TestReportMatchesGoldenSchema pins the SLO report's JSON shape to
// testdata/slo_schema.json — the same file the CI load-smoke job
// validates a live rckload report against. Renaming or removing a
// report field fails here before it fails in CI.
func TestReportMatchesGoldenSchema(t *testing.T) {
	raw, err := os.ReadFile("../../testdata/slo_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}

	spec, samples := synthSamples()
	rep := BuildReport(spec, samples, 2*time.Second, 100*time.Millisecond)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range validateSchema(schema, doc, "report") {
		t.Error(e)
	}

	// The validator itself must reject a drifted report.
	var broken map[string]any
	json.Unmarshal(buf.Bytes(), &broken)
	delete(broken, "knee")
	broken["requests"] = "many"
	errs := validateSchema(schema, any(broken), "report")
	if len(errs) < 2 {
		t.Errorf("validator accepted a drifted report: %v", errs)
	}
}
