// Package farm is the unified run harness beneath every master–slaves
// execution path in this repository (core.Run, the hierarchical and
// tiled variants, the distributed MCPC baseline and the multi-criteria
// PSC farms). It owns the pieces those paths used to duplicate:
// simulation runtime construction (engine + chip + comm) behind a
// pluggable Backend, slave placement (master skip, thread-grouped tile
// workers, contiguous method partitions), job building, master spawn,
// result collection through a pluggable Collector, termination, and a
// uniform Report with per-core utilization derived from trace.
//
// A path composes a Session instead of copying a 150-line run function:
//
//	s, _ := farm.NewSession(farm.Config{Backend: farm.SCCSim{Chip: chip}, Slaves: n})
//	s.StartSlaves(handler)
//	rep, err := s.Run("", func(m *farm.Master) {
//	        m.LoadResidues(ds.TotalResidues())
//	        m.Farm(jobs, nil)
//	        m.Terminate()
//	})
package farm

import (
	"fmt"

	"strings"

	"rckalign/internal/costmodel"
	"rckalign/internal/fault"
	"rckalign/internal/interchip"
	"rckalign/internal/metrics"
	"rckalign/internal/prune"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// Runtime bundles the simulated platform objects a farm executes on.
// Chip and Comm are the first (often only) chip; a multi-chip backend
// additionally fills Chips/Comms with every chip and Fabric with the
// board-level interconnect joining them.
type Runtime struct {
	Engine *sim.Engine
	Chip   *scc.Chip
	Comm   *rcce.Comm
	// Chips and Comms list every chip of a multi-chip runtime
	// (Chips[0] == Chip); nil on single-chip backends.
	Chips []*scc.Chip
	Comms []*rcce.Comm
	// Fabric is the inter-chip interconnect (nil on single-chip
	// backends).
	Fabric *interchip.Fabric
}

// Backend constructs fresh runtimes. The simulated SCC is the only
// implementation today; the interface is the seam for a future
// host-parallel or sharded backend.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// NewRuntime builds an independent runtime for one execution.
	NewRuntime() Runtime
	// NumCores is the number of cores the runtime will expose.
	NumCores() int
}

// SCCSim is the default backend: the discrete-event SCC model.
type SCCSim struct {
	Chip scc.Config
}

// Name implements Backend.
func (b SCCSim) Name() string { return "scc-sim" }

// NumCores implements Backend.
func (b SCCSim) NumCores() int { return b.Chip.NumCores() }

// NewRuntime implements Backend.
func (b SCCSim) NewRuntime() Runtime {
	engine := sim.NewEngine()
	chip := scc.New(engine, b.Chip)
	return Runtime{Engine: engine, Chip: chip, Comm: rcce.New(chip)}
}

// Collector receives every result gathered by the master, after the
// session's own bookkeeping and before the run path's domain logic. It
// is the plug-in point for experiment instrumentation (histograms,
// progress streams, custom sinks) that should work across all paths.
type Collector interface {
	Collect(r rckskel.Result)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(rckskel.Result)

// Collect implements Collector.
func (f CollectorFunc) Collect(r rckskel.Result) { f(r) }

// HostMaster as Config.MasterCore places the master off-chip (an MCPC
// host process driving the cores, as in the distributed baseline): no
// core is reserved for it and slave placement starts at core 0.
const HostMaster = -1

// Config describes one farm session.
type Config struct {
	// Backend builds the runtime (nil = SCCSim with the default chip).
	Backend Backend
	// MasterCore hosts the master process (HostMaster = off-chip).
	MasterCore int
	// Slaves is the number of slave cores to place.
	Slaves int
	// ThreadsPerWorker groups that many consecutive slave cores into one
	// worker process (2 = dual-core tile workers). When the slave count
	// is not a multiple, the leftover cores are not used; the rounding is
	// reported in Report.EffectiveCores / Report.DroppedCores.
	ThreadsPerWorker int
	// ThreadEfficiency is the per-thread scaling efficiency of grouped
	// workers (default 0.9).
	ThreadEfficiency float64
	// PollingScale scales the master's round-robin polling discovery
	// cost on every team (1 = the paper's busy polling, 0 = ideal
	// event-driven notification). Values below zero are treated as 1.
	PollingScale float64
	// Trace, when non-nil, receives per-core activity intervals. The
	// session records into an internal recorder when nil, so Report
	// utilization is always available.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives counters, histograms and time
	// series from every layer of the run (sim engine, mesh links, rcce
	// volumes, per-job latency stages, master mailbox depth) and enables
	// the Report.Metrics summary block. Recording is passive — it never
	// changes simulated timings — and nil (the default) is free.
	Metrics *metrics.Registry
	// Collector, when non-nil, observes every collected result.
	Collector Collector
	// Batch bundles up to this many consecutive jobs into one request
	// message with one batched result (0 or 1 = one message per job,
	// the classic protocol). Applied by PrepareJobs; slaves must then
	// run a BatchHandler-wrapped handler.
	Batch int
	// CacheStructs enables the slave-side structure-cache model with
	// this per-slave LRU capacity in structures: the master ships only
	// the structures the target slave's modelled cache is missing, so
	// request wire size becomes header + miss bytes. 0 disables the
	// model (the paper's ship-both-structures wire). Applied by
	// PrepareJobs.
	CacheStructs int
	// Dynamic declares that the session's master will pull jobs through
	// FarmDynamic (per-slave queues, partitioned multi-method farms).
	// Dynamic farming has no fault-tolerant variant, so a session that
	// sets both Dynamic and Faults is rejected at construction with
	// ErrDynamicFaults — instead of failing at farm time.
	Dynamic bool
	// Faults, when non-nil, runs the session fault-tolerantly: the plan
	// is injected (kills, stalls, link faults) and the farm uses
	// deadline-based detection with retry, reassignment and
	// blacklisting. A non-nil but empty plan exercises the
	// fault-tolerant machinery with nothing injected — the report must
	// come out identical to the classic path.
	Faults *fault.Plan
	// FT tunes the fault-tolerant farm (deadlines, blacklisting).
	// Ignored when Faults is nil.
	FT rckskel.FTConfig
}

// Report is the uniform outcome of a farm execution.
type Report struct {
	// Backend names the runtime backend used.
	Backend string
	// Slaves is the requested slave-core count.
	Slaves int
	// Workers is the number of worker processes placed.
	Workers int
	// EffectiveCores counts the slave cores actually contributing
	// compute (Workers * threads); with thread-grouped workers and a
	// slave count that is not a multiple of the group size this is less
	// than Slaves.
	EffectiveCores int
	// DroppedCores = Slaves - EffectiveCores (leftover cores that could
	// not form a complete worker).
	DroppedCores int
	// LoadSeconds is the master's one-time data loading cost.
	LoadSeconds float64
	// TotalSeconds is the simulated end-to-end time.
	TotalSeconds float64
	// FarmStats merges the job-distribution statistics of every farm the
	// master executed.
	FarmStats rckskel.Stats
	// Collected counts results received by the master(s).
	Collected int
	// CoreBusySeconds maps each traced core to its busy time.
	CoreBusySeconds map[string]float64
	// CoreUtilization maps each traced core to its busy fraction of the
	// run window [0, TotalSeconds].
	CoreUtilization map[string]float64
	// BusySecondsPerMethod sums compute seconds per comparison method
	// (multi-criteria farms only).
	BusySecondsPerMethod map[string]float64
	// Faults summarises fault injection and recovery (nil on the
	// classic, fault-free path).
	Faults *FaultStats
	// Metrics summarises the run's key observability signals (nil unless
	// Config.Metrics was set).
	Metrics *MetricsReport
	// Wire summarises the cache/batch wire model: hit rate, input bytes
	// saved, batch statistics (nil on classic runs).
	Wire *WireReport
	// Chips is the chip count of a multi-chip run (0 on the classic
	// single-chip paths, whose reports stay bit-identical).
	Chips int
	// PerChip breaks a multi-chip run down chip by chip (nil otherwise).
	PerChip []ChipReport
	// Interchip summarises the board-level interconnect traffic of a
	// multi-chip run (nil otherwise).
	Interchip *InterchipReport
	// Prune summarises the opt-in pre-filter that removed pairs from the
	// workload before farming (nil when pruning was off): pairs examined
	// and skipped, the bound distribution and the filter's own DP cost.
	Prune *prune.Report
}

// ChipReport is one chip's slice of a multi-chip Report.
type ChipReport struct {
	// Chip is the chip index; Master the sub-master core's name
	// ("c1.rck00"; chip 0's master is the root).
	Chip   int
	Master string
	// Collected counts results gathered by this chip's (sub-)master.
	Collected int
	// TotalSeconds is when this chip's master finished (for remote
	// chips: after farming its shard and forwarding every result).
	TotalSeconds float64
	// FarmStats is the chip-local farm execution's statistics
	// (JobsPerSlave keyed by chip-local core id).
	FarmStats rckskel.Stats
	// MeanUtilization averages the busy fraction of this chip's traced
	// cores over the run window.
	MeanUtilization float64
	// PeakMailboxDepth is the chip master's deepest mailbox (0 without
	// metrics).
	PeakMailboxDepth float64
	// Wire is the chip-local cache/batch wire accounting (nil when the
	// wire model is off).
	Wire *WireReport
	// Faults is the chip-local fault summary (core ids chip-local; nil
	// on fault-free runs). Report.Faults merges them with global ids.
	Faults *FaultStats
	// ShardBytes is what crossing the fabric to hand this chip its
	// shard cost (0 for chip 0, whose shard never leaves the root).
	ShardBytes int64
	// ResultBytes is the aggregate-blob bytes this chip originated onto
	// the fabric (0 for chip 0, whose results never leave the root).
	ResultBytes int64
}

// InterchipReport is the Report block for the board-level interconnect
// tier of a multi-chip run, built from the fabric's own accounting (no
// metrics registry needed).
type InterchipReport struct {
	// Profile echoes the interconnect cost profile.
	Profile string
	// Transfers and Bytes count every fabric message.
	Transfers int64
	Bytes     int64
	// ShardBytes and ResultBytes split Bytes into the outbound shard
	// descriptors and the aggregate result blobs travelling up the
	// gather topology, relay hops included (the remainder is control).
	ShardBytes  int64
	ResultBytes int64
	// PerPairResultBytes is the counterfactual wire volume had every
	// result been forwarded individually (the pre-aggregation
	// protocol): per-pair result bytes plus one
	// InterchipResultHeaderBytes frame each. Comparing it with
	// ResultBytes shows what sub-master aggregation saved.
	PerPairResultBytes int64
	// SendWaitSeconds is total sender time lost to port contention.
	SendWaitSeconds float64
	// PeakRootInbox is the deepest the root chip's inbox got — the
	// direct signal for when the single root master saturates.
	PeakRootInbox int
	// RootFlows counts every fabric message that landed in the root's
	// inbox (blobs + gather-done markers): O(arity·log N) under a
	// gather tree where the per-pair protocol funnelled O(pairs).
	RootFlows int64
	// GatherMode/GatherArity/GatherDepth/RootFanIn describe the
	// result-aggregation topology: mode ("tree" or "flat"), tree
	// fan-in, deepest tree level, and the number of chips reporting
	// directly to the root.
	GatherMode  string
	GatherArity int
	GatherDepth int
	RootFanIn   int
	// AggMessages counts aggregate blobs put on the fabric, relay hops
	// included.
	AggMessages int64
	// GatherLevels summarises blob-hop latency per tree level (level 1
	// = hops into the root), deepest senders last.
	GatherLevels []GatherLevel
	// IntraChipBytes sums the on-chip RCCE wire volume across all chips
	// (only available when the run had a metrics registry; 0 otherwise).
	// Comparing it with Bytes gives the inter- vs intra-chip traffic
	// split.
	IntraChipBytes int64
}

// GatherLevel is one tree level's blob-hop latency summary: a level-L
// hop carries a blob from a depth-L chip to its depth-(L-1) parent,
// measured from send entry to receiver drain (port contention and
// receiver inbox queueing included).
type GatherLevel struct {
	Level              int
	Blobs              int64
	MeanLatencySeconds float64
	MaxLatencySeconds  float64
}

// MetricsReport is the Report block distilled from the metrics registry:
// the signals that diagnose the paper's master bottleneck at a glance.
type MetricsReport struct {
	// PeakMailboxDepth is the most slaves ever simultaneously waiting
	// with a ready result for the master to collect.
	PeakMailboxDepth float64
	// WorstLink names the busiest directed mesh link ("(x,y)->(x,y)");
	// empty when the mesh ran without contention modelling.
	WorstLink string
	// WorstLinkBusySeconds is that link's accumulated busy time.
	WorstLinkBusySeconds float64
	// WorstLinkUtilization is that busy time as a fraction of the run.
	WorstLinkUtilization float64
	// JobStages aggregates the per-job latency decomposition, keyed
	// dispatch_wait, input_xfer, compute, result_xfer, collect_wait.
	JobStages map[string]StageAgg
	// LinkHeatmap is the mesh's per-link busy-time grid rendered as text
	// (empty without contention modelling); see noc.Mesh.LinkHeatmap.
	LinkHeatmap string
}

// StageAgg summarises one stage of the per-job latency decomposition.
type StageAgg struct {
	Count        int64
	TotalSeconds float64
	MeanSeconds  float64
	MaxSeconds   float64
}

// jobStageNames are the per-job latency stages mirrored into
// MetricsReport.JobStages from the "farm.job.<stage>_seconds" histograms.
var jobStageNames = []string{"dispatch_wait", "input_xfer", "compute", "result_xfer", "collect_wait"}

// FaultStats is the Report block for fault-tolerant runs: what was
// injected at the wire and cores, and what the farm's detection and
// recovery machinery did about it.
type FaultStats struct {
	// Injected counts the faults the plan actually delivered.
	Injected fault.Stats
	// DeadCores lists fail-stopped cores, sorted.
	DeadCores []int
	// Timeouts, Retries, Reassigned, DetectedCorrupt, Duplicates
	// Dropped, LostJobs and Blacklisted mirror rckskel.FTStats,
	// accumulated over every farm the master executed.
	Timeouts          int
	DetectedCorrupt   int
	Retries           int
	Reassigned        int
	DuplicatesDropped int
	LostJobs          int
	Blacklisted       []int
}

// Session is a constructed farm: runtime, placement and report
// bookkeeping. Start slaves (or spawn custom core processes), then call
// Run with the master body.
type Session struct {
	cfg      Config
	rt       Runtime
	place    Placement
	rec      *trace.Recorder
	team     *rckskel.Team
	rep      Report
	injector *fault.Injector
	ft       rckskel.FTStats
	// labels scope this session's fixed metric keys (multi-chip runs
	// label each chip session "chip"/"cN"; nil on classic sessions, so
	// their keys stay bit-identical).
	labels []string

	// Cache/batch wire model state (see batch.go / structcache.go).
	cache          *StructCache
	wire           wireStats
	hBatchJobs     *metrics.Histogram
	cDispatches    *metrics.Counter
	cInputBaseline *metrics.Counter
	cInputShipped  *metrics.Counter
}

// NewSession validates the configuration, builds the runtime, places
// the slaves and, when a fault plan is configured, arms the injector
// (kill/stall events scheduled, wire interposer installed).
func NewSession(cfg Config) (*Session, error) {
	if cfg.Backend == nil {
		cfg.Backend = SCCSim{Chip: scc.DefaultConfig()}
	}
	return newSession(cfg, cfg.Backend.NewRuntime(), nil)
}

// newSession is NewSession on an injected runtime: a multi-chip session
// builds one chip-level Session per chip, all sharing one engine and
// trace recorder, each scoped by labels ("chip"/"cN").
func newSession(cfg Config, rt Runtime, labels []string) (*Session, error) {
	place, err := Place(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Dynamic && cfg.Faults != nil {
		return nil, fmt.Errorf("farm: %w", ErrDynamicFaults)
	}
	rec := cfg.Trace
	if rec == nil {
		rec = trace.New()
	}
	s := &Session{cfg: cfg, rt: rt, place: place, rec: rec, labels: labels}
	if cfg.Metrics != nil {
		if s.rt.Engine != nil {
			s.rt.Engine.SetMetrics(cfg.Metrics)
		}
		if s.rt.Chip != nil {
			s.rt.Chip.Mesh().SetMetrics(cfg.Metrics, labels...)
		}
		if s.rt.Comm != nil {
			s.rt.Comm.SetMetrics(cfg.Metrics, labels...)
		}
	}
	if cfg.Faults != nil {
		if s.rt.Chip == nil || s.rt.Comm == nil {
			return nil, fmt.Errorf("farm: %w: backend %s has no simulated chip", ErrFaultsUnsupported, cfg.Backend.Name())
		}
		master := cfg.MasterCore
		if master == HostMaster {
			// Off-chip master: no core is exempt from faults.
			master = -1
		}
		if err := cfg.Faults.Validate(cfg.Backend.NumCores(), master); err != nil {
			return nil, fmt.Errorf("farm: %w: %v", ErrFaultPlan, err)
		}
		s.injector = fault.NewInjector(cfg.Faults)
		s.injector.Arm(s.rt.Chip, rec)
		s.rt.Comm.SetInterposer(s.injector)
	}
	s.rep = Report{
		Backend:              cfg.Backend.Name(),
		Slaves:               cfg.Slaves,
		Workers:              len(place.WorkerLeads),
		EffectiveCores:       place.EffectiveCores,
		DroppedCores:         place.DroppedCores,
		FarmStats:            rckskel.Stats{JobsPerSlave: map[int]int{}},
		CoreBusySeconds:      map[string]float64{},
		CoreUtilization:      map[string]float64{},
		BusySecondsPerMethod: map[string]float64{},
	}
	return s, nil
}

// FaultTolerant reports whether the session runs the fault-tolerant
// farm path (a fault plan was configured, possibly empty).
func (s *Session) FaultTolerant() bool { return s.cfg.Faults != nil }

// Injector returns the armed fault injector (nil on the classic path).
func (s *Session) Injector() *fault.Injector { return s.injector }

// SetJobDeadline overrides the fault-tolerant job deadline after
// construction; core.Run uses it to install a workload-derived deadline
// when the config left JobDeadlineSeconds at zero.
func (s *Session) SetJobDeadline(seconds float64) { s.cfg.FT.JobDeadlineSeconds = seconds }

// ValidateJobs rejects nil or empty job lists with ErrNoJobs and jobs
// with a non-positive static wire size with rckskel.ErrJobBytes; run
// paths call it before farming so a misconfigured experiment fails
// loudly instead of simulating nothing (or simulating a corrupted
// transfer model).
func ValidateJobs(jobs []rckskel.Job) error {
	if len(jobs) == 0 {
		return fmt.Errorf("farm: %w", ErrNoJobs)
	}
	if err := rckskel.ValidateJobs(jobs); err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	return nil
}

// Runtime returns the session's runtime.
func (s *Session) Runtime() Runtime { return s.rt }

// Placement returns the slave placement.
func (s *Session) Placement() Placement { return s.place }

// Trace returns the effective activity recorder (the configured one, or
// the session's internal recorder).
func (s *Session) Trace() *trace.Recorder { return s.rec }

// Team returns the session's default team: the configured master plus
// one slave process per placed worker. Built on first use; requires an
// on-chip master.
func (s *Session) Team() *rckskel.Team {
	if s.team == nil {
		if s.cfg.MasterCore == HostMaster {
			panic("farm: the default team requires an on-chip master")
		}
		s.team = s.NewTeam(s.cfg.MasterCore, s.place.WorkerLeads)
	}
	return s.team
}

// NewTeam builds an additional team (e.g. a sub-master partition of a
// hierarchical farm) with the session's polling and trace settings
// applied.
func (s *Session) NewTeam(master int, slaves []int) *rckskel.Team {
	t := rckskel.NewTeam(s.rt.Comm, master, slaves)
	if s.cfg.PollingScale >= 0 {
		t.DiscoveryCostScale = s.cfg.PollingScale
	}
	t.Trace = s.rec
	t.SetMetrics(s.cfg.Metrics, s.labels...)
	return t
}

// Metrics returns the session's metrics registry (nil when disabled).
func (s *Session) Metrics() *metrics.Registry { return s.cfg.Metrics }

// StartSlaves spawns the default team's slave loops with one handler
// (the fault-tolerant variant when a fault plan is configured).
func (s *Session) StartSlaves(h rckskel.Handler) {
	if s.FaultTolerant() {
		s.Team().StartSlavesFT(h)
		return
	}
	s.Team().StartSlaves(h)
}

// StartSlavesWith spawns the default team's slave loops with a per-core
// handler (different cores may run different comparison methods).
func (s *Session) StartSlavesWith(h func(core int) rckskel.Handler) {
	if s.FaultTolerant() {
		s.Team().StartSlavesFTWith(h)
		return
	}
	s.Team().StartSlavesWith(h)
}

// Collect performs the session's result bookkeeping: batched results
// are unwrapped into their per-job sub-results, each result is
// counted, and forwarded to the configured Collector. Farm and
// FarmDynamic call it for every result; run paths with bespoke
// collection loops (the distributed baseline) call it directly.
func (s *Session) Collect(r rckskel.Result) { s.deliver(r, nil) }

// deliver unwraps BatchResults (attributing sub-results to the
// collecting slave) and routes every per-job result through the
// session bookkeeping, the configured Collector, and the per-farm
// extra callback. Collectors therefore observe exactly the same
// result stream — same payloads, same order — as on a classic
// one-message-per-job farm.
func (s *Session) deliver(r rckskel.Result, extra func(rckskel.Result)) {
	if br, ok := r.Payload.(BatchResult); ok {
		for _, sub := range br.Results {
			sub.Slave = r.Slave
			s.deliver(sub, extra)
		}
		return
	}
	s.rep.Collected++
	if s.cfg.Collector != nil {
		s.cfg.Collector.Collect(r)
	}
	if extra != nil {
		extra(r)
	}
}

// mergeStats folds one farm execution's statistics into the report.
func (s *Session) mergeStats(st rckskel.Stats) {
	for core, n := range st.JobsPerSlave {
		s.rep.FarmStats.JobsPerSlave[core] += n
	}
	s.rep.FarmStats.PollProbes += st.PollProbes
	s.rep.FarmStats.MakespanSeconds += st.MakespanSeconds
}

// Run spawns the master process (on the configured core, or as a host
// process when MasterCore is HostMaster), executes the simulation to
// completion and returns the finalized report. name labels an off-chip
// master process ("" = "master"); on-chip masters are named after their
// core. Slaves must have been started (or custom core processes
// spawned) before Run is called, matching the construction order of the
// hand-rolled run paths this layer replaces.
func (s *Session) Run(name string, body func(m *Master)) (Report, error) {
	s.SpawnMaster(name, body)
	err := s.rt.Engine.Run()
	s.finalize()
	return s.rep, err
}

// SpawnMaster schedules the master process without running the engine:
// multi-chip sessions spawn one master per chip session (sub-masters
// plus the root) and then drive the shared engine once. Session.Run is
// SpawnMaster + engine run + finalize.
func (s *Session) SpawnMaster(name string, body func(m *Master)) {
	master := &Master{s: s}
	wrapped := func(p *sim.Process) {
		master.P = p
		body(master)
		s.rep.TotalSeconds = p.Now()
	}
	if s.cfg.MasterCore == HostMaster {
		if name == "" {
			name = "master"
		}
		s.rt.Engine.Spawn(name, wrapped)
	} else {
		s.rt.Chip.SpawnCore(s.cfg.MasterCore, wrapped)
	}
}

// finalize derives the per-core busy/utilization columns from the
// trace and, on fault-tolerant runs, the fault summary block. A chip
// session of a multi-chip run shares the recorder with its siblings,
// so it keeps only the tracks matching its own chip's core-name prefix.
func (s *Session) finalize() {
	prefix := ""
	if s.rt.Chip != nil {
		prefix = s.rt.Chip.Config().NamePrefix
	}
	for _, track := range s.rec.Tracks() {
		if prefix != "" && !strings.HasPrefix(track, prefix) {
			continue
		}
		busy := s.rec.BusySeconds(track)
		s.rep.CoreBusySeconds[track] = busy
		if s.rep.TotalSeconds > 0 {
			s.rep.CoreUtilization[track] = s.rec.Utilization(track, 0, s.rep.TotalSeconds)
		}
	}
	if reg := s.cfg.Metrics; reg != nil {
		mr := &MetricsReport{
			PeakMailboxDepth: reg.Gauge("farm.master.mailbox_peak", s.labels...).Value(),
			JobStages:        map[string]StageAgg{},
		}
		for _, stage := range jobStageNames {
			h := reg.Histogram("farm.job."+stage+"_seconds", metrics.TimeBuckets, s.labels...)
			mr.JobStages[stage] = StageAgg{
				Count:        h.Count(),
				TotalSeconds: h.Sum(),
				MeanSeconds:  h.Mean(),
				MaxSeconds:   h.MaxValue(),
			}
		}
		if s.rt.Chip != nil {
			mesh := s.rt.Chip.Mesh()
			mesh.PublishMetrics()
			if worst := mesh.WorstLink(); worst.BusySeconds > 0 {
				mr.WorstLink = fmt.Sprintf("%v->%v", worst.From, worst.To)
				mr.WorstLinkBusySeconds = worst.BusySeconds
				if s.rep.TotalSeconds > 0 {
					mr.WorstLinkUtilization = worst.BusySeconds / s.rep.TotalSeconds
				}
				mr.LinkHeatmap = mesh.LinkHeatmap()
			}
		}
		s.rep.Metrics = mr
	}
	s.rep.Wire = s.wireReport()
	if s.injector != nil {
		s.rep.Faults = &FaultStats{
			Injected:          s.injector.Stats(),
			DeadCores:         s.injector.DeadCores(),
			Timeouts:          s.ft.Timeouts,
			DetectedCorrupt:   s.ft.CorruptDetected,
			Retries:           s.ft.Retries,
			Reassigned:        s.ft.Reassigned,
			DuplicatesDropped: s.ft.DuplicatesDropped,
			LostJobs:          s.ft.LostJobs,
			Blacklisted:       s.ft.Blacklisted,
		}
	}
}

// BuildChromeTrace combines an activity recorder and a metrics registry
// into one Perfetto-loadable Chrome trace: a thread track per traced
// core (compute slices on slaves, collect slices on the master, fault
// marks) plus a counter track per registry time series (master mailbox
// depth, mesh links in flight). Either argument may be nil.
func BuildChromeTrace(rec *trace.Recorder, reg *metrics.Registry) *trace.ChromeTrace {
	ct := trace.NewChromeTrace()
	if rec != nil {
		ct.AddRecorder(rec)
	}
	for _, ss := range reg.Snapshot().Series {
		pts := make([]trace.CounterPoint, len(ss.Points))
		for i, p := range ss.Points {
			pts[i] = trace.CounterPoint{T: p.T, V: p.V}
		}
		ct.AddCounter(ss.Key, pts)
	}
	return ct
}

// Master wraps the running master process with report bookkeeping. It
// is only valid inside the body passed to Session.Run.
type Master struct {
	// P is the master's simulated process.
	P *sim.Process
	s *Session
}

// Session returns the owning session.
func (m *Master) Session() *Session { return m.s }

// Chip returns the runtime's chip model.
func (m *Master) Chip() *scc.Chip { return m.s.rt.Chip }

// Comm returns the runtime's communication layer.
func (m *Master) Comm() *rcce.Comm { return m.s.rt.Comm }

// LoadResidues charges the one-time cost of parsing n residues into
// memory and records Report.LoadSeconds.
func (m *Master) LoadResidues(n int) {
	m.s.rt.Chip.Compute(m.P, costmodel.Counter{ResiduesLoaded: uint64(n)})
	m.s.rep.LoadSeconds = m.P.Now()
}

// Farm executes the jobs on the default team (the paper's FARM
// construct; FARMFT when a fault plan is configured), routing every
// result through the session's collection bookkeeping and then collect
// (may be nil). It returns this farm's statistics; the report
// accumulates them across calls.
func (m *Master) Farm(jobs []rckskel.Job, collect func(rckskel.Result)) rckskel.Stats {
	wrapped := func(r rckskel.Result) { m.s.deliver(r, collect) }
	if m.s.FaultTolerant() {
		st, ft := m.s.Team().FARMFT(m.P, jobs, m.s.cfg.FT, wrapped)
		m.s.mergeStats(st)
		m.s.mergeFT(ft)
		return st
	}
	st := m.s.Team().FARM(m.P, jobs, wrapped)
	m.s.mergeStats(st)
	return st
}

// mergeFT folds one FARMFT execution's fault statistics into the
// session.
func (s *Session) mergeFT(ft rckskel.FTStats) {
	s.ft.Timeouts += ft.Timeouts
	s.ft.CorruptDetected += ft.CorruptDetected
	s.ft.Retries += ft.Retries
	s.ft.Reassigned += ft.Reassigned
	s.ft.DuplicatesDropped += ft.DuplicatesDropped
	s.ft.LostJobs += ft.LostJobs
	s.ft.Blacklisted = append(s.ft.Blacklisted, ft.Blacklisted...)
}

// FarmDynamic is Farm with a pull-based job source: next(slave) supplies
// the next job for that slave (partitioned multi-method farms). It has
// no fault-tolerant variant: sessions built on it declare Config.Dynamic
// so a fault plan is rejected at construction; as a backstop, calling it
// on a fault-tolerant session returns ErrDynamicFaults before any job
// is dispatched (the master body should still Terminate normally).
func (m *Master) FarmDynamic(next func(slave int) (rckskel.Job, bool), collect func(rckskel.Result)) (rckskel.Stats, error) {
	if m.s.FaultTolerant() {
		return rckskel.Stats{}, fmt.Errorf("farm: %w", ErrDynamicFaults)
	}
	st := m.s.Team().FARMDynamic(m.P, next, func(r rckskel.Result) {
		m.s.deliver(r, collect)
	})
	m.s.mergeStats(st)
	return st, nil
}

// MergeStats folds an externally executed farm's statistics into the
// report (hierarchical sub-master partitions).
func (m *Master) MergeStats(st rckskel.Stats) { m.s.mergeStats(st) }

// SetLoadSeconds overrides Report.LoadSeconds for paths whose loading
// is not a single LoadResidues call.
func (m *Master) SetLoadSeconds(t float64) { m.s.rep.LoadSeconds = t }

// AddMethodBusy accumulates compute seconds for one comparison method
// into Report.BusySecondsPerMethod.
func (m *Master) AddMethodBusy(method string, seconds float64) {
	m.s.rep.BusySecondsPerMethod[method] += seconds
}

// Terminate shuts down the default team's slaves (via the stop latch
// and straggler drain on the fault-tolerant path).
func (m *Master) Terminate() {
	if m.s.FaultTolerant() {
		m.s.Team().TerminateFT(m.P)
		return
	}
	m.s.Team().Terminate(m.P)
}

// String renders a one-line report summary.
func (r Report) String() string {
	return fmt.Sprintf("farm[%s]: slaves=%d workers=%d effective=%d total=%.3fs load=%.3fs collected=%d",
		r.Backend, r.Slaves, r.Workers, r.EffectiveCores, r.TotalSeconds, r.LoadSeconds, r.Collected)
}
