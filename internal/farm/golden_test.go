package farm_test

// The golden equivalence test: every run path ported onto the farm
// harness must reproduce the simulated timings captured from the
// pre-refactor code bit-for-bit (same seed => identical TotalSeconds,
// farm statistics and similarity matrices). testdata/golden.json was
// written by cmd/goldencap against the hand-rolled run functions;
// encoding/json round-trips float64 exactly, so comparisons use ==.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/dist"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/mcpsc"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

type farmRun struct {
	Name            string         `json:"name"`
	TotalSeconds    float64        `json:"total_seconds"`
	LoadSeconds     float64        `json:"load_seconds"`
	Collected       int            `json:"collected"`
	JobsPerSlave    map[string]int `json:"jobs_per_slave"`
	PollProbes      int            `json:"poll_probes"`
	MakespanSeconds float64        `json:"makespan_seconds"`
	Blocks          int            `json:"blocks,omitempty"`
	BlockLoads      int            `json:"block_loads,omitempty"`
	ReloadSeconds   float64        `json:"reload_seconds,omitempty"`
}

type distRun struct {
	Name            string  `json:"name"`
	TotalSeconds    float64 `json:"total_seconds"`
	DiskBusySeconds float64 `json:"disk_busy_seconds"`
	Collected       int     `json:"collected"`
}

type mcpscAllVsAll struct {
	Name                 string                 `json:"name"`
	TotalSeconds         float64                `json:"total_seconds"`
	Similarity           map[string][][]float64 `json:"similarity"`
	BusySecondsPerMethod map[string]float64     `json:"busy_seconds_per_method"`
}

type mcpscOneVsAll struct {
	Name         string               `json:"name"`
	TotalSeconds float64              `json:"total_seconds"`
	PerMethod    map[string][]float64 `json:"per_method"`
	Consensus    []float64            `json:"consensus"`
	Ranking      []int                `json:"ranking"`
}

type golden struct {
	CoreDataset  string          `json:"core_dataset"`
	MCPSCDataset string          `json:"mcpsc_dataset"`
	Farm         []farmRun       `json:"farm"`
	Dist         []distRun       `json:"dist"`
	AllVsAll     []mcpscAllVsAll `json:"all_vs_all"`
	OneVsAll     []mcpscOneVsAll `json:"one_vs_all"`
}

func loadGolden(t *testing.T) golden {
	t.Helper()
	buf, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var g golden
	if err := json.Unmarshal(buf, &g); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	return g
}

var (
	goldenPROnce sync.Once
	goldenPR     *core.PairResults
)

// goldenPairs recomputes the native TM-align results for the golden core
// dataset (deterministic, shared across subtests).
func goldenPairs() *core.PairResults {
	goldenPROnce.Do(func() {
		goldenPR = core.ComputeAllPairs(synth.Small(8, 77), tmalign.FastOptions(), 0)
	})
	return goldenPR
}

func jobsKey(m map[int]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[fmt.Sprint(k)] = v
	}
	return out
}

func checkFarmRun(t *testing.T, want farmRun, r core.RunResult, blocks, blockLoads int, reload float64) {
	t.Helper()
	if r.TotalSeconds != want.TotalSeconds {
		t.Errorf("%s: TotalSeconds = %v, golden %v", want.Name, r.TotalSeconds, want.TotalSeconds)
	}
	if r.LoadSeconds != want.LoadSeconds {
		t.Errorf("%s: LoadSeconds = %v, golden %v", want.Name, r.LoadSeconds, want.LoadSeconds)
	}
	if r.Collected != want.Collected {
		t.Errorf("%s: Collected = %d, golden %d", want.Name, r.Collected, want.Collected)
	}
	if got := jobsKey(r.FarmStats.JobsPerSlave); !reflect.DeepEqual(got, want.JobsPerSlave) {
		t.Errorf("%s: JobsPerSlave = %v, golden %v", want.Name, got, want.JobsPerSlave)
	}
	if r.FarmStats.PollProbes != want.PollProbes {
		t.Errorf("%s: PollProbes = %d, golden %d", want.Name, r.FarmStats.PollProbes, want.PollProbes)
	}
	if r.FarmStats.MakespanSeconds != want.MakespanSeconds {
		t.Errorf("%s: MakespanSeconds = %v, golden %v", want.Name, r.FarmStats.MakespanSeconds, want.MakespanSeconds)
	}
	if blocks != want.Blocks || blockLoads != want.BlockLoads || reload != want.ReloadSeconds {
		t.Errorf("%s: blocks/loads/reload = %d/%d/%v, golden %d/%d/%v",
			want.Name, blocks, blockLoads, reload, want.Blocks, want.BlockLoads, want.ReloadSeconds)
	}
}

// TestGoldenCoreRuns re-executes every captured core scenario on the
// farm-based harness and demands bit-for-bit identical reports.
func TestGoldenCoreRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("native TM-align pass in -short mode")
	}
	g := loadGolden(t)
	pr := goldenPairs()

	runs := map[string]func() (core.RunResult, int, int, float64, error){
		"core-flat-s1": func() (core.RunResult, int, int, float64, error) {
			r, err := core.Run(pr, 1, core.DefaultConfig())
			return r, 0, 0, 0, err
		},
		"core-flat-s4": func() (core.RunResult, int, int, float64, error) {
			r, err := core.Run(pr, 4, core.DefaultConfig())
			return r, 0, 0, 0, err
		},
		"core-flat-s7": func() (core.RunResult, int, int, float64, error) {
			r, err := core.Run(pr, 7, core.DefaultConfig())
			return r, 0, 0, 0, err
		},
		"core-lpt-s5": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.Order = sched.LPT
			r, err := core.Run(pr, 5, cfg)
			return r, 0, 0, 0, err
		},
		"core-random-s5": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.Order = sched.Random
			cfg.OrderSeed = 42
			r, err := core.Run(pr, 5, cfg)
			return r, 0, 0, 0, err
		},
		"core-poll0-s4": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.PollingScale = 0
			r, err := core.Run(pr, 4, cfg)
			return r, 0, 0, 0, err
		},
		"core-threads2-s6": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.ThreadsPerWorker = 2
			r, err := core.Run(pr, 6, cfg)
			return r, 0, 0, 0, err
		},
		"core-threads2-s7": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.ThreadsPerWorker = 2
			r, err := core.Run(pr, 7, cfg)
			return r, 0, 0, 0, err
		},
		"core-hier2-s6": func() (core.RunResult, int, int, float64, error) {
			cfg := core.DefaultConfig()
			cfg.Hierarchy = 2
			r, err := core.Run(pr, 6, cfg)
			return r, 0, 0, 0, err
		},
		"core-tiled-s4": func() (core.RunResult, int, int, float64, error) {
			budget := pr.Dataset.TotalResidues() * 2 / 5
			r, err := core.RunTiled(pr, 4, core.DefaultTiledConfig(budget))
			return r.RunResult, r.Blocks, r.BlockLoads, r.ReloadSeconds, err
		},
	}
	for _, want := range g.Farm {
		want := want
		t.Run(want.Name, func(t *testing.T) {
			run, ok := runs[want.Name]
			if !ok {
				t.Fatalf("golden scenario %q has no runner; update golden_test.go", want.Name)
			}
			r, blocks, loads, reload, err := run()
			if err != nil {
				t.Fatal(err)
			}
			checkFarmRun(t, want, r, blocks, loads, reload)
		})
	}
}

// TestGoldenDistRuns checks the MCPC baseline scenarios.
func TestGoldenDistRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("native TM-align pass in -short mode")
	}
	g := loadGolden(t)
	pr := goldenPairs()
	slavesOf := map[string]int{"dist-s1": 1, "dist-s5": 5}
	for _, want := range g.Dist {
		want := want
		t.Run(want.Name, func(t *testing.T) {
			n, ok := slavesOf[want.Name]
			if !ok {
				t.Fatalf("golden scenario %q has no runner; update golden_test.go", want.Name)
			}
			r, err := dist.Run(pr, n, dist.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.TotalSeconds != want.TotalSeconds {
				t.Errorf("TotalSeconds = %v, golden %v", r.TotalSeconds, want.TotalSeconds)
			}
			if r.DiskBusySeconds != want.DiskBusySeconds {
				t.Errorf("DiskBusySeconds = %v, golden %v", r.DiskBusySeconds, want.DiskBusySeconds)
			}
			if r.Collected != want.Collected {
				t.Errorf("Collected = %d, golden %d", r.Collected, want.Collected)
			}
		})
	}
}

// legacyMCPSCConfig pins the pre-refactor flat 64-byte result size, so
// the comparison isolates the harness port from the intentional
// ScoreBytes wire-model change.
func legacyMCPSCConfig() mcpsc.RunConfig {
	cfg := mcpsc.DefaultRunConfig()
	cfg.ResultBytes = func(mcpsc.Score) int { return 64 }
	return cfg
}

// TestGoldenMCPSC checks the multi-criteria scenarios (PSC output and
// timing).
func TestGoldenMCPSC(t *testing.T) {
	g := loadGolden(t)
	mds := synth.Small(6, 72)
	methods := []mcpsc.Method{mcpsc.GaplessRMSD{}, mcpsc.ContactOverlap{}}
	for _, want := range g.AllVsAll {
		want := want
		t.Run(want.Name, func(t *testing.T) {
			r, err := mcpsc.RunAllVsAll(mds, methods, []int{3, 3}, legacyMCPSCConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.TotalSeconds != want.TotalSeconds {
				t.Errorf("TotalSeconds = %v, golden %v", r.TotalSeconds, want.TotalSeconds)
			}
			if !reflect.DeepEqual(r.Similarity, want.Similarity) {
				t.Errorf("Similarity diverges from golden")
			}
			if !reflect.DeepEqual(r.BusySecondsPerMethod, want.BusySecondsPerMethod) {
				t.Errorf("BusySecondsPerMethod = %v, golden %v", r.BusySecondsPerMethod, want.BusySecondsPerMethod)
			}
		})
	}
	for _, want := range g.OneVsAll {
		want := want
		t.Run(want.Name, func(t *testing.T) {
			r, err := mcpsc.RunOneVsAll(mds, 0, methods, 5, legacyMCPSCConfig())
			if err != nil {
				t.Fatal(err)
			}
			if r.TotalSeconds != want.TotalSeconds {
				t.Errorf("TotalSeconds = %v, golden %v", r.TotalSeconds, want.TotalSeconds)
			}
			if !reflect.DeepEqual(r.PerMethod, want.PerMethod) {
				t.Errorf("PerMethod diverges from golden")
			}
			if !reflect.DeepEqual(r.Consensus, want.Consensus) {
				t.Errorf("Consensus diverges from golden")
			}
			if !reflect.DeepEqual(r.Ranking, want.Ranking) {
				t.Errorf("Ranking = %v, golden %v", r.Ranking, want.Ranking)
			}
		})
	}
}

// TestScoreBytesChargesContent pins the wire-size fix: the default
// model must charge more than the old flat 64 bytes (it carries the
// method label, the value and the full operation-counter block).
func TestScoreBytesChargesContent(t *testing.T) {
	mds := synth.Small(6, 72)
	for _, m := range []mcpsc.Method{mcpsc.GaplessRMSD{}, mcpsc.ContactOverlap{}} {
		s := m.Compare(mds.Structures[0], mds.Structures[1])
		if got := mcpsc.ScoreBytes(s); got <= 64 {
			t.Errorf("ScoreBytes(%s) = %d, want > 64", m.Name(), got)
		}
	}
	// And the default (nil ResultBytes) run must therefore be slower than
	// the pinned legacy run: more result bytes on the same mesh.
	legacy, err := mcpsc.RunOneVsAll(mds, 0, []mcpsc.Method{mcpsc.GaplessRMSD{}, mcpsc.ContactOverlap{}}, 5, legacyMCPSCConfig())
	if err != nil {
		t.Fatal(err)
	}
	modeled, err := mcpsc.RunOneVsAll(mds, 0, []mcpsc.Method{mcpsc.GaplessRMSD{}, mcpsc.ContactOverlap{}}, 5, mcpsc.DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if modeled.TotalSeconds <= legacy.TotalSeconds {
		t.Errorf("content-sized results should cost more: modeled %v <= legacy %v",
			modeled.TotalSeconds, legacy.TotalSeconds)
	}
}

// TestGoldenZeroPlanEquivalence re-runs every flat golden scenario with
// an empty fault plan and demands a bit-identical Report: the
// fault-tolerant machinery (interposer, deadlines, ring-based
// discovery) must cost nothing when no faults are injected. The
// hierarchical and tiled scenarios reject fault plans up front, which
// is asserted instead.
func TestGoldenZeroPlanEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("native TM-align pass in -short mode")
	}
	pr := goldenPairs()

	lpt := core.DefaultConfig()
	lpt.Order = sched.LPT
	random := core.DefaultConfig()
	random.Order = sched.Random
	random.OrderSeed = 42
	poll0 := core.DefaultConfig()
	poll0.PollingScale = 0
	threads2 := core.DefaultConfig()
	threads2.ThreadsPerWorker = 2

	scenarios := map[string]struct {
		slaves int
		cfg    core.Config
	}{
		"core-flat-s1":     {1, core.DefaultConfig()},
		"core-flat-s4":     {4, core.DefaultConfig()},
		"core-flat-s7":     {7, core.DefaultConfig()},
		"core-lpt-s5":      {5, lpt},
		"core-random-s5":   {5, random},
		"core-poll0-s4":    {4, poll0},
		"core-threads2-s6": {6, threads2},
		"core-threads2-s7": {7, threads2},
	}
	for name, sc := range scenarios {
		sc := sc
		t.Run(name, func(t *testing.T) {
			classic, err := core.Run(pr, sc.slaves, sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			fcfg := sc.cfg
			fcfg.Faults = &fault.Plan{}
			ft, err := core.Run(pr, sc.slaves, fcfg)
			if err != nil {
				t.Fatal(err)
			}
			f := ft.Faults
			if f == nil {
				t.Fatal("fault-tolerant run produced no Faults block")
			}
			if f.Injected.Total() != 0 || len(f.DeadCores) != 0 ||
				f.Timeouts != 0 || f.DetectedCorrupt != 0 || f.Retries != 0 ||
				f.Reassigned != 0 || f.DuplicatesDropped != 0 || f.LostJobs != 0 ||
				len(f.Blacklisted) != 0 {
				t.Errorf("empty plan left nonzero fault stats: %+v", f)
			}
			got := ft.Report
			got.Faults = nil
			if !reflect.DeepEqual(classic.Report, got) {
				t.Errorf("zero-plan report diverges from classic:\nclassic %+v\nft      %+v",
					classic.Report, got)
			}
		})
	}

	t.Run("core-hier2-s6", func(t *testing.T) {
		cfg := core.DefaultConfig()
		cfg.Hierarchy = 2
		cfg.Faults = &fault.Plan{}
		if _, err := core.Run(pr, 6, cfg); !errors.Is(err, farm.ErrFaultsUnsupported) {
			t.Errorf("hierarchical run with a plan: err = %v, want ErrFaultsUnsupported", err)
		}
	})
	t.Run("core-tiled-s4", func(t *testing.T) {
		tcfg := core.DefaultTiledConfig(pr.Dataset.TotalResidues() * 2 / 5)
		tcfg.Faults = &fault.Plan{}
		if _, err := core.RunTiled(pr, 4, tcfg); !errors.Is(err, farm.ErrFaultsUnsupported) {
			t.Errorf("tiled run with a plan: err = %v, want ErrFaultsUnsupported", err)
		}
	})
}

// TestReportDeterminism runs the same configuration twice and demands
// identical farm reports (the harness must be free of map-iteration or
// wall-clock nondeterminism).
func TestReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("native TM-align pass in -short mode")
	}
	pr := goldenPairs()
	cfg := core.DefaultConfig()
	cfg.ThreadsPerWorker = 2
	a, err := core.Run(pr, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(pr, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Errorf("reports differ between identical runs:\n%+v\n%+v", a.Report, b.Report)
	}
}
