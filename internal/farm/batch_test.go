package farm

import (
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
)

// pairWire is the test wire model: structure i weighs 100*(i+1) bytes
// and a job references the two structures of its sched.Pair payload.
func pairWire(n int) WireModel {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 100 * (i + 1)
	}
	return WireModel{
		StructsOf: func(j rckskel.Job) []int {
			p := j.Payload.(sched.Pair)
			return []int{p.I, p.J}
		},
		Sizes: sizes,
	}
}

func pairJobs(pairs []sched.Pair, wm WireModel) []rckskel.Job {
	jobs := make([]rckskel.Job, len(pairs))
	for k, p := range pairs {
		jobs[k] = rckskel.Job{ID: k, Payload: p, Bytes: wm.Sizes[p.I] + wm.Sizes[p.J]}
	}
	return jobs
}

func TestBatchHandlerPassThrough(t *testing.T) {
	h := BatchHandler(func(job rckskel.Job) (any, costmodel.Counter, int) {
		return job.ID * 10, costmodel.Counter{DPCells: 5}, 7
	})
	payload, ops, bytes := h(rckskel.Job{ID: 3, Payload: "plain"})
	if payload != 30 || ops.DPCells != 5 || bytes != 7 {
		t.Errorf("pass-through = (%v, %+v, %d)", payload, ops, bytes)
	}
}

func TestBatchHandlerRunsSubJobs(t *testing.T) {
	h := BatchHandler(func(job rckskel.Job) (any, costmodel.Counter, int) {
		// One sub-result claims zero bytes: must be clamped to 1.
		b := job.ID
		return job.ID, costmodel.Counter{DPCells: uint64(10 * (job.ID + 1))}, b
	})
	batch := rckskel.Job{ID: 0, Payload: BatchPayload{Jobs: []rckskel.Job{
		{ID: 0}, {ID: 1}, {ID: 2},
	}}}
	payload, ops, bytes := h(batch)
	br, ok := payload.(BatchResult)
	if !ok || len(br.Results) != 3 {
		t.Fatalf("payload = %#v", payload)
	}
	for i, r := range br.Results {
		if r.JobID != i || r.Payload != i {
			t.Errorf("sub-result %d = %+v", i, r)
		}
	}
	if ops.DPCells != 10+20+30 {
		t.Errorf("ops did not sum: %+v", ops)
	}
	// Result frame: header + clamped(0->1) + 1 + 2.
	if want := BatchResultHeaderBytes + 1 + 1 + 2; bytes != want {
		t.Errorf("result bytes = %d, want %d", bytes, want)
	}
}

func TestPrepareJobsClassicNoop(t *testing.T) {
	s, err := NewSession(Config{MasterCore: 0, Slaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	wm := pairWire(4)
	jobs := pairJobs(sched.AllVsAll(4), wm)
	out := s.PrepareJobs(jobs, wm)
	if &out[0] != &jobs[0] {
		t.Error("classic config must return the job slice unchanged")
	}
	if s.wireReport() != nil {
		t.Error("classic config must not produce a wire report")
	}
}

func TestPrepareJobsBatchAssembly(t *testing.T) {
	s, err := NewSession(Config{MasterCore: 0, Slaves: 3, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	wm := pairWire(5)
	pairs := sched.AllVsAll(5) // 10 pairs -> batches of 4,4,2
	jobs := pairJobs(pairs, wm)
	out := s.PrepareJobs(jobs, wm)
	if len(out) != 3 {
		t.Fatalf("got %d wire jobs, want 3", len(out))
	}
	wantLens := []int{4, 4, 2}
	for k, j := range out {
		bp, ok := j.Payload.(BatchPayload)
		if !ok {
			t.Fatalf("wire job %d payload = %#v", k, j.Payload)
		}
		if len(bp.Jobs) != wantLens[k] {
			t.Errorf("batch %d holds %d jobs, want %d", k, len(bp.Jobs), wantLens[k])
		}
		if j.ID != bp.Jobs[0].ID {
			t.Errorf("batch %d ID = %d, want first sub-job %d", k, j.ID, bp.Jobs[0].ID)
		}
		if j.SizeFor == nil {
			t.Fatalf("batch %d has no SizeFor hook", k)
		}
	}
	// Without a cache, SizeFor = batch header + per-job headers + each
	// referenced structure once (the intra-batch dedup).
	first := out[0] // pairs (0,1) (0,2) (0,3) (0,4): structures 0..4 once
	wantBytes := BatchHeaderBytes + 4*BatchJobHeaderBytes + (100 + 200 + 300 + 400 + 500)
	if got := first.SizeFor(1); got != wantBytes {
		t.Errorf("batch 0 wire size = %d, want %d", got, wantBytes)
	}
	// Baseline for the same batch ships both structures per pair.
	if s.wire.baselineBytes != int64(jobs[0].Bytes+jobs[1].Bytes+jobs[2].Bytes+jobs[3].Bytes) {
		t.Errorf("baseline accounting = %d", s.wire.baselineBytes)
	}
}

func TestPrepareJobsCachedSingles(t *testing.T) {
	s, err := NewSession(Config{MasterCore: 0, Slaves: 3, CacheStructs: 4})
	if err != nil {
		t.Fatal(err)
	}
	wm := pairWire(3)
	jobs := pairJobs([]sched.Pair{{I: 0, J: 1}, {I: 0, J: 2}}, wm)
	out := s.PrepareJobs(jobs, wm)
	if len(out) != 2 {
		t.Fatalf("cached singles must stay 1:1, got %d", len(out))
	}
	if _, ok := out[0].Payload.(sched.Pair); !ok {
		t.Fatalf("unbatched payload = %#v", out[0].Payload)
	}
	// First dispatch to slave 1 is a cold miss on both structures.
	if got := out[0].SizeFor(1); got != PairHeaderBytes+100+200 {
		t.Errorf("cold dispatch = %d", got)
	}
	// Second job to the same slave reuses structure 0.
	if got := out[1].SizeFor(1); got != PairHeaderBytes+300 {
		t.Errorf("warm dispatch = %d", got)
	}
	// A different slave starts cold.
	if got := out[1].SizeFor(2); got != PairHeaderBytes+100+300 {
		t.Errorf("other slave = %d", got)
	}
	rep := s.wireReport()
	if rep == nil || rep.CacheCapacity != 4 || rep.CacheHits != 1 {
		t.Errorf("wire report = %+v", rep)
	}
}

// TestBatchedCachedFarmEndToEnd runs a real simulated farm with caching
// and batching on and checks the collector sees every job exactly once
// with its classic payload, and the report carries the wire block.
func TestBatchedCachedFarmEndToEnd(t *testing.T) {
	var collected []int
	s, err := NewSession(Config{
		MasterCore:   0,
		Slaves:       3,
		Batch:        3,
		CacheStructs: 6,
		Collector: CollectorFunc(func(r rckskel.Result) {
			collected = append(collected, r.JobID)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	wm := pairWire(8)
	pairs := sched.Blocked(sched.AllVsAll(8), 4)
	jobs := pairJobs(pairs, wm)
	wired := s.PrepareJobs(jobs, wm)
	s.StartSlaves(BatchHandler(func(job rckskel.Job) (any, costmodel.Counter, int) {
		return job.Payload, costmodel.Counter{ScoreEvals: 1e5}, 64
	}))
	rep, err := s.Run("", func(m *Master) {
		m.Farm(wired, nil)
		m.Terminate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collected != len(pairs) || len(collected) != len(pairs) {
		t.Fatalf("collected %d/%d results, want %d per-pair results", rep.Collected, len(collected), len(pairs))
	}
	seen := map[int]int{}
	for _, id := range collected {
		seen[id]++
	}
	for k := range jobs {
		if seen[k] != 1 {
			t.Errorf("job %d collected %d times", k, seen[k])
		}
	}
	if rep.Wire == nil {
		t.Fatal("batched run produced no wire report")
	}
	if rep.Wire.BatchedJobs != int64(len(pairs)) || rep.Wire.MaxBatchJobs != 3 {
		t.Errorf("batch stats = %+v", rep.Wire)
	}
	if rep.Wire.InputReduction <= 1 {
		t.Errorf("blocked+cached+batched reduction = %.2f, want > 1", rep.Wire.InputReduction)
	}
	if rep.Wire.CacheHitRate <= 0 {
		t.Errorf("hit rate = %v", rep.Wire.CacheHitRate)
	}
}
