package farm

import (
	"fmt"

	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
)

// BuildJobs converts an ordered pair list into rckskel jobs: job k gets
// ID idBase+k and the wire size returned by bytes (the request payload
// the master ships to a slave). A non-positive size is rejected with
// rckskel.ErrJobBytes — it would silently corrupt the NoC transfer
// model downstream.
func BuildJobs(pairs []sched.Pair, idBase int, bytes func(p sched.Pair) int) ([]rckskel.Job, error) {
	jobs := make([]rckskel.Job, len(pairs))
	for k, p := range pairs {
		b := bytes(p)
		if b < 1 {
			return nil, fmt.Errorf("farm: pair (%d,%d): %w (sized %d)", p.I, p.J, rckskel.ErrJobBytes, b)
		}
		jobs[k] = rckskel.Job{ID: idBase + k, Payload: p, Bytes: b}
	}
	return jobs, nil
}

// Sweep runs one farm execution per slave count and collects the
// results in order, stopping at the first error — the shared shape of
// the paper's Experiment II sweeps (core, dist and tiled).
func Sweep[R any](slaveCounts []int, run func(slaves int) (R, error)) ([]R, error) {
	out := make([]R, 0, len(slaveCounts))
	for _, n := range slaveCounts {
		r, err := run(n)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
