// Multi-chip farming: N SCC chips behind one Backend, joined by the
// interchip fabric, farmed hierarchically — a root master on chip 0
// core 0 ships each remote chip its shard of the job list over the
// fabric, that chip's sub-master (its core 0) FARMs the shard to its
// own slaves over its own mesh, and the shard's results travel back as
// aggregate blobs up the gather topology (see gather.go) instead of one
// message per pair. Chip 0's shard is farmed by the root itself, so a
// multi-chip system degenerates gracefully: the root does exactly the
// paper's single-master job on its own chip, plus the scatter/gather at
// the board tier. Each chip is a full Session (placement, team, wire
// model, metrics scoped "chip"/"cN", optionally its own fault injector),
// all sharing one engine and trace recorder; MultiSession owns
// construction, the master bodies, and the combined Report with
// per-chip and interconnect breakdowns.
package farm

import (
	"errors"
	"fmt"
	"sort"

	"rckalign/internal/fault"
	"rckalign/internal/interchip"
	"rckalign/internal/metrics"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// ErrChipCount reports a MultiSession configured with fewer than two
// chips — a 1-chip system must run the classic flat path, which is
// bit-identical by construction instead of by simulation accident.
var ErrChipCount = errors.New("farm: multi-chip session needs at least 2 chips")

// Fabric wire-framing constants for the master→sub-master→master
// protocol (the board-tier analogue of the batch framing constants).
const (
	// ShardHeaderBytes frames one shard descriptor (job table, counts).
	ShardHeaderBytes = 64
	// InterchipResultHeaderBytes frames one result were it forwarded to
	// the root individually — the pre-aggregation protocol. It prices
	// the per-pair counterfactual (InterchipReport.PerPairResultBytes)
	// that aggregate blobs are compared against.
	InterchipResultHeaderBytes = 16
	// InterchipControlBytes is the size of a control message
	// (gather-done).
	InterchipControlBytes = 64
)

// MultiChip is the multi-chip Backend: Chips copies of one scc.Config
// joined by an interchip fabric. Core names are prefixed per chip
// ("c1.rck00"), so traces, reports and per-core metrics stay
// distinguishable.
type MultiChip struct {
	// Chips is the chip count (>= 2 for a MultiSession).
	Chips int
	// Chip is the per-chip configuration (DefaultConfig = Table I).
	Chip scc.Config
	// Interchip is the board-level interconnect profile (zero value =
	// interchip.DefaultConfig).
	Interchip interchip.Config
}

// Name implements Backend.
func (b MultiChip) Name() string { return fmt.Sprintf("multichip-%d", b.Chips) }

// NumCores implements Backend (total across chips).
func (b MultiChip) NumCores() int { return b.Chips * b.Chip.NumCores() }

// interconnect resolves the zero-value default.
func (b MultiChip) interconnect() interchip.Config {
	if b.Interchip == (interchip.Config{}) {
		return interchip.DefaultConfig()
	}
	return b.Interchip
}

// NewRuntime implements Backend: one engine, Chips prefixed chips with
// their comms, and the fabric joining them. Chip/Comm alias chip 0.
func (b MultiChip) NewRuntime() Runtime {
	engine := sim.NewEngine()
	chips := make([]*scc.Chip, b.Chips)
	comms := make([]*rcce.Comm, b.Chips)
	for c := 0; c < b.Chips; c++ {
		ccfg := b.Chip
		ccfg.NamePrefix = fmt.Sprintf("c%d.%s", c, b.Chip.NamePrefix)
		chips[c] = scc.New(engine, ccfg)
		comms[c] = rcce.New(chips[c])
	}
	return Runtime{
		Engine: engine,
		Chip:   chips[0], Comm: comms[0],
		Chips: chips, Comms: comms,
		Fabric: interchip.New(b.Chips, b.interconnect()),
	}
}

// MultiConfig describes one multi-chip farm session.
type MultiConfig struct {
	// Backend is the chip topology (Chips >= 2).
	Backend MultiChip
	// SlavesPerChip is the slave-core count on every chip (the chip
	// master occupies core 0, so at most NumCores-1).
	SlavesPerChip int
	// ThreadsPerWorker / ThreadEfficiency / PollingScale as in Config,
	// applied identically on every chip.
	ThreadsPerWorker int
	ThreadEfficiency float64
	PollingScale     float64
	// Trace / Metrics / Collector as in Config, shared by all chips
	// (metric keys are scoped per chip).
	Trace     *trace.Recorder
	Metrics   *metrics.Registry
	Collector Collector
	// Batch / CacheStructs as in Config, applied per chip — each chip
	// session owns an independent cache model, so the wire accounting
	// splits naturally per interconnect tier.
	Batch        int
	CacheStructs int
	// Gather selects the result-aggregation topology (zero value = a
	// gather tree of DefaultGatherArity, one blob per shard).
	Gather GatherConfig
	// Faults, when non-nil, runs every chip session fault-tolerantly:
	// the plan's core ids are global across the board (chip = id /
	// coresPerChip) and are split per chip with fault.SplitPlan, so
	// FARMFT runs on each shard with that chip's slice of the plan.
	// Every chip — faulted or not — runs the fault-tolerant protocol,
	// keeping the shards' dispatch machinery uniform.
	Faults *fault.Plan
	// FT tunes the fault-tolerant farm on every chip (ignored when
	// Faults is nil).
	FT rckskel.FTConfig
	// Dynamic declares that shards will be farmed through RunAffinity
	// (per-worker pull queues); Dynamic and Faults together are
	// rejected at construction, exactly as on the flat path.
	Dynamic bool
}

// shardWork is one chip's prepared workload: either a single job queue
// (classic FARM) or per-worker queues (affinity / FarmDynamic). An
// empty shardWork farms nothing.
type shardWork struct {
	jobs   []rckskel.Job
	queues [][]rckskel.Job
}

// MultiSession is a constructed multi-chip farm: one chip-level Session
// per chip on a shared runtime. Start slaves per chip, prepare each
// chip's job queue through its session (ChipSession(c).PrepareJobs),
// then call Run (or RunAffinity).
type MultiSession struct {
	cfg      MultiConfig
	gather   GatherConfig
	rt       Runtime
	rec      *trace.Recorder
	sessions []*Session

	shardBytes   []int64
	resultBytes  []int64
	perPairBytes []int64
	aggWireBytes int64
	aggMessages  int64
	gatherLat    map[int][]float64
	runErr       error
}

// NewMultiSession validates the configuration and builds the runtime
// and per-chip sessions (each with its slice of the fault plan, when
// one is configured).
func NewMultiSession(cfg MultiConfig) (*MultiSession, error) {
	if cfg.Backend.Chips < 2 {
		return nil, fmt.Errorf("%w (got %d)", ErrChipCount, cfg.Backend.Chips)
	}
	gather, err := cfg.Gather.resolved()
	if err != nil {
		return nil, err
	}
	var plans []*fault.Plan
	if cfg.Faults != nil {
		plans, err = fault.SplitPlan(cfg.Faults, cfg.Backend.Chips, cfg.Backend.Chip.NumCores())
		if err != nil {
			return nil, fmt.Errorf("farm: %w: %v", ErrFaultPlan, err)
		}
	}
	rec := cfg.Trace
	if rec == nil {
		rec = trace.New()
	}
	rt := cfg.Backend.NewRuntime()
	if cfg.Metrics != nil {
		rt.Fabric.SetMetrics(cfg.Metrics)
	}
	ms := &MultiSession{
		cfg: cfg, gather: gather, rt: rt, rec: rec,
		shardBytes:   make([]int64, cfg.Backend.Chips),
		resultBytes:  make([]int64, cfg.Backend.Chips),
		perPairBytes: make([]int64, cfg.Backend.Chips),
		gatherLat:    map[int][]float64{},
	}
	for c := 0; c < cfg.Backend.Chips; c++ {
		scfg := Config{
			Backend:          SCCSim{Chip: rt.Chips[c].Config()},
			MasterCore:       0,
			Slaves:           cfg.SlavesPerChip,
			ThreadsPerWorker: cfg.ThreadsPerWorker,
			ThreadEfficiency: cfg.ThreadEfficiency,
			PollingScale:     cfg.PollingScale,
			Trace:            rec,
			Metrics:          cfg.Metrics,
			Collector:        cfg.Collector,
			Batch:            cfg.Batch,
			CacheStructs:     cfg.CacheStructs,
			Dynamic:          cfg.Dynamic,
			FT:               cfg.FT,
		}
		if plans != nil {
			scfg.Faults = plans[c]
		}
		chipRT := Runtime{
			Engine: rt.Engine,
			Chip:   rt.Chips[c], Comm: rt.Comms[c],
			Chips: rt.Chips, Comms: rt.Comms, Fabric: rt.Fabric,
		}
		s, err := newSession(scfg, chipRT, []string{"chip", fmt.Sprintf("c%d", c)})
		if err != nil {
			return nil, fmt.Errorf("farm: chip %d: %w", c, err)
		}
		ms.sessions = append(ms.sessions, s)
	}
	return ms, nil
}

// Chips returns the chip count.
func (ms *MultiSession) Chips() int { return ms.cfg.Backend.Chips }

// Gather returns the resolved gather topology.
func (ms *MultiSession) Gather() GatherConfig { return ms.gather }

// Runtime returns the shared runtime (engine, chips, fabric).
func (ms *MultiSession) Runtime() Runtime { return ms.rt }

// ChipSession returns chip c's Session (for PrepareJobs, placement
// inspection and custom slave start).
func (ms *MultiSession) ChipSession(c int) *Session { return ms.sessions[c] }

// SetJobDeadline installs the fault-tolerant job deadline on every chip
// session (multi-chip analogue of Session.SetJobDeadline).
func (ms *MultiSession) SetJobDeadline(seconds float64) {
	for _, s := range ms.sessions {
		s.SetJobDeadline(seconds)
	}
}

// StartSlaves spawns every chip's slave loops with the same handler
// (the fault-tolerant variant on every chip when a fault plan is
// configured).
func (ms *MultiSession) StartSlaves(h rckskel.Handler) {
	for _, s := range ms.sessions {
		s.StartSlaves(h)
	}
}

// shardMsg hands a chip its workload; the modelled fabric bytes are the
// shard descriptor plus the structure payloads (computed by the caller,
// who owns the wire model). Exactly one of jobs/queues is set (queues
// for affinity farming).
type shardMsg struct {
	jobs   []rckskel.Job
	queues [][]rckskel.Job
}

// aggMsg is one aggregate result blob travelling up the gather
// topology: origin chip, summarised result count and their payload
// bytes. Blobs relay through interior tree chips unmerged, so the state
// reaching the root is independent of the arrival order at any level.
type aggMsg struct {
	origin  int
	results int
	payload int64
}

// gatherDone signals that a chip and its whole gather subtree finished
// (stats travel in the chip sessions' reports, host-side).
type gatherDone struct{ chip int }

// aggregator accumulates one chip's shard results and flushes them to
// the chip's gather parent as aggregate blobs: one blob per shard by
// default, or every ChunkResults results when streaming chunks are
// configured. It also prices the per-pair counterfactual so reports can
// show what aggregation saved.
type aggregator struct {
	ms           *MultiSession
	m            *Master
	chip, parent int
	count        int
	payload      int64
}

func (a *aggregator) collect(r rckskel.Result) {
	a.ms.perPairBytes[a.chip] += int64(r.Bytes + InterchipResultHeaderBytes)
	a.count++
	a.payload += int64(r.Bytes)
	if chunk := a.ms.gather.ChunkResults; chunk > 0 && a.count >= chunk {
		a.flush()
	}
}

func (a *aggregator) flush() {
	if a.count == 0 {
		return
	}
	b := AggregateHeaderBytes + int(a.payload)
	a.ms.resultBytes[a.chip] += int64(b)
	a.ms.noteAggSend(b)
	a.ms.rt.Fabric.Send(a.m.P, a.chip, a.parent, b, aggMsg{
		origin: a.chip, results: a.count, payload: a.payload,
	})
	a.count, a.payload = 0, 0
}

// noteAggSend accounts one aggregate blob put on the fabric (origin
// flushes and relay hops alike).
func (ms *MultiSession) noteAggSend(bytes int) {
	ms.aggWireBytes += int64(bytes)
	ms.aggMessages++
	if reg := ms.cfg.Metrics; reg != nil {
		reg.Counter("interchip.gather.messages").Inc()
		reg.Counter("interchip.gather.bytes").Add(float64(bytes))
	}
}

// noteGatherHop records one blob hop's latency (send entry to receiver
// drain) under the sender's tree level; the per-level series surfaces
// in metrics and, through BuildChromeTrace, the Perfetto trace.
func (ms *MultiSession) noteGatherHop(now float64, msg interchip.Message) {
	level := ms.gather.DepthOf(msg.Src)
	lat := now - msg.SentAt
	ms.gatherLat[level] = append(ms.gatherLat[level], lat)
	if reg := ms.cfg.Metrics; reg != nil {
		reg.Series("interchip.gather.latency_seconds", "level", fmt.Sprintf("L%d", level)).Append(now, lat)
	}
}

// noteErr keeps the first farm error raised inside a master body.
func (ms *MultiSession) noteErr(err error) {
	if err != nil && ms.runErr == nil {
		ms.runErr = err
	}
}

// farmShard runs one chip's workload on its own team: classic FARM (or
// FARMFT) for a single queue, FarmDynamic pull scheduling for per-worker
// affinity queues. collect observes every result (may be nil).
func farmShard(m *Master, w shardWork, collect func(rckskel.Result)) error {
	if w.queues != nil {
		queueOf := map[int]int{}
		for i, lead := range m.Session().Placement().WorkerLeads {
			queueOf[lead] = i
		}
		heads := make([]int, len(w.queues))
		_, err := m.FarmDynamic(func(slave int) (rckskel.Job, bool) {
			q := queueOf[slave]
			if heads[q] >= len(w.queues[q]) {
				return rckskel.Job{}, false
			}
			j := w.queues[q][heads[q]]
			heads[q]++
			return j, true
		}, collect)
		return err
	}
	if len(w.jobs) > 0 {
		m.Farm(w.jobs, collect)
	}
	return nil
}

// Run executes the multi-chip farm: queues[c] is chip c's prepared job
// queue (possibly empty), shardBytes[c] the fabric cost of handing
// chip c its shard (ignored for chip 0), loadResidues the root's
// one-time dataset load. It spawns every sub-master and the root,
// drives the shared engine to completion, and returns the combined
// report.
func (ms *MultiSession) Run(loadResidues int, queues [][]rckskel.Job, shardBytes []int64) (Report, error) {
	n := ms.Chips()
	if len(queues) != n || len(shardBytes) != n {
		return Report{}, fmt.Errorf("farm: multi-chip run wants %d queues and shard sizes, got %d and %d",
			n, len(queues), len(shardBytes))
	}
	work := make([]shardWork, n)
	for c := range queues {
		work[c] = shardWork{jobs: queues[c]}
	}
	return ms.run(loadResidues, work, shardBytes)
}

// RunAffinity is Run with per-worker pull queues: queues[c][w] is the
// job queue of chip c's worker w (the cache-affinity deal). The session
// must have been constructed with Dynamic set.
func (ms *MultiSession) RunAffinity(loadResidues int, queues [][][]rckskel.Job, shardBytes []int64) (Report, error) {
	n := ms.Chips()
	if len(queues) != n || len(shardBytes) != n {
		return Report{}, fmt.Errorf("farm: multi-chip run wants %d queue sets and shard sizes, got %d and %d",
			n, len(queues), len(shardBytes))
	}
	work := make([]shardWork, n)
	for c := range queues {
		work[c] = shardWork{queues: queues[c]}
	}
	return ms.run(loadResidues, work, shardBytes)
}

// run spawns the sub-masters and the root and drives the shared engine.
//
// Protocol: the root scatters one shardMsg per remote chip, then farms
// its own shard. A sub-master receives its shard (always the first
// message in its FIFO inbox: the root scatters in chip order before any
// results can flow), farms it while aggregating results, flushes its
// blob(s) toward its gather parent, then relays its children's blobs
// upward and forwards a gatherDone once every child subtree reported.
// The root drains blobs and gatherDone markers from its direct children
// only — O(arity) flows instead of one stream per chip per pair.
func (ms *MultiSession) run(loadResidues int, work []shardWork, shardBytes []int64) (Report, error) {
	n := ms.Chips()
	fabric := ms.rt.Fabric
	copy(ms.shardBytes, shardBytes)
	ms.shardBytes[0] = 0

	for c := 1; c < n; c++ {
		c := c
		sess := ms.sessions[c]
		parent := ms.gather.Parent(c)
		kids := ms.gather.Children(c, n)
		sess.SpawnMaster("", func(m *Master) {
			msg := fabric.Recv(m.P, c)
			sm := msg.Payload.(shardMsg)
			agg := &aggregator{ms: ms, m: m, chip: c, parent: parent}
			ms.noteErr(farmShard(m, shardWork{jobs: sm.jobs, queues: sm.queues}, agg.collect))
			agg.flush()
			m.Terminate()
			for pending := len(kids); pending > 0; {
				msg := fabric.Recv(m.P, c)
				switch pl := msg.Payload.(type) {
				case aggMsg:
					ms.noteGatherHop(m.P.Now(), msg)
					ms.noteAggSend(msg.Bytes)
					fabric.Send(m.P, c, parent, msg.Bytes, pl)
				case gatherDone:
					pending--
				}
			}
			fabric.Send(m.P, c, parent, InterchipControlBytes, gatherDone{chip: c})
		})
	}

	root := ms.sessions[0]
	rootKids := ms.gather.Children(0, n)
	root.SpawnMaster("", func(m *Master) {
		if loadResidues > 0 {
			m.LoadResidues(loadResidues)
		}
		for c := 1; c < n; c++ {
			fabric.Send(m.P, 0, c, int(ms.shardBytes[c]), shardMsg{jobs: work[c].jobs, queues: work[c].queues})
		}
		ms.noteErr(farmShard(m, work[0], nil))
		m.Terminate()
		// Gather: aggregate blobs and gather-done markers arrive through
		// the root inbox from the root's direct children only; per-pair
		// results were booked at their sub-master, so the drain pays one
		// transport + handling per blob — the root inbox stays shallow
		// where the per-pair protocol queued thousands of results.
		for pending := len(rootKids); pending > 0; {
			msg := fabric.Recv(m.P, 0)
			switch msg.Payload.(type) {
			case aggMsg:
				ms.noteGatherHop(m.P.Now(), msg)
			case gatherDone:
				pending--
			}
		}
	})

	err := ms.rt.Engine.Run()
	if err == nil {
		err = ms.runErr
	}
	return ms.finalize(), err
}

// finalize folds the chip sessions into the combined multi-chip report.
func (ms *MultiSession) finalize() Report {
	n := ms.Chips()
	root := ms.sessions[0]
	coresPerChip := ms.cfg.Backend.Chip.NumCores()

	rep := Report{
		Backend:              ms.cfg.Backend.Name(),
		Slaves:               n * ms.cfg.SlavesPerChip,
		Chips:                n,
		LoadSeconds:          root.rep.LoadSeconds,
		TotalSeconds:         root.rep.TotalSeconds,
		FarmStats:            rckskel.Stats{JobsPerSlave: map[int]int{}},
		CoreBusySeconds:      map[string]float64{},
		CoreUtilization:      map[string]float64{},
		BusySecondsPerMethod: map[string]float64{},
	}

	for c, s := range ms.sessions {
		s.finalize()
		rep.Workers += s.rep.Workers
		rep.EffectiveCores += s.rep.EffectiveCores
		rep.DroppedCores += s.rep.DroppedCores
		rep.Collected += s.rep.Collected
		for local, jobs := range s.rep.FarmStats.JobsPerSlave {
			rep.FarmStats.JobsPerSlave[c*coresPerChip+local] += jobs
		}
		rep.FarmStats.PollProbes += s.rep.FarmStats.PollProbes

		// Sum busy time in sorted track order: map iteration order would
		// make the float accumulation (and so MeanUtilization) vary in the
		// last bit between identical runs.
		tracks := make([]string, 0, len(s.rep.CoreBusySeconds))
		for track := range s.rep.CoreBusySeconds {
			tracks = append(tracks, track)
		}
		sort.Strings(tracks)
		chipBusy := 0.0
		for _, track := range tracks {
			busy := s.rep.CoreBusySeconds[track]
			rep.CoreBusySeconds[track] = busy
			if rep.TotalSeconds > 0 {
				rep.CoreUtilization[track] = busy / rep.TotalSeconds
			}
			chipBusy += busy
		}
		cr := ChipReport{
			Chip:         c,
			Master:       ms.rt.Chips[c].CoreName(0),
			Collected:    s.rep.Collected,
			TotalSeconds: s.rep.TotalSeconds,
			FarmStats:    s.rep.FarmStats,
			Wire:         s.rep.Wire,
			Faults:       s.rep.Faults,
			ShardBytes:   ms.shardBytes[c],
			ResultBytes:  ms.resultBytes[c],
		}
		if len(tracks) > 0 && rep.TotalSeconds > 0 {
			cr.MeanUtilization = chipBusy / (float64(len(tracks)) * rep.TotalSeconds)
		}
		if s.rep.Metrics != nil {
			cr.PeakMailboxDepth = s.rep.Metrics.PeakMailboxDepth
		}
		rep.PerChip = append(rep.PerChip, cr)
	}
	rep.FarmStats.MakespanSeconds = rep.TotalSeconds - rep.LoadSeconds
	rep.Wire = ms.mergeWire()
	rep.Metrics = ms.mergeMetrics()
	rep.Faults = ms.mergeFaults(coresPerChip)
	rep.Interchip = ms.interchipReport()
	return rep
}

// mergeFaults folds the per-chip fault summaries into one board-level
// block with global core ids (chip*coresPerChip + local); nil on
// fault-free runs.
func (ms *MultiSession) mergeFaults(coresPerChip int) *FaultStats {
	if ms.cfg.Faults == nil {
		return nil
	}
	out := &FaultStats{}
	for c, s := range ms.sessions {
		cf := s.rep.Faults
		if cf == nil {
			continue
		}
		out.Injected.CoresKilled += cf.Injected.CoresKilled
		out.Injected.CoresStalled += cf.Injected.CoresStalled
		out.Injected.Dropped += cf.Injected.Dropped
		out.Injected.Delayed += cf.Injected.Delayed
		out.Injected.Corrupted += cf.Injected.Corrupted
		out.Timeouts += cf.Timeouts
		out.DetectedCorrupt += cf.DetectedCorrupt
		out.Retries += cf.Retries
		out.Reassigned += cf.Reassigned
		out.DuplicatesDropped += cf.DuplicatesDropped
		out.LostJobs += cf.LostJobs
		for _, core := range cf.DeadCores {
			out.DeadCores = append(out.DeadCores, c*coresPerChip+core)
		}
		for _, core := range cf.Blacklisted {
			out.Blacklisted = append(out.Blacklisted, c*coresPerChip+core)
		}
	}
	sort.Ints(out.DeadCores)
	sort.Ints(out.Blacklisted)
	return out
}

// mergeWire sums the chip-local wire reports (nil when no chip used the
// cache/batch wire model).
func (ms *MultiSession) mergeWire() *WireReport {
	var out *WireReport
	for _, s := range ms.sessions {
		w := s.rep.Wire
		if w == nil {
			continue
		}
		if out == nil {
			out = &WireReport{CacheCapacity: w.CacheCapacity}
		}
		out.CacheHits += w.CacheHits
		out.CacheMisses += w.CacheMisses
		out.CacheEvictions += w.CacheEvictions
		out.CacheForcedReships += w.CacheForcedReships
		out.BaselineInputBytes += w.BaselineInputBytes
		out.ShippedInputBytes += w.ShippedInputBytes
		out.Batches += w.Batches
		out.BatchedJobs += w.BatchedJobs
		if w.MaxBatchJobs > out.MaxBatchJobs {
			out.MaxBatchJobs = w.MaxBatchJobs
		}
	}
	if out == nil {
		return nil
	}
	out.SavedInputBytes = out.BaselineInputBytes - out.ShippedInputBytes
	if out.CacheHits+out.CacheMisses > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(out.CacheHits+out.CacheMisses)
	}
	if out.ShippedInputBytes > 0 {
		out.InputReduction = float64(out.BaselineInputBytes) / float64(out.ShippedInputBytes)
	}
	if out.Batches > 0 {
		out.MeanBatchJobs = float64(out.BatchedJobs) / float64(out.Batches)
	}
	return out
}

// mergeMetrics aggregates the chip-level metrics blocks: deepest
// mailbox anywhere, job stages summed, the worst mesh link across all
// chips (named "cN:(x,y)->(x,y)").
func (ms *MultiSession) mergeMetrics() *MetricsReport {
	if ms.cfg.Metrics == nil {
		return nil
	}
	out := &MetricsReport{JobStages: map[string]StageAgg{}}
	for c, s := range ms.sessions {
		mr := s.rep.Metrics
		if mr == nil {
			continue
		}
		if mr.PeakMailboxDepth > out.PeakMailboxDepth {
			out.PeakMailboxDepth = mr.PeakMailboxDepth
		}
		for stage, agg := range mr.JobStages {
			cur := out.JobStages[stage]
			cur.Count += agg.Count
			cur.TotalSeconds += agg.TotalSeconds
			if agg.MaxSeconds > cur.MaxSeconds {
				cur.MaxSeconds = agg.MaxSeconds
			}
			out.JobStages[stage] = cur
		}
		if mr.WorstLinkBusySeconds > out.WorstLinkBusySeconds {
			out.WorstLink = fmt.Sprintf("c%d:%s", c, mr.WorstLink)
			out.WorstLinkBusySeconds = mr.WorstLinkBusySeconds
			out.WorstLinkUtilization = mr.WorstLinkUtilization
			out.LinkHeatmap = mr.LinkHeatmap
		}
	}
	for stage, agg := range out.JobStages {
		if agg.Count > 0 {
			agg.MeanSeconds = agg.TotalSeconds / float64(agg.Count)
		}
		out.JobStages[stage] = agg
	}
	return out
}

// interchipReport distills the fabric accounting into the Report block.
func (ms *MultiSession) interchipReport() *InterchipReport {
	n := ms.Chips()
	st := ms.rt.Fabric.Stats()
	out := &InterchipReport{
		Profile:         ms.rt.Fabric.Config().String(),
		Transfers:       st.Transfers,
		Bytes:           st.Bytes,
		SendWaitSeconds: st.SendWaitSeconds,
		PeakRootInbox:   st.PeakInboxDepth[0],
		RootFlows:       st.InboxMessages[0],
		GatherMode:      ms.gather.Mode,
		GatherArity:     ms.gather.Arity,
		GatherDepth:     ms.gather.Depth(n),
		RootFanIn:       len(ms.gather.Children(0, n)),
		AggMessages:     ms.aggMessages,
		ResultBytes:     ms.aggWireBytes,
	}
	for c := 0; c < n; c++ {
		out.ShardBytes += ms.shardBytes[c]
		out.PerPairResultBytes += ms.perPairBytes[c]
	}
	levels := make([]int, 0, len(ms.gatherLat))
	for level := range ms.gatherLat {
		levels = append(levels, level)
	}
	sort.Ints(levels)
	for _, level := range levels {
		lats := ms.gatherLat[level]
		gl := GatherLevel{Level: level, Blobs: int64(len(lats))}
		for _, lat := range lats {
			gl.MeanLatencySeconds += lat
			if lat > gl.MaxLatencySeconds {
				gl.MaxLatencySeconds = lat
			}
		}
		if len(lats) > 0 {
			gl.MeanLatencySeconds /= float64(len(lats))
		}
		out.GatherLevels = append(out.GatherLevels, gl)
	}
	if reg := ms.cfg.Metrics; reg != nil {
		for c := 0; c < n; c++ {
			out.IntraChipBytes += int64(reg.Counter("rcce.send.bytes", "chip", fmt.Sprintf("c%d", c)).Value())
		}
	}
	return out
}
