// Multi-chip farming: N SCC chips behind one Backend, joined by the
// interchip fabric, farmed hierarchically — a root master on chip 0
// core 0 ships each remote chip its shard of the job list over the
// fabric, that chip's sub-master (its core 0) FARMs the shard to its
// own slaves over its own mesh, and every result streams back to the
// root over the fabric. Chip 0's shard is farmed by the root itself, so
// a multi-chip system degenerates gracefully: the root does exactly the
// paper's single-master job on its own chip, plus the scatter/gather at
// the board tier. Each chip is a full Session (placement, team, wire
// model, metrics scoped "chip"/"cN"), all sharing one engine and trace
// recorder; MultiSession owns construction, the master bodies, and the
// combined Report with per-chip and interconnect breakdowns.
package farm

import (
	"errors"
	"fmt"
	"sort"

	"rckalign/internal/interchip"
	"rckalign/internal/metrics"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// ErrChipCount reports a MultiSession configured with fewer than two
// chips — a 1-chip system must run the classic flat path, which is
// bit-identical by construction instead of by simulation accident.
var ErrChipCount = errors.New("farm: multi-chip session needs at least 2 chips")

// Fabric wire-framing constants for the master→sub-master→master
// protocol (the board-tier analogue of the batch framing constants).
const (
	// ShardHeaderBytes frames one shard descriptor (job table, counts).
	ShardHeaderBytes = 64
	// InterchipResultHeaderBytes frames each result forwarded to the
	// root on top of its on-chip result bytes.
	InterchipResultHeaderBytes = 16
	// InterchipControlBytes is the size of a control message
	// (shard-done).
	InterchipControlBytes = 64
)

// MultiChip is the multi-chip Backend: Chips copies of one scc.Config
// joined by an interchip fabric. Core names are prefixed per chip
// ("c1.rck00"), so traces, reports and per-core metrics stay
// distinguishable.
type MultiChip struct {
	// Chips is the chip count (>= 2 for a MultiSession).
	Chips int
	// Chip is the per-chip configuration (DefaultConfig = Table I).
	Chip scc.Config
	// Interchip is the board-level interconnect profile (zero value =
	// interchip.DefaultConfig).
	Interchip interchip.Config
}

// Name implements Backend.
func (b MultiChip) Name() string { return fmt.Sprintf("multichip-%d", b.Chips) }

// NumCores implements Backend (total across chips).
func (b MultiChip) NumCores() int { return b.Chips * b.Chip.NumCores() }

// interconnect resolves the zero-value default.
func (b MultiChip) interconnect() interchip.Config {
	if b.Interchip == (interchip.Config{}) {
		return interchip.DefaultConfig()
	}
	return b.Interchip
}

// NewRuntime implements Backend: one engine, Chips prefixed chips with
// their comms, and the fabric joining them. Chip/Comm alias chip 0.
func (b MultiChip) NewRuntime() Runtime {
	engine := sim.NewEngine()
	chips := make([]*scc.Chip, b.Chips)
	comms := make([]*rcce.Comm, b.Chips)
	for c := 0; c < b.Chips; c++ {
		ccfg := b.Chip
		ccfg.NamePrefix = fmt.Sprintf("c%d.%s", c, b.Chip.NamePrefix)
		chips[c] = scc.New(engine, ccfg)
		comms[c] = rcce.New(chips[c])
	}
	return Runtime{
		Engine: engine,
		Chip:   chips[0], Comm: comms[0],
		Chips: chips, Comms: comms,
		Fabric: interchip.New(b.Chips, b.interconnect()),
	}
}

// MultiConfig describes one multi-chip farm session. Fault plans are
// not supported at the board tier (core ids in a plan are ambiguous
// across chips); single-chip fault-tolerant runs take the flat path.
type MultiConfig struct {
	// Backend is the chip topology (Chips >= 2).
	Backend MultiChip
	// SlavesPerChip is the slave-core count on every chip (the chip
	// master occupies core 0, so at most NumCores-1).
	SlavesPerChip int
	// ThreadsPerWorker / ThreadEfficiency / PollingScale as in Config,
	// applied identically on every chip.
	ThreadsPerWorker int
	ThreadEfficiency float64
	PollingScale     float64
	// Trace / Metrics / Collector as in Config, shared by all chips
	// (metric keys are scoped per chip).
	Trace     *trace.Recorder
	Metrics   *metrics.Registry
	Collector Collector
	// Batch / CacheStructs as in Config, applied per chip — each chip
	// session owns an independent cache model, so the wire accounting
	// splits naturally per interconnect tier.
	Batch        int
	CacheStructs int
}

// MultiSession is a constructed multi-chip farm: one chip-level Session
// per chip on a shared runtime. Start slaves per chip, prepare each
// chip's job queue through its session (ChipSession(c).PrepareJobs),
// then call Run.
type MultiSession struct {
	cfg      MultiConfig
	rt       Runtime
	rec      *trace.Recorder
	sessions []*Session

	shardBytes  []int64
	resultBytes []int64
}

// NewMultiSession validates the configuration and builds the runtime
// and per-chip sessions.
func NewMultiSession(cfg MultiConfig) (*MultiSession, error) {
	if cfg.Backend.Chips < 2 {
		return nil, fmt.Errorf("%w (got %d)", ErrChipCount, cfg.Backend.Chips)
	}
	rec := cfg.Trace
	if rec == nil {
		rec = trace.New()
	}
	rt := cfg.Backend.NewRuntime()
	if cfg.Metrics != nil {
		rt.Fabric.SetMetrics(cfg.Metrics)
	}
	ms := &MultiSession{
		cfg: cfg, rt: rt, rec: rec,
		shardBytes:  make([]int64, cfg.Backend.Chips),
		resultBytes: make([]int64, cfg.Backend.Chips),
	}
	for c := 0; c < cfg.Backend.Chips; c++ {
		scfg := Config{
			Backend:          SCCSim{Chip: rt.Chips[c].Config()},
			MasterCore:       0,
			Slaves:           cfg.SlavesPerChip,
			ThreadsPerWorker: cfg.ThreadsPerWorker,
			ThreadEfficiency: cfg.ThreadEfficiency,
			PollingScale:     cfg.PollingScale,
			Trace:            rec,
			Metrics:          cfg.Metrics,
			Collector:        cfg.Collector,
			Batch:            cfg.Batch,
			CacheStructs:     cfg.CacheStructs,
		}
		chipRT := Runtime{
			Engine: rt.Engine,
			Chip:   rt.Chips[c], Comm: rt.Comms[c],
			Chips: rt.Chips, Comms: rt.Comms, Fabric: rt.Fabric,
		}
		s, err := newSession(scfg, chipRT, []string{"chip", fmt.Sprintf("c%d", c)})
		if err != nil {
			return nil, fmt.Errorf("farm: chip %d: %w", c, err)
		}
		ms.sessions = append(ms.sessions, s)
	}
	return ms, nil
}

// Chips returns the chip count.
func (ms *MultiSession) Chips() int { return ms.cfg.Backend.Chips }

// Runtime returns the shared runtime (engine, chips, fabric).
func (ms *MultiSession) Runtime() Runtime { return ms.rt }

// ChipSession returns chip c's Session (for PrepareJobs, placement
// inspection and custom slave start).
func (ms *MultiSession) ChipSession(c int) *Session { return ms.sessions[c] }

// StartSlaves spawns every chip's slave loops with the same handler.
func (ms *MultiSession) StartSlaves(h rckskel.Handler) {
	for _, s := range ms.sessions {
		s.StartSlaves(h)
	}
}

// shardMsg hands a chip its job queue; the modelled fabric bytes are
// the shard descriptor plus the structure payloads (computed by the
// caller, who owns the wire model).
type shardMsg struct{ jobs []rckskel.Job }

// resultMsg is a forwarded result: pure transport accounting — the
// result's bookkeeping (count, Collector) already happened at the
// sub-master that collected it.
type resultMsg struct{}

// shardDone signals a chip finished its shard (stats travel in the
// chip session's report, host-side).
type shardDone struct{ chip int }

// Run executes the multi-chip farm: queues[c] is chip c's prepared job
// queue (possibly empty), shardBytes[c] the fabric cost of handing
// chip c its shard (ignored for chip 0), loadResidues the root's
// one-time dataset load. It spawns every sub-master and the root,
// drives the shared engine to completion, and returns the combined
// report.
func (ms *MultiSession) Run(loadResidues int, queues [][]rckskel.Job, shardBytes []int64) (Report, error) {
	n := ms.Chips()
	if len(queues) != n || len(shardBytes) != n {
		return Report{}, fmt.Errorf("farm: multi-chip run wants %d queues and shard sizes, got %d and %d",
			n, len(queues), len(shardBytes))
	}
	fabric := ms.rt.Fabric
	copy(ms.shardBytes, shardBytes)
	ms.shardBytes[0] = 0

	for c := 1; c < n; c++ {
		c := c
		sess := ms.sessions[c]
		sess.SpawnMaster("", func(m *Master) {
			msg := fabric.Recv(m.P, c)
			sm := msg.Payload.(shardMsg)
			if len(sm.jobs) > 0 {
				m.Farm(sm.jobs, func(r rckskel.Result) {
					b := r.Bytes + InterchipResultHeaderBytes
					ms.resultBytes[c] += int64(b)
					fabric.Send(m.P, c, 0, b, resultMsg{})
				})
			}
			m.Terminate()
			fabric.Send(m.P, c, 0, InterchipControlBytes, shardDone{chip: c})
		})
	}

	root := ms.sessions[0]
	root.SpawnMaster("", func(m *Master) {
		if loadResidues > 0 {
			m.LoadResidues(loadResidues)
		}
		for c := 1; c < n; c++ {
			fabric.Send(m.P, 0, c, int(ms.shardBytes[c]), shardMsg{jobs: queues[c]})
		}
		if len(queues[0]) > 0 {
			m.Farm(queues[0], nil)
		}
		m.Terminate()
		// Gather: remote results and shard-done markers arrive through
		// the root inbox in fabric order; results were booked at their
		// sub-master, so the drain only pays the transport and handling
		// time — which is exactly where a saturated root shows up.
		for pending := n - 1; pending > 0; {
			msg := fabric.Recv(m.P, 0)
			if _, ok := msg.Payload.(shardDone); ok {
				pending--
			}
		}
	})

	err := ms.rt.Engine.Run()
	return ms.finalize(), err
}

// finalize folds the chip sessions into the combined multi-chip report.
func (ms *MultiSession) finalize() Report {
	n := ms.Chips()
	root := ms.sessions[0]
	coresPerChip := ms.cfg.Backend.Chip.NumCores()

	rep := Report{
		Backend:              ms.cfg.Backend.Name(),
		Slaves:               n * ms.cfg.SlavesPerChip,
		Chips:                n,
		LoadSeconds:          root.rep.LoadSeconds,
		TotalSeconds:         root.rep.TotalSeconds,
		FarmStats:            rckskel.Stats{JobsPerSlave: map[int]int{}},
		CoreBusySeconds:      map[string]float64{},
		CoreUtilization:      map[string]float64{},
		BusySecondsPerMethod: map[string]float64{},
	}

	for c, s := range ms.sessions {
		s.finalize()
		rep.Workers += s.rep.Workers
		rep.EffectiveCores += s.rep.EffectiveCores
		rep.DroppedCores += s.rep.DroppedCores
		rep.Collected += s.rep.Collected
		for local, jobs := range s.rep.FarmStats.JobsPerSlave {
			rep.FarmStats.JobsPerSlave[c*coresPerChip+local] += jobs
		}
		rep.FarmStats.PollProbes += s.rep.FarmStats.PollProbes

		// Sum busy time in sorted track order: map iteration order would
		// make the float accumulation (and so MeanUtilization) vary in the
		// last bit between identical runs.
		tracks := make([]string, 0, len(s.rep.CoreBusySeconds))
		for track := range s.rep.CoreBusySeconds {
			tracks = append(tracks, track)
		}
		sort.Strings(tracks)
		chipBusy := 0.0
		for _, track := range tracks {
			busy := s.rep.CoreBusySeconds[track]
			rep.CoreBusySeconds[track] = busy
			if rep.TotalSeconds > 0 {
				rep.CoreUtilization[track] = busy / rep.TotalSeconds
			}
			chipBusy += busy
		}
		cr := ChipReport{
			Chip:         c,
			Master:       ms.rt.Chips[c].CoreName(0),
			Collected:    s.rep.Collected,
			TotalSeconds: s.rep.TotalSeconds,
			FarmStats:    s.rep.FarmStats,
			Wire:         s.rep.Wire,
			ShardBytes:   ms.shardBytes[c],
			ResultBytes:  ms.resultBytes[c],
		}
		if len(tracks) > 0 && rep.TotalSeconds > 0 {
			cr.MeanUtilization = chipBusy / (float64(len(tracks)) * rep.TotalSeconds)
		}
		if s.rep.Metrics != nil {
			cr.PeakMailboxDepth = s.rep.Metrics.PeakMailboxDepth
		}
		rep.PerChip = append(rep.PerChip, cr)
	}
	rep.FarmStats.MakespanSeconds = rep.TotalSeconds - rep.LoadSeconds
	rep.Wire = ms.mergeWire()
	rep.Metrics = ms.mergeMetrics()
	rep.Interchip = ms.interchipReport()
	return rep
}

// mergeWire sums the chip-local wire reports (nil when no chip used the
// cache/batch wire model).
func (ms *MultiSession) mergeWire() *WireReport {
	var out *WireReport
	for _, s := range ms.sessions {
		w := s.rep.Wire
		if w == nil {
			continue
		}
		if out == nil {
			out = &WireReport{CacheCapacity: w.CacheCapacity}
		}
		out.CacheHits += w.CacheHits
		out.CacheMisses += w.CacheMisses
		out.CacheEvictions += w.CacheEvictions
		out.CacheForcedReships += w.CacheForcedReships
		out.BaselineInputBytes += w.BaselineInputBytes
		out.ShippedInputBytes += w.ShippedInputBytes
		out.Batches += w.Batches
		out.BatchedJobs += w.BatchedJobs
		if w.MaxBatchJobs > out.MaxBatchJobs {
			out.MaxBatchJobs = w.MaxBatchJobs
		}
	}
	if out == nil {
		return nil
	}
	out.SavedInputBytes = out.BaselineInputBytes - out.ShippedInputBytes
	if out.CacheHits+out.CacheMisses > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(out.CacheHits+out.CacheMisses)
	}
	if out.ShippedInputBytes > 0 {
		out.InputReduction = float64(out.BaselineInputBytes) / float64(out.ShippedInputBytes)
	}
	if out.Batches > 0 {
		out.MeanBatchJobs = float64(out.BatchedJobs) / float64(out.Batches)
	}
	return out
}

// mergeMetrics aggregates the chip-level metrics blocks: deepest
// mailbox anywhere, job stages summed, the worst mesh link across all
// chips (named "cN:(x,y)->(x,y)").
func (ms *MultiSession) mergeMetrics() *MetricsReport {
	if ms.cfg.Metrics == nil {
		return nil
	}
	out := &MetricsReport{JobStages: map[string]StageAgg{}}
	for c, s := range ms.sessions {
		mr := s.rep.Metrics
		if mr == nil {
			continue
		}
		if mr.PeakMailboxDepth > out.PeakMailboxDepth {
			out.PeakMailboxDepth = mr.PeakMailboxDepth
		}
		for stage, agg := range mr.JobStages {
			cur := out.JobStages[stage]
			cur.Count += agg.Count
			cur.TotalSeconds += agg.TotalSeconds
			if agg.MaxSeconds > cur.MaxSeconds {
				cur.MaxSeconds = agg.MaxSeconds
			}
			out.JobStages[stage] = cur
		}
		if mr.WorstLinkBusySeconds > out.WorstLinkBusySeconds {
			out.WorstLink = fmt.Sprintf("c%d:%s", c, mr.WorstLink)
			out.WorstLinkBusySeconds = mr.WorstLinkBusySeconds
			out.WorstLinkUtilization = mr.WorstLinkUtilization
			out.LinkHeatmap = mr.LinkHeatmap
		}
	}
	for stage, agg := range out.JobStages {
		if agg.Count > 0 {
			agg.MeanSeconds = agg.TotalSeconds / float64(agg.Count)
		}
		out.JobStages[stage] = agg
	}
	return out
}

// interchipReport distills the fabric accounting into the Report block.
func (ms *MultiSession) interchipReport() *InterchipReport {
	st := ms.rt.Fabric.Stats()
	out := &InterchipReport{
		Profile:         ms.rt.Fabric.Config().String(),
		Transfers:       st.Transfers,
		Bytes:           st.Bytes,
		SendWaitSeconds: st.SendWaitSeconds,
		PeakRootInbox:   st.PeakInboxDepth[0],
	}
	for c := 0; c < ms.Chips(); c++ {
		out.ShardBytes += ms.shardBytes[c]
		out.ResultBytes += ms.resultBytes[c]
	}
	if reg := ms.cfg.Metrics; reg != nil {
		for c := 0; c < ms.Chips(); c++ {
			out.IntraChipBytes += int64(reg.Counter("rcce.send.bytes", "chip", fmt.Sprintf("c%d", c)).Value())
		}
	}
	return out
}
