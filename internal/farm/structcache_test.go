package farm

import "testing"

func TestStructCacheMissThenHit(t *testing.T) {
	sizes := []int{100, 200, 300, 400}
	c := NewStructCache(3, sizes, 0, nil)
	if got := c.Request(1, []int{0, 1}); got != 300 {
		t.Errorf("cold request shipped %d bytes, want 300", got)
	}
	if got := c.Request(1, []int{0, 1}); got != 0 {
		t.Errorf("warm request shipped %d bytes, want 0", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
	if st.BytesShipped != 300 || st.BytesSaved != 300 {
		t.Errorf("bytes = %+v", st)
	}
}

func TestStructCachePerSlaveIndependence(t *testing.T) {
	sizes := []int{10, 20}
	c := NewStructCache(2, sizes, 0, nil)
	c.Request(0, []int{0, 1})
	// Slave 3 has its own empty cache: full miss.
	if got := c.Request(3, []int{0, 1}); got != 30 {
		t.Errorf("other slave shipped %d bytes, want 30", got)
	}
	if !c.Resident(0, 0) || !c.Resident(3, 1) {
		t.Error("residency not tracked per slave")
	}
	if c.Resident(7, 0) {
		t.Error("untouched slave reports residency")
	}
}

func TestStructCacheLRUEviction(t *testing.T) {
	sizes := []int{1, 1, 1, 1, 1}
	c := NewStructCache(2, sizes, 0, nil)
	c.Request(0, []int{0, 1}) // resident: {0,1}
	c.Request(0, []int{2})    // evicts 0 (LRU) -> {1,2}
	if c.Resident(0, 0) {
		t.Error("structure 0 should have been evicted")
	}
	if !c.Resident(0, 1) || !c.Resident(0, 2) {
		t.Error("expected {1,2} resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
	// A hit refreshes recency: touch 1, then insert 3 -> 2 is the victim.
	c.Request(0, []int{1})
	c.Request(0, []int{3})
	if c.Resident(0, 2) || !c.Resident(0, 1) || !c.Resident(0, 3) {
		t.Error("touch did not refresh LRU order")
	}
}

func TestStructCacheEvictionAvoidsCurrentRequest(t *testing.T) {
	sizes := make([]int, 6)
	for i := range sizes {
		sizes[i] = 1
	}
	// Capacity 3, request 3 new structures while 3 others are resident:
	// the victims must all come from the old set, never the request.
	c := NewStructCache(3, sizes, 0, nil)
	c.Request(0, []int{0, 1, 2})
	c.Request(0, []int{3, 4, 5})
	for id := 3; id <= 5; id++ {
		if !c.Resident(0, id) {
			t.Errorf("structure %d from the current request was evicted", id)
		}
	}
	for id := 0; id <= 2; id++ {
		if c.Resident(0, id) {
			t.Errorf("stale structure %d survived", id)
		}
	}
}

func TestStructCacheCapacityFloor(t *testing.T) {
	c := NewStructCache(0, []int{1, 1}, 0, nil)
	if c.Capacity() != 2 {
		t.Errorf("capacity = %d, want floor of 2", c.Capacity())
	}
	// Both structures of one pair must be able to coexist.
	c.Request(0, []int{0, 1})
	if !c.Resident(0, 0) || !c.Resident(0, 1) {
		t.Error("a pair does not fit in the floored cache")
	}
}

func TestStructCacheCapacityRaisedToMaxRequest(t *testing.T) {
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = 1
	}
	// A configured capacity smaller than the largest batch request is
	// raised so the whole batch stays resident — no structure of the
	// request is evicted right after shipping.
	c := NewStructCache(2, sizes, 5, nil)
	if c.Capacity() != 5 {
		t.Errorf("capacity = %d, want 5 (raised to max request)", c.Capacity())
	}
	c.Request(0, []int{0, 1, 2, 3, 4})
	for id := 0; id <= 4; id++ {
		if !c.Resident(0, id) {
			t.Errorf("structure %d of the oversized batch was evicted", id)
		}
	}
	if st := c.Stats(); st.ForcedReships != 0 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want no evictions", st)
	}

	// EnsureCapacity raises for a later, larger queue and never shrinks.
	c.EnsureCapacity(7)
	if c.Capacity() != 7 {
		t.Errorf("capacity = %d after EnsureCapacity(7)", c.Capacity())
	}
	c.EnsureCapacity(3)
	if c.Capacity() != 7 {
		t.Errorf("EnsureCapacity shrank the cache to %d", c.Capacity())
	}
}

func TestStructCacheOversizedRequestCountsForcedReships(t *testing.T) {
	sizes := make([]int, 6)
	for i := range sizes {
		sizes[i] = 1
	}
	// Bypass the constructor's raise by requesting more structures than
	// the capacity directly: every eviction must victimise a structure
	// of the request itself, and each one is counted as a forced
	// re-ship instead of silently thrashing.
	c := NewStructCache(3, sizes, 0, nil)
	c.Request(0, []int{0, 1, 2, 3, 4})
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.ForcedReships != 2 {
		t.Errorf("forced re-ships = %d, want 2 (all victims were in the request)", st.ForcedReships)
	}
}

func TestSlaveLRUAbsentID(t *testing.T) {
	l := &slaveLRU{resident: map[int]bool{}}
	l.ids = append(l.ids, 1, 2)
	l.resident[1] = true
	l.resident[2] = true
	if l.touch(9) {
		t.Error("touch reported an absent id as present")
	}
	if l.remove(9) {
		t.Error("remove reported an absent id as present")
	}
	if len(l.ids) != 2 || !l.resident[1] || !l.resident[2] {
		t.Errorf("absent-id ops disturbed the LRU: ids=%v resident=%v", l.ids, l.resident)
	}
	if !l.remove(1) || len(l.ids) != 1 || l.resident[1] {
		t.Errorf("present-id remove broken: ids=%v resident=%v", l.ids, l.resident)
	}
}
