// Batched and cache-aware dispatch: PrepareJobs transforms an ordered
// job list into the session's configured wire shape — up to Batch jobs
// bundled per request message, and per-slave request sizes resolved at
// dispatch time against the StructCache model. The transformation is a
// pure re-framing of the same work: slaves execute the same handler on
// the same pair payloads, and collection unwraps batched results back
// into per-job results, so application output (TM-align scores) is
// bit-identical to the classic one-message-per-job farm. Because a
// batch is just a Job with a BatchPayload, the classic FARM and the
// fault-tolerant FARMFT run it unchanged — a batch times out, retries
// and reassigns as one unit.
package farm

import (
	"rckalign/internal/costmodel"
	"rckalign/internal/metrics"
	"rckalign/internal/rckskel"
)

// Wire-framing constants of the cached/batched request model.
const (
	// PairHeaderBytes frames a cache-aware single-job request: job id,
	// structure ids and lengths replace coordinates already resident on
	// the slave.
	PairHeaderBytes = 32
	// BatchHeaderBytes frames one batched request message.
	BatchHeaderBytes = 32
	// BatchJobHeaderBytes is the per-job framing inside a batch.
	BatchJobHeaderBytes = 16
	// BatchResultHeaderBytes frames a batched result message on top of
	// the sub-results it carries.
	BatchResultHeaderBytes = 16
)

// BatchPayload bundles several jobs into one request message.
type BatchPayload struct {
	// Jobs are the bundled sub-jobs, in dispatch order.
	Jobs []rckskel.Job
}

// BatchResult carries one result per bundled sub-job back to the
// master; Session collection unwraps it so Collectors only ever see
// per-job results.
type BatchResult struct {
	// Results correspond to BatchPayload.Jobs.
	Results []rckskel.Result
}

// BatchHandler wraps a per-job handler into one that also executes
// BatchPayload jobs: the slave runs the sub-jobs back to back (op
// counts sum), and returns one framed BatchResult. Non-batch jobs pass
// through untouched, so the wrapped handler is safe on classic farms.
func BatchHandler(h rckskel.Handler) rckskel.Handler {
	return func(job rckskel.Job) (any, costmodel.Counter, int) {
		bp, ok := job.Payload.(BatchPayload)
		if !ok {
			return h(job)
		}
		var ops costmodel.Counter
		results := make([]rckskel.Result, 0, len(bp.Jobs))
		bytes := BatchResultHeaderBytes
		for _, sub := range bp.Jobs {
			payload, subOps, resultBytes := h(sub)
			ops.Add(subOps)
			if resultBytes < 1 {
				resultBytes = 1
			}
			results = append(results, rckskel.Result{
				JobID: sub.ID, Payload: payload, Bytes: resultBytes,
			})
			bytes += resultBytes
		}
		return BatchResult{Results: results}, ops, bytes
	}
}

// WireModel tells PrepareJobs how jobs map onto structures: StructsOf
// lists the structure ids a job's request would ship, Sizes[i] is
// structure i's coordinate wire size.
type WireModel struct {
	StructsOf func(j rckskel.Job) []int
	Sizes     []int
}

// wireStats accumulates the dispatch-side wire accounting of a
// prepared session.
type wireStats struct {
	dispatches    int64
	batches       int64
	batchedJobs   int64
	maxBatchJobs  int64
	baselineBytes int64
	shippedBytes  int64
}

// PrepareJobs applies the session's configured wire shape to an
// ordered job list: consecutive jobs are bundled into batches of up to
// Config.Batch, and every produced job gets a SizeFor hook that
// resolves its request size per slave at dispatch time (against the
// structure-cache model when Config.CacheStructs > 0, with batch-level
// structure dedup either way). With Batch <= 1 and no cache it returns
// the jobs unchanged — the classic wire model. Call it once per queue;
// multiple queues of one session share the cache model and the wire
// accounting. Slaves of a batched session must run a BatchHandler-
// wrapped handler.
func (s *Session) PrepareJobs(jobs []rckskel.Job, wm WireModel) []rckskel.Job {
	batch := s.cfg.Batch
	if batch < 1 {
		batch = 1
	}
	cached := s.cfg.CacheStructs > 0
	if batch == 1 && !cached {
		return jobs
	}
	// Split into groups and resolve each group's deduplicated structure
	// list up front: the largest group request must be known before the
	// cache model exists, so its capacity can be raised to fit it (an
	// undersized cache would evict structures of the very request that
	// shipped them, re-shipping on every batch).
	groups := make([][]rckskel.Job, 0, (len(jobs)+batch-1)/batch)
	for start := 0; start < len(jobs); start += batch {
		end := start + batch
		if end > len(jobs) {
			end = len(jobs)
		}
		groups = append(groups, jobs[start:end])
	}
	groupStructs := make([][]int, len(groups))
	maxRequest := 0
	for g, group := range groups {
		var structs []int
		seen := map[int]bool{}
		for _, j := range group {
			for _, id := range wm.StructsOf(j) {
				if !seen[id] {
					seen[id] = true
					structs = append(structs, id)
				}
			}
		}
		groupStructs[g] = structs
		if len(structs) > maxRequest {
			maxRequest = len(structs)
		}
	}
	if cached {
		if s.cache == nil {
			s.cache = NewStructCache(s.cfg.CacheStructs, wm.Sizes, maxRequest, s.cfg.Metrics, s.labels...)
		} else {
			s.cache.EnsureCapacity(maxRequest)
		}
	}
	if s.hBatchJobs == nil {
		s.hBatchJobs = s.cfg.Metrics.Histogram("farm.batch.jobs", metrics.CountBuckets, s.labels...)
		s.cDispatches = s.cfg.Metrics.Counter("farm.wire.dispatches", s.labels...)
		s.cInputBaseline = s.cfg.Metrics.Counter("farm.wire.input_bytes_baseline", s.labels...)
		s.cInputShipped = s.cfg.Metrics.Counter("farm.wire.input_bytes_shipped", s.labels...)
	}
	out := make([]rckskel.Job, 0, len(groups))
	for g, group := range groups {
		out = append(out, s.wireJob(group, groupStructs[g], wm))
	}
	return out
}

// wireJob re-frames one group of jobs (a batch, or a single job when
// batching is off) into a dispatch-sized job. structs is the group's
// deduplicated structure list in first-use order (a batch ships each
// structure at most once), precomputed by PrepareJobs.
func (s *Session) wireJob(group []rckskel.Job, structs []int, wm WireModel) rckskel.Job {
	batched := len(group) > 1 || s.cfg.Batch > 1
	header := PairHeaderBytes
	if batched {
		header = BatchHeaderBytes + BatchJobHeaderBytes*len(group)
	}
	baseline := 0
	for _, j := range group {
		baseline += j.Bytes
	}
	allBytes := 0
	for _, id := range structs {
		allBytes += wm.Sizes[id]
	}
	s.wire.batches++
	s.wire.batchedJobs += int64(len(group))
	if int64(len(group)) > s.wire.maxBatchJobs {
		s.wire.maxBatchJobs = int64(len(group))
	}
	s.hBatchJobs.Observe(float64(len(group)))

	job := rckskel.Job{ID: group[0].ID, Bytes: header + allBytes}
	if batched {
		job.Payload = BatchPayload{Jobs: append([]rckskel.Job(nil), group...)}
	} else {
		job.Payload = group[0].Payload
	}
	job.SizeFor = func(slave int) int {
		bytes := header
		if s.cache != nil {
			bytes += s.cache.Request(slave, structs)
		} else {
			bytes += allBytes
		}
		s.wire.dispatches++
		s.wire.baselineBytes += int64(baseline)
		s.wire.shippedBytes += int64(bytes)
		s.cDispatches.Inc()
		s.cInputBaseline.Add(float64(baseline))
		s.cInputShipped.Add(float64(bytes))
		return bytes
	}
	return job
}

// WireReport is the Report block summarising the cache/batch wire
// model (nil on classic runs that never went through PrepareJobs).
type WireReport struct {
	// CacheCapacity is the modelled per-slave cache size in structures
	// (0 = caching off, batching only).
	CacheCapacity int
	// CacheHits / CacheMisses / CacheEvictions count structure
	// references against the cache model.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	// CacheForcedReships counts evictions of structures belonging to the
	// request being dispatched (see CacheStats.ForcedReships); non-zero
	// values flag an undersized cache.
	CacheForcedReships int64
	// CacheHitRate = CacheHits / (CacheHits + CacheMisses).
	CacheHitRate float64
	// BaselineInputBytes is what the classic ship-both-structures model
	// would have sent over the NoC for the same dispatches.
	BaselineInputBytes int64
	// ShippedInputBytes is what the cached/batched model actually sent.
	ShippedInputBytes int64
	// SavedInputBytes = BaselineInputBytes - ShippedInputBytes.
	SavedInputBytes int64
	// InputReduction = BaselineInputBytes / ShippedInputBytes.
	InputReduction float64
	// Batches counts request messages built; BatchedJobs the jobs
	// bundled into them.
	Batches     int64
	BatchedJobs int64
	// MeanBatchJobs / MaxBatchJobs describe the batch-size distribution.
	MeanBatchJobs float64
	MaxBatchJobs  int64
}

// wireReport distills the session's wire accounting, or nil when the
// session dispatched classically.
func (s *Session) wireReport() *WireReport {
	if s.wire.batches == 0 {
		return nil
	}
	w := &WireReport{
		BaselineInputBytes: s.wire.baselineBytes,
		ShippedInputBytes:  s.wire.shippedBytes,
		SavedInputBytes:    s.wire.baselineBytes - s.wire.shippedBytes,
		Batches:            s.wire.batches,
		BatchedJobs:        s.wire.batchedJobs,
		MaxBatchJobs:       s.wire.maxBatchJobs,
	}
	if s.wire.shippedBytes > 0 {
		w.InputReduction = float64(s.wire.baselineBytes) / float64(s.wire.shippedBytes)
	}
	if s.wire.batches > 0 {
		w.MeanBatchJobs = float64(s.wire.batchedJobs) / float64(s.wire.batches)
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		w.CacheCapacity = s.cache.Capacity()
		w.CacheHits = cs.Hits
		w.CacheMisses = cs.Misses
		w.CacheEvictions = cs.Evictions
		w.CacheForcedReships = cs.ForcedReships
		if cs.Hits+cs.Misses > 0 {
			w.CacheHitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		}
	}
	return w
}
