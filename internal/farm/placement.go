package farm

import (
	"errors"
	"fmt"
)

// Typed configuration errors, matchable with errors.Is. Place and
// NewSession wrap them with the offending values.
var (
	// ErrNoBackend reports a Config with no runtime backend.
	ErrNoBackend = errors.New("no backend")
	// ErrMasterCore reports an on-chip master core outside the chip.
	ErrMasterCore = errors.New("master core out of range")
	// ErrSlaveCount reports a slave count below 1 or beyond the cores
	// the backend can offer.
	ErrSlaveCount = errors.New("slave count out of range")
	// ErrWorkerGrouping reports too few slave cores to form even one
	// thread-grouped worker.
	ErrWorkerGrouping = errors.New("cannot form a worker")
	// ErrNoJobs reports a nil or empty job list handed to a farm.
	ErrNoJobs = errors.New("no jobs")
	// ErrPartitionSizes reports a contiguous partition whose sizes do
	// not cover the core list exactly.
	ErrPartitionSizes = errors.New("partition sizes do not cover cores")
	// ErrFaultPlan reports an invalid fault plan (out-of-range cores,
	// faults aimed at the master, bad probabilities).
	ErrFaultPlan = errors.New("invalid fault plan")
	// ErrFaultsUnsupported reports a run path that cannot execute
	// fault-tolerantly (hierarchical and partitioned farms).
	ErrFaultsUnsupported = errors.New("fault injection unsupported for this path")
	// ErrDynamicFaults reports a fault plan configured on a dynamic
	// (pull-based) session: FarmDynamic has no fault-tolerant variant,
	// so the combination is rejected at construction instead of
	// failing mid-run.
	ErrDynamicFaults = errors.New("dynamic (pull-based) farms cannot run fault-tolerantly")
)

// Placement assigns slave cores and groups them into worker processes.
type Placement struct {
	// Master is the master's core (HostMaster when off-chip).
	Master int
	// Cores lists the placed slave cores in id order (master skipped).
	Cores []int
	// WorkerLeads holds the first core of each worker process; the
	// worker's thread partners are the following Threads-1 cores.
	WorkerLeads []int
	// Threads is the per-worker thread count (>= 1).
	Threads int
	// OpScale scales a job's operation counts on a multi-threaded
	// worker: 1/(Threads*efficiency), 1 for single-threaded workers.
	OpScale float64
	// EffectiveCores = len(WorkerLeads) * Threads.
	EffectiveCores int
	// DroppedCores counts placed cores that could not form a complete
	// worker (Slaves mod Threads leftovers).
	DroppedCores int
}

// Place computes the slave placement for a config: cfg.Slaves cores in
// id order, skipping the master core when it is on-chip, grouped into
// workers of cfg.ThreadsPerWorker cores.
func Place(cfg Config) (Placement, error) {
	if cfg.Backend == nil {
		return Placement{}, fmt.Errorf("farm: %w", ErrNoBackend)
	}
	numCores := cfg.Backend.NumCores()
	maxSlaves := numCores
	if cfg.MasterCore != HostMaster {
		if cfg.MasterCore < 0 || cfg.MasterCore >= numCores {
			return Placement{}, fmt.Errorf("farm: %w: core %d outside [0,%d)", ErrMasterCore, cfg.MasterCore, numCores)
		}
		maxSlaves--
	}
	if cfg.Slaves < 1 || cfg.Slaves > maxSlaves {
		return Placement{}, fmt.Errorf("farm: %w: %d outside [1,%d]", ErrSlaveCount, cfg.Slaves, maxSlaves)
	}
	threads := cfg.ThreadsPerWorker
	if threads < 1 {
		threads = 1
	}
	eff := cfg.ThreadEfficiency
	if eff <= 0 || eff > 1 {
		eff = 0.9
	}
	workers := cfg.Slaves / threads
	if workers < 1 {
		return Placement{}, fmt.Errorf("farm: %w: %d cores for a %d-thread worker", ErrWorkerGrouping, cfg.Slaves, threads)
	}
	opScale := 1.0
	if threads > 1 {
		opScale = 1.0 / (float64(threads) * eff)
	}
	cores := make([]int, 0, cfg.Slaves)
	for c := 0; len(cores) < cfg.Slaves; c++ {
		if c == cfg.MasterCore {
			continue
		}
		cores = append(cores, c)
	}
	leads := make([]int, 0, workers)
	for w := 0; w < workers; w++ {
		leads = append(leads, cores[w*threads])
	}
	return Placement{
		Master:         cfg.MasterCore,
		Cores:          cores,
		WorkerLeads:    leads,
		Threads:        threads,
		OpScale:        opScale,
		EffectiveCores: workers * threads,
		DroppedCores:   cfg.Slaves - workers*threads,
	}, nil
}

// PartitionContiguous splits cores into len(sizes) contiguous groups
// (sizes must be non-negative and sum to len(cores)): the placement
// used to dedicate core ranges to different comparison methods. The
// sizes are validated before any slicing, so a misconfigured partition
// comes back as an ErrPartitionSizes diagnostic instead of a
// slice-bounds panic.
func PartitionContiguous(cores []int, sizes []int) ([][]int, error) {
	total := 0
	for i, n := range sizes {
		if n < 0 {
			return nil, fmt.Errorf("farm: %w: size[%d] = %d is negative", ErrPartitionSizes, i, n)
		}
		total += n
	}
	if total != len(cores) {
		return nil, fmt.Errorf("farm: %w: sizes %v cover %d of %d cores", ErrPartitionSizes, sizes, total, len(cores))
	}
	out := make([][]int, len(sizes))
	idx := 0
	for i, n := range sizes {
		out[i] = cores[idx : idx+n]
		idx += n
	}
	return out, nil
}

// PartitionRoundRobin deals cores one by one into n groups (group i
// receives cores i, i+n, i+2n, ...), the assignment used by the
// hierarchical master tree and the one-vs-all method split.
func PartitionRoundRobin(cores []int, n int) [][]int {
	out := make([][]int, n)
	for k, c := range cores {
		out[k%n] = append(out[k%n], c)
	}
	return out
}
