package farm_test

import (
	"errors"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
)

func TestPlaceTypedErrors(t *testing.T) {
	backend := farm.SCCSim{Chip: scc.DefaultConfig()} // 48 cores
	cases := []struct {
		name string
		cfg  farm.Config
		want error
	}{
		{"no backend", farm.Config{Slaves: 4}, farm.ErrNoBackend},
		{"master below range", farm.Config{Backend: backend, MasterCore: -2, Slaves: 4}, farm.ErrMasterCore},
		{"master above range", farm.Config{Backend: backend, MasterCore: 48, Slaves: 4}, farm.ErrMasterCore},
		{"zero slaves", farm.Config{Backend: backend, Slaves: 0}, farm.ErrSlaveCount},
		{"negative slaves", farm.Config{Backend: backend, Slaves: -3}, farm.ErrSlaveCount},
		{"too many slaves", farm.Config{Backend: backend, Slaves: 48}, farm.ErrSlaveCount},
		{"too many for host master", farm.Config{Backend: backend, MasterCore: farm.HostMaster, Slaves: 49}, farm.ErrSlaveCount},
		{"incomplete worker", farm.Config{Backend: backend, Slaves: 1, ThreadsPerWorker: 2}, farm.ErrWorkerGrouping},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := farm.Place(tc.cfg); !errors.Is(err, tc.want) {
				t.Errorf("Place error = %v, want errors.Is %v", err, tc.want)
			}
			if _, err := farm.NewSession(tc.cfg); tc.cfg.Backend != nil && !errors.Is(err, tc.want) {
				// NewSession substitutes a default backend, so the
				// no-backend case is only reachable through Place.
				t.Errorf("NewSession error = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
	// Host master allows exactly all cores as slaves.
	if _, err := farm.Place(farm.Config{Backend: backend, MasterCore: farm.HostMaster, Slaves: 48}); err != nil {
		t.Errorf("48 slaves under a host master rejected: %v", err)
	}
}

func TestValidateJobs(t *testing.T) {
	if err := farm.ValidateJobs(nil); !errors.Is(err, farm.ErrNoJobs) {
		t.Errorf("nil jobs: %v", err)
	}
	if err := farm.ValidateJobs([]rckskel.Job{}); !errors.Is(err, farm.ErrNoJobs) {
		t.Errorf("empty jobs: %v", err)
	}
	if err := farm.ValidateJobs([]rckskel.Job{{ID: 1, Bytes: 64}}); err != nil {
		t.Errorf("one sized job rejected: %v", err)
	}
	// Zero or negative request sizes would silently corrupt the NoC
	// transfer model; they are rejected with the rckskel typed error.
	if err := farm.ValidateJobs([]rckskel.Job{{ID: 1}}); !errors.Is(err, rckskel.ErrJobBytes) {
		t.Errorf("zero-byte job: err = %v, want ErrJobBytes", err)
	}
	if err := farm.ValidateJobs([]rckskel.Job{{ID: 1, Bytes: 64}, {ID: 2, Bytes: -3}}); !errors.Is(err, rckskel.ErrJobBytes) {
		t.Errorf("negative-byte job: err = %v, want ErrJobBytes", err)
	}
	// A SizeFor job resolves its size per slave at dispatch; its static
	// Bytes is not validated here.
	dyn := []rckskel.Job{{ID: 3, SizeFor: func(int) int { return 8 }}}
	if err := farm.ValidateJobs(dyn); err != nil {
		t.Errorf("SizeFor job rejected: %v", err)
	}
}

func TestNewSessionRejectsBadFaultPlan(t *testing.T) {
	backend := farm.SCCSim{Chip: scc.DefaultConfig()}
	for name, plan := range map[string]*fault.Plan{
		"kill master":       {Kills: []fault.CoreFailure{{Core: 0, At: 1}}},
		"kill out of range": {Kills: []fault.CoreFailure{{Core: 99, At: 1}}},
		"bad probability":   {Links: []fault.LinkFault{{Src: 1, Dst: 2, DropProb: 2}}},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := farm.Config{Backend: backend, MasterCore: 0, Slaves: 4, Faults: plan}
			if _, err := farm.NewSession(cfg); !errors.Is(err, farm.ErrFaultPlan) {
				t.Errorf("NewSession error = %v, want errors.Is ErrFaultPlan", err)
			}
		})
	}
}

func TestNewSessionRejectsDynamicWithFaults(t *testing.T) {
	// A dynamic (pull-based) session has no fault-tolerant farm variant,
	// so configuring both used to panic deep inside FarmDynamic at run
	// time. The combination is now a typed construction error.
	cfg := farm.Config{
		MasterCore: 0,
		Slaves:     4,
		Dynamic:    true,
		Faults:     &fault.Plan{},
	}
	if _, err := farm.NewSession(cfg); !errors.Is(err, farm.ErrDynamicFaults) {
		t.Errorf("NewSession error = %v, want errors.Is ErrDynamicFaults", err)
	}
	// Dynamic without faults is fine.
	cfg.Faults = nil
	if _, err := farm.NewSession(cfg); err != nil {
		t.Errorf("dynamic session without faults rejected: %v", err)
	}
}

func TestFarmDynamicOnFaultTolerantSessionErrors(t *testing.T) {
	// Backstop for sessions that configured faults without declaring
	// Dynamic: calling FarmDynamic mid-run returns the typed error
	// instead of panicking, and the run still terminates cleanly.
	s, err := farm.NewSession(farm.Config{
		MasterCore: 0,
		Slaves:     4,
		Faults:     &fault.Plan{},
		FT:         rckskel.FTConfig{JobDeadlineSeconds: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.StartSlaves(countJobs)
	var farmErr error
	if _, err := s.Run("", func(m *farm.Master) {
		_, farmErr = m.FarmDynamic(
			func(int) (rckskel.Job, bool) { return rckskel.Job{}, false },
			nil)
		m.Terminate()
	}); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !errors.Is(farmErr, farm.ErrDynamicFaults) {
		t.Errorf("FarmDynamic error = %v, want errors.Is ErrDynamicFaults", farmErr)
	}
}

// countJobs is a trivial handler for session-level FT tests.
func countJobs(job rckskel.Job) (any, costmodel.Counter, int) {
	return job.ID, costmodel.Counter{DPCells: 200000}, 8
}

func intJobs(n int) []rckskel.Job {
	jobs := make([]rckskel.Job, n)
	for i := range jobs {
		jobs[i] = rckskel.Job{ID: i, Payload: i, Bytes: 64}
	}
	return jobs
}

func TestSessionFaultTolerantKillRun(t *testing.T) {
	js := scc.DefaultConfig().CPU.Seconds(costmodel.Counter{DPCells: 200000})
	plan := &fault.Plan{Kills: []fault.CoreFailure{{Core: 2, At: 1.5 * js}}}
	s, err := farm.NewSession(farm.Config{
		MasterCore: 0,
		Slaves:     4,
		Faults:     plan,
		FT:         rckskel.FTConfig{JobDeadlineSeconds: 3 * js},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.StartSlaves(countJobs)
	got := map[int]int{}
	rep, err := s.Run("", func(m *farm.Master) {
		m.Farm(intJobs(24), func(r rckskel.Result) { got[r.JobID]++ })
		m.Terminate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 24 {
		t.Fatalf("collected %d of 24 jobs", len(got))
	}
	for id, n := range got {
		if n != 1 {
			t.Errorf("job %d collected %d times", id, n)
		}
	}
	if rep.Faults == nil {
		t.Fatal("fault-tolerant run produced no Faults block")
	}
	if rep.Faults.Injected.CoresKilled != 1 || len(rep.Faults.DeadCores) != 1 {
		t.Errorf("injection stats = %+v", rep.Faults)
	}
	if rep.Faults.Timeouts == 0 || rep.Faults.Retries == 0 {
		t.Errorf("recovery left no trace: %+v", rep.Faults)
	}
	if rep.Faults.LostJobs != 0 {
		t.Errorf("lost %d jobs with healthy slaves remaining", rep.Faults.LostJobs)
	}
	if rep.Collected != 24 {
		t.Errorf("report Collected = %d", rep.Collected)
	}
}

func TestSessionClassicRunHasNoFaultsBlock(t *testing.T) {
	s, err := farm.NewSession(farm.Config{MasterCore: 0, Slaves: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.StartSlaves(countJobs)
	rep, err := s.Run("", func(m *farm.Master) {
		m.Farm(intJobs(6), nil)
		m.Terminate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != nil {
		t.Errorf("classic run grew a Faults block: %+v", rep.Faults)
	}
}
