package farm

import (
	"errors"
	"reflect"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/interchip"
	"rckalign/internal/metrics"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
)

// multiChipRun builds an N-chip session over the default SCC chip,
// farms the given per-chip queues of synthetic jobs and returns the
// combined report plus every collected job id.
func multiChipRun(t *testing.T, chips, slaves int, queues [][]rckskel.Job, reg *metrics.Registry) (Report, []int) {
	t.Helper()
	var collected []int
	ms, err := NewMultiSession(MultiConfig{
		Backend:       MultiChip{Chips: chips, Chip: scc.DefaultConfig()},
		SlavesPerChip: slaves,
		PollingScale:  1,
		Metrics:       reg,
		Collector:     CollectorFunc(func(r rckskel.Result) { collected = append(collected, r.JobID) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	ms.StartSlaves(func(job rckskel.Job) (any, costmodel.Counter, int) {
		return job.Payload, costmodel.Counter{ScoreEvals: 1e6}, 64
	})
	shardBytes := make([]int64, chips)
	for c := range shardBytes {
		shardBytes[c] = ShardHeaderBytes + int64(len(queues[c]))*512
	}
	rep, err := ms.Run(1000, queues, shardBytes)
	if err != nil {
		t.Fatal(err)
	}
	return rep, collected
}

func synthQueues(chips, perChip int) [][]rckskel.Job {
	queues := make([][]rckskel.Job, chips)
	id := 0
	for c := range queues {
		for k := 0; k < perChip; k++ {
			queues[c] = append(queues[c], rckskel.Job{ID: id, Payload: id, Bytes: 512})
			id++
		}
	}
	return queues
}

func TestMultiChipRunsAFarm(t *testing.T) {
	reg := metrics.New()
	rep, collected := multiChipRun(t, 2, 3, synthQueues(2, 6), reg)

	if rep.Chips != 2 || rep.Backend != "multichip-2" {
		t.Errorf("Chips/Backend = %d/%q", rep.Chips, rep.Backend)
	}
	if rep.Collected != 12 || len(collected) != 12 {
		t.Fatalf("collected %d/%d results, want 12", rep.Collected, len(collected))
	}
	seen := map[int]int{}
	for _, id := range collected {
		seen[id]++
	}
	for id := 0; id < 12; id++ {
		if seen[id] != 1 {
			t.Errorf("job %d collected %d times", id, seen[id])
		}
	}
	if rep.TotalSeconds <= rep.LoadSeconds || rep.LoadSeconds <= 0 {
		t.Errorf("implausible times: total %v load %v", rep.TotalSeconds, rep.LoadSeconds)
	}
	// Global JobsPerSlave ids: chip 1's slaves live at 48+local.
	jobsTotal, remote := 0, 0
	for core, n := range rep.FarmStats.JobsPerSlave {
		jobsTotal += n
		if core >= 48 {
			remote += n
		}
	}
	if jobsTotal != 12 || remote != 6 {
		t.Errorf("JobsPerSlave global split = %d total / %d remote, want 12/6", jobsTotal, remote)
	}
	// 2 chips x (master + 3 slaves) traced cores.
	if len(rep.CoreUtilization) != 8 {
		t.Errorf("CoreUtilization has %d tracks, want 8: %v", len(rep.CoreUtilization), rep.CoreUtilization)
	}

	if len(rep.PerChip) != 2 {
		t.Fatalf("PerChip has %d entries", len(rep.PerChip))
	}
	c0, c1 := rep.PerChip[0], rep.PerChip[1]
	if c0.Master != "c0.rck00" || c1.Master != "c1.rck00" {
		t.Errorf("masters = %q, %q", c0.Master, c1.Master)
	}
	if c0.Collected != 6 || c1.Collected != 6 {
		t.Errorf("per-chip collected = %d, %d, want 6, 6", c0.Collected, c1.Collected)
	}
	if c0.ShardBytes != 0 || c0.ResultBytes != 0 {
		t.Errorf("chip 0 fabric bytes = %d/%d, want 0/0 (its shard never leaves the root)", c0.ShardBytes, c0.ResultBytes)
	}
	wantShard := int64(ShardHeaderBytes + 6*512)
	// One aggregate blob for the whole shard: header + 6 x 64 B results.
	wantResults := int64(AggregateHeaderBytes + 6*64)
	if c1.ShardBytes != wantShard || c1.ResultBytes != wantResults {
		t.Errorf("chip 1 fabric bytes = %d/%d, want %d/%d", c1.ShardBytes, c1.ResultBytes, wantShard, wantResults)
	}
	for _, cr := range rep.PerChip {
		if cr.MeanUtilization <= 0 || cr.MeanUtilization > 1 {
			t.Errorf("chip %d mean utilization %v outside (0,1]", cr.Chip, cr.MeanUtilization)
		}
		if cr.TotalSeconds <= 0 || cr.TotalSeconds > rep.TotalSeconds {
			t.Errorf("chip %d total %v outside (0, %v]", cr.Chip, cr.TotalSeconds, rep.TotalSeconds)
		}
	}

	ic := rep.Interchip
	if ic == nil {
		t.Fatal("no interchip report")
	}
	// 1 shard out + 1 aggregate blob back + 1 gather-done.
	if ic.Transfers != 3 {
		t.Errorf("interchip transfers = %d, want 3", ic.Transfers)
	}
	if want := wantShard + wantResults + InterchipControlBytes; ic.Bytes != want {
		t.Errorf("interchip bytes = %d, want %d", ic.Bytes, want)
	}
	if ic.ShardBytes != wantShard || ic.ResultBytes != wantResults {
		t.Errorf("interchip shard/result split = %d/%d, want %d/%d", ic.ShardBytes, ic.ResultBytes, wantShard, wantResults)
	}
	// Aggregation must beat the per-pair counterfactual (6 results x
	// (64 B + the per-result frame)) and keep the root inbox shallow.
	if want := int64(6 * (64 + InterchipResultHeaderBytes)); ic.PerPairResultBytes != want {
		t.Errorf("per-pair counterfactual = %d, want %d", ic.PerPairResultBytes, want)
	}
	if ic.ResultBytes >= ic.PerPairResultBytes {
		t.Errorf("aggregated result bytes %d not below per-pair %d", ic.ResultBytes, ic.PerPairResultBytes)
	}
	if ic.PeakRootInbox > 2 {
		t.Errorf("peak root inbox = %d, want <= 2 (one blob + one done in flight)", ic.PeakRootInbox)
	}
	if ic.RootFlows != 2 {
		t.Errorf("root flows = %d, want 2 (one blob + one done)", ic.RootFlows)
	}
	if ic.GatherMode != GatherTree || ic.RootFanIn != 1 || ic.AggMessages != 1 {
		t.Errorf("gather topology = %s fan-in %d agg msgs %d, want tree/1/1", ic.GatherMode, ic.RootFanIn, ic.AggMessages)
	}
	if len(ic.GatherLevels) != 1 || ic.GatherLevels[0].Level != 1 || ic.GatherLevels[0].Blobs != 1 ||
		ic.GatherLevels[0].MeanLatencySeconds <= 0 {
		t.Errorf("gather levels = %+v, want one level-1 hop with positive latency", ic.GatherLevels)
	}
	if ic.IntraChipBytes <= 0 {
		t.Errorf("intra-chip bytes = %d, want > 0 (registry was set)", ic.IntraChipBytes)
	}
	if ic.Profile == "" {
		t.Error("interchip profile is empty")
	}
	if rep.Metrics == nil || rep.Metrics.PeakMailboxDepth < 1 {
		t.Errorf("merged metrics = %+v, want peak mailbox >= 1", rep.Metrics)
	}
}

func TestMultiChipEmptyShard(t *testing.T) {
	queues := synthQueues(3, 4)
	queues[2] = nil // chip 2 idles: recv shard, terminate, report done
	rep, collected := multiChipRun(t, 3, 2, queues, nil)
	if rep.Collected != 8 || len(collected) != 8 {
		t.Errorf("collected %d/%d, want 8", rep.Collected, len(collected))
	}
	if rep.PerChip[2].Collected != 0 || rep.PerChip[2].ResultBytes != 0 {
		t.Errorf("idle chip report = %+v", rep.PerChip[2])
	}
	// An idle chip ships no blob: 2 shards, 1 blob (chip 1), 2 dones.
	if rep.Interchip.Transfers != 2+1+2 {
		t.Errorf("transfers = %d, want 5 (2 shards, 1 blob, 2 dones)", rep.Interchip.Transfers)
	}
}

func TestMultiChipDeterminism(t *testing.T) {
	run := func() (Report, []int) {
		return multiChipRun(t, 4, 3, synthQueues(4, 5), metrics.New())
	}
	rep1, col1 := run()
	rep2, col2 := run()
	if !reflect.DeepEqual(rep1, rep2) {
		t.Errorf("reports differ across identical runs:\n%+v\n%+v", rep1, rep2)
	}
	if !reflect.DeepEqual(col1, col2) {
		t.Errorf("collection order differs: %v vs %v", col1, col2)
	}
}

func TestMultiChipValidation(t *testing.T) {
	_, err := NewMultiSession(MultiConfig{
		Backend:       MultiChip{Chips: 1, Chip: scc.DefaultConfig()},
		SlavesPerChip: 3,
	})
	if !errors.Is(err, ErrChipCount) {
		t.Errorf("chips=1 error = %v, want ErrChipCount", err)
	}
	ms, err := NewMultiSession(MultiConfig{
		Backend:       MultiChip{Chips: 2, Chip: scc.DefaultConfig()},
		SlavesPerChip: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Run(0, make([][]rckskel.Job, 3), make([]int64, 3)); err == nil {
		t.Error("expected error for mismatched queue count")
	}
	if _, err := NewMultiSession(MultiConfig{
		Backend:       MultiChip{Chips: 2, Chip: scc.DefaultConfig()},
		SlavesPerChip: 48,
	}); err == nil {
		t.Error("expected per-chip slave-count error")
	}
}

func TestMultiChipInterchipProfile(t *testing.T) {
	// A slower interconnect must lengthen the run; an ideal one can only
	// help. Uses the same workload at both profiles.
	runWith := func(cfg interchip.Config) Report {
		ms, err := NewMultiSession(MultiConfig{
			Backend:       MultiChip{Chips: 2, Chip: scc.DefaultConfig(), Interchip: cfg},
			SlavesPerChip: 3,
			PollingScale:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ms.StartSlaves(func(job rckskel.Job) (any, costmodel.Counter, int) {
			return nil, costmodel.Counter{ScoreEvals: 1e6}, 64
		})
		queues := synthQueues(2, 8)
		rep, err := ms.Run(1000, queues, []int64{0, ShardHeaderBytes + 8*512})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cluster, _ := interchip.Profile("cluster")
	ideal, _ := interchip.Profile("ideal")
	slow, fast := runWith(cluster), runWith(ideal)
	if slow.TotalSeconds <= fast.TotalSeconds {
		t.Errorf("cluster profile (%v s) should be slower than ideal (%v s)",
			slow.TotalSeconds, fast.TotalSeconds)
	}
	if slow.Interchip.Profile == fast.Interchip.Profile {
		t.Errorf("profiles should differ: %q", slow.Interchip.Profile)
	}
}
