package farm

import "rckalign/internal/metrics"

// StructCache is the master-side model of the slaves' bounded structure
// caches. Each slave keeps an LRU of up to `capacity` structures in its
// private memory; when the master dispatches a job it consults this
// model and ships only the structures the target slave is missing, so
// the request wire size becomes header + miss bytes instead of both
// structures every time.
//
// Determinism: the model is updated exactly once per dispatch, inside
// the job's SizeFor hook, which the simulation invokes in deterministic
// event order — so two identical runs see identical hit/miss sequences.
// The fill is optimistic: a request the fault injector drops on the
// wire still marks its structures resident, because the master has no
// acknowledgement protocol to learn otherwise. That can only
// under-charge the wire on the retry of a dropped job — a timing-model
// approximation, never a correctness issue (the slave re-receives the
// whole job either way).
type StructCache struct {
	capacity int
	sizes    []int
	slaves   map[int]*slaveLRU
	stats    CacheStats

	cHits, cMisses, cEvictions *metrics.Counter
	cBytesShipped, cBytesSaved *metrics.Counter
	cForcedReships             *metrics.Counter
}

// CacheStats counts what the structure-cache model did over a run.
type CacheStats struct {
	// Hits counts structure references served from a slave's cache.
	Hits int64
	// Misses counts structure references that had to ship coordinates.
	Misses int64
	// Evictions counts structures dropped from full caches.
	Evictions int64
	// ForcedReships counts evictions that had to victimise a structure
	// of the current request because everything resident belonged to
	// it — the cache cannot hold the request, so the evicted structure
	// will re-ship on its next use. Zero when every request fits
	// (NewStructCache raises the capacity to the largest request).
	ForcedReships int64
	// BytesShipped sums the coordinate bytes actually sent (misses).
	BytesShipped int64
	// BytesSaved sums the coordinate bytes avoided (hits).
	BytesSaved int64
}

// slaveLRU is one slave's resident set, least recently used first.
type slaveLRU struct {
	ids      []int
	resident map[int]bool
}

// touch moves id to most-recently-used and reports whether it was
// present; an absent id is left untouched (resident set unchanged).
func (l *slaveLRU) touch(id int) bool {
	for i, v := range l.ids {
		if v == id {
			l.ids = append(append(l.ids[:i:i], l.ids[i+1:]...), id)
			return true
		}
	}
	return false
}

// remove drops id from the LRU and resident set, reporting whether it
// was present — so a caller removing an absent id learns the model and
// its resident map never went out of sync.
func (l *slaveLRU) remove(id int) bool {
	for i, v := range l.ids {
		if v == id {
			l.ids = append(l.ids[:i:i], l.ids[i+1:]...)
			delete(l.resident, id)
			return true
		}
	}
	return false
}

// NewStructCache builds the cache model: capacity structures per slave,
// sizes[i] giving structure i's coordinate wire size. The capacity is
// raised to at least 2 (a pair's two structures must fit) and to
// maxRequest, the largest number of distinct structures any single
// request will reference — a batch must fit in the cache whole, or the
// eviction loop would evict structures of the request that just shipped
// them. reg may be nil. labels are optional extra key/value label pairs
// on the cache's metric keys (per-chip scoping in multi-chip runs).
func NewStructCache(capacity int, sizes []int, maxRequest int, reg *metrics.Registry, labels ...string) *StructCache {
	if capacity < 2 {
		capacity = 2
	}
	if capacity < maxRequest {
		capacity = maxRequest
	}
	return &StructCache{
		capacity:       capacity,
		sizes:          sizes,
		slaves:         map[int]*slaveLRU{},
		cHits:          reg.Counter("farm.cache.hits", labels...),
		cMisses:        reg.Counter("farm.cache.misses", labels...),
		cEvictions:     reg.Counter("farm.cache.evictions", labels...),
		cForcedReships: reg.Counter("farm.cache.forced_reships", labels...),
		cBytesShipped:  reg.Counter("farm.cache.bytes_shipped", labels...),
		cBytesSaved:    reg.Counter("farm.cache.bytes_saved", labels...),
	}
}

// EnsureCapacity raises the modelled per-slave capacity to fit a
// request of maxRequest distinct structures (sessions preparing
// multiple job queues size the shared cache to the largest batch seen
// so far). Capacity never shrinks, so earlier accounting stays valid.
func (c *StructCache) EnsureCapacity(maxRequest int) {
	if maxRequest > c.capacity {
		c.capacity = maxRequest
	}
}

// Capacity returns the modelled per-slave capacity in structures.
func (c *StructCache) Capacity() int { return c.capacity }

// Stats returns the accumulated cache statistics.
func (c *StructCache) Stats() CacheStats { return c.stats }

// Request models shipping the given structures to a slave and returns
// the coordinate bytes that must actually cross the NoC (the misses).
// Hits are touched to most-recently-used; misses are inserted and the
// LRU evicted down to capacity, preferring victims outside the current
// request so one oversized batch cannot thrash itself.
func (c *StructCache) Request(slave int, structs []int) int {
	lru := c.slaves[slave]
	if lru == nil {
		lru = &slaveLRU{resident: map[int]bool{}}
		c.slaves[slave] = lru
	}
	inReq := make(map[int]bool, len(structs))
	ship := 0
	for _, id := range structs {
		inReq[id] = true
		if lru.resident[id] {
			c.stats.Hits++
			c.stats.BytesSaved += int64(c.sizes[id])
			c.cHits.Inc()
			c.cBytesSaved.Add(float64(c.sizes[id]))
			lru.touch(id)
			continue
		}
		c.stats.Misses++
		c.stats.BytesShipped += int64(c.sizes[id])
		c.cMisses.Inc()
		c.cBytesShipped.Add(float64(c.sizes[id]))
		ship += c.sizes[id]
		lru.ids = append(lru.ids, id)
		lru.resident[id] = true
	}
	for len(lru.ids) > c.capacity {
		victim := lru.ids[0]
		forced := true
		for _, id := range lru.ids {
			if !inReq[id] {
				victim = id
				forced = false
				break
			}
		}
		if forced {
			// Every resident structure belongs to this request: the
			// victim will re-ship on its next use. Should not happen
			// when capacity >= the largest request (see NewStructCache).
			c.stats.ForcedReships++
			c.cForcedReships.Inc()
		}
		lru.remove(victim)
		c.stats.Evictions++
		c.cEvictions.Inc()
	}
	return ship
}

// Resident reports whether the model holds the structure for the slave
// (test hook).
func (c *StructCache) Resident(slave, id int) bool {
	lru := c.slaves[slave]
	return lru != nil && lru.resident[id]
}
