// Gather topology for multi-chip result collection: instead of every
// per-pair result crossing the fabric to the root (the O(pairs) sink
// EXPERIMENTS.md measured at a 6169-deep root inbox on RS119 x 8
// chips), each chip's sub-master aggregates its shard's results into
// summary blobs and ships those up a configurable-arity gather tree —
// the PASTIS-style hierarchical aggregation, one tier above the chip.
// The root then receives O(arity) direct flows instead of N-1 result
// streams, and each blob hop is a single fabric transfer regardless of
// how many pairs it summarises.
package farm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Gather modes for GatherConfig.Mode.
const (
	// GatherTree forwards aggregates up an Arity-ary tree rooted at
	// chip 0 (the default): chip c's parent is (c-1)/Arity.
	GatherTree = "tree"
	// GatherFlat sends every chip's aggregates straight to the root —
	// the pre-tree topology, kept for A/B comparison.
	GatherFlat = "flat"
)

// DefaultGatherArity is the tree fan-in when GatherConfig.Arity is 0.
const DefaultGatherArity = 4

// AggregateHeaderBytes frames one aggregate blob (origin chip, result
// count, offsets) on top of the summed result payload bytes.
const AggregateHeaderBytes = 64

// ErrGatherSpec reports an unparseable -gather flag value.
var ErrGatherSpec = errors.New("farm: bad gather spec (want flat, tree, or tree:ARITY)")

// GatherConfig selects how a multi-chip run collects results. The zero
// value resolves to a gather tree of DefaultGatherArity with one blob
// per shard.
type GatherConfig struct {
	// Mode is GatherTree or GatherFlat ("" = GatherTree).
	Mode string
	// Arity is the tree fan-in (<= 0 = DefaultGatherArity; ignored in
	// flat mode).
	Arity int
	// ChunkResults flushes an aggregate blob to the parent every this
	// many results while the shard is still farming (streaming partial
	// aggregates); <= 0 ships one blob per shard after the local farm
	// finishes.
	ChunkResults int
}

// resolved normalises the zero values and validates Mode.
func (g GatherConfig) resolved() (GatherConfig, error) {
	if g.Mode == "" {
		g.Mode = GatherTree
	}
	if g.Mode != GatherTree && g.Mode != GatherFlat {
		return g, fmt.Errorf("%w: mode %q", ErrGatherSpec, g.Mode)
	}
	if g.Arity <= 0 {
		g.Arity = DefaultGatherArity
	}
	if g.ChunkResults < 0 {
		g.ChunkResults = 0
	}
	return g, nil
}

// String renders the topology for reports ("tree(arity=4)", "flat").
func (g GatherConfig) String() string {
	r, err := g.resolved()
	if err != nil {
		return g.Mode
	}
	if r.Mode == GatherFlat {
		return GatherFlat
	}
	return fmt.Sprintf("tree(arity=%d)", r.Arity)
}

// ParseGatherSpec resolves a -gather flag value: "flat", "tree", or
// "tree:ARITY" (ARITY >= 1; 1 degenerates to a relay chain). An empty
// spec yields the default tree.
func ParseGatherSpec(spec string) (GatherConfig, error) {
	g := GatherConfig{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return g.resolved()
	}
	mode, arity, hasArity := strings.Cut(spec, ":")
	g.Mode = mode
	if hasArity {
		if mode != GatherTree {
			return g, fmt.Errorf("%w: %q (only tree takes an arity)", ErrGatherSpec, spec)
		}
		n, err := strconv.Atoi(arity)
		if err != nil || n < 1 {
			return g, fmt.Errorf("%w: %q (arity must be an integer >= 1)", ErrGatherSpec, spec)
		}
		g.Arity = n
	}
	return g.resolved()
}

// Parent returns the chip aggregates from chip c flow to next (c > 0;
// the root has no parent). Callers use a resolved config.
func (g GatherConfig) Parent(c int) int {
	if g.Mode == GatherFlat {
		return 0
	}
	return (c - 1) / g.Arity
}

// Children lists the chips whose aggregates and gather-done markers
// chip c waits for, in ascending order, on an n-chip system.
func (g GatherConfig) Children(c, n int) []int {
	var kids []int
	if g.Mode == GatherFlat {
		if c == 0 {
			for d := 1; d < n; d++ {
				kids = append(kids, d)
			}
		}
		return kids
	}
	for d := g.Arity*c + 1; d <= g.Arity*c+g.Arity && d < n; d++ {
		kids = append(kids, d)
	}
	return kids
}

// DepthOf returns chip c's distance from the root (level 0); a blob hop
// from chip c to its parent is a level-DepthOf(c) gather hop.
func (g GatherConfig) DepthOf(c int) int {
	if g.Mode == GatherFlat {
		if c == 0 {
			return 0
		}
		return 1
	}
	depth := 0
	for c > 0 {
		c = g.Parent(c)
		depth++
	}
	return depth
}

// Depth returns the deepest level of an n-chip gather (0 for n <= 1).
func (g GatherConfig) Depth(n int) int {
	max := 0
	for c := 1; c < n; c++ {
		if d := g.DepthOf(c); d > max {
			max = d
		}
	}
	return max
}
