package farm

import (
	"errors"
	"reflect"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
)

func sccBackend() Backend { return SCCSim{Chip: scc.DefaultConfig()} }

func TestPlaceSkipsMaster(t *testing.T) {
	p, err := Place(Config{Backend: sccBackend(), MasterCore: 2, Slaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if !reflect.DeepEqual(p.Cores, want) {
		t.Errorf("Cores = %v, want %v", p.Cores, want)
	}
	if !reflect.DeepEqual(p.WorkerLeads, want) {
		t.Errorf("WorkerLeads = %v, want %v", p.WorkerLeads, want)
	}
	if p.Threads != 1 || p.OpScale != 1 || p.EffectiveCores != 4 || p.DroppedCores != 0 {
		t.Errorf("unexpected placement %+v", p)
	}
}

func TestPlaceHostMaster(t *testing.T) {
	p, err := Place(Config{Backend: sccBackend(), MasterCore: HostMaster, Slaves: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cores) != 48 || p.Cores[0] != 0 || p.Cores[47] != 47 {
		t.Errorf("host-master placement should use every core: %v", p.Cores)
	}
	// On-chip master caps slaves at NumCores-1.
	if _, err := Place(Config{Backend: sccBackend(), MasterCore: 0, Slaves: 48}); err == nil {
		t.Error("expected error for 48 slaves with an on-chip master")
	}
}

func TestPlaceThreadGrouping(t *testing.T) {
	p, err := Place(Config{Backend: sccBackend(), MasterCore: 0, Slaves: 7, ThreadsPerWorker: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.WorkerLeads, []int{1, 3, 5}) {
		t.Errorf("WorkerLeads = %v, want [1 3 5]", p.WorkerLeads)
	}
	if p.EffectiveCores != 6 || p.DroppedCores != 1 {
		t.Errorf("effective/dropped = %d/%d, want 6/1", p.EffectiveCores, p.DroppedCores)
	}
	want := 1.0 / (2 * 0.9)
	if p.OpScale != want {
		t.Errorf("OpScale = %v, want %v", p.OpScale, want)
	}
	// A single core cannot form a 2-thread worker.
	if _, err := Place(Config{Backend: sccBackend(), MasterCore: 0, Slaves: 1, ThreadsPerWorker: 2}); err == nil {
		t.Error("expected error for 1 slave with 2-thread workers")
	}
}

func TestPlaceValidation(t *testing.T) {
	if _, err := Place(Config{Backend: sccBackend(), MasterCore: 48, Slaves: 1}); err == nil {
		t.Error("expected error for out-of-range master core")
	}
	if _, err := Place(Config{Backend: sccBackend(), MasterCore: 0, Slaves: 0}); err == nil {
		t.Error("expected error for zero slaves")
	}
	if _, err := Place(Config{Slaves: 1}); err == nil {
		t.Error("expected error for nil backend")
	}
}

func TestPartitionContiguous(t *testing.T) {
	cores := []int{1, 2, 3, 4, 5, 6}
	got, err := PartitionContiguous(cores, []int{2, 1, 3})
	if err != nil {
		t.Fatalf("PartitionContiguous: %v", err)
	}
	want := [][]int{{1, 2}, {3}, {4, 5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PartitionContiguous = %v, want %v", got, want)
	}
	// Undersized, oversized (would previously slice out of bounds
	// before the diagnostic) and negative partitions are all rejected
	// up front with the typed error.
	for _, sizes := range [][]int{{2, 1}, {2, 1, 9}, {7, -1}} {
		if _, err := PartitionContiguous(cores, sizes); !errors.Is(err, ErrPartitionSizes) {
			t.Errorf("PartitionContiguous(%v) err = %v, want ErrPartitionSizes", sizes, err)
		}
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	got := PartitionRoundRobin([]int{1, 2, 3, 4, 5}, 2)
	want := [][]int{{1, 3, 5}, {2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PartitionRoundRobin = %v, want %v", got, want)
	}
}

func TestBuildJobs(t *testing.T) {
	pairs := []sched.Pair{{I: 0, J: 1}, {I: 0, J: 2}}
	jobs, err := BuildJobs(pairs, 10, func(p sched.Pair) int { return p.I + p.J })
	if err != nil {
		t.Fatalf("BuildJobs: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	if jobs[0].ID != 10 || jobs[1].ID != 11 {
		t.Errorf("IDs = %d,%d, want 10,11", jobs[0].ID, jobs[1].ID)
	}
	if jobs[1].Bytes != 2 || jobs[1].Payload.(sched.Pair) != pairs[1] {
		t.Errorf("job 1 = %+v", jobs[1])
	}
}

func TestSweepStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var seen []int
	out, err := Sweep([]int{1, 2, 3}, func(n int) (int, error) {
		seen = append(seen, n)
		if n == 2 {
			return 0, boom
		}
		return n * n, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("ran %v, want [1 2]", seen)
	}
	if !reflect.DeepEqual(out, []int{1}) {
		t.Errorf("out = %v, want [1]", out)
	}
}

// TestSessionRunsAFarm exercises the full harness on a synthetic
// constant-cost workload: report bookkeeping, collector plumbing and
// per-core utilization must all be populated.
func TestSessionRunsAFarm(t *testing.T) {
	var collected []int
	s, err := NewSession(Config{
		Backend:      sccBackend(),
		MasterCore:   0,
		Slaves:       3,
		PollingScale: 1,
		Collector:    CollectorFunc(func(r rckskel.Result) { collected = append(collected, r.JobID) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]rckskel.Job, 12)
	for k := range jobs {
		jobs[k] = rckskel.Job{ID: k, Payload: k, Bytes: 512}
	}
	s.StartSlaves(func(job rckskel.Job) (any, costmodel.Counter, int) {
		return job.Payload, costmodel.Counter{ScoreEvals: 1e6}, 64
	})
	rep, err := s.Run("", func(m *Master) {
		m.LoadResidues(1000)
		m.Farm(jobs, nil)
		m.Terminate()
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collected != len(jobs) || len(collected) != len(jobs) {
		t.Errorf("collected %d/%d results", rep.Collected, len(collected))
	}
	if rep.TotalSeconds <= rep.LoadSeconds || rep.LoadSeconds <= 0 {
		t.Errorf("implausible times: total %v load %v", rep.TotalSeconds, rep.LoadSeconds)
	}
	if rep.Workers != 3 || rep.EffectiveCores != 3 || rep.DroppedCores != 0 {
		t.Errorf("unexpected worker accounting: %+v", rep)
	}
	jobsTotal := 0
	for _, n := range rep.FarmStats.JobsPerSlave {
		jobsTotal += n
	}
	if jobsTotal != len(jobs) {
		t.Errorf("JobsPerSlave sums to %d, want %d", jobsTotal, len(jobs))
	}
	// The internal recorder must yield utilization for master + slaves.
	if len(rep.CoreUtilization) != 4 {
		t.Errorf("CoreUtilization has %d tracks, want 4: %v", len(rep.CoreUtilization), rep.CoreUtilization)
	}
	for track, u := range rep.CoreUtilization {
		if u <= 0 || u > 1 {
			t.Errorf("utilization[%s] = %v outside (0,1]", track, u)
		}
	}
}
