package rckskel

import (
	"reflect"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/rcce"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
)

// setupFT is setup with the fault-tolerant slave loop.
func setupFT(slaves int, h Handler) (*sim.Engine, *Team) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	comm := rcce.New(chip)
	ids := make([]int, slaves)
	for i := range ids {
		ids[i] = i + 1
	}
	t := NewTeam(comm, 0, ids)
	t.StartSlavesFT(h)
	return e, t
}

func runMasterFT(e *sim.Engine, t *Team, body func(p *sim.Process)) error {
	t.Comm.Chip().SpawnCore(t.Master, func(p *sim.Process) {
		body(p)
		t.TerminateFT(p)
	})
	return e.Run()
}

// jobSeconds returns the simulated compute time of one doubler(cost) job.
func jobSeconds(cost uint64) float64 {
	return scc.DefaultConfig().CPU.Seconds(costmodel.Counter{DPCells: cost})
}

// deadCoreWire drops messages to fail-stopped cores, the minimal wire
// model FARMFT's detection relies on (fault.Injector provides it in
// production).
type deadCoreWire struct {
	dead map[int]bool
}

func (w *deadCoreWire) Deliver(p *sim.Process, m *rcce.Message) rcce.Outcome {
	return rcce.Outcome{Drop: w.dead[m.Dst]}
}

func (w *deadCoreWire) kill(e *sim.Engine, chip *scc.Chip, core int, at float64) {
	e.Schedule(at, func() {
		w.dead[core] = true
		e.Kill(chip.Proc(core))
	})
}

func TestFARMFTFaultFreeMatchesFARM(t *testing.T) {
	const cost, nJobs, nSlaves = 50000, 40, 5
	run := func(ft bool) (Stats, []int) {
		e := sim.NewEngine()
		chip := scc.New(e, scc.DefaultConfig())
		comm := rcce.New(chip)
		ids := make([]int, nSlaves)
		for i := range ids {
			ids[i] = i + 1
		}
		team := NewTeam(comm, 0, ids)
		var st Stats
		var order []int
		collect := func(r Result) { order = append(order, r.JobID) }
		if ft {
			team.StartSlavesFT(doubler(cost))
			err := runMasterFT(e, team, func(p *sim.Process) {
				cfg := FTConfig{JobDeadlineSeconds: 1e6}
				st, _ = team.FARMFT(p, intJobs(nJobs), cfg, collect)
			})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			team.StartSlaves(doubler(cost))
			err := runMaster(e, team, func(p *sim.Process) {
				st = team.FARM(p, intJobs(nJobs), collect)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return st, order
	}
	classicSt, classicOrder := run(false)
	ftSt, ftOrder := run(true)
	if !reflect.DeepEqual(classicSt, ftSt) {
		t.Errorf("stats diverge:\nclassic %+v\nft      %+v", classicSt, ftSt)
	}
	if !reflect.DeepEqual(classicOrder, ftOrder) {
		t.Errorf("collection order diverges:\nclassic %v\nft      %v", classicOrder, ftOrder)
	}
}

func TestFARMFTRecoversFromKill(t *testing.T) {
	const cost, nJobs = 200000, 30
	js := jobSeconds(cost)
	e, team := setupFT(4, doubler(cost))
	chip := team.Comm.Chip()
	wire := &deadCoreWire{dead: map[int]bool{}}
	team.Comm.SetInterposer(wire)
	wire.kill(e, chip, 2, 1.5*js) // mid-run, likely mid-compute

	got := map[int]int{}
	var ft FTStats
	err := runMasterFT(e, team, func(p *sim.Process) {
		cfg := FTConfig{JobDeadlineSeconds: 3 * js}
		_, ft = team.FARMFT(p, intJobs(nJobs), cfg, func(r Result) {
			if _, dup := got[r.JobID]; dup {
				t.Errorf("job %d collected twice", r.JobID)
			}
			got[r.JobID] = r.Payload.(int)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nJobs {
		t.Fatalf("collected %d of %d jobs", len(got), nJobs)
	}
	for id, v := range got {
		if v != 2*id {
			t.Errorf("job %d = %d, want %d", id, v, 2*id)
		}
	}
	if ft.Timeouts == 0 || ft.Retries == 0 {
		t.Errorf("kill left no trace in FT stats: %+v", ft)
	}
	if ft.LostJobs != 0 {
		t.Errorf("lost %d jobs despite healthy slaves: %+v", ft.LostJobs, ft)
	}
}

// corruptOnceWire corrupts the first message on one src->dst pair.
type corruptOnceWire struct {
	src, dst int
	used     bool
}

func (w *corruptOnceWire) Deliver(p *sim.Process, m *rcce.Message) rcce.Outcome {
	if !w.used && m.Src == w.src && m.Dst == w.dst {
		w.used = true
		return rcce.Outcome{Corrupt: true}
	}
	return rcce.Outcome{}
}

func TestFARMFTRetriesCorruptResult(t *testing.T) {
	const cost, nJobs = 50000, 12
	e, team := setupFT(3, doubler(cost))
	team.Comm.SetInterposer(&corruptOnceWire{src: 2, dst: 0})
	got := map[int]int{}
	var ft FTStats
	err := runMasterFT(e, team, func(p *sim.Process) {
		_, ft = team.FARMFT(p, intJobs(nJobs), FTConfig{}, func(r Result) {
			got[r.JobID] = r.Payload.(int)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nJobs {
		t.Fatalf("collected %d of %d jobs", len(got), nJobs)
	}
	if ft.CorruptDetected != 1 || ft.Retries != 1 {
		t.Errorf("ft stats = %+v, want 1 corrupt / 1 retry", ft)
	}
}

func TestFARMFTResendsCorruptJob(t *testing.T) {
	const cost, nJobs = 50000, 12
	js := jobSeconds(cost)
	e, team := setupFT(3, doubler(cost))
	team.Comm.SetInterposer(&corruptOnceWire{src: 0, dst: 2})
	got := map[int]int{}
	var ft FTStats
	err := runMasterFT(e, team, func(p *sim.Process) {
		cfg := FTConfig{JobDeadlineSeconds: 2 * js}
		_, ft = team.FARMFT(p, intJobs(nJobs), cfg, func(r Result) {
			got[r.JobID] = r.Payload.(int)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nJobs {
		t.Fatalf("collected %d of %d jobs", len(got), nJobs)
	}
	// The corrupted job request was discarded by the slave and re-sent
	// after the deadline.
	if ft.Timeouts == 0 || ft.Retries == 0 {
		t.Errorf("ft stats = %+v, want a timeout-driven retry", ft)
	}
}

func TestFARMFTBlacklistsRepeatOffender(t *testing.T) {
	const cost, nJobs = 200000, 20
	js := jobSeconds(cost)
	e, team := setupFT(4, doubler(cost))
	chip := team.Comm.Chip()
	wire := &deadCoreWire{dead: map[int]bool{}}
	team.Comm.SetInterposer(wire)
	wire.kill(e, chip, 3, 0.5*js)

	var ft FTStats
	got := map[int]bool{}
	err := runMasterFT(e, team, func(p *sim.Process) {
		cfg := FTConfig{JobDeadlineSeconds: 2 * js, MaxFailures: 1}
		_, ft = team.FARMFT(p, intJobs(nJobs), cfg, func(r Result) { got[r.JobID] = true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nJobs {
		t.Fatalf("collected %d of %d jobs", len(got), nJobs)
	}
	if !reflect.DeepEqual(ft.Blacklisted, []int{3}) {
		t.Errorf("blacklisted = %v, want [3]", ft.Blacklisted)
	}
}

func TestFARMFTDegradedWhenAllSlavesDie(t *testing.T) {
	const cost, nJobs = 200000, 20
	js := jobSeconds(cost)
	e, team := setupFT(3, doubler(cost))
	chip := team.Comm.Chip()
	wire := &deadCoreWire{dead: map[int]bool{}}
	team.Comm.SetInterposer(wire)
	for _, core := range team.Slaves {
		wire.kill(e, chip, core, 0.5*js)
	}
	collected := 0
	var ft FTStats
	err := runMasterFT(e, team, func(p *sim.Process) {
		cfg := FTConfig{JobDeadlineSeconds: 2 * js}
		_, ft = team.FARMFT(p, intJobs(nJobs), cfg, func(Result) { collected++ })
	})
	if err != nil {
		t.Fatal(err)
	}
	if collected+ft.LostJobs != nJobs {
		t.Errorf("collected %d + lost %d != %d jobs", collected, ft.LostJobs, nJobs)
	}
	if ft.LostJobs == 0 {
		t.Error("killing every slave lost no jobs")
	}
}

func TestFARMFTDropsDuplicateFromStalledSlave(t *testing.T) {
	// Slave 1 stalls past its deadline, so job 0 is reassigned to an
	// idle slave; the stall ends while that copy is still computing, so
	// the original slave rings first (its late result is accepted) and
	// the retry's result arrives as a duplicate. Job 4 runs 3x longer
	// than the rest to keep the farm collecting until the duplicate
	// lands.
	const cost, nJobs = 200000, 5
	js := jobSeconds(cost)
	vary := func(job Job) (any, costmodel.Counter, int) {
		c := uint64(cost)
		if job.ID == 4 {
			c *= 3
		}
		return 2 * job.Payload.(int), costmodel.Counter{DPCells: c}, 8
	}
	e, team := setupFT(4, vary)
	chip := team.Comm.Chip()
	e.Schedule(0.5*js, func() { e.StallUntil(chip.Proc(1), 2.5*js) })
	got := map[int]int{}
	var ft FTStats
	err := runMasterFT(e, team, func(p *sim.Process) {
		cfg := FTConfig{JobDeadlineSeconds: 2 * js}
		_, ft = team.FARMFT(p, intJobs(nJobs), cfg, func(r Result) {
			if _, dup := got[r.JobID]; dup {
				t.Errorf("job %d collected twice", r.JobID)
			}
			got[r.JobID] = r.Payload.(int)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nJobs {
		t.Fatalf("collected %d of %d jobs", len(got), nJobs)
	}
	if ft.DuplicatesDropped == 0 {
		t.Errorf("reassigned copy's result not dropped as duplicate: %+v", ft)
	}
	if ft.Reassigned == 0 {
		t.Errorf("stall did not reassign work: %+v", ft)
	}
}
