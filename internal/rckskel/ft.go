// Fault-tolerant FARM: the master-slaves construct extended with
// per-job deadlines, retry with reassignment, blacklisting of
// repeatedly failing slaves, and duplicate-result discard, so an
// all-vs-all comparison completes (possibly degraded) even when cores
// fail-stop, stall, or links misbehave mid-run.
//
// Detection model: the master is assumed reliable (as in the paper's
// farm) and observes failures only through time — a dispatched job
// whose result has not been collected by its deadline is presumed
// lost, whatever the cause (dead core, stalled core, dropped job or
// result message). Corrupted messages are detected by the wire
// checksums (rcce.Message.Corrupt) and treated as losses that cost
// only a retry, not the slave's reputation. Sends to fail-stopped
// cores rely on the fault injector's wire model (the dead core's MPB
// never acknowledges, the message vanishes, the sender moves on);
// without an interposer a send to a dead core would hang, exactly as
// busy-waiting on a dead core's flags would on hardware.
package rckskel

import (
	"math"

	"rckalign/internal/sim"
)

// FTConfig tunes the fault-tolerant FARM. The zero value disables
// detection (no deadlines): jobs are never presumed lost, matching the
// classic FARM on a fault-free run.
type FTConfig struct {
	// JobDeadlineSeconds is how long the master waits after handing a
	// job to a slave before presuming it lost and re-dispatching.
	// 0 = no deadline (no fail-stop recovery).
	JobDeadlineSeconds float64
	// ResultTimeoutSeconds bounds the result transfer after a slave
	// rings (covers cores dying mid-transfer). 0 = JobDeadlineSeconds.
	ResultTimeoutSeconds float64
	// MaxFailures blacklists a slave after this many consecutive
	// failures (default 3). Blacklisted slaves get no further jobs, but
	// a late result from one is still accepted.
	MaxFailures int
	// MaxAttempts gives up on a job after this many dispatches
	// (counted as lost). 0 = retry for as long as healthy slaves remain.
	MaxAttempts int
}

// FTStats reports what the fault-tolerance machinery did during one
// FARMFT execution.
type FTStats struct {
	// Timeouts counts deadline expiries and result-transfer timeouts.
	Timeouts int
	// CorruptDetected counts results discarded for checksum mismatch.
	CorruptDetected int
	// Retries counts re-dispatches of jobs that had already been handed
	// to some slave once.
	Retries int
	// Reassigned counts retries that moved the job to a different slave.
	Reassigned int
	// DuplicatesDropped counts late results for jobs a retry had
	// already completed.
	DuplicatesDropped int
	// LostJobs counts jobs never completed (degraded termination or
	// MaxAttempts exhausted, minus late redemptions).
	LostJobs int
	// Blacklisted lists slaves taken out of rotation, in order.
	Blacklisted []int
}

// StartSlavesFT spawns the fault-tolerant slave loop on every slave
// core with one shared handler.
func (t *Team) StartSlavesFT(h Handler) {
	t.StartSlavesFTWith(func(int) Handler { return h })
}

// StartSlavesFTWith spawns the fault-tolerant slave loops with a
// per-core handler.
func (t *Team) StartSlavesFTWith(h func(core int) Handler) {
	for _, core := range t.Slaves {
		core := core
		t.Comm.Chip().SpawnCore(core, func(p *sim.Process) {
			t.slaveLoopFT(p, core, h(core))
		})
	}
}

// slaveLoopFT is slaveLoop plus fault handling: job receives abort on
// the team's stop latch, corrupted job requests are discarded (the
// master's deadline re-sends them), and results are not sent once the
// stop latch is up (the master no longer collects). Shutdown still ends
// with the classic terminate sentinel, so a fault-free run's
// termination handshake costs exactly what the classic path's does.
func (t *Team) slaveLoopFT(p *sim.Process, core int, h Handler) {
	for {
		m, ok := t.Comm.RecvOrLatch(p, t.Master, core, t.stop)
		if !ok {
			// Stop raised while idle: the terminating master will send
			// the shutdown sentinel next. Bound the wait — a faulty link
			// may drop the sentinel, and that must not park this core
			// forever.
			timeout := t.ftResultTimeout
			if timeout <= 0 {
				timeout = math.Inf(1)
			}
			if m, ok = t.Comm.RecvTimeout(p, t.Master, core, timeout); !ok {
				return
			}
		}
		if _, done := m.Payload.(terminate); done {
			return
		}
		if m.Corrupt {
			// Checksum mismatch on the job request: discard it. The
			// master's deadline machinery will re-send.
			continue
		}
		job := m.Payload.(Job)
		payload, ops, resultBytes := h(job)
		computeStart := p.Now()
		t.Comm.Chip().Compute(p, ops)
		computeEnd := p.Now()
		if t.Trace != nil {
			t.Trace.Add(t.Comm.Chip().CoreName(core), computeStart, computeEnd, "compute")
		}
		t.hCompute.Observe(computeEnd - computeStart)
		t.slaveJobs[core].Inc()
		t.slaveCompute[core].Add(computeEnd - computeStart)
		if resultBytes < 1 {
			resultBytes = 1
		}
		if t.stop.IsSet() {
			// The master stopped collecting while this job computed:
			// discard the result and loop around for the sentinel.
			continue
		}
		t.ringUp(core, p.Now())
		t.ring.Put(core)
		t.Comm.Send(p, core, t.Master, resultBytes, Result{
			JobID: job.ID, Slave: core, Payload: payload, Bytes: resultBytes,
		})
	}
}

// TerminateFT shuts down fault-tolerant slave loops: raise the stop
// latch, then per slave drain any result send already in flight (so no
// straggler is left blocked mid-handshake) and deliver the classic
// shutdown sentinel. Slaves whose process has already finished —
// fail-stopped cores, or loops that gave up waiting for a sentinel
// while the master was stuck handshaking a straggler — get no
// sentinel: there is nobody left to receive it, and without an
// interposer to drop it the send would block the master forever. On a
// fault-free run no slave ever exits early, so the handshake is
// send-for-send identical to the classic Terminate. Call from the
// master after FARMFT completes.
func (t *Team) TerminateFT(p *sim.Process) {
	t.stop.Set()
	timeout := t.ftResultTimeout
	if timeout <= 0 {
		timeout = math.Inf(1)
	}
	for _, core := range t.Slaves {
		for t.Comm.Probe(core, t.Master) {
			if _, ok := t.Comm.RecvTimeout(p, core, t.Master, timeout); !ok {
				break
			}
		}
		if sp := t.Comm.Chip().Proc(core); sp == nil || sp.Done() {
			continue
		}
		t.Comm.Send(p, t.Master, core, 1, terminate{})
	}
	t.ring.Drain()
}

// flight tracks one dispatched, uncollected job.
type flight struct {
	job      int // index into the jobs slice
	deadline float64
}

// FARMFT is FARM with fault tolerance: jobs carry deadlines, presumed-
// lost jobs are re-dispatched (to another slave when one is free),
// slaves that keep failing are blacklisted, duplicate and corrupt
// results are discarded, and the farm terminates — degraded, with jobs
// marked lost — even when every slave has died. On a fault-free run
// with generous deadlines it is job-for-job and second-for-second
// identical to FARM. Call from the master process; slaves must be
// running slaveLoopFT (StartSlavesFT).
func (t *Team) FARMFT(p *sim.Process, jobs []Job, cfg FTConfig, collect func(Result)) (Stats, FTStats) {
	st := Stats{JobsPerSlave: map[int]int{}}
	var ft FTStats
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 3
	}
	resultTimeout := cfg.ResultTimeoutSeconds
	if resultTimeout <= 0 {
		resultTimeout = cfg.JobDeadlineSeconds
	}
	if resultTimeout <= 0 {
		resultTimeout = math.Inf(1)
	}
	t.ftResultTimeout = resultTimeout
	start := p.Now()

	jobIdx := make(map[int]int, len(jobs)) // Job.ID -> index
	for i, j := range jobs {
		jobIdx[j.ID] = i
	}
	pending := make([]int, 0, len(jobs))
	for i := range jobs {
		pending = append(pending, i)
	}
	inflight := map[int]*flight{} // slave -> its uncollected job
	idle := map[int]bool{}        // slave is free and trusted
	suspect := map[int]bool{}     // deadline expired; no new work until it rings
	blacklisted := map[int]bool{}
	consecFails := map[int]int{}
	attempts := make([]int, len(jobs))
	lastSlave := make([]int, len(jobs))
	for i := range lastSlave {
		lastSlave[i] = -1
	}
	done := make([]bool, len(jobs))
	lost := map[int]bool{}
	completed := 0
	for _, s := range t.Slaves {
		idle[s] = true
	}

	fail := func(s int) {
		ft.Timeouts++
		consecFails[s]++
		if consecFails[s] >= cfg.MaxFailures && !blacklisted[s] {
			blacklisted[s] = true
			ft.Blacklisted = append(ft.Blacklisted, s)
		}
		suspect[s] = true
		idle[s] = false
	}
	requeue := func(job int) {
		if !done[job] && !lost[job] {
			pending = append(pending, job)
		}
	}

	// dispatch hands pending jobs to free, trusted slaves in slave-ring
	// order — with every slave idle this primes them with jobs 0..n-1
	// exactly as FARM does.
	dispatch := func() {
		for _, s := range t.Slaves {
			if !idle[s] || blacklisted[s] || suspect[s] {
				continue
			}
			for len(pending) > 0 {
				ji := pending[0]
				pending = pending[1:]
				if done[ji] || lost[ji] {
					continue
				}
				if cfg.MaxAttempts > 0 && attempts[ji] >= cfg.MaxAttempts {
					lost[ji] = true
					ft.LostJobs++
					continue
				}
				attempts[ji]++
				if lastSlave[ji] >= 0 {
					ft.Retries++
					if lastSlave[ji] != s {
						ft.Reassigned++
					}
				}
				lastSlave[ji] = s
				idle[s] = false
				t.sendJob(p, s, jobs[ji])
				deadline := math.Inf(1)
				if cfg.JobDeadlineSeconds > 0 {
					deadline = p.Now() + cfg.JobDeadlineSeconds
				}
				inflight[s] = &flight{job: ji, deadline: deadline}
				break
			}
		}
	}

	// handleRing collects from a slave that raised its ready flag,
	// charging the same discovery cost as the classic farm's polling.
	handleRing := func(s int) {
		collectStart := p.Now()
		t.hCollectWait.Observe(t.ringDown(s, collectStart))
		p.Wait(t.DiscoveryCostScale * t.discoveryCost(s))
		st.PollProbes += len(t.Slaves)/2 + 1
		m, ok := t.Comm.RecvTimeout(p, s, t.Master, resultTimeout)
		if t.Trace != nil {
			t.Trace.Add(t.Comm.Chip().CoreName(t.Master), collectStart, p.Now(), "collect")
		}
		t.cMasterCollect.Add(p.Now() - collectStart)
		f := inflight[s]
		delete(inflight, s)
		suspect[s] = false
		if !ok {
			// The slave rang but its result never completed (died or
			// stalled mid-transfer).
			fail(s)
			if f != nil {
				requeue(f.job)
			}
			return
		}
		if m.Corrupt {
			// The slave did the work; the wire mangled the result. Retry
			// without penalising the slave.
			ft.CorruptDetected++
			consecFails[s] = 0
			idle[s] = true
			if f != nil {
				requeue(f.job)
			}
			return
		}
		res := m.Payload.(Result)
		consecFails[s] = 0
		idle[s] = true
		ji, known := jobIdx[res.JobID]
		if !known {
			return
		}
		if done[ji] {
			ft.DuplicatesDropped++
			return
		}
		done[ji] = true
		if lost[ji] {
			// A job written off as lost came back after all.
			delete(lost, ji)
			ft.LostJobs--
		}
		completed++
		t.cJobsDone.Inc()
		st.JobsPerSlave[res.Slave]++
		if collect != nil {
			collect(res)
		}
	}

	// expireDeadlines presumes lost every inflight job past its
	// deadline, in slave-ring order for determinism.
	expireDeadlines := func() {
		now := p.Now()
		for _, s := range t.Slaves {
			f := inflight[s]
			if f == nil || f.deadline > now {
				continue
			}
			delete(inflight, s)
			fail(s)
			requeue(f.job)
		}
	}

	for completed+len(lost) < len(jobs) {
		dispatch()
		if completed+len(lost) >= len(jobs) {
			break
		}
		nearest := math.Inf(1)
		for _, s := range t.Slaves {
			if f := inflight[s]; f != nil && f.deadline < nearest {
				nearest = f.deadline
			}
		}
		if len(inflight) == 0 {
			anySuspect := false
			for _, s := range t.Slaves {
				if suspect[s] {
					anySuspect = true
					break
				}
			}
			grace := cfg.JobDeadlineSeconds
			if !anySuspect || grace <= 0 {
				// Nothing running and nobody left who could ring (or no
				// way to bound the wait): give up on what remains.
				if anySuspect && grace <= 0 {
					grace = math.Inf(1) // no deadlines configured: wait
				} else {
					for _, ji := range pending {
						if !done[ji] && !lost[ji] {
							lost[ji] = true
							ft.LostJobs++
						}
					}
					pending = nil
					continue
				}
			}
			// Grace period: a suspect slave may still ring and redeem
			// its job.
			v, ok := t.ring.GetTimeout(p, grace)
			if !ok {
				for _, ji := range pending {
					if !done[ji] && !lost[ji] {
						lost[ji] = true
						ft.LostJobs++
					}
				}
				pending = nil
				continue
			}
			handleRing(v.(int))
			continue
		}
		d := nearest - p.Now()
		if math.IsInf(nearest, 1) {
			if v, ok := t.ring.GetTimeout(p, math.Inf(1)); ok {
				handleRing(v.(int))
			}
			continue
		}
		if d <= 0 {
			expireDeadlines()
			continue
		}
		if v, ok := t.ring.GetTimeout(p, d); ok {
			handleRing(v.(int))
		} else {
			expireDeadlines()
		}
	}
	st.MakespanSeconds = p.Now() - start
	return st, ft
}
