// Package rckskel reproduces the paper's algorithmic skeleton library of
// the same name: SEQ, PAR, COLLECT and FARM constructs that orchestrate
// jobs across SCC cores over the RCCE message-passing layer. The master
// process distributes application-defined jobs and gathers results by
// round-robin polling of the slaves, exactly as described in Section IV.
//
// A "job" is one application work unit (here: a pairwise protein
// structure comparison); a "task" is a collection of jobs plus the cores
// allowed to execute them.
//
// Polling model: the real library busy-loops over the slaves' MPB flags.
// Simulating every individual probe is infeasible (a multi-second job
// would need ~10^8 probe events), so the simulation is event-driven — a
// slave "rings" the master when its result flag goes up — and the master
// is charged the equivalent round-robin discovery cost per collection:
// on average half a sweep of remote flag reads before it reaches the
// ready slave. The master remains a serial resource: while it transfers
// one result, other ready slaves wait, exactly as with real polling.
package rckskel

import (
	"errors"
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/metrics"
	"rckalign/internal/rcce"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// ErrJobBytes reports a job whose modelled request wire size is not
// positive. A zero or negative size would silently corrupt the NoC
// transfer model (rcce clamps instead of diagnosing), so job builders
// and dispatch validate it up front.
var ErrJobBytes = errors.New("rckskel: job request bytes must be positive")

// Job is one unit of work dispatched to a slave core.
type Job struct {
	// ID identifies the job in results.
	ID int
	// Payload is the application request (structure pair, etc.).
	Payload any
	// Bytes is the modelled wire size of the request message.
	Bytes int
	// SizeFor, when non-nil, supplies the request's wire size for a
	// specific slave at dispatch time, overriding Bytes. The cached
	// farm uses it to ship only the structures a slave's modelled cache
	// is missing. Dispatch calls it exactly once per send, in
	// deterministic event order, so stateful size models (LRU caches)
	// stay reproducible.
	SizeFor func(slave int) int
}

// ValidateJobs rejects jobs whose static wire size is not positive
// with ErrJobBytes. Jobs carrying a SizeFor hook are resolved per
// slave at dispatch time and checked there instead.
func ValidateJobs(jobs []Job) error {
	for _, j := range jobs {
		if j.SizeFor == nil && j.Bytes < 1 {
			return fmt.Errorf("%w: job %d has %d bytes", ErrJobBytes, j.ID, j.Bytes)
		}
	}
	return nil
}

// Result is a slave's answer to one job.
type Result struct {
	JobID int
	Slave int
	// Payload is the application result.
	Payload any
	// Bytes is the modelled wire size of the result message.
	Bytes int
}

// Handler executes a job's application work on a slave. It returns the
// result payload, the operation counts to charge as compute time on the
// slave's core, and the result's wire size.
type Handler func(job Job) (payload any, ops costmodel.Counter, resultBytes int)

// terminate is the shutdown sentinel the master sends to each slave.
type terminate struct{}

// Team manages a master core and a set of slave cores on one chip.
type Team struct {
	Comm   *rcce.Comm
	Master int
	Slaves []int

	// DiscoveryCostScale scales the master's round-robin polling cost
	// charged per collected result. 1 models the paper's busy polling;
	// 0 models an ideal event-driven notification (the polling
	// ablation).
	DiscoveryCostScale float64

	// Trace, when non-nil, records per-core activity intervals
	// ("compute" on slaves, "collect" on the master) for utilization
	// and Gantt reports.
	Trace *trace.Recorder

	// doorbell carries "result ready" flags from slaves to the master.
	doorbell *sim.Chan

	// stop broadcasts shutdown to fault-tolerant slave loops (ft.go).
	stop *sim.Latch
	// ring is the fault-tolerant doorbell: an async queue, so a slave's
	// ready flag survives even when the master is busy or the slave dies
	// right after raising it.
	ring *sim.Queue
	// ftResultTimeout is the resolved result-transfer timeout of the
	// last FARMFT, reused by TerminateFT's drain.
	ftResultTimeout float64

	// ringAt[slave] is the simulated time the slave last raised its
	// ready flag; the master reads it when collecting to attribute how
	// long the result sat in the "mailbox" (at most one outstanding ring
	// per slave, by construction of the slave loops).
	ringAt map[int]float64

	// Observability handles, nil unless SetMetrics installed a registry.
	reg            *metrics.Registry
	hDispatchWait  *metrics.Histogram
	hInputXfer     *metrics.Histogram
	hCompute       *metrics.Histogram
	hResultXfer    *metrics.Histogram
	hCollectWait   *metrics.Histogram
	cJobsDone      *metrics.Counter
	cMasterCollect *metrics.Counter
	sMailbox       *metrics.Series
	gMailboxPeak   *metrics.Gauge
	slaveJobs      map[int]*metrics.Counter
	slaveCompute   map[int]*metrics.Counter
	slaveWait      map[int]*metrics.Counter
	mailboxDepth   int
}

// SetMetrics installs a metrics registry: the team then decomposes every
// job's latency into dispatch-wait, input-transfer, compute,
// result-transfer and collect-wait histograms ("farm.job.*_seconds"),
// keeps per-slave aggregates ("farm.slave.*{slave=rckNN}"), and samples
// the master's mailbox depth — the number of slaves with a result ready
// that the master has not yet started collecting — as a time series
// ("farm.master.mailbox_depth") with its peak as a gauge. Recording is
// passive: no simulated time, no extra events. Passing nil disables it.
//
// labels are optional extra key/value label pairs appended to every
// fixed metric key (a multi-chip system scopes each chip's team with
// "chip", "cN", so sub-master mailboxes stay distinguishable); the
// per-slave keys are already distinct through the chip's core name
// prefix. No labels keeps the classic keys bit-identical.
func (t *Team) SetMetrics(reg *metrics.Registry, labels ...string) {
	t.reg = reg
	t.hDispatchWait = reg.Histogram("farm.job.dispatch_wait_seconds", metrics.TimeBuckets, labels...)
	t.hInputXfer = reg.Histogram("farm.job.input_xfer_seconds", metrics.TimeBuckets, labels...)
	t.hCompute = reg.Histogram("farm.job.compute_seconds", metrics.TimeBuckets, labels...)
	t.hResultXfer = reg.Histogram("farm.job.result_xfer_seconds", metrics.TimeBuckets, labels...)
	t.hCollectWait = reg.Histogram("farm.job.collect_wait_seconds", metrics.TimeBuckets, labels...)
	t.cJobsDone = reg.Counter("farm.jobs.completed", labels...)
	t.cMasterCollect = reg.Counter("farm.master.collect_seconds", labels...)
	t.sMailbox = reg.Series("farm.master.mailbox_depth", labels...)
	t.gMailboxPeak = reg.Gauge("farm.master.mailbox_peak", labels...)
	if reg == nil {
		t.slaveJobs, t.slaveCompute, t.slaveWait = nil, nil, nil
		return
	}
	t.slaveJobs = make(map[int]*metrics.Counter, len(t.Slaves))
	t.slaveCompute = make(map[int]*metrics.Counter, len(t.Slaves))
	t.slaveWait = make(map[int]*metrics.Counter, len(t.Slaves))
	for _, s := range t.Slaves {
		name := t.Comm.Chip().CoreName(s)
		t.slaveJobs[s] = reg.Counter("farm.slave.jobs", "slave", name)
		t.slaveCompute[s] = reg.Counter("farm.slave.compute_seconds", "slave", name)
		t.slaveWait[s] = reg.Counter("farm.slave.dispatch_wait_seconds", "slave", name)
	}
}

// PeakMailboxDepth returns the deepest the master's mailbox got (0 when
// metrics are disabled).
func (t *Team) PeakMailboxDepth() float64 { return t.gMailboxPeak.Value() }

// MailboxSeries returns the mailbox-depth time series handle (nil when
// metrics are disabled).
func (t *Team) MailboxSeries() *metrics.Series { return t.sMailbox }

// ringUp records that slave's result went ready at time now.
func (t *Team) ringUp(slave int, now float64) {
	t.ringAt[slave] = now
	if t.reg == nil {
		return
	}
	t.mailboxDepth++
	t.sMailbox.Append(now, float64(t.mailboxDepth))
	t.gMailboxPeak.Max(float64(t.mailboxDepth))
}

// ringDown records that the master noticed the slave's flag at time now
// and returns how long the result sat waiting.
func (t *Team) ringDown(slave int, now float64) float64 {
	wait := now - t.ringAt[slave]
	if t.reg != nil {
		t.mailboxDepth--
		t.sMailbox.Append(now, float64(t.mailboxDepth))
	}
	return wait
}

// NewTeam builds a team with the master on masterCore and the given
// slaves. Slave cores must be distinct from the master.
func NewTeam(comm *rcce.Comm, masterCore int, slaves []int) *Team {
	for _, s := range slaves {
		if s == masterCore {
			panic(fmt.Sprintf("rckskel: core %d cannot be both master and slave", s))
		}
	}
	return &Team{
		Comm:               comm,
		Master:             masterCore,
		Slaves:             append([]int(nil), slaves...),
		DiscoveryCostScale: 1,
		doorbell:           sim.NewChan("rckskel.ready"),
		stop:               sim.NewLatch("rckskel.stop"),
		ring:               sim.NewQueue("rckskel.ring"),
		ringAt:             map[int]float64{},
	}
}

// StartSlaves spawns the slave loop on every slave core: block for a job
// from the master, execute it (charging its compute time to the core),
// flag and return the result, repeat until terminated.
func (t *Team) StartSlaves(h Handler) {
	t.StartSlavesWith(func(int) Handler { return h })
}

// StartSlavesWith spawns the slave loops with a per-core handler,
// supporting the paper's MC-PSC extension where different slaves run
// different comparison algorithms on the same data.
func (t *Team) StartSlavesWith(h func(core int) Handler) {
	for _, core := range t.Slaves {
		core := core
		t.Comm.Chip().SpawnCore(core, func(p *sim.Process) {
			t.slaveLoop(p, core, h(core))
		})
	}
}

func (t *Team) slaveLoop(p *sim.Process, core int, h Handler) {
	for {
		m, tm := t.Comm.RecvTimed(p, t.Master, core)
		if _, done := m.Payload.(terminate); done {
			return
		}
		t.hDispatchWait.Observe(tm.WaitSeconds)
		t.hInputXfer.Observe(tm.XferSeconds)
		t.slaveWait[core].Add(tm.WaitSeconds)
		job := m.Payload.(Job)
		payload, ops, resultBytes := h(job)
		computeStart := p.Now()
		t.Comm.Chip().Compute(p, ops)
		computeEnd := p.Now()
		if t.Trace != nil {
			t.Trace.Add(t.Comm.Chip().CoreName(core), computeStart, computeEnd, "compute")
		}
		t.hCompute.Observe(computeEnd - computeStart)
		t.slaveJobs[core].Inc()
		t.slaveCompute[core].Add(computeEnd - computeStart)
		if resultBytes < 1 {
			resultBytes = 1
		}
		// Raise the ready flag (the master's poll will find it) and then
		// post the result.
		t.ringUp(core, p.Now())
		t.doorbell.Send(p, core)
		t.Comm.Send(p, core, t.Master, resultBytes, Result{
			JobID: job.ID, Slave: core, Payload: payload, Bytes: resultBytes,
		})
	}
}

// Terminate sends the shutdown sentinel to every slave. Call from the
// master process after all farms complete.
func (t *Team) Terminate(p *sim.Process) {
	for _, core := range t.Slaves {
		t.Comm.Send(p, t.Master, core, 1, terminate{})
	}
}

// sendJob dispatches one job request from the master to a slave,
// resolving the wire size per slave when the job carries a SizeFor
// hook. Every dispatch path (SEQ, PAR, FARM, FARMFT) funnels through
// here so the size model and its validation are applied uniformly. A
// non-positive resolved size is a modelling bug that would corrupt the
// NoC transfer model; it fails loudly instead of being clamped.
func (t *Team) sendJob(p *sim.Process, slave int, job Job) {
	bytes := job.Bytes
	if job.SizeFor != nil {
		bytes = job.SizeFor(slave)
	}
	if bytes < 1 {
		panic(fmt.Errorf("%w: job %d resolved to %d bytes for slave %d", ErrJobBytes, job.ID, bytes, slave))
	}
	t.Comm.Send(p, t.Master, slave, bytes, job)
}

// discoveryCost is the simulated time the master spends finding a ready
// slave by round-robin flag polling: on average half a sweep over the
// slave ring, ending at the ready slave.
func (t *Team) discoveryCost(slave int) float64 {
	var sweep float64
	for _, s := range t.Slaves {
		sweep += t.Comm.PollCost(t.Master, s)
	}
	return sweep/2 + t.Comm.PollCost(t.Master, slave)
}

// Stats reports what a FARM or COLLECT execution did.
type Stats struct {
	// JobsPerSlave[core] counts jobs executed by that core.
	JobsPerSlave map[int]int
	// PollProbes estimates individual slave-flag probes by the master
	// (half a sweep per collection, as charged in simulated time).
	PollProbes int
	// MakespanSeconds is the simulated duration (first send to last
	// collect).
	MakespanSeconds float64
}

// collectOne blocks until some slave rings, charges the polling
// discovery cost, and receives that slave's result.
func (t *Team) collectOne(p *sim.Process, st *Stats) Result {
	slave := t.doorbell.Recv(p).(int)
	collectStart := p.Now()
	t.hCollectWait.Observe(t.ringDown(slave, collectStart))
	p.Wait(t.DiscoveryCostScale * t.discoveryCost(slave))
	st.PollProbes += len(t.Slaves)/2 + 1
	m, tm := t.Comm.RecvTimed(p, slave, t.Master)
	if t.Trace != nil {
		t.Trace.Add(t.Comm.Chip().CoreName(t.Master), collectStart, p.Now(), "collect")
	}
	t.hResultXfer.Observe(tm.XferSeconds)
	t.cMasterCollect.Add(p.Now() - collectStart)
	t.cJobsDone.Inc()
	res := m.Payload.(Result)
	st.JobsPerSlave[res.Slave]++
	return res
}

// SEQ runs jobs one at a time on the cycle of the team's slaves: job k
// goes to slave k mod len(Slaves), and the master waits for each result
// before issuing the next (the paper's task sequencing construct).
func (t *Team) SEQ(p *sim.Process, jobs []Job, collect func(Result)) Stats {
	st := Stats{JobsPerSlave: map[int]int{}}
	start := p.Now()
	for k, job := range jobs {
		slave := t.Slaves[k%len(t.Slaves)]
		t.sendJob(p, slave, job)
		res := t.collectOne(p, &st)
		if collect != nil {
			collect(res)
		}
	}
	st.MakespanSeconds = p.Now() - start
	return st
}

// PAR assigns jobs[k] to slave k (len(jobs) must not exceed the slave
// count) and returns as soon as all jobs have been handed over, without
// waiting for completion (the paper's task mapping construct). Use
// COLLECT to gather the results.
func (t *Team) PAR(p *sim.Process, jobs []Job) {
	if len(jobs) > len(t.Slaves) {
		panic(fmt.Sprintf("rckskel: PAR got %d jobs for %d slaves", len(jobs), len(t.Slaves)))
	}
	for k, job := range jobs {
		t.sendJob(p, t.Slaves[k], job)
	}
}

// COLLECT polls the team's slaves until `expect` results have been
// gathered (the paper's task collection construct).
func (t *Team) COLLECT(p *sim.Process, expect int, collect func(Result)) Stats {
	st := Stats{JobsPerSlave: map[int]int{}}
	start := p.Now()
	for outstanding := expect; outstanding > 0; outstanding-- {
		res := t.collectOne(p, &st)
		if collect != nil {
			collect(res)
		}
	}
	st.MakespanSeconds = p.Now() - start
	return st
}

// FARM is the paper's master-slaves construct: prime every slave with a
// job, then poll; whenever a slave returns a result, hand it the next
// job, until all jobs are done. Call from the master process; slaves
// must already be running.
func (t *Team) FARM(p *sim.Process, jobs []Job, collect func(Result)) Stats {
	next := 0
	return t.FARMDynamic(p, func(int) (Job, bool) {
		if next >= len(jobs) {
			return Job{}, false
		}
		j := jobs[next]
		next++
		return j, true
	}, collect)
}

// FARMDynamic is FARM with a pull-based job source: next(slave) supplies
// the next job for that slave (or reports exhaustion). This supports
// partitioned farms where different slaves draw from different queues
// (e.g. one queue per PSC method in MC-PSC).
func (t *Team) FARMDynamic(p *sim.Process, next func(slave int) (Job, bool), collect func(Result)) Stats {
	st := Stats{JobsPerSlave: map[int]int{}}
	start := p.Now()
	outstanding := 0
	for _, slave := range t.Slaves {
		if job, ok := next(slave); ok {
			t.sendJob(p, slave, job)
			outstanding++
		}
	}
	for ; outstanding > 0; outstanding-- {
		res := t.collectOne(p, &st)
		if collect != nil {
			collect(res)
		}
		if job, ok := next(res.Slave); ok {
			t.sendJob(p, res.Slave, job)
			outstanding++
		}
	}
	st.MakespanSeconds = p.Now() - start
	return st
}
