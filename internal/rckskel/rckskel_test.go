package rckskel

import (
	"sort"
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/rcce"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
)

// doubler is a handler that returns 2x the int payload, charging a fixed
// compute cost.
func doubler(cost uint64) Handler {
	return func(job Job) (any, costmodel.Counter, int) {
		v := job.Payload.(int)
		return 2 * v, costmodel.Counter{DPCells: cost}, 8
	}
}

func setup(slaves int, h Handler) (*sim.Engine, *Team) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	comm := rcce.New(chip)
	ids := make([]int, slaves)
	for i := range ids {
		ids[i] = i + 1
	}
	t := NewTeam(comm, 0, ids)
	t.StartSlaves(h)
	return e, t
}

func intJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: i, Payload: i, Bytes: 64}
	}
	return jobs
}

func runMaster(e *sim.Engine, t *Team, body func(p *sim.Process)) error {
	t.Comm.Chip().SpawnCore(t.Master, func(p *sim.Process) {
		body(p)
		t.Terminate(p)
	})
	return e.Run()
}

func TestFarmProcessesAllJobs(t *testing.T) {
	e, team := setup(5, doubler(1000))
	jobs := intJobs(37)
	got := map[int]int{}
	var stats Stats
	err := runMaster(e, team, func(p *sim.Process) {
		stats = team.FARM(p, jobs, func(r Result) {
			got[r.JobID] = r.Payload.(int)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 37 {
		t.Fatalf("collected %d results, want 37", len(got))
	}
	for id, v := range got {
		if v != 2*id {
			t.Errorf("job %d result %d, want %d", id, v, 2*id)
		}
	}
	total := 0
	for _, n := range stats.JobsPerSlave {
		total += n
	}
	if total != 37 {
		t.Errorf("JobsPerSlave totals %d", total)
	}
	if stats.MakespanSeconds <= 0 || stats.PollProbes == 0 {
		t.Errorf("stats not recorded: %+v", stats)
	}
}

func TestFarmBalancesUniformJobs(t *testing.T) {
	e, team := setup(4, doubler(1_000_000))
	jobs := intJobs(40)
	var stats Stats
	err := runMaster(e, team, func(p *sim.Process) {
		stats = team.FARM(p, jobs, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, n := range stats.JobsPerSlave {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	if len(counts) != 4 {
		t.Fatalf("used %d slaves, want 4", len(counts))
	}
	if counts[0] < 8 || counts[3] > 12 {
		t.Errorf("uniform jobs badly balanced: %v", counts)
	}
}

func TestFarmSpeedupNearLinear(t *testing.T) {
	// The central claim of the paper: uniform-ish jobs on k slaves run
	// ~k times faster than on one slave.
	makespan := func(slaves int) float64 {
		e, team := setup(slaves, doubler(50_000_000)) // ~3 s/job on P54C
		var stats Stats
		if err := runMaster(e, team, func(p *sim.Process) {
			stats = team.FARM(p, intJobs(60), nil)
		}); err != nil {
			t.Fatal(err)
		}
		return stats.MakespanSeconds
	}
	t1 := makespan(1)
	t6 := makespan(6)
	speedup := t1 / t6
	if speedup < 5.3 || speedup > 6.01 {
		t.Errorf("speedup with 6 slaves = %v, want near 6", speedup)
	}
}

func TestFarmFewerJobsThanSlaves(t *testing.T) {
	e, team := setup(10, doubler(100))
	collected := 0
	err := runMaster(e, team, func(p *sim.Process) {
		team.FARM(p, intJobs(3), func(Result) { collected++ })
	})
	if err != nil {
		t.Fatal(err)
	}
	if collected != 3 {
		t.Errorf("collected %d, want 3", collected)
	}
}

func TestFarmNoJobs(t *testing.T) {
	e, team := setup(3, doubler(100))
	err := runMaster(e, team, func(p *sim.Process) {
		st := team.FARM(p, nil, func(Result) { t.Error("unexpected result") })
		if st.PollProbes != 0 {
			t.Errorf("poll probes = %d for empty farm", st.PollProbes)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSEQOrdering(t *testing.T) {
	e, team := setup(3, doubler(1000))
	var order []int
	err := runMaster(e, team, func(p *sim.Process) {
		team.SEQ(p, intJobs(7), func(r Result) { order = append(order, r.JobID) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 7 {
		t.Fatalf("order = %v", order)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("SEQ results out of order: %v", order)
	}
}

func TestPARCollect(t *testing.T) {
	e, team := setup(4, doubler(10_000))
	got := map[int]bool{}
	err := runMaster(e, team, func(p *sim.Process) {
		team.PAR(p, intJobs(4))
		st := team.COLLECT(p, 4, func(r Result) { got[r.JobID] = true })
		if st.MakespanSeconds <= 0 {
			t.Error("collect recorded no time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("collected %v", got)
	}
}

func TestPAROverflowPanics(t *testing.T) {
	e, team := setup(2, doubler(10))
	err := runMaster(e, team, func(p *sim.Process) {
		defer func() {
			if recover() == nil {
				t.Error("PAR with too many jobs should panic")
			}
		}()
		team.PAR(p, intJobs(5))
	})
	// The panic is recovered inside the master; slaves still get
	// terminated, so Run should end. The first two sends may have
	// completed, leaving slaves mid-protocol: accept an engine error.
	_ = e
	_ = err
}

func TestNewTeamRejectsMasterAsSlave(t *testing.T) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	comm := rcce.New(chip)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTeam(comm, 0, []int{0, 1})
}

func TestSlaveComputeTimeCharged(t *testing.T) {
	// One slave, one expensive job: makespan must be at least the
	// compute time of the job on a P54C.
	e, team := setup(1, doubler(100_000_000))
	cpu := team.Comm.Chip().Config().CPU
	wantMin := cpu.Seconds(costmodel.Counter{DPCells: 100_000_000})
	var stats Stats
	err := runMaster(e, team, func(p *sim.Process) {
		stats = team.FARM(p, intJobs(1), nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MakespanSeconds < wantMin {
		t.Errorf("makespan %v < compute time %v", stats.MakespanSeconds, wantMin)
	}
	if stats.MakespanSeconds > wantMin*1.1 {
		t.Errorf("makespan %v too far above compute time %v (overhead should be small)", stats.MakespanSeconds, wantMin)
	}
}

func TestVariableJobsDynamicBalance(t *testing.T) {
	// Jobs with very different costs: dynamic FARM assignment must beat
	// a static split badly skewed. We just assert the makespan is close
	// to total/slaves, i.e. the long jobs don't all pile on one slave.
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	comm := rcce.New(chip)
	team := NewTeam(comm, 0, []int{1, 2, 3, 4})
	var total float64
	cpu := chip.Config().CPU
	h := func(job Job) (any, costmodel.Counter, int) {
		c := costmodel.Counter{DPCells: uint64(job.Payload.(int))}
		return nil, c, 8
	}
	team.StartSlaves(h)
	jobs := make([]Job, 20)
	for i := range jobs {
		cost := 10_000_000 * (1 + i%5) // 10M..50M cells
		jobs[i] = Job{ID: i, Payload: cost, Bytes: 64}
		total += cpu.Seconds(costmodel.Counter{DPCells: uint64(cost)})
	}
	var stats Stats
	if err := runMaster(e, team, func(p *sim.Process) {
		stats = team.FARM(p, jobs, nil)
	}); err != nil {
		t.Fatal(err)
	}
	ideal := total / 4
	if stats.MakespanSeconds > ideal*1.35 {
		t.Errorf("makespan %v too far above ideal %v", stats.MakespanSeconds, ideal)
	}
}

func TestFarmToleratesStragglerCore(t *testing.T) {
	// Failure-injection flavour: one slave's core is 10x slower (thermal
	// throttling / faulty tile). The dynamic farm must route most jobs
	// to healthy cores and still finish everything.
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	comm := rcce.New(chip)
	team := NewTeam(comm, 0, []int{1, 2, 3, 4})
	straggler := 1
	h := func(job Job) (any, costmodel.Counter, int) {
		return nil, costmodel.Counter{DPCells: 10_000_000}, 8
	}
	// Model the slow core by inflating its per-job ops tenfold.
	team.StartSlavesWith(func(core int) Handler {
		if core == straggler {
			return func(job Job) (any, costmodel.Counter, int) {
				return nil, costmodel.Counter{DPCells: 100_000_000}, 8
			}
		}
		return h
	})
	var stats Stats
	if err := runMaster(e, team, func(p *sim.Process) {
		stats = team.FARM(p, intJobs(40), nil)
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range stats.JobsPerSlave {
		total += n
	}
	if total != 40 {
		t.Fatalf("jobs lost: %d", total)
	}
	if stats.JobsPerSlave[straggler] >= stats.JobsPerSlave[2] {
		t.Errorf("straggler got %d jobs vs healthy %d; dynamic farm should shed load",
			stats.JobsPerSlave[straggler], stats.JobsPerSlave[2])
	}
}
