// Package fault is a seeded, deterministic fault-injection subsystem
// for the simulated SCC. A Plan declares what goes wrong — cores that
// fail-stop at a given time, cores that transiently stall, links that
// drop, delay or corrupt messages — and an Injector armed on a chip
// executes the plan: kills and stalls become scheduled simulation
// events, link faults act through the rcce wire interposer. Every
// random decision draws from one seeded stream consumed in simulated
// message order, so the same Plan and seed reproduce the identical
// fault sequence (and, with a deterministic workload, the identical
// run) every time.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"rckalign/internal/rcce"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// CoreFailure fail-stops a core: at time At the core's process unwinds
// out of whatever it is doing and never runs again.
type CoreFailure struct {
	Core int
	At   float64
}

// CoreStall freezes a core for a window: wake-ups that would fire
// inside [At, At+Duration) are deferred to the window's end. The core
// resumes afterwards as if nothing happened (beyond the lost time).
type CoreStall struct {
	Core     int
	At       float64
	Duration float64
}

// LinkFault degrades messages from Src to Dst (Wildcard matches any
// core on that side). Zero From/Until means always active; otherwise
// the rule applies to messages sent within [From, Until). Probabilistic
// and periodic triggers may be combined; each non-zero field is
// evaluated independently.
type LinkFault struct {
	Src, Dst    int // core id or Wildcard
	From, Until float64
	// DropEvery drops every Nth matching message (1 = all).
	DropEvery int
	// DropProb drops each matching message with this probability.
	DropProb float64
	// CorruptEvery corrupts every Nth matching message.
	CorruptEvery int
	// CorruptProb corrupts each matching message with this probability.
	CorruptProb float64
	// DelaySeconds adds fixed latency to every matching message.
	DelaySeconds float64
}

// Wildcard in LinkFault.Src/Dst matches every core.
const Wildcard = -1

// Plan is a complete fault schedule. The zero value (or an empty plan)
// injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// workload with the same plan are bit-identical.
	Seed   int64
	Kills  []CoreFailure
	Stalls []CoreStall
	Links  []LinkFault
}

// Empty reports whether the plan injects no faults at all.
func (pl *Plan) Empty() bool {
	return pl == nil || (len(pl.Kills) == 0 && len(pl.Stalls) == 0 && len(pl.Links) == 0)
}

// Validate checks the plan against a chip of numCores cores whose
// master runs on core master: fault targets must be in range, and the
// master core must not be killed or stalled (the detection model
// assumes a reliable master, as does the paper's farm).
func (pl *Plan) Validate(numCores, master int) error {
	if pl == nil {
		return nil
	}
	checkCore := func(kind string, core int, wildcardOK bool) error {
		if wildcardOK && core == Wildcard {
			return nil
		}
		if core < 0 || core >= numCores {
			return fmt.Errorf("fault: %s targets core %d, out of range [0,%d)", kind, core, numCores)
		}
		return nil
	}
	for _, k := range pl.Kills {
		if err := checkCore("kill", k.Core, false); err != nil {
			return err
		}
		if k.Core == master {
			return fmt.Errorf("fault: cannot kill master core %d", master)
		}
		if k.At < 0 {
			return fmt.Errorf("fault: kill of core %d at negative time %g", k.Core, k.At)
		}
	}
	for _, s := range pl.Stalls {
		if err := checkCore("stall", s.Core, false); err != nil {
			return err
		}
		if s.Core == master {
			return fmt.Errorf("fault: cannot stall master core %d", master)
		}
		if s.At < 0 || s.Duration <= 0 {
			return fmt.Errorf("fault: stall of core %d needs At >= 0 and Duration > 0", s.Core)
		}
	}
	for _, l := range pl.Links {
		if err := checkCore("link src", l.Src, true); err != nil {
			return err
		}
		if err := checkCore("link dst", l.Dst, true); err != nil {
			return err
		}
		if l.DropEvery < 0 || l.CorruptEvery < 0 {
			return fmt.Errorf("fault: link %d>%d has negative Every period", l.Src, l.Dst)
		}
		if l.DropProb < 0 || l.DropProb > 1 || l.CorruptProb < 0 || l.CorruptProb > 1 {
			return fmt.Errorf("fault: link %d>%d probability outside [0,1]", l.Src, l.Dst)
		}
		if l.DelaySeconds < 0 {
			return fmt.Errorf("fault: link %d>%d has negative delay", l.Src, l.Dst)
		}
	}
	return nil
}

// SplitPlan cuts a plan whose core ids are global across a multi-chip
// board (chip = id / coresPerChip, local = id % coresPerChip) into one
// plan per chip, for arming one injector per chip session. Wildcard
// link endpoints are replicated onto every chip; a link rule pinning
// two specific cores on different chips is rejected — the wire
// interposer is chip-local, and inter-chip traffic does not ride the
// RCCE mesh. Every chip receives a plan (possibly empty), so all chips
// run the same fault-tolerant protocol; per-chip seeds derive from the
// plan seed (Seed + chip) so chips draw independent but reproducible
// random streams. A nil plan yields empty per-chip plans.
func SplitPlan(pl *Plan, chips, coresPerChip int) ([]*Plan, error) {
	if chips < 1 || coresPerChip < 1 {
		return nil, fmt.Errorf("fault: split wants chips >= 1 and coresPerChip >= 1, got %d and %d", chips, coresPerChip)
	}
	out := make([]*Plan, chips)
	var seed int64
	if pl != nil {
		seed = pl.Seed
	}
	for c := range out {
		out[c] = &Plan{Seed: seed + int64(c)}
	}
	if pl == nil {
		return out, nil
	}
	total := chips * coresPerChip
	locate := func(kind string, core int) (int, int, error) {
		if core < 0 || core >= total {
			return 0, 0, fmt.Errorf("fault: %s targets core %d, out of range [0,%d)", kind, core, total)
		}
		return core / coresPerChip, core % coresPerChip, nil
	}
	for _, k := range pl.Kills {
		chip, local, err := locate("kill", k.Core)
		if err != nil {
			return nil, err
		}
		k.Core = local
		out[chip].Kills = append(out[chip].Kills, k)
	}
	for _, s := range pl.Stalls {
		chip, local, err := locate("stall", s.Core)
		if err != nil {
			return nil, err
		}
		s.Core = local
		out[chip].Stalls = append(out[chip].Stalls, s)
	}
	for _, l := range pl.Links {
		switch {
		case l.Src == Wildcard && l.Dst == Wildcard:
			for c := range out {
				out[c].Links = append(out[c].Links, l)
			}
		case l.Src == Wildcard:
			chip, local, err := locate("link dst", l.Dst)
			if err != nil {
				return nil, err
			}
			l.Dst = local
			out[chip].Links = append(out[chip].Links, l)
		case l.Dst == Wildcard:
			chip, local, err := locate("link src", l.Src)
			if err != nil {
				return nil, err
			}
			l.Src = local
			out[chip].Links = append(out[chip].Links, l)
		default:
			cs, ls, err := locate("link src", l.Src)
			if err != nil {
				return nil, err
			}
			cd, ld, err := locate("link dst", l.Dst)
			if err != nil {
				return nil, err
			}
			if cs != cd {
				return nil, fmt.Errorf("fault: link fault %d>%d crosses chips %d and %d (link rules are chip-local)", l.Src, l.Dst, cs, cd)
			}
			l.Src, l.Dst = ls, ld
			out[cs].Links = append(out[cs].Links, l)
		}
	}
	return out, nil
}

// Stats counts faults actually injected during a run.
type Stats struct {
	CoresKilled  int
	CoresStalled int
	// Dropped counts messages discarded on the wire, including those
	// addressed to already-dead cores.
	Dropped   int
	Delayed   int
	Corrupted int
}

// Total returns the number of injected fault events.
func (s Stats) Total() int {
	return s.CoresKilled + s.CoresStalled + s.Dropped + s.Delayed + s.Corrupted
}

// Host is what an Injector arms itself on: a chip-like object that can
// resolve core ids to simulated processes. *scc.Chip satisfies it.
type Host interface {
	Engine() *sim.Engine
	Proc(core int) *sim.Process
	CoreName(core int) string
}

// Injector executes a Plan on a host. It implements rcce.Interposer for
// the link-fault half; Arm schedules the kill and stall events. One
// injector serves one run.
type Injector struct {
	plan *Plan
	rng  *rand.Rand
	// dead marks fail-stopped cores; messages addressed to them vanish.
	dead map[int]bool
	// hits counts matching messages per link rule, for Every periods.
	hits  []int
	stats Stats
	rec   *trace.Recorder
	host  Host
}

// NewInjector builds an injector for the plan (nil plan = inject
// nothing, still usable as an interposer).
func NewInjector(pl *Plan) *Injector {
	if pl == nil {
		pl = &Plan{}
	}
	return &Injector{
		plan: pl,
		rng:  rand.New(rand.NewSource(pl.Seed)),
		dead: map[int]bool{},
		hits: make([]int, len(pl.Links)),
	}
}

// Stats returns the counts of faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }

// DeadCores returns the fail-stopped cores so far, sorted.
func (in *Injector) DeadCores() []int {
	out := make([]int, 0, len(in.dead))
	for c := range in.dead {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Arm schedules the plan's kill and stall events on the host's engine
// and optionally marks them on a trace recorder (one 'X' per event on
// the core's track). Call after the core processes are spawned and
// before the engine runs.
func (in *Injector) Arm(h Host, rec *trace.Recorder) {
	in.host = h
	in.rec = rec
	e := h.Engine()
	for _, k := range in.plan.Kills {
		k := k
		e.Schedule(k.At, func() {
			p := h.Proc(k.Core)
			if p == nil || p.Done() {
				return
			}
			in.dead[k.Core] = true
			in.stats.CoresKilled++
			e.Kill(p)
			if rec != nil {
				rec.AddMark(h.CoreName(k.Core), k.At, "kill")
			}
		})
	}
	for _, s := range in.plan.Stalls {
		s := s
		e.Schedule(s.At, func() {
			p := h.Proc(s.Core)
			if p == nil || p.Done() {
				return
			}
			in.stats.CoresStalled++
			e.StallUntil(p, s.At+s.Duration)
			if rec != nil {
				rec.AddMark(h.CoreName(s.Core), s.At, "stall")
			}
		})
	}
}

func (l *LinkFault) matches(src, dst int, now float64) bool {
	if l.Src != Wildcard && l.Src != src {
		return false
	}
	if l.Dst != Wildcard && l.Dst != dst {
		return false
	}
	if l.From == 0 && l.Until == 0 {
		return true
	}
	return now >= l.From && now < l.Until
}

// Deliver implements rcce.Interposer. It evaluates every matching link
// rule completely — consuming random draws whether or not an earlier
// rule already decided to drop — so the random stream advances
// identically regardless of rule outcomes, keeping runs reproducible
// when rules are reordered or messages race.
func (in *Injector) Deliver(p *sim.Process, m *rcce.Message) rcce.Outcome {
	var out rcce.Outcome
	now := p.Now()
	for i := range in.plan.Links {
		l := &in.plan.Links[i]
		if !l.matches(m.Src, m.Dst, now) {
			continue
		}
		in.hits[i]++
		if l.DropEvery > 0 && in.hits[i]%l.DropEvery == 0 {
			out.Drop = true
		}
		if l.DropProb > 0 && in.rng.Float64() < l.DropProb {
			out.Drop = true
		}
		if l.CorruptEvery > 0 && in.hits[i]%l.CorruptEvery == 0 {
			out.Corrupt = true
		}
		if l.CorruptProb > 0 && in.rng.Float64() < l.CorruptProb {
			out.Corrupt = true
		}
		out.DelaySeconds += l.DelaySeconds
	}
	if in.dead[m.Dst] {
		// The destination core is gone; its MPB flags never acknowledge.
		out.Drop = true
	}
	if out.Drop {
		in.stats.Dropped++
		out.Corrupt = false
		out.DelaySeconds = 0
	} else {
		if out.Corrupt {
			in.stats.Corrupted++
		}
		if out.DelaySeconds > 0 {
			in.stats.Delayed++
		}
	}
	if out.Drop && in.rec != nil && in.host != nil {
		in.rec.AddMark(in.host.CoreName(m.Src), now, "drop")
	}
	return out
}

// ParseSpec parses a compact fault-plan spec, the --faults flag syntax:
// semicolon-separated clauses, e.g.
//
//	seed=7;kill=12@0.5;kill=13@0.5;stall=20@1.0+0.25;drop=*>0@p0.01;corrupt=5>0@every100;delay=3>4@0.001
//
// Clauses:
//
//	seed=N            random seed (default 0)
//	kill=CORE@T       fail-stop CORE at time T
//	stall=CORE@T+D    stall CORE for D seconds starting at T
//	drop=SRC>DST@pP   drop messages with probability P (0..1)
//	drop=SRC>DST@everyN   drop every Nth message
//	corrupt=SRC>DST@pP|everyN   corrupt instead of drop
//	delay=SRC>DST@D   add D seconds latency to every message
//
// SRC/DST accept '*' as a wildcard. Whitespace around clauses is
// ignored. An empty spec yields an empty plan.
func ParseSpec(spec string) (*Plan, error) {
	pl := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q: want key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			pl.Seed, err = strconv.ParseInt(val, 10, 64)
		case "kill":
			err = parseKill(pl, val)
		case "stall":
			err = parseStall(pl, val)
		case "drop", "corrupt", "delay":
			err = parseLink(pl, key, val)
		default:
			err = fmt.Errorf("unknown clause %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %v", clause, err)
		}
	}
	return pl, nil
}

func parseKill(pl *Plan, val string) error {
	coreStr, atStr, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want CORE@T")
	}
	core, err := strconv.Atoi(coreStr)
	if err != nil {
		return err
	}
	at, err := strconv.ParseFloat(atStr, 64)
	if err != nil {
		return err
	}
	pl.Kills = append(pl.Kills, CoreFailure{Core: core, At: at})
	return nil
}

func parseStall(pl *Plan, val string) error {
	coreStr, rest, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want CORE@T+D")
	}
	atStr, durStr, ok := strings.Cut(rest, "+")
	if !ok {
		return fmt.Errorf("want CORE@T+D")
	}
	core, err := strconv.Atoi(coreStr)
	if err != nil {
		return err
	}
	at, err := strconv.ParseFloat(atStr, 64)
	if err != nil {
		return err
	}
	dur, err := strconv.ParseFloat(durStr, 64)
	if err != nil {
		return err
	}
	pl.Stalls = append(pl.Stalls, CoreStall{Core: core, At: at, Duration: dur})
	return nil
}

func parseCoreOrWildcard(s string) (int, error) {
	if s == "*" {
		return Wildcard, nil
	}
	return strconv.Atoi(s)
}

func parseLink(pl *Plan, kind, val string) error {
	pair, arg, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want SRC>DST@ARG")
	}
	srcStr, dstStr, ok := strings.Cut(pair, ">")
	if !ok {
		return fmt.Errorf("want SRC>DST")
	}
	src, err := parseCoreOrWildcard(srcStr)
	if err != nil {
		return err
	}
	dst, err := parseCoreOrWildcard(dstStr)
	if err != nil {
		return err
	}
	lf := LinkFault{Src: src, Dst: dst}
	switch {
	case kind == "delay":
		lf.DelaySeconds, err = strconv.ParseFloat(arg, 64)
		if err == nil && lf.DelaySeconds <= 0 {
			err = fmt.Errorf("delay must be positive")
		}
	case strings.HasPrefix(arg, "p"):
		var prob float64
		prob, err = strconv.ParseFloat(arg[1:], 64)
		if err == nil && (prob <= 0 || prob > 1) {
			err = fmt.Errorf("probability %v outside (0,1]", prob)
		}
		if kind == "drop" {
			lf.DropProb = prob
		} else {
			lf.CorruptProb = prob
		}
	case strings.HasPrefix(arg, "every"):
		var n int
		n, err = strconv.Atoi(arg[len("every"):])
		if err == nil && n < 1 {
			err = fmt.Errorf("every period must be >= 1")
		}
		if kind == "drop" {
			lf.DropEvery = n
		} else {
			lf.CorruptEvery = n
		}
	default:
		err = fmt.Errorf("want pP or everyN, got %q", arg)
	}
	if err != nil {
		return err
	}
	pl.Links = append(pl.Links, lf)
	return nil
}
