package fault

import (
	"reflect"
	"testing"

	"rckalign/internal/rcce"
	"rckalign/internal/scc"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

func TestParseSpec(t *testing.T) {
	pl, err := ParseSpec("seed=7; kill=12@0.5 ;stall=20@1.0+0.25;drop=*>0@p0.01;corrupt=5>0@every100;delay=3>4@0.001")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed:   7,
		Kills:  []CoreFailure{{Core: 12, At: 0.5}},
		Stalls: []CoreStall{{Core: 20, At: 1.0, Duration: 0.25}},
		Links: []LinkFault{
			{Src: Wildcard, Dst: 0, DropProb: 0.01},
			{Src: 5, Dst: 0, CorruptEvery: 100},
			{Src: 3, Dst: 4, DelaySeconds: 0.001},
		},
	}
	if !reflect.DeepEqual(pl, want) {
		t.Errorf("parsed plan = %+v, want %+v", pl, want)
	}
	if empty, err := ParseSpec("  "); err != nil || !empty.Empty() {
		t.Errorf("blank spec: %+v, %v", empty, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"frob=1@2",
		"kill=12",
		"kill=x@1",
		"stall=3@1",
		"drop=1>2@x5",
		"drop=1>2@p1.5",
		"drop=1>2@every0",
		"corrupt=1@p0.5",
		"delay=1>2@-1",
		"seed=notanumber",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	ok := &Plan{
		Kills:  []CoreFailure{{Core: 5, At: 1}},
		Stalls: []CoreStall{{Core: 6, At: 0, Duration: 2}},
		Links:  []LinkFault{{Src: Wildcard, Dst: 0, DropProb: 0.5}},
	}
	if err := ok.Validate(48, 0); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := (*Plan)(nil).Validate(48, 0); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	for name, pl := range map[string]*Plan{
		"kill out of range":  {Kills: []CoreFailure{{Core: 48, At: 1}}},
		"kill master":        {Kills: []CoreFailure{{Core: 0, At: 1}}},
		"kill negative time": {Kills: []CoreFailure{{Core: 5, At: -1}}},
		"stall master":       {Stalls: []CoreStall{{Core: 0, At: 1, Duration: 1}}},
		"stall no duration":  {Stalls: []CoreStall{{Core: 5, At: 1}}},
		"link src range":     {Links: []LinkFault{{Src: -7, Dst: 0, DropProb: 0.5}}},
		"link bad prob":      {Links: []LinkFault{{Src: 1, Dst: 0, DropProb: 1.5}}},
		"link bad delay":     {Links: []LinkFault{{Src: 1, Dst: 0, DelaySeconds: -1}}},
	} {
		if err := pl.Validate(48, 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// msg builds the minimal message the interposer inspects.
func msg(src, dst int) *rcce.Message {
	return &rcce.Message{Src: src, Dst: dst, Bytes: 100}
}

// deliverAll runs one process that pushes the sequence through the
// injector and returns the outcomes.
func deliverAll(in *Injector, msgs []*rcce.Message) []rcce.Outcome {
	e := sim.NewEngine()
	out := make([]rcce.Outcome, len(msgs))
	e.Spawn("driver", func(p *sim.Process) {
		for i, m := range msgs {
			out[i] = in.Deliver(p, m)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return out
}

func TestDeliverEveryNAndWildcard(t *testing.T) {
	pl := &Plan{Links: []LinkFault{{Src: Wildcard, Dst: 0, DropEvery: 3}}}
	in := NewInjector(pl)
	var msgs []*rcce.Message
	for i := 0; i < 7; i++ {
		msgs = append(msgs, msg(i+1, 0))
	}
	msgs = append(msgs, msg(1, 2)) // different dst: rule must not match
	outs := deliverAll(in, msgs)
	var drops []int
	for i, o := range outs {
		if o.Drop {
			drops = append(drops, i)
		}
	}
	if !reflect.DeepEqual(drops, []int{2, 5}) {
		t.Errorf("dropped indices %v, want [2 5]", drops)
	}
	if in.Stats().Dropped != 2 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestDeliverProbDeterministic(t *testing.T) {
	pl := &Plan{Seed: 42, Links: []LinkFault{{Src: Wildcard, Dst: Wildcard, DropProb: 0.3, CorruptProb: 0.3}}}
	var msgs []*rcce.Message
	for i := 0; i < 200; i++ {
		msgs = append(msgs, msg(i%5, (i+1)%5))
	}
	a := deliverAll(NewInjector(pl), msgs)
	b := deliverAll(NewInjector(pl), msgs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same messages, different outcomes")
	}
	var drops, corrupts int
	for _, o := range a {
		if o.Drop {
			drops++
		}
		if o.Corrupt {
			corrupts++
		}
	}
	if drops == 0 || drops == len(msgs) {
		t.Errorf("drop count %d not in (0, %d)", drops, len(msgs))
	}
	if corrupts == 0 {
		t.Error("no corruptions at p=0.3 over 200 messages")
	}
	// A different seed must give a different sequence.
	pl2 := &Plan{Seed: 43, Links: pl.Links}
	if reflect.DeepEqual(a, deliverAll(NewInjector(pl2), msgs)) {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestDeliverDelayAndCombination(t *testing.T) {
	pl := &Plan{Links: []LinkFault{
		{Src: 1, Dst: 2, DelaySeconds: 0.5},
		{Src: Wildcard, Dst: 2, DelaySeconds: 0.25},
	}}
	in := NewInjector(pl)
	outs := deliverAll(in, []*rcce.Message{msg(1, 2), msg(3, 2), msg(1, 4)})
	if outs[0].DelaySeconds != 0.75 {
		t.Errorf("both rules should stack: %+v", outs[0])
	}
	if outs[1].DelaySeconds != 0.25 || outs[2].DelaySeconds != 0 {
		t.Errorf("outs = %+v", outs)
	}
	if in.Stats().Delayed != 2 {
		t.Errorf("stats = %+v", in.Stats())
	}
}

func TestDeliverWindow(t *testing.T) {
	pl := &Plan{Links: []LinkFault{{Src: 1, Dst: 2, From: 1, Until: 2, DropEvery: 1}}}
	in := NewInjector(pl)
	e := sim.NewEngine()
	var outs []rcce.Outcome
	e.Spawn("driver", func(p *sim.Process) {
		outs = append(outs, in.Deliver(p, msg(1, 2))) // t=0: outside
		p.Wait(1.5)
		outs = append(outs, in.Deliver(p, msg(1, 2))) // t=1.5: inside
		p.Wait(1)
		outs = append(outs, in.Deliver(p, msg(1, 2))) // t=2.5: outside
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if outs[0].Drop || !outs[1].Drop || outs[2].Drop {
		t.Errorf("windowed drops = %+v", outs)
	}
}

func TestArmKillAndStall(t *testing.T) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	rec := trace.New()
	var victimEnd, stalledEnd float64
	chip.SpawnCore(1, func(p *sim.Process) {
		p.Wait(10)
		victimEnd = p.Now()
	})
	chip.SpawnCore(2, func(p *sim.Process) {
		p.Wait(1)
		p.Wait(1)
		stalledEnd = p.Now()
	})
	pl := &Plan{
		Kills:  []CoreFailure{{Core: 1, At: 3}},
		Stalls: []CoreStall{{Core: 2, At: 0.5, Duration: 2}},
	}
	in := NewInjector(pl)
	in.Arm(chip, rec)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if victimEnd != 0 {
		t.Errorf("killed core completed its work at %v", victimEnd)
	}
	// Stall [0.5, 2.5): the t=1 wake defers to 2.5, second Wait(1) ends 3.5.
	if stalledEnd != 3.5 {
		t.Errorf("stalled core finished at %v, want 3.5", stalledEnd)
	}
	st := in.Stats()
	if st.CoresKilled != 1 || st.CoresStalled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := in.DeadCores(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("dead cores = %v", got)
	}
	if ms := rec.Marks(chip.CoreName(1)); len(ms) != 1 || ms[0].Label != "kill" || ms[0].T != 3 {
		t.Errorf("kill marks = %v", ms)
	}
	if ms := rec.Marks(chip.CoreName(2)); len(ms) != 1 || ms[0].Label != "stall" {
		t.Errorf("stall marks = %v", ms)
	}
}

func TestDeliverToDeadCoreDrops(t *testing.T) {
	e := sim.NewEngine()
	chip := scc.New(e, scc.DefaultConfig())
	chip.SpawnCore(1, func(p *sim.Process) { p.Wait(100) })
	pl := &Plan{Kills: []CoreFailure{{Core: 1, At: 1}}}
	in := NewInjector(pl)
	in.Arm(chip, nil)
	var before, after rcce.Outcome
	chip.SpawnCore(2, func(p *sim.Process) {
		before = in.Deliver(p, msg(2, 1))
		p.Wait(5)
		after = in.Deliver(p, msg(2, 1))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if before.Drop {
		t.Error("message to a still-alive core dropped")
	}
	if !after.Drop {
		t.Error("message to a dead core delivered")
	}
}

func TestDropSuppressesCorruptAndDelay(t *testing.T) {
	pl := &Plan{Links: []LinkFault{
		{Src: 1, Dst: 2, DropEvery: 1, CorruptEvery: 1, DelaySeconds: 0.5},
	}}
	in := NewInjector(pl)
	outs := deliverAll(in, []*rcce.Message{msg(1, 2)})
	if !outs[0].Drop || outs[0].Corrupt || outs[0].DelaySeconds != 0 {
		t.Errorf("outcome = %+v, want pure drop", outs[0])
	}
	st := in.Stats()
	if st.Dropped != 1 || st.Corrupted != 0 || st.Delayed != 0 {
		t.Errorf("stats = %+v", st)
	}
}
