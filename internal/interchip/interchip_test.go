package interchip

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"rckalign/internal/metrics"
	"rckalign/internal/sim"
)

func TestTransferSeconds(t *testing.T) {
	cfg := Config{LatencySeconds: 1e-6, BytesPerSecond: 1e9}
	got := cfg.TransferSeconds(1000)
	want := 1e-6 + 1000/1e9
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("TransferSeconds(1000) = %g, want %g", got, want)
	}
}

func TestProfileAndSpec(t *testing.T) {
	for _, name := range []string{"board", "cluster", "ideal", "BOARD"} {
		if _, err := Profile(name); err != nil {
			t.Errorf("Profile(%q): %v", name, err)
		}
	}
	if _, err := Profile("warp"); err == nil {
		t.Error("Profile(warp): want error")
	}

	cfg, err := ParseSpec("lat=5e-6,bw=2e9,recv=1e-6,ports=4")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Config{LatencySeconds: 5e-6, BytesPerSecond: 2e9, RecvSeconds: 1e-6, PortConcurrency: 4}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	// Unset keys inherit the board profile.
	cfg, err = ParseSpec("lat=0")
	if err != nil {
		t.Fatalf("ParseSpec(lat=0): %v", err)
	}
	if cfg.BytesPerSecond != DefaultConfig().BytesPerSecond {
		t.Fatalf("partial spec should inherit board bandwidth, got %g", cfg.BytesPerSecond)
	}
	for _, bad := range []string{"lat=-1", "bw=x", "ports=0", "spin=1", "lat"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

// TestSendTiming checks the un-contended cost model: the sender pays
// latency + serialization, the receiver additionally pays the handling
// cost, and the payload arrives intact.
func TestSendTiming(t *testing.T) {
	cfg := Config{LatencySeconds: 1e-3, BytesPerSecond: 1e6, RecvSeconds: 1e-4, PortConcurrency: 1}
	e := sim.NewEngine()
	f := New(2, cfg)
	var sendDone, recvDone float64
	var got Message
	e.Spawn("sender", func(p *sim.Process) {
		f.Send(p, 0, 1, 1000, "shard")
		sendDone = p.Now()
	})
	e.Spawn("receiver", func(p *sim.Process) {
		got = f.Recv(p, 1)
		recvDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantXfer := 1e-3 + 1000/1e6
	if math.Abs(sendDone-wantXfer) > 1e-12 {
		t.Fatalf("sender finished at %g, want %g", sendDone, wantXfer)
	}
	if math.Abs(recvDone-(wantXfer+1e-4)) > 1e-12 {
		t.Fatalf("receiver finished at %g, want %g", recvDone, wantXfer+1e-4)
	}
	if got.Payload != "shard" || got.Src != 0 || got.Dst != 1 || got.Bytes != 1000 {
		t.Fatalf("bad message: %+v", got)
	}
	if got.ArrivedAt != sendDone {
		t.Fatalf("ArrivedAt = %g, want send completion %g", got.ArrivedAt, sendDone)
	}
}

// TestIngressContention checks that two chips sending to the same
// destination serialize on its ingress port, and that the queueing time
// is accounted as send wait.
func TestIngressContention(t *testing.T) {
	cfg := Config{LatencySeconds: 0, BytesPerSecond: 1e6, PortConcurrency: 1}
	e := sim.NewEngine()
	f := New(3, cfg)
	done := make([]float64, 3)
	for src := 1; src <= 2; src++ {
		src := src
		e.Spawn("sender", func(p *sim.Process) {
			f.Send(p, src, 0, 1000, nil) // 1 ms each
			done[src] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	first, second := done[1], done[2]
	if second < first {
		first, second = second, first
	}
	if math.Abs(first-1e-3) > 1e-12 || math.Abs(second-2e-3) > 1e-12 {
		t.Fatalf("ingress should serialize: finishes %v, want 1ms and 2ms", done[1:])
	}
	st := f.Stats()
	if math.Abs(st.SendWaitSeconds-1e-3) > 1e-12 {
		t.Fatalf("SendWaitSeconds = %g, want 1ms of queueing", st.SendWaitSeconds)
	}
	if f.InboxDepth(0) != 2 {
		t.Fatalf("inbox depth = %d, want 2 undelivered", f.InboxDepth(0))
	}
	if st.PeakInboxDepth[0] != 2 {
		t.Fatalf("peak inbox = %d, want 2", st.PeakInboxDepth[0])
	}
}

// TestAsyncDelivery checks that a busy receiver never blocks senders:
// the inbox absorbs the burst and drains in arrival order.
func TestAsyncDelivery(t *testing.T) {
	cfg := Config{LatencySeconds: 1e-6, BytesPerSecond: 1e9, PortConcurrency: 1}
	e := sim.NewEngine()
	f := New(4, cfg)
	var order []int
	for src := 1; src <= 3; src++ {
		src := src
		e.Spawn("sender", func(p *sim.Process) {
			p.Wait(float64(src) * 1e-6) // staggered, deterministic arrival order
			f.Send(p, src, 0, 100, src)
		})
	}
	e.Spawn("root", func(p *sim.Process) {
		p.Wait(1.0) // busy root: everything queues
		for i := 0; i < 3; i++ {
			order = append(order, f.Recv(p, 0).Payload.(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("drain order = %v, want arrival order [1 2 3]", order)
	}
	if f.Stats().PeakInboxDepth[0] != 3 {
		t.Fatalf("peak inbox = %d, want 3", f.Stats().PeakInboxDepth[0])
	}
}

func TestMetricsAndStats(t *testing.T) {
	reg := metrics.New()
	e := sim.NewEngine()
	f := New(2, DefaultConfig())
	f.SetMetrics(reg)
	e.Spawn("sender", func(p *sim.Process) {
		f.Send(p, 0, 1, 5000, nil)
		f.Send(p, 0, 1, 3000, nil)
	})
	e.Spawn("receiver", func(p *sim.Process) {
		f.Recv(p, 1)
		f.Recv(p, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("interchip.transfers").Value(); got != 2 {
		t.Fatalf("interchip.transfers = %g, want 2", got)
	}
	if got := reg.Counter("interchip.bytes").Value(); got != 8000 {
		t.Fatalf("interchip.bytes = %g, want 8000", got)
	}
	if got := reg.Counter("interchip.link.bytes", "link", "c0->c1").Value(); got != 8000 {
		t.Fatalf("link bytes = %g, want 8000", got)
	}
	st := f.Stats()
	if st.Transfers != 2 || st.Bytes != 8000 || st.LinkBytes[0][1] != 8000 {
		t.Fatalf("stats = %+v", st)
	}
	top := f.TopLinks(3)
	if len(top) != 1 || !strings.Contains(top[0], "c0->c1") {
		t.Fatalf("TopLinks = %v", top)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		e := sim.NewEngine()
		f := New(3, DefaultConfig())
		for src := 1; src <= 2; src++ {
			src := src
			e.Spawn("sender", func(p *sim.Process) {
				for i := 0; i < 5; i++ {
					f.Send(p, src, 0, 1000*src+i, i)
				}
			})
		}
		e.Spawn("root", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				f.Recv(p, 0)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return f.Stats()
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("fabric runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestBadUse(t *testing.T) {
	f := New(2, DefaultConfig())
	for name, fn := range map[string]func(){
		"self-send":  func() { f.Send(nil, 0, 0, 1, nil) },
		"bad-src":    func() { f.Send(nil, -1, 0, 1, nil) },
		"bad-dst":    func() { f.Recv(nil, 7) },
		"zero-chips": func() { New(0, DefaultConfig()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
