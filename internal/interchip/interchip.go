// Package interchip models the board-level interconnect that joins
// several SCC chips into one system — the tier above the on-chip mesh
// (internal/noc). The SCC's own scale-out story was exactly this shape:
// chips on a board linked through the system interface FPGA, orders of
// magnitude slower than the 2D mesh. The model is deliberately simple
// and deterministic: a message from chip s to chip d occupies s's
// egress port and d's ingress port for latency + bytes/bandwidth
// seconds (circuit-switched, like the SIF's PCIe-style link), then
// lands in d's inbox queue asynchronously — the receiver pulls it
// whenever it next polls, paying a fixed per-message handling cost.
// Delivery is a sim.Queue, so a busy root master never blocks a
// sub-master's send; the growing inbox depth is itself the signal for
// "where the single master breaks".
package interchip

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rckalign/internal/metrics"
	"rckalign/internal/sim"
)

// Config is the interconnect cost profile. The zero value is invalid;
// use DefaultConfig (or a named Profile) and override fields.
type Config struct {
	// LatencySeconds is the fixed per-message link latency (protocol +
	// flight time), charged once per Send.
	LatencySeconds float64
	// BytesPerSecond is the link bandwidth used for the serialization
	// term bytes/BytesPerSecond.
	BytesPerSecond float64
	// RecvSeconds is the fixed per-message receive handling cost (DMA
	// completion, demux) charged to the receiving process on Recv.
	RecvSeconds float64
	// PortConcurrency is the number of simultaneous transfers each
	// chip-side port (egress and ingress separately) sustains; <= 0
	// means 1. With 1 (the default) a chip's outbound sends serialize,
	// and so do the arrivals into one chip — the root-ingress contention
	// this model exists to expose.
	PortConcurrency int
}

// DefaultConfig returns the "board" profile: chips on one carrier board
// behind a PCIe-generation-2-class system interface. ~2 µs latency and
// 1.6 GB/s are three orders of magnitude off the mesh's per-hop
// nanoseconds and 3.2 GB/s links, which is the point of modelling the
// tier separately.
func DefaultConfig() Config {
	return Config{
		LatencySeconds:  2e-6,
		BytesPerSecond:  1.6e9,
		RecvSeconds:     0.5e-6,
		PortConcurrency: 1,
	}
}

// Profiles with documented CLI names (-interchip board|cluster|ideal).
//
//   - board:   DefaultConfig — same-board system interface.
//   - cluster: commodity-network numbers (50 µs, 1.25 GB/s ≈ 10 GbE) —
//     chips in separate hosts.
//   - ideal:   free transport (zero latency, effectively infinite
//     bandwidth, no port contention) — isolates the protocol/topology
//     effects from the wire cost.
func Profile(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "board":
		return DefaultConfig(), nil
	case "cluster":
		return Config{LatencySeconds: 50e-6, BytesPerSecond: 1.25e9, RecvSeconds: 2e-6, PortConcurrency: 1}, nil
	case "ideal":
		return Config{LatencySeconds: 0, BytesPerSecond: 1e18, RecvSeconds: 0, PortConcurrency: 1 << 20}, nil
	}
	return Config{}, fmt.Errorf("interchip: unknown profile %q (board, cluster, ideal, or lat=S,bw=B[,recv=S][,ports=N])", name)
}

// ParseSpec resolves an -interchip flag value: a named profile, or a
// custom "lat=2e-6,bw=1.6e9[,recv=5e-7][,ports=1]" key=value spec
// (keys: lat, bw, recv, ports; unset custom keys inherit the board
// profile).
func ParseSpec(spec string) (Config, error) {
	if !strings.Contains(spec, "=") {
		return Profile(spec)
	}
	cfg := DefaultConfig()
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("interchip: bad spec element %q (want key=value)", kv)
		}
		switch key {
		case "lat", "bw", "recv":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return Config{}, fmt.Errorf("interchip: bad %s=%q (want a non-negative number)", key, val)
			}
			switch key {
			case "lat":
				cfg.LatencySeconds = f
			case "bw":
				cfg.BytesPerSecond = f
			case "recv":
				cfg.RecvSeconds = f
			}
		case "ports":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Config{}, fmt.Errorf("interchip: bad ports=%q (want an integer >= 1)", val)
			}
			cfg.PortConcurrency = n
		default:
			return Config{}, fmt.Errorf("interchip: unknown spec key %q (lat, bw, recv, ports)", key)
		}
	}
	if cfg.BytesPerSecond <= 0 {
		return Config{}, fmt.Errorf("interchip: bw must be positive")
	}
	return cfg, nil
}

// String renders the profile compactly for reports and -help examples.
func (c Config) String() string {
	return fmt.Sprintf("lat=%g,bw=%g,recv=%g,ports=%d", c.LatencySeconds, c.BytesPerSecond, c.RecvSeconds, c.ports())
}

func (c Config) ports() int {
	if c.PortConcurrency < 1 {
		return 1
	}
	return c.PortConcurrency
}

// TransferSeconds is the port-occupancy time of one message (latency +
// serialization), excluding queueing.
func (c Config) TransferSeconds(bytes int) float64 {
	return c.LatencySeconds + float64(bytes)/c.BytesPerSecond
}

// Message is one inter-chip transfer as seen by the receiver.
type Message struct {
	Src, Dst int
	Bytes    int
	Payload  any
	// SentAt is the simulated time the sender entered Send (before any
	// port queueing); ArrivedAt is when the message landed in the
	// destination inbox.
	SentAt    float64
	ArrivedAt float64
}

// Stats is the fabric's cumulative accounting, available without a
// metrics registry (Report blocks are built from it).
type Stats struct {
	// Transfers and Bytes count every completed Send.
	Transfers int64
	Bytes     int64
	// SendWaitSeconds is the total time senders spent queued for an
	// egress or ingress port (pure contention, excluded from the
	// transfer term itself).
	SendWaitSeconds float64
	// PeakInboxDepth[d] is the deepest chip d's inbox ever got.
	PeakInboxDepth []int
	// InboxMessages[d] counts every message delivered into chip d's
	// inbox — for the root (d = 0) this is the number of inbound flows
	// the gather topology actually produced, independent of how deep
	// the inbox got at any instant.
	InboxMessages []int64
	// LinkBytes[s][d] is the per-directed-pair byte volume.
	LinkBytes [][]int64
}

// Fabric is an instantiated interconnect between n chips.
type Fabric struct {
	cfg     Config
	n       int
	egress  []*sim.Resource
	ingress []*sim.Resource
	inbox   []*sim.Queue

	stats Stats

	// Observability handles, nil unless SetMetrics installed a registry.
	reg       *metrics.Registry
	cXfers    *metrics.Counter
	cBytes    *metrics.Counter
	cWait     *metrics.Counter
	hMsgBytes *metrics.Histogram
	linkBytes [][]*metrics.Counter
	sInbox    []*metrics.Series
	gInbox    []*metrics.Gauge
}

// New builds a fabric joining n chips (n >= 1).
func New(n int, cfg Config) *Fabric {
	if n < 1 {
		panic("interchip: fabric needs at least one chip")
	}
	f := &Fabric{cfg: cfg, n: n}
	f.egress = make([]*sim.Resource, n)
	f.ingress = make([]*sim.Resource, n)
	f.inbox = make([]*sim.Queue, n)
	for c := 0; c < n; c++ {
		f.egress[c] = sim.NewResource(fmt.Sprintf("interchip.egress.c%d", c), cfg.ports())
		f.ingress[c] = sim.NewResource(fmt.Sprintf("interchip.ingress.c%d", c), cfg.ports())
		f.inbox[c] = sim.NewQueue(fmt.Sprintf("interchip.inbox.c%d", c))
	}
	f.stats.PeakInboxDepth = make([]int, n)
	f.stats.InboxMessages = make([]int64, n)
	f.stats.LinkBytes = make([][]int64, n)
	for c := range f.stats.LinkBytes {
		f.stats.LinkBytes[c] = make([]int64, n)
	}
	return f
}

// Config returns the interconnect profile.
func (f *Fabric) Config() Config { return f.cfg }

// NumChips returns the number of attached chips.
func (f *Fabric) NumChips() int { return f.n }

// SetMetrics installs a metrics registry: every Send records transfer
// count, bytes, a size histogram and port-queueing wait
// ("interchip.transfers", "interchip.bytes", "interchip.message.bytes",
// "interchip.send.wait_seconds"), per directed chip pair the byte
// volume ("interchip.link.bytes{link=c0->c1}"), and per chip an
// inbox-depth time series with its peak as a gauge
// ("interchip.inbox_depth{chip=cN}", "interchip.inbox_peak{chip=cN}").
// Passive — no simulated time is consumed. Passing nil disables
// recording again.
func (f *Fabric) SetMetrics(reg *metrics.Registry) {
	f.reg = reg
	f.cXfers = reg.Counter("interchip.transfers")
	f.cBytes = reg.Counter("interchip.bytes")
	f.cWait = reg.Counter("interchip.send.wait_seconds")
	f.hMsgBytes = reg.Histogram("interchip.message.bytes", metrics.SizeBuckets)
	if reg == nil {
		f.linkBytes, f.sInbox, f.gInbox = nil, nil, nil
		return
	}
	f.linkBytes = make([][]*metrics.Counter, f.n)
	f.sInbox = make([]*metrics.Series, f.n)
	f.gInbox = make([]*metrics.Gauge, f.n)
	for s := 0; s < f.n; s++ {
		f.linkBytes[s] = make([]*metrics.Counter, f.n)
		for d := 0; d < f.n; d++ {
			if s != d {
				f.linkBytes[s][d] = reg.Counter("interchip.link.bytes", "link", fmt.Sprintf("c%d->c%d", s, d))
			}
		}
		chip := fmt.Sprintf("c%d", s)
		f.sInbox[s] = reg.Series("interchip.inbox_depth", "chip", chip)
		f.gInbox[s] = reg.Gauge("interchip.inbox_peak", "chip", chip)
	}
}

func (f *Fabric) checkChip(c int) {
	if c < 0 || c >= f.n {
		panic(fmt.Sprintf("interchip: chip %d out of range [0,%d)", c, f.n))
	}
}

// Send moves bytes of payload from chip src to chip dst inside process
// p (the sending master/sub-master). The sender holds src's egress and
// dst's ingress port for the transfer time and then proceeds; delivery
// into dst's inbox is asynchronous, so a slow receiver inflates its
// inbox depth, never the sender.
func (f *Fabric) Send(p *sim.Process, src, dst, bytes int, payload any) {
	f.checkChip(src)
	f.checkChip(dst)
	if src == dst {
		panic(fmt.Sprintf("interchip: chip %d sending to itself (intra-chip traffic belongs on the mesh)", src))
	}
	if bytes < 1 {
		bytes = 1
	}
	sentAt := p.Now()
	// Egress before ingress, always: egress.cS is only ever wanted by
	// chip S's own sends, so no hold-and-wait cycle can form between the
	// two resource classes.
	f.egress[src].Acquire(p)
	f.ingress[dst].Acquire(p)
	wait := p.Now() - sentAt
	p.Wait(f.cfg.TransferSeconds(bytes))
	f.ingress[dst].Release(p)
	f.egress[src].Release(p)

	f.stats.Transfers++
	f.stats.Bytes += int64(bytes)
	f.stats.SendWaitSeconds += wait
	f.stats.LinkBytes[src][dst] += int64(bytes)
	f.cXfers.Inc()
	f.cBytes.Add(float64(bytes))
	f.cWait.Add(wait)
	f.hMsgBytes.Observe(float64(bytes))
	if f.linkBytes != nil {
		f.linkBytes[src][dst].Add(float64(bytes))
	}

	f.inbox[dst].Put(Message{
		Src: src, Dst: dst, Bytes: bytes, Payload: payload,
		SentAt: sentAt, ArrivedAt: p.Now(),
	})
	f.stats.InboxMessages[dst]++
	f.noteInbox(dst, p.Now())
}

// Recv returns the next message addressed to chip dst, blocking p until
// one arrives and charging the fixed per-message handling cost.
func (f *Fabric) Recv(p *sim.Process, dst int) Message {
	f.checkChip(dst)
	m := f.inbox[dst].Get(p).(Message)
	f.noteInbox(dst, p.Now())
	if f.cfg.RecvSeconds > 0 {
		p.Wait(f.cfg.RecvSeconds)
	}
	return m
}

// InboxDepth returns the number of undelivered messages queued for a
// chip.
func (f *Fabric) InboxDepth(dst int) int { return f.inbox[dst].Len() }

// noteInbox samples chip dst's inbox depth into the stats/metrics after
// a put or get.
func (f *Fabric) noteInbox(dst int, now float64) {
	depth := f.inbox[dst].Len()
	if depth > f.stats.PeakInboxDepth[dst] {
		f.stats.PeakInboxDepth[dst] = depth
	}
	if f.sInbox != nil {
		f.sInbox[dst].Append(now, float64(depth))
		f.gInbox[dst].Max(float64(depth))
	}
}

// Stats returns a copy of the fabric's cumulative accounting.
func (f *Fabric) Stats() Stats {
	out := f.stats
	out.PeakInboxDepth = append([]int(nil), f.stats.PeakInboxDepth...)
	out.InboxMessages = append([]int64(nil), f.stats.InboxMessages...)
	out.LinkBytes = make([][]int64, f.n)
	for c := range out.LinkBytes {
		out.LinkBytes[c] = append([]int64(nil), f.stats.LinkBytes[c]...)
	}
	return out
}

// BusySeconds returns total port-seconds consumed per chip (egress +
// ingress), sorted output for deterministic debugging dumps.
func (f *Fabric) BusySeconds() []float64 {
	out := make([]float64, f.n)
	for c := 0; c < f.n; c++ {
		out[c] = f.egress[c].BusySeconds() + f.ingress[c].BusySeconds()
	}
	return out
}

// TopLinks renders the k busiest directed chip pairs ("c0->c1: N B"),
// heaviest first with deterministic ties, for report footers.
func (f *Fabric) TopLinks(k int) []string {
	type link struct {
		s, d  int
		bytes int64
	}
	var links []link
	for s := 0; s < f.n; s++ {
		for d := 0; d < f.n; d++ {
			if f.stats.LinkBytes[s][d] > 0 {
				links = append(links, link{s, d, f.stats.LinkBytes[s][d]})
			}
		}
	}
	sort.SliceStable(links, func(a, b int) bool { return links[a].bytes > links[b].bytes })
	if k > 0 && len(links) > k {
		links = links[:k]
	}
	out := make([]string, len(links))
	for i, l := range links {
		out[i] = fmt.Sprintf("c%d->c%d: %d B", l.s, l.d, l.bytes)
	}
	return out
}
