// Package metrics is a lightweight registry of counters, gauges,
// fixed-bucket histograms and time series for the simulated stack. It is
// the machine-readable counterpart of the ASCII views in internal/trace
// and internal/stats: every layer (sim engine, noc mesh, rcce comm,
// rckskel farms) records into one Registry, and Snapshot renders the
// whole registry as deterministic JSON — same run, byte-identical dump.
//
// Design rules, enforced across the stack:
//
//   - Disabled means free: a nil *Registry hands out nil instrument
//     handles, and every handle method is a no-op on a nil receiver, so
//     instrumented hot paths cost one pointer test when metrics are off.
//   - Simulated time only: series samples carry the sim clock, never the
//     host clock, so identical runs produce identical snapshots.
//   - No background goroutines, no locks: the simulation engine runs
//     exactly one goroutine at a time, and the registry relies on that.
//   - Handles are cached by callers on their hot paths; Registry lookups
//     (map + key build) are for setup, not per-event code.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Key builds the canonical instrument key: name{k1=v1,k2=v2}. Labels are
// alternating key, value pairs and are kept in the order given (callers
// use a fixed order per metric name, so keys stay comparable).
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds every instrument of one run. The zero value is not
// usable; a nil registry is the disabled state (see package comment).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns (creating on first use) the counter for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for
// name+labels with the given bucket upper bounds (ascending; an implicit
// +Inf bucket is appended). Buckets are fixed at creation: later calls
// with the same key return the existing histogram regardless of the
// buckets argument. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(buckets)
		r.hists[k] = h
	}
	return h
}

// Series returns (creating on first use) the time series for
// name+labels. Returns nil on a nil registry.
func (r *Registry) Series(name string, labels ...string) *Series {
	if r == nil {
		return nil
	}
	k := Key(name, labels...)
	s, ok := r.series[k]
	if !ok {
		s = &Series{}
		r.series[k] = s
	}
	return s
}

// Counter is a monotonically increasing sum (counts, bytes, seconds).
type Counter struct{ v float64 }

// Add increases the counter; no-op on a nil receiver.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	c.v += v
}

// Inc adds one; no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current sum (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins value (queue depth, busy seconds at end of
// run).
type Gauge struct{ v float64 }

// Set stores v; no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Max stores v if it exceeds the current value; no-op on nil.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// TimeBuckets is the default log-spaced bucket ladder for simulated
// latencies, 1 µs .. 1000 s.
var TimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000,
}

// SizeBuckets is the default bucket ladder for message/transfer sizes in
// bytes (64 B .. 16 MB).
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 16777216,
}

// HopBuckets covers mesh route lengths on a 6x4 grid (max 8 hops).
var HopBuckets = []float64{1, 2, 3, 4, 5, 6, 7, 8}

// CountBuckets is the power-of-two ladder for small cardinalities
// (jobs per batch, structures per request).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram counts observations into fixed buckets and tracks
// count/sum/min/max exactly.
type Histogram struct {
	bounds   []float64 // ascending upper bounds; final +Inf implicit
	counts   []int64   // len(bounds)+1
	count    int64
	sum      float64
	min, max float64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]int64, len(buckets)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// MaxValue returns the largest observation (0 when empty or nil).
func (h *Histogram) MaxValue() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the average observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation inside the bucket that holds the
// target rank, clamped to the exact observed min/max. The estimate's
// resolution is the bucket width — good enough for the p50/p95/p99
// figures a /statsz endpoint reports. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// Bucket i spans (bounds[i-1], bounds[i]]; clamp to the observed
		// extremes so sparse histograms do not extrapolate past real data.
		lo, hi := h.min, h.max
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		return lo + (rank-prev)/float64(c)*(hi-lo)
	}
	return h.max
}

// Point is one time-series sample at simulated time T.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is an append-only time series (mailbox depth, links in
// flight). Samples are recorded at state changes, not on a timer, so the
// series is exact and adds no simulation events.
type Series struct{ points []Point }

// Append records a sample; no-op on a nil receiver. Consecutive samples
// at the same time keep only the last value (the state after the
// simultaneous events).
func (s *Series) Append(t, v float64) {
	if s == nil {
		return
	}
	if n := len(s.points); n > 0 && s.points[n-1].T == t {
		s.points[n-1].V = v
		return
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Points returns the recorded samples (nil-safe).
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	return append([]Point(nil), s.points...)
}

// Last returns the most recent value (0 when empty or nil).
func (s *Series) Last() float64 {
	if s == nil || len(s.points) == 0 {
		return 0
	}
	return s.points[len(s.points)-1].V
}

// ScalarSnapshot is one counter or gauge in a snapshot.
type ScalarSnapshot struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram in a snapshot. Min/Max are omitted
// when the histogram is empty.
type HistogramSnapshot struct {
	Key     string    `json:"key"`
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     *float64  `json:"min,omitempty"`
	Max     *float64  `json:"max,omitempty"`
}

// SeriesSnapshot is one time series in a snapshot.
type SeriesSnapshot struct {
	Key    string  `json:"key"`
	Points []Point `json:"points"`
}

// Snapshot is the full registry state, ordered deterministically (each
// section sorted by key).
type Snapshot struct {
	Counters   []ScalarSnapshot    `json:"counters"`
	Gauges     []ScalarSnapshot    `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Series     []SeriesSnapshot    `json:"series"`
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot captures the registry. Nil registries snapshot as empty.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []ScalarSnapshot{},
		Gauges:     []ScalarSnapshot{},
		Histograms: []HistogramSnapshot{},
		Series:     []SeriesSnapshot{},
	}
	if r == nil {
		return snap
	}
	for _, k := range sortedKeys(r.counters) {
		snap.Counters = append(snap.Counters, ScalarSnapshot{Key: k, Value: r.counters[k].v})
	}
	for _, k := range sortedKeys(r.gauges) {
		snap.Gauges = append(snap.Gauges, ScalarSnapshot{Key: k, Value: r.gauges[k].v})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		hs := HistogramSnapshot{
			Key:     k,
			Buckets: append([]float64(nil), h.bounds...),
			Counts:  append([]int64(nil), h.counts...),
			Count:   h.count,
			Sum:     h.sum,
		}
		if h.count > 0 {
			min, max := h.min, h.max
			hs.Min, hs.Max = &min, &max
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	for _, k := range sortedKeys(r.series) {
		snap.Series = append(snap.Series, SeriesSnapshot{
			Key:    k,
			Points: append([]Point{}, r.series[k].points...),
		})
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON. encoding/json formats
// float64 with the shortest round-trip representation, so the output is
// byte-deterministic for identical runs.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal snapshot: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
