package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestKey(t *testing.T) {
	if got := Key("noc.link.bytes"); got != "noc.link.bytes" {
		t.Errorf("bare key = %q", got)
	}
	if got := Key("farm.slave.jobs", "slave", "rck01"); got != "farm.slave.jobs{slave=rck01}" {
		t.Errorf("labeled key = %q", got)
	}
	if got := Key("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Errorf("two-label key = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd label count did not panic")
		}
	}()
	Key("x", "orphan")
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c", "k", "v")
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Errorf("counter = %v", c.Value())
	}
	if r.Counter("c", "k", "v") != c {
		t.Error("same key returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Max(3) // lower: ignored
	g.Max(9)
	if g.Value() != 9 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 560.5 {
		t.Errorf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	if h.MaxValue() != 500 || h.Mean() != 112.1 {
		t.Errorf("max/mean = %v/%v", h.MaxValue(), h.Mean())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hs := snap.Histograms[0]
	want := []int64{1, 2, 1, 1} // <=1, <=10, <=100, +Inf
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Errorf("bucket counts = %v, want %v", hs.Counts, want)
			break
		}
	}
	if hs.Min == nil || *hs.Min != 0.5 || hs.Max == nil || *hs.Max != 500 {
		t.Errorf("min/max snapshot = %v/%v", hs.Min, hs.Max)
	}
}

func TestSeries(t *testing.T) {
	r := New()
	s := r.Series("depth")
	s.Append(0, 1)
	s.Append(1, 2)
	s.Append(1, 3) // same instant: keep the final state only
	s.Append(2, 1)
	pts := s.Points()
	if len(pts) != 3 || pts[1] != (Point{T: 1, V: 3}) {
		t.Errorf("points = %v", pts)
	}
	if s.Last() != 1 {
		t.Errorf("last = %v", s.Last())
	}
}

// TestNilRegistryIsFree pins the disabled path: nil registries hand out
// nil handles and every handle method is a safe no-op.
func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", TimeBuckets)
	s := r.Series("s")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Max(1)
	h.Observe(1)
	s.Append(1, 1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 || s.Last() != 0 {
		t.Error("nil handles accumulated state")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Series) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
}

// TestSnapshotDeterminism pins the byte-identical guarantee: the same
// recording sequence must serialise identically, with sections sorted by
// key regardless of creation order.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := New()
		for _, name := range order {
			r.Counter(name).Inc()
		}
		r.Series("z.series").Append(1, 2)
		r.Histogram("m.hist", TimeBuckets).Observe(0.25)
		r.Gauge("a.gauge").Set(4)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build([]string{"b", "a", "c"}).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]string{"c", "b", "a"}).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("snapshots differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{`"a"`, `"z.series"`, `"m.hist"`, `"a.gauge"`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %s:\n%s", want, out)
		}
	}
	if strings.Index(out, `"key": "a"`) > strings.Index(out, `"key": "b"`) {
		t.Error("counters not sorted by key")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := newHistogram([]float64{1, 10, 100})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations spread uniformly over (1, 10].
	for i := 1; i <= 100; i++ {
		h.Observe(1 + 9*float64(i)/100)
	}
	if got := h.Quantile(0); got != h.min {
		t.Errorf("q=0 -> %v, want min %v", got, h.min)
	}
	if got := h.Quantile(1); got != h.max {
		t.Errorf("q=1 -> %v, want max %v", got, h.max)
	}
	// All mass is in the (1, 10] bucket: the median interpolates to its
	// middle, and estimates are bounded by the observed extremes.
	if got := h.Quantile(0.5); got < 4 || got > 7 {
		t.Errorf("median = %v, want ~5.5 (mid-bucket interpolation)", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got < h.min || got > h.max {
			t.Errorf("q=%v -> %v outside observed [%v, %v]", q, got, h.min, h.max)
		}
	}
	// Quantiles are monotone in q.
	prev := h.Quantile(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("quantile not monotone: q=%v -> %v below %v", q, got, prev)
		}
		prev = got
	}

	// A single observation: every quantile is that value.
	h1 := newHistogram(TimeBuckets)
	h1.Observe(0.042)
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h1.Quantile(q); got != 0.042 {
			t.Errorf("single-observation q=%v -> %v, want 0.042", q, got)
		}
	}

	// Two distinct buckets: p99 lands in the upper one.
	h2 := newHistogram([]float64{1, 10})
	for i := 0; i < 99; i++ {
		h2.Observe(0.5)
	}
	h2.Observe(5)
	if got := h2.Quantile(0.995); got <= 1 {
		t.Errorf("p99.5 = %v, want in the upper bucket (> 1)", got)
	}
	if got := h2.Quantile(0.5); got < 0.5 || got > 1 {
		t.Errorf("median = %v, want inside the lower bucket [0.5, 1]", got)
	}
}

// TestHistogramQuantileOverflowBucket pins the overflow path: with all
// mass above the last bound, every quantile stays clamped inside the
// observed range instead of extrapolating to infinity.
func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for i := 0; i < 50; i++ {
		h.Observe(100 + float64(i))
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 100 || got > 149 {
			t.Errorf("overflow-bucket q=%v -> %v, want within observed [100, 149]", q, got)
		}
	}
	if got := h.Quantile(1); got != 149 {
		t.Errorf("q=1 -> %v, want exact max 149", got)
	}
}
