// Package trace records per-core activity intervals from a simulated
// execution and renders them as utilization summaries or an ASCII Gantt
// chart — the instrumentation behind the "almost linear speedup"
// analysis: it shows directly whether slave cores sit idle waiting for
// the master.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is one span of activity on a track.
type Interval struct {
	Start, End float64
	Label      string
}

// Mark is an instantaneous event on a track (a fault injection, a
// checkpoint), rendered as 'X' in the Gantt chart.
type Mark struct {
	T     float64
	Label string
}

// Recorder accumulates intervals by track (typically one track per
// core). The zero value is not ready; use New.
type Recorder struct {
	tracks map[string][]Interval
	marks  map[string][]Mark
	order  []string
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{tracks: map[string][]Interval{}, marks: map[string][]Mark{}}
}

func (r *Recorder) ensureTrack(track string) {
	if _, ok := r.tracks[track]; !ok {
		r.tracks[track] = nil
		r.order = append(r.order, track)
	}
}

// Add appends an interval to a track. Intervals with End <= Start are
// ignored.
func (r *Recorder) Add(track string, start, end float64, label string) {
	if end <= start {
		return
	}
	r.ensureTrack(track)
	r.tracks[track] = append(r.tracks[track], Interval{Start: start, End: end, Label: label})
}

// AddMark records an instantaneous event on a track (e.g. "kill",
// "drop"); fault injections use it so failures show up visually in
// Gantt output.
func (r *Recorder) AddMark(track string, t float64, label string) {
	r.ensureTrack(track)
	r.marks[track] = append(r.marks[track], Mark{T: t, Label: label})
}

// Tracks returns the track names in first-seen order.
func (r *Recorder) Tracks() []string { return append([]string(nil), r.order...) }

// Intervals returns a track's recorded intervals.
func (r *Recorder) Intervals(track string) []Interval {
	return append([]Interval(nil), r.tracks[track]...)
}

// Marks returns a track's recorded point events.
func (r *Recorder) Marks(track string) []Mark {
	return append([]Mark(nil), r.marks[track]...)
}

// Span returns the [min start, max end] across all tracks' intervals
// and marks (0,0 when empty).
func (r *Recorder) Span() (float64, float64) {
	first := true
	var lo, hi float64
	for _, ivs := range r.tracks {
		for _, iv := range ivs {
			if first || iv.Start < lo {
				lo = iv.Start
			}
			if first || iv.End > hi {
				hi = iv.End
			}
			first = false
		}
	}
	for _, ms := range r.marks {
		for _, m := range ms {
			if first || m.T < lo {
				lo = m.T
			}
			if first || m.T > hi {
				hi = m.T
			}
			first = false
		}
	}
	return lo, hi
}

// mergedBusy sums the intervals clipped to the window [t0, t1] with
// overlaps merged: a sorted sweep that extends the current merged run or
// closes it and starts the next, so double-booked time counts once.
func mergedBusy(intervals []Interval, t0, t1 float64) float64 {
	ivs := make([]Interval, 0, len(intervals))
	for _, iv := range intervals {
		s, e := iv.Start, iv.End
		if s < t0 {
			s = t0
		}
		if e > t1 {
			e = t1
		}
		if e > s {
			ivs = append(ivs, Interval{Start: s, End: e})
		}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
	var busy, curStart, curEnd float64
	started := false
	for _, iv := range ivs {
		if !started || iv.Start > curEnd {
			if started {
				busy += curEnd - curStart
			}
			curStart, curEnd = iv.Start, iv.End
			started = true
		} else if iv.End > curEnd {
			curEnd = iv.End
		}
	}
	if started {
		busy += curEnd - curStart
	}
	return busy
}

// BusySeconds returns a track's total busy time (overlaps merged).
func (r *Recorder) BusySeconds(track string) float64 {
	return mergedBusy(r.tracks[track], math.Inf(-1), math.Inf(1))
}

// Utilization returns a track's busy fraction of the window [t0, t1],
// with overlapping intervals merged so the fraction never exceeds 1 by
// double-counting the same span.
func (r *Recorder) Utilization(track string, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	u := mergedBusy(r.tracks[track], t0, t1) / (t1 - t0)
	if u > 1 {
		u = 1
	}
	return u
}

// nameWidth returns the track-name column width: the longest recorded
// track name, at least 10 so short names keep the historical layout.
func (r *Recorder) nameWidth() int {
	w := 10
	for _, track := range r.order {
		if len(track) > w {
			w = len(track)
		}
	}
	return w
}

// UtilizationTable renders per-track utilization over the full span as
// aligned text with a bar.
func (r *Recorder) UtilizationTable(width int) string {
	if width < 10 {
		width = 10
	}
	t0, t1 := r.Span()
	nw := r.nameWidth()
	var b strings.Builder
	fmt.Fprintf(&b, "window: %.3f .. %.3f s\n", t0, t1)
	for _, track := range r.order {
		u := r.Utilization(track, t0, t1)
		n := int(u*float64(width) + 0.5)
		fmt.Fprintf(&b, "%-*s %5.1f%% |%s%s|\n", nw, track, 100*u,
			strings.Repeat("#", n), strings.Repeat(" ", width-n))
	}
	return b.String()
}

// Gantt renders an ASCII chart: one row per track, '#' where the track
// is busy, '.' where idle, 'X' at fault/event marks, over the
// recorder's span quantised to the given width. Marks overwrite busy
// cells so injected failures stay visible.
func (r *Recorder) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	t0, t1 := r.Span()
	if t1 <= t0 {
		return "(empty trace)\n"
	}
	dt := (t1 - t0) / float64(width)
	nw := r.nameWidth()
	var b strings.Builder
	for _, track := range r.order {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range r.tracks[track] {
			lo := int((iv.Start - t0) / dt)
			hi := int((iv.End-t0)/dt + 0.999999)
			if lo < 0 {
				lo = 0
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				row[i] = '#'
			}
		}
		for _, m := range r.marks[track] {
			i := int((m.T - t0) / dt)
			if i < 0 {
				i = 0
			}
			if i >= width {
				i = width - 1
			}
			row[i] = 'X'
		}
		fmt.Fprintf(&b, "%-*s %s\n", nw, track, row)
	}
	return b.String()
}
