package trace

import (
	"strings"
	"testing"
)

// TestUtilizationMergesOverlaps pins the merged-sweep semantics: time
// covered by two overlapping intervals counts once, so a double-booked
// track cannot report more busy time than wall time.
func TestUtilizationMergesOverlaps(t *testing.T) {
	r := New()
	r.Add("m", 0, 6, "a")
	r.Add("m", 4, 10, "b")
	if got := r.Utilization("m", 0, 20); got != 0.5 {
		t.Errorf("overlapping utilization = %v, want 0.5 (merged 10s / 20s window)", got)
	}
	if got := r.BusySeconds("m"); got != 10 {
		t.Errorf("busy = %v, want 10", got)
	}
	// Clipping: only [5, 10] of the merged run falls in the window.
	if got := r.Utilization("m", 5, 15); got != 0.5 {
		t.Errorf("clipped utilization = %v, want 0.5", got)
	}
}

// TestSpanMarksOnly: a recorder holding only instantaneous marks still
// reports a span covering them.
func TestSpanMarksOnly(t *testing.T) {
	r := New()
	r.AddMark("rck01", 2.5, "kill")
	r.AddMark("rck02", 7.25, "stall")
	lo, hi := r.Span()
	if lo != 2.5 || hi != 7.25 {
		t.Errorf("marks-only span = (%v, %v), want (2.5, 7.25)", lo, hi)
	}
}

// TestSingleMarkGantt: one instantaneous mark gives a zero-width span;
// the Gantt chart must degrade gracefully instead of dividing by zero.
func TestSingleMarkGantt(t *testing.T) {
	r := New()
	r.AddMark("rck01", 3, "kill")
	if got := r.Gantt(40); got != "(empty trace)\n" {
		t.Errorf("single-mark gantt = %q", got)
	}
	if got := r.Utilization("rck01", 3, 3); got != 0 {
		t.Errorf("zero-window utilization = %v", got)
	}
}

// TestNameColumnWidth: track names longer than the historical 10-char
// column widen the column for every row, keeping output aligned.
func TestNameColumnWidth(t *testing.T) {
	r := New()
	r.Add("rck00", 0, 1, "compute")
	r.Add("a-very-long-track-name", 0, 2, "compute")
	for _, out := range []string{r.Gantt(20), r.UtilizationTable(20)} {
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		var rows []string
		for _, l := range lines {
			if strings.HasPrefix(l, "rck00") || strings.HasPrefix(l, "a-very-long") {
				rows = append(rows, l)
			}
		}
		if len(rows) != 2 {
			t.Fatalf("expected 2 track rows, got %d in:\n%s", len(rows), out)
		}
		if len(rows[0]) != len(rows[1]) {
			t.Errorf("rows not aligned:\n%q\n%q", rows[0], rows[1])
		}
		if !strings.HasPrefix(rows[1], "a-very-long-track-name ") {
			t.Errorf("long name truncated: %q", rows[1])
		}
	}
}
