// Chrome trace-event export: the same recorder that feeds the ASCII
// Gantt chart can be written as Chrome's trace-event JSON and loaded
// into Perfetto (ui.perfetto.dev) or chrome://tracing for interactive
// zooming over a 48-core run — one thread track per recorded core, plus
// counter tracks for time series like the master's mailbox depth.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// CounterPoint is one sample of a counter track at simulated time T
// (seconds). It mirrors metrics.Point without importing that package,
// keeping trace dependency-free.
type CounterPoint struct {
	T float64
	V float64
}

// chromeEvent is one entry of the trace-event JSON array. Field set per
// the Trace Event Format spec: ph "X" = complete slice (with dur),
// "i" = instant, "C" = counter, "M" = metadata. Timestamps are in
// microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace accumulates trace events and writes them as one JSON
// object. Events are emitted in the order added; encoding/json sorts
// map keys and formats floats deterministically, so identical inputs
// produce byte-identical files.
type ChromeTrace struct {
	events []chromeEvent
	// tids maps track names to stable thread ids, assigned in the order
	// tracks are first added.
	tids map[string]int
}

// chromePid is the single synthetic process all tracks live under (the
// simulated chip).
const chromePid = 1

// NewChromeTrace returns an empty trace.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{tids: map[string]int{}}
}

const usPerSecond = 1e6

// tid returns (assigning on first use) the thread id for a track, and
// emits the thread_name metadata event the first time.
func (c *ChromeTrace) tid(track string) int {
	id, ok := c.tids[track]
	if !ok {
		id = len(c.tids) + 1
		c.tids[track] = id
		c.events = append(c.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: id,
			Args: map[string]any{"name": track},
		})
	}
	return id
}

// AddRecorder converts every track of the recorder: intervals become
// complete ("X") slices and marks become instant ("i") events, each on
// a thread named after its track, in the recorder's first-seen track
// order.
func (c *ChromeTrace) AddRecorder(r *Recorder) {
	for _, track := range r.Tracks() {
		id := c.tid(track)
		for _, iv := range r.Intervals(track) {
			dur := (iv.End - iv.Start) * usPerSecond
			c.events = append(c.events, chromeEvent{
				Name: iv.Label, Ph: "X", Ts: iv.Start * usPerSecond, Dur: &dur,
				Pid: chromePid, Tid: id,
			})
		}
		for _, m := range r.Marks(track) {
			c.events = append(c.events, chromeEvent{
				Name: m.Label, Ph: "i", Ts: m.T * usPerSecond,
				Pid: chromePid, Tid: id, S: "t",
			})
		}
	}
}

// AddCounter adds a counter track (rendered by Perfetto as a stepped
// area chart) from a time series.
func (c *ChromeTrace) AddCounter(name string, points []CounterPoint) {
	for _, p := range points {
		c.events = append(c.events, chromeEvent{
			Name: name, Ph: "C", Ts: p.T * usPerSecond, Pid: chromePid,
			Args: map[string]any{"value": p.V},
		})
	}
}

// Events returns the number of accumulated events.
func (c *ChromeTrace) Events() int { return len(c.events) }

// Write writes the trace as a JSON object with a traceEvents array,
// terminated by a newline.
func (c *ChromeTrace) Write(w io.Writer) error {
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("trace: marshal chrome trace: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
