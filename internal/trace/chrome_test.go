package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace unmarshals a written trace back into generic events.
func decodeTrace(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return doc.TraceEvents
}

func TestChromeTraceFromRecorder(t *testing.T) {
	r := New()
	r.Add("rck01", 0, 0.5, "compute")
	r.Add("rck01", 1, 1.25, "compute")
	r.Add("rck00", 0.5, 0.6, "collect")
	r.AddMark("rck01", 0.75, "kill")

	ct := NewChromeTrace()
	ct.AddRecorder(r)
	ct.AddCounter("mailbox", []CounterPoint{{T: 0, V: 1}, {T: 0.5, V: 2}})

	var b bytes.Buffer
	if err := ct.Write(&b); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, b.Bytes())

	count := map[string]int{}
	names := map[string]bool{}
	for _, ev := range events {
		count[ev["ph"].(string)]++
		if ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = true
		}
	}
	if count["M"] != 2 || !names["rck00"] || !names["rck01"] {
		t.Errorf("thread_name metadata = %d (%v), want tracks rck00+rck01", count["M"], names)
	}
	if count["X"] != 3 {
		t.Errorf("complete slices = %d, want 3", count["X"])
	}
	if count["i"] != 1 {
		t.Errorf("instant events = %d, want 1", count["i"])
	}
	if count["C"] != 2 {
		t.Errorf("counter samples = %d, want 2", count["C"])
	}

	// Timestamps are microseconds: the 0.5 s interval is 500000 us long.
	for _, ev := range events {
		if ev["ph"] == "X" && ev["ts"].(float64) == 0 {
			if dur := ev["dur"].(float64); dur != 500000 {
				t.Errorf("dur = %v us, want 500000", dur)
			}
		}
	}
}

// TestChromeTraceDeterminism: the same inputs serialise byte-identically.
func TestChromeTraceDeterminism(t *testing.T) {
	build := func() []byte {
		r := New()
		r.Add("rck01", 0, 1, "compute")
		r.AddMark("rck01", 0.5, "kill")
		ct := NewChromeTrace()
		ct.AddRecorder(r)
		ct.AddCounter("depth", []CounterPoint{{T: 0.25, V: 3}})
		var b bytes.Buffer
		if err := ct.Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical traces serialised differently")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := NewChromeTrace().Write(&b); err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, b.Bytes()); len(events) != 0 {
		t.Errorf("empty trace has %d events", len(events))
	}
	if !bytes.Contains(b.Bytes(), []byte(`"traceEvents":[]`)) {
		t.Errorf("empty trace not an empty array: %s", b.String())
	}
}
