package trace

import (
	"strings"
	"testing"
)

func TestAddAndSpan(t *testing.T) {
	r := New()
	r.Add("c1", 1, 3, "a")
	r.Add("c2", 2, 5, "b")
	r.Add("c1", 4, 4, "ignored") // zero length
	lo, hi := r.Span()
	if lo != 1 || hi != 5 {
		t.Errorf("span = [%v, %v]", lo, hi)
	}
	if len(r.Intervals("c1")) != 1 {
		t.Errorf("c1 intervals = %v", r.Intervals("c1"))
	}
	if got := r.Tracks(); len(got) != 2 || got[0] != "c1" {
		t.Errorf("tracks = %v", got)
	}
}

func TestBusySecondsMergesOverlaps(t *testing.T) {
	r := New()
	r.Add("c", 0, 2, "")
	r.Add("c", 1, 3, "") // overlaps
	r.Add("c", 5, 6, "")
	if got := r.BusySeconds("c"); got != 4 {
		t.Errorf("busy = %v, want 4", got)
	}
	if r.BusySeconds("missing") != 0 {
		t.Error("missing track busy != 0")
	}
}

func TestUtilization(t *testing.T) {
	r := New()
	r.Add("c", 0, 5, "")
	if u := r.Utilization("c", 0, 10); u != 0.5 {
		t.Errorf("utilization = %v", u)
	}
	// Clipping to the window.
	if u := r.Utilization("c", 4, 6); u != 0.5 {
		t.Errorf("clipped utilization = %v", u)
	}
	if u := r.Utilization("c", 10, 5); u != 0 {
		t.Errorf("inverted window utilization = %v", u)
	}
}

func TestUtilizationTable(t *testing.T) {
	r := New()
	r.Add("rck01", 0, 10, "compute")
	r.Add("rck02", 0, 5, "compute")
	out := r.UtilizationTable(20)
	if !strings.Contains(out, "rck01") || !strings.Contains(out, "100.0%") {
		t.Errorf("table:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("table missing 50%%:\n%s", out)
	}
}

func TestGantt(t *testing.T) {
	r := New()
	r.Add("a", 0, 5, "")
	r.Add("b", 5, 10, "")
	out := r.Gantt(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt:\n%s", out)
	}
	// Track a busy in the first half, b in the second.
	if !strings.Contains(lines[0], "#####.....") {
		t.Errorf("row a: %q", lines[0])
	}
	if !strings.Contains(lines[1], ".....#####") {
		t.Errorf("row b: %q", lines[1])
	}
	if New().Gantt(10) != "(empty trace)\n" {
		t.Error("empty gantt")
	}
}

func TestMarks(t *testing.T) {
	r := New()
	r.AddMark("c", 3, "kill")
	r.AddMark("c", 7, "drop")
	ms := r.Marks("c")
	if len(ms) != 2 || ms[0].Label != "kill" || ms[1].T != 7 {
		t.Errorf("marks = %v", ms)
	}
	if len(r.Marks("missing")) != 0 {
		t.Error("missing track has marks")
	}
	// A mark-only recorder still has a span and creates the track.
	lo, hi := r.Span()
	if lo != 3 || hi != 7 {
		t.Errorf("span = [%v, %v], want [3, 7]", lo, hi)
	}
	if tracks := r.Tracks(); len(tracks) != 1 || tracks[0] != "c" {
		t.Errorf("tracks = %v", tracks)
	}
}

func TestGanttRendersMarks(t *testing.T) {
	r := New()
	r.Add("a", 0, 10, "compute")
	r.AddMark("a", 5, "kill")
	r.AddMark("a", 10, "late") // clamps to the last cell
	out := r.Gantt(10)
	line := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(line, "#####X###X") {
		t.Errorf("gantt row with marks: %q", line)
	}
}
