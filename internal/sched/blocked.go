package sched

import "sort"

// DefaultTile is the blocked-ordering tile size used when a run enables
// the structure cache or batching without choosing a tile explicitly.
// Within an off-diagonal tile block every structure is reused by `tile`
// consecutive pairs, so the block's wire traffic shrinks by roughly the
// tile size once the slaves cache structures; 6 comfortably beats the
// 5x input-reduction target while keeping the block count high enough
// to spread across the SCC's 47 slaves on the paper's datasets.
const DefaultTile = 6

// blockKey identifies the tile block a pair falls into: the pair grid
// is cut into tile x tile cells, so pairs of a block draw from at most
// 2*tile distinct structures.
type blockKey struct{ bi, bj int }

// blockOf returns p's block for the given tile size.
func blockOf(p Pair, tile int) blockKey { return blockKey{p.I / tile, p.J / tile} }

// Blocked regroups pairs into cache-friendly tile blocks: the i x j
// pair grid is cut into tile x tile blocks, blocks are emitted in
// row-major order, and within a block the incoming order (FIFO, LPT,
// ...) is preserved. Consecutive jobs then reference at most 2*tile
// distinct structures, which is what makes a bounded slave-side
// structure cache effective. tile < 2 returns the input order
// unchanged. The reordering is a permutation: every pair appears
// exactly once, so results are unaffected.
func Blocked(pairs []Pair, tile int) []Pair {
	out := append([]Pair(nil), pairs...)
	if tile < 2 {
		return out
	}
	keys := make([]blockKey, len(out))
	for i, p := range out {
		keys[i] = blockOf(p, tile)
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.bi != kb.bi {
			return ka.bi < kb.bi
		}
		return ka.bj < kb.bj
	})
	sorted := make([]Pair, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// gatherBlocks groups a pair list into its tile blocks, in
// first-appearance order of the Blocked permutation; pairs keep their
// within-block order. tile < 2 degenerates to one block per pair in
// input order — the finest dealing granularity, used both as the
// explicit fine-grained mode and as the fallback when a tile is larger
// than the grid region a shard would get.
func gatherBlocks(pairs []Pair, tile int) [][]Pair {
	if tile < 2 {
		blocks := make([][]Pair, len(pairs))
		for i, p := range pairs {
			blocks[i] = []Pair{p}
		}
		return blocks
	}
	ordered := Blocked(pairs, tile)
	var blocks [][]Pair
	blockAt := map[blockKey]int{}
	for _, p := range ordered {
		k := blockOf(p, tile)
		b, ok := blockAt[k]
		if !ok {
			b = len(blocks)
			blockAt[k] = b
			blocks = append(blocks, nil)
		}
		blocks[b] = append(blocks[b], p)
	}
	return blocks
}

// blockWeights sums each block's cost (pair count when cost is nil).
func blockWeights(blocks [][]Pair, cost func(Pair) float64) []float64 {
	weights := make([]float64, len(blocks))
	for b, ps := range blocks {
		for _, p := range ps {
			if cost != nil {
				weights[b] += cost(p)
			} else {
				weights[b]++
			}
		}
	}
	return weights
}

// dealLPT deals blocks heaviest-first onto the least-loaded of n queues
// (classic LPT bin packing). Equal weights keep first-appearance order
// and load ties break on the lower queue index, so the assignment is
// deterministic. Within a queue, blocks land in assignment
// (heaviest-first) order and pairs keep their within-block order.
func dealLPT(blocks [][]Pair, weights []float64, n int) [][]Pair {
	queues := make([][]Pair, n)
	for q, idxs := range dealIdxLPT(weights, n) {
		for _, b := range idxs {
			queues[q] = append(queues[q], blocks[b]...)
		}
	}
	return queues
}

// dealIdxLPT is dealLPT on block indices: each queue lists the blocks
// it was dealt, in assignment (heaviest-total-first) order, for callers
// that want to reorder a queue's blocks before flattening.
func dealIdxLPT(weights []float64, n int) [][]int {
	queues := make([][]int, n)
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]float64, n)
	for _, b := range order {
		best := 0
		for q := 1; q < n; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		queues[best] = append(queues[best], b)
		load[best] += weights[b]
	}
	return queues
}

// blockMaxCosts returns each block's single heaviest pair (1 when cost
// is nil — every pair counts equally).
func blockMaxCosts(blocks [][]Pair, cost func(Pair) float64) []float64 {
	maxes := make([]float64, len(blocks))
	for b, ps := range blocks {
		for _, p := range ps {
			c := 1.0
			if cost != nil {
				c = cost(p)
			}
			if c > maxes[b] {
				maxes[b] = c
			}
		}
	}
	return maxes
}

// AffinityAssign deals the tile blocks of a pair list onto `slaves`
// queues so each block's structures ship to exactly one slave: blocks
// are taken heaviest-first (by summed cost, or pair count when cost is
// nil) and each goes to the least-loaded queue (see dealLPT). With
// fewer blocks than slaves the surplus queues stay empty — affinity
// trades tail balance for wire traffic, which is the right trade in
// the master-bound polling regime the cache targets. tile < 2 deals
// individual pairs instead of blocks (no cache affinity, but the load
// still spreads; it used to pile every job onto queue 0).
func AffinityAssign(pairs []Pair, slaves, tile int, cost func(Pair) float64) [][]Pair {
	if slaves < 1 {
		return nil
	}
	if len(pairs) == 0 {
		return make([][]Pair, slaves)
	}
	blocks := gatherBlocks(pairs, tile)
	return dealLPT(blocks, blockWeights(blocks, cost), slaves)
}
