package sched

import "sort"

// DefaultTile is the blocked-ordering tile size used when a run enables
// the structure cache or batching without choosing a tile explicitly.
// Within an off-diagonal tile block every structure is reused by `tile`
// consecutive pairs, so the block's wire traffic shrinks by roughly the
// tile size once the slaves cache structures; 6 comfortably beats the
// 5x input-reduction target while keeping the block count high enough
// to spread across the SCC's 47 slaves on the paper's datasets.
const DefaultTile = 6

// blockKey identifies the tile block a pair falls into: the pair grid
// is cut into tile x tile cells, so pairs of a block draw from at most
// 2*tile distinct structures.
type blockKey struct{ bi, bj int }

// blockOf returns p's block for the given tile size.
func blockOf(p Pair, tile int) blockKey { return blockKey{p.I / tile, p.J / tile} }

// Blocked regroups pairs into cache-friendly tile blocks: the i x j
// pair grid is cut into tile x tile blocks, blocks are emitted in
// row-major order, and within a block the incoming order (FIFO, LPT,
// ...) is preserved. Consecutive jobs then reference at most 2*tile
// distinct structures, which is what makes a bounded slave-side
// structure cache effective. tile < 2 returns the input order
// unchanged. The reordering is a permutation: every pair appears
// exactly once, so results are unaffected.
func Blocked(pairs []Pair, tile int) []Pair {
	out := append([]Pair(nil), pairs...)
	if tile < 2 {
		return out
	}
	keys := make([]blockKey, len(out))
	for i, p := range out {
		keys[i] = blockOf(p, tile)
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.bi != kb.bi {
			return ka.bi < kb.bi
		}
		return ka.bj < kb.bj
	})
	sorted := make([]Pair, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// AffinityAssign deals the tile blocks of a pair list onto `slaves`
// queues so each block's structures ship to exactly one slave: blocks
// are taken heaviest-first (by summed cost, or pair count when cost is
// nil) and each goes to the least-loaded queue (classic LPT bin
// packing; ties break on the lower queue index, so the assignment is
// deterministic). Within a queue, blocks land in assignment
// (heaviest-first) order and pairs keep their within-block order. With fewer blocks
// than slaves the surplus queues stay empty — affinity trades tail
// balance for wire traffic, which is the right trade in the
// master-bound polling regime the cache targets. tile < 2 treats the
// whole list as one block.
func AffinityAssign(pairs []Pair, slaves, tile int, cost func(Pair) float64) [][]Pair {
	if slaves < 1 {
		return nil
	}
	queues := make([][]Pair, slaves)
	if len(pairs) == 0 {
		return queues
	}
	if tile < 2 {
		queues[0] = append([]Pair(nil), pairs...)
		return queues
	}
	// Gather blocks in first-appearance order of a Blocked permutation.
	ordered := Blocked(pairs, tile)
	var blocks [][]Pair
	blockAt := map[blockKey]int{}
	for _, p := range ordered {
		k := blockOf(p, tile)
		b, ok := blockAt[k]
		if !ok {
			b = len(blocks)
			blockAt[k] = b
			blocks = append(blocks, nil)
		}
		blocks[b] = append(blocks[b], p)
	}
	weights := make([]float64, len(blocks))
	for b, ps := range blocks {
		for _, p := range ps {
			if cost != nil {
				weights[b] += cost(p)
			} else {
				weights[b]++
			}
		}
	}
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	load := make([]float64, slaves)
	for _, b := range order {
		best := 0
		for q := 1; q < slaves; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		queues[best] = append(queues[best], blocks[b]...)
		load[best] += weights[b]
	}
	return queues
}
