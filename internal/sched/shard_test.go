package sched

import (
	"errors"
	"reflect"
	"testing"
)

// shardMultiset collects a shard list back into a multiset keyed by pair.
func shardMultiset(shards [][]Pair) map[Pair]int {
	out := map[Pair]int{}
	for _, shard := range shards {
		for _, p := range shard {
			out[p]++
		}
	}
	return out
}

// TestShardPairsTable drives the chip-dimension edge cases the multi-chip
// scheduler exposed: block counts not divisible by the shard count, a
// tile larger than a shard's slice of the grid, degenerate tiles, and
// fewer pairs than shards.
func TestShardPairsTable(t *testing.T) {
	cases := []struct {
		name      string
		n         int // AllVsAll(n)
		shards    int
		tile      int
		wantEmpty int // shards allowed to stay empty
	}{
		{name: "blocks-divide-evenly", n: 24, shards: 4, tile: 6},
		{name: "blocks-not-divisible", n: 34, shards: 3, tile: 6},
		{name: "more-shards-than-blocks", n: 8, shards: 5, tile: 6},
		{name: "tile-larger-than-grid", n: 10, shards: 4, tile: 64},
		{name: "tile-one-fine-grained", n: 12, shards: 4, tile: 1},
		{name: "tile-zero", n: 12, shards: 3, tile: 0},
		{name: "two-shards-odd-blocks", n: 13, shards: 2, tile: 4},
		{name: "fewer-pairs-than-shards", n: 2, shards: 8, tile: 6, wantEmpty: 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := AllVsAll(tc.n)
			shards, err := ShardPairs(in, tc.shards, tc.tile, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != tc.shards {
				t.Fatalf("got %d shards, want %d", len(shards), tc.shards)
			}
			// Partition: every pair exactly once.
			got := shardMultiset(shards)
			if len(got) != len(in) {
				t.Fatalf("shards cover %d distinct pairs, want %d", len(got), len(in))
			}
			for _, p := range in {
				if got[p] != 1 {
					t.Fatalf("pair %v appears %d times, want exactly once", p, got[p])
				}
			}
			// No silent truncation: every shard gets work unless there are
			// genuinely fewer pairs than shards.
			empty := 0
			for _, s := range shards {
				if len(s) == 0 {
					empty++
				}
			}
			if empty != tc.wantEmpty {
				t.Fatalf("%d empty shards, want %d (lens: %v)", empty, tc.wantEmpty, shardLens(shards))
			}
		})
	}
}

func shardLens(shards [][]Pair) []int {
	out := make([]int, len(shards))
	for i, s := range shards {
		out[i] = len(s)
	}
	return out
}

// TestShardPairsSingleShardIsIdentity pins the bit-identity contract:
// one shard returns the input order exactly unchanged, for any tile —
// an LPT re-deal here would silently reorder a 1-chip run away from the
// flat goldens.
func TestShardPairsSingleShardIsIdentity(t *testing.T) {
	in, err := Apply(AllVsAll(13), LPT, func(p Pair) float64 { return float64(p.I*31 + p.J) }, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range []int{0, 1, 4, 6, 100} {
		out, err := ShardPairs(in, 1, tile, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || !reflect.DeepEqual(out[0], in) {
			t.Fatalf("tile=%d: single shard must be the identity permutation", tile)
		}
	}
}

// TestShardPairsKeepsBlocksWhole checks the affinity property that makes
// sharding wire-efficient: with a workable tile, all pairs of one tile
// block land on the same shard.
func TestShardPairsKeepsBlocksWhole(t *testing.T) {
	const tile = 6
	shards, err := ShardPairs(AllVsAll(34), 4, tile, nil)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[blockKey]int{}
	for s, ps := range shards {
		for _, p := range ps {
			k := blockOf(p, tile)
			if prev, ok := owner[k]; ok && prev != s {
				t.Fatalf("block %v split across shards %d and %d", k, prev, s)
			}
			owner[k] = s
		}
	}
}

// TestShardPairsBalances checks the LPT deal levels cost, not count.
func TestShardPairsBalances(t *testing.T) {
	lengths := make([]int, 30)
	for i := range lengths {
		lengths[i] = 50 + 17*i
	}
	cost := LengthProductCost(lengths)
	shards, err := ShardPairs(AllVsAll(30), 3, 6, cost)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(shards))
	total := 0.0
	for s, ps := range shards {
		for _, p := range ps {
			loads[s] += cost(p)
			total += cost(p)
		}
	}
	mean := total / float64(len(shards))
	for s, l := range loads {
		if l < 0.7*mean || l > 1.3*mean {
			t.Fatalf("shard %d load %.0f more than 30%% off mean %.0f (loads %v)", s, l, mean, loads)
		}
	}
}

// TestShardPairsNoStarvedShards is the regression for the coarse-tile
// starvation bug: CK34 at 8 chips with tile 6 yielded only 21 blocks,
// leaving the deal so lumpy that chip efficiency sat at 0.36. The tile
// must auto-shrink so that every shard gets work whenever there are at
// least as many pairs as shards, at any tile.
func TestShardPairsNoStarvedShards(t *testing.T) {
	for _, tc := range []struct {
		n, shards, tile int
	}{
		{34, 8, 6},  // the CK34@8 configuration that exposed the bug
		{34, 16, 8}, // even coarser relative to the shard count
		{10, 8, 64}, // tile dwarfs the whole grid
		{5, 9, 6},   // pairs (10) barely exceed shards
	} {
		in := AllVsAll(tc.n)
		if len(in) < tc.shards {
			t.Fatalf("bad case: %d pairs < %d shards", len(in), tc.shards)
		}
		shards, err := ShardPairs(in, tc.shards, tc.tile, nil)
		if err != nil {
			t.Fatal(err)
		}
		for s, ps := range shards {
			if len(ps) == 0 {
				t.Errorf("n=%d shards=%d tile=%d: shard %d is empty (lens %v)",
					tc.n, tc.shards, tc.tile, s, shardLens(shards))
				break
			}
		}
	}
}

// TestShardPairsShrinksCoarseTile pins that the auto-shrink actually
// improves balance on the CK34@8 shape, not just non-emptiness: with
// the length-product cost the worst shard must stay within 30% of the
// mean, which the un-shrunk 21-block deal cannot achieve.
func TestShardPairsShrinksCoarseTile(t *testing.T) {
	lengths := make([]int, 34)
	for i := range lengths {
		lengths[i] = 60 + 13*i
	}
	cost := LengthProductCost(lengths)
	shards, err := ShardPairs(AllVsAll(34), 8, 6, cost)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, len(shards))
	total := 0.0
	for s, ps := range shards {
		for _, p := range ps {
			loads[s] += cost(p)
			total += cost(p)
		}
	}
	mean := total / float64(len(shards))
	for s, l := range loads {
		if l < 0.7*mean || l > 1.3*mean {
			t.Errorf("shard %d load %.0f more than 30%% off mean %.0f (loads %v)", s, l, mean, loads)
		}
	}
}

func TestShardPairsDeterministic(t *testing.T) {
	in := AllVsAll(21)
	a, err := ShardPairs(in, 5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShardPairs(in, 5, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ShardPairs is not deterministic")
	}
}

func TestShardPairsErrors(t *testing.T) {
	for _, shards := range []int{0, -1} {
		if _, err := ShardPairs(AllVsAll(5), shards, 6, nil); !errors.Is(err, ErrShardCount) {
			t.Errorf("shards=%d: got %v, want ErrShardCount", shards, err)
		}
	}
	out, err := ShardPairs(nil, 3, 6, nil)
	if err != nil || len(out) != 3 {
		t.Fatalf("empty input: got %v, %v", out, err)
	}
}

// TestShardPairsLongestJobFirst pins the makespan-tail rule: within a
// shard, the block holding the single longest pair must be dealt first,
// even when another block is heavier in total. (On RS119 at 8 chips a
// handful of ~87 s pairs queued behind ~60 medium pairs turned one chip
// into a 181 s straggler — 1.8x its fair share.)
func TestShardPairsLongestJobFirst(t *testing.T) {
	// 13 structures, tile 4. The giant pair (11,12) lives in the 4-pair
	// edge block (2,3) with total weight 3*36000+90000 = 198000; the
	// full 16-pair off-diagonal blocks weigh 16*14400 = 230400 — more
	// in total, but their longest pair is 6x shorter. Total-weight
	// ordering deals a fat medium block before the giant.
	lengths := make([]int, 13)
	for i := range lengths {
		lengths[i] = 120 // medium everywhere ...
	}
	lengths[11], lengths[12] = 300, 300 // ... one giant pair (11,12)
	cost := LengthProductCost(lengths)
	shards, err := ShardPairs(AllVsAll(13), 2, 4, cost)
	if err != nil {
		t.Fatal(err)
	}
	giant := Pair{I: 11, J: 12}
	for s, shard := range shards {
		for i, p := range shard {
			if p != giant {
				continue
			}
			// The giant pair's block must lead its shard: every pair
			// before it shares its block.
			for j := 0; j < i; j++ {
				q := shard[j]
				if q.I/4 != giant.I/4 || q.J/4 != giant.J/4 {
					t.Fatalf("shard %d: pair %v (block %d,%d) dealt before the longest pair %v",
						s, q, q.I/4, q.J/4, giant)
				}
			}
			return
		}
	}
	t.Fatal("longest pair missing from every shard")
}
