package sched

import (
	"errors"
	"fmt"
	"sort"
)

// ErrShardCount reports a non-positive shard (chip) count.
var ErrShardCount = errors.New("sched: shard count must be >= 1")

// ShardPairs cuts an ordered pair list into `shards` chip-level shards
// along the 2D tile blocks of the pair grid (the PASTIS-style sharding
// of the all-vs-all matrix): blocks of tile x tile pairs are dealt
// heaviest-first onto the least-loaded shard, so each block's
// structures cross the inter-chip fabric exactly once and the per-chip
// work is balanced. Within a shard, blocks are ordered by their
// heaviest single pair (longest jobs start first, shrinking the
// makespan tail) and pairs keep their within-block order, so a shard
// is itself a valid blocked ordering for the on-chip cache model.
//
// Edge cases are explicit rather than silently truncating:
//   - shards < 1 is an error (ErrShardCount).
//   - shards == 1 returns the input order exactly unchanged — the
//     single-chip bit-identity guarantee multi-chip runs rely on.
//   - A tile so coarse that it starves the deal (fewer than
//     minShardBlocks blocks per shard) is auto-shrunk: the tile is
//     halved until each shard can receive several blocks, degrading to
//     per-pair dealing in the limit, so no chip idles or is stuck with
//     a token shard just because the tile was coarse. tile < 2 deals
//     individual pairs directly.
//   - Block counts not divisible by shards simply balance by weight;
//     with fewer pairs than shards the surplus shards come back empty
//     (callers decide whether an empty shard is acceptable).
//
// cost estimates one pair's duration (nil = count pairs). The result
// always has exactly `shards` entries and is a partition of the input:
// every pair appears in exactly one shard.
func ShardPairs(pairs []Pair, shards, tile int, cost func(Pair) float64) ([][]Pair, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrShardCount, shards)
	}
	if shards == 1 {
		return [][]Pair{append([]Pair(nil), pairs...)}, nil
	}
	if len(pairs) == 0 {
		return make([][]Pair, shards), nil
	}
	blocks := gatherBlocks(pairs, tile)
	for t := tile; len(blocks) < shards*minShardBlocks && t >= 2; {
		t /= 2
		blocks = gatherBlocks(pairs, t)
	}
	queues := dealIdxLPT(blockWeights(blocks, cost), shards)
	// A chip master deals its shard in queue order, so a long pair that
	// sits deep in the queue starts late and becomes the chip's
	// makespan tail — LPT's heaviest-TOTAL-first order does not prevent
	// this, because a block of many medium pairs outweighs the block
	// holding the single longest pair. Reorder each shard's blocks by
	// their heaviest single pair so the longest jobs start first
	// (blocks stay intact: within-block order, and therefore the
	// cache-friendly structure reuse, is preserved). With nil cost all
	// maxima tie and the stable sort keeps assignment order.
	maxes := blockMaxCosts(blocks, cost)
	out := make([][]Pair, shards)
	for q, idxs := range queues {
		sort.SliceStable(idxs, func(a, b int) bool { return maxes[idxs[a]] > maxes[idxs[b]] })
		for _, b := range idxs {
			out[q] = append(out[q], blocks[b]...)
		}
	}
	return out, nil
}

// minShardBlocks is the LPT granularity floor: ShardPairs shrinks the
// tile until every shard can be dealt at least this many blocks (or the
// tile bottoms out at per-pair dealing). One block per shard balances
// only when blocks weigh the same; a few blocks each lets LPT absorb
// the weight skew of diagonal tiles.
const minShardBlocks = 4
