package sched

import (
	"errors"
	"fmt"
)

// ErrShardCount reports a non-positive shard (chip) count.
var ErrShardCount = errors.New("sched: shard count must be >= 1")

// ShardPairs cuts an ordered pair list into `shards` chip-level shards
// along the 2D tile blocks of the pair grid (the PASTIS-style sharding
// of the all-vs-all matrix): blocks of tile x tile pairs are dealt
// heaviest-first onto the least-loaded shard, so each block's
// structures cross the inter-chip fabric exactly once and the per-chip
// work is balanced. Within a shard, blocks keep assignment order and
// pairs keep their within-block order, so a shard is itself a valid
// blocked ordering for the on-chip cache model.
//
// Edge cases are explicit rather than silently truncating:
//   - shards < 1 is an error (ErrShardCount).
//   - shards == 1 returns the input order exactly unchanged — the
//     single-chip bit-identity guarantee multi-chip runs rely on.
//   - A tile so large that fewer blocks than shards exist (tile wider
//     than a shard's slice of the grid) falls back to dealing
//     individual pairs, so no chip idles just because the tile was
//     coarse. tile < 2 deals individual pairs directly.
//   - Block counts not divisible by shards simply balance by weight;
//     with fewer pairs than shards the surplus shards come back empty
//     (callers decide whether an empty shard is acceptable).
//
// cost estimates one pair's duration (nil = count pairs). The result
// always has exactly `shards` entries and is a partition of the input:
// every pair appears in exactly one shard.
func ShardPairs(pairs []Pair, shards, tile int, cost func(Pair) float64) ([][]Pair, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrShardCount, shards)
	}
	if shards == 1 {
		return [][]Pair{append([]Pair(nil), pairs...)}, nil
	}
	if len(pairs) == 0 {
		return make([][]Pair, shards), nil
	}
	blocks := gatherBlocks(pairs, tile)
	if len(blocks) < shards && tile >= 2 {
		blocks = gatherBlocks(pairs, 1)
	}
	return dealLPT(blocks, blockWeights(blocks, cost), shards), nil
}
