package sched

import (
	"reflect"
	"testing"
)

// pairSet returns the multiset of pairs as a map for permutation checks.
func pairSet(t *testing.T, pairs []Pair) map[Pair]int {
	t.Helper()
	m := map[Pair]int{}
	for _, p := range pairs {
		m[p]++
	}
	return m
}

func TestBlockedIsAPermutation(t *testing.T) {
	in := AllVsAll(34)
	out := Blocked(in, 6)
	if len(out) != len(in) {
		t.Fatalf("Blocked returned %d pairs, want %d", len(out), len(in))
	}
	if !reflect.DeepEqual(pairSet(t, in), pairSet(t, out)) {
		t.Fatal("Blocked is not a permutation of its input")
	}
	// Must be a copy, not an alias.
	out[0] = Pair{99, 99}
	if in[0] == out[0] {
		t.Error("Blocked returned an alias")
	}
}

func TestBlockedGroupsTiles(t *testing.T) {
	const tile = 4
	out := Blocked(AllVsAll(13), tile)
	// Every block's pairs must be contiguous: once we leave a block we
	// must never see it again.
	seen := map[blockKey]bool{}
	last := blockKey{-1, -1}
	for _, p := range out {
		k := blockOf(p, tile)
		if k != last {
			if seen[k] {
				t.Fatalf("block %v appears twice in the emission order", k)
			}
			seen[k] = true
			last = k
		}
	}
	// Consecutive pairs within a block reference at most 2*tile
	// distinct structures — the cache-locality property.
	byBlock := map[blockKey]map[int]bool{}
	for _, p := range out {
		k := blockOf(p, tile)
		if byBlock[k] == nil {
			byBlock[k] = map[int]bool{}
		}
		byBlock[k][p.I] = true
		byBlock[k][p.J] = true
	}
	for k, structs := range byBlock {
		if len(structs) > 2*tile {
			t.Errorf("block %v touches %d structures, want <= %d", k, len(structs), 2*tile)
		}
	}
}

func TestBlockedSmallTilePassthrough(t *testing.T) {
	in := AllVsAll(8)
	for _, tile := range []int{0, 1, -3} {
		out := Blocked(in, tile)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("Blocked(tile=%d) reordered the input", tile)
		}
	}
}

func TestBlockedDeterministic(t *testing.T) {
	in := AllVsAll(21)
	a := Blocked(in, 5)
	b := Blocked(in, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Blocked is not deterministic")
	}
}

func TestAffinityAssignCoversEveryPairOnce(t *testing.T) {
	in := AllVsAll(34)
	queues := AffinityAssign(in, 47, 6, nil)
	if len(queues) != 47 {
		t.Fatalf("got %d queues, want 47", len(queues))
	}
	var flat []Pair
	for _, q := range queues {
		flat = append(flat, q...)
	}
	if len(flat) != len(in) {
		t.Fatalf("queues hold %d pairs, want %d", len(flat), len(in))
	}
	if !reflect.DeepEqual(pairSet(t, in), pairSet(t, flat)) {
		t.Fatal("affinity queues are not a partition of the pair list")
	}
}

func TestAffinityAssignKeepsBlocksWhole(t *testing.T) {
	const tile = 6
	queues := AffinityAssign(AllVsAll(34), 47, tile, nil)
	owner := map[blockKey]int{}
	for q, ps := range queues {
		for _, p := range ps {
			k := blockOf(p, tile)
			if prev, ok := owner[k]; ok && prev != q {
				t.Fatalf("block %v split across queues %d and %d", k, prev, q)
			}
			owner[k] = q
		}
	}
}

func TestAffinityAssignBalancesByCost(t *testing.T) {
	lengths := make([]int, 24)
	for i := range lengths {
		lengths[i] = 50 + 10*i
	}
	cost := LengthProductCost(lengths)
	queues := AffinityAssign(AllVsAll(24), 4, 6, cost)
	loads := make([]float64, len(queues))
	total := 0.0
	for q, ps := range queues {
		for _, p := range ps {
			loads[q] += cost(p)
			total += cost(p)
		}
	}
	// Heaviest-first onto least-loaded: no queue should exceed twice
	// the ideal share on this well-divisible workload.
	ideal := total / float64(len(queues))
	for q, l := range loads {
		if l > 2*ideal {
			t.Errorf("queue %d load %.0f exceeds 2x ideal %.0f", q, l, ideal)
		}
	}
}

func TestAffinityAssignDeterministic(t *testing.T) {
	in := AllVsAll(19)
	a := AffinityAssign(in, 7, 4, nil)
	b := AffinityAssign(in, 7, 4, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("AffinityAssign is not deterministic")
	}
}

func TestAffinityAssignDegenerate(t *testing.T) {
	if q := AffinityAssign(AllVsAll(5), 0, 2, nil); q != nil {
		t.Errorf("0 slaves: got %v", q)
	}
	q := AffinityAssign(nil, 3, 2, nil)
	if len(q) != 3 || len(q[0])+len(q[1])+len(q[2]) != 0 {
		t.Errorf("empty pairs: got %v", q)
	}
	// tile < 2 deals individual pairs: the load spreads instead of
	// piling onto queue 0 (the old silent-truncation behaviour).
	q = AffinityAssign(AllVsAll(6), 3, 1, nil)
	if len(q[0]) != 5 || len(q[1]) != 5 || len(q[2]) != 5 {
		t.Errorf("tile<2: got lens %d,%d,%d, want an even 5,5,5 deal", len(q[0]), len(q[1]), len(q[2]))
	}
	total := 0
	for _, ps := range q {
		total += len(ps)
	}
	if total != 15 {
		t.Errorf("tile<2: %d pairs dealt, want all 15", total)
	}
}
