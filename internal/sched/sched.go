// Package sched generates and orders pairwise-comparison job lists for
// the one-vs-all and all-vs-all PSC tasks. The paper uses plain FIFO
// generation order and names load balancing as future work; LPT (longest
// processing time first) and random shuffling are provided for the
// scheduling ablation.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrNilCost reports an ordering policy that needs a cost estimator
// (LPT, SPT) invoked without one.
var ErrNilCost = errors.New("sched: ordering needs a cost estimator")

// Pair indexes two structures in a dataset (I < J for all-vs-all).
type Pair struct{ I, J int }

// AllVsAll returns all n*(n-1)/2 unordered distinct pairs in row-major
// (FIFO) order — the order the paper's master generates jobs in.
func AllVsAll(n int) []Pair {
	if n < 2 {
		return nil
	}
	pairs := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, Pair{i, j})
		}
	}
	return pairs
}

// OneVsAll returns the n-1 pairs comparing query q against every other
// structure.
func OneVsAll(q, n int) []Pair {
	var pairs []Pair
	for j := 0; j < n; j++ {
		if j != q {
			pairs = append(pairs, Pair{q, j})
		}
	}
	return pairs
}

// Order selects a job ordering policy.
type Order int

const (
	// FIFO keeps generation order (the paper's behaviour).
	FIFO Order = iota
	// LPT sorts jobs longest-first, the classic makespan heuristic the
	// paper suggests investigating.
	LPT
	// SPT sorts jobs shortest-first (anti-optimal tail; for contrast).
	SPT
	// Random shuffles jobs deterministically by seed.
	Random
)

// String names the order.
func (o Order) String() string {
	switch o {
	case FIFO:
		return "FIFO"
	case LPT:
		return "LPT"
	case SPT:
		return "SPT"
	case Random:
		return "Random"
	}
	return "unknown"
}

// Apply returns a new slice with pairs arranged according to the policy.
// cost estimates a job's duration (used by LPT/SPT; may be nil for FIFO
// and Random). seed drives Random. LPT/SPT evaluate cost exactly once
// per pair and sort on the precomputed keys; a missing estimator is
// reported as ErrNilCost.
func Apply(pairs []Pair, o Order, cost func(Pair) float64, seed int64) ([]Pair, error) {
	out := append([]Pair(nil), pairs...)
	switch o {
	case FIFO:
	case LPT, SPT:
		if cost == nil {
			return nil, fmt.Errorf("%w: %s over %d pairs", ErrNilCost, o, len(out))
		}
		keys := make([]float64, len(out))
		for i, p := range out {
			keys[i] = cost(p)
		}
		sortByKeys(out, keys, o == LPT)
	case Random:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out, nil
}

// sortByKeys stably reorders pairs by their precomputed keys,
// descending when desc (LPT) and ascending otherwise (SPT).
func sortByKeys(pairs []Pair, keys []float64, desc bool) {
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if desc {
			return keys[idx[a]] > keys[idx[b]]
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	sorted := make([]Pair, len(pairs))
	for i, j := range idx {
		sorted[i] = pairs[j]
	}
	copy(pairs, sorted)
}

// LengthProductCost returns a cost estimator proportional to L_i * L_j,
// the dominant term of TM-align's complexity, given the chain lengths.
func LengthProductCost(lengths []int) func(Pair) float64 {
	return func(p Pair) float64 {
		return float64(lengths[p.I]) * float64(lengths[p.J])
	}
}
