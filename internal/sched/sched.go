// Package sched generates and orders pairwise-comparison job lists for
// the one-vs-all and all-vs-all PSC tasks. The paper uses plain FIFO
// generation order and names load balancing as future work; LPT (longest
// processing time first) and random shuffling are provided for the
// scheduling ablation.
package sched

import (
	"math/rand"
	"sort"
)

// Pair indexes two structures in a dataset (I < J for all-vs-all).
type Pair struct{ I, J int }

// AllVsAll returns all n*(n-1)/2 unordered distinct pairs in row-major
// (FIFO) order — the order the paper's master generates jobs in.
func AllVsAll(n int) []Pair {
	if n < 2 {
		return nil
	}
	pairs := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, Pair{i, j})
		}
	}
	return pairs
}

// OneVsAll returns the n-1 pairs comparing query q against every other
// structure.
func OneVsAll(q, n int) []Pair {
	var pairs []Pair
	for j := 0; j < n; j++ {
		if j != q {
			pairs = append(pairs, Pair{q, j})
		}
	}
	return pairs
}

// Order selects a job ordering policy.
type Order int

const (
	// FIFO keeps generation order (the paper's behaviour).
	FIFO Order = iota
	// LPT sorts jobs longest-first, the classic makespan heuristic the
	// paper suggests investigating.
	LPT
	// SPT sorts jobs shortest-first (anti-optimal tail; for contrast).
	SPT
	// Random shuffles jobs deterministically by seed.
	Random
)

// String names the order.
func (o Order) String() string {
	switch o {
	case FIFO:
		return "FIFO"
	case LPT:
		return "LPT"
	case SPT:
		return "SPT"
	case Random:
		return "Random"
	}
	return "unknown"
}

// Apply returns a new slice with pairs arranged according to the policy.
// cost estimates a job's duration (used by LPT/SPT; may be nil for FIFO
// and Random). seed drives Random.
func Apply(pairs []Pair, o Order, cost func(Pair) float64, seed int64) []Pair {
	out := append([]Pair(nil), pairs...)
	switch o {
	case FIFO:
	case LPT:
		sort.SliceStable(out, func(a, b int) bool { return cost(out[a]) > cost(out[b]) })
	case SPT:
		sort.SliceStable(out, func(a, b int) bool { return cost(out[a]) < cost(out[b]) })
	case Random:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

// LengthProductCost returns a cost estimator proportional to L_i * L_j,
// the dominant term of TM-align's complexity, given the chain lengths.
func LengthProductCost(lengths []int) func(Pair) float64 {
	return func(p Pair) float64 {
		return float64(lengths[p.I]) * float64(lengths[p.J])
	}
}
