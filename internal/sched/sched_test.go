package sched

import (
	"errors"
	"sort"
	"testing"
)

// mustApply is the test shorthand for orderings that cannot fail.
func mustApply(t *testing.T, pairs []Pair, o Order, cost func(Pair) float64, seed int64) []Pair {
	t.Helper()
	out, err := Apply(pairs, o, cost, seed)
	if err != nil {
		t.Fatalf("Apply(%s): %v", o, err)
	}
	return out
}

func TestApplyNilCostTypedError(t *testing.T) {
	for _, o := range []Order{LPT, SPT} {
		if _, err := Apply(AllVsAll(4), o, nil, 0); !errors.Is(err, ErrNilCost) {
			t.Errorf("Apply(%s, nil cost) err = %v, want ErrNilCost", o, err)
		}
	}
	// FIFO and Random never consult cost.
	if _, err := Apply(AllVsAll(4), FIFO, nil, 0); err != nil {
		t.Errorf("Apply(FIFO, nil cost) err = %v", err)
	}
	if _, err := Apply(AllVsAll(4), Random, nil, 7); err != nil {
		t.Errorf("Apply(Random, nil cost) err = %v", err)
	}
}

func TestApplyEvaluatesCostOncePerPair(t *testing.T) {
	pairs := AllVsAll(20) // 190 pairs: a comparator-driven cost would be called ~O(P log P) times
	calls := 0
	cost := func(p Pair) float64 {
		calls++
		return float64(p.I*100 + p.J)
	}
	mustApply(t, pairs, LPT, cost, 0)
	if calls != len(pairs) {
		t.Errorf("LPT evaluated cost %d times for %d pairs, want exactly one call per pair", calls, len(pairs))
	}
	calls = 0
	mustApply(t, pairs, SPT, cost, 0)
	if calls != len(pairs) {
		t.Errorf("SPT evaluated cost %d times for %d pairs, want exactly one call per pair", calls, len(pairs))
	}
}

func TestAllVsAll(t *testing.T) {
	pairs := AllVsAll(5)
	if len(pairs) != 10 {
		t.Fatalf("5 structures -> %d pairs, want 10", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Errorf("pair %v not ordered", p)
		}
		if p.I < 0 || p.J >= 5 {
			t.Errorf("pair %v out of range", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if AllVsAll(1) != nil || AllVsAll(0) != nil {
		t.Error("degenerate sizes should yield nil")
	}
	// Paper's dataset sizes.
	if len(AllVsAll(34)) != 561 {
		t.Errorf("CK34 pairs = %d, want 561", len(AllVsAll(34)))
	}
	if len(AllVsAll(119)) != 7021 {
		t.Errorf("RS119 pairs = %d, want 7021", len(AllVsAll(119)))
	}
}

func TestOneVsAll(t *testing.T) {
	pairs := OneVsAll(2, 5)
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.I != 2 || p.J == 2 {
			t.Errorf("bad pair %v", p)
		}
	}
}

func TestApplyFIFOKeepsOrder(t *testing.T) {
	in := AllVsAll(6)
	out := mustApply(t, in, FIFO, nil, 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("FIFO reordered jobs")
		}
	}
	// Must be a copy, not an alias.
	out[0] = Pair{9, 9}
	if in[0] == out[0] {
		t.Error("Apply returned an alias")
	}
}

func TestApplyLPT(t *testing.T) {
	lengths := []int{10, 100, 50, 20}
	pairs := AllVsAll(4)
	cost := LengthProductCost(lengths)
	out := mustApply(t, pairs, LPT, cost, 0)
	for i := 1; i < len(out); i++ {
		if cost(out[i-1]) < cost(out[i]) {
			t.Fatalf("LPT not descending at %d: %v", i, out)
		}
	}
	// Largest job first: pair {1,2} with cost 5000.
	if out[0] != (Pair{1, 2}) {
		t.Errorf("first LPT job = %v", out[0])
	}
}

func TestApplySPT(t *testing.T) {
	lengths := []int{10, 100, 50, 20}
	cost := LengthProductCost(lengths)
	out := mustApply(t, AllVsAll(4), SPT, cost, 0)
	for i := 1; i < len(out); i++ {
		if cost(out[i-1]) > cost(out[i]) {
			t.Fatalf("SPT not ascending: %v", out)
		}
	}
}

func TestApplyRandomDeterministicPermutation(t *testing.T) {
	in := AllVsAll(8)
	a := mustApply(t, in, Random, nil, 42)
	b := mustApply(t, in, Random, nil, 42)
	c := mustApply(t, in, Random, nil, 43)
	sameAsA := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
		if a[i] != c[i] {
			sameAsA = false
		}
	}
	if sameAsA {
		t.Error("different seeds gave identical shuffles")
	}
	// Must be a permutation.
	key := func(p Pair) int { return p.I*1000 + p.J }
	ka := make([]int, len(a))
	ki := make([]int, len(in))
	for i := range a {
		ka[i] = key(a[i])
		ki[i] = key(in[i])
	}
	sort.Ints(ka)
	sort.Ints(ki)
	for i := range ka {
		if ka[i] != ki[i] {
			t.Fatal("Random lost or duplicated jobs")
		}
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{FIFO: "FIFO", LPT: "LPT", SPT: "SPT", Random: "Random", Order(99): "unknown"} {
		if o.String() != want {
			t.Errorf("%d.String() = %s", o, o.String())
		}
	}
}
