package sched

import (
	"sort"
	"testing"
)

func TestAllVsAll(t *testing.T) {
	pairs := AllVsAll(5)
	if len(pairs) != 10 {
		t.Fatalf("5 structures -> %d pairs, want 10", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Errorf("pair %v not ordered", p)
		}
		if p.I < 0 || p.J >= 5 {
			t.Errorf("pair %v out of range", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if AllVsAll(1) != nil || AllVsAll(0) != nil {
		t.Error("degenerate sizes should yield nil")
	}
	// Paper's dataset sizes.
	if len(AllVsAll(34)) != 561 {
		t.Errorf("CK34 pairs = %d, want 561", len(AllVsAll(34)))
	}
	if len(AllVsAll(119)) != 7021 {
		t.Errorf("RS119 pairs = %d, want 7021", len(AllVsAll(119)))
	}
}

func TestOneVsAll(t *testing.T) {
	pairs := OneVsAll(2, 5)
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.I != 2 || p.J == 2 {
			t.Errorf("bad pair %v", p)
		}
	}
}

func TestApplyFIFOKeepsOrder(t *testing.T) {
	in := AllVsAll(6)
	out := Apply(in, FIFO, nil, 0)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("FIFO reordered jobs")
		}
	}
	// Must be a copy, not an alias.
	out[0] = Pair{9, 9}
	if in[0] == out[0] {
		t.Error("Apply returned an alias")
	}
}

func TestApplyLPT(t *testing.T) {
	lengths := []int{10, 100, 50, 20}
	pairs := AllVsAll(4)
	cost := LengthProductCost(lengths)
	out := Apply(pairs, LPT, cost, 0)
	for i := 1; i < len(out); i++ {
		if cost(out[i-1]) < cost(out[i]) {
			t.Fatalf("LPT not descending at %d: %v", i, out)
		}
	}
	// Largest job first: pair {1,2} with cost 5000.
	if out[0] != (Pair{1, 2}) {
		t.Errorf("first LPT job = %v", out[0])
	}
}

func TestApplySPT(t *testing.T) {
	lengths := []int{10, 100, 50, 20}
	cost := LengthProductCost(lengths)
	out := Apply(AllVsAll(4), SPT, cost, 0)
	for i := 1; i < len(out); i++ {
		if cost(out[i-1]) > cost(out[i]) {
			t.Fatalf("SPT not ascending: %v", out)
		}
	}
}

func TestApplyRandomDeterministicPermutation(t *testing.T) {
	in := AllVsAll(8)
	a := Apply(in, Random, nil, 42)
	b := Apply(in, Random, nil, 42)
	c := Apply(in, Random, nil, 43)
	sameAsA := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random not deterministic for equal seeds")
		}
		if a[i] != c[i] {
			sameAsA = false
		}
	}
	if sameAsA {
		t.Error("different seeds gave identical shuffles")
	}
	// Must be a permutation.
	key := func(p Pair) int { return p.I*1000 + p.J }
	ka := make([]int, len(a))
	ki := make([]int, len(in))
	for i := range a {
		ka[i] = key(a[i])
		ki[i] = key(in[i])
	}
	sort.Ints(ka)
	sort.Ints(ki)
	for i := range ka {
		if ka[i] != ki[i] {
			t.Fatal("Random lost or duplicated jobs")
		}
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{FIFO: "FIFO", LPT: "LPT", SPT: "SPT", Random: "Random", Order(99): "unknown"} {
		if o.String() != want {
			t.Errorf("%d.String() = %s", o, o.String())
		}
	}
}
