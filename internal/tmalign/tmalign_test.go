package tmalign

import (
	"math"
	"math/rand"
	"testing"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
	"rckalign/internal/ss"
	"rckalign/internal/synth"
)

func helixProtein(id string, n int, seed int64) *pdb.Structure {
	return synth.Generate(id, synth.Blueprint{
		{Type: ss.Helix, Len: n / 3},
		{Type: ss.Coil, Len: 5},
		{Type: ss.Strand, Len: n / 4},
		{Type: ss.Coil, Len: 4},
		{Type: ss.Helix, Len: n - n/3 - n/4 - 9},
	}, seed)
}

func TestSelfComparisonIsPerfect(t *testing.T) {
	s := helixProtein("p", 90, 1)
	r := Compare(s, s, DefaultOptions())
	if r.TM1 < 0.999 || r.TM2 < 0.999 {
		t.Errorf("self TM = %v / %v, want ~1", r.TM1, r.TM2)
	}
	if r.RMSD > 1e-6 {
		t.Errorf("self RMSD = %v", r.RMSD)
	}
	if r.AlignedLen != s.Len() {
		t.Errorf("self aligned %d of %d", r.AlignedLen, s.Len())
	}
	if r.SeqID != 1 {
		t.Errorf("self SeqID = %v", r.SeqID)
	}
	// Identity alignment.
	for j, i := range r.Invmap {
		if i != j {
			t.Fatalf("self alignment is not identity at %d -> %d", j, i)
		}
	}
}

func TestRigidMotionInvariance(t *testing.T) {
	s := helixProtein("p", 80, 2)
	moved := s.Clone()
	g := geom.Transform{R: geom.AxisAngle(geom.V(1, 2, 3), 1.9), T: geom.V(30, -12, 7)}
	for i := range moved.Residues {
		moved.Residues[i].CA = g.Apply(moved.Residues[i].CA)
	}
	r := Compare(s, moved, DefaultOptions())
	if r.TM1 < 0.999 {
		t.Errorf("rigidly moved copy TM = %v, want ~1", r.TM1)
	}
	if r.RMSD > 1e-3 {
		t.Errorf("rigidly moved copy RMSD = %v", r.RMSD)
	}
	// The recovered transform must map chain 1 onto chain 2.
	for i := range s.Residues {
		got := r.Transform.Apply(s.Residues[i].CA)
		if got.Dist(moved.Residues[i].CA) > 1e-2 {
			t.Fatalf("transform wrong at %d: off by %v", i, got.Dist(moved.Residues[i].CA))
		}
	}
}

func TestFamilyMembersScoreHigh(t *testing.T) {
	base := helixProtein("base", 100, 3)
	member := synth.Perturb(base, "member", synth.PerturbOptions{Noise: 0.8, Indels: 1, MutateFrac: 0.3}, 4)
	r := Compare(base, member, DefaultOptions())
	if r.TM1 < 0.5 {
		t.Errorf("family member TM1 = %v, want > 0.5", r.TM1)
	}
	if r.RMSD > 4 {
		t.Errorf("family member RMSD = %v, want small", r.RMSD)
	}
}

func TestUnrelatedScoreLow(t *testing.T) {
	a := synth.Generate("a", synth.Blueprint{{Type: ss.Helix, Len: 20}, {Type: ss.Coil, Len: 8}, {Type: ss.Helix, Len: 20}, {Type: ss.Coil, Len: 8}, {Type: ss.Helix, Len: 20}}, 5)
	b := synth.Generate("b", synth.Blueprint{{Type: ss.Strand, Len: 9}, {Type: ss.Coil, Len: 5}, {Type: ss.Strand, Len: 9}, {Type: ss.Coil, Len: 5}, {Type: ss.Strand, Len: 9}, {Type: ss.Coil, Len: 5}, {Type: ss.Strand, Len: 9}}, 6)
	r := Compare(a, b, DefaultOptions())
	if r.TM() > 0.5 {
		t.Errorf("unrelated folds TM = %v, suspiciously high", r.TM())
	}
}

func TestScoresInRangeAndMapValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := synth.Small(6, 8)
	for i := 0; i < ds.Len(); i++ {
		for j := i + 1; j < ds.Len(); j++ {
			if rng.Float64() < 0.4 {
				continue // subsample to keep the test fast
			}
			r := Compare(ds.Structures[i], ds.Structures[j], FastOptions())
			if r.TM1 < 0 || r.TM1 > 1+1e-9 || r.TM2 < 0 || r.TM2 > 1+1e-9 {
				t.Fatalf("%s: TM out of range: %v %v", r, r.TM1, r.TM2)
			}
			if !seqalign.IsMonotonic(r.Invmap, r.Len1) {
				t.Fatalf("%s: invalid alignment", r)
			}
			if r.AlignedLen > min(r.Len1, r.Len2) {
				t.Fatalf("%s: aligned %d > min length", r, r.AlignedLen)
			}
			if r.SeqID < 0 || r.SeqID > 1 {
				t.Fatalf("%s: SeqID %v", r, r.SeqID)
			}
			if !r.Transform.R.IsRotation(1e-6) {
				t.Fatalf("%s: non-rotation transform", r)
			}
		}
	}
}

func TestNormalizationAsymmetry(t *testing.T) {
	// A short chain fully contained in a long chain: TM normalised by the
	// short length should be much higher than by the long length.
	long := helixProtein("long", 150, 9)
	short := &pdb.Structure{ID: "short", Chain: 'A'}
	short.Residues = append(short.Residues, long.Residues[20:80]...)
	r := Compare(long, short, DefaultOptions())
	if r.TM2 < r.TM1 {
		t.Errorf("TM2 (norm by short len, %v) should exceed TM1 (norm by long len, %v)", r.TM2, r.TM1)
	}
	if r.TM2 < 0.8 {
		t.Errorf("contained fragment TM2 = %v, want high", r.TM2)
	}
}

func TestCompareSymmetryApproximate(t *testing.T) {
	// TM-align is not exactly symmetric, but swapping arguments must swap
	// the normalisations approximately.
	a := helixProtein("a", 90, 10)
	b := synth.Perturb(a, "b", synth.PerturbOptions{Noise: 1.2, Indels: 2}, 11)
	r1 := Compare(a, b, DefaultOptions())
	r2 := Compare(b, a, DefaultOptions())
	if math.Abs(r1.TM1-r2.TM2) > 0.1 || math.Abs(r1.TM2-r2.TM1) > 0.1 {
		t.Errorf("asymmetry too large: %v/%v vs %v/%v", r1.TM1, r1.TM2, r2.TM1, r2.TM2)
	}
}

func TestDegenerateInputs(t *testing.T) {
	tiny := pdb.FromCAs("tiny", []geom.Vec3{{0, 0, 0}, {3.8, 0, 0}}, "AG")
	ok := helixProtein("ok", 60, 12)
	r := Compare(tiny, ok, DefaultOptions())
	if r.AlignedLen != 0 || r.TM1 != 0 {
		t.Errorf("degenerate input produced TM=%v aligned=%d", r.TM1, r.AlignedLen)
	}
	r = Compare(ok, tiny, DefaultOptions())
	if r.AlignedLen != 0 {
		t.Errorf("degenerate input (2nd) produced aligned=%d", r.AlignedLen)
	}
}

func TestOpsCounted(t *testing.T) {
	a := helixProtein("a", 70, 13)
	b := helixProtein("b", 80, 14)
	r := Compare(a, b, DefaultOptions())
	if r.Ops.DPCells == 0 || r.Ops.KabschCalls == 0 || r.Ops.ScoreEvals == 0 {
		t.Errorf("ops not counted: %s", r.Ops.String())
	}
	// A bigger problem must cost more.
	c := helixProtein("c", 150, 15)
	d := helixProtein("d", 160, 16)
	r2 := Compare(c, d, DefaultOptions())
	if r2.Ops.DPCells <= r.Ops.DPCells {
		t.Errorf("larger pair has fewer DP cells: %d <= %d", r2.Ops.DPCells, r.Ops.DPCells)
	}
}

func TestDeterminism(t *testing.T) {
	a := helixProtein("a", 85, 17)
	b := synth.Perturb(a, "b", synth.PerturbOptions{Noise: 1.5, Indels: 1}, 18)
	r1 := Compare(a, b, DefaultOptions())
	r2 := Compare(a, b, DefaultOptions())
	if r1.TM1 != r2.TM1 || r1.TM2 != r2.TM2 || r1.AlignedLen != r2.AlignedLen || r1.RMSD != r2.RMSD {
		t.Error("Compare is not deterministic")
	}
	for j := range r1.Invmap {
		if r1.Invmap[j] != r2.Invmap[j] {
			t.Fatal("alignment not deterministic")
		}
	}
}

func TestFastOptionsCloseToDefault(t *testing.T) {
	a := helixProtein("a", 90, 19)
	b := synth.Perturb(a, "b", synth.PerturbOptions{Noise: 1.0, Indels: 1}, 20)
	rd := Compare(a, b, DefaultOptions())
	rf := Compare(a, b, FastOptions())
	if rf.TM1 < rd.TM1-0.15 {
		t.Errorf("fast mode much worse: %v vs %v", rf.TM1, rd.TM1)
	}
	if rf.Ops.DPCells >= rd.Ops.DPCells {
		t.Errorf("fast mode not cheaper: %d vs %d DP cells", rf.Ops.DPCells, rd.Ops.DPCells)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SimplifyStep != 40 || o.FinalStep != 1 || o.MaxDPIters != 30 {
		t.Errorf("withDefaults = %+v", o)
	}
	o2 := Options{SimplifyStep: 5}.withDefaults()
	if o2.SimplifyStep != 5 || o2.FinalStep != 1 {
		t.Errorf("partial defaults = %+v", o2)
	}
}

func TestResultString(t *testing.T) {
	a := helixProtein("alpha", 60, 21)
	r := Compare(a, a, FastOptions())
	s := r.String()
	if s == "" || r.TM() <= 0 {
		t.Error("String/TM broken")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkCompareMedium(b *testing.B) {
	x := helixProtein("x", 150, 22)
	y := synth.Perturb(x, "y", synth.PerturbOptions{Noise: 1.2, Indels: 2}, 23)
	opt := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(x, y, opt)
	}
}

func BenchmarkCompareFast(b *testing.B) {
	x := helixProtein("x", 150, 22)
	y := synth.Perturb(x, "y", synth.PerturbOptions{Noise: 1.2, Indels: 2}, 23)
	opt := FastOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(x, y, opt)
	}
}
