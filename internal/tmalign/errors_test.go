package tmalign

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
	"rckalign/internal/tmscore"
)

// synthStructure builds a CA-like random-walk chain.
func synthStructure(id string, n int, seed int64) *pdb.Structure {
	rng := rand.New(rand.NewSource(seed))
	st := &pdb.Structure{ID: id, Chain: 'A'}
	cur := geom.V(0, 0, 0)
	for i := 0; i < n; i++ {
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		cur = cur.Add(dir.Scale(3.8))
		st.Residues = append(st.Residues, pdb.Residue{Seq: i + 1, Name: "ALA", AA: 'A', CA: cur})
	}
	return st
}

func TestValidateStructure(t *testing.T) {
	if err := ValidateStructure(synthStructure("ok", 20, 1)); err != nil {
		t.Errorf("valid structure rejected: %v", err)
	}
	short := synthStructure("short", 2, 2)
	if err := ValidateStructure(short); !errors.Is(err, ErrDegenerateStructure) {
		t.Errorf("2-residue structure: err = %v, want ErrDegenerateStructure", err)
	}
	nan := synthStructure("nan", 10, 3)
	nan.Residues[4].CA[1] = math.NaN()
	if err := ValidateStructure(nan); !errors.Is(err, ErrDegenerateStructure) {
		t.Errorf("NaN coordinate: err = %v, want ErrDegenerateStructure", err)
	}
	inf := synthStructure("inf", 10, 4)
	inf.Residues[0].CA[2] = math.Inf(1)
	if err := ValidateStructure(inf); !errors.Is(err, ErrDegenerateStructure) {
		t.Errorf("Inf coordinate: err = %v, want ErrDegenerateStructure", err)
	}
}

func TestIsKernelError(t *testing.T) {
	for _, s := range []error{
		ErrDegenerateStructure,
		geom.ErrPointMismatch, geom.ErrNoPoints,
		tmscore.ErrAlignedLength, seqalign.ErrInvmapLength,
	} {
		if !IsKernelError(s) {
			t.Errorf("sentinel %v not recognised as a kernel error", s)
		}
		// Wrapped forms — how the kernels actually panic.
		if !IsKernelError(errorsWrap(s)) {
			t.Errorf("wrapped sentinel %v not recognised", s)
		}
	}
	if IsKernelError(errors.New("disk on fire")) {
		t.Error("arbitrary error classified as a kernel error")
	}
	if IsKernelError(nil) {
		t.Error("nil classified as a kernel error")
	}
}

func errorsWrap(err error) error { return &wrapped{err} }

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "ctx: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }

// TestTryCompareMatchesCompare: on valid input the boundary is
// transparent — bit-identical result, nil error.
func TestTryCompareMatchesCompare(t *testing.T) {
	a := synthStructure("a", 40, 7)
	b := synthStructure("b", 35, 8)
	opt := FastOptions()
	want := Compare(a, b, opt)
	got, err := TryCompare(a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TryCompare result differs from Compare:\n%v\n%v", got, want)
	}
}

func TestTryCompareRejectsDegenerate(t *testing.T) {
	good := synthStructure("good", 30, 9)
	nan := synthStructure("bad", 30, 10)
	nan.Residues[12].CA[0] = math.NaN()
	for _, pair := range [][2]*pdb.Structure{{nan, good}, {good, nan}} {
		r, err := TryCompare(pair[0], pair[1], DefaultOptions())
		if r != nil || !errors.Is(err, ErrDegenerateStructure) {
			t.Errorf("TryCompare(%s, %s) = %v, %v; want nil, ErrDegenerateStructure",
				pair[0].ID, pair[1].ID, r, err)
		}
		if !IsKernelError(err) {
			t.Errorf("degenerate-input error %v not classified as kernel error", err)
		}
	}
}

// TestTryCompareMinimumChain drives the full kernel at the smallest
// input ValidateStructure admits (3 residues): the seed ladder, the DP
// refinement and the final scoring must all cope with chains shorter
// than every initial-alignment fragment length, under both kernel
// profiles and for asymmetric length combinations.
func TestTryCompareMinimumChain(t *testing.T) {
	tiny := synthStructure("tiny", 3, 11)
	small := synthStructure("small", 5, 12)
	big := synthStructure("big", 60, 13)
	for _, opt := range []Options{DefaultOptions(), FastOptions()} {
		for _, pair := range [][2]*pdb.Structure{{tiny, tiny}, {tiny, small}, {tiny, big}, {big, tiny}} {
			r, err := TryCompare(pair[0], pair[1], opt)
			if err != nil {
				t.Fatalf("TryCompare(%s, %s): %v", pair[0].ID, pair[1].ID, err)
			}
			if r.TM1 < 0 || r.TM1 > 1+1e-9 || r.TM2 < 0 || r.TM2 > 1+1e-9 {
				t.Errorf("TryCompare(%s, %s): TM out of range: %v / %v",
					pair[0].ID, pair[1].ID, r.TM1, r.TM2)
			}
			if !seqalign.IsMonotonic(r.Invmap, r.Len1) {
				t.Errorf("TryCompare(%s, %s): non-monotonic invmap", pair[0].ID, pair[1].ID)
			}
		}
	}
	// Self comparison of the minimal chain is a perfect match.
	r, err := TryCompare(tiny, tiny, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.TM1 < 0.99 || r.AlignedLen != 3 {
		t.Errorf("3-residue self comparison: TM1 %v aligned %d, want ~1 and 3", r.TM1, r.AlignedLen)
	}
}

// TestTryCompareRepanicsOnBugs: a panic that does not wrap a kernel
// sentinel must escape the boundary — masking genuine bugs as input
// errors would hide real defects.
func TestTryCompareRepanicsOnBugs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-kernel panic was swallowed")
		}
	}()
	func() {
		defer recoverKernel("x", "y", new(error))
		panic(errors.New("genuine bug"))
	}()
}
