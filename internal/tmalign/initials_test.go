package tmalign

import (
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/kernel"
	"rckalign/internal/seqalign"
	"rckalign/internal/ss"
	"rckalign/internal/synth"
	"rckalign/internal/tmscore"
)

// newCtx builds a comparison context the way CompareCA does, for
// white-box testing of the initial alignment generators.
func newCtx(t *testing.T, x, y []geom.Vec3) *ctx {
	t.Helper()
	w := new(kernel.Workspace)
	c := &ctx{
		x: x, y: y,
		xlen: len(x), ylen: len(y),
		sp:  tmscore.SearchParams(len(x), len(y)),
		opt: DefaultOptions(),
		nw:  w.Aligner(),
		ops: &costmodel.Counter{},
		w:   w,
	}
	c.sec1 = ss.Assign(x)
	c.sec2 = ss.Assign(y)
	n := c.xlen
	if c.ylen > n {
		n = c.ylen
	}
	w.ReservePairs(n)
	w.ReserveMat(c.xlen * c.ylen)
	c.r1 = w.R1[:n]
	c.r2 = w.R2[:n]
	c.xtm = w.PairX[:n]
	c.ytm = w.PairY[:n]
	c.xt = w.PairT[:n]
	c.dis2 = w.Dis2[:n]
	c.invTmp = w.InvTmp[:c.ylen]
	c.scoreMat = w.Mat[:c.xlen*c.ylen]
	for j := 0; j < c.ylen; j++ {
		p := &y[j]
		w.YX[j], w.YY[j], w.YZ[j] = p[0], p[1], p[2]
	}
	return c
}

func shiftedCopy(x []geom.Vec3, drop int) []geom.Vec3 {
	// A copy of x missing its first `drop` residues, rigidly moved.
	g := geom.Transform{R: geom.RotZ(0.9), T: geom.V(11, -3, 6)}
	out := make([]geom.Vec3, len(x)-drop)
	for i := range out {
		out[i] = g.Apply(x[i+drop])
	}
	return out
}

func testProtein(n int, seed int64) []geom.Vec3 {
	s := synth.Generate("t", synth.Blueprint{
		{Type: ss.Helix, Len: n / 3},
		{Type: ss.Coil, Len: 6},
		{Type: ss.Strand, Len: n / 5},
		{Type: ss.Coil, Len: 5},
		{Type: ss.Helix, Len: n - n/3 - n/5 - 11},
	}, seed)
	return s.CAs()
}

func TestInitialGaplessFindsShift(t *testing.T) {
	x := testProtein(90, 1)
	y := shiftedCopy(x, 7) // y[j] corresponds to x[j+7]
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	c.initialGapless(inv)
	// The winning diagonal must be k=7: most aligned js map to j+7.
	hits := 0
	for j, i := range inv {
		if i == j+7 {
			hits++
		}
	}
	if hits < len(y)*3/4 {
		t.Errorf("gapless initial found %d/%d correct pairs", hits, len(y))
	}
}

func TestInitialSSMonotonicAndSane(t *testing.T) {
	x := testProtein(80, 2)
	y := testProtein(70, 3)
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	c.initialSS(inv)
	if !seqalign.IsMonotonic(inv, len(x)) {
		t.Fatal("SS initial not monotonic")
	}
	if seqalign.AlignedLen(inv) < 10 {
		t.Error("SS initial aligned almost nothing")
	}
}

func TestInitialLocalRecoversRigidCopy(t *testing.T) {
	x := testProtein(80, 4)
	y := shiftedCopy(x, 0)
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	if !c.initialLocal(inv) {
		t.Fatal("initialLocal found nothing")
	}
	hits := 0
	for j, i := range inv {
		if i == j {
			hits++
		}
	}
	if hits < len(y)/2 {
		t.Errorf("local initial found %d/%d identity pairs", hits, len(y))
	}
}

func TestInitialLocalTooShort(t *testing.T) {
	x := testProtein(80, 5)
	y := x[:8]
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	if c.initialLocal(inv) {
		t.Error("initialLocal should refuse chains shorter than a fragment")
	}
}

func TestInitialSSPlusUsesRotation(t *testing.T) {
	x := testProtein(70, 6)
	g := geom.Transform{R: geom.RotX(1.2), T: geom.V(4, 4, 4)}
	y := make([]geom.Vec3, len(x))
	g.ApplyAll(y, x)
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	// With the true rotation supplied, SS+distance must recover the
	// identity alignment.
	c.initialSSPlus(inv, g)
	hits := 0
	for j, i := range inv {
		if i == j {
			hits++
		}
	}
	if hits < len(y)*9/10 {
		t.Errorf("ssplus with exact rotation found %d/%d", hits, len(y))
	}
}

func TestInitialFragment(t *testing.T) {
	x := testProtein(90, 7)
	y := shiftedCopy(x, 5)
	c := newCtx(t, x, y)
	inv := make([]int, len(y))
	if !c.initialFragment(inv) {
		t.Fatal("initialFragment found nothing")
	}
	if !seqalign.IsMonotonic(inv, len(x)) {
		t.Fatal("fragment initial not monotonic")
	}
	hits := 0
	for j, i := range inv {
		if i == j+5 {
			hits++
		}
	}
	if hits < len(y)/2 {
		t.Errorf("fragment initial found %d/%d shifted pairs", hits, len(y))
	}
}

func TestLongestSSElement(t *testing.T) {
	mk := func(s string) []ss.Type {
		out := make([]ss.Type, len(s))
		for i, ch := range s {
			switch ch {
			case 'H':
				out[i] = ss.Helix
			case 'E':
				out[i] = ss.Strand
			default:
				out[i] = ss.Coil
			}
		}
		return out
	}
	start, end := longestSSElement(mk("CCHHHCCEEEEEEC"))
	if start != 7 || end != 13 {
		t.Errorf("longest run = [%d,%d), want [7,13)", start, end)
	}
	// All coil: empty result.
	start, end = longestSSElement(mk("CCCCC"))
	if start != 0 || end != 0 {
		t.Errorf("all-coil run = [%d,%d)", start, end)
	}
	start, end = longestSSElement(nil)
	if start != 0 || end != 0 {
		t.Errorf("nil run = [%d,%d)", start, end)
	}
}

func TestScoreFastRanksCorrectly(t *testing.T) {
	// scoreFast must rank the true alignment above a wrong diagonal.
	x := testProtein(80, 8)
	y := shiftedCopy(x, 0)
	c := newCtx(t, x, y)
	good := make([]int, len(y))
	bad := make([]int, len(y))
	for j := range good {
		good[j] = j
		bad[j] = -1
	}
	for j := 20; j < len(y); j++ {
		bad[j] = j - 20
	}
	if sGood, sBad := c.scoreFast(good), c.scoreFast(bad); sGood <= sBad {
		t.Errorf("scoreFast: good %v <= bad %v", sGood, sBad)
	}
}

func TestDPIterImproves(t *testing.T) {
	// Starting from a partially wrong alignment on a rigid pair, DP
	// refinement must reach a near-perfect TM-score.
	x := testProtein(80, 9)
	y := shiftedCopy(x, 0)
	c := newCtx(t, x, y)
	start := make([]int, len(y))
	for j := range start {
		start[j] = -1
	}
	for j := 0; j < len(y)-10; j++ {
		start[j] = j + 10 // off-by-ten diagonal
	}
	tm0, tr := c.detailedSearch(start)
	tm, _, inv := c.dpIter(start, tr, 10)
	if tm < tm0 {
		t.Fatalf("dpIter regressed: %v -> %v", tm0, tm)
	}
	// An off-by-ten start on a helical protein sits near a periodicity
	// local optimum (whole helix turns superpose onto each other), so
	// dpIter alone need not reach the global alignment — that is what
	// the multiple initial alignments are for. It must still improve
	// substantially over the start and stay a valid alignment.
	if tm < tm0+0.05 {
		t.Errorf("dpIter barely improved: %v -> %v", tm0, tm)
	}
	if !seqalign.IsMonotonic(inv, len(x)) {
		t.Error("dpIter produced an invalid alignment")
	}

	// From the true alignment, dpIter must hold TM near 1.
	ident := make([]int, len(y))
	for j := range ident {
		ident[j] = j
	}
	tmI0, trI := c.detailedSearch(ident)
	tmI, _, _ := c.dpIter(ident, trI, 5)
	if tmI < 0.99 || tmI < tmI0-1e-9 {
		t.Errorf("dpIter degraded the true alignment: %v -> %v", tmI0, tmI)
	}
}
