package tmalign

import (
	"strings"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
)

// FormatAlignment renders the classic TM-align three-line alignment view
// for a result: chain 1 residues on the first line, chain 2 on the
// third, and a marker line between them (':' for aligned pairs within
// 5 A after superposition, '.' for other aligned pairs). Unaligned
// residues pair with '-' gaps. s1 and s2 must be the structures the
// result was computed from.
func FormatAlignment(r *Result, s1, s2 *pdb.Structure) string {
	if r.Len1 != s1.Len() || r.Len2 != s2.Len() {
		return "(alignment unavailable: structures do not match result)"
	}
	x := s1.CAs()
	xt := make([]geom.Vec3, len(x))
	r.Transform.ApplyAll(xt, x)
	seq1, seq2 := s1.Sequence(), s2.Sequence()

	var a, m, b strings.Builder
	i := 0 // next unemitted chain-1 residue
	for j := 0; j < r.Len2; j++ {
		pi := r.Invmap[j]
		if pi < 0 {
			// chain-2 residue unaligned.
			a.WriteByte('-')
			m.WriteByte(' ')
			b.WriteByte(seq2[j])
			continue
		}
		// Emit chain-1 residues skipped before this pair.
		for ; i < pi; i++ {
			a.WriteByte(seq1[i])
			m.WriteByte(' ')
			b.WriteByte('-')
		}
		a.WriteByte(seq1[pi])
		if xt[pi].Dist(s2.Residues[j].CA) < 5 {
			m.WriteByte(':')
		} else {
			m.WriteByte('.')
		}
		b.WriteByte(seq2[j])
		i = pi + 1
	}
	// Trailing chain-1 residues.
	for ; i < r.Len1; i++ {
		a.WriteByte(seq1[i])
		m.WriteByte(' ')
		b.WriteByte('-')
	}
	return a.String() + "\n" + m.String() + "\n" + b.String() + "\n"
}

// AlignmentColumns counts the (aligned, close) pairs of a formatted
// alignment: aligned = pairs present in Invmap, close = pairs within
// 5 A under the result transform.
func AlignmentColumns(r *Result, s1, s2 *pdb.Structure) (aligned, close int) {
	x := s1.CAs()
	for j, pi := range r.Invmap {
		if pi < 0 || pi >= len(x) || j >= s2.Len() {
			continue
		}
		aligned++
		if r.Transform.Apply(x[pi]).Dist(s2.Residues[j].CA) < 5 {
			close++
		}
	}
	return aligned, close
}
