package tmalign

import (
	"rckalign/internal/geom"
	"rckalign/internal/seqalign"
	"rckalign/internal/ss"
)

// initialGapless is TM-align's get_initial: try every diagonal (ungapped)
// offset of the two chains, rank with the fast score, and write the best
// into dst (all -1 when no offset qualifies).
func (c *ctx) initialGapless(dst []int) {
	minLen := c.xlen
	if c.ylen < minLen {
		minLen = c.ylen
	}
	minAli := minLen / 2
	if minAli < 5 {
		minAli = 5
	}
	for j := range dst {
		dst[j] = -1
	}
	bestScore := -1.0
	seqalign.GaplessThreading(c.xlen, c.ylen, minAli, func(k, lo, hi int) {
		for j := range c.invTmp {
			c.invTmp[j] = -1
		}
		for j := lo; j < hi; j++ {
			c.invTmp[j] = j + k
		}
		if s := c.scoreFast(c.invTmp); s > bestScore {
			bestScore = s
			copy(dst, c.invTmp)
		}
	})
}

// initialSS is get_initial_ss: Needleman-Wunsch over the secondary
// structure strings (match=1, mismatch=0, gap open -1). The result is
// written into invmap.
func (c *ctx) initialSS(invmap []int) {
	c.nw.AlignSS(c.sec1, c.sec2, invmap, c.ops)
}

// initialLocal is get_initial5: superpose pairs of short fragments, score
// the whole chains under each fragment rotation, run gap-free-opening
// NWDP on that score matrix, and keep the alignment with the best fast
// score. Returns false when the chains are too short.
func (c *ctx) initialLocal(invmap []int) bool {
	minLen := c.xlen
	if c.ylen < minLen {
		minLen = c.ylen
	}
	frag := 20
	if minLen <= 2*frag {
		frag = minLen / 2
	}
	if frag < 5 {
		return false
	}
	jump := frag // non-overlapping fragment starts
	d01 := c.sp.D0 + 1.5
	d012 := d01 * d01

	xt := c.xt[:c.xlen]
	bestScore := -1.0
	found := false

	for i := 0; i+frag <= c.xlen; i += jump {
		for j := 0; j+frag <= c.ylen; j += jump {
			tr, _ := geom.Superpose(c.x[i:i+frag], c.y[j:j+frag])
			c.ops.AddKabsch(frag)
			tr.ApplyAll(xt, c.x)
			c.ops.AddRotate(c.xlen)
			c.fillDistMatrix(xt, d012, false)
			c.ops.AddScore(c.xlen * c.ylen)
			c.nw.AlignMatrix(c.xlen, c.ylen, c.scoreMat, 0, c.invTmp, c.ops)
			if s := c.scoreFast(c.invTmp); s > bestScore {
				bestScore = s
				copy(invmap, c.invTmp)
				found = true
			}
		}
	}
	return found
}

// initialSSPlus is get_initial_ssplus: NWDP over a score matrix mixing
// secondary structure identity (0.5 bonus) with the distance score under
// the best rotation found so far.
func (c *ctx) initialSSPlus(invmap []int, tr geom.Transform) {
	d02 := c.sp.D0 * c.sp.D0
	xt := c.xt[:c.xlen]
	tr.ApplyAll(xt, c.x)
	c.ops.AddRotate(c.xlen)
	c.fillDistMatrix(xt, d02, true)
	c.ops.AddScore(c.xlen * c.ylen)
	c.nw.AlignMatrix(c.xlen, c.ylen, c.scoreMat, -1, invmap, c.ops)
}

// initialFragment is a compact form of get_initial_fgt (fragment gapless
// threading): thread the longest secondary-structure element of chain 1
// gaplessly across chain 2, extend each candidate offset to a full
// diagonal alignment, and keep the offset with the best fast score.
// Returns false if no usable fragment exists.
func (c *ctx) initialFragment(invmap []int) bool {
	fs, fe := longestSSElement(c.sec1)
	flen := fe - fs
	if flen < 4 {
		// Fall back to the central third of the chain.
		fs = c.xlen / 3
		fe = fs + c.xlen/3
		flen = fe - fs
		if flen < 4 {
			return false
		}
	}
	bestScore := -1.0
	found := false
	// Slide the fragment over chain 2; offset k aligns x[fs+t] to
	// y[k+t]. Extend the diagonal to the full overlap.
	for k := 0; k+flen <= c.ylen; k++ {
		shift := fs - k // i = j + shift on this diagonal
		for j := range c.invTmp {
			c.invTmp[j] = -1
		}
		n := 0
		for j := 0; j < c.ylen; j++ {
			i := j + shift
			if i >= 0 && i < c.xlen {
				c.invTmp[j] = i
				n++
			}
		}
		if n < 5 {
			continue
		}
		if s := c.scoreFast(c.invTmp); s > bestScore {
			bestScore = s
			copy(invmap, c.invTmp)
			found = true
		}
	}
	return found
}

// longestSSElement returns the [start, end) span of the longest run of
// identical non-coil secondary structure in sec.
func longestSSElement(sec []ss.Type) (start, end int) {
	bestLen := 0
	i := 0
	for i < len(sec) {
		j := i
		for j < len(sec) && sec[j] == sec[i] {
			j++
		}
		if sec[i] != ss.Coil && j-i > bestLen {
			bestLen = j - i
			start, end = i, j
		}
		i = j
	}
	return start, end
}
