package tmalign

import (
	"math"
	"testing"

	"rckalign/internal/synth"
)

// TestGoldenCK34Pairs locks the exact comparison results for selected
// CK34 pairs. Any change to the alignment pipeline, the scoring
// parameters or the dataset generator shows up here — bump the values
// deliberately (and regenerate the pair caches!) if the algorithm is
// intentionally changed.
func TestGoldenCK34Pairs(t *testing.T) {
	golden := []struct {
		i, j         int
		name1, name2 string
		tm1, tm2     float64
		aligned      int
		rmsd         float64
	}{
		{0, 1, "glb01", "glb02", 0.897216, 0.915445, 135, 1.345071},
		{0, 16, "glb01", "pcy01", 0.185852, 0.227383, 45, 4.950992},
		{10, 11, "tim01", "tim02", 0.921639, 0.933668, 216, 1.494903},
		{24, 29, "prt01", "sab01", 0.137845, 0.273827, 31, 2.994084},
	}
	ck := synth.CK34()
	for _, g := range golden {
		r := Compare(ck.Structures[g.i], ck.Structures[g.j], DefaultOptions())
		if r.Name1 != g.name1 || r.Name2 != g.name2 {
			t.Fatalf("pair (%d,%d) names %s/%s, want %s/%s", g.i, g.j, r.Name1, r.Name2, g.name1, g.name2)
		}
		if math.Abs(r.TM1-g.tm1) > 1e-6 || math.Abs(r.TM2-g.tm2) > 1e-6 {
			t.Errorf("%s vs %s: TM = %.6f/%.6f, golden %.6f/%.6f",
				g.name1, g.name2, r.TM1, r.TM2, g.tm1, g.tm2)
		}
		if r.AlignedLen != g.aligned {
			t.Errorf("%s vs %s: aligned %d, golden %d", g.name1, g.name2, r.AlignedLen, g.aligned)
		}
		if math.Abs(r.RMSD-g.rmsd) > 1e-6 {
			t.Errorf("%s vs %s: RMSD %.6f, golden %.6f", g.name1, g.name2, r.RMSD, g.rmsd)
		}
	}
}
