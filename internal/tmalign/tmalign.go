// Package tmalign implements the TM-align protein structure alignment
// algorithm (Zhang & Skolnick, Nucleic Acids Research 2005), the pairwise
// comparison method the paper parallelises. The implementation follows the
// reference algorithm: five initial alignments (gapless threading,
// secondary structure, local fragment superposition, SS+distance and
// fragment threading), each refined by iterative dynamic programming
// against the TM-score rotation search, and a final detailed scoring pass
// normalised by both chain lengths.
//
// All floating point work is instrumented with costmodel counters so a
// simulated CPU can charge realistic, input-dependent execution times for
// each pairwise comparison.
package tmalign

import (
	"fmt"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/kernel"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
	"rckalign/internal/ss"
	"rckalign/internal/tmscore"
)

// Options tunes the alignment search.
type Options struct {
	// SimplifyStep is the fragment stride of the TM-score search used
	// while exploring alignments (TM-align default 40; 1 = exhaustive).
	SimplifyStep int
	// FinalStep is the fragment stride of the final scoring pass
	// (TM-align default 1).
	FinalStep int
	// MaxDPIters bounds the DP refinement iterations per gap setting
	// (TM-align default 30).
	MaxDPIters int
	// SkipLocalInit disables the O(L^2) fragment-pair initial alignment
	// (the most expensive initial); used by the fast profile.
	SkipLocalInit bool
	// NormLength, when > 0, additionally reports a TM-score normalised
	// by this fixed length (the reference TM-align's -L flag) in
	// Result.TMNorm.
	NormLength int
	// NormAvg, when set, additionally reports a TM-score normalised by
	// the average chain length (the -a flag) in Result.TMNorm. Ignored
	// when NormLength is set.
	NormAvg bool
	// D0 overrides the automatic d0 for the extra normalisation (the -d
	// flag); 0 keeps the length-derived value.
	D0 float64
	// Float32, when set, computes the O(L^2) distance score matrices of
	// the DP refinement in single precision (the final superposition and
	// TM-scores stay float64). This is an opt-in fast path: scores can
	// drift slightly from the default bit-exact float64 pipeline because
	// the DP may pick a different (near-tied) alignment. Off by default.
	Float32 bool
}

// DefaultOptions returns TM-align's standard search settings.
func DefaultOptions() Options {
	return Options{SimplifyStep: 40, FinalStep: 1, MaxDPIters: 30}
}

// FastOptions returns a cheaper profile (coarser search, no local
// initial) for quick screening.
func FastOptions() Options {
	return Options{SimplifyStep: 40, FinalStep: 8, MaxDPIters: 10, SkipLocalInit: true}
}

// Key returns a canonical encoding of the effective search settings,
// for use as the kernel component of memoization keys (pairstore): two
// option values produce equal keys iff Compare would behave
// identically under them.
func (o Options) Key() string {
	o = o.withDefaults()
	k := fmt.Sprintf("tmalign/s%d:f%d:i%d:l%t:n%d:a%t:d%g",
		o.SimplifyStep, o.FinalStep, o.MaxDPIters, o.SkipLocalInit, o.NormLength, o.NormAvg, o.D0)
	// The float32 marker is appended only when the fast path is enabled
	// so default-option keys (and the memoized pair caches committed
	// under them) are unchanged.
	if o.Float32 {
		k += ":f32"
	}
	return k
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.SimplifyStep <= 0 {
		o.SimplifyStep = d.SimplifyStep
	}
	if o.FinalStep <= 0 {
		o.FinalStep = d.FinalStep
	}
	if o.MaxDPIters <= 0 {
		o.MaxDPIters = d.MaxDPIters
	}
	return o
}

// Result is the outcome of one pairwise comparison.
type Result struct {
	Name1, Name2 string
	Len1, Len2   int
	// AlignedLen is the number of residue pairs in the final alignment
	// within the d8 cutoff (TM-align's n_ali8).
	AlignedLen int
	// RMSD is the optimal-superposition RMSD over the AlignedLen pairs.
	RMSD float64
	// SeqID is the fraction of identical residues among aligned pairs.
	SeqID float64
	// TM1 is the TM-score normalised by Len1; TM2 by Len2.
	TM1, TM2 float64
	// TMNorm is the extra user-requested normalisation (Options
	// NormLength / NormAvg / D0); 0 when not requested.
	TMNorm float64
	// Transform superposes chain 1 onto chain 2.
	Transform geom.Transform
	// Invmap is the final alignment: Invmap[j] = i aligns residue j of
	// chain 2 with residue i of chain 1 (-1 = unaligned).
	Invmap []int
	// Ops counts the abstract operations this comparison performed.
	Ops costmodel.Counter
}

// TM returns the conventional headline score max(TM1, TM2)... TM-align
// reports both; consumers ranking "similarity to the query" typically use
// the score normalised by the query length. TM here is the mean of the
// two, a common single-number summary.
func (r *Result) TM() float64 { return (r.TM1 + r.TM2) / 2 }

// String summarises the result in one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s vs %s: TM1=%.4f TM2=%.4f aligned=%d rmsd=%.2f seqid=%.2f",
		r.Name1, r.Name2, r.TM1, r.TM2, r.AlignedLen, r.RMSD, r.SeqID)
}

// ctx holds per-comparison state and reusable buffers.
type ctx struct {
	x, y       []geom.Vec3
	seq1, seq2 string
	sec1, sec2 []ss.Type
	xlen, ylen int
	sp         tmscore.Params
	opt        Options
	nw         *seqalign.Aligner
	ops        *costmodel.Counter
	w          *kernel.Workspace

	// Scratch views into w, sized to the current problem.
	r1, r2   []geom.Vec3
	xtm, ytm []geom.Vec3
	xt       []geom.Vec3
	dis2     []float64
	invTmp   []int
	scoreMat []float64
}

// Compare aligns two structures with the given options.
func Compare(s1, s2 *pdb.Structure, opt Options) *Result {
	r := CompareCA(s1.CAs(), s2.CAs(), s1.Sequence(), s2.Sequence(), opt)
	r.Name1, r.Name2 = s1.ID, s2.ID
	return r
}

// CompareCA aligns two CA traces (with one-letter sequences for the
// sequence-identity report). Scratch comes from the kernel workspace
// pool; workers that own a Workspace should call CompareCAWS directly.
func CompareCA(x, y []geom.Vec3, seq1, seq2 string, opt Options) *Result {
	w := kernel.Get()
	defer kernel.Put(w)
	return CompareCAWS(w, x, y, seq1, seq2, opt)
}

// CompareCAWS is CompareCA running on the caller's kernel workspace. It
// is the allocation-honest entry point used by the parallel runners: all
// O(L) and O(L^2) scratch lives in w and is reused across comparisons.
// The returned Result does not alias w.
func CompareCAWS(w *kernel.Workspace, x, y []geom.Vec3, seq1, seq2 string, opt Options) *Result {
	opt = opt.withDefaults()
	ops := &costmodel.Counter{}
	xlen, ylen := len(x), len(y)
	if xlen < 3 || ylen < 3 {
		// Degenerate chains cannot be aligned meaningfully; report an
		// empty alignment rather than guessing.
		return &Result{Len1: xlen, Len2: ylen, Invmap: emptyInvmap(ylen), Transform: geom.IdentityTransform(), Ops: *ops}
	}

	c := &ctx{
		x: x, y: y, seq1: seq1, seq2: seq2,
		xlen: xlen, ylen: ylen,
		sp:  tmscore.SearchParams(xlen, ylen),
		opt: opt,
		nw:  w.Aligner(),
		ops: ops,
		w:   w,
	}
	c.sec1 = ss.Assign(x)
	c.sec2 = ss.Assign(y)
	ops.AddSS(xlen + ylen)

	n := xlen
	if ylen > n {
		n = ylen
	}
	w.ReservePairs(n)
	w.ReserveMat(xlen * ylen)
	c.r1 = w.R1[:n]
	c.r2 = w.R2[:n]
	c.xtm = w.PairX[:n]
	c.ytm = w.PairY[:n]
	c.xt = w.PairT[:n]
	c.dis2 = w.Dis2[:n]
	c.invTmp = w.InvTmp[:ylen]
	c.scoreMat = w.Mat[:xlen*ylen]

	// SoA mirror of the fixed chain for the fused matrix fills.
	yx, yy, yz := w.YX[:ylen], w.YY[:ylen], w.YZ[:ylen]
	for j := 0; j < ylen; j++ {
		p := &y[j]
		yx[j], yy[j], yz[j] = p[0], p[1], p[2]
	}
	if opt.Float32 {
		w.Reserve32(ylen)
		yx32, yy32, yz32 := w.YX32[:ylen], w.YY32[:ylen], w.YZ32[:ylen]
		for j := 0; j < ylen; j++ {
			yx32[j], yy32[j], yz32[j] = float32(yx[j]), float32(yy[j]), float32(yz[j])
		}
	}

	invmap0 := c.run()
	return c.finalize(invmap0)
}

func emptyInvmap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = -1
	}
	return m
}

// run executes the initial-alignment + DP-refinement pipeline and returns
// the best alignment found (TM-align's main loop).
func (c *ctx) run() []int {
	best := c.w.InvBest[:c.ylen]
	for j := range best {
		best[j] = -1
	}
	bestTM := -1.0
	var bestTr geom.Transform

	consider := func(invmap []int, dpIters int, threshold float64) {
		if seqalign.AlignedLen(invmap) < 3 {
			return
		}
		tm, tr := c.detailedSearch(invmap)
		if tm > bestTM {
			bestTM = tm
			copy(best, invmap)
			bestTr = tr
		}
		if tm > bestTM*threshold && dpIters > 0 {
			tmDP, trDP, invDP := c.dpIter(invmap, tr, dpIters)
			if tmDP > bestTM {
				bestTM = tmDP
				copy(best, invDP)
				bestTr = trDP
			}
		}
	}

	// 1. Gapless threading.
	inv := c.w.InvSeed[:c.ylen]
	c.initialGapless(inv)
	consider(inv, c.opt.MaxDPIters, 0.0)

	// 2. Secondary structure alignment.
	c.initialSS(inv)
	consider(inv, c.opt.MaxDPIters, 0.2)

	// 3. Local fragment superposition (skippable: most expensive).
	if !c.opt.SkipLocalInit {
		if c.initialLocal(inv) {
			consider(inv, 2, 0.5)
		}
	}

	// 4. SS + distance-under-best-rotation hybrid (needs a rotation from
	// the work so far).
	if bestTM > 0 {
		c.initialSSPlus(inv, bestTr)
		consider(inv, c.opt.MaxDPIters, 0.2)
	}

	// 5. Fragment gapless threading.
	if c.initialFragment(inv) {
		consider(inv, 2, 0.5)
	}

	return best
}

// finalize performs the detailed final scoring pass on the chosen
// alignment: exhaustive TM-score search, d8 pair filtering, and scores
// normalised by each chain length.
func (c *ctx) finalize(invmap []int) *Result {
	res := &Result{
		Len1: c.xlen, Len2: c.ylen,
		Transform: geom.IdentityTransform(),
		Ops:       *c.ops,
	}
	// Gather aligned pairs.
	nAli := 0
	type pairIdx struct{ i, j int }
	idx := make([]pairIdx, 0, c.ylen)
	for j, i := range invmap {
		if i >= 0 {
			c.xtm[nAli] = c.x[i]
			c.ytm[nAli] = c.y[j]
			idx = append(idx, pairIdx{i, j})
			nAli++
		}
	}
	if nAli < 3 {
		res.Invmap = emptyInvmap(c.ylen)
		res.Ops = *c.ops
		return res
	}

	// Detailed search on the full aligned set with the search params.
	_, tr := c.sp.SearchWS(c.w, c.xtm[:nAli], c.ytm[:nAli], c.opt.FinalStep, c.ops)

	// Filter pairs with d <= d8 under the best rotation (n_ali8).
	d8sq := c.sp.ScoreD8 * c.sp.ScoreD8
	tr.ApplyAll(c.xt[:nAli], c.xtm[:nAli])
	c.ops.AddRotate(nAli)
	n8 := 0
	identical := 0
	final := emptyInvmap(c.ylen)
	xt, ytm := c.xt[:nAli], c.ytm[:nAli]
	for k := 0; k < nAli; k++ {
		a, b := &xt[k], &ytm[k]
		dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
		if dx*dx+dy*dy+dz*dz <= d8sq {
			c.xtm[n8] = c.xtm[k]
			c.ytm[n8] = c.ytm[k]
			p := idx[k]
			final[p.j] = p.i
			if p.i < len(c.seq1) && p.j < len(c.seq2) && c.seq1[p.i] == c.seq2[p.j] {
				identical++
			}
			n8++
		}
	}
	c.ops.AddScore(nAli)
	if n8 < 3 {
		// Pathological: keep the unfiltered alignment.
		n8 = nAli
		copy(final, invmap)
	}

	res.AlignedLen = n8
	res.Invmap = final
	res.SeqID = float64(identical) / float64(n8)

	// RMSD over the kept pairs.
	trFit, rmsd := geom.Superpose(c.xtm[:n8], c.ytm[:n8])
	c.ops.AddKabsch(n8)
	res.RMSD = rmsd

	// Final TM-scores normalised by each chain length, searched at the
	// final (fine) step over the kept pairs.
	pA := tmscore.FinalParams(float64(c.xlen))
	tmA, trA := pA.SearchWS(c.w, c.xtm[:n8], c.ytm[:n8], c.opt.FinalStep, c.ops)
	pB := tmscore.FinalParams(float64(c.ylen))
	tmB, _ := pB.SearchWS(c.w, c.xtm[:n8], c.ytm[:n8], c.opt.FinalStep, c.ops)
	res.TM1 = tmA
	res.TM2 = tmB

	// Extra user-requested normalisation (-L / -a / -d flags of the
	// reference implementation).
	if c.opt.NormLength > 0 || c.opt.NormAvg {
		l := float64(c.opt.NormLength)
		if c.opt.NormAvg && c.opt.NormLength <= 0 {
			l = float64(c.xlen+c.ylen) / 2
		}
		pN := tmscore.FinalParams(l)
		if c.opt.D0 > 0 {
			pN.D0 = c.opt.D0
		}
		res.TMNorm, _ = pN.SearchWS(c.w, c.xtm[:n8], c.ytm[:n8], c.opt.FinalStep, c.ops)
	}
	if c.xlen >= c.ylen {
		res.Transform = trA
	} else {
		res.Transform = trFit
	}
	res.Ops = *c.ops
	return res
}
