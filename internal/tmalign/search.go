package tmalign

import (
	"rckalign/internal/geom"
)

// detailedSearch gathers the aligned pairs of invmap and runs the
// TM-score rotation search over them (TM-align's detailed_search with the
// configured simplify step). Returns the TM-score (search normalization)
// and the rotation achieving it.
func (c *ctx) detailedSearch(invmap []int) (float64, geom.Transform) {
	n := alignedPairs(c.x, c.y, invmap, c.xtm, c.ytm)
	if n == 0 {
		return 0, geom.IdentityTransform()
	}
	return c.sp.Search(c.xtm[:n], c.ytm[:n], c.opt.SimplifyStep, c.ops)
}

// scoreFast is TM-align's get_score_fast: a cheap three-round estimate of
// an alignment's TM-score used to rank candidate alignments (the returned
// value is un-normalised; only comparisons against other scoreFast values
// are meaningful).
func (c *ctx) scoreFast(invmap []int) float64 {
	n := 0
	for j, i := range invmap {
		if i >= 0 {
			c.r1[n] = c.x[i]
			c.r2[n] = c.y[j]
			n++
		}
	}
	if n < 3 {
		return 0
	}
	xtm := c.xtm[:n]
	ytm := c.ytm[:n]
	copy(xtm, c.r1[:n])
	copy(ytm, c.r2[:n])

	tr, _ := geom.Superpose(c.r1[:n], c.r2[:n])
	c.ops.AddKabsch(n)

	d02 := c.sp.D0 * c.sp.D0
	d002 := c.sp.D0Search * c.sp.D0Search

	score := 0.0
	for k := 0; k < n; k++ {
		di := tr.Apply(xtm[k]).Dist2(ytm[k])
		c.dis2[k] = di
		score += 1 / (1 + di/d02)
	}
	c.ops.AddScore(n)
	c.ops.AddRotate(n)

	// Round 2: re-fit on pairs within d0Search.
	refit := func(cut2 float64) (float64, bool) {
		j := 0
		for cutoff := cut2; ; cutoff += 0.5 {
			j = 0
			for k := 0; k < n; k++ {
				if c.dis2[k] <= cutoff {
					c.r1[j] = xtm[k]
					c.r2[j] = ytm[k]
					j++
				}
			}
			if j >= 3 || n <= 3 {
				break
			}
		}
		if j == n {
			return score, false // nothing filtered; no improvement possible
		}
		if j < 3 {
			return score, false
		}
		tr, _ := geom.Superpose(c.r1[:j], c.r2[:j])
		c.ops.AddKabsch(j)
		s := 0.0
		for k := 0; k < n; k++ {
			di := tr.Apply(xtm[k]).Dist2(ytm[k])
			c.dis2[k] = di
			s += 1 / (1 + di/d02)
		}
		c.ops.AddScore(n)
		c.ops.AddRotate(n)
		return s, true
	}

	if s2, improvedPossible := refit(d002); improvedPossible {
		if s2 > score {
			score = s2
		}
		if s3, _ := refit(d002 + 1); s3 > score {
			score = s3
		}
	}
	return score
}

// dpIter is TM-align's DP_iter: starting from an alignment and its
// rotation, alternately (a) build a score matrix from the rotated
// inter-chain distances and run NWDP, and (b) re-search the rotation for
// the new alignment, keeping the best TM-score seen. Both gap-opening
// settings (-0.6 and 0) are explored.
func (c *ctx) dpIter(invmap0 []int, tr geom.Transform, maxIter int) (float64, geom.Transform, []int) {
	bestTM := -1.0
	bestTr := tr
	best := append([]int(nil), invmap0...)

	d02 := c.sp.D0 * c.sp.D0
	xt := c.xt[:c.xlen]

	for _, gapOpen := range [2]float64{-0.6, 0} {
		cur := tr
		tmOld := 0.0
		for iter := 0; iter < maxIter; iter++ {
			// Score matrix from current rotation.
			cur.ApplyAll(xt, c.x)
			c.ops.AddRotate(c.xlen)
			for i := 0; i < c.xlen; i++ {
				row := i * c.ylen
				for j := 0; j < c.ylen; j++ {
					c.scoreMat[row+j] = 1 / (1 + xt[i].Dist2(c.y[j])/d02)
				}
			}
			c.ops.AddScore(c.xlen * c.ylen)

			c.nw.Align(c.xlen, c.ylen, func(i, j int) float64 {
				return c.scoreMat[i*c.ylen+j]
			}, gapOpen, c.invTmp, c.ops)

			tm, trNew := c.detailedSearch(c.invTmp)
			if tm > bestTM {
				bestTM = tm
				bestTr = trNew
				copy(best, c.invTmp)
			}
			cur = trNew
			if iter > 0 && abs(tm-tmOld) < 1e-6 {
				break
			}
			tmOld = tm
		}
	}
	return bestTM, bestTr, best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// alignedPairs copies the aligned coordinate pairs of invmap into dstX,
// dstY and returns the pair count.
func alignedPairs(x, y []geom.Vec3, invmap []int, dstX, dstY []geom.Vec3) int {
	n := 0
	for j, i := range invmap {
		if i >= 0 {
			dstX[n] = x[i]
			dstY[n] = y[j]
			n++
		}
	}
	return n
}
