package tmalign

import (
	"rckalign/internal/geom"
)

// detailedSearch gathers the aligned pairs of invmap and runs the
// TM-score rotation search over them (TM-align's detailed_search with the
// configured simplify step). Returns the TM-score (search normalization)
// and the rotation achieving it.
func (c *ctx) detailedSearch(invmap []int) (float64, geom.Transform) {
	n := alignedPairs(c.x, c.y, invmap, c.xtm, c.ytm)
	if n == 0 {
		return 0, geom.IdentityTransform()
	}
	return c.sp.SearchWS(c.w, c.xtm[:n], c.ytm[:n], c.opt.SimplifyStep, c.ops)
}

// scoreFast is TM-align's get_score_fast: a cheap three-round estimate of
// an alignment's TM-score used to rank candidate alignments (the returned
// value is un-normalised; only comparisons against other scoreFast values
// are meaningful).
func (c *ctx) scoreFast(invmap []int) float64 {
	n := 0
	for j, i := range invmap {
		if i >= 0 {
			c.r1[n] = c.x[i]
			c.r2[n] = c.y[j]
			n++
		}
	}
	if n < 3 {
		return 0
	}
	xtm := c.xtm[:n]
	ytm := c.ytm[:n]
	copy(xtm, c.r1[:n])
	copy(ytm, c.r2[:n])

	d02 := c.sp.D0 * c.sp.D0
	d002 := c.sp.D0Search * c.sp.D0Search
	dis2 := c.dis2[:n]

	// scorePass rotates xtm under tr and accumulates the TM sum, caching
	// squared distances; the transform is hoisted into scalars in
	// Apply/Dist2 evaluation order (bit-identical to the method chain).
	scorePass := func(tr geom.Transform) float64 {
		r00, r01, r02 := tr.R[0][0], tr.R[0][1], tr.R[0][2]
		r10, r11, r12 := tr.R[1][0], tr.R[1][1], tr.R[1][2]
		r20, r21, r22 := tr.R[2][0], tr.R[2][1], tr.R[2][2]
		tx, ty, tz := tr.T[0], tr.T[1], tr.T[2]
		s := 0.0
		for k := 0; k < n; k++ {
			a, b := &xtm[k], &ytm[k]
			px, py, pz := a[0], a[1], a[2]
			dx := r00*px + r01*py + r02*pz + tx - b[0]
			dy := r10*px + r11*py + r12*pz + ty - b[1]
			dz := r20*px + r21*py + r22*pz + tz - b[2]
			di := dx*dx + dy*dy + dz*dz
			dis2[k] = di
			s += 1 / (1 + di/d02)
		}
		c.ops.AddScore(n)
		c.ops.AddRotate(n)
		return s
	}

	tr, _ := geom.Superpose(c.r1[:n], c.r2[:n])
	c.ops.AddKabsch(n)
	score := scorePass(tr)

	// Round 2: re-fit on pairs within d0Search.
	refit := func(cut2 float64) (float64, bool) {
		j := 0
		for cutoff := cut2; ; cutoff += 0.5 {
			j = 0
			for k := 0; k < n; k++ {
				if dis2[k] <= cutoff {
					c.r1[j] = xtm[k]
					c.r2[j] = ytm[k]
					j++
				}
			}
			if j >= 3 || n <= 3 {
				break
			}
		}
		if j == n {
			return score, false // nothing filtered; no improvement possible
		}
		if j < 3 {
			return score, false
		}
		tr, _ := geom.Superpose(c.r1[:j], c.r2[:j])
		c.ops.AddKabsch(j)
		return scorePass(tr), true
	}

	if s2, improvedPossible := refit(d002); improvedPossible {
		if s2 > score {
			score = s2
		}
		if s3, _ := refit(d002 + 1); s3 > score {
			score = s3
		}
	}
	return score
}

// dpIter is TM-align's DP_iter: starting from an alignment and its
// rotation, alternately (a) build a score matrix from the rotated
// inter-chain distances and run NWDP, and (b) re-search the rotation for
// the new alignment, keeping the best TM-score seen. Both gap-opening
// settings (-0.6 and 0) are explored.
func (c *ctx) dpIter(invmap0 []int, tr geom.Transform, maxIter int) (float64, geom.Transform, []int) {
	bestTM := -1.0
	bestTr := tr
	best := c.w.InvDP[:c.ylen]
	copy(best, invmap0)

	d02 := c.sp.D0 * c.sp.D0
	xt := c.xt[:c.xlen]

	for _, gapOpen := range [2]float64{-0.6, 0} {
		cur := tr
		tmOld := 0.0
		for iter := 0; iter < maxIter; iter++ {
			// Score matrix from current rotation.
			cur.ApplyAll(xt, c.x)
			c.ops.AddRotate(c.xlen)
			c.fillDistMatrix(xt, d02, false)
			c.ops.AddScore(c.xlen * c.ylen)

			c.nw.AlignMatrix(c.xlen, c.ylen, c.scoreMat, gapOpen, c.invTmp, c.ops)

			tm, trNew := c.detailedSearch(c.invTmp)
			if tm > bestTM {
				bestTM = tm
				bestTr = trNew
				copy(best, c.invTmp)
			}
			cur = trNew
			if iter > 0 && abs(tm-tmOld) < 1e-6 {
				break
			}
			tmOld = tm
		}
	}
	return bestTM, bestTr, best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// fillDistMatrix fills c.scoreMat with 1/(1+d^2/d2) for every (i, j)
// pair of the rotated chain xt against the fixed chain, reading the
// fixed chain through its SoA mirror (one contiguous stream per axis).
// With ssBonus, pairs with matching secondary structure score +0.5
// (get_initial_ssplus's mixed matrix). The distance arithmetic follows
// Vec3.Dist2's evaluation order, so the default float64 fill is
// bit-identical to the naive xt[i].Dist2(y[j]) loop; the opt-in float32
// path trades that exactness for narrower arithmetic.
func (c *ctx) fillDistMatrix(xt []geom.Vec3, d2 float64, ssBonus bool) {
	if c.opt.Float32 {
		c.fillDistMatrix32(xt, d2, ssBonus)
		return
	}
	ylen := c.ylen
	yx := c.w.YX[:ylen]
	yy := c.w.YY[:ylen]
	yz := c.w.YZ[:ylen]
	for i := 0; i < c.xlen; i++ {
		p := &xt[i]
		px, py, pz := p[0], p[1], p[2]
		row := c.scoreMat[i*ylen : i*ylen+ylen]
		if ssBonus {
			s1 := c.sec1[i]
			sec2 := c.sec2
			for j := range row {
				dx, dy, dz := px-yx[j], py-yy[j], pz-yz[j]
				di := dx*dx + dy*dy + dz*dz
				s := 1 / (1 + di/d2)
				if s1 == sec2[j] {
					s += 0.5
				}
				row[j] = s
			}
		} else {
			for j := range row {
				dx, dy, dz := px-yx[j], py-yy[j], pz-yz[j]
				di := dx*dx + dy*dy + dz*dz
				row[j] = 1 / (1 + di/d2)
			}
		}
	}
}

// fillDistMatrix32 is the float32 fast path of fillDistMatrix: distances
// and scores are computed in single precision and widened on store. Only
// the DP score matrix is affected — superposition and TM-scores stay
// float64 — so drift is bounded to near-tied alignment choices.
func (c *ctx) fillDistMatrix32(xt []geom.Vec3, d2 float64, ssBonus bool) {
	ylen := c.ylen
	yx := c.w.YX32[:ylen]
	yy := c.w.YY32[:ylen]
	yz := c.w.YZ32[:ylen]
	d232 := float32(d2)
	for i := 0; i < c.xlen; i++ {
		p := &xt[i]
		px, py, pz := float32(p[0]), float32(p[1]), float32(p[2])
		row := c.scoreMat[i*ylen : i*ylen+ylen]
		if ssBonus {
			s1 := c.sec1[i]
			sec2 := c.sec2
			for j := range row {
				dx, dy, dz := px-yx[j], py-yy[j], pz-yz[j]
				di := dx*dx + dy*dy + dz*dz
				s := 1 / (1 + di/d232)
				if s1 == sec2[j] {
					s += 0.5
				}
				row[j] = float64(s)
			}
		} else {
			for j := range row {
				dx, dy, dz := px-yx[j], py-yy[j], pz-yz[j]
				di := dx*dx + dy*dy + dz*dz
				row[j] = float64(1 / (1 + di/d232))
			}
		}
	}
}

// alignedPairs copies the aligned coordinate pairs of invmap into dstX,
// dstY and returns the pair count.
func alignedPairs(x, y []geom.Vec3, invmap []int, dstX, dstY []geom.Vec3) int {
	n := 0
	for j, i := range invmap {
		if i >= 0 {
			dstX[n] = x[i]
			dstY[n] = y[j]
			n++
		}
	}
	return n
}
