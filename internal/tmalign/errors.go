// Kernel error boundary: the numeric kernels (geom, tmscore, seqalign)
// panic on precondition violations — the right behaviour on the
// simulator's hot path, where such a violation is a scheduler bug. A
// long-lived service cannot crash on one degenerate upload, so the
// kernels panic with errors wrapping typed sentinels, and TryCompare is
// the recovery boundary that turns exactly those panics back into
// ordinary errors while re-raising anything else.
package tmalign

import (
	"errors"
	"fmt"
	"math"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
	"rckalign/internal/tmscore"
)

// ErrDegenerateStructure reports a structure the kernel cannot align
// meaningfully: fewer than 3 CA residues or non-finite coordinates.
var ErrDegenerateStructure = errors.New("tmalign: degenerate structure")

// kernelSentinels are the typed precondition errors the kernels panic
// with. Anything not wrapping one of these is a genuine bug and must
// keep crashing.
var kernelSentinels = []error{
	ErrDegenerateStructure,
	geom.ErrPointMismatch,
	geom.ErrNoPoints,
	tmscore.ErrAlignedLength,
	seqalign.ErrInvmapLength,
}

// IsKernelError reports whether err wraps one of the kernel's typed
// input-validation sentinels — the class of failures a server maps to
// an unprocessable-input response rather than a crash.
func IsKernelError(err error) bool {
	for _, s := range kernelSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// ValidateStructure rejects inputs the kernel cannot align: fewer than
// 3 CA residues, or any non-finite CA coordinate (PDB files can
// legally parse "NaN" into a coordinate column). The returned error
// wraps ErrDegenerateStructure.
func ValidateStructure(st *pdb.Structure) error {
	cas := st.CAs()
	if len(cas) < 3 {
		return fmt.Errorf("%w: %q has %d CA residues, need >= 3", ErrDegenerateStructure, st.ID, len(cas))
	}
	for i, v := range cas {
		for _, c := range v {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("%w: %q has a non-finite CA coordinate at residue %d", ErrDegenerateStructure, st.ID, i)
			}
		}
	}
	return nil
}

// TryCompare is Compare behind the kernel error boundary: it validates
// both structures (ErrDegenerateStructure), runs the comparison, and
// converts kernel-sentinel panics into returned errors. Panics that do
// not wrap a kernel sentinel — genuine bugs — propagate unchanged.
func TryCompare(s1, s2 *pdb.Structure, opt Options) (r *Result, err error) {
	if err := ValidateStructure(s1); err != nil {
		return nil, err
	}
	if err := ValidateStructure(s2); err != nil {
		return nil, err
	}
	defer recoverKernel(s1.ID, s2.ID, &err)
	return Compare(s1, s2, opt), nil
}

// recoverKernel converts a kernel-sentinel panic into *err; anything
// else propagates unchanged.
func recoverKernel(id1, id2 string, err *error) {
	if rec := recover(); rec != nil {
		if e, ok := rec.(error); ok && IsKernelError(e) {
			*err = fmt.Errorf("tmalign: %s vs %s: %w", id1, id2, e)
			return
		}
		panic(rec)
	}
}
