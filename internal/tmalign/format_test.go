package tmalign

import (
	"strings"
	"testing"

	"rckalign/internal/synth"
)

func TestFormatAlignmentSelf(t *testing.T) {
	s := helixProtein("p", 60, 40)
	r := Compare(s, s, FastOptions())
	out := FormatAlignment(r, s, s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("alignment has %d lines", len(lines))
	}
	if lines[0] != lines[2] {
		t.Error("self alignment rows differ")
	}
	if strings.Contains(lines[0], "-") {
		t.Error("self alignment should have no gaps")
	}
	// All pairs close: marker line all ':'.
	if strings.Trim(lines[1], ":") != "" {
		t.Errorf("marker line not all colons: %q", lines[1])
	}
	if len(lines[0]) != s.Len() {
		t.Errorf("alignment width %d, want %d", len(lines[0]), s.Len())
	}
}

func TestFormatAlignmentWithGaps(t *testing.T) {
	a := helixProtein("a", 80, 41)
	b := synth.Perturb(a, "b", synth.PerturbOptions{Noise: 1.0, Indels: 2}, 42)
	r := Compare(a, b, DefaultOptions())
	out := FormatAlignment(r, a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("alignment has %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("ragged alignment: %d/%d/%d", len(lines[0]), len(lines[1]), len(lines[2]))
	}
	// Every chain-1 and chain-2 residue must appear exactly once.
	if n := len(strings.ReplaceAll(lines[0], "-", "")); n != a.Len() {
		t.Errorf("chain 1 emitted %d of %d residues", n, a.Len())
	}
	if n := len(strings.ReplaceAll(lines[2], "-", "")); n != b.Len() {
		t.Errorf("chain 2 emitted %d of %d residues", n, b.Len())
	}
	// No column may have gaps on both sides.
	for i := range lines[0] {
		if lines[0][i] == '-' && lines[2][i] == '-' {
			t.Fatalf("double gap at column %d", i)
		}
	}
	// Marker colons must match AlignmentColumns' close count.
	_, close := AlignmentColumns(r, a, b)
	if got := strings.Count(lines[1], ":"); got != close {
		t.Errorf("marker colons %d != close pairs %d", got, close)
	}
}

func TestFormatAlignmentMismatchedStructures(t *testing.T) {
	a := helixProtein("a", 50, 43)
	b := helixProtein("b", 60, 44)
	r := Compare(a, b, FastOptions())
	if out := FormatAlignment(r, b, a); !strings.Contains(out, "unavailable") {
		t.Error("mismatched structures should be rejected")
	}
}

func TestAlignmentColumnsBounds(t *testing.T) {
	a := helixProtein("a", 50, 45)
	b := synth.Perturb(a, "b", synth.PerturbOptions{Noise: 1.2}, 46)
	r := Compare(a, b, FastOptions())
	aligned, close := AlignmentColumns(r, a, b)
	if aligned < close {
		t.Errorf("aligned %d < close %d", aligned, close)
	}
	if aligned == 0 {
		t.Error("no aligned columns")
	}
}
