package tmalign

import (
	"math"
	"math/rand"
	"testing"

	"rckalign/internal/geom"
	"rckalign/internal/synth"
)

// TestFloat32OptionsKey pins the cache-key contract of the fast path:
// float32 runs get a distinct kernel key (so memoized results and disk
// caches never mix precisions), while the default key is unchanged from
// the pre-float32 era (committed caches stay valid).
func TestFloat32OptionsKey(t *testing.T) {
	def := DefaultOptions()
	f32 := def
	f32.Float32 = true
	if def.Key() == f32.Key() {
		t.Fatalf("float32 options share the default key %q", def.Key())
	}
	if got := f32.Key(); got != def.Key()+":f32" {
		t.Errorf("float32 key = %q, want default key + \":f32\"", got)
	}
}

// TestFloat32DriftOnCK34 is the golden drift report for the opt-in
// float32 DP fast path: over a CK34 subset it quantifies how far the
// reduced-precision score matrices move the final (float64-scored)
// results. The final TM-scores are always computed in float64 — only
// the initial-alignment DP matrices narrow — so drift appears only when
// a near-tie in the DP flips an alignment decision. The bounds are
// deliberately loose upper limits; the log line is the actual report.
func TestFloat32DriftOnCK34(t *testing.T) {
	if testing.Short() {
		t.Skip("compares a 12-structure CK34 subset under two precisions")
	}
	ds := synth.CK34()
	const n = 12 // 66 pairs: every family pairing is represented
	optF64 := DefaultOptions()
	optF32 := DefaultOptions()
	optF32.Float32 = true

	var maxDrift float64
	drifted := 0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs++
			r64 := Compare(ds.Structures[i], ds.Structures[j], optF64)
			r32 := Compare(ds.Structures[i], ds.Structures[j], optF32)
			d := math.Max(math.Abs(r64.TM1-r32.TM1), math.Abs(r64.TM2-r32.TM2))
			if d > maxDrift {
				maxDrift = d
			}
			if d != 0 {
				drifted++
			}
			// The ops charge must be identical: the float32 path changes
			// arithmetic, not the amount of simulated work.
			if r64.Ops.DPCells != r32.Ops.DPCells || r64.Ops.ScoreEvals != r32.Ops.ScoreEvals {
				t.Errorf("pair %d/%d: float32 changed the ops charge: DP %d vs %d, score %d vs %d",
					i, j, r64.Ops.DPCells, r32.Ops.DPCells, r64.Ops.ScoreEvals, r32.Ops.ScoreEvals)
			}
		}
	}
	t.Logf("float32 drift over %d pairs: max |dTM| = %.2e, %d pairs drifted at all", pairs, maxDrift, drifted)
	if maxDrift > 0.01 {
		t.Errorf("max float32 TM drift %.4f exceeds 0.01 — the fast path is no longer near-exact", maxDrift)
	}
}

// TestFillDistMatrix32UsesSinglePrecision proves the Float32 option
// actually reaches the narrow arithmetic (a regression here would make
// the drift test above pass vacuously): the float32 fill's cells are
// exactly the widened single-precision results, and on random inputs at
// least some cells differ from the float64 fill in the low bits.
func TestFillDistMatrix32UsesSinglePrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := make([]geom.Vec3, 20)
	y := make([]geom.Vec3, 25)
	for i := range x {
		x[i] = geom.V(rng.NormFloat64()*20, rng.NormFloat64()*20, rng.NormFloat64()*20)
	}
	for j := range y {
		y[j] = geom.V(rng.NormFloat64()*20, rng.NormFloat64()*20, rng.NormFloat64()*20)
	}
	c := newCtx(t, x, y)
	c.w.Reserve32(len(y))
	for j := range y {
		c.w.YX32[j] = float32(y[j][0])
		c.w.YY32[j] = float32(y[j][1])
		c.w.YZ32[j] = float32(y[j][2])
	}
	const d2 = 17.5
	c.fillDistMatrix(x, d2, false)
	f64 := append([]float64(nil), c.scoreMat...)

	c.opt.Float32 = true
	c.fillDistMatrix(x, d2, false)

	differ := 0
	for i := range x {
		for j := range y {
			got := c.scoreMat[i*len(y)+j]
			dx := float32(x[i][0]) - float32(y[j][0])
			dy := float32(x[i][1]) - float32(y[j][1])
			dz := float32(x[i][2]) - float32(y[j][2])
			want := float64(1 / (1 + (dx*dx+dy*dy+dz*dz)/float32(d2)))
			if got != want {
				t.Fatalf("cell (%d,%d) = %v, want the widened float32 value %v", i, j, got, want)
			}
			if got != f64[i*len(y)+j] {
				differ++
			}
			if math.Abs(got-f64[i*len(y)+j]) > 1e-5 {
				t.Fatalf("cell (%d,%d): float32 %v too far from float64 %v", i, j, got, f64[i*len(y)+j])
			}
		}
	}
	if differ == 0 {
		t.Error("float32 fill produced bit-identical cells to float64 on random inputs — is the narrow path wired?")
	}
}
