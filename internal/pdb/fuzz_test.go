package pdb

import (
	"strings"
	"testing"
)

// FuzzParse exercises the PDB parser with arbitrary input: it must never
// panic, and any structure it does return must be internally consistent.
func FuzzParse(f *testing.F) {
	f.Add(samplePDB)
	f.Add("ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C\nEND\n")
	f.Add("HETATM    2  CA  MSE A   2       3.800   0.000   0.000  1.00  0.00           C\n")
	f.Add("MODEL 1\nENDMDL\n")
	f.Add("")
	f.Add("ATOM")
	f.Add("ATOM      1  CA  ALA A   x       0.000   0.000   0.000")
	f.Add(strings.Repeat("ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Error("Parse returned an empty structure without error")
		}
		if len(s.Sequence()) != s.Len() {
			t.Error("sequence length mismatch")
		}
		for _, r := range s.Residues {
			if len(r.Name) > 3 {
				t.Errorf("residue name %q too long", r.Name)
			}
		}
	})
}
