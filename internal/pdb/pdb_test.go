package pdb

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rckalign/internal/geom"
)

const samplePDB = `HEADER    TEST PROTEIN
ATOM      1  N   MET A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  MET A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  C   MET A   1      10.714   6.805  -4.175  1.00  0.00           C
ATOM      4  CA  ALA A   2       9.580   6.000  -3.655  1.00  0.00           C
ATOM      5  CA AGLY A   3       8.580   5.000  -2.655  0.50  0.00           C
ATOM      6  CA BGLY A   3       8.680   5.100  -2.755  0.50  0.00           C
ATOM      7  CA  TRP A   4       7.580   4.000  -1.655  1.00  0.00           C
TER
ATOM      8  CA  ALA B   1       1.000   2.000   3.000  1.00  0.00           C
END
`

func TestParseFirstChainCAOnly(t *testing.T) {
	s, err := Parse(strings.NewReader(samplePDB), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (chain A CAs, altloc A only)", s.Len())
	}
	if s.Chain != 'A' {
		t.Errorf("Chain = %c, want A", s.Chain)
	}
	if got := s.Sequence(); got != "MAGW" {
		t.Errorf("Sequence = %q, want MAGW", got)
	}
	want := geom.V(11.639, 6.071, -5.147)
	if s.Residues[0].CA != want {
		t.Errorf("first CA = %v, want %v", s.Residues[0].CA, want)
	}
	if s.Residues[2].CA != geom.V(8.580, 5.000, -2.655) {
		t.Errorf("altloc A should be kept, got %v", s.Residues[2].CA)
	}
}

func TestParseStopsAtENDMDL(t *testing.T) {
	in := `MODEL        1
ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C
ATOM      2  CA  GLY A   2       3.800   0.000   0.000  1.00  0.00           C
ENDMDL
MODEL        2
ATOM      3  CA  ALA A   1       9.000   9.000   9.000  1.00  0.00           C
ENDMDL
END
`
	s, err := Parse(strings.NewReader(in), "m")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (first model only)", s.Len())
	}
}

func TestParseNewChainWithoutTER(t *testing.T) {
	in := `ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C
ATOM      2  CA  GLY B   1       3.800   0.000   0.000  1.00  0.00           C
END
`
	s, err := Parse(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Chain != 'A' {
		t.Fatalf("want only chain A residue, got %d residues chain %c", s.Len(), s.Chain)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("HEADER only\nEND\n"), "empty"); err == nil {
		t.Error("expected error for structure without CA atoms")
	}
	bad := "ATOM      1  CA  ALA A   1       xxx.000   0.000   0.000\n"
	if _, err := Parse(strings.NewReader(bad), "bad"); err == nil {
		t.Error("expected error for bad coordinate")
	}
	short := "ATOM      1  CA  ALA A 1\n"
	if _, err := Parse(strings.NewReader(short), "short"); err == nil {
		t.Error("expected error for short ATOM record")
	}
}

func TestParseDuplicateResidueSkipped(t *testing.T) {
	in := `ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C
ATOM      2  CA  ALA A   1       1.000   0.000   0.000  1.00  0.00           C
END
`
	s, err := Parse(strings.NewReader(in), "dup")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicate residue should be skipped, got %d", s.Len())
	}
}

func TestOneThreeLetterCodes(t *testing.T) {
	if OneLetter("ala") != 'A' || OneLetter(" GLY") != 'G' {
		t.Error("OneLetter should be case/space insensitive")
	}
	if OneLetter("ZZZ") != 'X' {
		t.Error("unknown residue should map to X")
	}
	if ThreeLetter('W') != "TRP" {
		t.Errorf("ThreeLetter(W) = %s", ThreeLetter('W'))
	}
	if ThreeLetter('M') != "MET" {
		t.Errorf("ThreeLetter(M) = %s, want MET (not MSE)", ThreeLetter('M'))
	}
	if ThreeLetter('?') != "UNK" {
		t.Error("unknown code should map to UNK")
	}
	// Round trip for the 20 standard residues.
	for _, aa := range []byte("ARNDCQEGHILKMFPSTWYV") {
		if OneLetter(ThreeLetter(aa)) != aa {
			t.Errorf("round trip failed for %c", aa)
		}
	}
}

func randomStructure(rng *rand.Rand, n int) *Structure {
	aas := "ARNDCQEGHILKMFPSTWYV"
	pts := make([]geom.Vec3, n)
	seq := make([]byte, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*100-50, rng.Float64()*100-50, rng.Float64()*100-50)
		seq[i] = aas[rng.Intn(len(aas))]
	}
	return FromCAs("rt", pts, string(seq))
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomStructure(rng, 80)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), s.Len())
	}
	if got.Sequence() != s.Sequence() {
		t.Fatalf("round trip sequence mismatch")
	}
	for i := range s.Residues {
		if got.Residues[i].CA.Dist(s.Residues[i].CA) > 1e-3 {
			t.Fatalf("residue %d coordinate drift: %v vs %v", i, got.Residues[i].CA, s.Residues[i].CA)
		}
	}
}

func TestWriteParseFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(10))
	s := randomStructure(rng, 30)
	path := filepath.Join(dir, "prot.pdb")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "prot" {
		t.Errorf("ID = %q, want file stem", got.ID)
	}
	if got.Len() != s.Len() {
		t.Errorf("length mismatch %d vs %d", got.Len(), s.Len())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile(filepath.Join(t.TempDir(), "nope.pdb")); !os.IsNotExist(err) {
		t.Errorf("want not-exist error, got %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromCAs("orig", []geom.Vec3{{0, 0, 0}, {1, 1, 1}}, "AG")
	c := s.Clone()
	c.Residues[0].CA = geom.V(9, 9, 9)
	if s.Residues[0].CA == c.Residues[0].CA {
		t.Error("Clone shares residue storage with original")
	}
}

func TestCAsCopies(t *testing.T) {
	s := FromCAs("c", []geom.Vec3{{1, 2, 3}}, "A")
	pts := s.CAs()
	pts[0] = geom.V(0, 0, 0)
	if s.Residues[0].CA != geom.V(1, 2, 3) {
		t.Error("CAs must return a copy")
	}
}

func TestFromCAsSeqPadding(t *testing.T) {
	s := FromCAs("p", make([]geom.Vec3, 3), "G")
	if got := s.Sequence(); got != "GAA" {
		t.Errorf("Sequence = %q, want GAA (padded)", got)
	}
}

func TestParseHETATMSelenomethionine(t *testing.T) {
	in := `ATOM      1  CA  ALA A   1       0.000   0.000   0.000  1.00  0.00           C
HETATM    2  CA  MSE A   2       3.800   0.000   0.000  1.00  0.00           C
HETATM    3  O   HOH A 100      99.000  99.000  99.000  1.00  0.00           O
HETATM    4 CA    CA A 101      50.000  50.000  50.000  1.00  0.00          CA
ATOM      5  CA  GLY A   3       7.600   0.000   0.000  1.00  0.00           C
END
`
	s, err := Parse(strings.NewReader(in), "mse")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (ALA, MSE, GLY; water and calcium ion skipped)", s.Len())
	}
	if got := s.Sequence(); got != "AMG" {
		t.Errorf("Sequence = %q, want AMG (MSE reads as M)", got)
	}
}

func TestParseInsertionCodes(t *testing.T) {
	// Residues 52 and 52A are distinct positions (antibody numbering).
	in := `ATOM      1  CA  ALA A  52       0.000   0.000   0.000  1.00  0.00           C
ATOM      2  CA  GLY A  52A      3.800   0.000   0.000  1.00  0.00           C
ATOM      3  CA  TRP A  53       7.600   0.000   0.000  1.00  0.00           C
END
`
	s, err := Parse(strings.NewReader(in), "icode")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (insertion code makes 52A distinct)", s.Len())
	}
	if got := s.Sequence(); got != "AGW" {
		t.Errorf("Sequence = %q", got)
	}
}

func TestWriteFASTA(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomStructure(rng, 70)
	a.ID = "protA"
	b := randomStructure(rng, 10)
	b.ID = "protB"
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// protA: header + 2 sequence lines (60 + 10); protB: header + 1.
	if len(lines) != 5 {
		t.Fatalf("FASTA lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != ">protA" || lines[3] != ">protB" {
		t.Errorf("headers wrong:\n%s", out)
	}
	if len(lines[1]) != 60 || len(lines[2]) != 10 {
		t.Errorf("wrapping wrong: %d/%d", len(lines[1]), len(lines[2]))
	}
	if lines[1]+lines[2] != a.Sequence() {
		t.Error("sequence mangled")
	}
}
