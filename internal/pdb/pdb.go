// Package pdb implements the subset of the Protein Data Bank file format
// needed for protein structure comparison: parsing ATOM records into a CA
// (alpha-carbon) trace for the first chain of the first model, and writing
// structures back out. This mirrors how the paper's datasets were prepared
// ("the first chain of the first model" of each entry).
package pdb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rckalign/internal/geom"
)

// Residue is one amino acid position in a chain, reduced to the fields the
// comparison algorithms consume.
type Residue struct {
	// Seq is the residue sequence number from the PDB file.
	Seq int
	// Name is the three-letter residue name (e.g. "ALA").
	Name string
	// AA is the one-letter amino acid code derived from Name.
	AA byte
	// CA is the position of the alpha carbon.
	CA geom.Vec3
}

// Structure is a single-chain protein structure: an ordered CA trace.
type Structure struct {
	// ID names the structure (file stem or synthetic identifier).
	ID string
	// Chain is the chain identifier the trace was taken from.
	Chain byte
	// Residues holds the ordered CA trace.
	Residues []Residue
}

// Len returns the number of residues.
func (s *Structure) Len() int { return len(s.Residues) }

// CAs returns the CA coordinates as a freshly allocated slice.
func (s *Structure) CAs() []geom.Vec3 {
	pts := make([]geom.Vec3, len(s.Residues))
	for i, r := range s.Residues {
		pts[i] = r.CA
	}
	return pts
}

// Sequence returns the one-letter amino acid sequence.
func (s *Structure) Sequence() string {
	b := make([]byte, len(s.Residues))
	for i, r := range s.Residues {
		b[i] = r.AA
	}
	return string(b)
}

// Clone returns a deep copy of the structure.
func (s *Structure) Clone() *Structure {
	c := &Structure{ID: s.ID, Chain: s.Chain, Residues: make([]Residue, len(s.Residues))}
	copy(c.Residues, s.Residues)
	return c
}

// threeToOne maps three-letter residue names to one-letter codes,
// following the TM-align convention (non-standard residues map to 'X').
var threeToOne = map[string]byte{
	"ALA": 'A', "ARG": 'R', "ASN": 'N', "ASP": 'D', "CYS": 'C',
	"GLN": 'Q', "GLU": 'E', "GLY": 'G', "HIS": 'H', "ILE": 'I',
	"LEU": 'L', "LYS": 'K', "MET": 'M', "PHE": 'F', "PRO": 'P',
	"SER": 'S', "THR": 'T', "TRP": 'W', "TYR": 'Y', "VAL": 'V',
	"MSE": 'M', "ASX": 'B', "GLX": 'Z', "UNK": 'X',
}

var oneToThree = map[byte]string{}

func init() {
	for k, v := range threeToOne {
		if _, dup := oneToThree[v]; !dup {
			oneToThree[v] = k
		}
	}
	// Prefer the canonical names over alternates for the reverse map.
	oneToThree['M'] = "MET"
}

// OneLetter converts a three-letter residue name to its one-letter code.
// Unknown names yield 'X'.
func OneLetter(name string) byte {
	if c, ok := threeToOne[strings.ToUpper(strings.TrimSpace(name))]; ok {
		return c
	}
	return 'X'
}

// ThreeLetter converts a one-letter amino acid code to a three-letter
// residue name. Unknown codes yield "UNK".
func ThreeLetter(aa byte) string {
	if n, ok := oneToThree[aa]; ok {
		return n
	}
	return "UNK"
}

// ParseError describes a malformed record encountered while parsing.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("pdb: line %d: %s", e.Line, e.Msg) }

// Parse reads a PDB stream and extracts the CA trace of the first chain of
// the first model, the same preprocessing the paper applies to its
// datasets. Records after ENDMDL or after the chain's TER are ignored.
// Alternate locations other than ' ' or 'A' are skipped, as are duplicate
// CA records for a residue already seen.
func Parse(r io.Reader, id string) (*Structure, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	s := &Structure{ID: id}
	var (
		chainSet  bool
		lastSeq   = int(^uint(0) >> 1) // sentinel: no residue yet
		lastICode byte
		haveLast  bool
		lineNo    int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) < 6 {
			continue
		}
		rec := line[:6]
		switch {
		case rec == "ENDMDL":
			// First model only.
			return finish(s)
		case strings.HasPrefix(rec, "TER"):
			if chainSet {
				return finish(s)
			}
		case rec == "ATOM  " || rec == "HETATM":
			if len(line) < 54 {
				return nil, &ParseError{lineNo, "ATOM record too short"}
			}
			resName := strings.TrimSpace(line[17:20])
			if rec == "HETATM" && resName != "MSE" {
				// Only selenomethionine is treated as part of the chain
				// (as TM-align does); other heteroatoms are ligands.
				continue
			}
			name := strings.TrimSpace(line[12:16])
			if name != "CA" {
				continue
			}
			alt := line[16]
			if alt != ' ' && alt != 'A' {
				continue
			}
			chain := line[21]
			if !chainSet {
				s.Chain = chain
				chainSet = true
			} else if chain != s.Chain {
				// A new chain began without TER: stop at first chain.
				return finish(s)
			}
			seq, err := strconv.Atoi(strings.TrimSpace(line[22:26]))
			if err != nil {
				return nil, &ParseError{lineNo, "bad residue sequence number"}
			}
			icode := byte(' ')
			if len(line) > 26 {
				icode = line[26]
			}
			if haveLast && seq == lastSeq && icode == lastICode {
				continue // duplicate CA (e.g. altloc variants)
			}
			x, err := parseCoord(line[30:38])
			if err != nil {
				return nil, &ParseError{lineNo, "bad x coordinate"}
			}
			y, err := parseCoord(line[38:46])
			if err != nil {
				return nil, &ParseError{lineNo, "bad y coordinate"}
			}
			z, err := parseCoord(line[46:54])
			if err != nil {
				return nil, &ParseError{lineNo, "bad z coordinate"}
			}
			s.Residues = append(s.Residues, Residue{
				Seq:  seq,
				Name: resName,
				AA:   OneLetter(resName),
				CA:   geom.V(x, y, z),
			})
			lastSeq = seq
			lastICode = icode
			haveLast = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pdb: read: %w", err)
	}
	return finish(s)
}

func finish(s *Structure) (*Structure, error) {
	if len(s.Residues) == 0 {
		return nil, fmt.Errorf("pdb: %s: no CA atoms found", s.ID)
	}
	return s, nil
}

func parseCoord(f string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(f), 64)
}

// ParseFile parses the PDB file at path. The structure ID is the file name
// without directory or extension.
func ParseFile(path string) (*Structure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return Parse(f, base)
}

// Write emits the structure as minimal PDB ATOM records (CA only),
// terminated by TER and END. The output round-trips through Parse.
func Write(w io.Writer, s *Structure) error {
	bw := bufio.NewWriter(w)
	chain := s.Chain
	if chain == 0 {
		chain = 'A'
	}
	for i, r := range s.Residues {
		name := r.Name
		if name == "" {
			name = ThreeLetter(r.AA)
		}
		_, err := fmt.Fprintf(bw, "ATOM  %5d  CA  %-3s %c%4d    %8.3f%8.3f%8.3f  1.00  0.00           C\n",
			i+1, name, chain, r.Seq, r.CA[0], r.CA[1], r.CA[2])
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "TER\nEND\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the structure to a PDB file at path.
func WriteFile(path string, s *Structure) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FromCAs builds a Structure from a CA trace and a one-letter sequence.
// If seq is shorter than pts the remainder is filled with 'A'.
func FromCAs(id string, pts []geom.Vec3, seq string) *Structure {
	s := &Structure{ID: id, Chain: 'A', Residues: make([]Residue, len(pts))}
	for i, p := range pts {
		aa := byte('A')
		if i < len(seq) {
			aa = seq[i]
		}
		s.Residues[i] = Residue{Seq: i + 1, Name: ThreeLetter(aa), AA: aa, CA: p}
	}
	return s
}

// WriteFASTA emits the structures' sequences in FASTA format (60-column
// wrapped), for feeding the datasets to external sequence tools.
func WriteFASTA(w io.Writer, structures ...*Structure) error {
	bw := bufio.NewWriter(w)
	for _, s := range structures {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
			return err
		}
		seq := s.Sequence()
		for len(seq) > 60 {
			if _, err := fmt.Fprintln(bw, seq[:60]); err != nil {
				return err
			}
			seq = seq[60:]
		}
		if _, err := fmt.Fprintln(bw, seq); err != nil {
			return err
		}
	}
	return bw.Flush()
}
