// Package dist models the paper's Experiment I baseline: "distributed
// TM-align", where a controlling master process runs on the SCC host PC
// (the MCPC) and issues one remote process per pairwise comparison to
// the SCC cores via pssh. Each job pays (a) remote process spawn and
// environment setup, and (b) NFS reads of its two input structures
// through the MCPC's single disk controller — the two overheads the
// paper identifies as the reasons rckAlign wins (Section V-C).
//
// The baseline runs on the farm harness with an off-chip master
// (farm.HostMaster): the harness owns runtime construction, slave
// placement and reporting, while this package keeps its bespoke
// pssh/NFS job protocol.
package dist

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/farm"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
	"rckalign/internal/trace"
)

// Config models the MCPC-side costs.
type Config struct {
	// Chip provides the slave cores (and their CPU profile).
	Chip scc.Config
	// SpawnSeconds is the per-job remote process creation + environment
	// setup cost (ssh exec, loader, f2c runtime init) on the 800 MHz
	// core; it parallelises across cores.
	SpawnSeconds float64
	// DispatchSeconds is the master's per-job pssh issue cost on the
	// MCPC (serialised at the master).
	DispatchSeconds float64
	// NFSSeekSeconds is the disk-controller service time per file read
	// (serialised at the single MCPC disk).
	NFSSeekSeconds float64
	// NFSBytesPerSecond is the NFS data bandwidth (shared).
	NFSBytesPerSecond float64
	// Trace, when non-nil, receives per-core compute intervals.
	Trace *trace.Recorder
	// Collector, when non-nil, observes every collected result.
	Collector farm.Collector
}

// DefaultConfig returns values calibrated so the CK34 curve lands in the
// region of the paper's Table II (about 2.5x slower than rckAlign at one
// slave, converging to about 2x at 47; see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Chip:              scc.DefaultConfig(),
		SpawnSeconds:      5.0,
		DispatchSeconds:   0.05,
		NFSSeekSeconds:    0.06,
		NFSBytesPerSecond: 10e6,
	}
}

// RunResult reports one simulated distributed-TM-align execution.
type RunResult struct {
	farm.Report
	// DiskBusySeconds is the cumulative disk service time (for
	// utilisation analysis).
	DiskBusySeconds float64
}

// Run simulates the all-vs-all task on `slaves` SCC cores driven from
// the MCPC, replaying the native TM-align results in pr.
func Run(pr *core.PairResults, slaves int, cfg Config) (RunResult, error) {
	if slaves < 1 || slaves > cfg.Chip.NumCores() {
		return RunResult{}, fmt.Errorf("dist: slave count %d outside [1,%d]", slaves, cfg.Chip.NumCores())
	}
	s, err := farm.NewSession(farm.Config{
		Backend:    farm.SCCSim{Chip: cfg.Chip},
		MasterCore: farm.HostMaster,
		Slaves:     slaves,
		Trace:      cfg.Trace,
		Collector:  cfg.Collector,
	})
	if err != nil {
		return RunResult{}, err
	}
	rt := s.Runtime()
	rec := s.Trace()
	disk := sim.NewResource("mcpc-disk", 1)
	jobCh := sim.NewChan("pssh")
	doneCh := sim.NewChan("done")

	ds := pr.Dataset
	lengths := make([]int, ds.Len())
	for i, st := range ds.Structures {
		lengths[i] = st.Len()
	}

	type jobMsg struct {
		id   int
		pair sched.Pair
	}
	type stop struct{}

	// Slave cores: each loops pulling the next job from the MCPC master.
	// Every job is a fresh process: spawn, read both inputs over NFS,
	// compute, exit.
	for _, c := range s.Placement().Cores {
		c := c
		rt.Chip.SpawnCore(c, func(p *sim.Process) {
			for {
				m := jobCh.Recv(p)
				if _, halt := m.(stop); halt {
					return
				}
				jm := m.(jobMsg)
				p.Wait(cfg.SpawnSeconds)
				for _, idx := range [2]int{jm.pair.I, jm.pair.J} {
					disk.Acquire(p)
					p.Wait(cfg.NFSSeekSeconds + float64(core.FileBytes(lengths[idx]))/cfg.NFSBytesPerSecond)
					disk.Release(p)
				}
				res := pr.Get(jm.pair)
				start := p.Now()
				rt.Chip.Compute(p, res.Ops)
				rec.Add(rt.Chip.CoreName(c), start, p.Now(), "compute")
				doneCh.Send(p, rckskel.Result{JobID: jm.id, Slave: c, Payload: res})
			}
		})
	}

	// MCPC master: issue jobs to whichever core pulls next (pssh to a
	// free node), then collect completions.
	rep, err := s.Run("mcpc-master", func(m *farm.Master) {
		p := m.P
		issued := 0
		collected := 0
		// Prime every core with one job (each Send hands the job to the
		// next core that asks), then reissue on each completion.
		prime := slaves
		if prime > len(pr.Pairs) {
			prime = len(pr.Pairs)
		}
		for issued < prime {
			p.Wait(cfg.DispatchSeconds)
			jobCh.Send(p, jobMsg{id: issued, pair: pr.Pairs[issued]})
			issued++
		}
		for collected < len(pr.Pairs) {
			r := doneCh.Recv(p).(rckskel.Result)
			m.Session().Collect(r)
			collected++
			if issued < len(pr.Pairs) {
				p.Wait(cfg.DispatchSeconds)
				jobCh.Send(p, jobMsg{id: issued, pair: pr.Pairs[issued]})
				issued++
			}
		}
		for range s.Placement().Cores {
			jobCh.Send(p, stop{})
		}
	})
	out := RunResult{Report: rep}
	out.DiskBusySeconds = disk.BusySeconds()
	return out, err
}

// RunSweep simulates the baseline across slave counts.
func RunSweep(pr *core.PairResults, slaveCounts []int, cfg Config) ([]RunResult, error) {
	return farm.Sweep(slaveCounts, func(n int) (RunResult, error) {
		return Run(pr, n, cfg)
	})
}
