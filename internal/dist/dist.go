// Package dist models the paper's Experiment I baseline: "distributed
// TM-align", where a controlling master process runs on the SCC host PC
// (the MCPC) and issues one remote process per pairwise comparison to
// the SCC cores via pssh. Each job pays (a) remote process spawn and
// environment setup, and (b) NFS reads of its two input structures
// through the MCPC's single disk controller — the two overheads the
// paper identifies as the reasons rckAlign wins (Section V-C).
package dist

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
)

// Config models the MCPC-side costs.
type Config struct {
	// Chip provides the slave cores (and their CPU profile).
	Chip scc.Config
	// SpawnSeconds is the per-job remote process creation + environment
	// setup cost (ssh exec, loader, f2c runtime init) on the 800 MHz
	// core; it parallelises across cores.
	SpawnSeconds float64
	// DispatchSeconds is the master's per-job pssh issue cost on the
	// MCPC (serialised at the master).
	DispatchSeconds float64
	// NFSSeekSeconds is the disk-controller service time per file read
	// (serialised at the single MCPC disk).
	NFSSeekSeconds float64
	// NFSBytesPerSecond is the NFS data bandwidth (shared).
	NFSBytesPerSecond float64
}

// DefaultConfig returns values calibrated so the CK34 curve lands in the
// region of the paper's Table II (about 2.5x slower than rckAlign at one
// slave, converging to about 2x at 47; see EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Chip:              scc.DefaultConfig(),
		SpawnSeconds:      5.0,
		DispatchSeconds:   0.05,
		NFSSeekSeconds:    0.06,
		NFSBytesPerSecond: 10e6,
	}
}

// RunResult reports one simulated distributed-TM-align execution.
type RunResult struct {
	Slaves       int
	TotalSeconds float64
	// DiskBusySeconds is the cumulative disk service time (for
	// utilisation analysis).
	DiskBusySeconds float64
	Collected       int
}

// Run simulates the all-vs-all task on `slaves` SCC cores driven from
// the MCPC, replaying the native TM-align results in pr.
func Run(pr *core.PairResults, slaves int, cfg Config) (RunResult, error) {
	if slaves < 1 || slaves > cfg.Chip.NumCores() {
		return RunResult{}, fmt.Errorf("dist: slave count %d outside [1,%d]", slaves, cfg.Chip.NumCores())
	}
	engine := sim.NewEngine()
	chip := scc.New(engine, cfg.Chip)
	disk := sim.NewResource("mcpc-disk", 1)
	jobCh := sim.NewChan("pssh")
	doneCh := sim.NewChan("done")

	ds := pr.Dataset
	lengths := make([]int, ds.Len())
	for i, s := range ds.Structures {
		lengths[i] = s.Len()
	}

	out := RunResult{Slaves: slaves}

	type jobMsg struct {
		pair sched.Pair
	}
	type stop struct{}

	// Slave cores: each loops pulling the next job from the MCPC master.
	// Every job is a fresh process: spawn, read both inputs over NFS,
	// compute, exit.
	for s := 0; s < slaves; s++ {
		chip.SpawnCore(s, func(p *sim.Process) {
			for {
				m := jobCh.Recv(p)
				if _, halt := m.(stop); halt {
					return
				}
				pair := m.(jobMsg).pair
				p.Wait(cfg.SpawnSeconds)
				for _, idx := range [2]int{pair.I, pair.J} {
					disk.Acquire(p)
					p.Wait(cfg.NFSSeekSeconds + float64(core.FileBytes(lengths[idx]))/cfg.NFSBytesPerSecond)
					disk.Release(p)
				}
				res := pr.Get(pair)
				chip.Compute(p, res.Ops)
				doneCh.Send(p, res)
			}
		})
	}

	// MCPC master: issue jobs to whichever core pulls next (pssh to a
	// free node), then collect completions.
	engine.Spawn("mcpc-master", func(p *sim.Process) {
		issued := 0
		collected := 0
		// Prime every core with one job (each Send hands the job to the
		// next core that asks), then reissue on each completion.
		prime := slaves
		if prime > len(pr.Pairs) {
			prime = len(pr.Pairs)
		}
		for issued < prime {
			p.Wait(cfg.DispatchSeconds)
			jobCh.Send(p, jobMsg{pair: pr.Pairs[issued]})
			issued++
		}
		for collected < len(pr.Pairs) {
			doneCh.Recv(p)
			collected++
			if issued < len(pr.Pairs) {
				p.Wait(cfg.DispatchSeconds)
				jobCh.Send(p, jobMsg{pair: pr.Pairs[issued]})
				issued++
			}
		}
		for s := 0; s < slaves; s++ {
			jobCh.Send(p, stop{})
		}
		out.Collected = collected
		out.TotalSeconds = p.Now()
	})

	if err := engine.Run(); err != nil {
		return out, err
	}
	out.DiskBusySeconds = disk.BusySeconds()
	return out, nil
}

// RunSweep simulates the baseline across slave counts.
func RunSweep(pr *core.PairResults, slaveCounts []int, cfg Config) ([]RunResult, error) {
	out := make([]RunResult, 0, len(slaveCounts))
	for _, n := range slaveCounts {
		r, err := Run(pr, n, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
