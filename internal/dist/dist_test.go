package dist

import (
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

var smallPR = func() *core.PairResults {
	ds := synth.Small(8, 77)
	return core.ComputeAllPairs(ds, tmalign.FastOptions(), 0)
}()

func TestRunCollectsAll(t *testing.T) {
	r, err := Run(smallPR, 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Collected != len(smallPR.Pairs) {
		t.Errorf("collected %d of %d", r.Collected, len(smallPR.Pairs))
	}
	if r.TotalSeconds <= 0 || r.DiskBusySeconds <= 0 {
		t.Errorf("timings: %+v", r)
	}
}

func TestDistributedSlowerThanRckAlign(t *testing.T) {
	// Experiment I's claim: the on-chip master (rckAlign) beats the
	// MCPC-driven distributed version at every core count.
	for _, n := range []int{1, 4, 7} {
		d, err := Run(smallPR, n, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.Run(smallPR, n, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if d.TotalSeconds <= r.TotalSeconds {
			t.Errorf("slaves=%d: distributed (%v) not slower than rckAlign (%v)", n, d.TotalSeconds, r.TotalSeconds)
		}
	}
}

func TestSpawnOverheadDominatesAtOneSlave(t *testing.T) {
	cfg := DefaultConfig()
	r1, err := Run(smallPR, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := smallPR.SerialSeconds(costmodel.P54C())
	perJob := cfg.SpawnSeconds + 2*cfg.NFSSeekSeconds
	expectedMin := serial + float64(len(smallPR.Pairs))*perJob*0.9
	if r1.TotalSeconds < expectedMin {
		t.Errorf("1-slave distributed %v below compute+overhead floor %v", r1.TotalSeconds, expectedMin)
	}
}

func TestScalesWithSlavesButSublinearly(t *testing.T) {
	cfg := DefaultConfig()
	r1, err := Run(smallPR, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Run(smallPR, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := r1.TotalSeconds / r7.TotalSeconds
	if sp < 2 {
		t.Errorf("7-slave distributed speedup %v too low", sp)
	}
	if sp > 7 {
		t.Errorf("7-slave distributed speedup %v impossible", sp)
	}
}

func TestNFSContentionVisible(t *testing.T) {
	// Crank up NFS service time: with many slaves the single disk must
	// throttle scaling.
	cfg := DefaultConfig()
	cfg.NFSSeekSeconds = 3.0 // absurd disk: contention dominates
	r1, err := Run(smallPR, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Run(smallPR, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := r1.TotalSeconds / r7.TotalSeconds
	if sp > 4 {
		t.Errorf("speedup %v too high: NFS bottleneck not modelled", sp)
	}
	// Disk busy time must be close to jobs * 2 reads * service.
	wantDisk := float64(len(smallPR.Pairs)) * 2 * cfg.NFSSeekSeconds
	if r7.DiskBusySeconds < wantDisk {
		t.Errorf("disk busy %v < %v", r7.DiskBusySeconds, wantDisk)
	}
}

func TestRunValidatesSlaves(t *testing.T) {
	if _, err := Run(smallPR, 0, DefaultConfig()); err == nil {
		t.Error("0 slaves accepted")
	}
	if _, err := Run(smallPR, 49, DefaultConfig()); err == nil {
		t.Error("49 slaves accepted")
	}
}

func TestRunSweepMonotone(t *testing.T) {
	rs, err := RunSweep(smallPR, []int{1, 3, 5}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].TotalSeconds >= rs[i-1].TotalSeconds {
			t.Errorf("sweep not monotone: %v", rs)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(smallPR, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallPR, 5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSeconds != b.TotalSeconds {
		t.Error("distributed simulation not deterministic")
	}
}
