package batcher

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// echoRun doubles each item, recording every batch it saw.
type echoRun struct {
	mu      sync.Mutex
	batches [][]int
}

func (e *echoRun) run(items []int) ([]int, error) {
	e.mu.Lock()
	e.batches = append(e.batches, append([]int(nil), items...))
	e.mu.Unlock()
	out := make([]int, len(items))
	for i, v := range items {
		out[i] = 2 * v
	}
	return out, nil
}

func TestSizeTriggerFlush(t *testing.T) {
	e := &echoRun{}
	b, err := New(Config{BatchSize: 4, MaxWait: time.Hour}, e.run)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := b.SubmitAll(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Value != 2*items[i] {
			t.Errorf("item %d: value %d, want %d", i, r.Value, 2*items[i])
		}
		if r.BatchSize != 4 {
			t.Errorf("item %d: batch size %d, want 4", i, r.BatchSize)
		}
		if r.Trigger != TriggerSize {
			t.Errorf("item %d: trigger %v, want size", i, r.Trigger)
		}
	}
	st := b.Stats()
	if st.Batches != 2 || st.SizeFlushes != 2 {
		t.Errorf("stats %+v, want 2 batches, 2 size flushes", st)
	}
	if st.Enqueued != 8 || st.Completed != 8 || st.Pending != 0 {
		t.Errorf("stats %+v, want 8 enqueued, 8 completed, 0 pending", st)
	}
	if st.MaxBatch != 4 {
		t.Errorf("max batch %d, want 4", st.MaxBatch)
	}
}

func TestTimerTriggerFlush(t *testing.T) {
	e := &echoRun{}
	b, err := New(Config{BatchSize: 100, MaxWait: 10 * time.Millisecond}, e.run)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.SubmitAll([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Trigger != TriggerTimer {
			t.Errorf("item %d: trigger %v, want timer", i, r.Trigger)
		}
		if r.BatchSize != 3 {
			t.Errorf("item %d: batch size %d, want 3 (partial flush)", i, r.BatchSize)
		}
	}
	st := b.Stats()
	if st.TimerFlushes != 1 || st.Batches != 1 {
		t.Errorf("stats %+v, want exactly one timer flush", st)
	}
}

func TestCloseDrainsPartialBatch(t *testing.T) {
	e := &echoRun{}
	b, err := New(Config{BatchSize: 100, MaxWait: time.Hour}, e.run)
	if err != nil {
		t.Fatal(err)
	}
	type resErr struct {
		res []Result[int]
		err error
	}
	done := make(chan resErr, 1)
	go func() {
		res, err := b.SubmitAll([]int{7, 9})
		done <- resErr{res, err}
	}()
	// Wait until both items are inside the batcher, then close: the only
	// way they can complete is the close-drain flush.
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Enqueued < 2 {
		if time.Now().After(deadline) {
			t.Fatal("items never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	re := <-done
	if re.err != nil {
		t.Fatal(re.err)
	}
	for i, r := range re.res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Trigger != TriggerClose {
			t.Errorf("item %d: trigger %v, want close", i, r.Trigger)
		}
	}
	st := b.Stats()
	if st.CloseFlushes != 1 {
		t.Errorf("stats %+v, want one close flush", st)
	}
	if _, err := b.Submit(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
	if _, err := b.SubmitAll([]int{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitAll after Close: %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestTimingBreakdown(t *testing.T) {
	slow := func(items []int) ([]int, error) {
		time.Sleep(5 * time.Millisecond)
		return make([]int, len(items)), nil
	}
	b, err := New(Config{BatchSize: 1, MaxWait: time.Millisecond}, slow)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	r, err := b.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	tm := r.Timing
	if tm.QueueWait < 0 || tm.Assembly < 0 || tm.Compute < 0 || tm.Total < 0 {
		t.Fatalf("negative timing component: %+v", tm)
	}
	if tm.Compute < 5*time.Millisecond {
		t.Errorf("compute %v, want >= 5ms (the run sleep)", tm.Compute)
	}
	if tm.Total < tm.Compute {
		t.Errorf("total %v below compute %v", tm.Total, tm.Compute)
	}
	sum := tm.QueueWait + tm.Assembly + tm.Compute
	if diff := tm.Total - sum; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("total %v does not decompose into %v + %v + %v", tm.Total, tm.QueueWait, tm.Assembly, tm.Compute)
	}
}

func TestRunErrorPropagatesToEveryItem(t *testing.T) {
	boom := errors.New("boom")
	b, err := New(Config{BatchSize: 2, MaxWait: time.Millisecond}, func(items []int) ([]int, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.SubmitAll([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, boom) {
			t.Errorf("item %d: err %v, want boom", i, r.Err)
		}
	}
}

func TestRunLengthMismatchIsAnError(t *testing.T) {
	b, err := New(Config{BatchSize: 2, MaxWait: time.Millisecond}, func(items []int) ([]int, error) {
		return []int{1}, nil // wrong length
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.SubmitAll([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("item %d: no error for a length-mismatched run", i)
		}
	}
}

func TestNilRunRejected(t *testing.T) {
	if _, err := New[int, int](Config{}, nil); err == nil {
		t.Fatal("New accepted a nil run function")
	}
}

func TestConcurrentSubmittersAllAnswered(t *testing.T) {
	e := &echoRun{}
	b, err := New(Config{BatchSize: 8, MaxWait: time.Millisecond, Workers: 4}, e.run)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := c*perClient + i
				r, err := b.Submit(v)
				if err != nil {
					errs <- err
					return
				}
				if r.Err != nil {
					errs <- r.Err
					return
				}
				if r.Value != 2*v {
					errs <- errors.New("wrong value")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	b.Close()
	st := b.Stats()
	if st.Enqueued != clients*perClient || st.Completed != clients*perClient {
		t.Errorf("stats %+v, want %d enqueued and completed", st, clients*perClient)
	}
	if st.Pending != 0 {
		t.Errorf("pending %d after drain, want 0", st.Pending)
	}
	// Every submitted item appears in exactly one executed batch.
	seen := map[int]int{}
	e.mu.Lock()
	for _, bt := range e.batches {
		for _, v := range bt {
			seen[v]++
		}
	}
	e.mu.Unlock()
	if len(seen) != clients*perClient {
		t.Fatalf("%d distinct items executed, want %d", len(seen), clients*perClient)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("item %d executed %d times", v, n)
		}
	}
}

func TestTriggerString(t *testing.T) {
	for tr, want := range map[Trigger]string{
		TriggerSize: "size", TriggerTimer: "timer", TriggerClose: "close", Trigger(9): "trigger(9)",
	} {
		if got := tr.String(); got != want {
			t.Errorf("Trigger(%d).String() = %q, want %q", int(tr), got, want)
		}
	}
}
