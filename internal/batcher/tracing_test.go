package batcher

import (
	"sync"
	"testing"
	"time"
)

// TestResultTracingFields pins the per-result tracing metadata: worker
// index within range, enqueue timestamp set, and an admission-time
// queue depth that counts the item itself.
func TestResultTracingFields(t *testing.T) {
	e := &echoRun{}
	b, err := New(Config{BatchSize: 2, MaxWait: time.Millisecond, Workers: 3}, e.run)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.SubmitAll([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Worker < 0 || r.Worker >= 3 {
			t.Errorf("result %d worker = %d, want 0..2", i, r.Worker)
		}
		if r.EnqueuedAt.IsZero() {
			t.Errorf("result %d has zero EnqueuedAt", i)
		}
		if r.QueueDepth < 1 {
			t.Errorf("result %d queue depth = %d, want >= 1 (includes self)", i, r.QueueDepth)
		}
	}
}

// TestPeakPendingHighWater pins Stats.PeakPending: it reaches the burst
// size when submissions pile up behind a slow run, and never falls.
func TestPeakPendingHighWater(t *testing.T) {
	block := make(chan struct{})
	slow := func(items []int) ([]int, error) {
		<-block
		return make([]int, len(items)), nil
	}
	b, err := New(Config{BatchSize: 1, MaxWait: time.Millisecond, QueueCap: 16}, slow)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 5
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			b.Submit(v)
		}(i)
	}
	// Wait for every submission to be admitted, then release the runs.
	for b.Stats().Enqueued < burst {
		time.Sleep(time.Millisecond)
	}
	peakDuring := b.Stats().PeakPending
	close(block)
	wg.Wait()
	b.Close()
	st := b.Stats()
	if peakDuring < 2 {
		t.Errorf("peak pending during burst = %d, want >= 2", peakDuring)
	}
	if st.PeakPending < peakDuring {
		t.Errorf("peak fell from %d to %d", peakDuring, st.PeakPending)
	}
	if st.Pending != 0 {
		t.Errorf("final pending = %d, want 0 after drain", st.Pending)
	}
}
