// Package batcher implements a generic bounded-queue request coalescer
// for the comparison service: many concurrent callers submit small work
// items, a collector assembles them into batches, and a worker pool
// executes whole batches at once. A batch flushes when it reaches
// BatchSize items, when MaxWait has elapsed since its first item
// arrived, or when the batcher is closed — so bursts amortize into few
// large batches while a lone request still completes within MaxWait.
//
// Every item's response carries a timing breakdown (queue wait, batch
// assembly, compute, total) and the size and flush trigger of the batch
// it rode in, so the service can expose per-request latency anatomy.
//
// The batcher moves work between goroutines but never reorders results:
// run(items) must return one result per item, index-aligned. Whether
// batching is observable in the results is entirely up to run — the
// comparison service keeps it invisible by routing every evaluation
// through the memoized pair store (see DESIGN.md §14).
package batcher

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Submit/SubmitAll after Close.
var ErrClosed = errors.New("batcher: closed")

// Trigger identifies what caused a batch to flush.
type Trigger int

const (
	// TriggerSize: the batch reached Config.BatchSize items.
	TriggerSize Trigger = iota
	// TriggerTimer: Config.MaxWait elapsed since the batch's first item.
	TriggerTimer
	// TriggerClose: Close drained a final partial batch.
	TriggerClose
)

// String names the trigger for logs and stats dumps.
func (t Trigger) String() string {
	switch t {
	case TriggerSize:
		return "size"
	case TriggerTimer:
		return "timer"
	case TriggerClose:
		return "close"
	}
	return fmt.Sprintf("trigger(%d)", int(t))
}

// Config tunes a Batcher. The zero value is usable: every field has a
// default (see the field comments).
type Config struct {
	// BatchSize flushes a batch when it holds this many items
	// (default 32; 1 disables coalescing — every item is its own batch).
	BatchSize int
	// MaxWait flushes a non-empty partial batch this long after its
	// first item arrived (default 2ms), bounding the latency a lone
	// request pays for the chance to coalesce.
	MaxWait time.Duration
	// QueueCap bounds the submission queue (default 4*BatchSize).
	// Submitters block when it is full — backpressure, not load shedding.
	QueueCap int
	// Workers is the number of concurrent batch executors (default 1).
	Workers int
	// OnFlush, when non-nil, is called by the collector goroutine for
	// every flushed batch with its size and trigger — the hook a server
	// uses to feed a batch-size histogram. It must be safe to call from
	// one goroutine and should return quickly (it delays dispatch).
	OnFlush func(size int, trigger Trigger)
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.BatchSize
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

// Timing is the latency anatomy of one item's trip through the batcher,
// measured on the host monotonic clock.
type Timing struct {
	// QueueWait is enqueue -> dequeued by the collector (time spent in
	// the bounded submission queue).
	QueueWait time.Duration
	// Assembly is dequeue -> batch execution start (waiting for the
	// flush trigger plus waiting for a free worker).
	Assembly time.Duration
	// Compute is the run() call's duration for the whole batch.
	Compute time.Duration
	// Total is enqueue -> response delivery.
	Total time.Duration
}

// Result is the response delivered for one submitted item.
type Result[R any] struct {
	// Value is run's result for this item (zero when Err is set).
	Value R
	// Err is run's error, shared by every item of the failed batch.
	Err error
	// Timing is this item's latency breakdown.
	Timing Timing
	// BatchSize is the number of items in the batch this item rode in.
	BatchSize int
	// Trigger is what flushed that batch.
	Trigger Trigger
	// Worker is the index (0..Workers-1) of the executor goroutine that
	// ran this item's batch — the "which lane computed me" coordinate a
	// request trace needs for per-worker tracks.
	Worker int
	// EnqueuedAt is the host time the item entered the submission queue,
	// letting a caller place the item's server-side spans on an absolute
	// timeline (e.g. as offsets from process start).
	EnqueuedAt time.Time
	// QueueDepth is the number of pending items at admission, this item
	// included — the congestion the request observed on arrival.
	QueueDepth int64
}

// Stats counts what the batcher has done so far. Pending is the number
// of items submitted but not yet answered (queue + assembling batch +
// executing batches); PeakPending is its high-water mark over the
// batcher's lifetime.
type Stats struct {
	Enqueued     int64
	Completed    int64
	Pending      int64
	PeakPending  int64
	Batches      int64
	SizeFlushes  int64
	TimerFlushes int64
	CloseFlushes int64
	MaxBatch     int
}

// request is one in-flight item.
type request[T, R any] struct {
	item     T
	resp     chan Result[R]
	enqueued time.Time
	dequeued time.Time
	depth    int64 // Pending at admission, this item included
}

// batch is a flushed group of requests awaiting a worker.
type batch[T, R any] struct {
	reqs    []*request[T, R]
	trigger Trigger
}

// Batcher coalesces items of type T into batches executed by run, which
// must return one R per item, index-aligned. All methods are safe for
// concurrent use.
type Batcher[T, R any] struct {
	cfg Config
	run func([]T) ([]R, error)

	queue   chan *request[T, R]
	batches chan batch[T, R]

	mu     sync.Mutex
	closed bool
	stats  Stats

	submitters    sync.WaitGroup // Submit calls past the closed check
	workers       sync.WaitGroup
	collectorDone chan struct{}
}

// New builds and starts a batcher: one collector goroutine assembling
// batches plus cfg.Workers executor goroutines. run must be non-nil and
// must return exactly one result per input item.
func New[T, R any](cfg Config, run func([]T) ([]R, error)) (*Batcher[T, R], error) {
	if run == nil {
		return nil, errors.New("batcher: nil run function")
	}
	cfg = cfg.withDefaults()
	b := &Batcher[T, R]{
		cfg:           cfg,
		run:           run,
		queue:         make(chan *request[T, R], cfg.QueueCap),
		batches:       make(chan batch[T, R], cfg.Workers),
		collectorDone: make(chan struct{}),
	}
	go b.collect()
	b.workers.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go b.worker(w)
	}
	return b, nil
}

// enqueue admits one item, blocking while the queue is full. The
// returned channel receives exactly one Result.
func (b *Batcher[T, R]) enqueue(item T) (chan Result[R], error) {
	r := &request[T, R]{item: item, resp: make(chan Result[R], 1), enqueued: time.Now()}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.submitters.Add(1)
	b.stats.Enqueued++
	b.stats.Pending++
	if b.stats.Pending > b.stats.PeakPending {
		b.stats.PeakPending = b.stats.Pending
	}
	r.depth = b.stats.Pending
	b.mu.Unlock()
	b.queue <- r
	b.submitters.Done()
	return r.resp, nil
}

// Submit enqueues one item and blocks until its batch has executed.
func (b *Batcher[T, R]) Submit(item T) (Result[R], error) {
	ch, err := b.enqueue(item)
	if err != nil {
		return Result[R]{}, err
	}
	return <-ch, nil
}

// SubmitAll enqueues every item before waiting on any response, so a
// multi-item request (a one-vs-all query) fills batches instead of
// paying MaxWait per item. Results are index-aligned with items. When
// the batcher closes mid-enqueue it returns ErrClosed; responses for
// the already-enqueued prefix are discarded (their batches still
// execute and their buffered channels are garbage collected).
func (b *Batcher[T, R]) SubmitAll(items []T) ([]Result[R], error) {
	chs := make([]chan Result[R], len(items))
	for i, item := range items {
		ch, err := b.enqueue(item)
		if err != nil {
			return nil, err
		}
		chs[i] = ch
	}
	out := make([]Result[R], len(items))
	for i, ch := range chs {
		out[i] = <-ch
	}
	return out, nil
}

// Stats returns a consistent snapshot of the batcher's counters.
func (b *Batcher[T, R]) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close stops admitting new items, flushes the assembling batch, waits
// for every in-flight batch to execute and its responses to be
// delivered, then returns. Safe to call more than once.
func (b *Batcher[T, R]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.collectorDone
		b.workers.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.submitters.Wait() // admitted submitters finish their queue send
	close(b.queue)
	<-b.collectorDone // collector flushed the tail and closed batches
	b.workers.Wait()  // workers delivered every response
}

// collect is the single assembler goroutine: it drains the submission
// queue into a pending batch and flushes on size, timer or close.
func (b *Batcher[T, R]) collect() {
	defer close(b.collectorDone)
	var pending []*request[T, R]
	var timer *time.Timer
	var timerC <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flush := func(tr Trigger) {
		if len(pending) == 0 {
			return
		}
		stopTimer()
		b.mu.Lock()
		b.stats.Batches++
		switch tr {
		case TriggerSize:
			b.stats.SizeFlushes++
		case TriggerTimer:
			b.stats.TimerFlushes++
		case TriggerClose:
			b.stats.CloseFlushes++
		}
		if len(pending) > b.stats.MaxBatch {
			b.stats.MaxBatch = len(pending)
		}
		b.mu.Unlock()
		if b.cfg.OnFlush != nil {
			b.cfg.OnFlush(len(pending), tr)
		}
		b.batches <- batch[T, R]{reqs: pending, trigger: tr}
		pending = nil
	}
	for {
		select {
		case r, ok := <-b.queue:
			if !ok {
				flush(TriggerClose)
				close(b.batches)
				return
			}
			r.dequeued = time.Now()
			pending = append(pending, r)
			if len(pending) == 1 {
				timer = time.NewTimer(b.cfg.MaxWait)
				timerC = timer.C
			}
			if len(pending) >= b.cfg.BatchSize {
				flush(TriggerSize)
			}
		case <-timerC:
			timer = nil
			timerC = nil
			flush(TriggerTimer)
		}
	}
}

// worker executes flushed batches and delivers per-item results. id is
// the worker's index, reported in every Result it delivers.
func (b *Batcher[T, R]) worker(id int) {
	defer b.workers.Done()
	for bt := range b.batches {
		start := time.Now()
		items := make([]T, len(bt.reqs))
		for i, r := range bt.reqs {
			items[i] = r.item
		}
		vals, err := b.run(items)
		if err == nil && len(vals) != len(items) {
			err = fmt.Errorf("batcher: run returned %d results for %d items", len(vals), len(items))
		}
		done := time.Now()
		for i, r := range bt.reqs {
			res := Result[R]{
				BatchSize:  len(bt.reqs),
				Trigger:    bt.trigger,
				Worker:     id,
				EnqueuedAt: r.enqueued,
				QueueDepth: r.depth,
				Timing: Timing{
					QueueWait: r.dequeued.Sub(r.enqueued),
					Assembly:  start.Sub(r.dequeued),
					Compute:   done.Sub(start),
					Total:     done.Sub(r.enqueued),
				},
			}
			if err != nil {
				res.Err = err
			} else {
				res.Value = vals[i]
			}
			r.resp <- res
		}
		b.mu.Lock()
		b.stats.Completed += int64(len(bt.reqs))
		b.stats.Pending -= int64(len(bt.reqs))
		b.mu.Unlock()
	}
}
