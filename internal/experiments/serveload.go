// Serve load sweep: the rckload methodology (seeded stepped-ramp open
// loop against a live server, DESIGN.md §15) packaged as an experiment
// grid over server configurations, so the EXPERIMENTS.md
// offered-RPS-vs-p99 tables regenerate from one command
// (`rckload -sweep` or this package's tests).

package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"rckalign/internal/batcher"
	"rckalign/internal/loadgen"
	"rckalign/internal/server"
	"rckalign/internal/stats"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// ServeLoadConfig is one server configuration of the sweep grid.
type ServeLoadConfig struct {
	Name  string
	Batch batcher.Config
}

// DefaultServeLoadConfigs spans the coalescing axis of the grid: no
// coalescing on a single executor versus full coalescing across four —
// the two ends the knee comparison in EXPERIMENTS.md quotes.
func DefaultServeLoadConfigs() []ServeLoadConfig {
	return []ServeLoadConfig{
		{Name: "batch=1 workers=1", Batch: batcher.Config{
			BatchSize: 1, MaxWait: time.Millisecond, Workers: 1}},
		{Name: "batch=16 workers=4", Batch: batcher.Config{
			BatchSize: 16, MaxWait: time.Millisecond, Workers: 4}},
	}
}

// ServeLoadSpec fixes the workload side of the grid: one synthetic
// database and one seeded arrival trace, replayed identically against
// every server configuration.
type ServeLoadSpec struct {
	Structures int            // synthetic database size
	Seed       int64          // dataset + trace seed
	Slots      []loadgen.Slot // offered-rate schedule (a stepped ramp)
	SLO        time.Duration  // p99 objective for the knee finder
	K          int            // top-K width for topk queries
	// Prewarm runs one one-vs-all per structure before the measured
	// trace, converging the memo store to all-hits so the sweep measures
	// the steady-state serving limit rather than the cold compute
	// transient (which would trip the knee finder in the first slot).
	Prewarm bool
}

// DefaultServeLoadSpec is the published sweep: a prewarmed 12-structure
// database under a 500→6000 RPS ramp in 500-RPS steps, so the knee it
// finds is the steady-state serving limit — HTTP handling plus
// coalescer dispatch over a converged memo store.
func DefaultServeLoadSpec() ServeLoadSpec {
	return ServeLoadSpec{
		Structures: 12,
		Seed:       1,
		Slots:      loadgen.Ramp(500, 500, 6000, time.Second),
		SLO:        50 * time.Millisecond,
		K:          3,
		Prewarm:    true,
	}
}

// RunServeLoad replays the spec's trace against one in-process server
// configuration and returns the run's SLO report.
func RunServeLoad(cfg ServeLoadConfig, spec ServeLoadSpec) (*loadgen.Report, error) {
	srv := server.New(server.Config{
		Dataset: "serveload",
		Options: tmalign.FastOptions(),
		Batch:   cfg.Batch,
	})
	defer srv.Close()
	ds := synth.Small(spec.Structures, spec.Seed)
	if err := srv.Preload(ds.Structures); err != nil {
		return nil, err
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	r := &loadgen.Runner{Base: hs.URL}
	ids, err := r.FetchIDs()
	if err != nil {
		return nil, err
	}
	if spec.Prewarm {
		for _, id := range ids {
			resp, err := http.Post(hs.URL+"/onevsall?target="+url.QueryEscape(id), "", nil)
			if err != nil {
				return nil, fmt.Errorf("prewarm %s: %w", id, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("prewarm %s: HTTP %d", id, resp.StatusCode)
			}
		}
	}
	synthSpec := loadgen.SynthSpec{Seed: spec.Seed, Slots: spec.Slots, Mix: loadgen.DefaultMix()}
	arr, err := loadgen.Synthesize(synthSpec)
	if err != nil {
		return nil, err
	}
	reqs, err := loadgen.BuildRequests(arr, ids, spec.Seed, spec.K)
	if err != nil {
		return nil, err
	}
	samples, wall := r.Run(reqs)
	return loadgen.BuildReport(synthSpec, samples, wall, spec.SLO), nil
}

// ServeLoadSweep runs every config against the same seeded trace and
// renders one table: offered RPS vs goodput and latency quantiles per
// slot, the knee slot marked, one block of rows per configuration. The
// per-config reports ride along for callers that want the full JSON.
func ServeLoadSweep(spec ServeLoadSpec, cfgs []ServeLoadConfig) (*stats.Table, []*loadgen.Report, error) {
	tb := stats.NewTable(
		fmt.Sprintf("Serve load sweep: offered RPS vs p99 latency (seed %d, SLO p99 <= %v)",
			spec.Seed, spec.SLO),
		"Config", "Offered RPS", "Goodput", "p50 ms", "p99 ms", "Errors", "")
	reports := make([]*loadgen.Report, 0, len(cfgs))
	for _, cfg := range cfgs {
		rep, err := RunServeLoad(cfg, spec)
		if err != nil {
			return nil, nil, fmt.Errorf("config %q: %w", cfg.Name, err)
		}
		reports = append(reports, rep)
		for _, sl := range rep.Slots {
			mark := ""
			if rep.Knee.Found && sl.Slot == rep.Knee.Slot {
				mark = "<-- knee"
			}
			tb.AddRow(cfg.Name,
				fmt.Sprintf("%.0f", sl.OfferedRPS),
				fmt.Sprintf("%.1f", sl.GoodputRPS),
				fmt.Sprintf("%.1f", sl.P50Ms),
				fmt.Sprintf("%.1f", sl.P99Ms),
				fmt.Sprintf("%d", sl.Errors),
				mark)
		}
	}
	return tb, reports, nil
}
