package experiments

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// TestHostParGoldenCK34 is the determinism-contract golden test: a CK34
// run whose pairs were evaluated with 8 host workers (-hostpar 8) must
// be byte-identical — per-pair results, score dump, report timings and
// the full metrics snapshot — to one evaluated serially (-hostpar 0).
// Host parallelism may only move host wall-clock time.
func TestHostParGoldenCK34(t *testing.T) {
	if testing.Short() {
		t.Skip("native CK34 compute in -short mode")
	}
	opt := tmalign.FastOptions()

	type outcome struct {
		pr      *core.PairResults
		lines   []string
		total   float64
		metrics []byte
	}
	eval := func(workers int) outcome {
		// Fresh dataset per store so nothing is shared but the contract.
		ds, err := synth.ByName("CK34")
		if err != nil {
			t.Fatal(err)
		}
		store := pairstore.New(workers)
		pr := core.ComputeAllPairsShared(ds, opt, store)
		if st := store.Stats(); st.Misses != int64(len(pr.Pairs)) {
			t.Fatalf("store computed %d of %d pairs", st.Misses, len(pr.Pairs))
		}
		var reg *metrics.Registry
		lines, run := runScores(t, pr, func(c *core.Config) {
			reg = metrics.New()
			c.Metrics = reg
		})
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return outcome{pr: pr, lines: lines, total: run.TotalSeconds, metrics: buf.Bytes()}
	}

	serial := eval(1)
	parallel := eval(8)

	for k := range serial.pr.Results {
		if !reflect.DeepEqual(serial.pr.Results[k], parallel.pr.Results[k]) {
			t.Fatalf("pair %v differs between serial and parallel evaluation:\nserial   %+v\nparallel %+v",
				serial.pr.Pairs[k], serial.pr.Results[k], parallel.pr.Results[k])
		}
	}
	for i := range serial.lines {
		if serial.lines[i] != parallel.lines[i] {
			t.Fatalf("score dump diverges at line %d:\nserial   %s\nparallel %s",
				i, serial.lines[i], parallel.lines[i])
		}
	}
	if math.Float64bits(serial.total) != math.Float64bits(parallel.total) {
		t.Errorf("simulated makespan differs: serial %v, parallel %v", serial.total, parallel.total)
	}
	if !bytes.Equal(serial.metrics, parallel.metrics) {
		t.Errorf("metrics snapshots differ (%d vs %d bytes)", len(serial.metrics), len(parallel.metrics))
	}
}
