// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): the serial baselines (Table III), the
// rckAlign-vs-distributed comparison on CK34 (Table II / Figure 5), the
// scaling sweep on both datasets (Table IV / Figure 6) and the summary
// (Table V), plus the ablations DESIGN.md calls out (job ordering,
// hierarchical masters). Each function returns a stats.Table whose rows
// place the reproduction next to the paper's published numbers.
package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/dist"
	"rckalign/internal/fault"
	"rckalign/internal/mcpsc"
	"rckalign/internal/metrics"
	"rckalign/internal/pairstore"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/stats"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
	"rckalign/internal/trace"
)

// Paper-published values (seconds / speedups), keyed by slave count.
var (
	// Table II: CK34 all-vs-all, rckAlign vs distributed TM-align.
	paperT2RckAlign = map[int]float64{
		1: 2027, 3: 689, 5: 420, 7: 305, 9: 238, 11: 196, 13: 168, 15: 148,
		17: 132, 19: 120, 21: 109, 23: 101, 25: 94, 27: 88, 29: 83, 31: 79,
		33: 73, 35: 71, 37: 68, 39: 65, 41: 62, 43: 60, 45: 59, 47: 56,
	}
	paperT2Dist = map[int]float64{
		1: 5212, 3: 1704, 5: 854, 7: 569, 9: 511, 11: 452, 13: 382, 15: 332,
		17: 293, 19: 262, 21: 238, 23: 218, 25: 202, 27: 187, 29: 175, 31: 168,
		33: 174, 35: 173, 37: 145, 39: 143, 41: 132, 43: 126, 45: 122, 47: 120,
	}
	// Table III: serial baselines.
	paperT3 = map[string]map[string]float64{
		"AMD":  {"CK34": 406, "RS119": 7298},
		"P54C": {"CK34": 2029, "RS119": 28597},
	}
	// Table IV: rckAlign speedup/time by slave count.
	paperT4CK34Speedup = map[int]float64{
		1: 1, 3: 2.94, 5: 4.82, 7: 6.66, 9: 8.52, 11: 10.34, 13: 12.09,
		15: 13.74, 17: 15.36, 19: 16.89, 21: 18.53, 23: 20.03, 25: 21.56,
		27: 23.02, 29: 24.52, 31: 25.72, 33: 27.68, 35: 28.43, 37: 29.75,
		39: 30.97, 41: 32.60, 43: 33.59, 45: 34.45, 47: 36.17,
	}
	paperT4RS119Speedup = map[int]float64{
		1: 1, 3: 2.96, 5: 4.91, 7: 6.95, 9: 8.94, 11: 10.97, 13: 12.95,
		15: 14.88, 17: 16.76, 19: 18.64, 21: 20.59, 23: 22.52, 25: 24.52,
		27: 26.49, 29: 28.45, 31: 30.37, 33: 32.32, 35: 34.21, 37: 36.14,
		39: 38.01, 41: 39.74, 43: 41.49, 45: 43.40, 47: 44.78,
	}
	// Table V: summary.
	paperT5 = map[string][3]float64{ // AMD, P54C, SCC(47)
		"CK34":  {406, 2029, 56},
		"RS119": {7298, 28597, 640},
	}
)

// Env holds the precomputed pair results for both datasets.
type Env struct {
	CK34, RS119 *core.PairResults
}

// Load computes or loads both datasets' pair results. cacheDir may be
// empty to force recomputation (slow: minutes of host CPU).
func Load(cacheDir string, opt tmalign.Options) (*Env, error) {
	return LoadShared(cacheDir, opt, pairstore.New(0))
}

// LoadShared is Load backed by a caller-supplied pair store: on a
// disk-cache miss the native comparisons run through the store, so
// drivers that sweep several option sets or datasets in one process
// (see EXPERIMENTS.md) pay for each pair at most once.
func LoadShared(cacheDir string, opt tmalign.Options, store *pairstore.Store) (*Env, error) {
	env := &Env{}
	for _, d := range []struct {
		name string
		dst  **core.PairResults
	}{{"CK34", &env.CK34}, {"RS119", &env.RS119}} {
		ds, err := synth.ByName(d.name)
		if err != nil {
			return nil, err
		}
		path := ""
		if cacheDir != "" {
			path = filepath.Join(cacheDir, d.name+".gob")
		}
		pr, err := core.ComputeOrLoadShared(ds, opt, path, store)
		if err != nil {
			return nil, err
		}
		*d.dst = pr
	}
	return env, nil
}

// LoadCK34Only is Load for experiments that do not need RS119.
func LoadCK34Only(cacheDir string, opt tmalign.Options) (*Env, error) {
	ds, err := synth.ByName("CK34")
	if err != nil {
		return nil, err
	}
	path := ""
	if cacheDir != "" {
		path = filepath.Join(cacheDir, "CK34.gob")
	}
	pr, err := core.ComputeOrLoad(ds, opt, path, 0)
	if err != nil {
		return nil, err
	}
	return &Env{CK34: pr}, nil
}

// TableI renders the SCC configuration (the paper's Table I).
func TableI() *stats.Table {
	cfg := scc.DefaultConfig()
	tb := stats.NewTable("Table I: salient features of the SCC chip", "Feature", "Value")
	tb.AddRow("Core architecture", fmt.Sprintf("%dx%d mesh, %d %s cores per tile",
		cfg.TilesX, cfg.TilesY, cfg.CoresPerTile, "P54C (x86)"))
	tb.AddRow("Cores", fmt.Sprintf("%d @ %.0f MHz", cfg.NumCores(), cfg.CPU.FreqHz/1e6))
	tb.AddRow("Local cache", "16KB L1 + 256KB L2 per core (cost model)")
	tb.AddRow("MPB", fmt.Sprintf("%dKB shared MPB per tile (%dKB total)",
		cfg.MPBBytesPerTile/1024, cfg.MPBTotal()/1024))
	tb.AddRow("Memory controllers", fmt.Sprintf("%d iMCs", cfg.MemControllers))
	return tb
}

// TableII reproduces Table II / Figure 5: CK34 all-vs-all times for
// rckAlign vs the MCPC-driven distributed TM-align, by slave count.
func (e *Env) TableII() (*stats.Table, error) {
	tb := stats.NewTable(
		"Table II / Figure 5: CK34 all-vs-all, rckAlign vs distributed TM-align (seconds)",
		"Slaves", "rckAlign", "paper", "distributed", "paper", "dist/rck")
	counts := core.OddSlaveCounts(47)
	rck, err := core.RunSweep(e.CK34, counts, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	dst, err := dist.RunSweep(e.CK34, counts, dist.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		tb.AddRowf(n,
			rck[i].TotalSeconds, paperT2RckAlign[n],
			dst[i].TotalSeconds, paperT2Dist[n],
			dst[i].TotalSeconds/rck[i].TotalSeconds)
	}
	return tb, nil
}

// TableIII reproduces the serial baselines on both CPU profiles.
func (e *Env) TableIII() *stats.Table {
	tb := stats.NewTable(
		"Table III: serial all-vs-all TM-align baselines (seconds)",
		"Processor", "Dataset", "Measured", "Paper")
	for _, row := range []struct {
		cpu  costmodel.CPU
		key  string
		pr   *core.PairResults
		name string
	}{
		{costmodel.AMD24(), "AMD", e.CK34, "CK34"},
		{costmodel.AMD24(), "AMD", e.RS119, "RS119"},
		{costmodel.P54C(), "P54C", e.CK34, "CK34"},
		{costmodel.P54C(), "P54C", e.RS119, "RS119"},
	} {
		if row.pr == nil {
			continue
		}
		tb.AddRowf(row.cpu.Name, row.name, row.pr.SerialSeconds(row.cpu), paperT3[row.key][row.name])
	}
	return tb
}

// TableIV reproduces Table IV / Figure 6: rckAlign time and speedup by
// slave count for both datasets (speedup relative to one SCC core).
func (e *Env) TableIV() (*stats.Table, error) {
	tb := stats.NewTable(
		"Table IV / Figure 6: rckAlign scaling (speedup vs 1 SCC core)",
		"Slaves",
		"CK34 s", "CK34 speedup", "paper",
		"RS119 s", "RS119 speedup", "paper")
	counts := core.OddSlaveCounts(47)
	cfg := core.DefaultConfig()
	ck, err := core.RunSweep(e.CK34, counts, cfg)
	if err != nil {
		return nil, err
	}
	baseCK := e.CK34.SerialSeconds(costmodel.P54C())
	var rs []core.RunResult
	baseRS := 0.0
	if e.RS119 != nil {
		rs, err = core.RunSweep(e.RS119, counts, cfg)
		if err != nil {
			return nil, err
		}
		baseRS = e.RS119.SerialSeconds(costmodel.P54C())
	}
	for i, n := range counts {
		row := []any{n, ck[i].TotalSeconds, baseCK / ck[i].TotalSeconds, paperT4CK34Speedup[n]}
		if rs != nil {
			row = append(row, rs[i].TotalSeconds, baseRS/rs[i].TotalSeconds, paperT4RS119Speedup[n])
		} else {
			row = append(row, "-", "-", paperT4RS119Speedup[n])
		}
		tb.AddRowf(row...)
	}
	return tb, nil
}

// TableV reproduces the summary comparison (Table V): serial AMD, serial
// P54C and rckAlign with all 47 slaves.
func (e *Env) TableV() (*stats.Table, error) {
	tb := stats.NewTable(
		"Table V: all-vs-all summary (seconds)",
		"Dataset", "AMD@2.4GHz", "paper", "P54C@800MHz", "paper", "SCC 47 slaves", "paper",
		"speedup vs AMD", "speedup vs P54C")
	for _, d := range []struct {
		name string
		pr   *core.PairResults
	}{{"CK34", e.CK34}, {"RS119", e.RS119}} {
		if d.pr == nil {
			continue
		}
		r, err := core.Run(d.pr, 47, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		amd := d.pr.SerialSeconds(costmodel.AMD24())
		p54 := d.pr.SerialSeconds(costmodel.P54C())
		ref := paperT5[d.name]
		tb.AddRowf(d.name, amd, ref[0], p54, ref[1], r.TotalSeconds, ref[2],
			amd/r.TotalSeconds, p54/r.TotalSeconds)
	}
	return tb, nil
}

// Figure5 renders the paper's Figure 5 as an ASCII plot: CK34
// all-vs-all time (log scale) vs slave cores for rckAlign and the
// distributed baseline.
func (e *Env) Figure5(width, height int) (string, error) {
	counts := core.OddSlaveCounts(47)
	rck, err := core.RunSweep(e.CK34, counts, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	dst, err := dist.RunSweep(e.CK34, counts, dist.DefaultConfig())
	if err != nil {
		return "", err
	}
	p := stats.NewPlot("Figure 5: CK34 all-vs-all time vs slave cores (log scale)",
		"number of cores", "time in sec")
	p.LogY = true
	var xs, yr, yd []float64
	for i, n := range counts {
		xs = append(xs, float64(n))
		yr = append(yr, rck[i].TotalSeconds)
		yd = append(yd, dst[i].TotalSeconds)
	}
	if err := p.Add(stats.Series{Name: "TM-align (distributed)", Marker: '+', X: xs, Y: yd}); err != nil {
		return "", err
	}
	if err := p.Add(stats.Series{Name: "rckAlign", Marker: '*', X: xs, Y: yr}); err != nil {
		return "", err
	}
	return p.Render(width, height), nil
}

// Figure6 renders the paper's Figure 6: rckAlign speedup vs slave cores
// for both datasets.
func (e *Env) Figure6(width, height int) (string, error) {
	counts := core.OddSlaveCounts(47)
	p := stats.NewPlot("Figure 6: rckAlign speedup vs slave cores",
		"number of cores", "speedup factor")
	for _, d := range []struct {
		name   string
		marker byte
		pr     *core.PairResults
	}{{"RS119", '#', e.RS119}, {"CK34", '*', e.CK34}} {
		if d.pr == nil {
			continue
		}
		rs, err := core.RunSweep(d.pr, counts, core.DefaultConfig())
		if err != nil {
			return "", err
		}
		base := d.pr.SerialSeconds(costmodel.P54C())
		var xs, ys []float64
		for i, n := range counts {
			xs = append(xs, float64(n))
			ys = append(ys, base/rs[i].TotalSeconds)
		}
		if err := p.Add(stats.Series{Name: d.name, Marker: d.marker, X: xs, Y: ys}); err != nil {
			return "", err
		}
	}
	return p.Render(width, height), nil
}

// SchedulingAblation quantifies the paper's load-balancing future-work
// item: FIFO vs LPT vs SPT vs Random job ordering at several core
// counts (CK34).
func (e *Env) SchedulingAblation() (*stats.Table, error) {
	tb := stats.NewTable(
		"Ablation: job ordering (CK34 all-vs-all, seconds)",
		"Slaves", "FIFO", "LPT", "SPT", "Random", "LPT gain")
	for _, n := range []int{7, 15, 31, 47} {
		times := map[sched.Order]float64{}
		for _, o := range []sched.Order{sched.FIFO, sched.LPT, sched.SPT, sched.Random} {
			cfg := core.DefaultConfig()
			cfg.Order = o
			cfg.OrderSeed = 1
			r, err := core.Run(e.CK34, n, cfg)
			if err != nil {
				return nil, err
			}
			times[o] = r.TotalSeconds
		}
		tb.AddRowf(n, times[sched.FIFO], times[sched.LPT], times[sched.SPT], times[sched.Random],
			fmt.Sprintf("%.1f%%", 100*(times[sched.FIFO]-times[sched.LPT])/times[sched.FIFO]))
	}
	return tb, nil
}

// HierarchyAblation compares the flat single master against two-level
// master trees (CK34), the paper's proposed fix for the master
// bottleneck.
func (e *Env) HierarchyAblation() (*stats.Table, error) {
	tb := stats.NewTable(
		"Ablation: hierarchical masters (CK34 all-vs-all, seconds; worker-slave count held equal)",
		"Workers", "Flat", "2 sub-masters", "4 sub-masters")
	for _, n := range []int{8, 16, 32, 40} {
		row := []any{n}
		for _, h := range []int{0, 2, 4} {
			cfg := core.DefaultConfig()
			cfg.Hierarchy = h
			r, err := core.Run(e.CK34, n, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, r.TotalSeconds)
		}
		tb.AddRowf(row...)
	}
	return tb, nil
}

// FasterCoresAblation tests the conjecture the paper closes with: "it
// is possible that the single master strategy would become the
// bottleneck, if slave processes were running on faster cores", and
// that a hierarchy of masters would relieve it. Core clocks are scaled
// 1x..32x while the mesh stays fixed; efficiency at 47 slaves is
// reported for the flat farm and a 4-sub-master tree (with the same 47
// total cores: 43 workers + 4 sub-masters).
func (e *Env) FasterCoresAblation() (*stats.Table, error) {
	tb := stats.NewTable(
		"Ablation: faster cores (CK34, 47 slave cores, mesh speed fixed)",
		"Core clock", "Flat time (s)", "Flat efficiency", "Master busy", "Tree time (s)")
	for _, mult := range []float64{1, 16, 256, 4096, 65536} {
		cfg := core.DefaultConfig()
		cfg.Chip.CPU.FreqHz *= mult
		rec := trace.New()
		cfg.Trace = rec
		serial := e.CK34.SerialSeconds(cfg.Chip.CPU)
		r, err := core.Run(e.CK34, 47, cfg)
		if err != nil {
			return nil, err
		}
		masterBusy := 0.0
		if r.TotalSeconds > 0 {
			masterBusy = r.CoreBusySeconds[cfg.Chip.CoreName(cfg.MasterCore)] / r.TotalSeconds
		}
		tcfg := cfg
		tcfg.Trace = nil
		tcfg.Hierarchy = 4
		rt, err := core.Run(e.CK34, 43, tcfg)
		if err != nil {
			return nil, err
		}
		eff := serial / r.TotalSeconds / 47
		tb.AddRowf(fmt.Sprintf("%.1f GHz", cfg.Chip.CPU.FreqHz/1e9),
			r.TotalSeconds, eff, fmt.Sprintf("%.1f%%", 100*masterBusy), rt.TotalSeconds)
	}
	return tb, nil
}

// ResilienceSweep quantifies the fault-tolerant farm's degradation on
// e.CK34: the all-vs-all task on 47 slaves with k slave cores
// fail-stopped at staggered points of the run. While any slave
// survives, every pair must still be scored (Lost stays 0); the
// makespan shows what the deadline-driven recovery costs.
func (e *Env) ResilienceSweep() (*stats.Table, error) { return ResilienceSweep(e.CK34) }

// ResilienceSweep is the underlying sweep over any workload (tests use
// a synthetic CK34-sized one, see core.SynthPairResults).
func ResilienceSweep(pr *core.PairResults) (*stats.Table, error) {
	const slaves = 47
	base, err := core.Run(pr, slaves, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t0 := base.TotalSeconds
	tb := stats.NewTable(
		fmt.Sprintf("Resilience: %s all-vs-all, %d slaves, k cores killed mid-run (fault-free makespan %.1f s)",
			pr.Dataset.Name, slaves, t0),
		"Killed", "Time (s)", "Slowdown", "Timeouts", "Retries", "Reassigned", "Lost")
	for _, k := range []int{0, 1, 2, 4, 8} {
		plan := &fault.Plan{Seed: 1}
		for i := 0; i < k; i++ {
			// Victims spread over the slave range, deaths staggered over
			// the first 80% of the fault-free makespan.
			plan.Kills = append(plan.Kills, fault.CoreFailure{
				Core: 1 + (i*11)%slaves,
				At:   0.8 * t0 * float64(i+1) / float64(k+1),
			})
		}
		cfg := core.DefaultConfig()
		cfg.Faults = plan
		r, err := core.Run(pr, slaves, cfg)
		if err != nil {
			return nil, err
		}
		f := r.Faults
		tb.AddRowf(k, r.TotalSeconds, r.TotalSeconds/t0,
			f.Timeouts, f.Retries, f.Reassigned, f.LostJobs)
	}
	return tb, nil
}

// CacheBatchAblation quantifies the structure-cache + batched-dispatch
// wire model on e.CK34 (and e.RS119 when loaded): input bytes over the
// NoC, cache hit rate, and the makespan/mailbox effect at both the
// paper's polling cost and the master-bottleneck regime (polling 1e5).
func (e *Env) CacheBatchAblation() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, pr := range []*core.PairResults{e.CK34, e.RS119} {
		if pr == nil {
			continue
		}
		tb, err := CacheBatchAblation(pr)
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// CacheBatchAblation is the underlying sweep over any workload (tests
// use a synthetic CK34-sized one, see core.SynthPairResults): baseline
// vs cached vs cached+batched vs cached+batched+affinity at 47 slaves.
func CacheBatchAblation(pr *core.PairResults) (*stats.Table, error) {
	const slaves = 47
	// The classic wire ships both structures' coordinates per pair.
	classicBytes := int64(0)
	for _, p := range pr.Pairs {
		classicBytes += int64(core.StructBytes(pr.Dataset.Structures[p.I].Len()) +
			core.StructBytes(pr.Dataset.Structures[p.J].Len()))
	}
	tb := stats.NewTable(
		fmt.Sprintf("Ablation: structure caching + batched dispatch (%s all-vs-all, %d slaves)",
			pr.Dataset.Name, slaves),
		"Config", "Time (s)", "Time @1e5 poll", "Peak Mbox @1e5", "Input MB", "Reduction", "Hit rate")
	for _, row := range []struct {
		name string
		mut  func(*core.Config)
	}{
		{"baseline", func(c *core.Config) {}},
		{"cached", func(c *core.Config) { c.CacheStructs = -1 }},
		{"cached+batched", func(c *core.Config) { c.CacheStructs = -1; c.Batch = 8 }},
		{"cached+batched+affinity", func(c *core.Config) { c.CacheStructs = -1; c.Batch = 8; c.Affinity = true }},
	} {
		cfg := core.DefaultConfig()
		row.mut(&cfg)
		r, err := core.Run(pr, slaves, cfg)
		if err != nil {
			return nil, err
		}
		cfgP := cfg
		cfgP.PollingScale = 1e5
		cfgP.Metrics = metrics.New()
		rp, err := core.Run(pr, slaves, cfgP)
		if err != nil {
			return nil, err
		}
		peak := 0.0
		if rp.Metrics != nil {
			peak = rp.Metrics.PeakMailboxDepth
		}
		inputMB := float64(classicBytes) / 1e6
		reduction, hitRate := 1.0, "-"
		if w := r.Wire; w != nil {
			inputMB = float64(w.ShippedInputBytes) / 1e6
			reduction = w.InputReduction
			hitRate = fmt.Sprintf("%.1f%%", 100*w.CacheHitRate)
		}
		tb.AddRowf(row.name, r.TotalSeconds, rp.TotalSeconds,
			fmt.Sprintf("%.0f", peak), inputMB, reduction, hitRate)
	}
	return tb, nil
}

// ChipScalingSweep runs the multi-chip sharded farm over both datasets
// at 1/2/4/8 chips (47 slaves each), the scale-out scaling curve.
func (e *Env) ChipScalingSweep() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, pr := range []*core.PairResults{e.CK34, e.RS119} {
		if pr == nil {
			continue
		}
		tb, err := ChipScalingSweep(pr, 47, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// ChipScalingSweep is the underlying sweep over any workload: the same
// all-vs-all task sharded across each chip count (nil = 1, 2, 4, 8) at
// slavesPerChip slaves per chip. Speedup and efficiency are relative to
// the first (usually 1-chip) point, so efficiency reads directly as
// "how much of the added silicon the root master wastes"; the peak
// mailbox and root inbox columns show where the single root saturates,
// and the inter-/intra-chip MB columns split the wire volume by
// interconnect tier.
func ChipScalingSweep(pr *core.PairResults, slavesPerChip int, chipCounts []int) (*stats.Table, error) {
	if len(chipCounts) == 0 {
		chipCounts = []int{1, 2, 4, 8}
	}
	tb := stats.NewTable(
		fmt.Sprintf("Scaling: multi-chip sharded farm (%s all-vs-all, %d slaves/chip)",
			pr.Dataset.Name, slavesPerChip),
		"Chips", "Slaves", "Time (s)", "Speedup", "Efficiency",
		"Peak Mbox", "Root Inbox", "Inter MB", "Intra MB")
	base, baseChips := 0.0, 0
	for _, n := range chipCounts {
		reg := metrics.New()
		cfg := core.MultiChipConfig{Config: core.DefaultConfig(), Chips: n}
		cfg.Metrics = reg
		r, err := core.RunMultiChip(pr, slavesPerChip, cfg)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base, baseChips = r.TotalSeconds, n
		}
		speedup := base / r.TotalSeconds
		efficiency := speedup * float64(baseChips) / float64(n)
		peakMbox := 0.0
		if r.Metrics != nil {
			peakMbox = r.Metrics.PeakMailboxDepth
		}
		rootInbox, interMB := "-", "-"
		intraMB := float64(reg.Counter("rcce.send.bytes").Value()) / 1e6
		if ic := r.Interchip; ic != nil {
			rootInbox = fmt.Sprintf("%d", ic.PeakRootInbox)
			interMB = fmt.Sprintf("%.2f", float64(ic.Bytes)/1e6)
			intraMB = float64(ic.IntraChipBytes) / 1e6
		}
		tb.AddRowf(n, n*slavesPerChip, r.TotalSeconds, speedup, efficiency,
			fmt.Sprintf("%.0f", peakMbox), rootInbox, interMB, intraMB)
	}
	return tb, nil
}

// MCPSCPartitionAblation studies the paper's MC-PSC open question —
// how to split the chip's cores among comparison methods of very
// different complexity — by running a multi-criteria all-vs-all task
// (TM-align + gapless-RMSD + contact-overlap) under equal and
// cost-proportional partitions of 12 slave cores.
func MCPSCPartitionAblation() (*stats.Table, error) {
	ds := synth.Small(10, 2468)
	methods := []mcpsc.Method{
		mcpsc.TMAlign{Opt: tmalign.FastOptions()},
		mcpsc.GaplessRMSD{},
		mcpsc.ContactOverlap{},
	}
	tb := stats.NewTable(
		"Ablation: MC-PSC core partitioning (10 chains, 3 methods, 12 slaves)",
		"Strategy", "Partition", "Makespan (s)")
	// One pair store across both strategies: every (method, pair) kernel
	// is evaluated natively once, then the second run replays memoized
	// scores — O(strategies x pairs) native work becomes O(pairs).
	cfg := mcpsc.DefaultRunConfig()
	cfg.Store = pairstore.New(0)
	for _, strat := range []struct {
		name string
		part []int
	}{
		{"equal", mcpsc.EqualPartition(len(methods), 12)},
		{"proportional", mcpsc.ProportionalPartition(ds, methods, 12, costmodel.P54C())},
	} {
		r, err := mcpsc.RunAllVsAll(ds, methods, strat.part, cfg)
		if err != nil {
			return nil, err
		}
		tb.AddRowf(strat.name, fmt.Sprintf("%v", strat.part), r.TotalSeconds)
	}
	return tb, nil
}

// WriteAll regenerates every table (and the figure series, which share
// the tables' data) to w.
func (e *Env) WriteAll(w io.Writer) error {
	fmt.Fprintln(w, TableI().String())
	t2, err := e.TableII()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t2.String())
	fmt.Fprintln(w, e.TableIII().String())
	t4, err := e.TableIV()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t4.String())
	t5, err := e.TableV()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t5.String())
	sa, err := e.SchedulingAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, sa.String())
	ha, err := e.HierarchyAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, ha.String())
	fc, err := e.FasterCoresAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, fc.String())
	mp, err := MCPSCPartitionAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, mp.String())
	rs, err := e.ResilienceSweep()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, rs.String())
	cb, err := e.CacheBatchAblation()
	if err != nil {
		return err
	}
	for _, tb := range cb {
		fmt.Fprintln(w, tb.String())
	}
	return nil
}
