package experiments

import (
	"strings"
	"testing"
	"time"

	"rckalign/internal/loadgen"
)

// tinyServeLoadSpec keeps the sweep under a second of wall time: two
// short slots over a small database.
func tinyServeLoadSpec() ServeLoadSpec {
	return ServeLoadSpec{
		Structures: 6,
		Seed:       2,
		Slots: []loadgen.Slot{
			{RPS: 20, Dur: 300 * time.Millisecond},
			{RPS: 40, Dur: 300 * time.Millisecond},
		},
		SLO:     100 * time.Millisecond,
		K:       3,
		Prewarm: true,
	}
}

func TestServeLoadSweep(t *testing.T) {
	spec := tinyServeLoadSpec()
	cfgs := DefaultServeLoadConfigs()
	tb, reports, err := ServeLoadSweep(spec, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(cfgs) {
		t.Fatalf("%d reports for %d configs", len(reports), len(cfgs))
	}
	if want := len(cfgs) * len(spec.Slots); tb.NumRows() != want {
		t.Errorf("table has %d rows, want %d (one per config x slot)", tb.NumRows(), want)
	}
	for i, rep := range reports {
		if rep.Requests == 0 {
			t.Errorf("config %d served no requests", i)
		}
		if errs := len(rep.Errors); errs != 0 {
			t.Errorf("config %d errors: %v", i, rep.Errors)
		}
		if rep.Seed != spec.Seed {
			t.Errorf("config %d report seed %d", i, rep.Seed)
		}
	}
	// The trace is seeded: both configs must have been offered the exact
	// same request count.
	if reports[0].Requests != reports[1].Requests {
		t.Errorf("configs saw different offered loads: %d vs %d",
			reports[0].Requests, reports[1].Requests)
	}
	out := tb.String()
	for _, cfg := range cfgs {
		if !strings.Contains(out, cfg.Name) {
			t.Errorf("table missing config %q:\n%s", cfg.Name, out)
		}
	}
}
