package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/dist"
	"rckalign/internal/tmalign"
)

// These tests lock in the reproduction quality documented in
// EXPERIMENTS.md, using the committed pair-result caches. They skip
// when the caches are absent (regenerating them natively takes ~36 CPU
// minutes; see testdata/paircache).

func cacheDir(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("full-dataset reproduction in -short mode")
	}
	dir := filepath.Join("..", "..", "testdata", "paircache")
	if _, err := os.Stat(filepath.Join(dir, "CK34.gob")); err != nil {
		t.Skipf("pair cache missing: %v", err)
	}
	return dir
}

func TestReproductionCK34Calibration(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p54 := env.CK34.SerialSeconds(costmodel.P54C())
	amd := env.CK34.SerialSeconds(costmodel.AMD24())
	// The calibration rows must stay on Table III within 1%.
	if rel(p54, 2029) > 0.01 {
		t.Errorf("CK34 P54C serial = %v, want ~2029 (calibrated)", p54)
	}
	if rel(amd, 406) > 0.01 {
		t.Errorf("CK34 AMD serial = %v, want ~406 (calibrated)", amd)
	}
}

func TestReproductionSpeedupShape(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := env.CK34.SerialSeconds(costmodel.P54C())
	// Mid-sweep point: paper 8.52x at 9 slaves; we accept 8-9.5.
	r9, err := core.Run(env.CK34, 9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sp := base / r9.TotalSeconds; sp < 8 || sp > 9.5 {
		t.Errorf("9-slave speedup = %v, want ~8.5-9", sp)
	}
	// Endpoint: paper 36.2x; our lower-variance dataset gives ~42; the
	// claim being locked is "near-linear, within [34, 47]".
	r47, err := core.Run(env.CK34, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sp := base / r47.TotalSeconds; sp < 34 || sp > 47 {
		t.Errorf("47-slave speedup = %v, want near-linear", sp)
	}
}

func TestReproductionDistributedGap(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Experiment I's shape: the distributed baseline is 2-3x slower at
	// both ends of the sweep.
	for _, n := range []int{1, 47} {
		rck, err := core.Run(env.CK34, n, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		dst, err := dist.Run(env.CK34, n, dist.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ratio := dst.TotalSeconds / rck.TotalSeconds
		if ratio < 1.8 || ratio > 3.2 {
			t.Errorf("slaves=%d: dist/rck = %v, want the paper's ~2-2.6x", n, ratio)
		}
	}
}

func TestReproductionRS119ScalesBetter(t *testing.T) {
	dir := cacheDir(t)
	if _, err := os.Stat(filepath.Join(dir, "RS119.gob")); err != nil {
		t.Skipf("RS119 cache missing: %v", err)
	}
	env, err := Load(dir, tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ckBase := env.CK34.SerialSeconds(costmodel.P54C())
	rsBase := env.RS119.SerialSeconds(costmodel.P54C())
	ck, err := core.Run(env.CK34, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.Run(env.RS119, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spCK := ckBase / ck.TotalSeconds
	spRS := rsBase / rs.TotalSeconds
	// Figure 6's headline: the larger dataset scales better.
	if spRS <= spCK {
		t.Errorf("RS119 speedup (%v) should exceed CK34's (%v)", spRS, spCK)
	}
	// Paper: 44.78x; we lock [42, 47.01].
	if spRS < 42 || spRS > 47.01 {
		t.Errorf("RS119 47-slave speedup = %v, want ~45", spRS)
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
