package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/dist"
	"rckalign/internal/farm"
	"rckalign/internal/fault"
	"rckalign/internal/metrics"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
	"rckalign/internal/tmalign"
)

// These tests lock in the reproduction quality documented in
// EXPERIMENTS.md, using the committed pair-result caches. They skip
// when the caches are absent (regenerating them natively takes ~36 CPU
// minutes; see testdata/paircache).

func cacheDir(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("full-dataset reproduction in -short mode")
	}
	dir := filepath.Join("..", "..", "testdata", "paircache")
	if _, err := os.Stat(filepath.Join(dir, "CK34.gob")); err != nil {
		t.Skipf("pair cache missing: %v", err)
	}
	return dir
}

func TestReproductionCK34Calibration(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p54 := env.CK34.SerialSeconds(costmodel.P54C())
	amd := env.CK34.SerialSeconds(costmodel.AMD24())
	// The calibration rows must stay on Table III within 1%.
	if rel(p54, 2029) > 0.01 {
		t.Errorf("CK34 P54C serial = %v, want ~2029 (calibrated)", p54)
	}
	if rel(amd, 406) > 0.01 {
		t.Errorf("CK34 AMD serial = %v, want ~406 (calibrated)", amd)
	}
}

func TestReproductionSpeedupShape(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := env.CK34.SerialSeconds(costmodel.P54C())
	// Mid-sweep point: paper 8.52x at 9 slaves; we accept 8-9.5.
	r9, err := core.Run(env.CK34, 9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sp := base / r9.TotalSeconds; sp < 8 || sp > 9.5 {
		t.Errorf("9-slave speedup = %v, want ~8.5-9", sp)
	}
	// Endpoint: paper 36.2x; our lower-variance dataset gives ~42; the
	// claim being locked is "near-linear, within [34, 47]".
	r47, err := core.Run(env.CK34, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sp := base / r47.TotalSeconds; sp < 34 || sp > 47 {
		t.Errorf("47-slave speedup = %v, want near-linear", sp)
	}
}

func TestReproductionDistributedGap(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Experiment I's shape: the distributed baseline is 2-3x slower at
	// both ends of the sweep.
	for _, n := range []int{1, 47} {
		rck, err := core.Run(env.CK34, n, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		dst, err := dist.Run(env.CK34, n, dist.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ratio := dst.TotalSeconds / rck.TotalSeconds
		if ratio < 1.8 || ratio > 3.2 {
			t.Errorf("slaves=%d: dist/rck = %v, want the paper's ~2-2.6x", n, ratio)
		}
	}
}

func TestReproductionRS119ScalesBetter(t *testing.T) {
	dir := cacheDir(t)
	if _, err := os.Stat(filepath.Join(dir, "RS119.gob")); err != nil {
		t.Skipf("RS119 cache missing: %v", err)
	}
	env, err := Load(dir, tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ckBase := env.CK34.SerialSeconds(costmodel.P54C())
	rsBase := env.RS119.SerialSeconds(costmodel.P54C())
	ck, err := core.Run(env.CK34, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.Run(env.RS119, 47, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spCK := ckBase / ck.TotalSeconds
	spRS := rsBase / rs.TotalSeconds
	// Figure 6's headline: the larger dataset scales better.
	if spRS <= spCK {
		t.Errorf("RS119 speedup (%v) should exceed CK34's (%v)", spRS, spCK)
	}
	// Paper: 44.78x; we lock [42, 47.01].
	if spRS < 42 || spRS > 47.01 {
		t.Errorf("RS119 47-slave speedup = %v, want ~45", spRS)
	}
}

// runScores executes one CK34 run at 47 slaves and renders every
// collected pair's scores as canonical full-precision lines, sorted by
// pair — the golden form for bit-for-bit equivalence checks.
func runScores(t *testing.T, pr *core.PairResults, mut func(*core.Config)) ([]string, core.RunResult) {
	t.Helper()
	pairOf := make(map[*tmalign.Result]sched.Pair, len(pr.Pairs))
	for k, r := range pr.Results {
		pairOf[r] = pr.Pairs[k]
	}
	got := map[sched.Pair]*tmalign.Result{}
	cfg := core.DefaultConfig()
	cfg.Collector = farm.CollectorFunc(func(r rckskel.Result) {
		res := r.Payload.(*tmalign.Result)
		got[pairOf[res]] = res
	})
	mut(&cfg)
	run, err := core.Run(pr, 47, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 0, len(pr.Pairs))
	for _, p := range pr.Pairs { // canonical all-vs-all order
		res, ok := got[p]
		if !ok {
			t.Fatalf("pair %v never collected", p)
		}
		lines = append(lines, fmt.Sprintf("%d %d %.17g %.17g %.17g %d %.17g",
			p.I, p.J, res.TM1, res.TM2, res.RMSD, res.AlignedLen, res.SeqID))
	}
	return lines, run
}

// TestReproductionWireGoldenScores is this PR's acceptance test on the
// real CK34 dataset: the cached/batched/affinity wire model must
// produce byte-identical TM-align score dumps to the classic farm —
// fault-free and under a FARMFT fault plan — while shipping >= 5x fewer
// input bytes and relieving the master's mailbox in the heavy-polling
// regime.
func TestReproductionWireGoldenScores(t *testing.T) {
	env, err := LoadCK34Only(cacheDir(t), tmalign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pr := env.CK34
	classic, base := runScores(t, pr, func(*core.Config) {})
	if len(classic) != 561 {
		t.Fatalf("classic run scored %d of 561 pairs", len(classic))
	}

	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"cached", func(c *core.Config) { c.CacheStructs = -1 }},
		{"cached+batched", func(c *core.Config) { c.CacheStructs = -1; c.Batch = 8 }},
		{"cached+batched+affinity", func(c *core.Config) { c.CacheStructs = -1; c.Batch = 8; c.Affinity = true }},
		{"cached+batched under faults", func(c *core.Config) {
			c.CacheStructs = -1
			c.Batch = 8
			c.Faults = &fault.Plan{Seed: 5, Kills: []fault.CoreFailure{
				{Core: 7, At: 0.3 * base.TotalSeconds},
				{Core: 22, At: 0.55 * base.TotalSeconds},
			}}
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			lines, run := runScores(t, pr, v.mut)
			if !reflect.DeepEqual(lines, classic) {
				for i := range lines {
					if lines[i] != classic[i] {
						t.Fatalf("score divergence at line %d:\n got %s\nwant %s", i, lines[i], classic[i])
					}
				}
				t.Fatal("score dumps differ")
			}
			if run.Wire == nil {
				t.Fatal("no wire report")
			}
		})
	}

	// Acceptance: >= 5x fewer input bytes over the NoC with the full
	// cached+batched+affinity wire.
	_, best := runScores(t, pr, func(c *core.Config) {
		c.CacheStructs = -1
		c.Batch = 8
		c.Affinity = true
	})
	if best.Wire.InputReduction < 5 {
		t.Errorf("CK34 input reduction = %.2fx, want >= 5x", best.Wire.InputReduction)
	}

	// Acceptance: lower peak master mailbox depth at polling 1e5.
	peak := func(mut func(*core.Config)) float64 {
		cfg := core.DefaultConfig()
		cfg.PollingScale = 1e5
		cfg.Metrics = metrics.New()
		mut(&cfg)
		r, err := core.Run(pr, 47, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics.PeakMailboxDepth
	}
	pBase := peak(func(*core.Config) {})
	pBatched := peak(func(c *core.Config) { c.CacheStructs = -1; c.Batch = 8 })
	if pBase <= 1 {
		t.Fatalf("heavy polling did not congest the classic master (peak %v)", pBase)
	}
	if pBatched >= pBase {
		t.Errorf("peak mailbox at polling 1e5: batched %v >= classic %v", pBatched, pBase)
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}
