package experiments

import (
	"strings"
	"testing"

	"rckalign/internal/core"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

// smallEnv builds an Env over a small dataset so the table drivers can
// be exercised without the full CK34/RS119 native compute.
func smallEnv() *Env {
	ds := synth.Small(8, 31)
	pr := core.ComputeAllPairs(ds, tmalign.FastOptions(), 0)
	return &Env{CK34: pr}
}

func TestTableI(t *testing.T) {
	tb := TableI()
	out := tb.String()
	for _, want := range []string{"6x4 mesh", "48 @ 800 MHz", "16KB", "384KB", "4 iMCs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	env := smallEnv()
	tb, err := env.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 24 {
		t.Errorf("Table II rows = %d, want 24 (slaves 1..47 odd)", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "rckAlign") || !strings.Contains(out, "distributed") {
		t.Error("Table II missing columns")
	}
}

func TestTableIIIAndIVAndVWithMissingRS119(t *testing.T) {
	env := smallEnv()
	t3 := env.TableIII()
	if t3.NumRows() != 2 { // only CK34 rows when RS119 is nil
		t.Errorf("Table III rows = %d, want 2", t3.NumRows())
	}
	t4, err := env.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if t4.NumRows() != 24 {
		t.Errorf("Table IV rows = %d", t4.NumRows())
	}
	t5, err := env.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if t5.NumRows() != 1 {
		t.Errorf("Table V rows = %d, want 1 (CK34 only)", t5.NumRows())
	}
}

func TestPaperReferenceSeries(t *testing.T) {
	// The embedded paper values must cover all 24 sweep points and be
	// internally consistent (Table IV speedup 1 at 1 slave; Table V
	// agrees with Tables II/III at the endpoints).
	for n := 1; n <= 47; n += 2 {
		if _, ok := paperT2RckAlign[n]; !ok {
			t.Errorf("Table II rckAlign missing n=%d", n)
		}
		if _, ok := paperT2Dist[n]; !ok {
			t.Errorf("Table II dist missing n=%d", n)
		}
		if _, ok := paperT4CK34Speedup[n]; !ok {
			t.Errorf("Table IV CK34 missing n=%d", n)
		}
		if _, ok := paperT4RS119Speedup[n]; !ok {
			t.Errorf("Table IV RS119 missing n=%d", n)
		}
	}
	if paperT4CK34Speedup[1] != 1 || paperT4RS119Speedup[1] != 1 {
		t.Error("speedup at 1 slave must be 1")
	}
	if paperT2RckAlign[47] != paperT5["CK34"][2] {
		t.Error("Table II and Table V disagree on CK34 @ 47 slaves")
	}
	if paperT3["P54C"]["CK34"] != paperT5["CK34"][1] {
		t.Error("Table III and Table V disagree on the CK34 P54C baseline")
	}
	// Near-linear speedup claim: paper's own numbers.
	if paperT4RS119Speedup[47] < 40 {
		t.Error("paper's RS119 speedup should be near-linear")
	}
}

func TestSchedulingAblation(t *testing.T) {
	env := smallEnv()
	tb, err := env.SchedulingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Errorf("ablation rows = %d", tb.NumRows())
	}
}

func TestHierarchyAblation(t *testing.T) {
	env := smallEnv()
	tb, err := env.HierarchyAblation()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Errorf("hierarchy rows = %d", tb.NumRows())
	}
}

func TestWriteAll(t *testing.T) {
	env := smallEnv()
	var sb strings.Builder
	if err := env.WriteAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Table V", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteAll missing %q", want)
		}
	}
}

func TestFasterCoresAblation(t *testing.T) {
	env := smallEnv()
	tb, err := env.FasterCoresAblation()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Errorf("faster-cores rows = %d", tb.NumRows())
	}
}

func TestMCPSCPartitionAblation(t *testing.T) {
	tb, err := MCPSCPartitionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Errorf("MC-PSC ablation rows = %d", tb.NumRows())
	}
}

func TestFigureRenderers(t *testing.T) {
	env := smallEnv()
	f5, err := env.Figure5(50, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "rckAlign", "distributed", "log scale"} {
		if !strings.Contains(f5, want) {
			t.Errorf("Figure 5 missing %q", want)
		}
	}
	f6, err := env.Figure6(50, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 6", "CK34", "speedup"} {
		if !strings.Contains(f6, want) {
			t.Errorf("Figure 6 missing %q", want)
		}
	}
	// RS119 nil: Figure 6 renders the CK34 series only, without error.
	if strings.Contains(f6, "RS119") {
		t.Error("Figure 6 should omit the missing RS119 series")
	}
}

// synthCK34 fabricates a CK34-sized workload (34 chains, 561 pairs)
// without running native TM-align, so the resilience sweep stays fast.
func synthCK34() *core.PairResults {
	ds := synth.CK34()
	lengths := make([]int, ds.Len())
	for i, s := range ds.Structures {
		lengths[i] = s.Len()
	}
	return core.SynthPairResults("CK34-synth", lengths)
}

func TestCacheBatchAblation(t *testing.T) {
	tb, err := CacheBatchAblation(synthCK34())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 4 {
		t.Errorf("cache/batch ablation rows = %d, want 4", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"baseline", "cached+batched+affinity", "Reduction", "Hit rate", "Peak Mbox"} {
		if !strings.Contains(out, want) {
			t.Errorf("cache/batch table missing %q:\n%s", want, out)
		}
	}
}

func TestResilienceSweep(t *testing.T) {
	tb, err := ResilienceSweep(synthCK34())
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 5 {
		t.Errorf("resilience rows = %d, want 5 (k = 0,1,2,4,8)", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"Killed", "Slowdown", "Lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("resilience table missing %q:\n%s", want, out)
		}
	}
}

func TestChipScalingSweep(t *testing.T) {
	tb, err := ChipScalingSweep(synthCK34(), 12, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Errorf("chip scaling rows = %d, want 3", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"Chips", "Efficiency", "Root Inbox", "Inter MB", "Intra MB", "slaves/chip"} {
		if !strings.Contains(out, want) {
			t.Errorf("chip scaling table missing %q:\n%s", want, out)
		}
	}
	// The 1-chip row has no interchip tier.
	if !strings.Contains(out, "-") {
		t.Errorf("1-chip row should dash out the interchip columns:\n%s", out)
	}
}
