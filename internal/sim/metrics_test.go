package sim

import (
	"testing"

	"rckalign/internal/metrics"
)

// TestEngineMetrics: spawns, kills, wake-ups, callbacks and block
// durations are all counted, and enabling them does not change the
// simulated clock.
func TestEngineMetrics(t *testing.T) {
	run := func(reg *metrics.Registry) float64 {
		e := NewEngine()
		e.SetMetrics(reg)
		ch := NewChan("c")
		e.Spawn("sender", func(p *Process) {
			p.Wait(1)
			ch.Send(p, 42)
		})
		e.Spawn("receiver", func(p *Process) {
			if got := ch.Recv(p).(int); got != 42 {
				t.Errorf("recv = %v", got)
			}
		})
		victim := e.Spawn("victim", func(p *Process) { p.Wait(100) })
		e.After(0.5, func() { e.Kill(victim) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}

	reg := metrics.New()
	instrumented := run(reg)
	if bare := run(nil); bare != instrumented {
		t.Errorf("metrics changed the clock: %v vs %v", instrumented, bare)
	}
	if got := reg.Counter("sim.proc.spawned").Value(); got != 3 {
		t.Errorf("spawned = %v, want 3", got)
	}
	if got := reg.Counter("sim.proc.killed").Value(); got != 1 {
		t.Errorf("killed = %v, want 1", got)
	}
	if got := reg.Counter("sim.events.callbacks").Value(); got != 1 {
		t.Errorf("callbacks = %v, want 1", got)
	}
	if reg.Counter("sim.events.process_wakeups").Value() == 0 {
		t.Error("no wake-ups counted")
	}
	// The receiver blocked for 1 s waiting on the rendezvous.
	h := reg.Histogram("sim.proc.block_seconds", metrics.TimeBuckets)
	if h.Count() == 0 || h.MaxValue() != 1 {
		t.Errorf("block histogram count=%d max=%v, want max 1", h.Count(), h.MaxValue())
	}
	if got := reg.Counter("sim.proc.blocks").Value(); got != float64(h.Count()) {
		t.Errorf("blocks counter %v != histogram count %d", got, h.Count())
	}
}
