package sim

import "math"

// Chan is a rendezvous (unbuffered) channel between simulated processes:
// Send blocks until a matching Recv and vice versa, both resuming at the
// rendezvous time. Waiters are served FIFO, so behaviour is deterministic.
// Waiters belonging to killed processes are skipped lazily, and receives
// can carry a timeout or be aborted by a latch (fault-tolerant protocols).
type Chan struct {
	name      string
	senders   []*sendReq
	receivers []*recvReq
}

type sendReq struct {
	p *Process
	v any
}

type recvReq struct {
	p    *Process
	slot *any
	// fulfilled is set when a sender matches this request; cancelled when
	// a timeout or abort latch claimed it first. A request has exactly
	// one of the two outcomes.
	fulfilled bool
	cancelled bool
}

// NewChan returns an empty rendezvous channel.
func NewChan(name string) *Chan { return &Chan{name: name} }

// liveSender pops dead senders and returns the first live one (nil when
// none).
func (c *Chan) liveSender() *sendReq {
	for len(c.senders) > 0 {
		s := c.senders[0]
		if s.p.dead() {
			c.senders = c.senders[1:]
			continue
		}
		return s
	}
	return nil
}

// liveReceiver pops dead or cancelled receivers and returns the first
// live one (nil when none).
func (c *Chan) liveReceiver() *recvReq {
	for len(c.receivers) > 0 {
		r := c.receivers[0]
		if r.p.dead() || r.cancelled {
			c.receivers = c.receivers[1:]
			continue
		}
		return r
	}
	return nil
}

// Send delivers v to a receiver, blocking p until one arrives.
func (c *Chan) Send(p *Process, v any) {
	if r := c.liveReceiver(); r != nil {
		c.receivers = c.receivers[1:]
		*r.slot = v
		r.fulfilled = true
		r.p.unblock()
		return
	}
	c.senders = append(c.senders, &sendReq{p: p, v: v})
	p.block("send:" + c.name)
}

// Recv returns the next value, blocking p until a sender arrives.
func (c *Chan) Recv(p *Process) any {
	v, _ := c.recv(p, math.Inf(1), nil)
	return v
}

// RecvTimeout is Recv with a deadline: it returns (value, true) on a
// rendezvous within d seconds, else (nil, false) at the deadline.
func (c *Chan) RecvTimeout(p *Process, d float64) (any, bool) {
	return c.recv(p, d, nil)
}

// RecvOrLatch is Recv aborted by a latch: it returns (value, true) on a
// rendezvous, or (nil, false) once l fires with no rendezvous yet (or
// immediately, if l has already fired).
func (c *Chan) RecvOrLatch(p *Process, l *Latch) (any, bool) {
	return c.recv(p, math.Inf(1), l)
}

// recv implements the receive variants: a plain receive (d = +Inf,
// l = nil), a deadline, an abort latch, or both.
func (c *Chan) recv(p *Process, d float64, l *Latch) (any, bool) {
	if s := c.liveSender(); s != nil {
		c.senders = c.senders[1:]
		s.p.unblock()
		return s.v, true
	}
	if l != nil && l.IsSet() {
		return nil, false
	}
	var slot any
	req := &recvReq{p: p, slot: &slot}
	c.receivers = append(c.receivers, req)
	cancel := func() {
		if req.fulfilled || req.cancelled || p.dead() {
			return
		}
		req.cancelled = true
		p.unblock()
	}
	if !math.IsInf(d, 1) {
		p.e.After(d, cancel)
	}
	if l != nil {
		l.onSet = append(l.onSet, cancel)
	}
	p.block("recv:" + c.name)
	if req.cancelled {
		return nil, false
	}
	return slot, true
}

// TrySend delivers v if a receiver is already waiting and reports whether
// it did; it never blocks.
func (c *Chan) TrySend(p *Process, v any) bool {
	if c.liveReceiver() == nil {
		return false
	}
	c.Send(p, v)
	return true
}

// Pending reports waiting senders (>0) or receivers (<0); 0 = idle.
// Dead waiters are not counted.
func (c *Chan) Pending() int {
	if s := c.liveSender(); s != nil {
		return len(c.senders)
	}
	if r := c.liveReceiver(); r != nil {
		return -len(c.receivers)
	}
	return 0
}

// latchWaiter tracks one process parked in Latch.Wait/WaitTimeout.
type latchWaiter struct {
	p         *Process
	released  bool // latch fired
	cancelled bool // timeout fired first
}

// Latch is a one-shot completion flag: Wait blocks until Set has been
// called (immediately returning if it already was). Multiple waiters
// are all released at the Set time. Callbacks registered internally
// (channel aborts) run at Set time as well.
type Latch struct {
	name    string
	set     bool
	waiting []*latchWaiter
	onSet   []func()
}

// NewLatch returns an unset latch.
func NewLatch(name string) *Latch { return &Latch{name: name} }

// Set releases the latch; all current and future waiters proceed.
// Calling Set twice is a no-op.
func (l *Latch) Set() {
	if l.set {
		return
	}
	l.set = true
	for _, w := range l.waiting {
		if w.cancelled || w.p.dead() {
			continue
		}
		w.released = true
		w.p.unblock()
	}
	l.waiting = nil
	for _, fn := range l.onSet {
		fn()
	}
	l.onSet = nil
}

// IsSet reports whether the latch has fired.
func (l *Latch) IsSet() bool { return l.set }

// Wait blocks p until the latch is set.
func (l *Latch) Wait(p *Process) {
	if l.set {
		return
	}
	w := &latchWaiter{p: p}
	l.waiting = append(l.waiting, w)
	p.block("latch:" + l.name)
}

// WaitTimeout blocks p until the latch fires (true) or d seconds pass
// (false).
func (l *Latch) WaitTimeout(p *Process, d float64) bool {
	if l.set {
		return true
	}
	w := &latchWaiter{p: p}
	l.waiting = append(l.waiting, w)
	p.e.After(d, func() {
		if w.released || w.cancelled || p.dead() {
			return
		}
		w.cancelled = true
		p.unblock()
	})
	p.block("latch:" + l.name)
	return !w.cancelled
}

// Queue is an unbounded asynchronous FIFO between simulated processes:
// Put never blocks (the sender proceeds immediately, like raising a flag
// in its own MPB) and Get blocks until an item is available. Items are
// delivered in Put order, so behaviour is deterministic.
type Queue struct {
	name    string
	items   []any
	getters []*recvReq
}

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue { return &Queue{name: name} }

// Put appends v; if a getter is parked, it receives v at the current
// time. Put is callable from any process or callback context.
func (q *Queue) Put(v any) {
	for len(q.getters) > 0 {
		r := q.getters[0]
		q.getters = q.getters[1:]
		if r.p.dead() || r.cancelled {
			continue
		}
		*r.slot = v
		r.fulfilled = true
		r.p.unblock()
		return
	}
	q.items = append(q.items, v)
}

// Get returns the next item, blocking p until one is Put.
func (q *Queue) Get(p *Process) any {
	v, _ := q.GetTimeout(p, math.Inf(1))
	return v
}

// GetTimeout is Get with a deadline: (item, true) when one arrives
// within d seconds, else (nil, false).
func (q *Queue) GetTimeout(p *Process, d float64) (any, bool) {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v, true
	}
	var slot any
	req := &recvReq{p: p, slot: &slot}
	q.getters = append(q.getters, req)
	if !math.IsInf(d, 1) {
		p.e.After(d, func() {
			if req.fulfilled || req.cancelled || p.dead() {
				return
			}
			req.cancelled = true
			p.unblock()
		})
	}
	p.block("queue:" + q.name)
	if req.cancelled {
		return nil, false
	}
	return slot, true
}

// Len returns the number of queued (undelivered) items.
func (q *Queue) Len() int { return len(q.items) }

// Drain removes and returns all queued items.
func (q *Queue) Drain() []any {
	out := q.items
	q.items = nil
	return out
}

// Barrier blocks processes until n of them have arrived, then releases
// all of them at the arrival time of the last.
type Barrier struct {
	name    string
	n       int
	waiting []*Process
}

// NewBarrier returns a barrier for n participants (n >= 1).
func NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		n = 1
	}
	return &Barrier{name: name, n: n}
}

// Wait blocks p until all n participants have called Wait.
func (b *Barrier) Wait(p *Process) {
	if len(b.waiting)+1 >= b.n {
		for _, q := range b.waiting {
			q.unblock()
		}
		b.waiting = nil
		return
	}
	b.waiting = append(b.waiting, p)
	p.block("barrier:" + b.name)
}

// Waiting returns the number of processes currently parked at the
// barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Resource is a counted FIFO resource (disk controller, mesh link, ...):
// Acquire blocks while all slots are busy; Release hands a slot to the
// longest waiter. Killed waiters are skipped when a slot frees up.
type Resource struct {
	name     string
	capacity int
	inUse    int
	queue    []*Process
	// Busy time accounting for utilisation reports.
	busyStart map[*Process]float64
	busyTotal float64
}

// NewResource returns a resource with the given slot count (>= 1).
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{name: name, capacity: capacity, busyStart: map[*Process]float64{}}
}

// Acquire takes a slot, blocking until one frees up.
func (r *Resource) Acquire(p *Process) {
	if r.inUse < r.capacity {
		r.inUse++
		r.busyStart[p] = p.Now()
		return
	}
	r.queue = append(r.queue, p)
	p.block("acquire:" + r.name)
	// Woken by Release, which already transferred the slot to us.
	r.busyStart[p] = p.Now()
}

// Release frees p's slot; the longest live waiter (if any) inherits it.
func (r *Resource) Release(p *Process) {
	if start, ok := r.busyStart[p]; ok {
		r.busyTotal += p.Now() - start
		delete(r.busyStart, p)
	}
	for len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		if next.dead() {
			continue
		}
		next.unblock()
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d simulated seconds, and
// releases it.
func (r *Resource) Use(p *Process, d float64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p)
}

// InUse returns the number of occupied slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusySeconds returns the total slot-seconds consumed so far (completed
// holds only).
func (r *Resource) BusySeconds() float64 { return r.busyTotal }
