package sim

// Chan is a rendezvous (unbuffered) channel between simulated processes:
// Send blocks until a matching Recv and vice versa, both resuming at the
// rendezvous time. Waiters are served FIFO, so behaviour is deterministic.
type Chan struct {
	name      string
	senders   []*sendReq
	receivers []*recvReq
}

type sendReq struct {
	p *Process
	v any
}

type recvReq struct {
	p    *Process
	slot *any
}

// NewChan returns an empty rendezvous channel.
func NewChan(name string) *Chan { return &Chan{name: name} }

// Send delivers v to a receiver, blocking p until one arrives.
func (c *Chan) Send(p *Process, v any) {
	if len(c.receivers) > 0 {
		r := c.receivers[0]
		c.receivers = c.receivers[1:]
		*r.slot = v
		r.p.unblock()
		return
	}
	c.senders = append(c.senders, &sendReq{p: p, v: v})
	p.block("send:" + c.name)
}

// Recv returns the next value, blocking p until a sender arrives.
func (c *Chan) Recv(p *Process) any {
	if len(c.senders) > 0 {
		s := c.senders[0]
		c.senders = c.senders[1:]
		s.p.unblock()
		return s.v
	}
	var slot any
	c.receivers = append(c.receivers, &recvReq{p: p, slot: &slot})
	p.block("recv:" + c.name)
	return slot
}

// TrySend delivers v if a receiver is already waiting and reports whether
// it did; it never blocks.
func (c *Chan) TrySend(p *Process, v any) bool {
	if len(c.receivers) == 0 {
		return false
	}
	c.Send(p, v)
	return true
}

// Pending reports waiting senders (>0) or receivers (<0); 0 = idle.
func (c *Chan) Pending() int {
	if len(c.senders) > 0 {
		return len(c.senders)
	}
	return -len(c.receivers)
}

// Latch is a one-shot completion flag: Wait blocks until Set has been
// called (immediately returning if it already was). Multiple waiters
// are all released at the Set time.
type Latch struct {
	name    string
	set     bool
	waiting []*Process
}

// NewLatch returns an unset latch.
func NewLatch(name string) *Latch { return &Latch{name: name} }

// Set releases the latch; all current and future waiters proceed.
// Calling Set twice is a no-op.
func (l *Latch) Set() {
	if l.set {
		return
	}
	l.set = true
	for _, p := range l.waiting {
		p.unblock()
	}
	l.waiting = nil
}

// IsSet reports whether the latch has fired.
func (l *Latch) IsSet() bool { return l.set }

// Wait blocks p until the latch is set.
func (l *Latch) Wait(p *Process) {
	if l.set {
		return
	}
	l.waiting = append(l.waiting, p)
	p.block("latch:" + l.name)
}

// Barrier blocks processes until n of them have arrived, then releases
// all of them at the arrival time of the last.
type Barrier struct {
	name    string
	n       int
	waiting []*Process
}

// NewBarrier returns a barrier for n participants (n >= 1).
func NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		n = 1
	}
	return &Barrier{name: name, n: n}
}

// Wait blocks p until all n participants have called Wait.
func (b *Barrier) Wait(p *Process) {
	if len(b.waiting)+1 >= b.n {
		for _, q := range b.waiting {
			q.unblock()
		}
		b.waiting = nil
		return
	}
	b.waiting = append(b.waiting, p)
	p.block("barrier:" + b.name)
}

// Waiting returns the number of processes currently parked at the
// barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Resource is a counted FIFO resource (disk controller, mesh link, ...):
// Acquire blocks while all slots are busy; Release hands a slot to the
// longest waiter.
type Resource struct {
	name     string
	capacity int
	inUse    int
	queue    []*Process
	// Busy time accounting for utilisation reports.
	busyStart map[*Process]float64
	busyTotal float64
}

// NewResource returns a resource with the given slot count (>= 1).
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{name: name, capacity: capacity, busyStart: map[*Process]float64{}}
}

// Acquire takes a slot, blocking until one frees up.
func (r *Resource) Acquire(p *Process) {
	if r.inUse < r.capacity {
		r.inUse++
		r.busyStart[p] = p.Now()
		return
	}
	r.queue = append(r.queue, p)
	p.block("acquire:" + r.name)
	// Woken by Release, which already transferred the slot to us.
	r.busyStart[p] = p.Now()
}

// Release frees p's slot; the longest waiter (if any) inherits it.
func (r *Resource) Release(p *Process) {
	if start, ok := r.busyStart[p]; ok {
		r.busyTotal += p.Now() - start
		delete(r.busyStart, p)
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next.unblock()
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d simulated seconds, and
// releases it.
func (r *Resource) Use(p *Process, d float64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p)
}

// InUse returns the number of occupied slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.queue) }

// BusySeconds returns the total slot-seconds consumed so far (completed
// holds only).
func (r *Resource) BusySeconds() float64 { return r.busyTotal }
