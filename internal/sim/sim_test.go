package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestWaitAdvancesClock(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Spawn("a", func(p *Process) {
		times = append(times, p.Now())
		p.Wait(1.5)
		times = append(times, p.Now())
		p.Wait(2.5)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 4}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("times[%d] = %v, want %v", i, times[i], w)
		}
	}
	if e.Now() != 4 {
		t.Errorf("final time %v", e.Now())
	}
}

func TestNegativeAndNaNWait(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Process) {
		p.Wait(-5)
		if p.Now() != 0 {
			t.Errorf("negative wait advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleOrderingDeterministic(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events fired out of schedule order: %v", order)
	}
}

func TestEventTimeOrdering(t *testing.T) {
	e := NewEngine()
	var order []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		tm := rng.Float64() * 100
		e.Schedule(tm, func() { order = append(order, tm) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(order) {
		t.Error("events fired out of time order")
	}
}

func TestInterleavedProcesses(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Spawn("a", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(2)
			log = append(log, "a")
		}
	})
	e.Spawn("b", func(p *Process) {
		for i := 0; i < 2; i++ {
			p.Wait(3)
			log = append(log, "b")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a"} // t=2,3,4,6,6 (b's t=6 event was scheduled first)
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var got any
	var recvTime float64
	e.Spawn("sender", func(p *Process) {
		p.Wait(5)
		c.Send(p, 42)
	})
	e.Spawn("receiver", func(p *Process) {
		got = c.Recv(p)
		recvTime = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %v", got)
	}
	if recvTime != 5 {
		t.Errorf("receive completed at %v, want 5 (rendezvous)", recvTime)
	}
}

func TestChanSenderBlocksForReceiver(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var sendDone float64
	e.Spawn("sender", func(p *Process) {
		c.Send(p, "x")
		sendDone = p.Now()
	})
	e.Spawn("receiver", func(p *Process) {
		p.Wait(7)
		c.Recv(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 7 {
		t.Errorf("send completed at %v, want 7", sendDone)
	}
}

func TestChanFIFO(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var got []any
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("s", func(p *Process) { c.Send(p, i) })
	}
	e.Spawn("r", func(p *Process) {
		p.Wait(1)
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestTrySend(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var sent bool
	e.Spawn("s", func(p *Process) {
		sent = c.TrySend(p, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sent {
		t.Error("TrySend with no receiver should fail")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := NewChan("never")
	e.Spawn("stuck", func(p *Process) {
		c.Recv(p)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Errorf("blocked = %v", de.Blocked)
	}
	if de.Error() == "" {
		t.Error("empty error string")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource("disk", 1)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Process) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v (serialised)", finish, want)
		}
	}
	if r.BusySeconds() != 40 {
		t.Errorf("busy seconds = %v, want 40", r.BusySeconds())
	}
}

func TestResourceCapacity2(t *testing.T) {
	e := NewEngine()
	r := NewResource("link", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Process) {
			r.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finish at 10,10,20,20.
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEngine()
	r := NewResource("res", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("w", func(p *Process) {
			p.Wait(float64(i) * 0.001) // stagger arrival
			r.Acquire(p)
			order = append(order, i)
			p.Wait(1)
			r.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Errorf("resource not FIFO: %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.Schedule(tm, func() { fired = append(fired, tm) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %v, want 3 events", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Errorf("after Run fired %v", fired)
	}
}

func TestScheduleInPast(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Spawn("a", func(p *Process) {
		p.Wait(10)
		p.e.Schedule(3, func() { at = p.Now() }) // in the past: clamp to now
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Errorf("past event fired at %v, want clamped to 10", at)
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEngine()
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("p", func(p *Process) {
			for k := 0; k < 10; k++ {
				p.Wait(float64((i*7+k*13)%17) * 0.1)
			}
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Errorf("done = %d, want %d", done, n)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Spawn("a", func(p *Process) {
		p.Wait(2)
		p.e.After(3, func() { at = p.e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Errorf("After fired at %v, want 5", at)
	}
}

func TestLatch(t *testing.T) {
	e := NewEngine()
	l := NewLatch("x")
	var waited []float64
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Process) {
			l.Wait(p)
			waited = append(waited, p.Now())
		})
	}
	e.Spawn("setter", func(p *Process) {
		p.Wait(5)
		l.Set()
		l.Set() // second Set is a no-op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(waited) != 3 {
		t.Fatalf("released %d waiters", len(waited))
	}
	for _, w := range waited {
		if w != 5 {
			t.Errorf("waiter released at %v, want 5", w)
		}
	}
	if !l.IsSet() {
		t.Error("latch should be set")
	}
	// Waiting on an already-set latch must not block.
	e2 := NewEngine()
	l2 := NewLatch("y")
	l2.Set()
	ok := false
	e2.Spawn("w", func(p *Process) {
		l2.Wait(p)
		ok = true
	})
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("pre-set latch blocked")
	}
}
