package sim

import (
	"strings"
	"testing"
)

func TestKillUnblocksDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := NewChan("never")
	p := e.Spawn("victim", func(p *Process) {
		c.Recv(p)
		t.Error("killed process resumed past its blocking receive")
	})
	e.Schedule(3, func() { e.Kill(p) })
	if err := e.Run(); err != nil {
		t.Fatalf("killed process should not deadlock the run: %v", err)
	}
	if !p.Done() || !p.Killed() {
		t.Errorf("victim done=%v killed=%v, want true/true", p.Done(), p.Killed())
	}
}

func TestKillMidWait(t *testing.T) {
	e := NewEngine()
	var reached bool
	p := e.Spawn("victim", func(p *Process) {
		p.Wait(10)
		reached = true
	})
	e.Schedule(4, func() { e.Kill(p) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Error("process survived a kill issued mid-Wait")
	}
	if e.Now() != 10 {
		// The original wake event still drains (as a no-op).
		t.Logf("final time %v", e.Now())
	}
}

func TestKillSkipsDeadChanWaiter(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var got any
	victim := e.Spawn("victim", func(p *Process) { c.Recv(p) })
	e.Spawn("other", func(p *Process) {
		p.Wait(5)
		got = c.Recv(p)
	})
	e.Schedule(1, func() { e.Kill(victim) })
	e.Spawn("sender", func(p *Process) {
		p.Wait(6)
		c.Send(p, "v")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "v" {
		t.Errorf("value went to the dead receiver: got %v", got)
	}
}

func TestStallDefersWakeups(t *testing.T) {
	e := NewEngine()
	var resumed float64
	p := e.Spawn("worker", func(p *Process) {
		p.Wait(2)
		resumed = p.Now()
	})
	e.Schedule(1, func() { e.StallUntil(p, 7.5) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 7.5 {
		t.Errorf("stalled worker resumed at %v, want 7.5", resumed)
	}
}

func TestStallDoesNotShorten(t *testing.T) {
	e := NewEngine()
	var resumed float64
	p := e.Spawn("worker", func(p *Process) {
		p.Wait(2)
		resumed = p.Now()
	})
	e.Schedule(1, func() {
		e.StallUntil(p, 9)
		e.StallUntil(p, 4) // shorter stall must not override
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed != 9 {
		t.Errorf("resumed at %v, want 9", resumed)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var ok bool
	var at float64
	e.Spawn("r", func(p *Process) {
		_, ok = c.RecvTimeout(p, 3)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || at != 3 {
		t.Errorf("timeout recv: ok=%v at=%v, want false at 3", ok, at)
	}
}

func TestRecvTimeoutDelivers(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var v any
	var ok bool
	e.Spawn("r", func(p *Process) { v, ok = c.RecvTimeout(p, 10) })
	e.Spawn("s", func(p *Process) {
		p.Wait(2)
		c.Send(p, 99)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || v != 99 {
		t.Errorf("got %v/%v, want 99/true", v, ok)
	}
}

func TestRecvTimeoutCancelledRequestInvisibleToSender(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	var lateOK bool
	e.Spawn("r", func(p *Process) {
		if _, ok := c.RecvTimeout(p, 1); ok {
			t.Error("first recv should time out")
		}
	})
	e.Spawn("s", func(p *Process) {
		p.Wait(2)
		lateOK = c.TrySend(p, "x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if lateOK {
		t.Error("sender matched a timed-out receive request")
	}
}

func TestRecvOrLatchAborts(t *testing.T) {
	e := NewEngine()
	c := NewChan("c")
	stop := NewLatch("stop")
	var ok bool
	var at float64
	e.Spawn("r", func(p *Process) {
		_, ok = c.RecvOrLatch(p, stop)
		at = p.Now()
	})
	e.Schedule(4, stop.Set)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || at != 4 {
		t.Errorf("latch abort: ok=%v at=%v, want false at 4", ok, at)
	}
	// A second receive against the fired latch returns immediately.
	var ok2 bool
	e2 := NewEngine()
	e2.Spawn("r2", func(p *Process) { _, ok2 = c.RecvOrLatch(p, stop) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("recv against a fired latch should abort immediately")
	}
}

func TestLatchWaitTimeout(t *testing.T) {
	e := NewEngine()
	l := NewLatch("l")
	var early, late bool
	e.Spawn("a", func(p *Process) { early = l.WaitTimeout(p, 2) })
	e.Spawn("b", func(p *Process) { late = l.WaitTimeout(p, 10) })
	e.Schedule(5, l.Set)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if early {
		t.Error("2s wait on a latch set at t=5 should time out")
	}
	if !late {
		t.Error("10s wait on a latch set at t=5 should succeed")
	}
}

func TestQueuePutNeverBlocks(t *testing.T) {
	e := NewEngine()
	q := NewQueue("q")
	var got []any
	e.Spawn("putter", func(p *Process) {
		q.Put(1)
		q.Put(2)
		if p.Now() != 0 {
			t.Errorf("Put advanced time to %v", p.Now())
		}
	})
	e.Spawn("getter", func(p *Process) {
		p.Wait(1)
		got = append(got, q.Get(p), q.Get(p))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine()
	q := NewQueue("q")
	var ok bool
	var then any
	e.Spawn("getter", func(p *Process) {
		_, ok = q.GetTimeout(p, 2)
		then, _ = q.GetTimeout(p, 10)
	})
	e.Schedule(5, func() { q.Put("late") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty queue get should time out")
	}
	if then != "late" {
		t.Errorf("second get = %v, want late", then)
	}
}

func TestDeadlockErrorDetail(t *testing.T) {
	e := NewEngine()
	c := NewChan("rcce.req.0->3")
	e.Spawn("rck03", func(p *Process) {
		p.SetBlockDetail("rcce recv 0->3")
		c.Recv(p)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v", de.Blocked)
	}
	b := de.Blocked[0]
	if b.Name != "rck03" || b.Reason != "recv:rcce.req.0->3" || b.Detail != "rcce recv 0->3" {
		t.Errorf("blocked entry = %+v", b)
	}
	msg := de.Error()
	for _, want := range []string{"rck03", "recv:rcce.req.0->3", "rcce recv 0->3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}
