// Package sim is a deterministic discrete-event simulation engine with
// SimPy-style coroutine processes. It provides the virtual clock under
// the SCC chip model: simulated cores are processes that Wait() for the
// durations charged by the cost model and exchange messages through
// rendezvous channels whose transfer latencies model the on-chip mesh.
//
// Exactly one goroutine (the engine's or one process's) runs at any
// moment, and events at equal times fire in schedule order, so runs are
// fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// event is a scheduled wake-up of a process or a callback.
type event struct {
	t   float64
	seq int64
	p   *Process
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now    float64
	events eventHeap
	seq    int64
	park   chan struct{}
	live   map[*Process]bool
	runner *Process // process currently executing (nil = engine)
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{}), live: map[*Process]bool{}}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at absolute time t (>= Now).
func (e *Engine) Schedule(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After runs fn after delay d.
func (e *Engine) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

func (e *Engine) scheduleProc(t float64, p *Process) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// Process is a simulated thread of control. Its methods must only be
// called from within its own body function.
type Process struct {
	e      *Engine
	name   string
	resume chan struct{}
	done   bool
	// blocked marks a process parked on a channel/resource (not in the
	// event queue), for deadlock diagnostics.
	blocked string
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.e }

// Now returns the current simulated time.
func (p *Process) Now() float64 { return p.e.now }

// Spawn creates a process that starts executing body at the current
// simulated time (once Run is in control).
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{e: e, name: name, resume: make(chan struct{})}
	e.live[p] = true
	go func() {
		<-p.resume
		body(p)
		p.done = true
		delete(e.live, p)
		e.runner = nil
		e.park <- struct{}{}
	}()
	e.scheduleProc(e.now, p)
	return p
}

// yield transfers control back to the engine and parks until resumed.
func (p *Process) yield() {
	p.e.runner = nil
	p.e.park <- struct{}{}
	<-p.resume
	p.e.runner = p
}

// Wait advances the process's local time by d seconds of simulated time.
// Negative d is treated as zero.
func (p *Process) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	p.e.scheduleProc(p.e.now+d, p)
	p.yield()
}

// block parks the process with no scheduled wake-up; some other process
// or event must call unblock. why is recorded for deadlock reports.
func (p *Process) block(why string) {
	p.blocked = why
	p.yield()
	p.blocked = ""
}

// unblock schedules p to resume at the current time.
func (p *Process) unblock() {
	p.e.scheduleProc(p.e.now, p)
}

// DeadlockError reports processes still blocked when the event queue
// drained.
type DeadlockError struct {
	Time    float64
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.6f: %d process(es) blocked: %v", e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains. It returns a DeadlockError
// if live processes remain blocked with no pending events, else nil.
func (e *Engine) Run() error {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			e.runner = ev.p
			ev.p.resume <- struct{}{}
			<-e.park
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	if len(e.live) > 0 {
		var names []string
		for p := range e.live {
			names = append(names, fmt.Sprintf("%s(%s)", p.name, p.blocked))
		}
		sort.Strings(names)
		return &DeadlockError{Time: e.now, Blocked: names}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then stops (remaining
// events stay queued). It does not report deadlock.
func (e *Engine) RunUntil(t float64) {
	for e.events.Len() > 0 && e.events[0].t <= t {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			e.runner = ev.p
			ev.p.resume <- struct{}{}
			<-e.park
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	if t > e.now {
		e.now = t
	}
}
