// Package sim is a deterministic discrete-event simulation engine with
// SimPy-style coroutine processes. It provides the virtual clock under
// the SCC chip model: simulated cores are processes that Wait() for the
// durations charged by the cost model and exchange messages through
// rendezvous channels whose transfer latencies model the on-chip mesh.
//
// Exactly one goroutine (the engine's or one process's) runs at any
// moment, and events at equal times fire in schedule order, so runs are
// fully deterministic.
//
// Fault-injection support: a process can be fail-stopped (Engine.Kill)
// or transiently stalled (Engine.StallUntil) from a scheduled callback.
// A killed process unwinds out of whatever it is blocked on and leaves
// the live set, so it neither resumes nor counts as deadlocked; the
// synchronization primitives in sync.go lazily skip dead waiters.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"rckalign/internal/metrics"
)

// event is a scheduled wake-up of a process or a callback.
type event struct {
	t   float64
	seq int64
	p   *Process
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now    float64
	events eventHeap
	seq    int64
	park   chan struct{}
	live   map[*Process]bool
	runner *Process // process currently executing (nil = engine)

	// Instrument handles, nil unless SetMetrics installed a registry;
	// every record call is a nil-safe no-op when disabled.
	mWakes     *metrics.Counter
	mCallbacks *metrics.Counter
	mSpawns    *metrics.Counter
	mKills     *metrics.Counter
	mBlocks    *metrics.Counter
	hBlock     *metrics.Histogram
}

// SetMetrics installs a metrics registry: the engine then counts event
// dispatches (process wake-ups vs callbacks), spawns, kills and process
// blocks, and records block durations as a histogram — all in simulated
// time. Passing nil disables recording again.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.mWakes = reg.Counter("sim.events.process_wakeups")
	e.mCallbacks = reg.Counter("sim.events.callbacks")
	e.mSpawns = reg.Counter("sim.proc.spawned")
	e.mKills = reg.Counter("sim.proc.killed")
	e.mBlocks = reg.Counter("sim.proc.blocks")
	e.hBlock = reg.Histogram("sim.proc.block_seconds", metrics.TimeBuckets)
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{park: make(chan struct{}), live: map[*Process]bool{}}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn at absolute time t (>= Now).
func (e *Engine) Schedule(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After runs fn after delay d.
func (e *Engine) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

func (e *Engine) scheduleProc(t float64, p *Process) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// killSentinel is the panic value that unwinds a killed process's
// goroutine; the Spawn wrapper recovers it.
type killSentinel struct{}

// Process is a simulated thread of control. Its methods must only be
// called from within its own body function.
type Process struct {
	e      *Engine
	name   string
	resume chan struct{}
	done   bool
	// killed marks a fail-stopped process; its next wake-up unwinds the
	// goroutine instead of resuming the body.
	killed bool
	// stallUntil defers any wake-up scheduled to fire before it (a
	// transient core stall).
	stallUntil float64
	// blocked marks a process parked on a channel/resource (not in the
	// event queue), for deadlock diagnostics.
	blocked string
	// blockDetail is optional caller-supplied context for the current
	// blocking operation (e.g. an rcce transfer's src->dst and byte
	// count), surfaced by DeadlockError.
	blockDetail string
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.e }

// Now returns the current simulated time.
func (p *Process) Now() float64 { return p.e.now }

// Killed reports whether the process has been fail-stopped.
func (p *Process) Killed() bool { return p.killed }

// Done reports whether the process has finished (returned or killed).
func (p *Process) Done() bool { return p.done }

// SetBlockDetail attaches human-readable context to the process's next
// blocking operations; it appears in DeadlockError reports. Pass ""
// to clear. Callers should clear it once the guarded operation returns.
func (p *Process) SetBlockDetail(detail string) { p.blockDetail = detail }

// dead reports that a process should no longer be matched by
// synchronization primitives (it finished or a kill is in flight).
func (p *Process) dead() bool { return p.done || p.killed }

// Spawn creates a process that starts executing body at the current
// simulated time (once Run is in control).
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{e: e, name: name, resume: make(chan struct{})}
	e.live[p] = true
	go func() {
		<-p.resume
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killSentinel); !ok {
						panic(r)
					}
				}
			}()
			body(p)
		}()
		p.done = true
		delete(e.live, p)
		e.runner = nil
		e.park <- struct{}{}
	}()
	e.scheduleProc(e.now, p)
	e.mSpawns.Inc()
	return p
}

// Kill fail-stops p: its next wake-up unwinds the process instead of
// resuming it, and it leaves the live set (so it cannot deadlock the
// run). Call from a scheduled callback or another process; killing an
// already-finished process is a no-op. The dead process's entries in
// channels, latches and resources are skipped lazily.
func (e *Engine) Kill(p *Process) {
	if p == nil || p.done || p.killed {
		return
	}
	p.killed = true
	e.mKills.Inc()
	// Wake it (possibly redundantly) so the goroutine unwinds promptly.
	e.scheduleProc(e.now, p)
}

// StallUntil freezes p's wake-ups until absolute time t: any resume that
// would fire earlier is deferred to t (a transient core stall). Extends,
// never shortens, an existing stall.
func (e *Engine) StallUntil(p *Process, t float64) {
	if p == nil || p.dead() {
		return
	}
	if t > p.stallUntil {
		p.stallUntil = t
	}
}

// yield transfers control back to the engine and parks until resumed.
// Wake-ups inside a stall window are re-deferred to the stall end; a
// pending kill unwinds the goroutine via the sentinel panic.
func (p *Process) yield() {
	p.e.runner = nil
	p.e.park <- struct{}{}
	<-p.resume
	for !p.killed && p.stallUntil > p.e.now {
		p.e.scheduleProc(p.stallUntil, p)
		p.e.runner = nil
		p.e.park <- struct{}{}
		<-p.resume
	}
	if p.killed {
		panic(killSentinel{})
	}
	p.e.runner = p
}

// Wait advances the process's local time by d seconds of simulated time.
// Negative d is treated as zero.
func (p *Process) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	p.e.scheduleProc(p.e.now+d, p)
	p.yield()
}

// block parks the process with no scheduled wake-up; some other process
// or event must call unblock. why is recorded for deadlock reports.
// (A killed process unwinds out of yield, so the histogram only sees
// blocks that actually resumed.)
func (p *Process) block(why string) {
	p.blocked = why
	p.e.mBlocks.Inc()
	start := p.e.now
	p.yield()
	p.e.hBlock.Observe(p.e.now - start)
	p.blocked = ""
}

// unblock schedules p to resume at the current time.
func (p *Process) unblock() {
	p.e.scheduleProc(p.e.now, p)
}

// BlockedProcess describes one process stuck at deadlock detection time.
type BlockedProcess struct {
	// Name is the process name (e.g. "rck03").
	Name string
	// Reason is the primitive it is parked on (e.g. "recv:rcce.req.0->3").
	Reason string
	// Detail is optional operation context supplied via SetBlockDetail
	// (e.g. "rcce send 0->3 (1234 bytes)").
	Detail string
}

func (b BlockedProcess) String() string {
	if b.Detail != "" {
		return fmt.Sprintf("%s blocked on %s [%s]", b.Name, b.Reason, b.Detail)
	}
	return fmt.Sprintf("%s blocked on %s", b.Name, b.Reason)
}

// DeadlockError reports processes still blocked when the event queue
// drained, with each process's block reason and any operation detail.
type DeadlockError struct {
	Time    float64
	Blocked []BlockedProcess
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at t=%.6f: %d process(es) blocked:", e.Time, len(e.Blocked))
	for _, bp := range e.Blocked {
		b.WriteString("\n  ")
		b.WriteString(bp.String())
	}
	return b.String()
}

// Run executes events until the queue drains. It returns a DeadlockError
// if live processes remain blocked with no pending events, else nil.
func (e *Engine) Run() error {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			e.mWakes.Inc()
			e.runner = ev.p
			ev.p.resume <- struct{}{}
			<-e.park
		} else if ev.fn != nil {
			e.mCallbacks.Inc()
			ev.fn()
		}
	}
	if len(e.live) > 0 {
		var blocked []BlockedProcess
		for p := range e.live {
			blocked = append(blocked, BlockedProcess{Name: p.name, Reason: p.blocked, Detail: p.blockDetail})
		}
		sort.Slice(blocked, func(i, j int) bool {
			if blocked[i].Name != blocked[j].Name {
				return blocked[i].Name < blocked[j].Name
			}
			return blocked[i].Reason < blocked[j].Reason
		})
		return &DeadlockError{Time: e.now, Blocked: blocked}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then stops (remaining
// events stay queued). It does not report deadlock.
func (e *Engine) RunUntil(t float64) {
	for e.events.Len() > 0 && e.events[0].t <= t {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		if ev.p != nil {
			if ev.p.done {
				continue
			}
			e.mWakes.Inc()
			e.runner = ev.p
			ev.p.resume <- struct{}{}
			<-e.park
		} else if ev.fn != nil {
			e.mCallbacks.Inc()
			ev.fn()
		}
	}
	if t > e.now {
		e.now = t
	}
}
