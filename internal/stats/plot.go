package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSeriesLength reports a series whose X and Y slices disagree in
// length — the plot cannot pair the points. Surfaced as an error so a
// report generator can fail its figure instead of panicking.
var ErrSeriesLength = errors.New("stats: series X/Y length mismatch")

// Series is one named curve for an ASCII plot.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot renders series as an ASCII chart of the given size (interior
// plotting area; axes and labels are added around it). The Y axis
// starts at zero unless data goes negative. Useful for eyeballing the
// paper's Figures 5 and 6 in a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	series []Series
}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series; X and Y must have equal lengths, anything else
// returns ErrSeriesLength and leaves the plot unchanged.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("%w: %q has %d x values and %d y values", ErrSeriesLength, s.Name, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		s.Marker = "*+ox#@"[len(p.series)%6]
	}
	p.series = append(p.series, s)
	return nil
}

// Render draws the plot with the given interior width and height in
// character cells.
func (p *Plot) Render(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			y := s.Y[i]
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
			points++
		}
	}
	if points == 0 {
		return "(empty plot)\n"
	}
	if !p.LogY && ymin > 0 {
		ymin = 0
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for i := range s.X {
			y := s.Y[i]
			if p.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = s.Marker
		}
	}

	fmtY := func(v float64) string {
		if p.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%8.4g", v)
	}
	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	for r, row := range grid {
		label := strings.Repeat(" ", 8)
		switch r {
		case 0:
			label = fmtY(ymax)
		case height - 1:
			label = fmtY(ymin)
		case (height - 1) / 2:
			label = fmtY(ymin + (ymax-ymin)*float64(height-1-r)/float64(height-1))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-8.4g%s%8.4g  (%s)\n", strings.Repeat(" ", 8),
		xmin, strings.Repeat(" ", maxInt(0, width-16)), xmax, p.XLabel)
	for _, s := range p.series {
		fmt.Fprintf(&b, "%s   %c = %s\n", strings.Repeat(" ", 8), s.Marker, s.Name)
	}
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s   y: %s%s\n", strings.Repeat(" ", 8), p.YLabel,
			map[bool]string{true: " (log scale)", false: ""}[p.LogY])
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
