package stats

import (
	"strings"
	"testing"
)

// TestPlotMarkerCycle: series added without an explicit marker get the
// default cycle in order.
func TestPlotMarkerCycle(t *testing.T) {
	p := NewPlot("t", "x", "y")
	for i := 0; i < 3; i++ {
		if err := p.Add(Series{Name: "s", X: []float64{1}, Y: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	out := p.Render(20, 6)
	for _, want := range []string{"* = s", "+ = s", "o = s"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend missing %q:\n%s", want, out)
		}
	}
}

// TestPlotNegativeY: the Y axis extends below zero when data does,
// instead of clamping the floor to 0.
func TestPlotNegativeY(t *testing.T) {
	p := NewPlot("", "x", "y")
	if err := p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{-2, 4}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render(20, 6)
	if !strings.Contains(out, "-2") {
		t.Errorf("negative minimum not on the axis:\n%s", out)
	}
}

// TestPlotLogSkipsNonPositive: log-scale plots drop y<=0 points rather
// than producing NaN rows; a series of only such points renders empty.
func TestPlotLogSkipsNonPositive(t *testing.T) {
	p := NewPlot("", "x", "y")
	p.LogY = true
	if err := p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, -5}}); err != nil {
		t.Fatal(err)
	}
	if out := p.Render(20, 6); out != "(empty plot)\n" {
		t.Errorf("log plot of non-positive data = %q", out)
	}
}

// TestPlotSinglePoint: a single point must not divide by zero; the axes
// expand to a unit range around it.
func TestPlotSinglePoint(t *testing.T) {
	p := NewPlot("one", "x", "y")
	if err := p.Add(Series{Name: "s", Marker: '#', X: []float64{3}, Y: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render(20, 6)
	if !strings.Contains(out, "#") {
		t.Errorf("marker not rendered:\n%s", out)
	}
	if !strings.Contains(out, "one") {
		t.Errorf("title missing:\n%s", out)
	}
}
