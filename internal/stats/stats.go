// Package stats provides the small statistics and table-rendering
// helpers used by the experiment drivers: run summaries, speedup series
// and fixed-width text tables matching the paper's presentation.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary describes a sample of float64 values.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes a Summary; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// SpeedupSeries converts a time series to speedups relative to base.
func SpeedupSeries(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency returns speedup/workers for each point.
func Efficiency(speedups []float64, workers []int) []float64 {
	out := make([]float64, len(speedups))
	for i := range speedups {
		if i < len(workers) && workers[i] > 0 {
			out[i] = speedups[i] / float64(workers[i])
		}
	}
	return out
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings/ints and %.2f for floats.
func (t *Table) AddRowf(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case float32:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header row and aligned
// columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting: the
// experiment outputs contain no commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
