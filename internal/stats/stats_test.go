package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-5 {
		t.Errorf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary %+v", z)
	}
	one := Summarize([]float64{3})
	if one.Std != 0 || one.Mean != 3 {
		t.Errorf("single summary %+v", one)
	}
	if Summarize([]float64{1, 2}).String() == "" {
		t.Error("String empty")
	}
}

func TestSpeedupSeries(t *testing.T) {
	s := SpeedupSeries(100, []float64{100, 50, 25, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("speedup[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestEfficiency(t *testing.T) {
	e := Efficiency([]float64{1, 1.8, 3.6}, []int{1, 2, 4})
	if e[0] != 1 || e[1] != 0.9 || e[2] != 0.9 {
		t.Errorf("efficiency = %v", e)
	}
	// Mismatched lengths and zero workers must not panic.
	e2 := Efficiency([]float64{1, 2}, []int{0})
	if e2[0] != 0 || e2[1] != 0 {
		t.Errorf("edge efficiency = %v", e2)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Cores", "Time (s)", "Speedup")
	tb.AddRowf(1, 2029.0, 1.0)
	tb.AddRowf(47, 56.0, 36.17)
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Cores") || !strings.Contains(out, "Speedup") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "36.17") || !strings.Contains(out, "2029.00") {
		t.Errorf("missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("xxxxxxxx", "1")
	out := tb.String()
	lines := strings.Split(out, "\n")
	// Column A width must accommodate the 8-char cell: header line pads
	// "A" to 8 chars before the gap.
	if !strings.HasPrefix(lines[0], "A       ") {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRowf(1, 2.5)
	csv := tb.CSV()
	if csv != "a,b\n1,2.50\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableExtraCells(t *testing.T) {
	tb := NewTable("", "only")
	tb.AddRow("a", "extra")
	if !strings.Contains(tb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestPlotRender(t *testing.T) {
	p := NewPlot("title", "cores", "speedup")
	if err := p.Add(Series{Name: "a", Marker: '*', X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render(30, 10)
	for _, want := range []string{"title", "*", "cores", "a", "b", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The rising series' marker must appear on the top row at the right.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Errorf("max of rising series not on top row:\n%s", out)
	}
}

func TestPlotLogScale(t *testing.T) {
	p := NewPlot("log", "x", "y")
	p.LogY = true
	if err := p.Add(Series{Name: "s", Marker: '#', X: []float64{1, 2, 3}, Y: []float64{1, 100, 0}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render(20, 8)
	if !strings.Contains(out, "log scale") {
		t.Error("log scale not labelled")
	}
	// Zero values are skipped, not plotted at -inf.
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("bad values in plot:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("", "", "")
	if got := p.Render(20, 8); got != "(empty plot)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

func TestPlotMismatchedSeriesError(t *testing.T) {
	p := NewPlot("", "", "")
	err := p.Add(Series{Name: "bad", X: []float64{1}, Y: nil})
	if !errors.Is(err, ErrSeriesLength) {
		t.Errorf("Add error = %v, want errors.Is ErrSeriesLength", err)
	}
	// The rejected series must not have been half-added.
	if got := p.Render(20, 8); got != "(empty plot)\n" {
		t.Errorf("rejected series leaked into the plot:\n%s", got)
	}
}
