package noc

import (
	"strings"
	"testing"

	"rckalign/internal/metrics"
	"rckalign/internal/sim"
)

// TestMeshMetricsRecordTraffic: one transfer shows up in the global
// counters, the hop histogram and the per-link counters of every link on
// its XY route, without changing the transfer's timing.
func TestMeshMetricsRecordTraffic(t *testing.T) {
	run := func(reg *metrics.Registry) float64 {
		e := sim.NewEngine()
		m := New(DefaultConfig())
		m.SetMetrics(reg)
		var elapsed float64
		e.Spawn("x", func(p *sim.Process) {
			m.Transfer(p, Coord{0, 0}, Coord{2, 0}, 4096)
			elapsed = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	reg := metrics.New()
	instrumented := run(reg)
	if bare := run(nil); bare != instrumented {
		t.Errorf("metrics changed transfer timing: %v vs %v", instrumented, bare)
	}
	if got := reg.Counter("noc.transfers").Value(); got != 1 {
		t.Errorf("noc.transfers = %v", got)
	}
	if got := reg.Counter("noc.transfer.bytes").Value(); got != 4096 {
		t.Errorf("noc.transfer.bytes = %v", got)
	}
	if got := reg.Histogram("noc.transfer.hops", metrics.HopBuckets).Mean(); got != 2 {
		t.Errorf("mean hops = %v, want 2", got)
	}
	for _, link := range []string{"(0,0)->(1,0)", "(1,0)->(2,0)"} {
		if got := reg.Counter("noc.link.messages", "link", link).Value(); got != 1 {
			t.Errorf("link %s messages = %v, want 1", link, got)
		}
		if got := reg.Counter("noc.link.bytes", "link", link).Value(); got != 4096 {
			t.Errorf("link %s bytes = %v, want 4096", link, got)
		}
	}
	// Off-route links saw nothing.
	if got := reg.Counter("noc.link.messages", "link", "(3,0)->(4,0)").Value(); got != 0 {
		t.Errorf("off-route link counted %v messages", got)
	}
}

// TestMeshMetricsWaitAndSeries: two transfers fighting over one link
// record blocked time on it, and the links-active series rises to 2
// during the overlap. PublishMetrics mirrors per-link busy seconds.
func TestMeshMetricsWaitAndSeries(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	reg := metrics.New()
	m.SetMetrics(reg)
	for i := 0; i < 2; i++ {
		e.Spawn("t", func(p *sim.Process) {
			m.Transfer(p, Coord{0, 0}, Coord{1, 0}, 64*1024)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("noc.link.wait_seconds", "link", "(0,0)->(1,0)").Value(); got <= 0 {
		t.Errorf("no contention wait recorded: %v", got)
	}
	var maxActive float64
	for _, p := range reg.Series("noc.links.active").Points() {
		if p.V > maxActive {
			maxActive = p.V
		}
	}
	if maxActive < 1 {
		t.Errorf("links-active series peaked at %v", maxActive)
	}
	m.PublishMetrics()
	if got := reg.Gauge("noc.link.busy_seconds", "link", "(0,0)->(1,0)").Value(); got <= 0 {
		t.Errorf("busy_seconds gauge = %v", got)
	}
}

// TestLinkHeatmapRender: the heatmap marks the used link with the peak
// digit and keeps unused links at 0, with the legend reporting the peak.
func TestLinkHeatmapRender(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	e.Spawn("x", func(p *sim.Process) {
		m.Transfer(p, Coord{0, 0}, Coord{1, 0}, 64*1024)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	out := m.LinkHeatmap()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Router rows alternate with vertical-link rows: 4 rows of routers
	// on a 6x4 grid -> 7 grid lines plus the legend.
	if len(lines) != 8 {
		t.Fatalf("heatmap has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "o 9 o") {
		t.Errorf("hottest link not 9: %q", lines[0])
	}
	if !strings.Contains(lines[7], "peak link busy:") {
		t.Errorf("legend missing: %q", lines[7])
	}
	grid := strings.Join(lines[:7], "\n")
	if strings.Count(grid, "9") != 1 {
		t.Errorf("expected exactly one peak digit:\n%s", out)
	}
}

// TestWorstLink: the busiest directed link is the one that carried the
// traffic.
func TestWorstLink(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	e.Spawn("x", func(p *sim.Process) {
		m.Transfer(p, Coord{0, 0}, Coord{3, 0}, 64*1024)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	w := m.WorstLink()
	if w.BusySeconds <= 0 {
		t.Fatalf("worst link has no busy time: %+v", w)
	}
	if w.From.Y != 0 || w.To.Y != 0 {
		t.Errorf("worst link off the traffic row: %+v", w)
	}
}
