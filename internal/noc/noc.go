// Package noc models the SCC's packet-switched 2D mesh network-on-chip:
// XY dimension-order routing over a WxH router grid, per-hop latency, and
// per-link bandwidth with optional contention (links as FIFO resources).
package noc

import (
	"fmt"
	"sort"
	"strings"

	"rckalign/internal/metrics"
	"rckalign/internal/sim"
)

// Coord is a router position in the mesh.
type Coord struct{ X, Y int }

// String renders the coordinate.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Config describes the mesh geometry and timing.
type Config struct {
	// Width and Height of the router grid (SCC: 6x4).
	Width, Height int
	// HopSeconds is the router traversal + link latency per hop.
	HopSeconds float64
	// BytesPerSecond is the bandwidth of one mesh link.
	BytesPerSecond float64
	// PacketBytes is the store-and-forward packetisation unit.
	PacketBytes int
	// ModelContention serialises transfers crossing the same link; when
	// false transfers see only latency + serialisation (infinite links).
	ModelContention bool
	// Wormhole switches the contention model from store-and-forward
	// (each link held for the full message serialisation, hop by hop)
	// to wormhole switching (all route links held together while the
	// message streams through once) — the SCC's actual switching mode.
	// Wormhole is faster for multi-hop messages but couples the links.
	Wormhole bool
}

// DefaultConfig returns the SCC mesh: 6x4 routers at 2 GHz with 4-cycle
// hops and 16-byte flits at 2 bytes/cycle per link.
func DefaultConfig() Config {
	return Config{
		Width:           6,
		Height:          4,
		HopSeconds:      4.0 / 2e9, // 4 mesh cycles @ 2 GHz
		BytesPerSecond:  3.2e9,     // ~2 bytes/cycle/link @ 2 GHz... conservative effective rate
		PacketBytes:     256,
		ModelContention: true,
	}
}

// Mesh is an instantiated network.
type Mesh struct {
	cfg Config
	// Directed links: right/left between horizontal neighbours, up/down
	// between vertical neighbours. Indexed by [from][to-direction].
	links map[linkKey]*sim.Resource

	// Observability (nil/zero unless SetMetrics installed a registry).
	reg       *metrics.Registry
	labels    []string
	linkStats map[linkKey]*linkMetrics
	cXfers    *metrics.Counter
	cBytes    *metrics.Counter
	hHops     *metrics.Histogram
	sActive   *metrics.Series
	active    int
}

type linkKey struct {
	from Coord
	to   Coord
}

func (k linkKey) String() string { return fmt.Sprintf("%v->%v", k.from, k.to) }

// linkMetrics holds one directed link's instrument handles.
type linkMetrics struct {
	msgs  *metrics.Counter
	bytes *metrics.Counter
	wait  *metrics.Counter
}

// SetMetrics installs a metrics registry on the mesh. Per directed
// link it records message and byte counts plus accumulated
// queueing/contention wait (time transfers spent blocked on an occupied
// link); globally it records transfer counts, bytes, a hop-count
// histogram, and the "noc.links.active" time series (links held at each
// instant — the chrome-trace link-utilization counter track). All
// recording is passive: it consumes no simulated time and schedules no
// events.
//
// labels are optional extra key/value label pairs appended to every
// metric key (a multi-chip system scopes each mesh with "chip", "cN");
// none keeps the classic single-chip keys bit-identical.
func (m *Mesh) SetMetrics(reg *metrics.Registry, labels ...string) {
	m.reg = reg
	m.labels = append([]string(nil), labels...)
	m.cXfers = reg.Counter("noc.transfers", labels...)
	m.cBytes = reg.Counter("noc.transfer.bytes", labels...)
	m.hHops = reg.Histogram("noc.transfer.hops", metrics.HopBuckets, labels...)
	m.sActive = reg.Series("noc.links.active", labels...)
	m.linkStats = map[linkKey]*linkMetrics{}
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			c := Coord{x, y}
			for _, n := range []Coord{{x + 1, y}, {x - 1, y}, {x, y + 1}, {x, y - 1}} {
				k := linkKey{c, n}
				if _, ok := m.links[k]; !ok {
					continue
				}
				ll := append(append([]string(nil), m.labels...), "link", k.String())
				m.linkStats[k] = &linkMetrics{
					msgs:  reg.Counter("noc.link.messages", ll...),
					bytes: reg.Counter("noc.link.bytes", ll...),
					wait:  reg.Counter("noc.link.wait_seconds", ll...),
				}
			}
		}
	}
}

// PublishMetrics exports end-of-run per-link busy seconds as gauges
// ("noc.link.busy_seconds{link=...}"). Call once when the simulation has
// drained; a second call overwrites with the same values. No-op when
// SetMetrics was never called.
func (m *Mesh) PublishMetrics() {
	if m.reg == nil {
		return
	}
	for k, l := range m.links {
		ll := append(append([]string(nil), m.labels...), "link", k.String())
		m.reg.Gauge("noc.link.busy_seconds", ll...).Set(l.BusySeconds())
	}
}

// recordLinkTraffic attributes one message's bytes to every directed
// link on its route (any contention mode).
func (m *Mesh) recordLinkTraffic(a Coord, route []Coord, bytes int) {
	if m.linkStats == nil {
		return
	}
	cur := a
	for _, next := range route {
		if ls := m.linkStats[linkKey{cur, next}]; ls != nil {
			ls.msgs.Inc()
			ls.bytes.Add(float64(bytes))
		}
		cur = next
	}
}

// acquireTimed wraps Resource.Acquire, charging the blocked time to the
// link's contention-wait counter and maintaining the active-links
// series.
func (m *Mesh) acquireTimed(p *sim.Process, k linkKey) {
	link := m.links[k]
	if m.linkStats == nil {
		link.Acquire(p)
		return
	}
	t0 := p.Now()
	link.Acquire(p)
	if ls := m.linkStats[k]; ls != nil {
		ls.wait.Add(p.Now() - t0)
	}
	m.active++
	m.sActive.Append(p.Now(), float64(m.active))
}

// releaseTimed is the matching release for acquireTimed.
func (m *Mesh) releaseTimed(p *sim.Process, k linkKey) {
	m.links[k].Release(p)
	if m.linkStats == nil {
		return
	}
	m.active--
	m.sActive.Append(p.Now(), float64(m.active))
}

// New builds a mesh for the given engine (the engine pointer is not
// needed: resources are engine-agnostic) and configuration.
func New(cfg Config) *Mesh {
	if cfg.Width < 1 || cfg.Height < 1 {
		panic("noc: mesh must be at least 1x1")
	}
	if cfg.PacketBytes <= 0 {
		cfg.PacketBytes = 256
	}
	m := &Mesh{cfg: cfg, links: map[linkKey]*sim.Resource{}}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			c := Coord{x, y}
			for _, n := range []Coord{{x + 1, y}, {x - 1, y}, {x, y + 1}, {x, y - 1}} {
				if n.X < 0 || n.X >= cfg.Width || n.Y < 0 || n.Y >= cfg.Height {
					continue
				}
				k := linkKey{c, n}
				m.links[k] = sim.NewResource(fmt.Sprintf("link%v->%v", c, n), 1)
			}
		}
	}
	return m
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// InBounds reports whether c is a valid router coordinate.
func (m *Mesh) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Route returns the XY dimension-order route from a to b, excluding a and
// including b. Routing goes along X first, then Y (deadlock-free on a
// mesh).
func (m *Mesh) Route(a, b Coord) []Coord {
	if !m.InBounds(a) || !m.InBounds(b) {
		panic("noc: route endpoint outside mesh")
	}
	var route []Coord
	cur := a
	for cur.X != b.X {
		if b.X > cur.X {
			cur.X++
		} else {
			cur.X--
		}
		route = append(route, cur)
	}
	for cur.Y != b.Y {
		if b.Y > cur.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		route = append(route, cur)
	}
	return route
}

// Hops returns the XY hop count between two routers.
func (m *Mesh) Hops(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// LatencySeconds returns the no-contention time to move `bytes` from a to
// b: per-hop latency plus serialisation on each hop (store-and-forward at
// packet granularity, approximated as route-length * serialisation for
// the first packet + pipelined remainder).
func (m *Mesh) LatencySeconds(a, b Coord, bytes int) float64 {
	hops := m.Hops(a, b)
	if hops == 0 {
		hops = 1 // same-tile transfer still crosses the local MIU
	}
	ser := float64(bytes) / m.cfg.BytesPerSecond
	first := float64(minInt(bytes, m.cfg.PacketBytes)) / m.cfg.BytesPerSecond
	// First packet pays latency on every hop; the rest pipelines behind.
	return float64(hops)*(m.cfg.HopSeconds+first) + (ser - first)
}

// Transfer moves `bytes` from a to b within process p, consuming
// simulated time; with contention modelling it occupies each directed
// link on the route for its serialisation time, in order.
func (m *Mesh) Transfer(p *sim.Process, a, b Coord, bytes int) {
	if bytes <= 0 {
		bytes = 1
	}
	m.cXfers.Inc()
	m.cBytes.Add(float64(bytes))
	m.hHops.Observe(float64(m.Hops(a, b)))
	if !m.cfg.ModelContention {
		if m.linkStats != nil {
			m.recordLinkTraffic(a, m.Route(a, b), bytes)
		}
		p.Wait(m.LatencySeconds(a, b, bytes))
		return
	}
	route := m.Route(a, b)
	m.recordLinkTraffic(a, route, bytes)
	if len(route) == 0 {
		// Same router (e.g. both cores on one tile): local MIU copy.
		p.Wait(m.cfg.HopSeconds + float64(bytes)/m.cfg.BytesPerSecond)
		return
	}
	ser := float64(bytes) / m.cfg.BytesPerSecond
	if m.cfg.Wormhole {
		// Acquire every link on the route in XY order (a total order, so
		// no deadlock), stream the message once, release.
		keys := make([]linkKey, len(route))
		cur := a
		for i, next := range route {
			keys[i] = linkKey{cur, next}
			m.acquireTimed(p, keys[i])
			cur = next
		}
		p.Wait(float64(len(route))*m.cfg.HopSeconds + ser)
		for _, k := range keys {
			m.releaseTimed(p, k)
		}
		return
	}
	cur := a
	for _, next := range route {
		k := linkKey{cur, next}
		m.acquireTimed(p, k)
		p.Wait(m.cfg.HopSeconds + ser)
		m.releaseTimed(p, k)
		cur = next
	}
}

// LinkUtilization returns total busy link-seconds accumulated across all
// links (contention mode only).
func (m *Mesh) LinkUtilization() float64 {
	var total float64
	for _, l := range m.links {
		total += l.BusySeconds()
	}
	return total
}

// LinkLoad describes one directed link's accumulated traffic.
type LinkLoad struct {
	From, To    Coord
	BusySeconds float64
}

// TopLinks returns the n busiest directed links, most loaded first —
// the mesh hot-spot analysis. Ties break deterministically by
// coordinate.
func (m *Mesh) TopLinks(n int) []LinkLoad {
	loads := make([]LinkLoad, 0, len(m.links))
	for k, l := range m.links {
		loads = append(loads, LinkLoad{From: k.from, To: k.to, BusySeconds: l.BusySeconds()})
	}
	sort.Slice(loads, func(a, b int) bool {
		if loads[a].BusySeconds != loads[b].BusySeconds {
			return loads[a].BusySeconds > loads[b].BusySeconds
		}
		if loads[a].From != loads[b].From {
			return less(loads[a].From, loads[b].From)
		}
		return less(loads[a].To, loads[b].To)
	})
	if n > len(loads) {
		n = len(loads)
	}
	return loads[:n]
}

// WorstLink returns the single busiest directed link (zero value when
// the mesh has no links, e.g. a 1x1 grid).
func (m *Mesh) WorstLink() LinkLoad {
	top := m.TopLinks(1)
	if len(top) == 0 {
		return LinkLoad{}
	}
	return top[0]
}

func less(a, b Coord) bool {
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// LinkHeatmap renders per-link busy time as a text grid: routers are
// 'o', the digit between two routers is that link pair's busy seconds
// (the busier of the two directions) normalised to the hottest link,
// 0-9. Horizontal links sit between routers on router rows; vertical
// links sit on the rows between. A trailing legend line reports the
// peak, so digits are readable as absolute time too. This is the
// paper's mesh-contention view at link rather than router granularity.
func (m *Mesh) LinkHeatmap() string {
	peak := 0.0
	// pairBusy returns the busier direction of the a<->b link pair.
	pairBusy := func(a, b Coord) float64 {
		busy := 0.0
		for _, k := range [2]linkKey{{a, b}, {b, a}} {
			if l := m.links[k]; l != nil && l.BusySeconds() > busy {
				busy = l.BusySeconds()
			}
		}
		return busy
	}
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			c := Coord{x, y}
			for _, n := range []Coord{{x + 1, y}, {x, y + 1}} {
				if b := pairBusy(c, n); b > peak {
					peak = b
				}
			}
		}
	}
	digit := func(busy float64) byte {
		if peak <= 0 {
			return '0'
		}
		return '0' + byte(9*busy/peak)
	}
	var b strings.Builder
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			if x > 0 {
				b.WriteByte(' ')
				b.WriteByte(digit(pairBusy(Coord{x - 1, y}, Coord{x, y})))
				b.WriteByte(' ')
			}
			b.WriteByte('o')
		}
		b.WriteByte('\n')
		if y == m.cfg.Height-1 {
			break
		}
		for x := 0; x < m.cfg.Width; x++ {
			if x > 0 {
				b.WriteString("   ")
			}
			b.WriteByte(digit(pairBusy(Coord{x, y}, Coord{x, y + 1})))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "peak link busy: %.6gs\n", peak)
	return b.String()
}

// Heatmap renders per-router total adjacent-link busy seconds as a text
// grid (row 0 at the top), normalised to the hottest router: digits 0-9.
func (m *Mesh) Heatmap() string {
	heat := make([]float64, m.cfg.Width*m.cfg.Height)
	peak := 0.0
	for k, l := range m.links {
		for _, c := range [2]Coord{k.from, k.to} {
			i := c.Y*m.cfg.Width + c.X
			heat[i] += l.BusySeconds() / 2
			if heat[i] > peak {
				peak = heat[i]
			}
		}
	}
	var b []byte
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			d := byte('0')
			if peak > 0 {
				d = '0' + byte(9*heat[y*m.cfg.Width+x]/peak)
			}
			b = append(b, d)
		}
		b = append(b, '\n')
	}
	return string(b)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
