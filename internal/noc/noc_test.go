package noc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rckalign/internal/sim"
)

func TestHops(t *testing.T) {
	m := New(DefaultConfig())
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{5, 3}, 8},
		{Coord{2, 1}, Coord{2, 3}, 2},
		{Coord{5, 0}, Coord{0, 0}, 5},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	m := New(DefaultConfig())
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax) % 6, int(ay) % 4}
		b := Coord{int(bx) % 6, int(by) % 4}
		return m.Hops(a, b) == m.Hops(b, a) && m.Hops(a, b) == len(m.Route(a, b))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRouteXYOrder(t *testing.T) {
	m := New(DefaultConfig())
	route := m.Route(Coord{1, 1}, Coord{4, 3})
	want := []Coord{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {4, 3}}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestRouteAdjacentSteps(t *testing.T) {
	m := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := Coord{rng.Intn(6), rng.Intn(4)}
		b := Coord{rng.Intn(6), rng.Intn(4)}
		cur := a
		for _, next := range m.Route(a, b) {
			if m.Hops(cur, next) != 1 {
				t.Fatalf("non-adjacent step %v -> %v", cur, next)
			}
			cur = next
		}
		if cur != b {
			t.Fatalf("route from %v to %v ends at %v", a, b, cur)
		}
	}
}

func TestRouteOutOfBoundsPanics(t *testing.T) {
	m := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Route(Coord{0, 0}, Coord{9, 9})
}

func TestLatencyMonotonicInBytesAndHops(t *testing.T) {
	m := New(DefaultConfig())
	a := Coord{0, 0}
	if m.LatencySeconds(a, Coord{1, 0}, 100) >= m.LatencySeconds(a, Coord{1, 0}, 10000) {
		t.Error("latency not increasing with bytes")
	}
	if m.LatencySeconds(a, Coord{1, 0}, 1000) >= m.LatencySeconds(a, Coord{5, 3}, 1000) {
		t.Error("latency not increasing with hops")
	}
	// Same-router transfer still costs something.
	if m.LatencySeconds(a, a, 1000) <= 0 {
		t.Error("same-tile transfer should cost time")
	}
}

func TestTransferTakesTime(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	var elapsed float64
	e.Spawn("xfer", func(p *sim.Process) {
		m.Transfer(p, Coord{0, 0}, Coord{5, 3}, 8192)
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Error("transfer consumed no simulated time")
	}
	// 8 KB across the chip should be microseconds, not milliseconds.
	if elapsed > 1e-3 {
		t.Errorf("transfer took %v s, implausibly slow", elapsed)
	}
}

func TestTransferContention(t *testing.T) {
	// Two transfers over the same single link must serialise; disjoint
	// transfers must not.
	cfg := DefaultConfig()
	runPair := func(b1, b2 [2]Coord) float64 {
		e := sim.NewEngine()
		m := New(cfg)
		var last float64
		for i, pair := range [][2]Coord{b1, b2} {
			pair := pair
			e.Spawn("t", func(p *sim.Process) {
				_ = i
				m.Transfer(p, pair[0], pair[1], 64*1024)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	shared := runPair([2]Coord{{0, 0}, {1, 0}}, [2]Coord{{0, 0}, {1, 0}})
	disjoint := runPair([2]Coord{{0, 0}, {1, 0}}, [2]Coord{{4, 3}, {5, 3}})
	if shared <= disjoint*1.5 {
		t.Errorf("shared-link transfers (%v) should be much slower than disjoint (%v)", shared, disjoint)
	}
}

func TestNoContentionMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ModelContention = false
	e := sim.NewEngine()
	m := New(cfg)
	var t1, t2 float64
	e.Spawn("a", func(p *sim.Process) { m.Transfer(p, Coord{0, 0}, Coord{1, 0}, 64*1024); t1 = p.Now() })
	e.Spawn("b", func(p *sim.Process) { m.Transfer(p, Coord{0, 0}, Coord{1, 0}, 64*1024); t2 = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("without contention both transfers should finish together: %v vs %v", t1, t2)
	}
}

func TestLinkUtilizationAccounted(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	e.Spawn("x", func(p *sim.Process) {
		m.Transfer(p, Coord{0, 0}, Coord{3, 0}, 4096)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.LinkUtilization() <= 0 {
		t.Error("no link utilisation recorded")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x0 mesh")
		}
	}()
	New(Config{Width: 0, Height: 0})
}

func TestTopLinksAndHeatmap(t *testing.T) {
	e := sim.NewEngine()
	m := New(DefaultConfig())
	// Hammer one link with several long transfers.
	for i := 0; i < 4; i++ {
		e.Spawn("x", func(p *sim.Process) {
			m.Transfer(p, Coord{0, 0}, Coord{1, 0}, 128*1024)
		})
	}
	e.Spawn("y", func(p *sim.Process) {
		m.Transfer(p, Coord{4, 3}, Coord{5, 3}, 1024)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	top := m.TopLinks(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].From != (Coord{0, 0}) || top[0].To != (Coord{1, 0}) {
		t.Errorf("hottest link = %v", top[0])
	}
	if top[0].BusySeconds <= top[1].BusySeconds-1e-12 {
		t.Error("top links not sorted")
	}
	// Asking for more links than exist is clamped.
	all := m.TopLinks(10_000)
	if len(all) != 2*((6-1)*4+(4-1)*6) {
		t.Errorf("total directed links = %d", len(all))
	}
	hm := m.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 6 {
		t.Fatalf("heatmap shape:\n%s", hm)
	}
	if lines[0][0] != '9' && lines[0][1] != '9' {
		t.Errorf("hot corner not marked:\n%s", hm)
	}
}

func TestWormholeFasterThanStoreAndForward(t *testing.T) {
	measure := func(wormhole bool) float64 {
		cfg := DefaultConfig()
		cfg.Wormhole = wormhole
		e := sim.NewEngine()
		m := New(cfg)
		var done float64
		e.Spawn("x", func(p *sim.Process) {
			m.Transfer(p, Coord{0, 0}, Coord{5, 3}, 256*1024)
			done = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	snf := measure(false)
	wh := measure(true)
	// 8 hops store-and-forward pays serialisation per hop; wormhole once.
	if wh >= snf {
		t.Errorf("wormhole (%v) should beat store-and-forward (%v) across 8 hops", wh, snf)
	}
	if snf < 6*wh {
		t.Errorf("expected ~8x gap, got %v vs %v", snf, wh)
	}
}

func TestWormholeContentionNoDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Wormhole = true
	e := sim.NewEngine()
	m := New(cfg)
	// Many crossing transfers: XY-ordered acquisition must not deadlock.
	done := 0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		a := Coord{rng.Intn(6), rng.Intn(4)}
		b := Coord{rng.Intn(6), rng.Intn(4)}
		e.Spawn("t", func(p *sim.Process) {
			m.Transfer(p, a, b, 32*1024)
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 30 {
		t.Errorf("completed %d of 30 transfers", done)
	}
}
