package mcpsc

import (
	"testing"

	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/synth"
)

func TestCESelfComparison(t *testing.T) {
	ds := synth.Small(4, 90)
	s := ds.Structures[0]
	sc := CE{}.Compare(s, s)
	if sc.Value < 0.9 {
		t.Errorf("CE self similarity = %v, want ~1", sc.Value)
	}
	if sc.Ops.DPCells == 0 || sc.Ops.ScoreEvals == 0 {
		t.Errorf("CE charged no ops: %+v", sc.Ops)
	}
}

func TestCERigidMotionInvariant(t *testing.T) {
	ds := synth.Small(4, 91)
	s := ds.Structures[0]
	moved := s.Clone()
	g := geom.Transform{R: geom.AxisAngle(geom.V(3, 1, 2), 2.2), T: geom.V(-20, 14, 8)}
	for i := range moved.Residues {
		moved.Residues[i].CA = g.Apply(moved.Residues[i].CA)
	}
	sc := CE{}.Compare(s, moved)
	// CE works on internal distance matrices, so rigid motion must not
	// matter at all.
	if sc.Value < 0.9 {
		t.Errorf("CE on rigid copy = %v, want ~1", sc.Value)
	}
}

func TestCEDiscriminatesFamilies(t *testing.T) {
	ds := synth.Small(6, 92)
	same := CE{}.Compare(ds.Structures[0], ds.Structures[1]).Value
	diff := CE{}.Compare(ds.Structures[0], ds.Structures[4]).Value
	if same <= diff {
		t.Errorf("CE: family %v <= cross-family %v", same, diff)
	}
	if same < 0.4 {
		t.Errorf("CE family similarity = %v, too low", same)
	}
}

func TestCEShortChains(t *testing.T) {
	tiny := pdb.FromCAs("tiny", make([]geom.Vec3, 5), "AAAAA")
	ok := synth.Small(4, 93).Structures[0]
	sc := CE{}.Compare(tiny, ok)
	if sc.Value != 0 {
		t.Errorf("chains shorter than a fragment should score 0, got %v", sc.Value)
	}
	// Degenerate all-zero coordinates must not crash either.
	sc2 := CE{}.Compare(tiny, tiny)
	if sc2.Value < 0 || sc2.Value > 1 {
		t.Errorf("degenerate CE = %v", sc2.Value)
	}
}

func TestCEParamsDefaults(t *testing.T) {
	frag, gap, d0 := CE{}.params()
	if frag != 8 || gap != 30 || d0 != 3.0 {
		t.Errorf("defaults = %d %d %v", frag, gap, d0)
	}
	frag, gap, d0 = CE{FragLen: 6, MaxGap: 10, D0: 2}.params()
	if frag != 6 || gap != 10 || d0 != 2 {
		t.Errorf("overrides = %d %d %v", frag, gap, d0)
	}
}

func TestCEInMCPSCRun(t *testing.T) {
	ds := synth.Small(6, 94)
	methods := []Method{CE{}, GaplessRMSD{}}
	r, err := RunOneVsAll(ds, 0, methods, 4, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	scores := r.PerMethod["ce"]
	if len(scores) != 5 {
		t.Fatalf("ce scores = %v", scores)
	}
	// Family targets (positions of fa02, fa03 in Targets) must outscore
	// the fb targets on average.
	var fa, fb float64
	var nfa, nfb int
	for pos, tgt := range r.Targets {
		if ds.Structures[tgt].ID[:2] == "fa" {
			fa += scores[pos]
			nfa++
		} else {
			fb += scores[pos]
			nfb++
		}
	}
	if fa/float64(nfa) <= fb/float64(nfb) {
		t.Errorf("CE in MC-PSC does not separate families: fa=%v fb=%v", fa/float64(nfa), fb/float64(nfb))
	}
}
