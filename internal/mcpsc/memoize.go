package mcpsc

import (
	"fmt"

	"rckalign/internal/pairstore"
	"rckalign/internal/pdb"
	"rckalign/internal/rckskel"
	"rckalign/internal/synth"
)

// methodKernel renders a method and its parameters into the pair-store
// kernel key. The %+v of the method value carries its parameter fields,
// so two TMAlign instances with different Options — which share a
// Name() — memoize under different keys.
func methodKernel(m Method) string {
	return fmt.Sprintf("mcpsc/%s/%+v", m.Name(), m)
}

// memoizedScore evaluates m on (a, b) through the store: with a nil
// store it computes inline on the calling (simulation) goroutine — the
// classic path; otherwise the score is computed at most once per
// (method parameters, pair) across every run sharing the store, and
// usually already resident from a prefetch. Either way the simulated
// cores charge the same measured operation counts, so the store only
// moves host wall-clock time (see the pairstore package comment).
func memoizedScore(store *pairstore.Store, m Method, dataset string, a, b *pdb.Structure) Score {
	if store == nil {
		return m.Compare(a, b)
	}
	k := pairstore.Key{Dataset: dataset, Kernel: methodKernel(m), A: a.ID, B: b.ID}
	return store.Get(k, func() any { return m.Compare(a, b) }).(Score)
}

// prefetchQueues warms the store for every (method, job payload) pair
// the queues will farm, fanning the native kernel work out over the
// store's host worker pool before the simulation starts. pairOf maps a
// job payload to its structure pair. No-op on a nil store.
func prefetchQueues(store *pairstore.Store, ds *synth.Dataset, methods []Method,
	queues [][]rckskel.Job, pairOf func(payload any) (a, b *pdb.Structure)) {
	if store == nil {
		return
	}
	var keys []pairstore.Key
	var structs [][2]*pdb.Structure
	var kernels []int
	for m := range methods {
		kernel := methodKernel(methods[m])
		for _, j := range queues[m] {
			a, b := pairOf(j.Payload)
			keys = append(keys, pairstore.Key{Dataset: ds.Name, Kernel: kernel, A: a.ID, B: b.ID})
			structs = append(structs, [2]*pdb.Structure{a, b})
			kernels = append(kernels, m)
		}
	}
	store.Prefetch(keys, func(i int) any {
		return methods[kernels[i]].Compare(structs[i][0], structs[i][1])
	})
}
