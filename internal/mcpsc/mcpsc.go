// Package mcpsc implements the paper's proposed extension to
// multi-criteria protein structure comparison (MC-PSC): several pairwise
// comparison methods run side by side — different slave cores execute
// different algorithms on the same structure data — and their scores are
// fused into a consensus ranking (Section V, "the approach developed in
// this work can be extended to the more general MC-PSC problem").
//
// Besides TM-align, three further comparison methods are implemented so
// the multi-method machinery is exercised by real algorithms: a CE-style
// distance-matrix fragment chainer (ce.go), a gapless
// optimal-superposition RMSD comparator and a contact-map overlap
// comparator.
package mcpsc

import (
	"math"
	"sort"

	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
	"rckalign/internal/tmalign"
)

// Score is one method's verdict on a pair: a similarity in [0, 1]
// (higher = more similar) plus the operation counts it cost.
type Score struct {
	Method string
	Value  float64
	Ops    costmodel.Counter
}

// Method is a pairwise protein structure comparison algorithm.
type Method interface {
	// Name identifies the method in reports and consensus tables.
	Name() string
	// Compare scores the similarity of two structures.
	Compare(a, b *pdb.Structure) Score
}

// TMAlign adapts the tmalign package to the Method interface. The score
// is the mean of the two length-normalised TM-scores.
type TMAlign struct {
	Opt tmalign.Options
}

// Name implements Method.
func (TMAlign) Name() string { return "tmalign" }

// Compare implements Method.
func (m TMAlign) Compare(a, b *pdb.Structure) Score {
	r := tmalign.Compare(a, b, m.Opt)
	return Score{Method: m.Name(), Value: r.TM(), Ops: r.Ops}
}

// GaplessRMSD compares by the best gapless (diagonal) superposition:
// every offset of the two chains is superposed optimally and the best
// length-weighted RMSD is converted to a similarity 1/(1+(rmsd/r0)^2)
// scaled by the aligned fraction.
type GaplessRMSD struct {
	// R0 is the RMSD scale (default 4 A).
	R0 float64
}

// Name implements Method.
func (GaplessRMSD) Name() string { return "gapless-rmsd" }

// Compare implements Method.
func (m GaplessRMSD) Compare(a, b *pdb.Structure) Score {
	r0 := m.R0
	if r0 <= 0 {
		r0 = 4
	}
	x, y := a.CAs(), b.CAs()
	var ops costmodel.Counter
	minLen := len(x)
	if len(y) < minLen {
		minLen = len(y)
	}
	if minLen < 3 {
		return Score{Method: m.Name(), Ops: ops}
	}
	minOverlap := minLen / 2
	if minOverlap < 3 {
		minOverlap = 3
	}
	best := 0.0
	bufX := make([]geom.Vec3, minLen)
	bufY := make([]geom.Vec3, minLen)
	seqalign.GaplessThreading(len(x), len(y), minOverlap, func(k, lo, hi int) {
		n := hi - lo
		for j := lo; j < hi; j++ {
			bufX[j-lo] = x[j+k]
			bufY[j-lo] = y[j]
		}
		_, rmsd := geom.Superpose(bufX[:n], bufY[:n])
		ops.AddKabsch(n)
		frac := float64(n) / float64(minLen)
		sim := frac / (1 + (rmsd/r0)*(rmsd/r0))
		if sim > best {
			best = sim
		}
	})
	return Score{Method: m.Name(), Value: best, Ops: ops}
}

// ContactOverlap compares the chains' residue contact maps: contacts are
// CA pairs within Cutoff (sequence separation >= 3); the score is the
// best gapless-offset overlap of the two contact sets, normalised by the
// smaller set (a tractable diagonal restriction of the NP-hard maximum
// contact map overlap problem).
type ContactOverlap struct {
	// Cutoff is the CA-CA contact distance (default 8 A).
	Cutoff float64
}

// Name implements Method.
func (ContactOverlap) Name() string { return "contact-overlap" }

type contact struct{ i, j int }

func contactSet(pts []geom.Vec3, cutoff float64, ops *costmodel.Counter) map[contact]bool {
	set := map[contact]bool{}
	c2 := cutoff * cutoff
	for i := 0; i < len(pts); i++ {
		for j := i + 3; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= c2 {
				set[contact{i, j}] = true
			}
		}
	}
	ops.AddScore(len(pts) * len(pts) / 2)
	return set
}

// Compare implements Method.
func (m ContactOverlap) Compare(a, b *pdb.Structure) Score {
	cutoff := m.Cutoff
	if cutoff <= 0 {
		cutoff = 8
	}
	var ops costmodel.Counter
	ca, cb := contactSet(a.CAs(), cutoff, &ops), contactSet(b.CAs(), cutoff, &ops)
	if len(ca) == 0 || len(cb) == 0 {
		return Score{Method: m.Name(), Ops: ops}
	}
	small := len(ca)
	if len(cb) < small {
		small = len(cb)
	}
	best := 0
	// Slide chain b over chain a: offset k maps b residue j to a residue
	// j+k.
	for k := -(b.Len() - 1); k < a.Len(); k++ {
		n := 0
		for c := range cb {
			if ca[contact{c.i + k, c.j + k}] {
				n++
			}
		}
		ops.AddScore(len(cb))
		if n > best {
			best = n
		}
	}
	return Score{Method: m.Name(), Value: float64(best) / float64(small), Ops: ops}
}

// DefaultMethods returns the built-in methods with default settings:
// TM-align (iterative superposition), CE (distance-matrix fragment
// chaining), gapless-RMSD and contact-map overlap.
func DefaultMethods() []Method {
	return []Method{TMAlign{Opt: tmalign.FastOptions()}, CE{}, GaplessRMSD{}, ContactOverlap{}}
}

// ZScores standardises a sample ((x-mean)/std); a zero-variance sample
// yields all zeros.
func ZScores(xs []float64) []float64 {
	n := len(xs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n))
	if std == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out
}

// Consensus fuses per-method score vectors (each over the same targets)
// into a single vector by averaging z-scores — the standard MC-PSC
// fusion used by ProCKSI-style consensus servers.
func Consensus(perMethod [][]float64) []float64 {
	if len(perMethod) == 0 {
		return nil
	}
	n := len(perMethod[0])
	out := make([]float64, n)
	for _, scores := range perMethod {
		if len(scores) != n {
			panic("mcpsc: consensus score vectors differ in length")
		}
		for i, z := range ZScores(scores) {
			out[i] += z
		}
	}
	for i := range out {
		out[i] /= float64(len(perMethod))
	}
	return out
}

// Rank returns target indices ordered by descending score (ties keep
// index order).
func Rank(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
