package mcpsc

import (
	"rckalign/internal/costmodel"
	"rckalign/internal/geom"
	"rckalign/internal/pdb"
	"rckalign/internal/tmscore"
)

// CE implements a compact variant of the Combinatorial Extension method
// (Shindyalov & Bourne 1998): structurally similar octamer fragment
// pairs (AFPs — aligned fragment pairs, judged by intra-fragment
// distance-matrix agreement, no superposition needed) are chained into
// the best monotone path by dynamic programming, and the resulting
// alignment is scored with a TM-score rotation search so the similarity
// value is commensurable with the other methods.
//
// CE belongs to a different algorithm family than TM-align (distance
// matrices vs. iterative superposition), which is exactly what MC-PSC
// wants from an extra criterion.
type CE struct {
	// FragLen is the AFP length (CE default 8).
	FragLen int
	// MaxGap bounds the residue gap between consecutive AFPs on either
	// chain (CE default 30).
	MaxGap int
	// D0 is the distance-matrix dissimilarity threshold for accepting
	// an AFP (CE's D0, default 3.0 A).
	D0 float64
}

// Name implements Method.
func (CE) Name() string { return "ce" }

func (m CE) params() (frag, maxGap int, d0 float64) {
	frag = m.FragLen
	if frag <= 0 {
		frag = 8
	}
	maxGap = m.MaxGap
	if maxGap <= 0 {
		maxGap = 30
	}
	d0 = m.D0
	if d0 <= 0 {
		d0 = 3.0
	}
	return frag, maxGap, d0
}

// afpDissimilarity is CE's fragment distance measure: the mean absolute
// difference of the two fragments' intra-fragment CA distances, sampled
// over the (k, k+2..) pairs.
func afpDissimilarity(x, y []geom.Vec3, i, j, frag int, ops *costmodel.Counter) float64 {
	sum := 0.0
	n := 0
	for k := 0; k < frag-2; k++ {
		for l := k + 2; l < frag; l++ {
			dx := x[i+k].Dist(x[i+l])
			dy := y[j+k].Dist(y[j+l])
			d := dx - dy
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	ops.AddScore(n)
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Compare implements Method.
func (m CE) Compare(a, b *pdb.Structure) Score {
	frag, maxGap, d0 := m.params()
	x, y := a.CAs(), b.CAs()
	var ops costmodel.Counter
	n1, n2 := len(x)-frag+1, len(y)-frag+1
	if n1 < 1 || n2 < 1 {
		return Score{Method: m.Name(), Ops: ops}
	}

	// AFP grid: afp[i][j] > 0 means fragments (i..i+frag) and
	// (j..j+frag) match, storing a similarity score in (0, 1].
	afp := make([][]float64, n1)
	for i := range afp {
		afp[i] = make([]float64, n2)
		for j := 0; j < n2; j++ {
			if d := afpDissimilarity(x, y, i, j, frag, &ops); d < d0 {
				afp[i][j] = 1 - d/d0
			}
		}
	}

	// Path assembly: dp[i][j] = best chain score of a path ending with
	// the AFP at (i, j); predecessors end at least frag earlier on both
	// chains, within MaxGap. Gap steps are mildly penalised.
	const gapPenalty = 0.1
	dp := make([][]float64, n1)
	from := make([][][2]int, n1)
	for i := range dp {
		dp[i] = make([]float64, n1*0+n2)
		from[i] = make([][2]int, n2)
		for j := range from[i] {
			from[i][j] = [2]int{-1, -1}
		}
	}
	best := 0.0
	bi, bj := -1, -1
	cells := 0
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			if afp[i][j] == 0 {
				continue
			}
			dp[i][j] = afp[i][j]
			// Scan predecessors.
			for pi := i - frag; pi >= i-frag-maxGap && pi >= 0; pi-- {
				for pj := j - frag; pj >= j-frag-maxGap && pj >= 0; pj-- {
					if dp[pi][pj] == 0 {
						continue
					}
					g1 := i - frag - pi
					g2 := j - frag - pj
					gp := gapPenalty * float64(min(g1, 1)+min(g2, 1))
					cand := dp[pi][pj] + afp[i][j] - gp
					if cand > dp[i][j] {
						dp[i][j] = cand
						from[i][j] = [2]int{pi, pj}
					}
					cells++
				}
			}
			if dp[i][j] > best {
				best = dp[i][j]
				bi, bj = i, j
			}
		}
	}
	ops.AddDP(n1*n2 + cells)

	if bi < 0 {
		return Score{Method: m.Name(), Ops: ops}
	}

	// Reconstruct the alignment from the best path.
	type span struct{ i, j int }
	var path []span
	for i, j := bi, bj; i >= 0; {
		path = append(path, span{i, j})
		nxt := from[i][j]
		i, j = nxt[0], nxt[1]
	}
	var xa, ya []geom.Vec3
	for k := len(path) - 1; k >= 0; k-- {
		s := path[k]
		for t := 0; t < frag; t++ {
			xa = append(xa, x[s.i+t])
			ya = append(ya, y[s.j+t])
		}
	}

	// Score the alignment on the TM scale (normalised by the shorter
	// chain, as SearchParams does) so values compare across methods.
	minLen := len(x)
	if len(y) < minLen {
		minLen = len(y)
	}
	p := tmscore.FinalParams(float64(minLen))
	tm, _ := p.Search(xa, ya, 8, &ops)
	if tm > 1 {
		tm = 1
	}
	return Score{Method: m.Name(), Value: tm, Ops: ops}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
