package mcpsc

import (
	"math"
	"testing"

	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func TestMethodsSelfSimilarity(t *testing.T) {
	ds := synth.Small(4, 9)
	s := ds.Structures[0]
	for _, m := range DefaultMethods() {
		sc := m.Compare(s, s)
		if sc.Method == "" {
			t.Errorf("%T has empty name", m)
		}
		if sc.Value < 0.9 {
			t.Errorf("%s self similarity = %v, want ~1", m.Name(), sc.Value)
		}
		if sc.Value > 1.000001 {
			t.Errorf("%s self similarity = %v > 1", m.Name(), sc.Value)
		}
	}
}

func TestMethodsDiscriminate(t *testing.T) {
	// Family member must outscore a cross-family structure for every
	// method.
	ds := synth.Small(6, 10) // fa01..fa03, fb01..fb03
	base, member, other := ds.Structures[0], ds.Structures[1], ds.Structures[3]
	for _, m := range DefaultMethods() {
		same := m.Compare(base, member).Value
		diff := m.Compare(base, other).Value
		if same <= diff {
			t.Errorf("%s: family %v <= cross-family %v", m.Name(), same, diff)
		}
	}
}

func TestMethodsChargeOps(t *testing.T) {
	ds := synth.Small(4, 11)
	for _, m := range DefaultMethods() {
		sc := m.Compare(ds.Structures[0], ds.Structures[2])
		total := sc.Ops.DPCells + sc.Ops.KabschCalls + sc.Ops.ScoreEvals
		if total == 0 {
			t.Errorf("%s charged no ops", m.Name())
		}
	}
}

func TestZScores(t *testing.T) {
	z := ZScores([]float64{1, 2, 3, 4, 5})
	if math.Abs(z[2]) > 1e-12 {
		t.Errorf("middle z = %v", z[2])
	}
	if z[0] >= 0 || z[4] <= 0 {
		t.Errorf("z order wrong: %v", z)
	}
	if math.Abs(z[0]+z[4]) > 1e-12 {
		t.Errorf("not symmetric: %v", z)
	}
	// Degenerate cases.
	for _, xs := range [][]float64{nil, {3}, {2, 2, 2}} {
		for _, v := range ZScores(xs) {
			if v != 0 {
				t.Errorf("degenerate ZScores(%v) has nonzero %v", xs, v)
			}
		}
	}
}

func TestConsensusAgreesWithUnanimousMethods(t *testing.T) {
	a := []float64{0.9, 0.2, 0.5}
	b := []float64{0.8, 0.1, 0.6}
	c := Consensus([][]float64{a, b})
	if !(c[0] > c[2] && c[2] > c[1]) {
		t.Errorf("consensus order wrong: %v", c)
	}
}

func TestConsensusPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Consensus([][]float64{{1, 2}, {1}})
}

func TestRank(t *testing.T) {
	r := Rank([]float64{0.2, 0.9, 0.5})
	if r[0] != 1 || r[1] != 2 || r[2] != 0 {
		t.Errorf("rank = %v", r)
	}
	if len(Rank(nil)) != 0 {
		t.Error("Rank(nil)")
	}
	// Stable for ties.
	r2 := Rank([]float64{0.5, 0.5})
	if r2[0] != 0 || r2[1] != 1 {
		t.Errorf("tie rank = %v", r2)
	}
}

func TestRunOneVsAll(t *testing.T) {
	ds := synth.Small(6, 12)
	methods := []Method{TMAlign{Opt: tmalign.FastOptions()}, GaplessRMSD{}}
	r, err := RunOneVsAll(ds, 0, methods, 4, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Targets) != 5 {
		t.Fatalf("targets = %v", r.Targets)
	}
	if r.TotalSeconds <= 0 {
		t.Error("no simulated time")
	}
	for _, m := range methods {
		scores := r.PerMethod[m.Name()]
		if len(scores) != 5 {
			t.Fatalf("%s scores = %v", m.Name(), scores)
		}
		for i, s := range scores {
			if s < 0 || s > 1.000001 {
				t.Errorf("%s score[%d] = %v", m.Name(), i, s)
			}
		}
	}
	if len(r.Consensus) != 5 || len(r.Ranking) != 5 {
		t.Fatal("consensus missing")
	}
	// Query fa01 (index 0): family members fa02, fa03 (dataset indices
	// 1, 2) must rank above the fb structures.
	top2 := map[int]bool{r.RankedTargets()[0]: true, r.RankedTargets()[1]: true}
	if !top2[1] || !top2[2] {
		t.Errorf("family members not ranked top: %v (per-method %v)", r.RankedTargets(), r.PerMethod)
	}
	if r.SlavesPerMethod["tmalign"] == 0 || r.SlavesPerMethod["gapless-rmsd"] == 0 {
		t.Errorf("slave partition: %v", r.SlavesPerMethod)
	}
}

func TestRunOneVsAllValidation(t *testing.T) {
	ds := synth.Small(4, 13)
	methods := DefaultMethods()
	if _, err := RunOneVsAll(ds, -1, methods, 6, DefaultRunConfig()); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := RunOneVsAll(ds, 0, nil, 6, DefaultRunConfig()); err == nil {
		t.Error("no methods accepted")
	}
	if _, err := RunOneVsAll(ds, 0, methods, 2, DefaultRunConfig()); err == nil {
		t.Error("fewer slaves than methods accepted")
	}
	if _, err := RunOneVsAll(ds, 0, methods, 99, DefaultRunConfig()); err == nil {
		t.Error("too many slaves accepted")
	}
}

func TestRunOneVsAllMoreSlavesFaster(t *testing.T) {
	ds := synth.Small(6, 14)
	methods := []Method{GaplessRMSD{}, ContactOverlap{}}
	slow, err := RunOneVsAll(ds, 0, methods, 2, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunOneVsAll(ds, 0, methods, 8, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalSeconds >= slow.TotalSeconds {
		t.Errorf("8 slaves (%v) not faster than 2 (%v)", fast.TotalSeconds, slow.TotalSeconds)
	}
}
