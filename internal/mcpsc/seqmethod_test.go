package mcpsc

import (
	"testing"

	"rckalign/internal/pdb"
	"rckalign/internal/synth"
)

func TestSeqIdentitySelf(t *testing.T) {
	s := synth.Small(4, 95).Structures[0]
	sc := SeqIdentity{}.Compare(s, s)
	if sc.Value < 0.999 {
		t.Errorf("self sequence identity = %v, want 1", sc.Value)
	}
	if sc.Ops.DPCells == 0 {
		t.Error("no ops charged")
	}
}

func TestSeqIdentityFamilySignal(t *testing.T) {
	// Family members share ~70% sequence (MutateFrac 0.3); unrelated
	// random sequences share ~5-15%.
	ds := synth.Small(6, 96)
	same := SeqIdentity{}.Compare(ds.Structures[0], ds.Structures[1]).Value
	diff := SeqIdentity{}.Compare(ds.Structures[0], ds.Structures[4]).Value
	if same <= diff {
		t.Errorf("family identity %v <= cross %v", same, diff)
	}
	if same < 0.4 {
		t.Errorf("family identity %v too low", same)
	}
	if diff > 0.4 {
		t.Errorf("cross-family identity %v too high", diff)
	}
}

func TestSeqIdentityEmpty(t *testing.T) {
	empty := &pdb.Structure{ID: "e"}
	s := synth.Small(4, 97).Structures[0]
	if sc := (SeqIdentity{}).Compare(empty, s); sc.Value != 0 {
		t.Errorf("empty sequence scored %v", sc.Value)
	}
}

func TestSeqIdentityInConsensus(t *testing.T) {
	// The point of MC-PSC: structure + sequence methods agree on family
	// ranking for these synthetic sets.
	ds := synth.Small(6, 98)
	methods := []Method{SeqIdentity{}, GaplessRMSD{}}
	r, err := RunOneVsAll(ds, 0, methods, 4, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	top2 := map[int]bool{r.RankedTargets()[0]: true, r.RankedTargets()[1]: true}
	if !top2[1] || !top2[2] {
		t.Errorf("consensus with sequence method misranked: %v", r.RankedTargets())
	}
}
