package mcpsc

import (
	"rckalign/internal/costmodel"
	"rckalign/internal/pdb"
	"rckalign/internal/seqalign"
)

// SeqIdentity is a pure sequence comparison method: global affine-gap
// alignment of the amino-acid sequences under a simplified substitution
// model, scored as the fraction of identities over the shorter chain.
// In an MC-PSC consensus it contributes the evolutionary signal that
// structure-only methods ignore — and its disagreement with them on
// remote homologs ("evidence of homology even in sequentially divergent
// proteins", as the paper's introduction puts it) is exactly why
// consensus methods exist.
type SeqIdentity struct {
	// Match/Mismatch/GapOpen/GapExtend override the scoring scheme
	// (defaults 2 / -1 / -4 / -0.5).
	Match, Mismatch, GapOpen, GapExtend float64
}

// Name implements Method.
func (SeqIdentity) Name() string { return "seq-identity" }

// physchemClass groups amino acids so conservative substitutions score
// between match and mismatch (a coarse BLOSUM stand-in).
func physchemClass(aa byte) int {
	switch aa {
	case 'A', 'V', 'L', 'I', 'M', 'F', 'W', 'Y':
		return 0 // hydrophobic
	case 'S', 'T', 'N', 'Q', 'C', 'G', 'P':
		return 1 // polar / small
	case 'D', 'E':
		return 2 // acidic
	case 'K', 'R', 'H':
		return 3 // basic
	}
	return 4
}

// Compare implements Method.
func (m SeqIdentity) Compare(a, b *pdb.Structure) Score {
	match, mismatch := m.Match, m.Mismatch
	if match == 0 {
		match = 2
	}
	if mismatch == 0 {
		mismatch = -1
	}
	gapOpen, gapExtend := m.GapOpen, m.GapExtend
	if gapOpen == 0 {
		gapOpen = -4
	}
	if gapExtend == 0 {
		gapExtend = -0.5
	}
	s1, s2 := a.Sequence(), b.Sequence()
	var ops costmodel.Counter
	minLen := len(s1)
	if len(s2) < minLen {
		minLen = len(s2)
	}
	if minLen == 0 {
		return Score{Method: m.Name(), Ops: ops}
	}
	al := seqalign.NewAligner()
	invmap := make([]int, len(s2))
	al.AlignAffine(len(s1), len(s2), func(i, j int) float64 {
		if s1[i] == s2[j] {
			return match
		}
		if physchemClass(s1[i]) == physchemClass(s2[j]) {
			return (match + mismatch) / 2
		}
		return mismatch
	}, gapOpen, gapExtend, invmap, &ops)

	identical := 0
	for j, i := range invmap {
		if i >= 0 && s1[i] == s2[j] {
			identical++
		}
	}
	return Score{Method: m.Name(), Value: float64(identical) / float64(minLen), Ops: ops}
}
