package mcpsc

import "unsafe"

// ScoreBytes models the wire size of one multi-criteria result as a
// slave returns it to the master: a small header, the method label, the
// score value and the operation counters that travel with it for the
// master's per-method accounting. This replaces the old flat 64-byte
// guess, which undercharged every method with a label longer than a few
// characters and ignored the counter block entirely.
func ScoreBytes(s Score) int {
	const (
		header   = 16                        // framing: method length + job routing
		value    = 8                         // float64 score
		counters = int(unsafe.Sizeof(s.Ops)) // the full Counter block
	)
	return header + len(s.Method) + value + counters
}
