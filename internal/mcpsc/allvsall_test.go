package mcpsc

import (
	"testing"

	"rckalign/internal/costmodel"
	"rckalign/internal/synth"
	"rckalign/internal/tmalign"
)

func TestEqualPartition(t *testing.T) {
	p := EqualPartition(3, 10)
	if p[0] != 4 || p[1] != 3 || p[2] != 3 {
		t.Errorf("partition = %v", p)
	}
	total := 0
	for _, n := range p {
		total += n
	}
	if total != 10 {
		t.Error("partition loses slaves")
	}
}

func TestProportionalPartitionFavorsExpensiveMethod(t *testing.T) {
	ds := synth.Small(6, 71)
	methods := []Method{
		TMAlign{Opt: tmalign.FastOptions()}, // by far the most expensive
		GaplessRMSD{},
	}
	p := ProportionalPartition(ds, methods, 10, costmodel.P54C())
	if p[0]+p[1] != 10 {
		t.Fatalf("partition = %v", p)
	}
	if p[0] <= p[1] {
		t.Errorf("TM-align should get more slaves: %v", p)
	}
	if p[1] < 1 {
		t.Errorf("every method needs at least one slave: %v", p)
	}
}

func TestRunAllVsAll(t *testing.T) {
	ds := synth.Small(6, 72)
	methods := []Method{GaplessRMSD{}, ContactOverlap{}}
	r, err := RunAllVsAll(ds, methods, []int{3, 3}, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds <= 0 {
		t.Error("no simulated time")
	}
	for _, m := range methods {
		mat := r.Similarity[m.Name()]
		if len(mat) != 6 {
			t.Fatalf("%s matrix size %d", m.Name(), len(mat))
		}
		for i := 0; i < 6; i++ {
			if mat[i][i] != 1 {
				t.Errorf("%s diagonal", m.Name())
			}
			for j := i + 1; j < 6; j++ {
				if mat[i][j] != mat[j][i] {
					t.Errorf("%s not symmetric at (%d,%d)", m.Name(), i, j)
				}
				if mat[i][j] < 0 || mat[i][j] > 1.000001 {
					t.Errorf("%s score out of range: %v", m.Name(), mat[i][j])
				}
			}
		}
		if r.BusySecondsPerMethod[m.Name()] <= 0 {
			t.Errorf("%s recorded no busy time", m.Name())
		}
	}
	// Family structure must be visible in the consensus.
	cons := r.ConsensusMatrix()
	if len(cons) != 6 {
		t.Fatal("consensus size")
	}
	// fa pairs (0,1,2) should out-score cross pairs under consensus.
	if cons[0][1] <= cons[0][3] || cons[1][2] <= cons[2][4] {
		t.Errorf("consensus does not separate families: %v", cons)
	}
}

func TestRunAllVsAllValidation(t *testing.T) {
	ds := synth.Small(4, 73)
	methods := []Method{GaplessRMSD{}}
	if _, err := RunAllVsAll(ds, nil, nil, DefaultRunConfig()); err == nil {
		t.Error("no methods accepted")
	}
	if _, err := RunAllVsAll(ds, methods, []int{1, 1}, DefaultRunConfig()); err == nil {
		t.Error("partition/method mismatch accepted")
	}
	if _, err := RunAllVsAll(ds, methods, []int{0}, DefaultRunConfig()); err == nil {
		t.Error("zero-slave partition accepted")
	}
	if _, err := RunAllVsAll(ds, methods, []int{99}, DefaultRunConfig()); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestProportionalBeatsEqualOnSkewedMethods(t *testing.T) {
	// TM-align costs orders of magnitude more than contact overlap;
	// giving the methods equal cores starves TM-align. The proportional
	// partition should finish sooner.
	ds := synth.Small(6, 74)
	methods := []Method{TMAlign{Opt: tmalign.FastOptions()}, ContactOverlap{}}
	equal, err := RunAllVsAll(ds, methods, EqualPartition(2, 8), DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	prop, err := RunAllVsAll(ds, methods, ProportionalPartition(ds, methods, 8, costmodel.P54C()), DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if prop.TotalSeconds >= equal.TotalSeconds {
		t.Errorf("proportional (%v) should beat equal (%v) on skewed methods",
			prop.TotalSeconds, equal.TotalSeconds)
	}
}
