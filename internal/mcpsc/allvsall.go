package mcpsc

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/farm"
	"rckalign/internal/pdb"
	"rckalign/internal/rckskel"
	"rckalign/internal/sched"
	"rckalign/internal/synth"
)

// The paper's concluding future work: "extending the framework to
// support all-to-all multi-criteria PSC and studying the performance
// characteristics of such a system... would require assessment of
// optimal strategies for the partitioning of the cores dedicated to
// different PSC algorithms, since the algorithm complexities may vary."
// RunAllVsAll implements that system, and EqualPartition /
// ProportionalPartition are two core-partitioning strategies whose
// performance the ablation compares.

// AllVsAllResult reports a simulated multi-criteria all-vs-all run.
type AllVsAllResult struct {
	farm.Report
	// Similarity[m][i][j] is method m's score for structure pair (i,j)
	// (symmetric, diagonal 1).
	Similarity map[string][][]float64
	// SlavesPerMethod records the partition used.
	SlavesPerMethod map[string]int
}

// EqualPartition assigns slaves round-robin to methods.
func EqualPartition(methods int, slaves int) []int {
	out := make([]int, methods)
	for i := 0; i < slaves; i++ {
		out[i%methods]++
	}
	return out
}

// ProportionalPartition estimates each method's per-pair cost on a
// probe pair from the dataset and allocates slaves proportionally
// (each method gets at least one). This is the "assess the algorithm
// complexities" strategy the paper anticipates.
func ProportionalPartition(ds *synth.Dataset, methods []Method, slaves int, cpu costmodel.CPU) []int {
	costs := make([]float64, len(methods))
	a, b := ds.Structures[0], ds.Structures[ds.Len()/2]
	for i, m := range methods {
		s := m.Compare(a, b)
		costs[i] = cpu.Seconds(s.Ops)
		if costs[i] <= 0 {
			costs[i] = 1e-9
		}
	}
	out := make([]int, len(methods))
	assigned := 0
	for i := range methods {
		out[i] = 1
		assigned++
	}
	for assigned < slaves {
		// Give the next slave to the method with the highest remaining
		// cost per assigned slave.
		best, bestLoad := 0, -1.0
		for i := range methods {
			load := costs[i] / float64(out[i])
			if load > bestLoad {
				best, bestLoad = i, load
			}
		}
		out[best]++
		assigned++
	}
	return out
}

// RunAllVsAll simulates multi-criteria all-vs-all PSC: every method
// scores every distinct pair, with the slave cores split among methods
// according to partition (len(methods) entries summing to the slave
// count; each >= 1). Comparisons run natively and charge their measured
// ops to the simulated cores.
func RunAllVsAll(ds *synth.Dataset, methods []Method, partition []int, cfg RunConfig) (AllVsAllResult, error) {
	if len(methods) == 0 {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: no methods")
	}
	if len(partition) != len(methods) {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: partition has %d entries for %d methods", len(partition), len(methods))
	}
	slaves := 0
	for i, n := range partition {
		if n < 1 {
			return AllVsAllResult{}, fmt.Errorf("mcpsc: method %d got %d slaves", i, n)
		}
		slaves += n
	}
	if slaves > cfg.Chip.NumCores()-1 {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: %d slaves exceed chip capacity", slaves)
	}

	s, err := farm.NewSession(cfg.session(slaves))
	if err != nil {
		return AllVsAllResult{}, err
	}
	slaveIDs := s.Placement().Cores

	// Contiguous partition assignment: each method gets a dedicated core
	// range.
	methodOf := map[int]int{}
	out := AllVsAllResult{
		Similarity:      map[string][][]float64{},
		SlavesPerMethod: map[string]int{},
	}
	groups, err := farm.PartitionContiguous(slaveIDs, partition)
	if err != nil {
		return AllVsAllResult{}, err
	}
	for m, group := range groups {
		out.SlavesPerMethod[methods[m].Name()] = len(group)
		for _, c := range group {
			methodOf[c] = m
		}
	}

	pairs := sched.AllVsAll(ds.Len())
	for _, m := range methods {
		mat := make([][]float64, ds.Len())
		for i := range mat {
			mat[i] = make([]float64, ds.Len())
			mat[i][i] = 1
		}
		out.Similarity[m.Name()] = mat
	}

	queues := make([][]rckskel.Job, len(methods))
	for m := range methods {
		queues[m], err = farm.BuildJobs(pairs, m*len(pairs), func(p sched.Pair) int {
			return core.StructBytes(ds.Structures[p.I].Len()) + core.StructBytes(ds.Structures[p.J].Len())
		})
		if err != nil {
			return AllVsAllResult{}, err
		}
	}
	heads := make([]int, len(methods))
	cpu := cfg.Chip.CPU
	rb := cfg.resultBytes()
	prefetchQueues(cfg.Store, ds, methods, queues, func(pl any) (*pdb.Structure, *pdb.Structure) {
		p := pl.(sched.Pair)
		return ds.Structures[p.I], ds.Structures[p.J]
	})

	s.StartSlavesWith(func(slave int) rckskel.Handler {
		m := methods[methodOf[slave]]
		return func(job rckskel.Job) (any, costmodel.Counter, int) {
			p := job.Payload.(sched.Pair)
			sc := memoizedScore(cfg.Store, m, ds.Name, ds.Structures[p.I], ds.Structures[p.J])
			return sc, sc.Ops, rb(sc)
		}
	})

	var farmErr error
	rep, err := s.Run("", func(m *farm.Master) {
		m.LoadResidues(ds.TotalResidues())
		_, farmErr = m.FarmDynamic(func(slave int) (rckskel.Job, bool) {
			mi := methodOf[slave]
			if heads[mi] >= len(queues[mi]) {
				return rckskel.Job{}, false
			}
			j := queues[mi][heads[mi]]
			heads[mi]++
			return j, true
		}, func(r rckskel.Result) {
			sc := r.Payload.(Score)
			pair := pairs[r.JobID%len(pairs)]
			mat := out.Similarity[sc.Method]
			mat[pair.I][pair.J] = sc.Value
			mat[pair.J][pair.I] = sc.Value
			m.AddMethodBusy(sc.Method, cpu.Seconds(sc.Ops))
		})
		m.Terminate()
	})
	if err == nil {
		err = farmErr
	}
	out.Report = rep
	return out, err
}

// ConsensusMatrix fuses the per-method matrices of an all-vs-all run
// into one consensus similarity matrix (z-score averaged per pair
// vector across methods, rescaled to rank order only — use for
// clustering/retrieval, not as a calibrated score).
func (r AllVsAllResult) ConsensusMatrix() [][]float64 {
	var names []string
	for name := range r.Similarity {
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil
	}
	n := len(r.Similarity[names[0]])
	// Flatten upper triangles per method, z-score, average, refill.
	var vectors [][]float64
	var order [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			order = append(order, [2]int{i, j})
		}
	}
	for _, name := range names {
		v := make([]float64, len(order))
		for k, ij := range order {
			v[k] = r.Similarity[name][ij[0]][ij[1]]
		}
		vectors = append(vectors, v)
	}
	cons := Consensus(vectors)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for k, ij := range order {
		out[ij[0]][ij[1]] = cons[k]
		out[ij[1]][ij[0]] = cons[k]
	}
	return out
}
