package mcpsc

import (
	"fmt"

	"rckalign/internal/core"
	"rckalign/internal/costmodel"
	"rckalign/internal/rcce"
	"rckalign/internal/rckskel"
	"rckalign/internal/scc"
	"rckalign/internal/sched"
	"rckalign/internal/sim"
	"rckalign/internal/synth"
)

// The paper's concluding future work: "extending the framework to
// support all-to-all multi-criteria PSC and studying the performance
// characteristics of such a system... would require assessment of
// optimal strategies for the partitioning of the cores dedicated to
// different PSC algorithms, since the algorithm complexities may vary."
// RunAllVsAll implements that system, and EqualPartition /
// ProportionalPartition are two core-partitioning strategies whose
// performance the ablation compares.

// AllVsAllResult reports a simulated multi-criteria all-vs-all run.
type AllVsAllResult struct {
	// Similarity[m][i][j] is method m's score for structure pair (i,j)
	// (symmetric, diagonal 1).
	Similarity map[string][][]float64
	// TotalSeconds is the simulated makespan.
	TotalSeconds float64
	// SlavesPerMethod records the partition used.
	SlavesPerMethod map[string]int
	// BusySecondsPerMethod sums the compute seconds charged by each
	// method's slaves (for partition-balance analysis).
	BusySecondsPerMethod map[string]float64
}

// EqualPartition assigns slaves round-robin to methods.
func EqualPartition(methods int, slaves int) []int {
	out := make([]int, methods)
	for i := 0; i < slaves; i++ {
		out[i%methods]++
	}
	return out
}

// ProportionalPartition estimates each method's per-pair cost on a
// probe pair from the dataset and allocates slaves proportionally
// (each method gets at least one). This is the "assess the algorithm
// complexities" strategy the paper anticipates.
func ProportionalPartition(ds *synth.Dataset, methods []Method, slaves int, cpu costmodel.CPU) []int {
	costs := make([]float64, len(methods))
	a, b := ds.Structures[0], ds.Structures[ds.Len()/2]
	for i, m := range methods {
		s := m.Compare(a, b)
		costs[i] = cpu.Seconds(s.Ops)
		if costs[i] <= 0 {
			costs[i] = 1e-9
		}
	}
	out := make([]int, len(methods))
	assigned := 0
	for i := range methods {
		out[i] = 1
		assigned++
	}
	for assigned < slaves {
		// Give the next slave to the method with the highest remaining
		// cost per assigned slave.
		best, bestLoad := 0, -1.0
		for i := range methods {
			load := costs[i] / float64(out[i])
			if load > bestLoad {
				best, bestLoad = i, load
			}
		}
		out[best]++
		assigned++
	}
	return out
}

// RunAllVsAll simulates multi-criteria all-vs-all PSC: every method
// scores every distinct pair, with the slave cores split among methods
// according to partition (len(methods) entries summing to the slave
// count; each >= 1). Comparisons run natively and charge their measured
// ops to the simulated cores.
func RunAllVsAll(ds *synth.Dataset, methods []Method, partition []int, cfg RunConfig) (AllVsAllResult, error) {
	if len(methods) == 0 {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: no methods")
	}
	if len(partition) != len(methods) {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: partition has %d entries for %d methods", len(partition), len(methods))
	}
	slaves := 0
	for i, n := range partition {
		if n < 1 {
			return AllVsAllResult{}, fmt.Errorf("mcpsc: method %d got %d slaves", i, n)
		}
		slaves += n
	}
	if slaves > cfg.Chip.NumCores()-1 {
		return AllVsAllResult{}, fmt.Errorf("mcpsc: %d slaves exceed chip capacity", slaves)
	}

	engine := sim.NewEngine()
	chip := scc.New(engine, cfg.Chip)
	comm := rcce.New(chip)

	slaveIDs := make([]int, 0, slaves)
	for c := 0; len(slaveIDs) < slaves; c++ {
		if c == cfg.MasterCore {
			continue
		}
		slaveIDs = append(slaveIDs, c)
	}
	team := rckskel.NewTeam(comm, cfg.MasterCore, slaveIDs)

	// Contiguous partition assignment.
	methodOf := map[int]int{}
	idx := 0
	out := AllVsAllResult{
		Similarity:           map[string][][]float64{},
		SlavesPerMethod:      map[string]int{},
		BusySecondsPerMethod: map[string]float64{},
	}
	for m, n := range partition {
		out.SlavesPerMethod[methods[m].Name()] = n
		for k := 0; k < n; k++ {
			methodOf[slaveIDs[idx]] = m
			idx++
		}
	}

	pairs := sched.AllVsAll(ds.Len())
	for _, m := range methods {
		mat := make([][]float64, ds.Len())
		for i := range mat {
			mat[i] = make([]float64, ds.Len())
			mat[i][i] = 1
		}
		out.Similarity[m.Name()] = mat
	}

	queues := make([][]rckskel.Job, len(methods))
	for m := range methods {
		queues[m] = make([]rckskel.Job, len(pairs))
		for k, p := range pairs {
			queues[m][k] = rckskel.Job{
				ID:      m*len(pairs) + k,
				Payload: p,
				Bytes:   core.StructBytes(ds.Structures[p.I].Len()) + core.StructBytes(ds.Structures[p.J].Len()),
			}
		}
	}
	heads := make([]int, len(methods))
	cpu := cfg.Chip.CPU

	team.StartSlavesWith(func(slave int) rckskel.Handler {
		m := methods[methodOf[slave]]
		return func(job rckskel.Job) (any, costmodel.Counter, int) {
			p := job.Payload.(sched.Pair)
			s := m.Compare(ds.Structures[p.I], ds.Structures[p.J])
			return s, s.Ops, 64
		}
	})

	chip.SpawnCore(cfg.MasterCore, func(p *sim.Process) {
		chip.Compute(p, costmodel.Counter{ResiduesLoaded: uint64(ds.TotalResidues())})
		team.FARMDynamic(p, func(slave int) (rckskel.Job, bool) {
			m := methodOf[slave]
			if heads[m] >= len(queues[m]) {
				return rckskel.Job{}, false
			}
			j := queues[m][heads[m]]
			heads[m]++
			return j, true
		}, func(r rckskel.Result) {
			s := r.Payload.(Score)
			pair := pairs[r.JobID%len(pairs)]
			mat := out.Similarity[s.Method]
			mat[pair.I][pair.J] = s.Value
			mat[pair.J][pair.I] = s.Value
			out.BusySecondsPerMethod[s.Method] += cpu.Seconds(s.Ops)
		})
		team.Terminate(p)
		out.TotalSeconds = p.Now()
	})
	if err := engine.Run(); err != nil {
		return out, err
	}
	return out, nil
}

// ConsensusMatrix fuses the per-method matrices of an all-vs-all run
// into one consensus similarity matrix (z-score averaged per pair
// vector across methods, rescaled to rank order only — use for
// clustering/retrieval, not as a calibrated score).
func (r AllVsAllResult) ConsensusMatrix() [][]float64 {
	var names []string
	for name := range r.Similarity {
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil
	}
	n := len(r.Similarity[names[0]])
	// Flatten upper triangles per method, z-score, average, refill.
	var vectors [][]float64
	var order [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			order = append(order, [2]int{i, j})
		}
	}
	for _, name := range names {
		v := make([]float64, len(order))
		for k, ij := range order {
			v[k] = r.Similarity[name][ij[0]][ij[1]]
		}
		vectors = append(vectors, v)
	}
	cons := Consensus(vectors)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for k, ij := range order {
		out[ij[0]][ij[1]] = cons[k]
		out[ij[1]][ij[0]] = cons[k]
	}
	return out
}
